package repro

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/attrenc"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// The experiment benches regenerate the paper's tables and figures at the
// quick scale (run `cmd/experiments -full` for the committed numbers).
// Each iteration is a full experiment, so the default -benchtime runs
// each exactly once; the regenerated rows are attached via b.Log and
// shown with `go test -bench . -v`.

// BenchmarkTable1AttributeExtraction regenerates Table I: per-group WMAP
// vs the Finetag-like baseline and per-group top-1 % vs the A3M-like
// baseline on the noZS split.
func BenchmarkTable1AttributeExtraction(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable1(sc)
		b.Log("\n" + r.Format())
	}
}

// BenchmarkTable2EncoderAblation regenerates Table II: the four image-
// encoder variants × {HDC, trainable-MLP} attribute encoders on the ZS
// split.
func BenchmarkTable2EncoderAblation(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable2(sc)
		b.Log("\n" + r.Format())
	}
}

// BenchmarkFig4ParetoFront regenerates Fig. 4: zero-shot accuracy vs
// parameter count for HDC-ZSC, Trainable-MLP, ESZSL, and the generative
// feature-synthesis variants, with the Pareto front extracted.
func BenchmarkFig4ParetoFront(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(sc)
		b.Log("\n" + r.Format())
	}
}

// BenchmarkFig5HyperparameterSweeps regenerates Fig. 5: the five
// hyperparameter sweeps (batch size, epochs, learning rate, temperature
// scale, weight decay) on the disjoint validation split.
func BenchmarkFig5HyperparameterSweeps(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig5(sc)
		b.Log("\n" + r.Format())
	}
}

// BenchmarkMemoryFootprint regenerates the §III-A storage accounting
// (71 % codebook reduction, ≈17 KB at d=1536) — the experiment whose
// numbers match the paper exactly.
func BenchmarkMemoryFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunMemory()
		if i == 0 {
			b.Log("\n" + r.Format())
		}
	}
}

// --- Micro-benchmarks of the primitives behind the experiments. ---

// BenchmarkHDCBindMaterializeDictionary measures materializing the full
// α=312 attribute dictionary from the two codebooks by binding, the
// §III-A rematerialization cost.
func BenchmarkHDCBindMaterializeDictionary(b *testing.B) {
	schema := dataset.NewCUBSchema()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attrenc.NewHDCEncoder(rng, schema, 1536)
	}
}

// BenchmarkSimilarityKernelForward measures the cosine similarity kernel
// on a batch against a full class set at the paper's dimensionality.
func BenchmarkSimilarityKernelForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	k := core.NewSimilarityKernel(0.05)
	x := tensor.Randn(rng, 1, 32, 1536)
	p := tensor.Randn(rng, 1, 200, 1536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Forward(x, p)
	}
}

// BenchmarkPackedHammingClassifier measures the edge-inference path: one
// probe against 200 class prototypes via XOR + popcount.
func BenchmarkPackedHammingClassifier(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	im := hdc.NewItemMemory(1536)
	for c := 0; c < 200; c++ {
		im.Store("c", hdc.NewRandomBinary(rng, 1536))
	}
	probe := hdc.NewRandomBinary(rng, 1536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Query(probe)
	}
}

// BenchmarkPhaseIIIStep measures one cached phase-III training epoch
// (the stage Fig. 5 sweeps repeatedly).
func BenchmarkPhaseIIIStep(b *testing.B) {
	sc := experiments.QuickScale()
	d := sc.Dataset(1)
	split := sc.ZSSplit(d, 1)
	cfg := sc.Pipeline(1)
	model, _ := cfg.Build(d.Schema)
	tc := cfg.PhaseIII
	tc.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TrainZSC(model, d, split, tc)
	}
}

// BenchmarkDimensionAblation regenerates the HDC design-choice ablation
// (DESIGN.md): nearest-prototype accuracy and codebook storage across the
// hypervector-dimension sweep, factored (g ⊙ v) vs materialized vectors.
func BenchmarkDimensionAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunDimensionAblation(experiments.DefaultAblationDims(), 20, 5, 1)
		if i == 0 {
			b.Log("\n" + r.Format())
		}
	}
}

// --- Inference-engine benchmarks (internal/infer). ---

func engineBenchSetup(classes, probes, d int) (*hdc.ItemMemory, []*hdc.Binary) {
	rng := rand.New(rand.NewSource(7))
	im := hdc.NewItemMemory(d)
	for c := 0; c < classes; c++ {
		im.Store(fmt.Sprintf("class%d", c), hdc.NewRandomBinary(rng, d))
	}
	batch := make([]*hdc.Binary, probes)
	for p := range batch {
		batch[p] = hdc.NewRandomBinary(rng, d)
	}
	return im, batch
}

// BenchmarkItemMemoryPerProbeScan is the pre-engine serving pattern: a
// sequential ItemMemory.Query per probe, 256 probes × 200 classes at the
// paper's d=1536. The baseline BenchmarkEngineBatchedQuery is measured
// against.
func BenchmarkItemMemoryPerProbeScan(b *testing.B) {
	im, batch := engineBenchSetup(200, 256, 1536)
	out := make([]int, len(batch))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p, probe := range batch {
			_, out[p], _ = im.Query(probe)
		}
	}
}

// BenchmarkEngineBatchedQuery runs the identical workload through the
// batched inference engine's sharded binary backend: fixed-width fused
// argmin kernels over the contiguous class slab, one goroutine worker
// per shard (single-shard on one core; the margin widens with cores).
func BenchmarkEngineBatchedQuery(b *testing.B) {
	im, batch := engineBenchSetup(200, 256, 1536)
	eng := infer.New(infer.NewBinaryBackend(im))
	probes := infer.PackedBatch(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Query(probes, 1)
	}
}

// BenchmarkEngineFloatBackend measures the reference float cosine path
// through the same engine seam (the EvalZSC readout), for comparison
// with the packed path above.
func BenchmarkEngineFloatBackend(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	const classes, probes, d = 200, 256, 1536
	phi := tensor.Rademacher(rng, classes, d)
	x := tensor.Randn(rng, 1, probes, d)
	eng := infer.New(infer.NewFloatBackend(phi, nil, 0.05))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Query(infer.DenseBatch(x), 1)
	}
}

// --- Serving-layer benchmarks (internal/serve). ---

// servingScale is the serving benchmark workload: an ImageNet-class
// memory (1000 classes) at the paper's d=1536 — the production posture
// the ROADMAP aims at, where per-probe engine work dominates and the
// coalescer's per-request overhead must stay in the noise.
const (
	servingClasses = 1000
	servingDim     = 1536
	servingBatch   = 32
)

// BenchmarkEngineBatch32RawQuery is the reference the serving layer is
// measured against: the raw batched path at the coalescer's MaxBatch,
// 32 probes per Engine.Query. ns/op is per batch; divide by 32 for the
// per-probe cost compared with BenchmarkServeCoalesced.
func BenchmarkEngineBatch32RawQuery(b *testing.B) {
	im, batch := engineBenchSetup(servingClasses, servingBatch, servingDim)
	eng := infer.New(infer.NewBinaryBackend(im))
	probes := infer.PackedBatch(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Query(probes, 1)
	}
}

// BenchmarkServeCoalesced drives the micro-batching serving layer with
// independent single-probe clients (64 concurrent callers per core) over
// the identical workload. ns/op is per probe: the acceptance bar is
// ≥ 80% of the per-probe throughput of BenchmarkEngineBatch32RawQuery,
// i.e. ns/op ≤ raw_ns_per_op/32/0.8. The ratio is logged with -v.
func BenchmarkServeCoalesced(b *testing.B) {
	im, batch := engineBenchSetup(servingClasses, 256, servingDim)
	eng := infer.New(infer.NewBinaryBackend(im))
	co := serve.NewCoalescer(eng, serve.Config{MaxBatch: servingBatch, MaxDelay: 2 * time.Millisecond})
	defer co.Close()
	ctx := context.Background()
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		j := 0
		for pb.Next() {
			if _, err := co.Classify(ctx, serve.Probe{Packed: batch[j%len(batch)]}, 1); err != nil {
				// Fatal would Goexit the wrong goroutine inside RunParallel;
				// Error is goroutine-safe and still fails the benchmark.
				b.Error(err)
				return
			}
			j++
		}
	})
	b.StopTimer()
	s := co.Stats()
	b.Logf("coalescer: %d requests → %d batches (mean %.1f probes/batch; %d full, %d timer flushes)",
		s.Requests, s.Batches, s.MeanBatch, s.FullFlushes, s.TimerFlushes)
}

// --- Distributed serving benchmark (internal/dist). ---

// BenchmarkDistScatterGather measures the scatter-gather hot path at
// the serving workload: a 32-probe batch against the 1000-class d=1536
// float memory split over 4 loopback shard servers — frame encode, TCP
// round trip, per-shard candidate decode, and the router's global merge
// per iteration. ns/op is per batch, directly comparable to
// BenchmarkEngineBatch32RawQuery (the same workload on one in-process
// engine); the gap is the wire cost of horizontal class-capacity. MB/s
// is probe-slab throughput (the scattered query payload).
func BenchmarkDistScatterGather(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	const nShards, k = 4, 5
	phi := tensor.Rademacher(rng, servingClasses, servingDim)
	backend := infer.NewFloatBackend(phi, nil, 0.05)
	layout := dist.Layout{Classes: servingClasses, Dim: servingDim}
	for _, r := range infer.SplitRanges(servingClasses, nShards) {
		eng, err := infer.NewChecked(infer.NewRangeBackend(backend, r[0], r[1]))
		if err != nil {
			b.Fatal(err)
		}
		srv, err := dist.NewShardServer([]dist.Slab{{Base: r[0], Engine: eng}})
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		layout.Shards = append(layout.Shards, dist.ShardSpec{Range: r, Replicas: []string{ln.Addr().String()}})
	}
	router, err := dist.NewRouter(layout, dist.RouterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer router.Close()

	x := tensor.Randn(rng, 1, servingBatch, servingDim)
	batch := infer.DenseBatch(x)
	b.SetBytes(int64(servingBatch * servingDim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := router.TryQuery(batch, k); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end pipeline benchmark (nn Infer + internal/infer). ---

// BenchmarkEndToEndClassify measures the full embed+readout path at
// ResNet-embedding scale — 128 raw 16×16 images through a frozen micro
// ResNet50 (d'=256 → d=1536 projection) into a float engine over 50
// classes — comparing the legacy serial embedding (eval Forward, the
// pre-PR-3 wall-clock floor) against the serving pipeline: worker
// goroutines sharing ONE compiled frozen-graph plan (BN folded,
// bias/ReLU/residual fused into the GEMM write-back, pre-scheduled
// buffers — see nn.CompiledNet). Predictions match eval Forward within
// the BN-folding tolerance and are bitwise identical across worker
// counts; the margin is the PR-5 tentpole speedup and scales further
// with cores.
func BenchmarkEndToEndClassify(b *testing.B) {
	const (
		classes, d     = 50, 1536
		img, samples   = 16, 128
		embedBatchSize = 32
	)
	rng := rand.New(rand.NewSource(11))
	enc := core.NewImageEncoder(rng, nn.MicroResNet50Config(8), d)
	eng := infer.New(infer.NewFloatBackend(tensor.Rademacher(rng, classes, d), nil, 0.05))
	images := tensor.Randn(rng, 1, samples, 3, img, img)
	sample := func(lo, hi int) *tensor.Tensor {
		sz := 3 * img * img
		return tensor.FromSlice(images.Data[lo*sz:hi*sz], hi-lo, 3, img, img)
	}

	b.Run("serial-embed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for at := 0; at < samples; at += embedBatchSize {
				end := min(at+embedBatchSize, samples)
				emb := enc.Forward(sample(at, end), false)
				eng.Query(infer.DenseBatch(emb), 1)
			}
		}
	})
	parallel := func(b *testing.B, compiled *nn.CompiledNet) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			jobs := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					sc := nn.GetScratch()
					defer nn.PutScratch(sc)
					for at := range jobs {
						end := min(at+embedBatchSize, samples)
						sc.Reset()
						emb := compiled.Infer(sample(at, end), sc)
						eng.Query(infer.DenseBatch(emb), 1)
					}
				}()
			}
			for at := 0; at < samples; at += embedBatchSize {
				jobs <- at
			}
			close(jobs)
			wg.Wait()
		}
	}
	b.Run("parallel-embed", func(b *testing.B) {
		parallel(b, enc.Compiled())
	})
	// The PR-6 tentpole row: the identical pipeline through the quantized
	// compiled plan (per-channel int8 GEMMs, activations int8 between
	// steps, dequant at the embedding boundary — see nn.CompileQuantized),
	// calibrated on the first embedding batch of the workload.
	b.Run("parallel-embed-int8", func(b *testing.B) {
		quantized, err := enc.CompiledInt8(sample(0, embedBatchSize))
		if err != nil {
			b.Fatal(err)
		}
		parallel(b, quantized)
	})
}

// BenchmarkCompiledInfer isolates the frozen-graph compiler's win on
// the embedding hot path: the same batch-32 encoder call, layer-by-
// layer stateless Infer vs the compiled plan (BN folded, epilogues
// fused, zero-alloc buffer schedule). Archived in BENCH_pr5.json.
func BenchmarkCompiledInfer(b *testing.B) {
	const d, img = 1536, 16
	rng := rand.New(rand.NewSource(13))
	enc := core.NewImageEncoder(rng, nn.MicroResNet50Config(8), d)
	x := tensor.Randn(rng, 1, 32, 3, img, img)
	b.Run("layers", func(b *testing.B) {
		sc := nn.NewScratch()
		for i := 0; i < b.N; i++ {
			sc.Reset()
			enc.Infer(x, sc)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		cn := enc.Compiled()
		sc := nn.NewScratch()
		for i := 0; i < b.N; i++ {
			sc.Reset()
			cn.Infer(x, sc)
		}
	})
}

// BenchmarkQuantizedInfer isolates the int8 lowering's win over the f32
// compiled plan on the same batch-32 encoder call: per-channel int8
// GEMMs with fused dequant/bias/ReLU/residual epilogues and int8
// activations between plan steps, vs the f32 plan those steps were
// derived from. Both rows are warm-plan, zero-alloc, and bitwise
// deterministic across worker budgets. Archived in BENCH_pr6.json.
func BenchmarkQuantizedInfer(b *testing.B) {
	const d, img = 1536, 16
	rng := rand.New(rand.NewSource(13))
	enc := core.NewImageEncoder(rng, nn.MicroResNet50Config(8), d)
	x := tensor.Randn(rng, 1, 32, 3, img, img)
	b.Run("f32", func(b *testing.B) {
		cn := enc.Compiled()
		sc := nn.NewScratch()
		for i := 0; i < b.N; i++ {
			sc.Reset()
			cn.Infer(x, sc)
		}
	})
	b.Run("int8", func(b *testing.B) {
		cq, err := enc.CompiledInt8(x)
		if err != nil {
			b.Fatal(err)
		}
		sc := nn.NewScratch()
		for i := 0; i < b.N; i++ {
			sc.Reset()
			cq.Infer(x, sc)
		}
	})
}

// BenchmarkGEMM sweeps the packed register-blocked GEMM (internal/tensor
// pack.go) over square and pipeline-shaped products: the conv-shaped
// sizes are the batched im2col products of the micro ResNet embedding
// path (M=outC, K=inC·kH·kW, N=batch·oh·ow) and the projection matmul.
// The MB/s column reports FLOP/s (2·m·k·n "bytes" per op). Archived in
// BENCH_pr4.json by scripts/bench.sh to track the kernel PR over PR.
func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	for _, sh := range tensor.GemmBenchShapes {
		b.Run(sh.Name, func(b *testing.B) {
			x := tensor.Randn(rng, 1, sh.M, sh.K)
			y := tensor.Randn(rng, 1, sh.K, sh.N)
			dst := tensor.New(sh.M, sh.N)
			var buf tensor.GemmBuf
			b.SetBytes(int64(2 * sh.M * sh.K * sh.N))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.GemmInto(dst, x, y, tensor.GemmOpts{Buf: &buf})
			}
		})
	}
}

// BenchmarkGemm8 sweeps the packed int8 GEMM (internal/tensor pack8.go)
// over the same pipeline shapes as BenchmarkGEMM, with the quantized
// epilogue fused (per-row dequant scale, ReLU, int8 requantize) exactly
// as the compiled int8 plan runs it. The MB/s column reports int8 MAC/s
// (2·m·k·n per op), directly comparable to BenchmarkGEMM's FLOP/s.
func BenchmarkGemm8(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	for _, sh := range tensor.GemmBenchShapes {
		b.Run(sh.Name, func(b *testing.B) {
			w := make([]int8, sh.M*sh.K)
			for i := range w {
				w[i] = int8(rng.Intn(2*tensor.Gemm8WMax+1) - tensor.Gemm8WMax)
			}
			pw := tensor.PackB8(w, sh.M, sh.K)
			x := make([]int8, sh.K*sh.N)
			for i := range x {
				x[i] = int8(rng.Intn(2*tensor.Gemm8AMax+1) - tensor.Gemm8AMax)
			}
			sc := make([]float32, sh.M)
			for i := range sc {
				sc[i] = 1 / float32(sh.K)
			}
			dst := make([]int8, sh.M*sh.N)
			var buf tensor.GemmBuf
			o := tensor.Gemm8Opts{RowScale: sc, ReLU: true, InvOutScale: 16, Buf: &buf}
			b.SetBytes(int64(2 * sh.M * sh.K * sh.N))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.Gemm8QInto(dst, pw, x, sh.N, o)
			}
		})
	}
}

// BenchmarkIMCRobustness measures the analog-crossbar similarity readout
// of the §V deployment outlook: accuracy of nearest-class retrieval under
// typical PCM non-idealities vs ideal arithmetic (logged once).
func BenchmarkIMCRobustness(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const classes, d = 50, 1024
	phi := tensor.Rademacher(rng, classes, d)
	x := tensor.New(classes, d)
	for c := 0; c < classes; c++ {
		copy(x.Row(c), phi.Row(c))
		for j := 0; j < d/10; j++ {
			p := rng.Intn(d)
			x.Row(c)[p] = -x.Row(c)[p]
		}
	}
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		k := imc.NewSimilarityKernel(phi, 1, imc.TypicalPCM())
		hits = 0
		for c, y := range tensor.ArgMax(k.Logits(x)) {
			if y == c {
				hits++
			}
		}
	}
	b.StopTimer()
	b.Logf("analog readout accuracy under TypicalPCM: %d/%d", hits, classes)
}
