package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/classmem"
	"repro/internal/infer"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// The production-hardening acceptance run: one real hdcserve process is
// driven into overload (shedding must engage, accepted requests must
// stay correct and bounded), hot-reloaded over SIGHUP and POST
// /v1/reload under live traffic (zero failed requests), probed through
// the liveness/readiness split, measured by the real cmd/hdcload
// harness, and finally drained cleanly on SIGTERM.

// Geometry sized so one engine worker needs ~milliseconds per batch:
// overload must be reachable with a few hundred concurrent requests.
const (
	chaosClasses   = 512
	chaosDim       = 2048
	chaosSeed      = 7
	chaosWatermark = 16
)

// chaosStats is the slice of GET /stats this test reads.
type chaosStats struct {
	Models map[string]struct {
		Shed       uint64 `json:"shed"`
		Requests   uint64 `json:"requests"`
		QueueDepth int64  `json:"queue_depth"`
		QueueWait  *struct {
			Count uint64  `json:"count"`
			P99   float64 `json:"p99_ms"`
		} `json:"queue_wait"`
	} `json:"models"`
}

func getChaosStats(t *testing.T, addr string) chaosStats {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s chaosStats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServeOverloadReloadChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	serveBin := buildBinary(t, dir, "hdcserve")
	loadBin := buildBinary(t, dir, "hdcload")

	front := exec.Command(serveBin,
		"-addr", "127.0.0.1:0",
		"-backends", "float",
		"-embedder=false",
		"-classes", fmt.Sprint(chaosClasses),
		"-d", fmt.Sprint(chaosDim),
		"-seed", fmt.Sprint(chaosSeed),
		"-workers", "1",
		"-max-batch", "8",
		"-max-delay", "5ms",
		"-watermark", fmt.Sprint(chaosWatermark),
		"-max-inflight", "1",
	)
	stderr, err := front.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := front.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	t.Cleanup(func() {
		if !exited {
			_ = front.Process.Kill()
			_ = front.Wait()
		}
	})
	addr := awaitListening(t, stderr, "hdcserve")

	// The oracle: the identical seed-derived memory in-process.
	be, err := classmem.Build(chaosClasses, chaosDim, chaosSeed).Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	oracle := infer.New(be)
	const probes = 24
	x := tensor.New(probes, chaosDim)
	fillChaosProbes(x)
	want, err := oracle.TryQuery(infer.DenseBatch(x), 3)
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([][]byte, probes)
	for p := range bodies {
		bodies[p], _ = json.Marshal(serve.ClassifyRequest{Model: "float", K: 3, Embedding: x.Row(p)})
	}

	// classify POSTs probe p and verifies an accepted response against
	// the oracle; returns the status code.
	classify := func(p int) (int, string, error) {
		resp, err := http.Post("http://"+addr+"/v1/classify", "application/json", bytes.NewReader(bodies[p]))
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		retryAfter := resp.Header.Get("Retry-After")
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return resp.StatusCode, retryAfter, nil
		}
		var cr serve.ClassifyResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			return 0, "", err
		}
		for i, h := range want[p].TopK {
			got := cr.TopK[i]
			if got.Class != h.Class || got.Label != h.Label || got.Score != h.Score {
				return 0, "", fmt.Errorf("probe %d hit %d: %+v, want %+v", p, i, got, h)
			}
		}
		return http.StatusOK, retryAfter, nil
	}

	// readyz/healthz split: both up while serving.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// --- Phase 1: overload. Far more concurrent requests than the
	// watermark admits: shedding must engage (429 + Retry-After), every
	// accepted ranking must match the oracle, and the queue depth the
	// server reports must stay bounded by the watermark (plus transient
	// admission overshoot).
	const flood = 400
	var okN, shedN atomic.Int64
	var maxDepth atomic.Int64
	errCh := make(chan error, flood)
	stopSample := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stopSample:
				return
			default:
			}
			s := getChaosStats(t, addr)
			if d := s.Models["float"].QueueDepth; d > maxDepth.Load() {
				maxDepth.Store(d)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, retryAfter, err := classify(i % probes)
			switch {
			case err != nil:
				errCh <- err
			case status == http.StatusOK:
				okN.Add(1)
			case status == http.StatusTooManyRequests:
				if retryAfter == "" {
					errCh <- fmt.Errorf("429 without Retry-After")
					return
				}
				shedN.Add(1)
			default:
				errCh <- fmt.Errorf("unexpected status %d under overload", status)
			}
		}(i)
	}
	wg.Wait()
	close(stopSample)
	sampler.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if okN.Load() == 0 || shedN.Load() == 0 {
		t.Fatalf("overload phase: ok=%d shed=%d — want both nonzero", okN.Load(), shedN.Load())
	}
	// Transient overshoot: concurrent admissions can each optimistically
	// increment before backing out; bound by the flood size but expect
	// watermark-ish. Allow 2× headroom over watermark + samplers' skew.
	if d := maxDepth.Load(); d > 2*chaosWatermark+8 {
		t.Fatalf("queue depth reached %d with watermark %d", d, chaosWatermark)
	}
	s := getChaosStats(t, addr)
	ms := s.Models["float"]
	if ms.Shed == 0 {
		t.Fatalf("server-side shed counter still zero: %+v", ms)
	}
	if ms.QueueWait == nil || ms.QueueWait.Count == 0 {
		t.Fatal("no queue-wait samples after the flood")
	}
	// Bounded queueing for accepted requests: 16 probes ahead at ~ms per
	// batch is tens of ms; a second would mean the watermark failed.
	if ms.QueueWait.P99 > 1000 {
		t.Fatalf("queue-wait p99 %.1fms unbounded despite shedding", ms.QueueWait.P99)
	}

	// --- Phase 2: hot reload under live traffic. A steady stream (below
	// the watermark) runs while SIGHUP and POST /v1/reload swap the
	// engines; zero requests may fail, and rankings stay byte-identical
	// (same seed ⇒ same memory).
	stop := make(chan struct{})
	errs2 := make(chan error, 16)
	var served2 atomic.Int64
	var lwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		lwg.Add(1)
		go func(w int) {
			defer lwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				status, _, err := classify((w*7 + i) % probes)
				if err != nil {
					errs2 <- err
					return
				}
				if status != http.StatusOK {
					errs2 <- fmt.Errorf("reload phase: status %d", status)
					return
				}
				served2.Add(1)
			}
		}(w)
	}
	for i := 0; i < 3; i++ {
		time.Sleep(100 * time.Millisecond)
		if err := front.Process.Signal(syscall.SIGHUP); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	resp, err := http.Post("http://"+addr+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/reload: status %d", resp.StatusCode)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	lwg.Wait()
	close(errs2)
	for err := range errs2 {
		t.Fatal(err)
	}
	if served2.Load() == 0 {
		t.Fatal("reload phase served nothing")
	}

	// --- Phase 3: the open-loop harness end to end against the same
	// process. Modest rate so the phase is quick; the report must show
	// successes and a sane latency snapshot.
	reportPath := filepath.Join(dir, "load.json")
	out, err := exec.Command(loadBin,
		"-addr", addr,
		"-model", "float",
		"-rate", "300",
		"-duration", "1s",
		"-out", reportPath,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("hdcload: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Sent    uint64 `json:"sent"`
		OK      uint64 `json:"ok"`
		Latency struct {
			Count uint64  `json:"count"`
			P99   float64 `json:"p99_ms"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad hdcload report: %v\n%s", err, raw)
	}
	if rep.Sent == 0 || rep.OK == 0 || rep.Latency.Count != rep.OK {
		t.Fatalf("hdcload report implausible: %s", raw)
	}

	// --- Phase 4: graceful drain. SIGTERM must exit cleanly.
	if err := front.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- front.Wait() }()
	select {
	case err := <-waitErr:
		exited = true
		if err != nil {
			t.Fatalf("hdcserve did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hdcserve did not exit within 15s of SIGTERM")
	}
}

// fillChaosProbes writes deterministic pseudo-random probe content —
// a tiny LCG, so the oracle and the HTTP bodies agree without sharing
// an rng instance.
func fillChaosProbes(x *tensor.Tensor) {
	state := uint64(0x9e3779b97f4a7c15)
	for i := range x.Data {
		state = state*6364136223846793005 + 1442695040888963407
		x.Data[i] = float32(int32(state>>33))/float32(1<<31)*2 - 1
	}
}
