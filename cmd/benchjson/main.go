// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON on stdout, so benchmark runs can be archived
// and diffed across PRs (scripts/bench.sh wires it up; BENCH_pr3.json
// was the first archived snapshot).
//
//	go test . -run '^$' -bench . | go run ./cmd/benchjson > bench.json
//
// Each benchmark line becomes one record: name (sub-benchmarks keep
// their slash-joined names), GOMAXPROCS suffix, iteration count,
// ns/op, and any extra value/unit pairs (B/op, allocs/op, custom
// b.ReportMetric units). Non-benchmark lines are ignored except the
// goos/goarch/pkg/cpu header, which is captured as run metadata.
//
// Regression-gate mode: with -baseline, the run on stdin (bench text,
// or an archived JSON report with -json) is compared per benchmark
// against the baseline report, a delta table is printed to stdout (the
// verdict line goes to stderr), and the exit status is non-zero when
// any SHARED benchmark slowed by more than -max-regress percent — the
// CI perf gate. Metric pairs both runs report (MB/s, B/op, custom
// b.ReportMetric units) are additionally diffed as indented "(info)"
// rows under their benchmark; they never affect the gate. Benchmarks present only in the new run are reported as
// "new" and benchmarks only in the baseline as "dropped"; both are
// informational and never trip the gate, so growing the suite (e.g.
// adding BenchmarkCompiledInfer in PR 5) cannot fail CI against an
// older baseline.
//
//	./scripts/bench.sh '' new.json
//	go run ./cmd/benchjson -baseline BENCH_pr4.json -json < new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full converted run.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkEndToEndClassify/serial-embed-8   2   308176244 ns/op   12 B/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)

// metricPair matches one trailing "<value> <unit>" measurement.
var metricPair = regexp.MustCompile(`([0-9.e+-]+) (\S+)`)

// parseBenchText converts `go test -bench` text into a Report.
func parseBenchText(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		if m[2] != "" {
			r.Procs, _ = strconv.Atoi(m[2])
		}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		for _, p := range metricPair.FindAllStringSubmatch(m[5], -1) {
			v, err := strconv.ParseFloat(p[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[p[2]] = v
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("no benchmark lines found on stdin")
	}
	return rep, nil
}

// loadReport reads an archived JSON report from path.
func loadReport(path string) (Report, error) {
	var rep Report
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compare prints a per-benchmark delta table (negative = faster than
// the baseline) and returns the names of shared benchmarks that slowed
// by more than maxRegress percent, plus the counts of benchmarks only
// one side has. Benchmarks present only in the new run are INFORMATIONAL
// ("new" rows) and can never trip the gate — adding a benchmark to the
// suite must not fail CI against an older baseline; the gate compares
// only the intersection.
func compare(w io.Writer, base, cur Report, maxRegress float64) (regressed []string, added, dropped int) {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	fmt.Fprintf(w, "%-55s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			added++
			fmt.Fprintf(w, "%-55s %14s %14.0f %9s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		delete(baseBy, r.Name)
		if b.NsPerOp == 0 {
			continue
		}
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		fmt.Fprintf(w, "%-55s %14.0f %14.0f %+8.1f%%\n", r.Name, b.NsPerOp, r.NsPerOp, delta)
		if delta > maxRegress {
			regressed = append(regressed, r.Name)
		}
		// Metric pairs both runs report (MB/s, B/op, custom b.ReportMetric
		// units) are diffed informationally: they contextualize an ns/op
		// move — e.g. throughput per wire byte on the scatter-gather bench
		// — but never trip the gate.
		var units []string
		for u := range r.Metrics {
			if _, ok := b.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			bv, cv := b.Metrics[u], r.Metrics[u]
			if bv == 0 {
				continue
			}
			fmt.Fprintf(w, "%-55s %14.2f %14.2f %+8.1f%%  (info)\n",
				"  "+r.Name+" ["+u+"]", bv, cv, (cv-bv)/bv*100)
		}
	}
	var gone []string
	for name := range baseBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-55s %14.0f %14s %9s\n", name, baseBy[name].NsPerOp, "-", "dropped")
	}
	return regressed, added, len(gone)
}

func main() {
	baseline := flag.String("baseline", "", "archived JSON report to diff the run on stdin against; exits non-zero on regression")
	jsonIn := flag.Bool("json", false, "stdin is an archived benchjson report, not go test -bench text")
	maxRegress := flag.Float64("max-regress", 25, "with -baseline: fail when any shared benchmark slows by more than this percent")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var cur Report
	var err error
	if *jsonIn {
		if err = json.NewDecoder(os.Stdin).Decode(&cur); err != nil {
			fail(fmt.Errorf("decoding JSON report from stdin: %w", err))
		}
	} else if cur, err = parseBenchText(os.Stdin); err != nil {
		fail(err)
	}

	if *baseline == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cur); err != nil {
			fail(err)
		}
		return
	}

	base, err := loadReport(*baseline)
	if err != nil {
		fail(err)
	}
	regressed, added, dropped := compare(os.Stdout, base, cur, *maxRegress)
	extra := ""
	if added > 0 {
		extra += fmt.Sprintf("; %d new benchmark(s) not in the baseline (informational)", added)
	}
	if dropped > 0 {
		extra += fmt.Sprintf("; %d baseline benchmark(s) missing from this run", dropped)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% vs %s: %s%s\n",
			len(regressed), *maxRegress, *baseline, strings.Join(regressed, ", "), extra)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no benchmark regressed more than %.0f%% vs %s%s\n", *maxRegress, *baseline, extra)
}
