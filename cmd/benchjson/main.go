// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON on stdout, so benchmark runs can be archived
// and diffed across PRs (scripts/bench.sh wires it up; BENCH_pr3.json
// is the first archived snapshot).
//
//	go test . -run '^$' -bench . | go run ./cmd/benchjson > bench.json
//
// Each benchmark line becomes one record: name (sub-benchmarks keep
// their slash-joined names), GOMAXPROCS suffix, iteration count,
// ns/op, and any extra value/unit pairs (B/op, allocs/op, custom
// b.ReportMetric units). Non-benchmark lines are ignored except the
// goos/goarch/pkg/cpu header, which is captured as run metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full converted run.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkEndToEndClassify/serial-embed-8   2   308176244 ns/op   12 B/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)

// metricPair matches one trailing "<value> <unit>" measurement.
var metricPair = regexp.MustCompile(`([0-9.e+-]+) (\S+)`)

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		if m[2] != "" {
			r.Procs, _ = strconv.Atoi(m[2])
		}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		for _, p := range metricPair.FindAllStringSubmatch(m[5], -1) {
			v, err := strconv.ParseFloat(p[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[p[2]] = v
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
