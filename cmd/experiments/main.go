// Command experiments regenerates every table and figure of the paper's
// evaluation section at laptop scale:
//
//	experiments [-full] [-out DIR] [table1|table2|fig4|fig5|memory|ablation|all]
//
// Each experiment prints its result in the paper's layout and, when -out
// is given, also writes a CSV. The default quick scale finishes in a few
// minutes on one CPU; -full uses the configuration behind EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the full-scale configuration (slower)")
	out := flag.String("out", "", "directory for CSV outputs (optional)")
	flag.Parse()

	sc := experiments.QuickScale()
	if *full {
		sc = experiments.FullScale()
	}
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}

	writeCSV := func(name, csv string) {
		if *out == "" {
			return
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", path)
	}
	report := func(problems []string) {
		if len(problems) == 0 {
			fmt.Println("  shape check: OK")
			return
		}
		for _, p := range problems {
			fmt.Printf("  shape check: WARN %s\n", p)
		}
	}
	timed := func(name string, fn func()) {
		start := time.Now()
		fmt.Printf("=== %s (scale %s) ===\n", name, sc.Name)
		fn()
		fmt.Printf("  [%.1fs]\n\n", time.Since(start).Seconds())
	}

	run := map[string]func(){
		"memory": func() {
			r := experiments.RunMemory()
			fmt.Print(r.Format())
			report(r.Check())
		},
		"table1": func() {
			r := experiments.RunTable1(sc)
			fmt.Print(r.Format())
			report(r.Check())
			writeCSV("table1.csv", r.CSV())
		},
		"table2": func() {
			r := experiments.RunTable2(sc)
			fmt.Print(r.Format())
			writeCSV("table2.csv", r.CSV())
		},
		"fig4": func() {
			r := experiments.RunFig4(sc)
			fmt.Print(r.Format())
			report(r.Check())
			writeCSV("fig4.csv", r.CSV())
		},
		"fig5": func() {
			r := experiments.RunFig5(sc)
			fmt.Print(r.Format())
			report(r.Check())
			writeCSV("fig5.csv", r.CSV())
		},
		"ablation": func() {
			classes, queries := 20, 5
			if *full {
				classes, queries = 40, 10
			}
			r := experiments.RunDimensionAblation(experiments.DefaultAblationDims(), classes, queries, 1)
			fmt.Print(r.Format())
			report(r.Check())
			writeCSV("ablation.csv", r.CSV())
		},
	}

	order := []string{"memory", "table1", "table2", "fig4", "fig5", "ablation"}
	if which == "all" {
		for _, name := range order {
			timed(name, run[name])
		}
		return
	}
	fn, ok := run[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want table1|table2|fig4|fig5|memory|ablation|all)\n", which)
		os.Exit(2)
	}
	timed(which, fn)
}
