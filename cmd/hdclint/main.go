// Command hdclint statically enforces the repository's hot-path
// contracts: zero allocation on //hdc:hotpath functions, bitwise
// determinism in the kernel packages, Param version-bump pairing for
// every value write, and asm/portable pairing for every assembly
// kernel. See internal/analysis for the analyzer suite.
//
// Two modes share the analyzers:
//
//	hdclint ./...                      # standalone: loads via `go list -export`
//	go vet -vettool=$(which hdclint) ./...  # vet driver: unitchecker .cfg protocol
//
// Exit status is non-zero when any diagnostic survives the //hdc:allow
// suppression pass, so both CI and local runs are blocking.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// cmd/go probes its vet tool with -V=full to fingerprint it; the
	// reply must be a single stable line.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println("hdclint version 1")
		return
	}
	// cmd/go also probes with -flags for the tool's flag definitions;
	// hdclint takes none, so the reply is an empty JSON list.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetTool(args[0]))
	}
	os.Exit(runStandalone(args))
}

func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdclint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "hdclint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// vetConfig is the JSON configuration cmd/go writes for -vettool
// tools (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hdclint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// cmd/go requires the facts file to exist after every run, even
	// for tools that exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hdclint"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "hdclint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: nothing to analyze, no facts to record
	}
	var ignored, other []string
	for _, f := range cfg.IgnoredFiles {
		switch filepath.Ext(f) {
		case ".go":
			ignored = append(ignored, f)
		case ".s":
			other = append(other, f)
		}
	}
	for _, f := range cfg.NonGoFiles {
		if filepath.Ext(f) == ".s" {
			other = append(other, f)
		}
	}
	exports := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.CheckFilesLookup(cfg.ImportPath, cfg.GoFiles, ignored, other, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 1
	}
	diags, err := analysis.RunPackage(pkg, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
