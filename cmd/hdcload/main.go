// Command hdcload is the open-loop latency harness for the serving
// stack: it offers Poisson traffic to a running hdcserve process at a
// fixed arrival rate and reports what the service actually delivered —
// goodput, shed rate, and the full latency distribution of accepted
// requests.
//
// Open loop is the operative property: arrivals are scheduled by the
// clock, not by completions, so a slowing server faces a growing
// backlog exactly as it would in production. Closed-loop harnesses
// (fire, wait, fire again) throttle themselves to the server's pace
// and systematically hide overload collapse — the coordinated-omission
// trap. Here every scheduled request fires on time no matter how many
// are still outstanding, which is precisely the regime the serving
// layer's watermark shedding (HTTP 429) exists for.
//
// The harness discovers the served geometry from GET /stats (probe
// dimensionality per model, input shape per embedder), pre-marshals a
// pool of request bodies so steady-state offering does no JSON work,
// and drives POST /v1/classify — plus, with -embed-frac, a fraction of
// POST /v1/embed-classify, and with -enroll-frac, a fraction of
// POST /v1/enroll (live enrollment mixed into open-loop traffic, each
// request appending a fresh uniquely-labeled class) — recording
// per-request latency into the same log-bucketed histogram the server
// uses internally (internal/lat). The report separates enroll latency
// from classify latency and counts the epoch flips the window drove
// (end epoch minus start epoch, read from /stats).
//
// Output is one JSON document (stdout, or -out file) summarizing the
// run: offered vs. achieved arrival rate, accepted/shed/error counts,
// goodput, and p50/p90/p99/p999/max latency over accepted requests.
// scripts/load.sh wraps it to produce the committed BENCH_load.json.
//
// Example:
//
//	hdcserve -classes 50 -d 512 -addr :8080 &
//	hdcload -addr localhost:8080 -model binary -rate 2000 -duration 10s -out BENCH_load.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lat"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "hdcserve address (host:port)")
		model      = flag.String("model", "", "model to classify against (empty: the single registered model)")
		embName    = flag.String("embedder", "", "embedder for -embed-frac traffic (empty: the single registered embedder)")
		rate       = flag.Float64("rate", 1000, "offered arrival rate, requests/second (Poisson)")
		duration   = flag.Duration("duration", 10*time.Second, "offered-load window")
		k          = flag.Int("k", 3, "ranked hits per request")
		embedFrac  = flag.Float64("embed-frac", 0, "fraction of requests sent to /v1/embed-classify (0..1)")
		enrollFrac = flag.Float64("enroll-frac", 0, "fraction of requests sent to /v1/enroll, each enrolling a fresh class (0..1)")
		bodies     = flag.Int("bodies", 64, "distinct pre-marshaled request bodies to cycle through")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		seed       = flag.Int64("seed", 1, "probe-content seed")
		out        = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if *rate <= 0 || *duration <= 0 || *embedFrac < 0 || *embedFrac > 1 || *bodies < 1 ||
		*enrollFrac < 0 || *enrollFrac > 1 || *enrollFrac+*embedFrac > 1 {
		fmt.Fprintln(os.Stderr, "hdcload: bad -rate/-duration/-embed-frac/-enroll-frac/-bodies")
		os.Exit(2)
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	geo, err := discover(base, *model, *embName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdcload:", err)
		os.Exit(1)
	}
	if *embedFrac > 0 && geo.inShape == nil {
		fmt.Fprintln(os.Stderr, "hdcload: -embed-frac set but the server registers no embedder")
		os.Exit(1)
	}

	// Pre-marshal the body pool: the offering loop must cost scheduling
	// plus one HTTP round trip, nothing else.
	rng := rand.New(rand.NewSource(*seed))
	classifyBodies := make([][]byte, *bodies)
	for i := range classifyBodies {
		emb := make([]float32, geo.dim)
		for j := range emb {
			emb[j] = rng.Float32()*2 - 1
		}
		classifyBodies[i] = mustJSON(map[string]any{"model": geo.model, "k": *k, "embedding": emb})
	}
	var embedBodies [][]byte
	if *embedFrac > 0 {
		n := 1
		for _, s := range geo.inShape {
			n *= s
		}
		embedBodies = make([][]byte, *bodies)
		for i := range embedBodies {
			in := make([]float32, n)
			for j := range in {
				in[j] = rng.Float32()
			}
			embedBodies[i] = mustJSON(map[string]any{
				"model": geo.model, "embedder": geo.embedder, "k": *k, "input": in,
			})
		}
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	// Enroll traffic reuses the probe pool as prototype vectors; labels
	// are unique per request (and pid-scoped, so repeated runs against a
	// durable store never collide on a label).
	var enrollVecs [][]float32
	if *enrollFrac > 0 {
		enrollVecs = make([][]float32, *bodies)
		for i := range enrollVecs {
			vec := make([]float32, geo.dim)
			for j := range vec {
				vec[j] = rng.Float32()*2 - 1
			}
			enrollVecs[i] = vec
		}
	}

	var sent, ok, shed, failed atomic.Uint64
	var enrolled, enrollFailed atomic.Uint64
	var hist, embedHist, enrollHist lat.Hist
	var wg sync.WaitGroup
	fire := func(url string, body []byte, h *lat.Hist) {
		defer wg.Done()
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		elapsed := time.Since(start)
		if err != nil {
			failed.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			ok.Add(1)
			h.Observe(elapsed)
		case resp.StatusCode == http.StatusTooManyRequests:
			shed.Add(1)
		default:
			failed.Add(1)
		}
	}

	// Enrolls marshal their own body (each label is unique, so there is
	// nothing to pre-marshal); their rarity keeps that off the latency
	// story. Any non-200 answer counts as a failed enrollment.
	enrollURL := base + "/v1/enroll"
	labelBase := fmt.Sprintf("load-%d", os.Getpid())
	fireEnroll := func(label string, vec []float32) {
		defer wg.Done()
		body := mustJSON(map[string]any{"label": label, "vector": vec})
		start := time.Now()
		resp, err := client.Post(enrollURL, "application/json", bytes.NewReader(body))
		elapsed := time.Since(start)
		if err != nil {
			enrollFailed.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			enrollFailed.Add(1)
			return
		}
		enrolled.Add(1)
		enrollHist.Observe(elapsed)
	}

	// Open-loop offering: the schedule is absolute (start + cumulative
	// exponential gaps), so sleep overshoot does not compress the offered
	// rate, and a late wakeup fires every request the schedule owes.
	classifyURL := base + "/v1/classify"
	embedURL := base + "/v1/embed-classify"
	arrivals := rand.New(rand.NewSource(*seed + 0x10ad))
	start := time.Now()
	deadline := start.Add(*duration)
	next := start
	i := 0
	for {
		gap := time.Duration(arrivals.ExpFloat64() / *rate * float64(time.Second))
		next = next.Add(gap)
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		sent.Add(1)
		wg.Add(1)
		var mix float64
		if *enrollFrac > 0 || embedBodies != nil {
			mix = arrivals.Float64()
		}
		switch {
		case *enrollFrac > 0 && mix < *enrollFrac:
			go fireEnroll(fmt.Sprintf("%s-%06d", labelBase, i), enrollVecs[i%len(enrollVecs)])
		case embedBodies != nil && mix < *enrollFrac+*embedFrac:
			go fire(embedURL, embedBodies[i%len(embedBodies)], &embedHist)
		default:
			go fire(classifyURL, classifyBodies[i%len(classifyBodies)], &hist)
		}
		i++
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Target:       base,
		Model:        geo.model,
		K:            *k,
		OfferedRate:  *rate,
		AchievedRate: float64(sent.Load()) / elapsed.Seconds(),
		DurationS:    elapsed.Seconds(),
		Sent:         sent.Load(),
		OK:           ok.Load(),
		Shed:         shed.Load(),
		Failed:       failed.Load(),
		GoodputRPS:   float64(ok.Load()) / elapsed.Seconds(),
		Latency:      hist.Snapshot(),
	}
	if sent.Load() > 0 {
		rep.ShedRate = float64(shed.Load()) / float64(sent.Load())
	}
	if *embedFrac > 0 {
		s := embedHist.Snapshot()
		rep.EmbedLatency = &s
	}
	if *enrollFrac > 0 {
		rep.Enrolls = enrolled.Load()
		rep.EnrollFailed = enrollFailed.Load()
		s := enrollHist.Snapshot()
		rep.EnrollLatency = &s
		// Epoch flips the window actually drove: the published epoch
		// advanced once per accepted enrollment, measured server-side so
		// distributed deployments report the router's count.
		if end, err := discover(base, geo.model, ""); err == nil {
			rep.EpochFlips = end.epoch - geo.epoch
		}
	}
	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hdcload:", err)
		os.Exit(1)
	}
	// A run where nothing succeeded is a failed measurement, not a report.
	if ok.Load() == 0 {
		fmt.Fprintln(os.Stderr, "hdcload: no request succeeded")
		os.Exit(1)
	}
}

// report is the JSON summary of one offered-load window. Latency
// covers accepted (200) requests only: shed requests fail in
// microseconds by design and would flatter the distribution.
type report struct {
	Target       string        `json:"target"`
	Model        string        `json:"model"`
	K            int           `json:"k"`
	OfferedRate  float64       `json:"offered_rate_rps"`
	AchievedRate float64       `json:"achieved_rate_rps"`
	DurationS    float64       `json:"duration_s"`
	Sent         uint64        `json:"sent"`
	OK           uint64        `json:"ok"`
	Shed         uint64        `json:"shed"`                    // HTTP 429: watermark load shedding
	Failed       uint64        `json:"failed"`                  // transport errors and non-200/429 statuses
	ShedRate     float64       `json:"shed_rate"`               // shed / sent
	GoodputRPS   float64       `json:"goodput_rps"`             // accepted requests per second
	Latency      lat.Snapshot  `json:"latency"`                 // accepted /v1/classify requests
	EmbedLatency *lat.Snapshot `json:"embed_latency,omitempty"` // accepted /v1/embed-classify requests

	// Live-enrollment traffic (-enroll-frac > 0 only).
	Enrolls       uint64        `json:"enrolls,omitempty"`        // accepted /v1/enroll requests
	EnrollFailed  uint64        `json:"enroll_failed,omitempty"`  // errored /v1/enroll requests
	EpochFlips    uint64        `json:"epoch_flips,omitempty"`    // server-side epoch advance over the window
	EnrollLatency *lat.Snapshot `json:"enroll_latency,omitempty"` // accepted /v1/enroll requests
}

// geometry is what the harness needs from the server to build valid
// probes: the classify dimensionality and the embedder input shape.
type geometry struct {
	model    string
	dim      int
	epoch    uint64
	embedder string
	inShape  []int
}

// discover reads GET /stats and resolves the target model and embedder
// geometry, mirroring the registry's single-registration shorthand for
// empty names.
func discover(base, model, embedder string) (geometry, error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return geometry{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return geometry{}, fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	var stats struct {
		Models map[string]struct {
			Dim   int    `json:"dim"`
			Epoch uint64 `json:"epoch"`
		} `json:"models"`
		Embedders map[string]struct {
			InShape []int `json:"in_shape"`
		} `json:"embedders"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return geometry{}, fmt.Errorf("GET /stats: %v", err)
	}
	g := geometry{model: model, embedder: embedder}
	if g.model == "" {
		if len(stats.Models) != 1 {
			return geometry{}, fmt.Errorf("-model required: server registers %d models", len(stats.Models))
		}
		for name := range stats.Models {
			g.model = name
		}
	}
	m, okM := stats.Models[g.model]
	if !okM {
		return geometry{}, fmt.Errorf("server does not register model %q", g.model)
	}
	g.dim = m.Dim
	g.epoch = m.Epoch
	if g.embedder == "" && len(stats.Embedders) == 1 {
		for name := range stats.Embedders {
			g.embedder = name
		}
	}
	if e, okE := stats.Embedders[g.embedder]; okE {
		g.inShape = e.InShape
	}
	return g, nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
