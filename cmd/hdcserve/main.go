// Command hdcserve runs the HTTP serving layer over the batched
// inference engine: one process, one frozen HDC-ZSC class memory, three
// backends served side by side behind micro-batching coalescers.
//
//	hdcserve [flags]
//
// The class memory is built at startup the way the paper's edge
// deployment would ship it: bundled class prototypes from the
// stationary HDC attribute encoder over a SynthCUB class set
// (internal/classmem), realized as float embeddings (reference cosine
// path), a packed binary item memory (XOR+popcount edge path), and an
// analog crossbar with typical PCM non-idealities (§V outlook). Each
// backend gets its own shared concurrency-safe engine and coalescer,
// registered under its backend name ("float", "binary", "imc").
//
// With -router shards.json the process serves a DISTRIBUTED class
// memory instead: no local engines — the registered model is a
// dist.Router that consistent-hash-routes every coalesced probe batch
// to the cmd/hdcshard processes in the routing table, merges their
// candidate lists with the engine's own comparator, and fails over
// between replicas. The HTTP surface is unchanged; /v1/classify and
// /v1/embed-classify transparently serve from N shard processes, with
// rankings byte-identical to a single-process deployment of the same
// memory (float/binary backends).
//
// The process also serves end to end: a frozen ResNet image encoder
// (the paper's γ at laptop scale) is registered as an embedder and run
// through the stateless nn Infer path, so POST /v1/embed-classify
// accepts raw image tensors and classifies them against any backend —
// no client-side embedding required. One shared frozen network serves
// every in-flight request concurrently. With -precision both (the
// default) the encoder is additionally served through its quantized
// int8 compiled plan as "resnet-int8": same frozen weights, per-channel
// symmetric int8 GEMMs, activations int8 between plan steps (see
// nn.CompileQuantized) — the software twin of the paper's low-precision
// deployment story.
//
// Overload: the coalescers shed requests past the -watermark queue
// depth (HTTP 429 + Retry-After) instead of queuing without bound, so
// the latency of accepted requests stays bounded at any offered load;
// -watermark 0 restores blocking backpressure. cmd/hdcload is the
// matching open-loop harness.
//
// Hot reload: SIGHUP or POST /v1/reload rebuilds the class-memory
// engines and embedders from the startup seed and atomically swaps them
// behind the running coalescers — in-flight requests finish on the old
// state, later requests see the new, and no request fails. In -router
// mode only the embedders reload (the shard processes own the class
// memory).
//
// Shutdown: SIGINT or SIGTERM flips /readyz to 503, stops accepting new
// HTTP requests, drains in-flight requests and pending coalescer
// batches within -drain, then exits; a second signal aborts
// immediately.
//
// API:
//
//	POST /v1/classify        {"model":"binary","k":5,"embedding":[...]}
//	POST /v1/embed-classify  {"model":"float","embedder":"resnet","k":3,"input":[...3·H·W floats...]}
//	POST /v1/reload
//	GET  /healthz
//	GET  /readyz
//	GET  /stats
//
// Example:
//
//	hdcserve -classes 50 -d 1536 -addr :8080 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/classify -H 'Content-Type: application/json' \
//	  -d '{"model":"binary","k":3,"embedding":[0.12,-0.7,...]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/classmem"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (0 port resolves at bind)")
		classes      = flag.Int("classes", 50, "number of classes in the frozen memory")
		dim          = flag.Int("d", 1536, "hypervector dimensionality")
		seed         = flag.Int64("seed", 1, "master seed for the synthetic class memory")
		workers      = flag.Int("workers", 0, "engine shard workers per backend (0 = NumCPU)")
		maxBatch     = flag.Int("max-batch", 32, "coalescer: flush when this many probes are pending")
		maxDelay     = flag.Duration("max-delay", 2*time.Millisecond, "coalescer: flush at latest this long after the first pending probe")
		minDelay     = flag.Duration("min-delay", 0, "coalescer: floor of the adaptive flush delay (0 = 100µs)")
		watermark    = flag.Int("watermark", -1, "coalescer: shed (429) once this many requests are queued (-1 = 4×max-batch, 0 = block instead of shedding)")
		maxInFlight  = flag.Int("max-inflight", 0, "coalescer: cap on concurrently executing engine batches (0 = 2×GOMAXPROCS when shedding is enabled)")
		backends     = flag.String("backends", "float,binary,imc", "comma-separated backends to register (float, binary, imc)")
		embedder     = flag.Bool("embedder", true, "register the frozen ResNet image embedder for /v1/embed-classify")
		embedImg     = flag.Int("embed-img", 16, "embedder input image size (pixels, square)")
		embedWidth   = flag.Int("embed-width", 8, "embedder ResNet base width")
		precision    = flag.String("precision", "both", "embedder precision to serve: f32, int8, or both")
		routerPath   = flag.String("router", "", "serve a distributed class memory from this shards.json instead of local engines")
		shardTimeout = flag.Duration("shard-timeout", 2*time.Second, "router: per-replica attempt timeout")
		drain        = flag.Duration("drain", 5*time.Second, "shutdown: deadline for draining in-flight requests")
	)
	flag.Parse()

	wm := *watermark
	if wm < 0 {
		wm = 4 * *maxBatch
	}
	cfg := serve.Config{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay, MinDelay: *minDelay,
		Watermark: wm, MaxInFlight: *maxInFlight,
	}
	var (
		reg    *serve.Registry
		router *dist.Router
		err    error
	)
	if *routerPath != "" {
		reg, router, err = buildRouterRegistry(*routerPath, *shardTimeout, cfg)
		if err == nil {
			*dim = router.Dim() // the embedder must produce shard-dim probes
		}
	} else {
		reg, err = buildRegistry(*classes, *dim, *seed, *workers, *backends, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *embedder {
		if err := registerEmbedder(reg, *dim, *seed, *embedImg, *embedWidth, *precision); err != nil {
			reg.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if router != nil {
		log.Printf("hdcserve: routing %d classes at d=%d over %d shard ranges, models %v, embedders %v",
			router.Classes(), router.Dim(), router.Shards(), reg.Names(), reg.EmbedderNames())
	} else {
		log.Printf("hdcserve: %d classes at d=%d, models %v, embedders %v, coalescer max-batch=%d max-delay=%v",
			*classes, *dim, reg.Names(), reg.EmbedderNames(), *maxBatch, *maxDelay)
	}

	// Hot reload: rebuild the class-memory engines and embedders from the
	// startup parameters and swap them atomically behind the running
	// coalescers/registry. In-flight requests finish on the old state;
	// nothing closes, so no request fails across the swap. Serialized —
	// concurrent SIGHUP and POST /v1/reload do not interleave swaps.
	var reloadMu sync.Mutex
	var reloads atomic.Int64
	reload := func() error {
		reloadMu.Lock()
		defer reloadMu.Unlock()
		start := time.Now()
		if router == nil {
			mem := classmem.Build(*classes, *dim, *seed)
			for _, name := range reg.Names() {
				co, err := reg.Get(name)
				if err != nil {
					return err
				}
				eng, err := newBackendEngine(mem, name, *workers)
				if err != nil {
					return err
				}
				if err := co.SwapQuerier(eng); err != nil {
					return err
				}
			}
		}
		if *embedder {
			embs, err := buildEmbedders(*dim, *seed, *embedImg, *embedWidth, *precision)
			if err != nil {
				return err
			}
			for name, e := range embs {
				if err := reg.ReplaceEmbedder(name, e); err != nil {
					return err
				}
			}
		}
		n := reloads.Add(1)
		log.Printf("hdcserve: reload #%d complete in %v (models %v, embedders %v)",
			n, time.Since(start).Round(time.Millisecond), reg.Names(), reg.EmbedderNames())
		return nil
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		reg.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var ready atomic.Bool
	srv := &http.Server{Handler: serve.NewHandler(reg, serve.Hooks{
		Ready:  ready.Load,
		Reload: reload,
	})}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Print("hdcserve: SIGHUP — reloading")
			if err := reload(); err != nil {
				log.Printf("hdcserve: reload failed, old state still serving: %v", err)
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Readiness drops first so load balancers stop routing here while
		// in-flight requests drain.
		ready.Store(false)
		log.Printf("hdcserve: shutting down (drain %v; second signal aborts)", *drain)
		go func() {
			<-sig
			log.Print("hdcserve: aborted")
			os.Exit(1)
		}()
		// Ordered drain: stop accepting and wait out in-flight HTTP
		// requests, then flush the coalescers' pending batches, then tear
		// down the shard connections those batches needed.
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("hdcserve: drain deadline exceeded: %v", err)
		}
		reg.Close()
		if router != nil {
			router.Close()
		}
	}()

	log.Printf("hdcserve: listening on %s", ln.Addr())
	ready.Store(true)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

// buildRegistry freezes one synthetic class memory and registers the
// requested backends over it, each behind its own coalescer.
func buildRegistry(classes, dim int, seed int64, workers int, backendList string, cfg serve.Config) (*serve.Registry, error) {
	mem := classmem.Build(classes, dim, seed)
	reg := serve.NewRegistry()
	for _, name := range strings.Split(backendList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		eng, err := newBackendEngine(mem, name, workers)
		if err != nil {
			reg.Close()
			return nil, err
		}
		if err := reg.Register(eng.Name(), serve.NewCoalescer(eng, cfg)); err != nil {
			reg.Close()
			return nil, err
		}
	}
	if len(reg.Names()) == 0 {
		return nil, fmt.Errorf("no backends registered (-backends %q)", backendList)
	}
	return reg, nil
}

// newBackendEngine builds one backend's checked shared engine from a
// frozen class memory — the unit of work a hot reload repeats per
// registered model.
func newBackendEngine(mem *classmem.Memory, name string, workers int) (*infer.Engine, error) {
	be, err := mem.Backend(name)
	if err != nil {
		return nil, err
	}
	var opts []infer.Option
	if workers > 0 {
		opts = append(opts, infer.WithWorkers(workers))
	} else if name == "imc" {
		// Pin the tile layout so analog noise draws don't depend on
		// the host's core count (same rationale as cmd/hdczsc).
		opts = append(opts, infer.WithWorkers(4))
	}
	return infer.NewChecked(be, opts...)
}

// buildRouterRegistry connects to the shard processes in the routing
// table and registers the scatter-gather router as the served model,
// behind the same micro-batching coalescer local engines get (the
// serve.Querier seam): probes coalesce into batches, batches fan out to
// shards as single multi-probe frames.
func buildRouterRegistry(path string, shardTimeout time.Duration, cfg serve.Config) (*serve.Registry, *dist.Router, error) {
	layout, err := dist.LoadLayout(path)
	if err != nil {
		return nil, nil, err
	}
	router, err := dist.NewRouter(layout, dist.RouterConfig{ShardTimeout: shardTimeout})
	if err != nil {
		return nil, nil, err
	}
	reg := serve.NewRegistry()
	if err := reg.Register(router.Name(), serve.NewCoalescer(router, cfg)); err != nil {
		router.Close()
		reg.Close()
		return nil, nil, err
	}
	return reg, router, nil
}

// registerEmbedder freezes a seed-deterministic ResNet image encoder
// (micro ResNet50 topology, FC projection to the class-memory d),
// compiles it into a frozen-graph inference plan (BatchNorms folded
// into conv weights, bias/ReLU/residual adds fused into the GEMM
// write-back, activation buffers pre-scheduled — see nn.CompiledNet)
// and registers the plan as the "resnet" embedder. The network is
// never trained and nothing ever calls its mutating Forward, so the
// one compiled plan is shared read-only by every in-flight
// /v1/embed-classify request.
//
// precision selects which plans serve: "f32" registers "resnet" only,
// "int8" registers "resnet-int8" only (the quantized plan of
// nn.CompileQuantized, calibrated on a seed-deterministic synthetic
// image batch at the serving geometry), and "both" serves the two side
// by side from one registry so clients pick per request.
func registerEmbedder(reg *serve.Registry, dim int, seed int64, img, width int, precision string) error {
	embs, err := buildEmbedders(dim, seed, img, width, precision)
	if err != nil {
		return err
	}
	for name, e := range embs {
		if err := reg.RegisterEmbedder(name, e); err != nil {
			return err
		}
	}
	return nil
}

// buildEmbedders compiles the embedder plans for the requested
// precisions — shared by startup registration and hot reload (where the
// freshly compiled plans replace the registered ones atomically).
func buildEmbedders(dim int, seed int64, img, width int, precision string) (map[string]serve.Embedder, error) {
	if img < 8 || width < 1 {
		return nil, fmt.Errorf("bad embedder geometry: -embed-img %d -embed-width %d", img, width)
	}
	if precision != "f32" && precision != "int8" && precision != "both" {
		return nil, fmt.Errorf("unknown -precision %q (want f32, int8, or both)", precision)
	}
	rng := rand.New(rand.NewSource(seed + 0x5eed))
	enc := core.NewImageEncoder(rng, nn.MicroResNet50Config(width), dim)
	embs := map[string]serve.Embedder{}
	if precision != "int8" {
		compiled := enc.Compiled()
		// Build the plan for the serving geometry now, so the first request
		// pays no compile latency and a lowering problem fails startup (or
		// fails the reload, leaving the old plan serving).
		if err := compiled.Precompile(3, img, img); err != nil {
			return nil, err
		}
		embs["resnet"] = serve.NewNetEmbedder("resnet", compiled, []int{3, img, img}, dim)
	}
	if precision != "f32" {
		quantized, err := enc.CompiledInt8(calibrationBatch(seed, img))
		if err != nil {
			return nil, err
		}
		embs["resnet-int8"] = serve.NewNetEmbedder("resnet-int8", quantized, []int{3, img, img}, dim)
	}
	return embs, nil
}

// calibrationBatch generates the representative image batch the int8
// lowering calibrates activation scales on: one small seed-derived
// SynthCUB at the serving geometry, so the scales see image-statistics
// activations (not noise) and a given seed always quantizes to the same
// plan.
func calibrationBatch(seed int64, img int) *tensor.Tensor {
	dcfg := dataset.DefaultConfig()
	dcfg.NumClasses = 8
	dcfg.ImagesPerClass = 4
	dcfg.Height, dcfg.Width = img, img
	dcfg.Seed = seed + 0xca11b
	data := dataset.Generate(dcfg)
	ids := make([]int, len(data.Instances))
	classes := make([]int, dcfg.NumClasses)
	for i := range ids {
		ids[i] = i
	}
	for c := range classes {
		classes[c] = c
	}
	return data.MakeBatch(ids, dataset.ClassIndexMap(classes), nil, nil).Images
}
