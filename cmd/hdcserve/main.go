// Command hdcserve runs the HTTP serving layer over the batched
// inference engine: one process, one frozen HDC-ZSC class memory, three
// backends served side by side behind micro-batching coalescers.
//
//	hdcserve [flags]
//
// The class memory is built at startup the way the paper's edge
// deployment would ship it: bundled class prototypes from the
// stationary HDC attribute encoder over a SynthCUB class set
// (internal/classmem), realized as float embeddings (reference cosine
// path), a packed binary item memory (XOR+popcount edge path), and an
// analog crossbar with typical PCM non-idealities (§V outlook). Each
// backend gets its own shared concurrency-safe engine and coalescer,
// registered under its backend name ("float", "binary", "imc").
//
// With -router shards.json the process serves a DISTRIBUTED class
// memory instead: no local engines — the registered model is a
// dist.Router that consistent-hash-routes every coalesced probe batch
// to the cmd/hdcshard processes in the routing table, merges their
// candidate lists with the engine's own comparator, and fails over
// between replicas. The HTTP surface is unchanged; /v1/classify and
// /v1/embed-classify transparently serve from N shard processes, with
// rankings byte-identical to a single-process deployment of the same
// memory (float/binary backends).
//
// The process also serves end to end: a frozen ResNet image encoder
// (the paper's γ at laptop scale) is registered as an embedder and run
// through the stateless nn Infer path, so POST /v1/embed-classify
// accepts raw image tensors and classifies them against any backend —
// no client-side embedding required. One shared frozen network serves
// every in-flight request concurrently. With -precision both (the
// default) the encoder is additionally served through its quantized
// int8 compiled plan as "resnet-int8": same frozen weights, per-channel
// symmetric int8 GEMMs, activations int8 between plan steps (see
// nn.CompileQuantized) — the software twin of the paper's low-precision
// deployment story.
//
// Live enrollment: POST /v1/enroll appends a class to the serving
// memory without a restart. Locally the class memory is an
// RCU-versioned store (internal/classmem.Versioned): the enrollment
// appends past the published prefix, and rebuilt engines are swapped
// behind the running coalescers so in-flight rankings finish on their
// epoch while later probes see the new class. With -wal DIR every
// enrollment is WAL-durable (fsync before publish) and replayed on
// restart; -snapshot-every bounds replay length by compacting the log
// into a snapshot. In -router mode the enrollment is forwarded to the
// router's two-phase epoch flip across the growing range's replicas.
// Every classify response carries the epoch it was served at.
//
// Overload: the coalescers shed requests past the -watermark queue
// depth (HTTP 429 + Retry-After) instead of queuing without bound, so
// the latency of accepted requests stays bounded at any offered load;
// -watermark 0 restores blocking backpressure. cmd/hdcload is the
// matching open-loop harness.
//
// Hot reload: SIGHUP or POST /v1/reload rebuilds the class-memory
// engines and embedders from the startup seed and atomically swaps them
// behind the running coalescers — in-flight requests finish on the old
// state, later requests see the new, and no request fails. In -router
// mode only the embedders reload (the shard processes own the class
// memory).
//
// Shutdown: SIGINT or SIGTERM flips /readyz to 503, stops accepting new
// HTTP requests, drains in-flight requests and pending coalescer
// batches within -drain, then exits; a second signal aborts
// immediately.
//
// API:
//
//	POST /v1/classify        {"model":"binary","k":5,"embedding":[...]}
//	POST /v1/embed-classify  {"model":"float","embedder":"resnet","k":3,"input":[...3·H·W floats...]}
//	POST /v1/enroll          {"label":"night-heron","vector":[...]} or {"label":...,"examples":[[...],...],"seed":7}
//	POST /v1/reload
//	GET  /healthz
//	GET  /readyz
//	GET  /stats
//
// Example:
//
//	hdcserve -classes 50 -d 1536 -addr :8080 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/classify -H 'Content-Type: application/json' \
//	  -d '{"model":"binary","k":3,"embedding":[0.12,-0.7,...]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/classmem"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (0 port resolves at bind)")
		classes      = flag.Int("classes", 50, "number of classes in the frozen memory")
		dim          = flag.Int("d", 1536, "hypervector dimensionality")
		seed         = flag.Int64("seed", 1, "master seed for the synthetic class memory")
		workers      = flag.Int("workers", 0, "engine shard workers per backend (0 = NumCPU)")
		maxBatch     = flag.Int("max-batch", 32, "coalescer: flush when this many probes are pending")
		maxDelay     = flag.Duration("max-delay", 2*time.Millisecond, "coalescer: flush at latest this long after the first pending probe")
		minDelay     = flag.Duration("min-delay", 0, "coalescer: floor of the adaptive flush delay (0 = 100µs)")
		watermark    = flag.Int("watermark", -1, "coalescer: shed (429) once this many requests are queued (-1 = 4×max-batch, 0 = block instead of shedding)")
		maxInFlight  = flag.Int("max-inflight", 0, "coalescer: cap on concurrently executing engine batches (0 = 2×GOMAXPROCS when shedding is enabled)")
		backends     = flag.String("backends", "float,binary,imc", "comma-separated backends to register (float, binary, imc)")
		embedder     = flag.Bool("embedder", true, "register the frozen ResNet image embedder for /v1/embed-classify")
		embedImg     = flag.Int("embed-img", 16, "embedder input image size (pixels, square)")
		embedWidth   = flag.Int("embed-width", 8, "embedder ResNet base width")
		precision    = flag.String("precision", "both", "embedder precision to serve: f32, int8, or both")
		routerPath   = flag.String("router", "", "serve a distributed class memory from this shards.json instead of local engines")
		shardTimeout = flag.Duration("shard-timeout", 2*time.Second, "router: per-replica attempt timeout")
		walDir       = flag.String("wal", "", "durable enrollment: WAL+snapshot directory (empty = enrollments are in-memory only)")
		snapEvery    = flag.Int("snapshot-every", 64, "compact the enrollment WAL into a snapshot every N enrollments (0 = never)")
		drain        = flag.Duration("drain", 5*time.Second, "shutdown: deadline for draining in-flight requests")
	)
	flag.Parse()

	wm := *watermark
	if wm < 0 {
		wm = 4 * *maxBatch
	}
	cfg := serve.Config{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay, MinDelay: *minDelay,
		Watermark: wm, MaxInFlight: *maxInFlight,
	}
	var (
		reg    *serve.Registry
		router *dist.Router
		store  *classmem.Versioned
		err    error
	)
	if *routerPath != "" {
		if *walDir != "" {
			err = fmt.Errorf("hdcserve: -wal is a shard-side concern in -router mode (pass it to the growing hdcshard)")
		} else {
			reg, router, err = buildRouterRegistry(*routerPath, *shardTimeout, cfg)
		}
		if err == nil {
			*dim = router.Dim() // the embedder must produce shard-dim probes
		}
	} else {
		if *walDir != "" {
			store, err = classmem.OpenVersioned(*walDir, *classes, *dim, *seed, *snapEvery)
		} else {
			store = classmem.NewVersioned(*classes, *dim, *seed)
		}
		if err == nil {
			reg, err = buildRegistry(store, *workers, *backends, cfg)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *embedder {
		if err := registerEmbedder(reg, *dim, *seed, *embedImg, *embedWidth, *precision); err != nil {
			reg.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if router != nil {
		log.Printf("hdcserve: routing %d classes at d=%d over %d shard ranges, models %v, embedders %v",
			router.Classes(), router.Dim(), router.Shards(), reg.Names(), reg.EmbedderNames())
	} else {
		log.Printf("hdcserve: %d classes at d=%d (epoch %d, %d enrolled), models %v, embedders %v, coalescer max-batch=%d max-delay=%v",
			*classes, *dim, store.Epoch(), store.EnrolledTotal(), reg.Names(), reg.EmbedderNames(), *maxBatch, *maxDelay)
	}

	// Hot reload: rebuild the class-memory engines and embedders from the
	// startup parameters and swap them atomically behind the running
	// coalescers/registry. In-flight requests finish on the old state;
	// nothing closes, so no request fails across the swap. Serialized —
	// concurrent SIGHUP and POST /v1/reload do not interleave swaps.
	var reloadMu sync.Mutex
	var reloads atomic.Int64
	reload := func() error {
		reloadMu.Lock()
		defer reloadMu.Unlock()
		start := time.Now()
		if router == nil {
			// Rebuild from the versioned store, not the startup seed alone:
			// live-enrolled classes survive a reload.
			if err := swapStoreQueriers(reg, store, *workers); err != nil {
				return err
			}
		}
		if *embedder {
			embs, err := buildEmbedders(*dim, *seed, *embedImg, *embedWidth, *precision)
			if err != nil {
				return err
			}
			for name, e := range embs {
				if err := reg.ReplaceEmbedder(name, e); err != nil {
					return err
				}
			}
		}
		n := reloads.Add(1)
		log.Printf("hdcserve: reload #%d complete in %v (models %v, embedders %v)",
			n, time.Since(start).Round(time.Millisecond), reg.Names(), reg.EmbedderNames())
		return nil
	}

	// Live enrollment: convert the request into a packed prototype, then
	// either drive the router's two-phase epoch flip (distributed) or
	// enroll into the local versioned store and swap the grown engines
	// behind the coalescers. The local path shares the reload mutex —
	// both flow through the SwapQuerier seam and must not interleave.
	enroll := func(_ context.Context, req serve.EnrollRequest) (uint64, error) {
		proto, err := enrollProto(req, *dim)
		if err != nil {
			return 0, err
		}
		if router != nil {
			return router.Enroll(req.Label, proto)
		}
		reloadMu.Lock()
		defer reloadMu.Unlock()
		epoch, err := store.Enroll(req.Label, proto)
		if err != nil {
			return 0, err
		}
		if err := swapStoreQueriers(reg, store, *workers); err != nil {
			return 0, err
		}
		return epoch, nil
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		reg.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var ready atomic.Bool
	srv := &http.Server{Handler: serve.NewHandler(reg, serve.Hooks{
		Ready:  ready.Load,
		Reload: reload,
		Enroll: enroll,
	})}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Print("hdcserve: SIGHUP — reloading")
			if err := reload(); err != nil {
				log.Printf("hdcserve: reload failed, old state still serving: %v", err)
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Readiness drops first so load balancers stop routing here while
		// in-flight requests drain.
		ready.Store(false)
		log.Printf("hdcserve: shutting down (drain %v; second signal aborts)", *drain)
		go func() {
			<-sig
			log.Print("hdcserve: aborted")
			os.Exit(1)
		}()
		// Ordered drain: stop accepting and wait out in-flight HTTP
		// requests, then flush the coalescers' pending batches, then tear
		// down the shard connections those batches needed.
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("hdcserve: drain deadline exceeded: %v", err)
		}
		reg.Close()
		if router != nil {
			router.Close()
		}
		if store != nil {
			store.Close()
		}
	}()

	log.Printf("hdcserve: listening on %s", ln.Addr())
	ready.Store(true)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

// buildRegistry registers the requested backends over the versioned
// class memory, each behind its own coalescer. The store starts at the
// seed-derived base memory plus whatever its WAL replayed.
func buildRegistry(store *classmem.Versioned, workers int, backendList string, cfg serve.Config) (*serve.Registry, error) {
	reg := serve.NewRegistry()
	for _, name := range strings.Split(backendList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		q, err := newStoreQuerier(store, name, workers)
		if err != nil {
			reg.Close()
			return nil, err
		}
		if err := reg.Register(q.Name(), serve.NewCoalescer(q, cfg)); err != nil {
			reg.Close()
			return nil, err
		}
	}
	if len(reg.Names()) == 0 {
		return nil, fmt.Errorf("no backends registered (-backends %q)", backendList)
	}
	return reg, nil
}

// liveQuerier decorates one epoch's engine with the versioned store's
// durability counters, so /stats reports epoch, enrolled_total, and
// wal_bytes per model. The engine carries the epoch pin: its Epoch()
// is the build-time stamp, so a ranking's tag always describes the
// class memory that actually produced it, not whatever the store has
// advanced to since.
type liveQuerier struct {
	*infer.Engine
	store *classmem.Versioned
}

func (q *liveQuerier) EnrolledTotal() uint64 { return q.store.EnrolledTotal() }
func (q *liveQuerier) WALBytes() int64       { return q.store.WALBytes() }

// newStoreQuerier realizes one backend over the store's published
// epoch — the unit of work enrollment and hot reload repeat per
// registered model. Callers swapping live queriers serialize on the
// enroll/reload mutex, so the epoch stamp and the realized class count
// cannot diverge.
func newStoreQuerier(store *classmem.Versioned, name string, workers int) (*liveQuerier, error) {
	be, err := store.Backend(name)
	if err != nil {
		return nil, err
	}
	opts := []infer.Option{infer.WithEpoch(store.Epoch())}
	if workers > 0 {
		opts = append(opts, infer.WithWorkers(workers))
	} else if name == "imc" {
		// Pin the tile layout so analog noise draws don't depend on
		// the host's core count (same rationale as cmd/hdczsc).
		opts = append(opts, infer.WithWorkers(4))
	}
	eng, err := infer.NewChecked(be, opts...)
	if err != nil {
		return nil, err
	}
	return &liveQuerier{Engine: eng, store: store}, nil
}

// swapStoreQueriers rebuilds every registered model from the store's
// published epoch and swaps it behind its coalescer — the epoch
// publish flowing through the hot-reload seam. In-flight batches
// finish on their old engine; the float backend's ϕᵀ tile cache
// carries over, so the swap re-packs only the grown tail.
func swapStoreQueriers(reg *serve.Registry, store *classmem.Versioned, workers int) error {
	for _, name := range reg.Names() {
		co, err := reg.Get(name)
		if err != nil {
			return err
		}
		q, err := newStoreQuerier(store, name, workers)
		if err != nil {
			return err
		}
		if err := co.SwapQuerier(q); err != nil {
			return err
		}
	}
	return nil
}

// enrollProto converts one enroll request into the packed class
// prototype the class memory stores: a single dense vector is
// sign-packed directly; example vectors are sign-packed then bundled
// by majority rule with the request seed breaking ties (the paper's
// bundling operator). The HTTP layer already enforced exactly one of
// the two forms.
func enrollProto(req serve.EnrollRequest, dim int) (*hdc.Binary, error) {
	if len(req.Vector) > 0 {
		bp, err := signBipolar(req.Vector, dim)
		if err != nil {
			return nil, err
		}
		return hdc.FromBipolar(bp), nil
	}
	examples := make([]hdc.Bipolar, len(req.Examples))
	for i, ex := range req.Examples {
		bp, err := signBipolar(ex, dim)
		if err != nil {
			return nil, err
		}
		examples[i] = bp
	}
	proto, err := classmem.BundleExamples(req.Seed, examples...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", serve.ErrBadInput, err)
	}
	return proto, nil
}

func signBipolar(vec []float32, dim int) (hdc.Bipolar, error) {
	if len(vec) != dim {
		return nil, fmt.Errorf("%w: enroll vector has %d components, the class memory expects %d",
			serve.ErrBadInput, len(vec), dim)
	}
	bp := make(hdc.Bipolar, len(vec))
	for i, v := range vec {
		if v < 0 {
			bp[i] = -1
		} else {
			bp[i] = 1
		}
	}
	return bp, nil
}

// buildRouterRegistry connects to the shard processes in the routing
// table and registers the scatter-gather router as the served model,
// behind the same micro-batching coalescer local engines get (the
// serve.Querier seam): probes coalesce into batches, batches fan out to
// shards as single multi-probe frames.
func buildRouterRegistry(path string, shardTimeout time.Duration, cfg serve.Config) (*serve.Registry, *dist.Router, error) {
	layout, err := dist.LoadLayout(path)
	if err != nil {
		return nil, nil, err
	}
	router, err := dist.NewRouter(layout, dist.RouterConfig{ShardTimeout: shardTimeout})
	if err != nil {
		return nil, nil, err
	}
	reg := serve.NewRegistry()
	if err := reg.Register(router.Name(), serve.NewCoalescer(router, cfg)); err != nil {
		router.Close()
		reg.Close()
		return nil, nil, err
	}
	return reg, router, nil
}

// registerEmbedder freezes a seed-deterministic ResNet image encoder
// (micro ResNet50 topology, FC projection to the class-memory d),
// compiles it into a frozen-graph inference plan (BatchNorms folded
// into conv weights, bias/ReLU/residual adds fused into the GEMM
// write-back, activation buffers pre-scheduled — see nn.CompiledNet)
// and registers the plan as the "resnet" embedder. The network is
// never trained and nothing ever calls its mutating Forward, so the
// one compiled plan is shared read-only by every in-flight
// /v1/embed-classify request.
//
// precision selects which plans serve: "f32" registers "resnet" only,
// "int8" registers "resnet-int8" only (the quantized plan of
// nn.CompileQuantized, calibrated on a seed-deterministic synthetic
// image batch at the serving geometry), and "both" serves the two side
// by side from one registry so clients pick per request.
func registerEmbedder(reg *serve.Registry, dim int, seed int64, img, width int, precision string) error {
	embs, err := buildEmbedders(dim, seed, img, width, precision)
	if err != nil {
		return err
	}
	for name, e := range embs {
		if err := reg.RegisterEmbedder(name, e); err != nil {
			return err
		}
	}
	return nil
}

// buildEmbedders compiles the embedder plans for the requested
// precisions — shared by startup registration and hot reload (where the
// freshly compiled plans replace the registered ones atomically).
func buildEmbedders(dim int, seed int64, img, width int, precision string) (map[string]serve.Embedder, error) {
	if img < 8 || width < 1 {
		return nil, fmt.Errorf("bad embedder geometry: -embed-img %d -embed-width %d", img, width)
	}
	if precision != "f32" && precision != "int8" && precision != "both" {
		return nil, fmt.Errorf("unknown -precision %q (want f32, int8, or both)", precision)
	}
	rng := rand.New(rand.NewSource(seed + 0x5eed))
	enc := core.NewImageEncoder(rng, nn.MicroResNet50Config(width), dim)
	embs := map[string]serve.Embedder{}
	if precision != "int8" {
		compiled := enc.Compiled()
		// Build the plan for the serving geometry now, so the first request
		// pays no compile latency and a lowering problem fails startup (or
		// fails the reload, leaving the old plan serving).
		if err := compiled.Precompile(3, img, img); err != nil {
			return nil, err
		}
		embs["resnet"] = serve.NewNetEmbedder("resnet", compiled, []int{3, img, img}, dim)
	}
	if precision != "f32" {
		quantized, err := enc.CompiledInt8(calibrationBatch(seed, img))
		if err != nil {
			return nil, err
		}
		embs["resnet-int8"] = serve.NewNetEmbedder("resnet-int8", quantized, []int{3, img, img}, dim)
	}
	return embs, nil
}

// calibrationBatch generates the representative image batch the int8
// lowering calibrates activation scales on: one small seed-derived
// SynthCUB at the serving geometry, so the scales see image-statistics
// activations (not noise) and a given seed always quantizes to the same
// plan.
func calibrationBatch(seed int64, img int) *tensor.Tensor {
	dcfg := dataset.DefaultConfig()
	dcfg.NumClasses = 8
	dcfg.ImagesPerClass = 4
	dcfg.Height, dcfg.Width = img, img
	dcfg.Seed = seed + 0xca11b
	data := dataset.Generate(dcfg)
	ids := make([]int, len(data.Instances))
	classes := make([]int, dcfg.NumClasses)
	for i := range ids {
		ids[i] = i
	}
	for c := range classes {
		classes[c] = c
	}
	return data.MakeBatch(ids, dataset.ClassIndexMap(classes), nil, nil).Images
}
