// Command hdcshard serves one or more contiguous class-range slabs of a
// frozen HDC-ZSC class memory over the compact binary shard protocol
// (internal/dist) — the worker half of the distributed serving story,
// with `hdcserve -router` as the scatter-gather front.
//
// The class memory is never shipped: it is a pure function of
// (-classes, -d, -seed), so every shard process rebuilds the identical
// memory from the shared seed and serves only its assigned ranges
// through ordinary infer engines over range views (infer.NewRangeBackend).
// Rankings merged by the router are byte-identical to a single process
// serving the whole memory, for the deterministic backends (float,
// binary).
//
// Modes:
//
//	hdcshard -addr 127.0.0.1:7071 -range 0:25 [flags]
//	    Serve explicit class ranges (comma-separated lo:hi pairs).
//	hdcshard -layout shards.json -self 10.0.0.3:7070 [flags]
//	    Serve every range shards.json assigns to -self, listening on it.
//	hdcshard -write-layout shards.json -shards 4 -nodes a:7070,b:7070 -replication 2 [flags]
//	    Partition the class space with the engine's split rule, place
//	    ranges onto nodes via the consistent-hash ring, write the
//	    routing table, and exit.
//
// The tail range (the one ending at the global class count) is served
// from an RCU-versioned store and accepts live enrollment through the
// router's two-phase epoch flip; -wal DIR makes enrollments
// crash-durable (fsync before ack) and replays them on restart, and
// -snapshot-every bounds replay length by compacting the log.
//
// On startup the server prints `hdcshard: listening on ADDR` — with the
// bound port resolved, so `-addr 127.0.0.1:0` works for tests — then
// serves until SIGINT/SIGTERM, draining in-flight queries before exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/classmem"
	"repro/internal/dist"
	"repro/internal/infer"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address (with -range; 0 port resolves at bind)")
		classes     = flag.Int("classes", 50, "global class count of the frozen memory")
		dim         = flag.Int("d", 1536, "hypervector dimensionality")
		seed        = flag.Int64("seed", 1, "master seed for the synthetic class memory (must match every shard and the router's oracle)")
		backend     = flag.String("backend", "float", "backend to serve: float, binary, or imc")
		workers     = flag.Int("workers", 0, "engine shard workers per slab (0 = NumCPU)")
		ranges      = flag.String("range", "", "comma-separated lo:hi class ranges to serve")
		layoutPath  = flag.String("layout", "", "shards.json routing table to take ranges from")
		self        = flag.String("self", "", "this node's address in the layout (with -layout)")
		writeLayout = flag.String("write-layout", "", "write a shards.json for -shards/-nodes/-replication and exit")
		nShards     = flag.Int("shards", 0, "shard-range count (with -write-layout)")
		nodes       = flag.String("nodes", "", "comma-separated node addresses (with -write-layout)")
		replication = flag.Int("replication", 1, "replicas per range (with -write-layout)")
		walDir      = flag.String("wal", "", "durable enrollment: WAL+snapshot directory for the growing tail range (empty = in-memory)")
		snapEvery   = flag.Int("snapshot-every", 64, "compact the enrollment WAL into a snapshot every N enrollments (0 = never)")
	)
	flag.Parse()

	if *writeLayout != "" {
		if err := emitLayout(*writeLayout, *backend, *classes, *dim, *nShards, *nodes, *replication); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	slabRanges, listenAddr, err := resolveRanges(*ranges, *layoutPath, *self, *addr, *classes, *dim)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	srv, store, err := buildServer(*backend, *classes, *dim, *seed, *workers, slabRanges, *walDir, *snapEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("hdcshard: shutting down")
		srv.Close() // stop accepting, drain in-flight queries
		if store != nil {
			store.Close()
		}
	}()

	if store != nil {
		log.Printf("hdcshard: %s backend, %d classes at d=%d, ranges %v (tail grows: epoch %d, %d enrolled)",
			*backend, *classes, *dim, slabRanges, store.Epoch(), store.EnrolledTotal())
	} else {
		log.Printf("hdcshard: %s backend, %d classes at d=%d, ranges %v", *backend, *classes, *dim, slabRanges)
	}
	log.Printf("hdcshard: listening on %s", ln.Addr())
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

// emitLayout is the -write-layout mode: build the routing table the
// router and every shard agree on, and write it.
func emitLayout(path, backend string, classes, dim, nShards int, nodeList string, replication int) error {
	var nodes []string
	for _, n := range strings.Split(nodeList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	l, err := dist.BuildLayout(backend, classes, dim, nShards, nodes, replication)
	if err != nil {
		return err
	}
	if err := dist.WriteLayout(path, l); err != nil {
		return err
	}
	fmt.Printf("hdcshard: wrote %s: %d ranges over %d nodes, replication %d\n",
		path, len(l.Shards), len(nodes), replication)
	return nil
}

// resolveRanges turns the flag combination into the slab ranges to serve
// and the address to listen on: explicit -range pairs, or the ranges a
// layout assigns to -self.
func resolveRanges(rangeList, layoutPath, self, addr string, classes, dim int) ([][2]int, string, error) {
	switch {
	case rangeList != "" && layoutPath != "":
		return nil, "", fmt.Errorf("hdcshard: -range and -layout are mutually exclusive")
	case rangeList != "":
		var out [][2]int
		for _, spec := range strings.Split(rangeList, ",") {
			lo, hi, ok := strings.Cut(strings.TrimSpace(spec), ":")
			if !ok {
				return nil, "", fmt.Errorf("hdcshard: bad -range element %q (want lo:hi)", spec)
			}
			l, err1 := strconv.Atoi(lo)
			h, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || l < 0 || h <= l || h > classes {
				return nil, "", fmt.Errorf("hdcshard: bad -range element %q for %d classes", spec, classes)
			}
			out = append(out, [2]int{l, h})
		}
		return out, addr, nil
	case layoutPath != "":
		if self == "" {
			return nil, "", fmt.Errorf("hdcshard: -layout needs -self (this node's address in the layout)")
		}
		l, err := dist.LoadLayout(layoutPath)
		if err != nil {
			return nil, "", err
		}
		if l.Classes != classes || l.Dim != dim {
			return nil, "", fmt.Errorf("hdcshard: layout %s declares %d classes at d=%d, flags say %d at d=%d",
				layoutPath, l.Classes, l.Dim, classes, dim)
		}
		out := l.RangesFor(self)
		if len(out) == 0 {
			return nil, "", fmt.Errorf("hdcshard: layout %s assigns no ranges to %q (nodes: %v)",
				layoutPath, self, l.Nodes())
		}
		return out, self, nil
	default:
		return nil, "", fmt.Errorf("hdcshard: need -range or -layout (or -write-layout)")
	}
}

// buildServer freezes the seed-derived class memory and wraps one
// engine per assigned range, each over a range view of the shared
// global backend. The tail range (the one ending at the global class
// count) is served from an RCU-versioned store instead of a frozen
// engine, which makes it enrollable through the router's two-phase
// epoch flip; with -wal the enrollments are crash-durable and replayed
// here on restart. At epoch 0 the growing range serves bytes identical
// to a frozen slab, so deployments that never enroll are unchanged.
func buildServer(backend string, classes, dim int, seed int64, workers int, ranges [][2]int, walDir string, snapEvery int) (*dist.ShardServer, *classmem.Versioned, error) {
	mem := classmem.Build(classes, dim, seed)
	global, err := mem.Backend(backend)
	if err != nil {
		return nil, nil, err
	}
	var opts []infer.Option
	if workers > 0 {
		opts = append(opts, infer.WithWorkers(workers))
	}
	var store *classmem.Versioned
	var growing *dist.GrowingSlab
	slabs := make([]dist.Slab, 0, len(ranges))
	for _, r := range ranges {
		if r[1] == classes {
			if walDir != "" {
				store, err = classmem.OpenVersioned(walDir, classes, dim, seed, snapEvery)
			} else {
				store = classmem.NewVersioned(classes, dim, seed)
			}
			if err != nil {
				return nil, nil, err
			}
			growing = &dist.GrowingSlab{Base: r[0], Width: r[1] - r[0], Backend: backend, Workers: workers, Store: store}
			continue
		}
		eng, err := infer.NewChecked(infer.NewRangeBackend(global, r[0], r[1]), opts...)
		if err != nil {
			return nil, nil, err
		}
		slabs = append(slabs, dist.Slab{Base: r[0], Engine: eng})
	}
	if growing == nil {
		if walDir != "" {
			return nil, nil, fmt.Errorf("hdcshard: -wal set but no assigned range ends at class %d (only the tail range grows)", classes)
		}
		srv, err := dist.NewShardServer(slabs)
		return srv, nil, err
	}
	srv, err := dist.NewShardServer(slabs, growing)
	if err != nil {
		return nil, nil, err
	}
	return srv, store, nil
}
