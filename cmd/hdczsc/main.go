// Command hdczsc trains and evaluates one HDC-ZSC model end to end:
//
//	hdczsc [flags]
//
// It generates a SynthCUB dataset, runs the three training phases
// (classification pre-training, attribute extraction, zero-shot
// fine-tuning), and reports zero-shot top-1/top-5 accuracy on the unseen
// test classes along with the attribute-extraction quality and the model
// parameter count. Flags expose the paper's hyperparameters.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/infer"
	"repro/internal/metrics"
)

func main() {
	var (
		classes  = flag.Int("classes", 30, "number of synthetic bird classes")
		perClass = flag.Int("per-class", 14, "images per class")
		imgSize  = flag.Int("img", 24, "image side in pixels")
		width    = flag.Int("width", 6, "backbone base width")
		projDim  = flag.Int("d", 384, "FC projection dimension (0 = no projection)")
		encoder  = flag.String("encoder", "HDC", "attribute encoder: HDC or MLP")
		epochs2  = flag.Int("epochs2", 20, "phase II (attribute extraction) epochs")
		epochs3  = flag.Int("epochs3", 12, "phase III (ZSC) epochs")
		batch    = flag.Int("batch", 8, "batch size")
		lr       = flag.Float64("lr", 2e-3, "phase II learning rate")
		temp     = flag.Float64("temp", 0.05, "initial temperature K")
		wd       = flag.Float64("wd", 5e-4, "weight decay")
		seed     = flag.Int64("seed", 1, "master seed")
		backend  = flag.String("backend", "float", "inference backend for the final evaluation: float (reference cosine), binary (sign-packed XOR+popcount edge path), or imc (analog crossbar with typical PCM non-idealities)")
		workers  = flag.Int("workers", 0, "inference engine shard workers (0 = NumCPU)")
	)
	flag.Parse()
	switch *backend {
	case "float", "binary", "imc":
	default:
		fmt.Fprintf(os.Stderr, "unknown -backend %q (want float, binary, or imc)\n", *backend)
		os.Exit(2)
	}

	sc := experiments.Scale{
		Name: "cli", Classes: *classes, PerClass: *perClass, ImgSize: *imgSize,
		AttrNoise: 0.25, Seeds: []int64{*seed}, Width: *width, ProjDim: *projDim,
		PhaseIEpochs: 3, PhaseIIEpochs: *epochs2, PhaseIIIEpochs: *epochs3,
		PretrainClasses: 10, PretrainPerClass: 12,
	}
	d := sc.Dataset(*seed)
	split := sc.ZSSplit(d, *seed)
	fmt.Printf("SynthCUB: %d classes (%d train / %d unseen test), %d images, %dx%d px\n",
		*classes, len(split.TrainClasses), len(split.TestClasses),
		d.NumInstances(), *imgSize, *imgSize)
	fmt.Printf("Schema: G=%d groups, V=%d values, α=%d combinations\n",
		d.Schema.NumGroups(), d.Schema.NumValues(), d.Schema.Alpha())

	cfg := sc.Pipeline(*seed)
	cfg.Encoder = *encoder
	cfg.PhaseII.Batch = *batch
	cfg.PhaseII.LR = float32(*lr)
	cfg.PhaseII.WeightDecay = float32(*wd)
	cfg.PhaseIII.Batch = *batch
	cfg.PhaseIII.TempScale = float32(*temp)
	if *projDim <= 0 {
		cfg.ProjDim = 0
	}

	fmt.Println("\nPhase I  — classification pre-training (SynthImageNet stand-in)…")
	model, hdcEnc := cfg.Build(d.Schema)
	acc := core.PretrainClassification(model.Image, sc.Pretrain(*seed), cfg.PhaseI)
	fmt.Printf("  final pre-training accuracy: %.1f%%\n", acc*100)

	if model.Image.Proj != nil {
		fmt.Println("Phase II — attribute extraction (weighted BCE vs HDC dictionary)…")
		loss := core.TrainAttributeExtraction(model.Image, model.Kernel, hdcEnc.Dictionary(), d, split, cfg.PhaseII)
		fmt.Printf("  final loss: %.4f\n", loss)
		scores, targets := core.AttributeScores(model.Image, model.Kernel, hdcEnc.Dictionary(), d, split.Test)
		var avgTop1 float64
		for g := range d.Schema.Groups {
			off := d.Schema.GroupAttrOffset[g]
			avgTop1 += metrics.GroupTop1Accuracy(scores, targets, off, len(d.Schema.Groups[g].Values))
		}
		avgTop1 /= float64(d.Schema.NumGroups())
		fmt.Printf("  unseen-class attribute WMAP: %.1f%%, per-group top-1: %.1f%%\n",
			metrics.WMAP(scores, targets)*100, avgTop1*100)
	} else {
		fmt.Println("Phase II — skipped (no projection FC, per Table II protocol)")
	}

	fmt.Println("Phase III — zero-shot classification fine-tuning…")
	loss3 := core.TrainZSC(model, d, split, cfg.PhaseIII)
	fmt.Printf("  final loss: %.4f\n", loss3)

	// Final readout through the selected inference-engine backend: the
	// class memory is the model's frozen attribute embeddings, sharded
	// across engine workers.
	phi := core.ClassEmbeddings(model, d, split.TestClasses)
	labels := core.ClassLabels(d, split.TestClasses)
	var be infer.Backend
	switch *backend {
	case "float":
		be = infer.NewFloatBackend(phi, labels, model.Kernel.Temperature())
	case "binary":
		im := hdc.NewItemMemory(phi.Dim(1))
		for i, v := range infer.PackSign(phi) {
			im.Store(labels[i], v)
		}
		be = infer.NewBinaryBackend(im)
	case "imc":
		be = infer.NewCrossbarBackend(phi, labels, model.Kernel.Temperature(), imc.TypicalPCM())
	}
	var opts []infer.Option
	switch {
	case *workers > 0:
		opts = append(opts, infer.WithWorkers(*workers))
	case *backend == "imc":
		// Pin the default tile layout: shard boundaries determine the
		// analog noise draws, so leaving them at NumCPU would print
		// different accuracies on machines with different core counts.
		opts = append(opts, infer.WithWorkers(4))
	}
	eng := infer.New(be, opts...)
	start := time.Now()
	res := core.EvalZSCWithEngine(model, d, split, eng)
	evalDur := time.Since(start)
	fmt.Printf("\nZero-shot evaluation on %d unseen classes (backend %q, %d shard workers, %.0f ms):\n",
		len(split.TestClasses), be.Name(), eng.Workers(), evalDur.Seconds()*1000)
	fmt.Printf("  top-1: %.1f%%   top-5: %.1f%%   (chance: %.1f%%)\n",
		res.Top1*100, res.Top5*100, 100.0/float64(len(split.TestClasses)))
	fmt.Printf("  trainable parameters: %d (%s attribute encoder)\n",
		model.ParamCount(), model.Attr.Name())
	if *encoder == "HDC" {
		m := hdcEnc.MemoryFootprint()
		fmt.Printf("  stationary codebooks: %d vectors, %.1f KB packed (%.0f%% below materialized)\n",
			m.Groups+m.Values, float64(m.FactoredBytes)/1024, m.Reduction()*100)
	}
	if res.Top1*float64(len(split.TestClasses)) < 1 {
		fmt.Fprintln(os.Stderr, "warning: accuracy at or below chance — consider more epochs")
	}
}
