package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/classmem"
	"repro/internal/dist"
	"repro/internal/infer"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// The multi-process loopback tests are the tentpole acceptance run for
// real: cmd/hdcshard processes rebuild the seed-derived class memory,
// serve their ranges over the binary protocol, and the router's merged
// rankings must be byte-identical to one in-process engine over the
// whole memory — including while a replica is killed mid-stream.

const (
	procClasses = 30
	procDim     = 64
	procSeed    = 7
)

// buildBinary compiles a command into dir and returns the binary path.
func buildBinary(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

// spawnShard starts one hdcshard process serving the given ranges on an
// ephemeral port and returns the process and its bound address, parsed
// from the startup log.
func spawnShard(t *testing.T, bin, ranges string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-range", ranges,
		"-backend", "float",
		"-classes", fmt.Sprint(procClasses),
		"-d", fmt.Sprint(procDim),
		"-seed", fmt.Sprint(procSeed),
		"-workers", "2",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	addr := awaitListening(t, stderr, "hdcshard")
	return cmd, addr
}

// awaitListening scans a process's log until its "listening on ADDR"
// line appears, then keeps draining the pipe in the background.
func awaitListening(t *testing.T, r io.Reader, proc string) string {
	t.Helper()
	sc := bufio.NewScanner(r)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			go io.Copy(io.Discard, r) //nolint:errcheck // drain so the child never blocks on a full pipe
			return strings.TrimSpace(line[i+len("listening on "):])
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatalf("%s never reported a listening address", proc)
	return ""
}

// procOracle is the single-process reference: the identical seed-derived
// memory served by one local engine.
func procOracle(t *testing.T) *infer.Engine {
	t.Helper()
	be, err := classmem.Build(procClasses, procDim, procSeed).Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	return infer.New(be)
}

func procBatch(n int) *infer.Batch {
	rng := rand.New(rand.NewSource(99))
	x := tensor.New(n, procDim)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	return infer.DenseBatch(x)
}

// TestMultiProcessParityAndFailover spawns three single-range hdcshard
// processes plus one multi-slab process replicating every range, routes
// through them, kills a primary mid-stream, and requires byte-identical
// rankings throughout.
func TestMultiProcessParityAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir, "hdcshard")

	ranges := infer.SplitRanges(procClasses, 3)
	primaries := make([]*exec.Cmd, len(ranges))
	layout := dist.Layout{Classes: procClasses, Dim: procDim}

	// The standby replicates all three ranges from one process — the
	// multi-slab path, addressed per-range by slab base over the wire.
	var allRanges []string
	for _, r := range ranges {
		allRanges = append(allRanges, fmt.Sprintf("%d:%d", r[0], r[1]))
	}
	_, standbyAddr := spawnShard(t, bin, strings.Join(allRanges, ","))

	for i, r := range ranges {
		cmd, addr := spawnShard(t, bin, fmt.Sprintf("%d:%d", r[0], r[1]))
		primaries[i] = cmd
		layout.Shards = append(layout.Shards, dist.ShardSpec{Range: r, Replicas: []string{addr, standbyAddr}})
	}

	router, err := dist.NewRouter(layout, dist.RouterConfig{ShardTimeout: 3 * time.Second, DialTimeout: 3 * time.Second})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer router.Close()

	oracle := procOracle(t)
	batch := procBatch(6)
	want, err := oracle.TryQuery(batch, 5)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 24
	for round := 0; round < rounds; round++ {
		if round == rounds/3 {
			// Kill the middle range's primary without warning mid-stream;
			// the router must fail over to the standby's slab.
			if err := primaries[1].Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
		}
		got, err := router.TryQuery(batch, 5)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: cross-process ranking diverged from the single-process engine\n got %+v\nwant %+v",
				round, got, want)
		}
	}
	if s := router.Stats(); s.Failovers == 0 {
		t.Fatalf("stats=%+v: expected failovers after SIGKILLing a primary", s)
	}
}

// TestMultiProcessServeRouter runs the full deployment shape: hdcshard
// processes behind an `hdcserve -router` front, queried over HTTP, with
// the response checked hit-for-hit against the single-process engine.
func TestMultiProcessServeRouter(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	shardBin := buildBinary(t, dir, "hdcshard")
	serveBin := buildBinary(t, dir, "hdcserve")

	layout := dist.Layout{Classes: procClasses, Dim: procDim}
	for _, r := range infer.SplitRanges(procClasses, 3) {
		_, addr := spawnShard(t, shardBin, fmt.Sprintf("%d:%d", r[0], r[1]))
		layout.Shards = append(layout.Shards, dist.ShardSpec{Range: r, Replicas: []string{addr}})
	}
	layoutPath := filepath.Join(dir, "shards.json")
	if err := dist.WriteLayout(layoutPath, layout); err != nil {
		t.Fatal(err)
	}

	front := exec.Command(serveBin,
		"-addr", "127.0.0.1:0",
		"-router", layoutPath,
		"-embedder=false",
		"-max-delay", "1ms",
	)
	stderr, err := front.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := front.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = front.Process.Kill()
		_ = front.Wait()
	})
	frontAddr := awaitListening(t, stderr, "hdcserve")

	oracle := procOracle(t)
	batch := procBatch(1)
	want, err := oracle.TryQuery(batch, 5)
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(serve.ClassifyRequest{K: 5, Embedding: batch.Dense.Row(0)})
	resp, err := http.Post("http://"+frontAddr+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var cr serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Model != "float" {
		t.Fatalf("model=%q, want the shard backend's name", cr.Model)
	}
	if len(cr.TopK) != len(want[0].TopK) {
		t.Fatalf("topk=%d want %d", len(cr.TopK), len(want[0].TopK))
	}
	for i, h := range want[0].TopK {
		got := cr.TopK[i]
		if got.Class != h.Class || got.Label != h.Label || got.Score != h.Score {
			t.Fatalf("hit %d over HTTP: %+v want %+v", i, got, h)
		}
	}
}
