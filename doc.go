// Package repro is a from-scratch Go reproduction of "Zero-shot
// Classification using Hyperdimensional Computing" (Ruffino et al., DATE
// 2024): the HDC-ZSC model, every substrate it depends on (tensor engine,
// neural-network stack, HDC core, synthetic CUB-200 data), the compared
// baselines, and a benchmark harness regenerating every table and figure
// of the paper's evaluation — grown into a serving system: a sharded
// batched inference engine (internal/infer), a micro-batching HTTP layer
// (internal/serve, cmd/hdcserve), and a frozen-graph inference compiler
// (nn.CompiledNet — BatchNorm folding, fused GEMM epilogues, plan-level
// buffer scheduling), which is the serving entry point for neural
// embedders. The compiler also lowers frozen nets to calibrated int8
// plans (nn.CompileQuantized — per-channel symmetric scales, packed
// int8 GEMM with fused dequant/requant epilogues, int8 activations
// between steps), served beside f32 via hdcserve -precision int8.
//
// The class memory learns while serving: internal/classmem.Versioned
// is an RCU epoch store — POST /v1/enroll adds a class under live
// traffic, published epochs are immutable and every classify response
// is tagged with the epoch it was answered at, a CRC-framed WAL plus
// snapshot compaction (-wal, -snapshot-every) make enrollments
// crash-safe with bit-identical replay, and the distributed tail
// shard grows through a two-phase epoch flip with catch-up replay for
// restarted replicas. See README.md ("Live enrollment").
//
// The serving path's performance contracts are enforced statically by
// the in-tree analyzer suite in internal/analysis (driven by
// cmd/hdclint, standalone or via go vet -vettool): //hdc:hotpath marks
// allocation-free functions, //hdc:coldpath marks deliberate slow
// branches, //hdc:allow <analyzer> <reason> suppresses a finding with a
// mandatory justification. See README.md ("Correctness tooling") for
// the contract list, README.md for a tour, and DESIGN.md for the
// system inventory and substitution rationale.
package repro
