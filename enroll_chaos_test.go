package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/classmem"
	"repro/internal/dist"
	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// The live-enrollment acceptance run: classes are enrolled into real
// serving processes while open-loop classify traffic flows, the durable
// process is SIGKILLed mid-stream and restarted from its WAL, and every
// accepted ranking must be byte-identical to a lockstep-enrolled
// single-process oracle AT THE EPOCH THE RESPONSE IS TAGGED WITH — the
// paper's frozen-memory readout guarantee extended to a memory that
// grows under fire.

const (
	enrollChaosProbes = 8
	enrollChaosK      = 3
)

// enrollOracle mirrors the server's class memory in-process. Every
// epoch's expected rankings are computed and recorded BEFORE the
// matching POST /v1/enroll is sent, so a concurrent classify response
// tagged with epoch e always finds wants[e] populated — the server
// cannot publish e before the request that creates it.
type enrollOracle struct {
	t     *testing.T
	store *classmem.Versioned
	batch *infer.Batch
	mu    sync.Mutex
	wants map[uint64][]infer.Result
}

func newEnrollOracle(t *testing.T, classes, dim int, seed int64, x *tensor.Tensor) *enrollOracle {
	t.Helper()
	o := &enrollOracle{
		t:     t,
		store: classmem.NewVersioned(classes, dim, seed),
		batch: infer.DenseBatch(x),
		wants: make(map[uint64][]infer.Result),
	}
	o.snap(0)
	return o
}

// snap records the oracle's expected rankings for one published epoch.
func (o *enrollOracle) snap(epoch uint64) {
	o.t.Helper()
	be, err := o.store.Backend("float")
	if err != nil {
		o.t.Fatal(err)
	}
	want, err := infer.New(be).TryQuery(o.batch, enrollChaosK)
	if err != nil {
		o.t.Fatal(err)
	}
	o.mu.Lock()
	o.wants[epoch] = want
	o.mu.Unlock()
}

// stage enrolls the next class into the oracle — the identical
// sign-packed prototype the server will derive from the same dense
// vector — and returns the label and vector for the HTTP request.
func (o *enrollOracle) stage(epoch uint64) (string, []float32) {
	o.t.Helper()
	label := fmt.Sprintf("fresh-%03d", epoch)
	vec := enrollChaosVec(epoch, o.store.Dim())
	bp := make(hdc.Bipolar, len(vec))
	for i, v := range vec {
		if v < 0 {
			bp[i] = -1
		} else {
			bp[i] = 1
		}
	}
	got, err := o.store.Enroll(label, hdc.FromBipolar(bp))
	if err != nil {
		o.t.Fatalf("oracle enroll %q: %v", label, err)
	}
	if got != epoch {
		o.t.Fatalf("oracle enroll published epoch %d, want %d", got, epoch)
	}
	o.snap(epoch)
	return label, vec
}

func (o *enrollOracle) want(epoch uint64) ([]infer.Result, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	w, ok := o.wants[epoch]
	return w, ok
}

// enrollChaosVec derives one deterministic dense prototype per epoch —
// same LCG family as fillChaosProbes, keyed by the epoch so oracle and
// HTTP body agree without sharing an rng.
func enrollChaosVec(epoch uint64, dim int) []float32 {
	state := epoch*0x9e3779b97f4a7c15 + 0x51ed2701
	vec := make([]float32, dim)
	for i := range vec {
		state = state*6364136223846793005 + 1442695040888963407
		vec[i] = float32(int32(state>>33)) / float32(1<<31)
	}
	return vec
}

// classifyEpochCheck POSTs probe p and verifies the ranking against the
// oracle at the epoch the response is tagged with. pin ≥ 0 additionally
// requires the response to be tagged with exactly that epoch (the
// post-restart "WAL replayed to here" assertion).
func classifyEpochCheck(addr string, body []byte, orc *enrollOracle, p int, pin int64) error {
	resp, err := http.Post("http://"+addr+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("probe %d: status %d: %s", p, resp.StatusCode, msg)
	}
	var cr serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return err
	}
	if pin >= 0 && cr.Epoch != uint64(pin) {
		return fmt.Errorf("probe %d: tagged epoch %d, want %d", p, cr.Epoch, pin)
	}
	want, ok := orc.want(cr.Epoch)
	if !ok {
		return fmt.Errorf("probe %d: tagged with never-published epoch %d (epoch mixing)", p, cr.Epoch)
	}
	wp := want[p].TopK
	if len(cr.TopK) != len(wp) {
		return fmt.Errorf("probe %d at epoch %d: %d hits, want %d", p, cr.Epoch, len(cr.TopK), len(wp))
	}
	for i, h := range wp {
		got := cr.TopK[i]
		if got.Class != h.Class || got.Label != h.Label || got.Score != h.Score {
			return fmt.Errorf("probe %d at epoch %d hit %d: %+v, want %+v", p, cr.Epoch, i, got, h)
		}
	}
	return nil
}

// enrollHTTP stages one class in the oracle, then enrolls it over HTTP
// and requires the server to ack at the same epoch.
func enrollHTTP(t *testing.T, addr string, orc *enrollOracle, epoch uint64) {
	t.Helper()
	label, vec := orc.stage(epoch)
	body, _ := json.Marshal(serve.EnrollRequest{Label: label, Vector: vec})
	resp, err := http.Post("http://"+addr+"/v1/enroll", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("enroll epoch %d: %v", epoch, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("enroll epoch %d: status %d: %s", epoch, resp.StatusCode, msg)
	}
	var er serve.EnrollResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Epoch != epoch {
		t.Fatalf("enroll %q acked at epoch %d, want %d", label, er.Epoch, epoch)
	}
}

// enrollTraffic runs open-loop classify workers verifying every
// response against the oracle at its tagged epoch.
type enrollTraffic struct {
	stop   chan struct{}
	errs   chan error
	wg     sync.WaitGroup
	served atomic.Int64
}

// startEnrollTraffic spawns the workers. Once tolerate is set (just
// before a SIGKILL), request errors end the worker quietly instead of
// failing the test — the process they talk to is gone on purpose.
func startEnrollTraffic(workers int, do func(p int) error, tolerate *atomic.Bool) *enrollTraffic {
	c := &enrollTraffic{stop: make(chan struct{}), errs: make(chan error, workers)}
	for w := 0; w < workers; w++ {
		c.wg.Add(1)
		go func(w int) {
			defer c.wg.Done()
			for i := 0; ; i++ {
				select {
				case <-c.stop:
					return
				default:
				}
				if err := do((w*7 + i) % enrollChaosProbes); err != nil {
					if tolerate != nil && tolerate.Load() {
						return
					}
					c.errs <- err
					return
				}
				c.served.Add(1)
			}
		}(w)
	}
	return c
}

func (c *enrollTraffic) halt(t *testing.T, phase string) {
	t.Helper()
	close(c.stop)
	c.wg.Wait()
	close(c.errs)
	for err := range c.errs {
		t.Fatalf("%s: %v", phase, err)
	}
	if c.served.Load() == 0 {
		t.Fatalf("%s: traffic served nothing", phase)
	}
}

// getEnrollStats reads one model's enrollment gauges from GET /stats.
func getEnrollStats(t *testing.T, addr, model string) (epoch, enrolled uint64) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s struct {
		Models map[string]struct {
			Epoch         uint64 `json:"epoch"`
			EnrolledTotal uint64 `json:"enrolled_total"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Models[model]
	if !ok {
		t.Fatalf("/stats has no model %q", model)
	}
	return m.Epoch, m.EnrolledTotal
}

// TestEnrollChaosSingleProcess enrolls into a WAL-backed hdcserve under
// live classify traffic, SIGKILLs the process without warning, restarts
// it from the same WAL directory, and requires the replayed memory to
// serve rankings byte-identical to the oracle at the replayed epoch —
// then keeps enrolling to prove the store picked up exactly where the
// WAL ends.
func TestEnrollChaosSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	const (
		classes = 48
		dim     = 256
		seed    = 7
	)
	dir := t.TempDir()
	bin := buildBinary(t, dir, "hdcserve")
	wal := filepath.Join(dir, "wal")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-backends", "float",
		"-embedder=false",
		"-classes", fmt.Sprint(classes),
		"-d", fmt.Sprint(dim),
		"-seed", fmt.Sprint(seed),
		"-workers", "2",
		"-max-batch", "8",
		"-max-delay", "1ms",
		"-wal", wal,
		// Small so the kill/restart cycle crosses a compaction: the
		// restart replays snapshot + WAL tail, not just a log.
		"-snapshot-every", "4",
	}
	spawn := func() (*exec.Cmd, string, *bool) {
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := new(bool)
		t.Cleanup(func() {
			if !*exited {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		})
		return cmd, awaitListening(t, stderr, "hdcserve"), exited
	}

	x := tensor.New(enrollChaosProbes, dim)
	fillChaosProbes(x)
	orc := newEnrollOracle(t, classes, dim, seed, x)
	bodies := make([][]byte, enrollChaosProbes)
	for p := range bodies {
		bodies[p], _ = json.Marshal(serve.ClassifyRequest{Model: "float", K: enrollChaosK, Embedding: x.Row(p)})
	}

	front, addr, exited := spawn()

	// Frozen baseline: every probe parity-checked at epoch 0.
	for p := range bodies {
		if err := classifyEpochCheck(addr, bodies[p], orc, p, 0); err != nil {
			t.Fatalf("pre-enroll: %v", err)
		}
	}

	// Phase 1: enroll under open-loop traffic. Workers verify each
	// response against the oracle at its tagged epoch, so rankings from
	// engines swapped mid-flight must still be self-consistent.
	var tolerate atomic.Bool
	traffic := startEnrollTraffic(4, func(p int) error {
		return classifyEpochCheck(addr, bodies[p], orc, p, -1)
	}, &tolerate)
	const preKill = 6
	for e := uint64(1); e <= preKill; e++ {
		enrollHTTP(t, addr, orc, e)
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)

	// Phase 2: SIGKILL mid-stream — no drain, no fsync beyond what the
	// enroll acks already forced. The WAL is the only survivor.
	tolerate.Store(true)
	if err := front.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = front.Wait()
	*exited = true
	traffic.halt(t, "pre-kill traffic")

	// Phase 3: restart from the same WAL directory. The store must
	// replay to exactly the last acked epoch and serve rankings
	// byte-identical to the oracle there.
	_, addr2, _ := spawn()
	epoch, enrolled := getEnrollStats(t, addr2, "float")
	if epoch != preKill || enrolled != preKill {
		t.Fatalf("after WAL replay: epoch=%d enrolled=%d, want %d", epoch, enrolled, preKill)
	}
	for p := range bodies {
		if err := classifyEpochCheck(addr2, bodies[p], orc, p, preKill); err != nil {
			t.Fatalf("post-restart: %v", err)
		}
	}

	// Phase 4: the replayed store keeps enrolling — epochs continue from
	// the WAL's end, under traffic again.
	var tolerate2 atomic.Bool
	traffic2 := startEnrollTraffic(4, func(p int) error {
		return classifyEpochCheck(addr2, bodies[p], orc, p, -1)
	}, &tolerate2)
	for e := uint64(preKill + 1); e <= preKill+2; e++ {
		enrollHTTP(t, addr2, orc, e)
		time.Sleep(20 * time.Millisecond)
	}
	traffic2.halt(t, "post-restart traffic")
	for p := range bodies {
		if err := classifyEpochCheck(addr2, bodies[p], orc, p, preKill+2); err != nil {
			t.Fatalf("final sweep: %v", err)
		}
	}
}

// TestEnrollChaosDistributed runs the full cluster shape — a frozen
// range plus a two-replica growing range behind `hdcserve -router` —
// enrolls through the router's two-phase epoch flip under traffic,
// SIGKILLs one growing replica mid-stream, restarts it from its WAL,
// drives it back in sync through the router's catch-up replay, then
// kills the OTHER replica so the recovered one alone must serve the
// latest epoch byte-identically to the oracle.
func TestEnrollChaosDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	const (
		classes = 24
		dim     = 128
		seed    = 7
		split   = 12
	)
	dir := t.TempDir()
	shardBin := buildBinary(t, dir, "hdcshard")
	serveBin := buildBinary(t, dir, "hdcserve")

	spawnGrow := func(addr, wal string) (*exec.Cmd, string, *bool) {
		cmd := exec.Command(shardBin,
			"-addr", addr,
			"-range", fmt.Sprintf("%d:%d", split, classes),
			"-backend", "float",
			"-classes", fmt.Sprint(classes),
			"-d", fmt.Sprint(dim),
			"-seed", fmt.Sprint(seed),
			"-workers", "2",
			"-wal", wal,
			"-snapshot-every", "4",
		)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := new(bool)
		t.Cleanup(func() {
			if !*exited {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		})
		return cmd, awaitListening(t, stderr, "hdcshard"), exited
	}

	frozen := exec.Command(shardBin,
		"-addr", "127.0.0.1:0",
		"-range", fmt.Sprintf("0:%d", split),
		"-backend", "float",
		"-classes", fmt.Sprint(classes),
		"-d", fmt.Sprint(dim),
		"-seed", fmt.Sprint(seed),
		"-workers", "2",
	)
	frozenErr, err := frozen.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := frozen.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = frozen.Process.Kill()
		_ = frozen.Wait()
	})
	frozenAddr := awaitListening(t, frozenErr, "hdcshard")

	walA := filepath.Join(dir, "wal-a")
	walB := filepath.Join(dir, "wal-b")
	repA, addrA, exitedA := spawnGrow("127.0.0.1:0", walA)
	repB, addrB, exitedB := spawnGrow("127.0.0.1:0", walB)

	layout := dist.Layout{Classes: classes, Dim: dim, Shards: []dist.ShardSpec{
		{Range: [2]int{0, split}, Replicas: []string{frozenAddr}},
		{Range: [2]int{split, classes}, Replicas: []string{addrA, addrB}},
	}}
	layoutPath := filepath.Join(dir, "shards.json")
	if err := dist.WriteLayout(layoutPath, layout); err != nil {
		t.Fatal(err)
	}

	front := exec.Command(serveBin,
		"-addr", "127.0.0.1:0",
		"-router", layoutPath,
		"-embedder=false",
		"-max-batch", "8",
		"-max-delay", "1ms",
		"-shard-timeout", "500ms",
	)
	frontErr, err := front.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := front.Start(); err != nil {
		t.Fatal(err)
	}
	frontExited := false
	t.Cleanup(func() {
		if !frontExited {
			_ = front.Process.Kill()
			_ = front.Wait()
		}
	})
	addr := awaitListening(t, frontErr, "hdcserve")

	x := tensor.New(enrollChaosProbes, dim)
	fillChaosProbes(x)
	orc := newEnrollOracle(t, classes, dim, seed, x)
	bodies := make([][]byte, enrollChaosProbes)
	for p := range bodies {
		bodies[p], _ = json.Marshal(serve.ClassifyRequest{K: enrollChaosK, Embedding: x.Row(p)})
	}

	// pollA reads replica A's committed epoch straight off its info
	// frame (via a throwaway single-replica router), bypassing the
	// front — the observation point for "has the catch-up replay
	// landed on the restarted replica".
	pollA := func() (uint64, bool) {
		lay := dist.Layout{Classes: classes, Dim: dim, Shards: []dist.ShardSpec{
			{Range: [2]int{0, split}, Replicas: []string{frozenAddr}},
			{Range: [2]int{split, classes}, Replicas: []string{addrA}},
		}}
		r, err := dist.NewRouter(lay, dist.RouterConfig{ShardTimeout: time.Second, DialTimeout: time.Second})
		if err != nil {
			return 0, false
		}
		defer r.Close()
		return r.Epoch(), true
	}

	for p := range bodies {
		if err := classifyEpochCheck(addr, bodies[p], orc, p, 0); err != nil {
			t.Fatalf("pre-enroll: %v", err)
		}
	}

	// Phase 1: enroll through the two-phase flip with both replicas up,
	// classify traffic verifying epoch-tagged parity throughout.
	traffic := startEnrollTraffic(3, func(p int) error {
		return classifyEpochCheck(addr, bodies[p], orc, p, -1)
	}, nil)
	epoch := uint64(0)
	for i := 0; i < 3; i++ {
		epoch++
		enrollHTTP(t, addr, orc, epoch)
		time.Sleep(20 * time.Millisecond)
	}

	// Phase 2: SIGKILL replica A mid-stream. Queries fail over to B;
	// enrollment continues on a quorum of one, so A misses epochs it
	// will have to catch up on.
	if err := repA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = repA.Wait()
	*exitedA = true
	for i := 0; i < 2; i++ {
		epoch++
		enrollHTTP(t, addr, orc, epoch)
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	traffic.halt(t, "failover traffic")

	// Phase 3: restart A on the same address from its WAL — it replays
	// to the epoch it died at, behind the cluster. Each new enrollment
	// offers the router a chance to re-admit it (the circuit breaker's
	// half-open probe) and replay the missed epochs from the enroll log;
	// keep enrolling until A's committed epoch catches the cluster's.
	_, _, _ = spawnGrow(addrA, walA)
	deadline := time.Now().Add(20 * time.Second)
	for {
		epoch++
		enrollHTTP(t, addr, orc, epoch)
		if got, ok := pollA(); ok && got == epoch {
			break
		}
		if time.Now().After(deadline) {
			got, ok := pollA()
			t.Fatalf("replica A never caught up: at epoch %d (reachable=%v), cluster at %d", got, ok, epoch)
		}
		time.Sleep(150 * time.Millisecond)
	}

	// Phase 4: kill the replica that never failed. The recovered A is
	// now the only growing replica — its WAL-replayed, catch-up-driven
	// state must serve the latest epoch byte-identically to the oracle.
	if err := repB.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = repB.Wait()
	*exitedB = true
	for p := range bodies {
		if err := classifyEpochCheck(addr, bodies[p], orc, p, int64(epoch)); err != nil {
			t.Fatalf("recovered-replica sweep: %v", err)
		}
	}
	if got, _ := getEnrollStats(t, addr, "float"); got != epoch {
		t.Fatalf("/stats epoch=%d, want %d", got, epoch)
	}

	// Phase 5: graceful front drain.
	if err := front.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- front.Wait() }()
	select {
	case err := <-waitErr:
		frontExited = true
		if err != nil {
			t.Fatalf("hdcserve did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hdcserve did not exit within 15s of SIGTERM")
	}
}
