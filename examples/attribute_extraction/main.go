// Attribute extraction: the paper's phase-II task in isolation. Trains
// the image encoder to score the 312 HDC attribute codevectors against
// ground-truth instance attributes and reports WMAP plus per-group top-1
// accuracy, contrasting the weighted BCE of §III-A with plain BCE — the
// core of the Table I comparison.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
)

func main() {
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = 16
	cfg.ImagesPerClass = 10
	cfg.AttrNoise = 0.25
	d := dataset.Generate(cfg)
	rng := rand.New(rand.NewSource(3))
	// The paper evaluates attribute extraction on the noZS split: the same
	// classes appear on both sides, with the images partitioned.
	split := d.NoZSSplit(rng, cfg.NumClasses/2, 0.7)
	fmt.Printf("noZS split: %d classes, %d train / %d test images\n",
		len(split.TrainClasses), len(split.Train), len(split.Test))

	run := func(weighted bool) (float64, []float64) {
		pipe := core.PipelineConfig{
			Backbone: nn.MicroResNet50Config(4).WithFlatten(cfg.Height, cfg.Width),
			ProjDim:  256, Encoder: "HDC",
			PhaseII: core.DefaultTrainConfig(), Seed: 3,
		}
		pipe.PhaseII.Epochs = 8
		if !weighted {
			pipe.PhaseII.MaxPosWeight = 1 // cap at 1 → plain BCE
		}
		model, enc := pipe.Build(d.Schema)
		core.TrainAttributeExtraction(model.Image, model.Kernel, enc.Dictionary(), d, split, pipe.PhaseII)
		scores, targets := core.AttributeScores(model.Image, model.Kernel, enc.Dictionary(), d, split.Test)
		perGroup := make([]float64, d.Schema.NumGroups())
		for g := range d.Schema.Groups {
			off := d.Schema.GroupAttrOffset[g]
			perGroup[g] = metrics.GroupTop1Accuracy(scores, targets, off, len(d.Schema.Groups[g].Values))
		}
		return metrics.WMAP(scores, targets), perGroup
	}

	fmt.Println("\ntraining with the paper's weighted BCE (pos-weight = #neg/#pos)…")
	wmapW, groupsW := run(true)
	fmt.Println("training again with plain unweighted BCE (the Finetag-style objective)…")
	wmapU, _ := run(false)

	fmt.Printf("\nWMAP  weighted BCE: %.1f%%   plain BCE: %.1f%%\n", wmapW*100, wmapU*100)
	if wmapW > wmapU {
		fmt.Println("→ the imbalance weighting earns its keep, as §III-A argues")
	} else {
		fmt.Println("→ at this toy scale the weighting is within noise; cmd/experiments -full table1 shows the full contrast")
	}

	// Per-group breakdown, Table I style: best and worst groups.
	type gp struct {
		name string
		acc  float64
	}
	var rows []gp
	for g, grp := range d.Schema.Groups {
		rows = append(rows, gp{grp.Name, groupsW[g]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].acc > rows[j].acc })
	fmt.Println("\nper-group top-1 accuracy (weighted BCE), best five:")
	for _, r := range rows[:5] {
		fmt.Printf("  %-18s %5.1f%%\n", r.name, r.acc*100)
	}
	fmt.Println("worst five:")
	for _, r := range rows[len(rows)-5:] {
		fmt.Printf("  %-18s %5.1f%%\n", r.name, r.acc*100)
	}
}
