// Edge profile: the paper's deployment story (§I, §V). The attribute
// encoder is stationary binary weights, so on an edge device it reduces
// to XOR binding + popcount similarity over packed 64-bit words. This
// example measures the codebook memory budget, verifies the packed path
// agrees with the float path, builds an associative item memory of class
// prototypes, and times float-cosine vs XOR/popcount inference.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/attrenc"
	"repro/internal/dataset"
	"repro/internal/hdc"
	"repro/internal/infer"
)

func main() {
	schema := dataset.NewCUBSchema()
	const d = 1536 // the paper's preferred dimensionality
	rng := rand.New(rand.NewSource(21))
	enc := attrenc.NewHDCEncoder(rng, schema, d)

	// --- 1. Memory accounting (§III-A). ---
	m := enc.MemoryFootprint()
	fmt.Println("codebook storage at d=1536, 1 bit/component:")
	fmt.Printf("  materialized dictionary (α=%d vectors): %6.1f KB\n",
		m.Combos, float64(m.MaterializedBytes)/1024)
	fmt.Printf("  factored codebooks      (G+V=%d vectors): %6.1f KB  ← ships to the device\n",
		m.Groups+m.Values, float64(m.FactoredBytes)/1024)
	fmt.Printf("  reduction: %.0f%%   (paper: 71%%, ≈17 KB)\n\n", m.Reduction()*100)

	// --- 2. Packed path equals the float path. ---
	x := schema.AttrIndex(2, 7) // some attribute
	packed := enc.AttrVector(x).ToBipolar()
	float := enc.Dictionary().Row(x)
	for i := range float {
		if float32(packed[i]) != float[i] {
			panic("packed rematerialization diverged from the float dictionary")
		}
	}
	fmt.Printf("on-the-fly XOR binding reproduces the float dictionary row for %q\n\n",
		schema.AttrName(x))

	// --- 3. Class prototypes in an associative item memory. ---
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = 24
	data := dataset.Generate(cfg)
	im := hdc.NewItemMemory(d)
	protos := make([]*hdc.Binary, cfg.NumClasses)
	for c := 0; c < cfg.NumClasses; c++ {
		protos[c] = enc.ClassPrototype(rng, data.ClassAttr.Row(c))
		im.Store(data.ClassNames[c], protos[c])
	}
	fmt.Printf("item memory: %d class prototypes, %.1f KB packed\n",
		im.Len(), float64(im.Bytes())/1024)

	// Recall under bit-flip noise — HDC's robustness story.
	flip := func(v *hdc.Binary, frac float64) *hdc.Binary {
		out := v.Clone()
		for i := 0; i < int(frac*float64(d)); i++ {
			p := rng.Intn(d)
			out.SetBit(p, 1-out.Bit(p))
		}
		return out
	}
	for _, noise := range []float64{0.05, 0.15, 0.25} {
		hits := 0
		for c := 0; c < cfg.NumClasses; c++ {
			if _, idx, _ := im.Query(flip(protos[c], noise)); idx == c {
				hits++
			}
		}
		fmt.Printf("  recall with %2.0f%% of bits flipped: %d/%d\n",
			noise*100, hits, cfg.NumClasses)
	}

	// --- 4. Throughput: float cosine vs XOR + popcount. ---
	const queries = 2000
	probe := protos[0]
	probeBipolar := probe.ToBipolar()
	protoBipolar := make([]hdc.Bipolar, cfg.NumClasses)
	for c := range protoBipolar {
		protoBipolar[c] = protos[c].ToBipolar()
	}

	start := time.Now()
	var sinkF float64
	for q := 0; q < queries; q++ {
		for c := range protoBipolar {
			sinkF += probeBipolar.Cosine(protoBipolar[c])
		}
	}
	floatDur := time.Since(start)

	start = time.Now()
	var sinkI int
	for q := 0; q < queries; q++ {
		for c := range protos {
			sinkI += probe.Hamming(protos[c])
		}
	}
	packedDur := time.Since(start)

	fmt.Printf("\nsimilarity throughput over %d queries × %d classes at d=%d:\n",
		queries, cfg.NumClasses, d)
	fmt.Printf("  float cosine : %8.2f ms\n", floatDur.Seconds()*1000)
	fmt.Printf("  XOR+popcount : %8.2f ms   (%.0f× faster)\n",
		packedDur.Seconds()*1000, float64(floatDur)/float64(packedDur))
	_ = sinkF
	_ = sinkI

	// --- 5. Batched serving: per-probe scan vs the sharded engine. ---
	// The production posture is batched: many probes arrive at once and
	// the class memory is sharded across workers with reusable buffers
	// (internal/infer), instead of one sequential scan per probe.
	const batchProbes = 1024
	batch := make([]*hdc.Binary, batchProbes)
	for q := range batch {
		batch[q] = flip(protos[q%cfg.NumClasses], 0.10)
	}

	start = time.Now()
	scanPred := make([]int, batchProbes)
	for q, p := range batch {
		_, scanPred[q], _ = im.Query(p)
	}
	scanDur := time.Since(start)

	eng := infer.New(infer.NewBinaryBackend(im))
	start = time.Now()
	engPred := eng.Predict(infer.PackedBatch(batch))
	engDur := time.Since(start)

	for q := range engPred {
		if engPred[q] != scanPred[q] {
			panic("engine predictions diverged from the per-probe scan")
		}
	}
	fmt.Printf("\nbatched inference over %d probes × %d classes (%d shard workers):\n",
		batchProbes, cfg.NumClasses, eng.Workers())
	fmt.Printf("  per-probe scan : %8.2f ms\n", scanDur.Seconds()*1000)
	fmt.Printf("  sharded engine : %8.2f ms   (%.1f× faster, identical predictions)\n",
		engDur.Seconds()*1000, float64(scanDur)/float64(engDur))

	fmt.Println("\n→ the stationary binary encoder is what the paper proposes offloading to non-von-Neumann accelerators [37,38]")
}
