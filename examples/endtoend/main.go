// End-to-end serving: the compiled frozen-graph inference path. PR 3's
// stateless Infer let one frozen backbone be shared by any number of
// goroutines; PR 5 compiles that frozen graph into an execution plan —
// BatchNorms folded into conv weights, bias/ReLU/residual adds fused
// into the GEMM write-back, activation buffers pre-scheduled into one
// arena reservation (nn.CompiledNet). This example runs RAW images
// through one compiled encoder shared by many concurrent workers (each
// with its own nn.Scratch), feeds the embeddings to the engine readout,
// and verifies the concurrent predictions match the serial eval-Forward
// reference (the compiled path is tolerance-equal to Forward under BN
// folding, and bitwise deterministic across worker counts).
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	const (
		d       = 1536
		nClass  = 50
		img     = 16
		samples = 128
		batch   = 32
	)
	rng := rand.New(rand.NewSource(7))

	// One frozen image encoder (micro ResNet50 + FC projection to d) and
	// one float readout engine over a random frozen class memory.
	enc := core.NewImageEncoder(rng, nn.MicroResNet50Config(8), d)
	phi := tensor.Rademacher(rng, nClass, d)
	eng := infer.New(infer.NewFloatBackend(phi, nil, 0.05))
	images := tensor.Randn(rng, 1, samples, 3, img, img)

	sample := func(lo, hi int) *tensor.Tensor {
		sz := 3 * img * img
		return tensor.FromSlice(images.Data[lo*sz:hi*sz], hi-lo, 3, img, img)
	}

	// Serial reference: the legacy eval path, one batch at a time.
	start := time.Now()
	ref := make([]int, 0, samples)
	for at := 0; at < samples; at += batch {
		end := min(at+batch, samples)
		emb := enc.Forward(sample(at, end), false)
		ref = append(ref, eng.Predict(infer.DenseBatch(emb))...)
	}
	serial := time.Since(start)

	// Concurrent pipeline: workers share the ONE compiled plan, each
	// embedding and querying its own batches.
	compiled := enc.Compiled()
	workers := runtime.GOMAXPROCS(0)
	start = time.Now()
	got := make([]int, samples)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := nn.GetScratch()
			defer nn.PutScratch(sc)
			for at := range jobs {
				end := min(at+batch, samples)
				sc.Reset()
				emb := compiled.Infer(sample(at, end), sc)
				copy(got[at:end], eng.Predict(infer.DenseBatch(emb)))
			}
		}()
	}
	for at := 0; at < samples; at += batch {
		jobs <- at
	}
	close(jobs)
	wg.Wait()
	parallel := time.Since(start)

	// BN folding makes the compiled path tolerance-equal (≤1e-4 relative),
	// not bitwise-equal, to eval Forward, and the rounding is machine-
	// dependent (AVX2 vs portable kernel); a prediction may legitimately
	// flip only where two class scores are nearly tied. Demand agreement
	// everywhere but a sliver of near-ties rather than exact equality.
	diverged := 0
	for i := range ref {
		if got[i] != ref[i] {
			diverged++
		}
	}
	if diverged > samples/100 {
		panic(fmt.Sprintf("compiled end-to-end path diverged from the serial reference on %d/%d samples", diverged, samples))
	}

	fmt.Printf("%d raw %dx%d images → shared frozen ResNet (d'=%d → d=%d) → engine readout over %d classes\n\n",
		samples, img, img, enc.Backbone.OutDim(), d, nClass)
	fmt.Printf("  serial eval Forward + Query      : %8.2f ms\n", serial.Seconds()*1000)
	fmt.Printf("  %d-worker compiled-plan pipeline  : %8.2f ms  (%.2fx, matching predictions)\n\n",
		workers, parallel.Seconds()*1000, serial.Seconds()/parallel.Seconds())
	fmt.Println("→ the embedding stage is no longer the serial wall-clock floor; cmd/hdcserve exposes the same path over HTTP as POST /v1/embed-classify")
}
