// Quickstart: the smallest end-to-end tour of the library — build the HDC
// codebooks, encode a class descriptor, train a tiny HDC-ZSC model, and
// classify images from classes the model never saw. Runs in well under a
// minute on one CPU.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/attrenc"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
)

func main() {
	// 1. A synthetic CUB-like dataset with the paper's exact attribute
	//    topology: 28 groups, 61 shared values, 312 combinations.
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = 16
	cfg.ImagesPerClass = 10
	cfg.AttrNoise = 0.25
	d := dataset.Generate(cfg)
	fmt.Printf("schema: G=%d groups, V=%d values, α=%d attribute combinations\n",
		d.Schema.NumGroups(), d.Schema.NumValues(), d.Schema.Alpha())

	// 2. The HDC attribute encoder: two stationary Rademacher codebooks;
	//    attribute codevectors materialize by binding group ⊙ value.
	rng := rand.New(rand.NewSource(7))
	enc := attrenc.NewHDCEncoder(rng, d.Schema, 256)
	fmt.Printf("codebooks: %d atomic vectors (%d groups + %d values), %d bytes packed\n",
		enc.Groups.Len()+enc.Values.Len(), enc.Groups.Len(), enc.Values.Len(),
		enc.Groups.Bytes()+enc.Values.Bytes())
	fmt.Printf("example attribute: %q ↦ bound hypervector b = g ⊙ v\n", d.Schema.AttrName(0))

	// 3. Encode one class descriptor: ϕ(a) = a·B.
	phi := enc.Encode(d.ClassAttrRows([]int{0}), false)
	fmt.Printf("class %q embeds to a %d-dimensional vector (‖ϕ‖=%.1f)\n",
		d.ClassNames[0], phi.Dim(1), phi.Norm())

	// 4. Assemble and train the full model on a zero-shot split: the test
	//    classes are disjoint from the training classes.
	split := d.ZSSplit(rand.New(rand.NewSource(11)), 2.0/3)
	pipe := core.PipelineConfig{
		Backbone: nn.MicroResNet50Config(4).WithFlatten(cfg.Height, cfg.Width),
		ProjDim:  256,
		Encoder:  "HDC",
		PhaseI:   core.DefaultTrainConfig(),
		PhaseII:  core.DefaultTrainConfig(),
		PhaseIII: core.DefaultTrainConfig(),
		Seed:     7,
	}
	pipe.PhaseII.Epochs = 10
	pipe.PhaseIII.Epochs = 10
	fmt.Printf("\ntraining on %d seen classes, evaluating on %d unseen classes…\n",
		len(split.TrainClasses), len(split.TestClasses))
	model, res := pipe.Run(d, split, nil)

	fmt.Printf("zero-shot top-1: %.1f%% (chance %.1f%%), top-5: %.1f%%\n",
		res.Eval.Top1*100, 100/float64(len(split.TestClasses)), res.Eval.Top5*100)
	fmt.Printf("trainable parameters: %d — the attribute encoder contributes 0\n", res.ParamCount)

	// 5. Classify one unseen image by hand, the Fig. 1 scenario.
	inst := d.Instances[split.Test[0]]
	testAttr := d.ClassAttrRows(split.TestClasses)
	pred := model.Predict(inst.Image.Reshape(1, 3, cfg.Height, cfg.Width), testAttr)
	fmt.Printf("\n\"This image is from a class I have never seen before. I predict %q\" (truth: %q)\n",
		d.ClassNames[split.TestClasses[pred[0]]], d.ClassNames[inst.Class])
}
