// Serving: the production posture of the inference engine. PR 1 made
// the readout batched; this example shows the layer above it
// (internal/serve): many independent clients each bring ONE probe, a
// micro-batching coalescer merges them into engine batches under a
// MaxBatch/MaxDelay policy, and one concurrency-safe engine serves all
// of them. It measures the recovered throughput against the raw batched
// path and the naive engine-per-request pattern.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/attrenc"
	"repro/internal/dataset"
	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/serve"
)

func main() {
	const (
		d       = 1536
		nClass  = 50
		clients = 64
		perCli  = 64
	)
	rng := rand.New(rand.NewSource(7))
	schema := dataset.NewCUBSchema()
	enc := attrenc.NewHDCEncoder(rng, schema, d)
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = nClass
	data := dataset.Generate(cfg)

	im := hdc.NewItemMemory(d)
	for c := 0; c < nClass; c++ {
		im.Store(data.ClassNames[c], enc.ClassPrototype(rng, data.ClassAttr.Row(c)))
	}
	fmt.Printf("frozen class memory: %d prototypes at d=%d (%.1f KB packed)\n\n",
		im.Len(), d, float64(im.Bytes())/1024)

	// One shared engine — safe for concurrent callers since the sync.Pool
	// scratch refactor — behind one coalescer.
	eng := infer.New(infer.NewBinaryBackend(im))
	co := serve.NewCoalescer(eng, serve.Config{MaxBatch: 32, MaxDelay: 2 * time.Millisecond})
	defer co.Close()

	// Each client probes with noisy copies of random prototypes.
	probes := make([][]*hdc.Binary, clients)
	for i := range probes {
		probes[i] = make([]*hdc.Binary, perCli)
		crng := rand.New(rand.NewSource(int64(100 + i)))
		for j := range probes[i] {
			v := im.Vector(crng.Intn(nClass)).Clone()
			for f := 0; f < d/10; f++ {
				p := crng.Intn(d)
				v.SetBit(p, 1-v.Bit(p))
			}
			probes[i][j] = v
		}
	}
	total := clients * perCli

	// Baseline 1: the raw batched path — all probes in one big Query.
	flat := make([]*hdc.Binary, 0, total)
	for _, ps := range probes {
		flat = append(flat, ps...)
	}
	start := time.Now()
	ref := eng.Query(infer.PackedBatch(flat), 1)
	rawDur := time.Since(start)

	// Baseline 2: the pre-serving pattern — every request its own
	// sequential single-probe Query.
	start = time.Now()
	for _, p := range flat {
		eng.Query(infer.PackedBatch([]*hdc.Binary{p}), 1)
	}
	naiveDur := time.Since(start)

	// The serving path: independent clients, one probe per request, the
	// coalescer rebuilding batches underneath them.
	start = time.Now()
	var wg sync.WaitGroup
	preds := make([][]int, clients)
	for i := range probes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preds[i] = make([]int, perCli)
			for j, p := range probes[i] {
				res, err := co.Classify(context.Background(), serve.Probe{Packed: p}, 1)
				if err != nil {
					panic(err)
				}
				preds[i][j] = res.TopK[0].Class
			}
		}(i)
	}
	wg.Wait()
	serveDur := time.Since(start)

	// Every coalesced answer must match the raw batched reference.
	for i := range probes {
		for j := range probes[i] {
			if preds[i][j] != ref[i*perCli+j].TopK[0].Class {
				panic("coalesced result diverged from the batched reference")
			}
		}
	}

	s := co.Stats()
	fmt.Printf("%d clients × %d single-probe requests over %d classes:\n", clients, perCli, nClass)
	fmt.Printf("  raw batched Query (one %d-probe batch) : %8.2f ms  (%.0fk probes/s)\n",
		total, rawDur.Seconds()*1000, float64(total)/rawDur.Seconds()/1e3)
	fmt.Printf("  naive per-request Query                : %8.2f ms  (%.0fk probes/s)\n",
		naiveDur.Seconds()*1000, float64(total)/naiveDur.Seconds()/1e3)
	fmt.Printf("  coalesced serving layer                : %8.2f ms  (%.0fk probes/s, identical answers)\n\n",
		serveDur.Seconds()*1000, float64(total)/serveDur.Seconds()/1e3)
	fmt.Printf("coalescer: %d requests → %d engine batches (mean %.1f probes/batch, largest %d; %d full, %d timer flushes)\n",
		s.Requests, s.Batches, s.MeanBatch, s.LargestBatch, s.FullFlushes, s.TimerFlushes)
	fmt.Println("\n→ single-probe clients keep batched-engine throughput without ever seeing a batch; cmd/hdcserve exposes this over HTTP")
}
