// Zero-shot birds: the full three-phase HDC-ZSC methodology on a ZS
// split, compared head-to-head against the ESZSL closed-form baseline on
// identical data — the headline experiment of the paper in miniature.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imc"
	"repro/internal/infer"
	"repro/internal/nn"
)

func main() {
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = 20
	cfg.ImagesPerClass = 12
	cfg.Height, cfg.Width = 16, 16
	cfg.AttrNoise = 0.25
	d := dataset.Generate(cfg)
	split := d.ZSSplit(rand.New(rand.NewSource(5)), 0.75)
	pre := dataset.GenerateImageNet(8, 10, cfg.Height, cfg.Width, 99)
	fmt.Printf("ZS split: %d seen classes for training, %d unseen for testing (disjoint)\n",
		len(split.TrainClasses), len(split.TestClasses))

	// --- HDC-ZSC: phases I → II → III. ---
	pipe := core.PipelineConfig{
		Backbone: nn.MicroResNet50Config(5).WithFlatten(cfg.Height, cfg.Width),
		ProjDim:  256, Encoder: "HDC",
		PhaseI: core.DefaultTrainConfig(), PhaseII: core.DefaultTrainConfig(),
		PhaseIII: core.DefaultTrainConfig(), Seed: 5,
	}
	pipe.PhaseI.Epochs = 2
	pipe.PhaseII.Epochs = 10
	pipe.PhaseIII.Epochs = 10
	fmt.Println("\ntraining HDC-ZSC (phase I: classification, II: attributes, III: ZSC)…")
	model, ours := pipe.Run(d, split, pre)
	fmt.Printf("  HDC-ZSC   top-1 %.1f%%  top-5 %.1f%%  params %d\n",
		ours.Eval.Top1*100, ours.Eval.Top5*100, ours.ParamCount)

	// Re-run the readout through the analog-crossbar backend of the
	// inference engine: the same frozen class embeddings programmed into
	// per-shard PCM tiles with typical non-idealities — the §V deployment
	// outlook. HDC's claim is that accuracy survives the analog noise.
	phi := core.ClassEmbeddings(model, d, split.TestClasses)
	labels := core.ClassLabels(d, split.TestClasses)
	// Workers are pinned: the shard layout fixes the tile boundaries and
	// hence the noise draws, so the printed numbers reproduce across
	// machines with different core counts.
	xbar := infer.NewCrossbarBackend(phi, labels, model.Kernel.Temperature(), imc.TypicalPCM())
	noisy := core.EvalZSCWithEngine(model, d, split, infer.New(xbar, infer.WithWorkers(4)))
	fmt.Printf("  …on noisy PCM crossbar tiles: top-1 %.1f%%  top-5 %.1f%%  (Δtop-1 %+.1f)\n",
		noisy.Top1*100, noisy.Top5*100, (noisy.Top1-ours.Eval.Top1)*100)

	// --- ESZSL on the same pre-trained features. ---
	fmt.Println("training ESZSL (closed-form bilinear compatibility) on phase-I features…")
	img := core.NewImageEncoder(rand.New(rand.NewSource(5)), pipe.Backbone, 0)
	core.PretrainClassification(img, pre, pipe.PhaseI)
	ez, err := baselines.RunESZSL(img, d, split, 1, 1)
	if err != nil {
		fmt.Println("  eszsl:", err)
		return
	}
	fmt.Printf("  ESZSL     top-1 %.1f%%  top-5 %.1f%%  params %d\n",
		ez.Top1*100, ez.Top5*100, ez.ParamCount)

	chance := 100 / float64(len(split.TestClasses))
	fmt.Printf("\nchance level: %.1f%%\n", chance)
	switch {
	case ours.Eval.Top1 > ez.Top1:
		fmt.Printf("→ HDC-ZSC beats ESZSL by %+.1f points with %.2f× the parameters — the Fig. 4 story\n",
			(ours.Eval.Top1-ez.Top1)*100, float64(ours.ParamCount)/float64(ez.ParamCount))
	default:
		fmt.Println("→ ESZSL held its ground on this tiny run; the full-scale harness (cmd/experiments) reproduces the paper's ordering")
	}
}
