package repro

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/attrenc"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/hdc"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// Integration tests exercise cross-module flows a downstream user relies
// on: the three-phase pipeline with checkpointing, the HDC/edge
// equivalence, and the experiment plumbing end to end.

func integData(t *testing.T) (*dataset.SynthCUB, dataset.Split) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = 12
	cfg.ImagesPerClass = 6
	cfg.Height, cfg.Width = 12, 12
	cfg.AttrNoise = 0.2
	cfg.Seed = 42
	d := dataset.Generate(cfg)
	return d, d.ZSSplit(rand.New(rand.NewSource(43)), 2.0/3)
}

func integPipeline() core.PipelineConfig {
	cfg := core.DefaultPipelineConfig()
	cfg.Backbone = nn.MicroResNet50Config(4).WithFlatten(12, 12)
	cfg.ProjDim = 96
	cfg.Seed = 42
	cfg.PhaseI.Epochs = 1
	cfg.PhaseII.Epochs = 3
	cfg.PhaseIII.Epochs = 3
	return cfg
}

// TestCheckpointResumesPhaseIII trains phases I+II, saves the matured
// image encoder, reloads it into a fresh model, fine-tunes phase III
// there, and verifies the result matches training straight through —
// the Fig. 2 → Fig. 3 deployment flow.
func TestCheckpointResumesPhaseIII(t *testing.T) {
	d, split := integData(t)
	cfg := integPipeline()

	modelA, encA := cfg.Build(d.Schema)
	core.TrainAttributeExtraction(modelA.Image, modelA.Kernel, encA.Dictionary(), d, split, cfg.PhaseII)
	path := filepath.Join(t.TempDir(), "phase2.ckpt")
	// Checkpoint trainable parameters plus batch-norm running statistics
	// (the Stateful buffers) — inference-mode features depend on both.
	paramsA := append(modelA.Image.Params(), modelA.Kernel.Params()...)
	paramsA = append(paramsA, nn.StateParams(modelA.Image.Backbone.State())...)
	if err := nn.SaveParamsFile(path, paramsA); err != nil {
		t.Fatalf("save: %v", err)
	}

	modelB, _ := cfg.Build(d.Schema) // same seed → same names/shapes
	paramsB := append(modelB.Image.Params(), modelB.Kernel.Params()...)
	paramsB = append(paramsB, nn.StateParams(modelB.Image.Backbone.State())...)
	if err := nn.LoadParamsFile(path, paramsB); err != nil {
		t.Fatalf("load: %v", err)
	}

	p3 := cfg.PhaseIII
	core.TrainZSC(modelA, d, split, p3)
	core.TrainZSC(modelB, d, split, p3)
	resA := core.EvalZSC(modelA, d, split)
	resB := core.EvalZSC(modelB, d, split)
	if resA.Top1 != resB.Top1 {
		t.Fatalf("checkpoint-resumed run diverged: %.4f vs %.4f", resA.Top1, resB.Top1)
	}
}

// TestEdgePathAgreesWithFloatPath verifies the packed XOR/popcount
// attribute dictionary is bit-identical to the float dictionary used in
// training, across the whole α range.
func TestEdgePathAgreesWithFloatPath(t *testing.T) {
	schema := dataset.NewCUBSchema()
	rng := rand.New(rand.NewSource(5))
	enc := attrenc.NewHDCEncoder(rng, schema, 512)
	for a := 0; a < schema.Alpha(); a++ {
		packed := enc.AttrVector(a)
		row := enc.Dictionary().Row(a)
		for i, x := range packed.ToBipolar() {
			if float32(x) != row[i] {
				t.Fatalf("attr %d diverges between packed and float at %d", a, i)
			}
		}
	}
}

// TestPrototypeClassifierTracksModelOnCleanData builds HDC class
// prototypes from class attributes and checks the pure-HDC item-memory
// classifier (no CNN at all) recovers class identity from noiseless
// attribute bundles — the degenerate case that separates the HDC readout
// from the vision problem.
func TestPrototypeClassifierTracksModelOnCleanData(t *testing.T) {
	d, _ := integData(t)
	rng := rand.New(rand.NewSource(6))
	enc := attrenc.NewHDCEncoder(rng, d.Schema, 2048)
	im := hdc.NewItemMemory(2048)
	for c := 0; c < d.Cfg.NumClasses; c++ {
		im.Store(d.ClassNames[c], enc.ClassPrototype(rng, d.ClassAttr.Row(c)))
	}
	hits := 0
	for c := 0; c < d.Cfg.NumClasses; c++ {
		probe := enc.ClassPrototype(rand.New(rand.NewSource(int64(c))), d.ClassAttr.Row(c))
		if _, idx, _ := im.Query(probe); idx == c {
			hits++
		}
	}
	if hits < d.Cfg.NumClasses-1 {
		t.Fatalf("pure-HDC readout recovered only %d/%d classes", hits, d.Cfg.NumClasses)
	}
}

// TestFullComparisonPipeline runs ours + ESZSL + one generative variant
// on the same split and checks the metrics plumbing produces a coherent
// Fig. 4-style point set.
func TestFullComparisonPipeline(t *testing.T) {
	d, split := integData(t)
	cfg := integPipeline()
	_, ours := cfg.Run(d, split, nil)

	img := core.NewImageEncoder(rand.New(rand.NewSource(42)), cfg.Backbone, 0)
	ez, err := baselines.RunESZSL(img, d, split, 1, 1)
	if err != nil {
		t.Fatalf("eszsl: %v", err)
	}
	gen := baselines.DefaultFeatGenConfig()
	gen.GenEpochs, gen.ClsEpochs, gen.PerClass = 8, 8, 6
	gen.HiddenGen, gen.HiddenCls = 48, 32
	fg := baselines.RunFeatGen(img, d, split, gen)

	pts := []metrics.Point{
		{Name: "ours", Params: ours.ParamCount, Accuracy: ours.Eval.Top1},
		{Name: "eszsl", Params: ez.ParamCount, Accuracy: ez.Top1},
		{Name: "gen", Params: fg.ParamCount, Accuracy: fg.Top1},
	}
	front := metrics.ParetoFront(pts)
	if len(front) == 0 || len(front) > 3 {
		t.Fatalf("degenerate front: %v", front)
	}
}

// TestQuickScaleEndToEnd is the scaled-down version of the committed
// experiment pipeline: every runner at micro settings in one process, as
// cmd/experiments would execute them.
func TestQuickScaleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full runner sweep is slow")
	}
	sc := experiments.Scale{
		Name: "quick", Classes: 8, PerClass: 4, ImgSize: 12, AttrNoise: 0.25,
		Seeds: []int64{1}, Width: 3, ProjDim: 64,
		PhaseIEpochs: 1, PhaseIIEpochs: 1, PhaseIIIEpochs: 1,
		PretrainClasses: 3, PretrainPerClass: 4,
	}
	if r := experiments.RunTable1(sc); len(r.Rows) != 28 {
		t.Fatal("table1 rows")
	}
	if r := experiments.RunTable2(sc); len(r.Rows) != 4 {
		t.Fatal("table2 rows")
	}
	if r := experiments.RunFig5(sc); len(r.Sweeps) != 5 {
		t.Fatal("fig5 panels")
	}
	if r := experiments.RunMemory(); len(r.Check()) != 0 {
		t.Fatal("memory check")
	}
}
