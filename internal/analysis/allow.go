package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// AllowLintName is the pseudo-analyzer that lints the suppression
// comments themselves: a //hdc:allow must name a known analyzer, must
// carry a reason, and must actually suppress something.
const AllowLintName = "allowlint"

// An //hdc:allow comment suppresses diagnostics of one analyzer on the
// line it sits on, or — when it is a whole-line comment — on the line
// directly below it:
//
//	merged = append(merged, ...) //hdc:allow hotpathalloc merged is pre-capped scratch
//
//	//hdc:allow determinism copy into a fresh map; order-independent
//	for k, v := range cur.plans {
//
// The reason (everything after the analyzer name) is mandatory: a
// suppression without a recorded justification is itself a finding.
type allowEntry struct {
	pos      token.Pos
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "//hdc:allow"

// collectAllows scans every file (including build-tag-ignored ones, so
// suppressions in portable twins are still linted) for allow comments.
// The map is keyed by file name, then by the line number the entry
// suppresses.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]map[int][]*allowEntry {
	out := map[string]map[int][]*allowEntry{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				e := &allowEntry{pos: c.Pos()}
				if len(fields) > 0 {
					e.analyzer = fields[0]
				}
				if len(fields) > 1 {
					e.reason = strings.Join(fields[1:], " ")
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if !codeBeforeOnLine(fset, f, c) {
					// Whole-line comment: it suppresses the next line.
					line++
				}
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*allowEntry{}
					out[pos.Filename] = byLine
				}
				byLine[line] = append(byLine[line], e)
			}
		}
	}
	return out
}

// codeBeforeOnLine reports whether any non-comment syntax ends on the
// comment's line before the comment starts — i.e. whether c is a
// trailing comment rather than a whole-line one.
func codeBeforeOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		end := fset.Position(n.End())
		if end.Line == pos.Line && end.Column <= pos.Column {
			found = true
			return false
		}
		return true
	})
	return found
}

// applyAllows filters diags through the package's //hdc:allow comments
// and appends allowlint findings for malformed, unknown, or unused
// suppressions.
func applyAllows(pkg *Package, diags []Diagnostic) []Diagnostic {
	all := append(append([]*ast.File{}, pkg.Syntax...), pkg.IgnoredFiles...)
	allows := collectAllows(pkg.Fset, all)
	known := ByName()

	var kept []Diagnostic
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, e := range allows[pos.Filename][pos.Line] {
			if e.analyzer == d.Analyzer && e.reason != "" {
				e.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	for _, byLine := range allows {
		for _, entries := range byLine {
			for _, e := range entries {
				switch {
				case e.analyzer == "":
					kept = append(kept, Diagnostic{Pos: e.pos, Analyzer: AllowLintName,
						Message: "malformed suppression: want //hdc:allow <analyzer> <reason>"})
				case !known[e.analyzer]:
					kept = append(kept, Diagnostic{Pos: e.pos, Analyzer: AllowLintName,
						Message: fmt.Sprintf("suppression names unknown analyzer %q", e.analyzer)})
				case e.reason == "":
					kept = append(kept, Diagnostic{Pos: e.pos, Analyzer: AllowLintName,
						Message: "suppression for " + e.analyzer + " must carry a reason"})
				case !e.used:
					kept = append(kept, Diagnostic{Pos: e.pos, Analyzer: AllowLintName,
						Message: "suppression for " + e.analyzer + " suppresses nothing; remove it"})
				}
			}
		}
	}
	return kept
}
