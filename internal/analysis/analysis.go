// Package analysis is a self-contained static-analysis suite that
// enforces the repository's hot-path contracts at compile time: the
// zero-allocation discipline of the serving path, the bitwise-
// determinism rules of the kernel packages, the Param version-bump
// invalidation contract behind every derived-weight cache, and the
// asm/portable pairing convention of the assembly kernels.
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) but is
// built entirely on the standard library (go/ast, go/types,
// go/importer), so the module keeps its zero-dependency property. The
// cmd/hdclint binary drives the suite either standalone (loading
// packages via `go list -export`) or as a `go vet -vettool`
// replacement speaking vet's unitchecker .cfg protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package through
// its Pass and reports findings via pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hdc:allow suppression comments.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's type-checked Go files under the current
	// build configuration.
	Files []*ast.File
	// IgnoredFiles are Go files of the same directory excluded by
	// build constraints (e.g. the portable !amd64 twins when analyzing
	// on amd64). They are parsed but NOT type-checked; analyzers that
	// reason across build configurations (asmpair) inspect them
	// syntactically.
	IgnoredFiles []*ast.File
	// OtherFiles are the package's non-Go files (assembly sources).
	OtherFiles []string
	Pkg        *types.Package
	Info       *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, attributed to the analyzer that produced
// it so //hdc:allow suppressions can be matched by name.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset         *token.FileSet
	Syntax       []*ast.File
	IgnoredFiles []*ast.File
	OtherFiles   []string
	Types        *types.Package
	Info         *types.Info
}

// All returns the full suite in a stable order. AllowLint is not in
// the list: it runs implicitly inside RunPackage, where suppression
// bookkeeping lives.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, Determinism, VersionKeyed, AsmPair}
}

// ByName resolves analyzer names (for suppression validation). The
// pseudo-analyzer "allowlint" is always known.
func ByName() map[string]bool {
	m := map[string]bool{AllowLintName: true}
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// RunPackage runs the given analyzers over one package, applies the
// //hdc:allow suppression pass, appends allowlint findings (malformed,
// unknown-analyzer, and unused suppressions), and returns the surviving
// diagnostics sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:     a,
			Fset:         pkg.Fset,
			Files:        pkg.Syntax,
			IgnoredFiles: pkg.IgnoredFiles,
			OtherFiles:   pkg.OtherFiles,
			Pkg:          pkg.Types,
			Info:         pkg.Info,
			report:       func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = applyAllows(pkg, diags)
	// The hot-path contracts bind library code only: tests fuzz with the
	// global rand source and write Param fixtures directly by design, and
	// the vet driver hands us test variants of every package.
	kept := diags[:0]
	for _, d := range diags {
		if !strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
			kept = append(kept, d)
		}
	}
	diags = kept
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
