package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// AsmPair enforces the assembly/portable pairing convention of the
// kernel packages: amd64 assembly is an accelerator, never the only
// implementation. Concretely:
//
//   - every `TEXT ·name` in an *_amd64.s file must have a body-less Go
//     declaration in a file visible under the amd64 && !noasm build
//     configuration;
//   - every body-less (assembly-backed) Go declaration must have a
//     matching TEXT symbol — no dangling prototypes;
//   - every *_amd64.s file must carry the `//go:build amd64 && !noasm`
//     escape hatch, so `-tags noasm` really falls back to pure Go;
//   - every package-level name referenced from build-tag-free code but
//     declared only under one configuration (amd64&&!noasm, or its
//     portable complement) must have a same-name declaration in the
//     other — with an identical signature when both are functions.
//     This is the static form of the cross-compile CI matrix: a new
//     kernel cannot silently lack its portable fallback.
//
// The analyzer is syntactic across build configurations: files
// excluded by the current tags (Pass.IgnoredFiles) are matched by
// parsed declarations, since they cannot be type-checked together with
// the live configuration.
var AsmPair = &Analyzer{
	Name: "asmpair",
	Doc:  "require a Go prototype and a same-signature portable fallback for every amd64 assembly kernel",
	Run:  runAsmPair,
}

var textSymRE = regexp.MustCompile(`(?m)^TEXT\s+·([A-Za-z0-9_]+)`)

// buildCfg is one evaluated build configuration.
type buildCfg struct {
	arch  string
	noasm bool
}

var knownArches = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true, "loong64": true,
	"mips": true, "mipsle": true, "mips64": true, "mips64le": true,
	"ppc64": true, "ppc64le": true, "riscv64": true, "s390x": true, "wasm": true,
}

// evalTag evaluates one build tag under cfg: architecture tags match
// cfg.arch, "noasm" matches cfg.noasm, toolchain/version tags are
// true, anything else (OS tags, custom tags) is treated as true so an
// `//go:build linux && amd64` file still classifies by architecture.
func (c buildCfg) evalTag(tag string) bool {
	if knownArches[tag] {
		return tag == c.arch
	}
	if tag == "noasm" {
		return c.noasm
	}
	return true
}

// fileConstraint extracts the //go:build expression (nil when absent).
func fileConstraint(f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if expr, err := constraint.Parse(c.Text); err == nil {
					return expr
				}
			}
		}
	}
	return nil
}

// impliedArch returns the architecture a filename's _GOARCH suffix
// implies, or "".
func impliedArch(name string) string {
	base := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
	base = strings.TrimSuffix(base, "_test")
	for arch := range knownArches {
		if strings.HasSuffix(base, "_"+arch) {
			return arch
		}
	}
	return ""
}

// visibleUnder reports whether a file with the given constraint and
// name compiles under cfg.
func visibleUnder(expr constraint.Expr, name string, cfg buildCfg) bool {
	if a := impliedArch(name); a != "" && a != cfg.arch {
		return false
	}
	if expr == nil {
		return true
	}
	return expr.Eval(cfg.evalTag)
}

var (
	asmCfg       = buildCfg{arch: "amd64", noasm: false}
	portCfgNoasm = buildCfg{arch: "amd64", noasm: true}
	portCfgArch  = buildCfg{arch: "arm64", noasm: false}
)

// fileClass is a file's visibility across the two configurations that
// matter: the accelerated build and the portable fallback build.
type fileClass struct {
	asmVis  bool // compiles under amd64 && !noasm
	portVis bool // compiles under noasm or a non-amd64 architecture
}

func classify(expr constraint.Expr, name string) fileClass {
	return fileClass{
		asmVis:  visibleUnder(expr, name, asmCfg),
		portVis: visibleUnder(expr, name, portCfgNoasm) || visibleUnder(expr, name, portCfgArch),
	}
}

// asmDecl is one package-level declaration gathered syntactically.
type asmDecl struct {
	class    fileClass
	isFunc   bool
	bodyless bool
	sig      string
	pos      token.Pos
}

func runAsmPair(pass *Pass) error {
	// 1. Gather TEXT symbols from amd64 assembly files.
	type asmSym struct {
		pos  token.Pos
		file string
	}
	asmSyms := map[string]asmSym{}
	for _, path := range pass.OtherFiles {
		if !strings.HasSuffix(path, ".s") {
			continue
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("asmpair: %w", err)
		}
		// The pairing contract covers amd64 assembly: the suffix
		// convention or a build constraint selecting amd64.
		var expr constraint.Expr
		for _, line := range strings.Split(string(src), "\n") {
			if l := strings.TrimSpace(line); constraint.IsGoBuild(l) {
				if e, err := constraint.Parse(l); err == nil {
					expr = e
				}
				break
			}
		}
		isAmd := impliedArch(path) == "amd64" ||
			(expr != nil && expr.Eval(asmCfg.evalTag) && !expr.Eval(portCfgArch.evalTag))
		if !isAmd {
			continue
		}
		tf := pass.Fset.AddFile(path, -1, len(src))
		tf.SetLinesForContent(src)
		hasNoasmGate := expr != nil && !expr.Eval(portCfgNoasm.evalTag)
		for _, m := range textSymRE.FindAllSubmatchIndex(src, -1) {
			name := string(src[m[2]:m[3]])
			asmSyms[name] = asmSym{pos: tf.Pos(m[0]), file: path}
			if !hasNoasmGate {
				pass.Reportf(tf.Pos(m[0]), "assembly file %s lacks the `//go:build amd64 && !noasm` gate: -tags noasm cannot select the portable fallback", filepath.Base(path))
				hasNoasmGate = true // one report per file is enough
			}
		}
	}

	// 2. Gather package-level declarations across every configuration.
	decls := map[string][]asmDecl{}
	classOfFile := map[string]fileClass{}
	gather := func(f *ast.File) {
		name := pass.Fset.Position(f.Pos()).Filename
		cls := classify(fileConstraint(f), name)
		classOfFile[name] = cls
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil {
					continue // methods pair through their receiver type
				}
				decls[d.Name.Name] = append(decls[d.Name.Name], asmDecl{
					class: cls, isFunc: true, bodyless: d.Body == nil,
					sig: funcSig(d.Type), pos: d.Name.Pos(),
				})
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						for _, id := range s.Names {
							decls[id.Name] = append(decls[id.Name], asmDecl{class: cls, pos: id.Pos()})
						}
					case *ast.TypeSpec:
						decls[s.Name.Name] = append(decls[s.Name.Name], asmDecl{class: cls, pos: s.Name.Pos()})
					}
				}
			}
		}
	}
	for _, f := range pass.Files {
		gather(f)
	}
	for _, f := range pass.IgnoredFiles {
		gather(f)
	}

	// 3. TEXT symbols need a body-less Go prototype visible in the
	// accelerated configuration; prototypes need their TEXT.
	for name, sym := range asmSyms {
		found := false
		for _, d := range decls[name] {
			if d.isFunc && d.bodyless && d.class.asmVis {
				found = true
			}
		}
		if !found {
			pass.Reportf(sym.pos, "TEXT ·%s has no body-less Go declaration in an amd64 && !noasm file", name)
		}
	}
	for name, ds := range decls {
		for _, d := range ds {
			if d.isFunc && d.bodyless && d.class.asmVis {
				if _, ok := asmSyms[name]; !ok {
					pass.Reportf(d.pos, "assembly-backed declaration %s has no TEXT ·%s in any *_amd64.s file", name, name)
				}
			}
		}
	}

	// 4. Names referenced from tag-free code must exist in both
	// configurations with matching function signatures: the portable
	// fallback cannot silently be missing.
	reported := map[string]bool{}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		cls := classOfFile[name]
		if !cls.asmVis || !cls.portVis {
			continue // only tag-free files compile in both configurations
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() != pass.Pkg || obj.Parent() != pass.Pkg.Scope() {
				return true
			}
			if _, isType := obj.(*types.TypeName); !isType {
				if _, isFn := obj.(*types.Func); !isFn {
					if _, isVar := obj.(*types.Var); !isVar {
						if _, isConst := obj.(*types.Const); !isConst {
							return true
						}
					}
				}
			}
			checkPairing(pass, decls, obj.Name(), id.Pos(), reported)
			return true
		})
	}
	return nil
}

// checkPairing verifies name is declared under both configurations and
// that paired function signatures agree.
func checkPairing(pass *Pass, decls map[string][]asmDecl, name string, use token.Pos, reported map[string]bool) {
	if reported[name] {
		return
	}
	ds := decls[name]
	if len(ds) == 0 {
		return
	}
	var asmD, portD *asmDecl
	for i := range ds {
		if ds[i].class.asmVis && asmD == nil {
			asmD = &ds[i]
		}
		if ds[i].class.portVis && portD == nil {
			portD = &ds[i]
		}
	}
	switch {
	case asmD == nil && portD != nil:
		reported[name] = true
		pass.Reportf(portD.pos, "%s is referenced from build-tag-free code but has no declaration under amd64 && !noasm", name)
	case portD == nil && asmD != nil:
		reported[name] = true
		pass.Reportf(asmD.pos, "%s is referenced from build-tag-free code but has no portable declaration (noasm / non-amd64): add the pure-Go fallback", name)
	case asmD != nil && portD != nil && asmD != portD && asmD.isFunc && portD.isFunc && asmD.sig != portD.sig:
		reported[name] = true
		pass.Reportf(portD.pos, "portable %s has signature %s but the amd64 declaration has %s: fallback must be call-compatible", name, portD.sig, asmD.sig)
	}
}

// funcSig renders a normalized signature string from syntax (the
// portable twin is not type-checked, so the comparison is textual).
func funcSig(ft *ast.FuncType) string {
	var b strings.Builder
	b.WriteString("func(")
	writeFields(&b, ft.Params)
	b.WriteString(")")
	if ft.Results != nil && len(ft.Results.List) > 0 {
		b.WriteString(" (")
		writeFields(&b, ft.Results)
		b.WriteString(")")
	}
	return b.String()
}

func writeFields(b *strings.Builder, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(types.ExprString(f.Type))
		}
	}
}
