package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// Determinism enforces the bitwise-determinism contract of the kernel
// packages: the same inputs must produce byte-identical outputs on any
// GOMAXPROCS, worker budget, and run. In scope packages it flags:
//
//   - range over a map (iteration order is randomized per run)
//   - calls to math/rand package-level functions (the global source;
//     the repo convention is an explicit *rand.Rand everywhere)
//   - time.Now / time.Since / time.Until outside stats code (wall
//     clock reads make results run-dependent; files whose name
//     contains "stats" are exempt)
//   - go statements whose closure combines results order-dependently:
//     an append to, or plain assignment of, a variable captured from
//     the enclosing function. The blessed pattern is an
//     index-addressed write (out[i] = ...) so each goroutine owns a
//     disjoint slot regardless of scheduling.
//
// A package is in scope when its import path ends in one of the
// hot-path kernel packages (tensor, nn, infer, quant) or any of its
// files carries a //hdc:deterministic comment.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag nondeterministic constructs (map ranges, global rand, wall clock, racy goroutine merges) in kernel packages",
	Run:  runDeterminism,
}

// DeterministicPkgPattern selects the packages the determinism
// analyzer covers by import path.
var DeterministicPkgPattern = regexp.MustCompile(`(^|/)(tensor|nn|infer|quant)$`)

// deterministicMarker opts any package into the determinism analyzer,
// wherever it lives.
const deterministicMarker = "//hdc:deterministic"

func runDeterminism(pass *Pass) error {
	if !determinismInScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		statsFile := strings.Contains(filepath.Base(pass.Fset.Position(f.Pos()).Filename), "stats")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over map: iteration order is randomized; iterate a sorted key slice (or //hdc:allow with the reason the fold is order-independent)")
					}
				}
			case *ast.CallExpr:
				checkDeterminismCall(pass, n, statsFile)
			case *ast.GoStmt:
				checkGoMerge(pass, n)
			}
			return true
		})
	}
	return nil
}

func determinismInScope(pass *Pass) bool {
	if DeterministicPkgPattern.MatchString(pass.Pkg.Path()) {
		return true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == deterministicMarker {
					return true
				}
			}
		}
	}
	return false
}

func checkDeterminismCall(pass *Pass, n *ast.CallExpr, statsFile bool) {
	sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	// Only package-level calls: methods on an explicit *rand.Rand are
	// the blessed seeded path.
	if id, ok := sel.X.(*ast.Ident); !ok {
		return
	} else if _, isPkg := pass.Info.Uses[id].(*types.PkgName); !isPkg {
		return
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		pass.Reportf(n.Pos(), "math/rand global source: results differ per run; thread an explicit *rand.Rand")
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			if !statsFile {
				pass.Reportf(n.Pos(), "wall-clock read (time.%s) in a deterministic kernel package; keep timing in stats code", obj.Name())
			}
		}
	}
}

// checkGoMerge flags order-dependent result combination inside a go
// statement's function literal: appends to, or whole-variable
// assignments of, variables captured from the enclosing scope.
func checkGoMerge(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	capturedVar := func(e ast.Expr) *types.Var {
		root := e
		for {
			switch r := root.(type) {
			case *ast.SelectorExpr:
				root = r.X
				continue
			}
			break
		}
		id, ok := root.(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return nil // declared inside the goroutine
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return nil // package-level: a different contract (and a race)
		}
		return v
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr, *ast.StarExpr:
				// Index-addressed (out[i] = ...) or through an explicit
				// pointer: each goroutine owns its slot; deterministic.
			case *ast.Ident, *ast.SelectorExpr:
				v := capturedVar(l.(ast.Expr))
				if v == nil {
					continue
				}
				// append to a captured slice is the classic racy,
				// order-dependent merge; so is any plain reassignment.
				if i < len(as.Rhs) {
					if call, ok := as.Rhs[i].(*ast.CallExpr); ok && calleeName(pass.Info, call) == "append" {
						pass.Reportf(as.Pos(), "goroutine appends to captured %q: combination order depends on scheduling; write index-addressed slots instead", v.Name())
						continue
					}
				}
				pass.Reportf(as.Pos(), "goroutine assigns captured %q: last-writer-wins depends on scheduling; write index-addressed slots instead", v.Name())
			}
		}
		return true
	})
}
