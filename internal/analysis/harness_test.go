package analysis

// The test harness mirrors x/tools' analysistest on the standard
// library: each testdata/<name> directory is one package; trailing
// `// want "regex"` comments state the diagnostics the suite must
// produce on that line (in .go and .s files alike), and every
// diagnostic must be wanted. Files excluded by the amd64 && !noasm
// reference configuration are parsed but not type-checked, exactly as
// the driver treats them.

import (
	"bufio"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// stdlibExports resolves export-data files for stdlib imports used by
// testdata packages, once per process.
var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

func stdlibExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		pkgs, err := listExports(".", "fmt", "math/rand", "time", "sync", "sort", "strconv")
		if err != nil {
			exportsErr = err
			return
		}
		exportsMap = pkgs
	})
	if exportsErr != nil {
		t.Fatalf("resolving stdlib export data: %v", exportsErr)
	}
	return exportsMap
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want (.*)$")
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants reads trailing want comments from one file.
func parseWants(t *testing.T, path string, wants map[string]map[int][]*expectation) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
			pat := arg[1]
			if pat == "" {
				pat = arg[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, pat, err)
			}
			if wants[path] == nil {
				wants[path] = map[int][]*expectation{}
			}
			wants[path][line] = append(wants[path][line], &expectation{re: re})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// runAnalysisTest loads testdata/<name> as one package, runs the given
// analyzers (plus the implicit allowlint pass), and matches
// diagnostics against want comments.
func runAnalysisTest(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles, ignored, other, all []string
	cfset := token.NewFileSet()
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		switch filepath.Ext(e.Name()) {
		case ".go":
			all = append(all, path)
			f, err := parser.ParseFile(cfset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			if visibleUnder(fileConstraint(f), path, asmCfg) {
				goFiles = append(goFiles, path)
			} else {
				ignored = append(ignored, path)
			}
		case ".s":
			all = append(all, path)
			other = append(other, path)
		}
	}

	pkg, err := CheckFiles(name, goFiles, ignored, other, stdlibExports(t))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	wants := map[string]map[int][]*expectation{}
	for _, path := range all {
		parseWants(t, path, wants)
	}
	// WANTS.txt holds expectations that cannot ride on the flagged line
	// itself — //hdc:allow findings land on the comment, and a // want
	// trailer would become part of the suppression reason. Lines are
	// `<file>:<line>: <regex>`.
	if side, err := os.ReadFile(filepath.Join(dir, "WANTS.txt")); err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(side)), "\n") {
			parts := strings.SplitN(line, ":", 3)
			if len(parts) != 3 {
				t.Fatalf("WANTS.txt: malformed line %q", line)
			}
			ln, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				t.Fatalf("WANTS.txt: bad line number in %q", line)
			}
			re, err := regexp.Compile(strings.TrimSpace(parts[2]))
			if err != nil {
				t.Fatalf("WANTS.txt: bad regex in %q: %v", line, err)
			}
			path := filepath.Join(dir, parts[0])
			if wants[path] == nil {
				wants[path] = map[int][]*expectation{}
			}
			wants[path][ln] = append(wants[path][ln], &expectation{re: re})
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, exp := range wants[pos.Filename][pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for path, byLine := range wants {
		for line, exps := range byLine {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s:%d: want %q: no matching diagnostic", path, line, exp.re)
				}
			}
		}
	}
}

func TestHotPathAlloc(t *testing.T) { runAnalysisTest(t, "hotpath", HotPathAlloc) }
func TestDeterminism(t *testing.T)  { runAnalysisTest(t, "determ", Determinism) }
func TestVersionKeyed(t *testing.T) { runAnalysisTest(t, "version", VersionKeyed) }
func TestEpochStore(t *testing.T)   { runAnalysisTest(t, "epoch", VersionKeyed) }
func TestAsmPair(t *testing.T)      { runAnalysisTest(t, "asmpair", AsmPair) }
func TestAllowLint(t *testing.T)    { runAnalysisTest(t, "allow", HotPathAlloc, Determinism) }
func TestSuiteRegistry(t *testing.T) {
	if len(All()) < 4 {
		t.Fatalf("suite lost analyzers: %d", len(All()))
	}
	names := ByName()
	for _, want := range []string{"hotpathalloc", "determinism", "versionkeyed", "asmpair", AllowLintName} {
		if !names[want] {
			t.Errorf("analyzer %q missing from registry", want)
		}
	}
}
