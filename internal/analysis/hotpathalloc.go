package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc enforces the zero-allocation contract of the serving
// path. Functions annotated //hdc:hotpath (in their doc comment) and
// every function in the same package statically reachable from them
// are checked for allocation-inducing constructs:
//
//   - make / new
//   - slice and map composite literals, and &T{...} literals
//   - append (the backing array may grow; pre-sized scratch appends
//     need a reasoned //hdc:allow)
//   - closures that capture variables (the closure context allocates)
//   - implicit interface conversions that box a non-pointer value
//   - calls into package fmt
//   - string([]byte) / string([]rune) / string(rune|int) conversions
//
// Constructs inside the arguments of a panic(...) call are exempt: a
// panicking hot path has already left the steady state. Functions
// annotated //hdc:coldpath stop the reachability propagation — they
// are the deliberately-slow branches (plan rebuilds, cache growth)
// that hot code may call on its cold edges; the annotation is a
// reviewed statement that the warm path never reaches them.
//
// The runtime twin of this analyzer is the AllocsPerRun guard suite
// (TestCompiledInferZeroAlloc and friends); the analyzer catches the
// whole construct class on every shape, not just the exercised ones.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation-inducing constructs in //hdc:hotpath functions and their intra-package callees",
	Run:  runHotPathAlloc,
}

const (
	hotpathMarker  = "//hdc:hotpath"
	coldpathMarker = "//hdc:coldpath"
)

// hasMarker reports whether a doc comment contains the given marker as
// a line prefix (trailing prose after the marker is permitted).
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

func runHotPathAlloc(pass *Pass) error {
	// Map every package-level function/method object to its declaration.
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	cold := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fd
			if hasMarker(fd.Doc, hotpathMarker) {
				roots = append(roots, obj)
			}
			if hasMarker(fd.Doc, coldpathMarker) {
				cold[obj] = true
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Static intra-package call graph over direct calls.
	callees := map[*types.Func][]*types.Func{}
	for obj, fd := range decls {
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			callee, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, hasDecl := decls[callee]; hasDecl && !seen[callee] {
				seen[callee] = true
				callees[obj] = append(callees[obj], callee)
			}
			return true
		})
	}

	// Propagate hotness from the roots, stopping at //hdc:coldpath.
	// root[f] records the nearest annotated root for the diagnostic.
	hotVia := map[*types.Func]*types.Func{}
	var visit func(f, root *types.Func)
	visit = func(f, root *types.Func) {
		if cold[f] {
			return
		}
		if _, done := hotVia[f]; done {
			return
		}
		hotVia[f] = root
		for _, c := range callees[f] {
			visit(c, root)
		}
	}
	for _, r := range roots {
		visit(r, r)
	}

	for obj, root := range hotVia {
		fd := decls[obj]
		via := ""
		if root != obj {
			via = " (hot via " + root.Name() + ")"
		}
		checkAllocs(pass, fd, obj.Name()+via)
	}
	return nil
}

// checkAllocs walks one hot function body reporting allocation-inducing
// constructs, skipping subtrees that are arguments to panic calls.
func checkAllocs(pass *Pass, fd *ast.FuncDecl, where string) {
	info := pass.Info
	// funcScopes tracks the FuncLit nesting so capture analysis knows
	// which scope a variable belongs to.
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // allocation to build a panic message is cold by definition
			}
			switch calleeName(info, n) {
			case "make":
				pass.Reportf(n.Pos(), "hot path %s: make allocates; serve from a Scratch/Arena or pre-size outside the hot loop", where)
			case "new":
				pass.Reportf(n.Pos(), "hot path %s: new allocates; reuse caller-owned storage", where)
			case "append":
				pass.Reportf(n.Pos(), "hot path %s: append may grow its backing array; pre-size from scratch (suppress with a reason if capacity is provably reserved)", where)
			}
			if pkg := callPkgPath(info, n); pkg == "fmt" {
				pass.Reportf(n.Pos(), "hot path %s: fmt call allocates (boxing + formatting); move diagnostics off the hot path", where)
			}
			reportStringConv(pass, info, n, where)
			reportCallBoxing(pass, info, n, where)
		case *ast.CompositeLit:
			reportCompositeLit(pass, info, n, where)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path %s: &T{...} escapes to the heap", where)
				}
			}
		case *ast.FuncLit:
			if caps := captured(info, n); len(caps) > 0 {
				pass.Reportf(n.Pos(), "hot path %s: closure captures %s; the closure context allocates per call", where, strings.Join(caps, ", "))
			}
		case *ast.AssignStmt:
			reportAssignBoxing(pass, info, n, where)
		}
		return true
	}
	ast.Inspect(fd.Body, inspect)
}

// isPanicCall reports whether n is a call to the builtin panic.
func isPanicCall(info *types.Info, n *ast.CallExpr) bool {
	id, ok := ast.Unparen(n.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// calleeName returns the builtin name called by n, or "".
func calleeName(info *types.Info, n *ast.CallExpr) string {
	id, ok := ast.Unparen(n.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// callPkgPath returns the import path of the package whose function n
// calls, or "".
func callPkgPath(info *types.Info, n *ast.CallExpr) string {
	sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return ""
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return ""
	}
	// Only package-qualified calls (fmt.Sprintf), not method calls.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return obj.Pkg().Path()
		}
	}
	return ""
}

// reportStringConv flags string(x) conversions that allocate: from
// []byte, []rune, rune, or integer types.
func reportStringConv(pass *Pass, info *types.Info, n *ast.CallExpr, where string) {
	tv, ok := info.Types[n.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return
	}
	if len(n.Args) != 1 {
		return
	}
	at := info.TypeOf(n.Args[0])
	if at == nil {
		return
	}
	switch u := at.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(n.Pos(), "hot path %s: string(%s) conversion copies and allocates", where, at)
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			pass.Reportf(n.Pos(), "hot path %s: string(%s) conversion allocates; use strconv.AppendInt into scratch", where, at)
		}
	}
}

// boxes reports whether assigning a value of concrete type from to an
// interface type allocates: every non-pointer-shaped concrete value is
// heap-boxed when it becomes an interface.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false // interface→interface copies the existing box
	}
	switch u := from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	default:
		return true // structs, arrays, slices, strings box
	}
}

// reportCallBoxing flags arguments that are implicitly converted to
// interface parameters, boxing the value.
func reportCallBoxing(pass *Pass, info *types.Info, n *ast.CallExpr, where string) {
	sigT := info.TypeOf(n.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if n.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants may be boxed at compile time into rodata
		}
		if boxes(at, pt) {
			pass.Reportf(arg.Pos(), "hot path %s: argument %s is boxed into interface %s; this allocates", where, at, pt)
		}
	}
}

// reportAssignBoxing flags assignments whose RHS is boxed into an
// interface-typed LHS.
func reportAssignBoxing(pass *Pass, info *types.Info, n *ast.AssignStmt, where string) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lt, rt := info.TypeOf(n.Lhs[i]), info.TypeOf(n.Rhs[i])
		if tv, ok := info.Types[n.Rhs[i]]; ok && tv.Value != nil {
			continue
		}
		if boxes(rt, lt) {
			pass.Reportf(n.Rhs[i].Pos(), "hot path %s: value of type %s is boxed into interface %s; this allocates", where, rt, lt)
		}
	}
}

// reportCompositeLit flags literals whose storage escapes to the heap
// in the common case: slice and map literals always allocate backing
// storage; &T{...} allocates unless escape analysis can stack it.
// Plain value literals (T{...}, [N]T{...}) are stack-allocated and not
// flagged.
func reportCompositeLit(pass *Pass, info *types.Info, n *ast.CompositeLit, where string) {
	t := info.TypeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(n.Pos(), "hot path %s: slice literal allocates its backing array", where)
	case *types.Map:
		pass.Reportf(n.Pos(), "hot path %s: map literal allocates", where)
	}
}

// captured returns the names of variables a FuncLit captures from its
// enclosing function, sorted by first use.
func captured(info *types.Info, lit *ast.FuncLit) []string {
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Package-level variables are not captures.
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true
		}
		// A variable declared inside the literal is not a capture.
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return true
		}
		seen[obj] = true
		names = append(names, obj.Name())
		return true
	})
	return names
}
