package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader resolves packages with `go list -export -deps -json` and
// type-checks target packages against the gc export data the build
// cache already holds — the same source of truth the compiler uses,
// with no dependency beyond the standard library and the go tool.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir               string
	ImportPath        string
	Name              string
	Export            string
	GoFiles           []string
	IgnoredGoFiles    []string
	IgnoredOtherFiles []string
	SFiles            []string
	DepOnly           bool
	Standard          bool
	Error             *struct{ Err string }
}

// Load lists patterns in dir and returns the fully parsed,
// type-checked target packages (dependencies are consumed as export
// data only).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var targets []*listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typeCheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// listExports resolves patterns (and all their dependencies) to gc
// export-data files via `go list -export`, for callers that only need
// importable type information (the test harness).
func listExports(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// typeCheck parses and checks one listed package.
func typeCheck(p *listPkg, exports map[string]string) (*Package, error) {
	var goFiles, ignored, other []string
	for _, f := range p.GoFiles {
		goFiles = append(goFiles, filepath.Join(p.Dir, f))
	}
	for _, f := range p.IgnoredGoFiles {
		ignored = append(ignored, filepath.Join(p.Dir, f))
	}
	for _, f := range p.SFiles {
		other = append(other, filepath.Join(p.Dir, f))
	}
	for _, f := range p.IgnoredOtherFiles {
		if strings.HasSuffix(f, ".s") {
			other = append(other, filepath.Join(p.Dir, f))
		}
	}
	return CheckFiles(p.ImportPath, goFiles, ignored, other, exports)
}

// CheckFiles is CheckFilesLookup resolving export data from a map of
// import path → export file (the `go list -export` shape).
func CheckFiles(importPath string, goFiles, ignoredFiles, otherFiles []string, exports map[string]string) (*Package, error) {
	return CheckFilesLookup(importPath, goFiles, ignoredFiles, otherFiles, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// CheckFilesLookup parses goFiles and type-checks them as one package,
// importing dependencies through lookup (export-data readers). ignored
// files are parsed without type checking; other files (assembly) pass
// through to the analyzers.
func CheckFilesLookup(importPath string, goFiles, ignoredFiles, otherFiles []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	parse := func(paths []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, path := range paths {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	syntax, err := parse(goFiles)
	if err != nil {
		return nil, err
	}
	// Ignored files may be for other build configurations entirely;
	// parse errors there must not block analysis of the live config.
	var ignoredSyntax []*ast.File
	for _, path := range ignoredFiles {
		if f, err := parser.ParseFile(fset, path, nil, parser.ParseComments); err == nil {
			ignoredSyntax = append(ignoredSyntax, f)
		}
	}

	imp := importer.ForCompiler(fset, "gc", lookup)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		Fset:         fset,
		Syntax:       syntax,
		IgnoredFiles: ignoredSyntax,
		OtherFiles:   otherFiles,
		Types:        tpkg,
		Info:         info,
	}, nil
}
