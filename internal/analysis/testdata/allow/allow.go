// Package allowpkg exercises the //hdc:allow suppression contract and
// the allowlint pseudo-analyzer. Expectations live in WANTS.txt (a
// trailing // want would be parsed into the suppression reason).
//
//hdc:deterministic
package allowpkg

import "time"

func suppressedOK() time.Time {
	return time.Now() //hdc:allow determinism deliberate wall-clock in test fixture
}

func reasonless() time.Time {
	return time.Now() //hdc:allow determinism
}

func unknownAnalyzer() time.Time {
	return time.Now() //hdc:allow bogus some reason text
}

func malformed() time.Time {
	return time.Now() //hdc:allow
}

func unused() int {
	x := 1 //hdc:allow determinism nothing nondeterministic here
	return x
}

func ownLineSuppression(m map[string]int) int {
	s := 0
	//hdc:allow determinism order-independent sum
	for _, v := range m {
		s += v
	}
	return s
}
