// Package asmpair exercises the asm/portable pairing analyzer. This
// file is build-tag-free: everything it references must exist under
// both the accelerated (amd64 && !noasm) and portable configurations.
package asmpair

func Driver(x []float32, n int) {
	kernelOK(x, n)
	kernelNoPortable(x, n)
	sigKernel(x, n)
	gated(x, n)
}
