//go:build amd64 && !noasm

package asmpair

// kernelNoPortable is referenced from tag-free code but has no twin
// visible under noasm or non-amd64 builds.
func kernelNoPortable(x []float32, n int) { // want `kernelNoPortable is referenced from build-tag-free code but has no portable declaration`
	for i := 0; i < n; i++ {
		x[i] += 1
	}
}

// sigKernel's portable twin exists but with a different signature.
func sigKernel(x []float32, n int) {
	for i := 0; i < n; i++ {
		x[i] -= 1
	}
}
