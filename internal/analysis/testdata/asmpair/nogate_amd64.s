#include "textflag.h"

TEXT ·gated(SB), NOSPLIT, $0-32 // want `lacks the .//go:build amd64 && !noasm. gate`
	RET
