//go:build amd64 && !noasm

package asmpair

// kernelOK is the well-formed pattern: body-less declaration, TEXT in
// ok_amd64.s, portable twin in ok_noasm.go.
//
//go:noescape
func kernelOK(x []float32, n int)

// gated has its TEXT in nogate_amd64.s, which is missing the noasm
// build gate.
//
//go:noescape
func gated(x []float32, n int)

// danglingDecl claims an assembly implementation that no .s file
// provides.
//
//go:noescape
func danglingDecl(x []float32) // want `assembly-backed declaration danglingDecl has no TEXT`
