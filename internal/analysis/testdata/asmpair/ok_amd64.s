//go:build amd64 && !noasm

#include "textflag.h"

TEXT ·kernelOK(SB), NOSPLIT, $0-32
	RET

TEXT ·orphan(SB), NOSPLIT, $0-0 // want `TEXT ·orphan has no body-less Go declaration`
	RET
