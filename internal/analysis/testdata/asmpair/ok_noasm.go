//go:build !amd64 || noasm

package asmpair

// kernelOK is the portable fallback twin of the assembly kernel.
func kernelOK(x []float32, n int) {
	for i := 0; i < n; i++ {
		x[i] *= 2
	}
}

// gated pairs the assembly version in nogate_amd64.s.
func gated(x []float32, n int) {
	for i := 0; i < n; i++ {
		x[i]++
	}
}
