//go:build !amd64 || noasm

package asmpair

// sigKernel drops the n parameter: not call-compatible with the
// accelerated declaration.
func sigKernel(x []float32) { // want `portable sigKernel has signature func\(\[\]float32\) but the amd64 declaration has func\(\[\]float32, int\)`
	for i := range x {
		x[i] -= 1
	}
}
