// Package determ exercises the determinism analyzer. The marker below
// opts the package in; in the real tree the kernel packages (tensor,
// nn, infer, quant) are selected by import path.
//
//hdc:deterministic
package determ

import (
	"math/rand"
	"sync"
	"time"
)

func mapOrder(m map[string]int) int {
	s := 0
	for _, v := range m { // want `range over map`
		s += v
	}
	return s
}

func mapOrderAllowed(dst, src map[string]int) {
	//hdc:allow determinism copy into a fresh map; order-independent
	for k, v := range src {
		dst[k] = v
	}
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand global source`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(10) // explicit source: no finding
}

func clock() time.Duration {
	t0 := time.Now()      // want `wall-clock read`
	return time.Since(t0) // want `wall-clock read`
}

func racyMerge(in [][]float32) []float32 {
	var out []float32
	var total float32
	var wg sync.WaitGroup
	for i := range in {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out = append(out, in[i]...) // want `appends to captured "out"`
			total = in[i][0]            // want `assigns captured "total"`
		}(i)
	}
	wg.Wait()
	_ = total
	return out
}

func indexedMerge(in, out []float32) {
	var wg sync.WaitGroup
	for i := range in {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = in[i] * 2 // index-addressed slot: no finding
		}(i)
	}
	wg.Wait()
}
