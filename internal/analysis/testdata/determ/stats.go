package determ

import "time"

// Files whose name contains "stats" may read the wall clock: latency
// accounting is not part of the deterministic result surface.

func recordLatency() time.Duration {
	t0 := time.Now() // no finding: stats file
	return time.Since(t0)
}
