// Package epoch exercises the versionkeyed analyzer's epoch-store
// rule against a structural stand-in for classmem.Versioned: any named
// type with a niladic PublishEpoch method and a `slab` field carries
// the publish-after-write contract.
package epoch

type slabBacking struct {
	labels []string
	phi    []float32
	rows   int
}

type store struct {
	slab  slabBacking
	epoch uint64
}

func (s *store) PublishEpoch() { s.epoch++ }

func goodAppend(s *store, label string, row []float32) {
	s.slab.labels = append(s.slab.labels, label)
	s.slab.phi = append(s.slab.phi, row...)
	s.slab.rows++
	s.PublishEpoch() // paired in the same function: no finding
}

func goodSeed(s *store, labels []string) {
	s.slab.labels = labels
	s.slab.rows = len(labels)
	s.PublishEpoch()
}

func badAppend(s *store, label string) {
	s.slab.labels = append(s.slab.labels, label) // want `write to epoch-store slab without PublishEpoch`
}

func badElem(s *store, x float32) {
	s.slab.phi[0] = x // want `write to epoch-store slab without PublishEpoch`
}

func badRows(s *store) {
	s.slab.rows++ // want `write to epoch-store slab without PublishEpoch`
}

func badCopy(s *store, row []float32) {
	copy(s.slab.phi, row) // want `write to epoch-store slab without PublishEpoch`
}

func badSlice(s *store, row []float32) {
	copy(s.slab.phi[4:8], row) // want `write to epoch-store slab without PublishEpoch`
}

func badReplace(s *store, b slabBacking) {
	s.slab = b // want `write to epoch-store slab without PublishEpoch`
}

func read(s *store) int {
	return s.slab.rows // reads are free
}

// publishes with a different epoch-gauge shape: still the publish call
// that discharges the contract.
type wideStore struct {
	slab  slabBacking
	flips []uint64
}

func (w *wideStore) PublishEpoch() { w.flips = append(w.flips, 1) }

func goodWide(w *wideStore, label string) {
	w.slab.labels = append(w.slab.labels, label)
	w.PublishEpoch()
}

// noPublish has a slab field but no PublishEpoch in its method set —
// not an epoch store, writes are free.
type noPublish struct {
	slab slabBacking
}

func notEpochStore(n *noPublish, x float32) {
	n.slab.phi[0] = x // no PublishEpoch in the method set: no finding
}

// argPublish's PublishEpoch takes an argument — not the niladic
// contract method, so the type is not an epoch store.
type argPublish struct {
	slab slabBacking
}

func (a *argPublish) PublishEpoch(n int) {}

func notNiladic(a *argPublish, x float32) {
	a.slab.phi[0] = x // PublishEpoch is not niladic: no finding
}

func allowed(s *store, x float32) {
	s.slab.phi[0] = x //hdc:allow versionkeyed rebuilding a scratch store never served
}
