package hotpath

import "fmt"

// HotRoot is a hot function: every allocation-inducing construct in it
// and in its intra-package callees is a finding.
//
//hdc:hotpath
func HotRoot(dst []float32, n int) []float32 {
	buf := make([]float32, n) // want `make allocates`
	_ = buf
	dst = append(dst, 1) // want `append may grow`
	callee(n)
	cold(n)
	notCalled(n)
	s := fmt.Sprintf("%d", n) // want `fmt call allocates` `boxed into interface`
	_ = s
	xs := []int{1, 2, 3} // want `slice literal allocates`
	_ = xs
	p := &point{1, 2} // want `escapes to the heap`
	_ = p
	v := point{3, 4} // stack value literal: no finding
	_ = v
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic args are cold: no finding
	}
	var sink any
	sink = v // want `boxed into interface`
	_ = sink
	f := func() int { return n } // want `closure captures n`
	g := func() int { return 42 } // non-capturing: no finding
	return dst[:f()+g()]
}

type point struct{ x, y float32 }

// callee is not annotated, but HotRoot reaches it, so it inherits the
// contract.
func callee(n int) {
	_ = new(int) // want `new allocates`
	_ = name(n)
}

// name converts an int to a string: allocation.
func name(n int) string {
	return string(rune(n)) // want `string\(rune\) conversion allocates`
}

// cold is the deliberately-slow branch: propagation stops here.
//
//hdc:coldpath
func cold(n int) {
	_ = make([]int, n) // no finding: coldpath
}

// notCalled is hot only because HotRoot calls it; notHot below is not
// reachable from any hot root.
func notCalled(n int) {
	sink = fmt.Sprint("x") // want `fmt call allocates`
}

var sink string

func notHot(n int) {
	_ = make([]int, n) // no finding: unreachable from a hot root
}

// Suppressed demonstrates the reasoned escape hatch.
//
//hdc:hotpath
func Suppressed(dst []float32) []float32 {
	dst = append(dst, 1) //hdc:allow hotpathalloc caller reserves capacity via ResultBuf
	return dst
}
