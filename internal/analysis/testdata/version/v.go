// Package version exercises the versionkeyed analyzer against a
// structural stand-in for nn.Param: any named type with a BumpVersion
// method carries the version-keyed cache contract.
package version

type Tensor struct{ Data []float32 }

type Param struct {
	Value   *Tensor
	Grad    *Tensor
	version uint64
}

func (p *Param) BumpVersion() { p.version++ }

type layer struct {
	W *Param
	B *Param
}

func good(p *Param, v []float32) {
	copy(p.Value.Data, v)
	p.BumpVersion() // paired in the same function: no finding
}

func goodLoop(p *Param, lr float32) {
	for i := range p.Value.Data {
		p.Value.Data[i] -= lr
	}
	p.BumpVersion()
}

func badElem(p *Param, x float32) {
	p.Value.Data[0] = x // want `write to Param value without BumpVersion`
}

func badCopy(p *Param, v []float32) {
	copy(p.Value.Data, v) // want `write to Param value without BumpVersion`
}

func badSlice(p *Param, v []float32) {
	copy(p.Value.Data[1:3], v) // want `write to Param value without BumpVersion`
}

func badReplace(p *Param, t *Tensor) {
	p.Value = t // want `write to Param value without BumpVersion`
}

func badNested(l *layer, x float32) {
	l.W.Value.Data[2] += x // want `write to Param value without BumpVersion`
}

func gradWrite(p *Param, g float32) {
	p.Grad.Data[0] += g // gradients carry no derived caches: no finding
}

func read(p *Param) float32 {
	return p.Value.Data[0] // reads are free
}

type other struct{ Value *Tensor }

func notParam(o *other, x float32) {
	o.Value.Data[0] = x // no BumpVersion in the method set: no finding
}

func allowed(p *Param, x float32) {
	p.Value.Data[0] = x //hdc:allow versionkeyed calibration scratch; never served
}
