package analysis

import (
	"go/ast"
	"go/types"
)

// VersionKeyed enforces the derived-cache invalidation contract on
// trainable parameters: every write to a Param's value tensor must be
// paired with a BumpVersion call, or layers holding version-keyed
// derived forms (Linear's packed weight panel, the compiled plans'
// folded weights, the int8 packed panels) keep serving the stale
// pre-write bytes.
//
// A "Param" is any named type whose method set includes BumpVersion()
// — structurally matched, so the analyzer needs no dependency on the
// nn package. Flagged writes, in any function that does not also call
// BumpVersion:
//
//	p.Value.Data[i] = x        // element store
//	p.Value.Data[a:b] ...      // slice store
//	copy(p.Value.Data, src)    // bulk overwrite
//	p.Value = t                // wholesale tensor replacement
//
// The check is function-granular by design: a loop of element stores
// followed by one BumpVersion (the optimizer pattern) is correct and
// accepted; a helper that writes but never bumps is the exact bug
// class the PR 4/5 cache-invalidation tests catch dynamically, found
// here on every call path at compile time. Writes through an alias
// (d := p.Value.Data; d[0] = x) are beyond the analyzer's reach — keep
// parameter stores syntactically rooted at the Param.
var VersionKeyed = &Analyzer{
	Name: "versionkeyed",
	Doc:  "flag Param value writes in functions that never call BumpVersion (stale derived caches)",
	Run:  runVersionKeyed,
}

func runVersionKeyed(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var writes []ast.Node
			bumps := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if isParamValueWrite(pass.Info, lhs) {
							writes = append(writes, lhs)
						}
					}
				case *ast.IncDecStmt:
					if isParamValueWrite(pass.Info, n.X) {
						writes = append(writes, n.X)
					}
				case *ast.CallExpr:
					if calleeName(pass.Info, n) == "copy" && len(n.Args) == 2 {
						if isParamValueWrite(pass.Info, n.Args[0]) {
							writes = append(writes, n.Args[0])
						}
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "BumpVersion" {
						if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && obj.Name() == "BumpVersion" {
							bumps = true
						}
					}
				}
				return true
			})
			if bumps {
				continue
			}
			for _, w := range writes {
				pass.Reportf(w.Pos(), "write to Param value without BumpVersion in %s: version-keyed caches (packed panels, compiled plans) will serve stale weights", fd.Name.Name)
			}
		}
	}
	return nil
}

// isParamValueWrite reports whether expr is a write target rooted at a
// Param's value tensor: `<param>.Value`, `<param>.Value.Data[...]`, or
// a slice thereof, where <param>'s type has a BumpVersion method.
func isParamValueWrite(info *types.Info, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	// Strip any number of index/slice layers: Data[i], Data[a:b].
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(t.X)
			continue
		case *ast.SliceExpr:
			e = ast.Unparen(t.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Either `<param>.Value` directly, or `<param>.Value.Data`.
	if sel.Sel.Name == "Data" {
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		sel = inner
	}
	if sel.Sel.Name != "Value" {
		return false
	}
	return hasBumpVersion(info.TypeOf(sel.X))
}

// hasBumpVersion reports whether t's method set (value or pointer)
// includes a niladic BumpVersion method.
func hasBumpVersion(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "BumpVersion" {
			return true
		}
	}
	return false
}
