package analysis

import (
	"go/ast"
	"go/types"
)

// VersionKeyed enforces the version-bump invalidation contract on both
// of the repository's versioned-state families:
//
// Trainable parameters: every write to a Param's value tensor must be
// paired with a BumpVersion call, or layers holding version-keyed
// derived forms (Linear's packed weight panel, the compiled plans'
// folded weights, the int8 packed panels) keep serving the stale
// pre-write bytes. A "Param" is any named type whose method set
// includes BumpVersion() — structurally matched, so the analyzer needs
// no dependency on the nn package. Flagged writes, in any function
// that does not also call BumpVersion:
//
//	p.Value.Data[i] = x        // element store
//	p.Value.Data[a:b] ...      // slice store
//	copy(p.Value.Data, src)    // bulk overwrite
//	p.Value = t                // wholesale tensor replacement
//
// Epoch-bumping stores: the RCU class memory behind live enrollment
// (classmem.Versioned) keeps its growable backing in a field named
// `slab` and publishes a grown prefix with PublishEpoch(). Any write
// rooted at a `.slab` field of a named type whose method set includes
// a niladic PublishEpoch() must appear in a function that also calls
// PublishEpoch — a helper that appends rows but forgets the flip
// leaves every query serving the stale epoch, silently, forever. Same
// shape as the Param rule, applied to the readout side.
//
// Both checks are function-granular by design: a loop of stores
// followed by one bump/publish (the optimizer and applyLocked
// patterns) is correct and accepted; a helper that writes but never
// bumps is the exact bug class the cache-invalidation tests catch
// dynamically, found here on every call path at compile time. Writes
// through an alias (d := p.Value.Data; d[0] = x) are beyond the
// analyzer's reach — keep versioned stores syntactically rooted at
// their owner.
var VersionKeyed = &Analyzer{
	Name: "versionkeyed",
	Doc:  "flag versioned-state writes in functions that never bump the version (stale derived caches / stale epochs)",
	Run:  runVersionKeyed,
}

func runVersionKeyed(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var paramWrites, slabWrites []ast.Node
			bumps, publishes := false, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if isParamValueWrite(pass.Info, lhs) {
							paramWrites = append(paramWrites, lhs)
						}
						if isEpochSlabWrite(pass.Info, lhs) {
							slabWrites = append(slabWrites, lhs)
						}
					}
				case *ast.IncDecStmt:
					if isParamValueWrite(pass.Info, n.X) {
						paramWrites = append(paramWrites, n.X)
					}
					if isEpochSlabWrite(pass.Info, n.X) {
						slabWrites = append(slabWrites, n.X)
					}
				case *ast.CallExpr:
					if calleeName(pass.Info, n) == "copy" && len(n.Args) == 2 {
						if isParamValueWrite(pass.Info, n.Args[0]) {
							paramWrites = append(paramWrites, n.Args[0])
						}
						if isEpochSlabWrite(pass.Info, n.Args[0]) {
							slabWrites = append(slabWrites, n.Args[0])
						}
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
							switch obj.Name() {
							case "BumpVersion":
								bumps = true
							case "PublishEpoch":
								publishes = true
							}
						}
					}
				}
				return true
			})
			if !bumps {
				for _, w := range paramWrites {
					pass.Reportf(w.Pos(), "write to Param value without BumpVersion in %s: version-keyed caches (packed panels, compiled plans) will serve stale weights", fd.Name.Name)
				}
			}
			if !publishes && fd.Name.Name != "PublishEpoch" {
				for _, w := range slabWrites {
					pass.Reportf(w.Pos(), "write to epoch-store slab without PublishEpoch in %s: queries keep serving the stale epoch", fd.Name.Name)
				}
			}
		}
	}
	return nil
}

// isParamValueWrite reports whether expr is a write target rooted at a
// Param's value tensor: `<param>.Value`, `<param>.Value.Data[...]`, or
// a slice thereof, where <param>'s type has a BumpVersion method.
func isParamValueWrite(info *types.Info, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	// Strip any number of index/slice layers: Data[i], Data[a:b].
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(t.X)
			continue
		case *ast.SliceExpr:
			e = ast.Unparen(t.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Either `<param>.Value` directly, or `<param>.Value.Data`.
	if sel.Sel.Name == "Data" {
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		sel = inner
	}
	if sel.Sel.Name != "Value" {
		return false
	}
	return hasNiladicMethod(info.TypeOf(sel.X), "BumpVersion")
}

// isEpochSlabWrite reports whether expr is a write target rooted at an
// epoch store's growable backing: `<store>.slab`, `<store>.slab.<f>`,
// `<store>.slab.<f>[...]`, or a slice thereof, where <store>'s type
// has a niladic PublishEpoch method. The `slab` field name is the
// load-bearing half of the contract (see classmem.memorySlab).
func isEpochSlabWrite(info *types.Info, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	// Strip index/slice layers, then walk the selector chain inward
	// looking for the `.slab` hop on an epoch-store receiver.
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(t.X)
			continue
		case *ast.SliceExpr:
			e = ast.Unparen(t.X)
			continue
		case *ast.SelectorExpr:
			if t.Sel.Name == "slab" && hasNiladicMethod(info.TypeOf(t.X), "PublishEpoch") {
				return true
			}
			e = ast.Unparen(t.X)
			continue
		}
		return false
	}
}

// hasNiladicMethod reports whether t's method set (value or pointer)
// includes a method with the given name taking no arguments.
func hasNiladicMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() == name && m.Signature().Params().Len() == 0 {
			return true
		}
	}
	return false
}
