package attrenc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

func TestHDCEncoderDictionaryIsBipolarBinding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	schema := dataset.NewCUBSchema()
	e := NewHDCEncoder(rng, schema, 256)
	if e.B.Dim(0) != schema.Alpha() || e.B.Dim(1) != 256 {
		t.Fatalf("dictionary shape %v", e.B.Shape())
	}
	// Every row must equal g_y ⊙ v_z componentwise.
	for _, a := range []int{0, 5, 100, schema.Alpha() - 1} {
		g := e.Groups.At(schema.AttrGroup[a])
		v := e.Values.At(schema.AttrValue[a])
		row := e.B.Row(a)
		for i := range row {
			if row[i] != float32(g[i]*v[i]) {
				t.Fatalf("attr %d row diverges from binding at component %d", a, i)
			}
			if row[i] != 1 && row[i] != -1 {
				t.Fatalf("dictionary entry not bipolar: %v", row[i])
			}
		}
	}
}

func TestHDCEncoderSharedValuesShareCodevectors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	schema := dataset.NewCUBSchema()
	e := NewHDCEncoder(rng, schema, 128)
	// Find two attributes in different groups sharing the same value.
	uses := map[int][]int{}
	for a := 0; a < schema.Alpha(); a++ {
		uses[schema.AttrValue[a]] = append(uses[schema.AttrValue[a]], a)
	}
	var a1, a2 int = -1, -1
	for _, as := range uses {
		for i := 0; i < len(as); i++ {
			for j := i + 1; j < len(as); j++ {
				if schema.AttrGroup[as[i]] != schema.AttrGroup[as[j]] {
					a1, a2 = as[i], as[j]
				}
			}
		}
	}
	if a1 < 0 {
		t.Fatal("schema has no cross-group shared value")
	}
	// b_{a1} ⊙ b_{a2} = (g1⊙v)(g2⊙v) = g1⊙g2 — unbinding the shared value
	// must recover the group binding, i.e. b_{a1}*b_{a2} == g1*g2.
	g1 := e.Groups.At(schema.AttrGroup[a1])
	g2 := e.Groups.At(schema.AttrGroup[a2])
	r1, r2 := e.B.Row(a1), e.B.Row(a2)
	for i := range r1 {
		if r1[i]*r2[i] != float32(g1[i]*g2[i]) {
			t.Fatal("shared value does not factor out of bound attribute vectors")
		}
	}
}

func TestHDCEncoderDictionaryQuasiOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schema := dataset.NewCUBSchema()
	e := NewHDCEncoder(rng, schema, 4096)
	// Sampled pairs of distinct attribute vectors should be
	// quasi-orthogonal (binding preserves quasi-orthogonality, §III-A).
	for trial := 0; trial < 30; trial++ {
		a := rng.Intn(schema.Alpha())
		b := rng.Intn(schema.Alpha())
		if a == b {
			continue
		}
		// Same group + different value, or different groups: either way the
		// bound vectors should decorrelate... except pairs sharing BOTH
		// factors, which cannot happen for a≠b.
		ra, rb := e.B.Row(a), e.B.Row(b)
		var dot float64
		for i := range ra {
			dot += float64(ra[i]) * float64(rb[i])
		}
		cos := dot / 4096
		if math.Abs(cos) > 0.1 {
			t.Fatalf("attrs %d,%d correlated: cos=%v", a, b, cos)
		}
	}
}

func TestHDCEncodeMatchesManualMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	schema := dataset.NewCUBSchema()
	e := NewHDCEncoder(rng, schema, 64)
	a := tensor.RandUniform(rng, 0, 1, 3, schema.Alpha())
	phi := e.Encode(a, false)
	want := tensor.MatMul(a, e.B)
	for i := range phi.Data {
		if phi.Data[i] != want.Data[i] {
			t.Fatal("Encode diverges from A×B")
		}
	}
	if e.OutDim() != 64 || e.Name() != "HDC" {
		t.Fatal("metadata wrong")
	}
	if e.Params() != nil {
		t.Fatal("HDC encoder must be parameter-free")
	}
}

func TestHDCEncodeRejectsWrongAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewHDCEncoder(rng, dataset.NewCUBSchema(), 32)
	defer func() {
		if recover() == nil {
			t.Fatal("Encode accepted wrong attribute width")
		}
	}()
	e.Encode(tensor.New(2, 10), false)
}

func TestHDCAttrVectorMatchesDictionary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	schema := dataset.NewCUBSchema()
	e := NewHDCEncoder(rng, schema, 192)
	for _, a := range []int{0, 7, 200} {
		packed := e.AttrVector(a).ToBipolar()
		row := e.B.Row(a)
		for i := range row {
			if float32(packed[i]) != row[i] {
				t.Fatalf("packed rematerialization diverges for attr %d", a)
			}
		}
	}
}

func TestHDCMemoryFootprintPaperNumbers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewHDCEncoder(rng, dataset.NewCUBSchema(), 1536)
	m := e.MemoryFootprint()
	if m.Groups != 28 || m.Values != 61 || m.Combos != 312 {
		t.Fatalf("footprint topology %+v", m)
	}
	kb := float64(m.FactoredBytes) / 1024
	if kb < 16 || kb > 18 {
		t.Fatalf("codebooks occupy %.2f KB, paper says ≈17 KB", kb)
	}
	if r := m.Reduction(); r < 0.70 || r > 0.73 {
		t.Fatalf("reduction %.3f, paper says 71%%", r)
	}
}

func TestClassPrototypeRecallsOwnAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	schema := dataset.NewCUBSchema()
	e := NewHDCEncoder(rng, schema, 2048)
	attr := make([]float32, schema.Alpha())
	for g := range schema.Groups {
		attr[schema.GroupAttrOffset[g]] = 0.9 // first value of each group
	}
	proto := e.ClassPrototype(rng, attr)
	// The prototype must correlate with its member attribute vectors far
	// more than with non-members.
	member := e.AttrVector(schema.GroupAttrOffset[0])
	nonMember := e.AttrVector(schema.GroupAttrOffset[0] + 1)
	cm := proto.Cosine(member)
	cn := proto.Cosine(nonMember)
	if cm < 0.1 || cm < cn+0.1 {
		t.Fatalf("prototype recall weak: member=%v non-member=%v", cm, cn)
	}
}

func TestMLPEncoderForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := NewMLPEncoder(rng, 312, 32, 64)
	a := tensor.RandUniform(rng, 0, 1, 4, 312)
	phi := e.Encode(a, true)
	if phi.Dim(0) != 4 || phi.Dim(1) != 64 {
		t.Fatalf("MLP output %v", phi.Shape())
	}
	if e.OutDim() != 64 || e.Name() != "MLP" {
		t.Fatal("metadata wrong")
	}
	if len(e.Params()) != 4 { // 2×(W,b)
		t.Fatalf("want 4 params, got %d", len(e.Params()))
	}
	// Backward must accumulate gradient in the weights.
	for _, p := range e.Params() {
		p.ZeroGrad()
	}
	e.Backward(tensor.Ones(4, 64))
	var any bool
	for _, g := range e.Params()[0].Grad.Data {
		if g != 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("no gradient reached MLP weights")
	}
}
