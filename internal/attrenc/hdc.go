// Package attrenc implements the two attribute encoders the paper
// compares: the stationary HDC codebook encoder (the contribution,
// §III-A) and the trainable two-layer MLP reference (the "Trainable-MLP"
// rows of Table II and Fig. 4).
//
// Both satisfy the core.AttributeEncoder contract: map a class-attribute
// matrix A ∈ R^{C×α} to embeddings Φ ∈ R^{C×d}, optionally propagate
// gradients (a no-op for the stationary HDC encoder), and report their
// trainable parameters (none for HDC).
package attrenc

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/hdc"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// HDCEncoder is the paper's attribute encoder: two stationary codebooks
// of atomic Rademacher hypervectors — one per attribute group (g₁…g_G)
// and one per attribute value (v₁…v_V) — from which the α attribute-level
// codevectors are materialized on the fly by binding, b_x = g_y ⊙ v_z.
// The encoder is ϕ(A) = A·B with B ∈ {−1,+1}^{α×d}; it has zero trainable
// parameters and its atomic storage is (G+V)·d bits.
type HDCEncoder struct {
	Schema *dataset.Schema
	Groups *hdc.Codebook // G×d
	Values *hdc.Codebook // V×d
	// B is the materialized attribute dictionary [α, d] in float form for
	// the training path. The packed path rematerializes rows on demand.
	B   *tensor.Tensor
	dim int
}

// NewHDCEncoder builds the encoder for the given schema and
// dimensionality d, with codebooks drawn from rng (stationary
// thereafter). Materializing B here trades (α−G−V)·d bits of transient
// memory for speed on the training path; the deployment story stores
// only the codebooks (see MemoryFootprint).
func NewHDCEncoder(rng *rand.Rand, schema *dataset.Schema, d int) *HDCEncoder {
	if d <= 0 {
		panic(fmt.Sprintf("attrenc.NewHDCEncoder: non-positive dimension %d", d))
	}
	groupNames := make([]string, schema.NumGroups())
	for i, g := range schema.Groups {
		groupNames[i] = g.Name
	}
	e := &HDCEncoder{
		Schema: schema,
		Groups: hdc.NewCodebook(rng, d, groupNames),
		Values: hdc.NewCodebook(rng, d, schema.Values),
		dim:    d,
	}
	alpha := schema.Alpha()
	e.B = tensor.New(alpha, d)
	for a := 0; a < alpha; a++ {
		g := e.Groups.At(schema.AttrGroup[a])
		v := e.Values.At(schema.AttrValue[a])
		row := e.B.Row(a)
		for i := 0; i < d; i++ {
			row[i] = float32(g[i] * v[i])
		}
	}
	return e
}

// Encode computes ϕ(A) = A·B, mapping [C, α] class attributes to [C, d]
// embeddings. train is ignored — the encoder is stationary.
func (e *HDCEncoder) Encode(a *tensor.Tensor, train bool) *tensor.Tensor {
	if a.Rank() != 2 || a.Dim(1) != e.Schema.Alpha() {
		panic(fmt.Sprintf("attrenc.HDCEncoder.Encode: want [C, %d], have %v", e.Schema.Alpha(), a.Shape()))
	}
	return tensor.MatMul(a, e.B)
}

// Backward is a no-op: the codebooks are stationary (gray modules of
// Fig. 1).
func (e *HDCEncoder) Backward(dPhi *tensor.Tensor) {}

// Params returns nil: the HDC encoder contributes zero trainable
// parameters, the source of the paper's parameter-efficiency claims.
func (e *HDCEncoder) Params() []*nn.Param { return nil }

// OutDim returns the embedding dimensionality d.
func (e *HDCEncoder) OutDim() int { return e.dim }

// Name identifies the encoder in reports.
func (e *HDCEncoder) Name() string { return "HDC" }

// Dictionary returns the materialized attribute dictionary B [α, d]; the
// phase-II attribute-extraction task scores images against its rows.
func (e *HDCEncoder) Dictionary() *tensor.Tensor { return e.B }

// AttrVector rematerializes the attribute codevector b_x = g_y ⊙ v_z for
// flattened attribute index x in packed binary form — the storage-free
// on-the-fly binding of the deployment path.
func (e *HDCEncoder) AttrVector(x int) *hdc.Binary {
	g := hdc.FromBipolar(e.Groups.At(e.Schema.AttrGroup[x]))
	v := hdc.FromBipolar(e.Values.At(e.Schema.AttrValue[x]))
	return g.Xor(v)
}

// MemoryFootprint reports the §III-A storage accounting for this
// encoder's topology and dimension.
func (e *HDCEncoder) MemoryFootprint() hdc.MemoryFootprint {
	return hdc.NewMemoryFootprint(e.Schema.NumGroups(), e.Schema.NumValues(), e.Schema.Alpha(), e.dim)
}

// ClassPrototype bundles the binary attribute codevectors of a class's
// dominant attributes (one per group, by maximum certainty) into a single
// packed hypervector: the item-memory entry of the edge-inference path.
func (e *HDCEncoder) ClassPrototype(rng *rand.Rand, classAttr []float32) *hdc.Binary {
	acc := hdc.NewAccumulator(e.dim)
	for g := range e.Schema.Groups {
		off := e.Schema.GroupAttrOffset[g]
		best, bestV := 0, float32(-1)
		for vi := range e.Schema.Groups[g].Values {
			if classAttr[off+vi] > bestV {
				bestV, best = classAttr[off+vi], vi
			}
		}
		acc.Add(e.AttrVector(off + best).ToBipolar())
	}
	return hdc.FromBipolar(acc.Threshold(rng))
}
