package attrenc

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MLPEncoder is the paper's Trainable-MLP reference attribute encoder: a
// two-layer perceptron α → hidden → d that replaces the fixed HDC
// codebooks. It trades the zero-parameter stationary encoder for a
// trainable one; Table II and Fig. 4 show it buys a small accuracy gain
// at a parameter cost.
type MLPEncoder struct {
	seq *nn.Sequential
	dim int
}

// NewMLPEncoder builds the encoder with the given input (α), hidden, and
// output (d) widths.
func NewMLPEncoder(rng *rand.Rand, alpha, hidden, d int) *MLPEncoder {
	if alpha <= 0 || hidden <= 0 || d <= 0 {
		panic(fmt.Sprintf("attrenc.NewMLPEncoder: bad sizes α=%d hidden=%d d=%d", alpha, hidden, d))
	}
	return &MLPEncoder{
		seq: nn.NewSequential(
			nn.NewLinear(rng, "attrmlp.fc1", alpha, hidden, true),
			nn.NewReLU(),
			nn.NewLinear(rng, "attrmlp.fc2", hidden, d, true),
		),
		dim: d,
	}
}

// Encode maps [C, α] class attributes to [C, d] embeddings.
func (e *MLPEncoder) Encode(a *tensor.Tensor, train bool) *tensor.Tensor {
	return e.seq.Forward(a, train)
}

// Backward propagates the embedding gradient into the MLP weights.
func (e *MLPEncoder) Backward(dPhi *tensor.Tensor) {
	e.seq.Backward(dPhi)
}

// Params returns the MLP's trainable parameters.
func (e *MLPEncoder) Params() []*nn.Param { return e.seq.Params() }

// OutDim returns the embedding dimensionality d.
func (e *MLPEncoder) OutDim() int { return e.dim }

// Name identifies the encoder in reports.
func (e *MLPEncoder) Name() string { return "MLP" }
