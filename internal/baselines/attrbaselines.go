package baselines

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Finetag is the reproduction's stand-in for the Finetag multi-attribute
// classifier [34] of Table I: the same backbone as HDC-ZSC, a direct
// per-attribute sigmoid head (no HDC codebook targets), and *unweighted*
// binary cross entropy. The contrast against phase II of HDC-ZSC
// therefore isolates the paper's two ingredients — codebook-structured
// targets and imbalance-weighted BCE.
type Finetag struct {
	Image *core.ImageEncoder
	Head  *nn.Linear // d′ → α logits
}

// NewFinetag builds the baseline on the given backbone config.
func NewFinetag(rng *rand.Rand, backbone nn.ResNetConfig, alpha int) *Finetag {
	img := core.NewImageEncoder(rng, backbone, 0)
	return &Finetag{
		Image: img,
		Head:  nn.NewLinear(rng, "finetag.head", img.OutDim(), alpha, true),
	}
}

// Params returns all trainable parameters.
func (f *Finetag) Params() []*nn.Param {
	return append(append([]*nn.Param{}, f.Image.Params()...), f.Head.Params()...)
}

// Train fits the baseline with plain BCE on the split's training
// instances and returns the final epoch loss.
func (f *Finetag) Train(d *dataset.SynthCUB, split dataset.Split, cfg core.TrainConfig) float32 {
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	it := dataset.NewBatchIterator(d, split.Train, split.TrainClasses, cfg.Batch, nil, rng)
	params := f.Params()
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	perEpoch := it.BatchesPerEpoch()
	sched := nn.NewCosineAnnealingLR(cfg.LR, cfg.LRMin, maxInt(cfg.Epochs*perEpoch, 1))
	var last float32
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var sum float64
		for b := 0; b < perEpoch; b++ {
			batch := it.Next()
			nn.ZeroGrads(params)
			logits := f.Head.Forward(f.Image.Forward(batch.Images, true), true)
			loss, dl := nn.BCEWithLogits(logits, batch.Attrs, nil) // unweighted: the Finetag contrast
			f.Image.Backward(f.Head.Backward(dl))
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			sched.Apply(opt, step)
			opt.Step(params)
			step++
			sum += float64(loss)
		}
		last = float32(sum / float64(perEpoch))
	}
	return last
}

// Scores returns [N, α] attribute logits and targets over the given
// instances.
func (f *Finetag) Scores(d *dataset.SynthCUB, idx []int) (scores, targets *tensor.Tensor) {
	alpha := f.Head.OutDim()
	scores = tensor.New(len(idx), alpha)
	targets = tensor.New(len(idx), alpha)
	labelOf := map[int]int{}
	for _, i := range idx {
		labelOf[d.Instances[i].Class] = 0
	}
	const batch = 32
	for at := 0; at < len(idx); at += batch {
		end := minInt(at+batch, len(idx))
		b := d.MakeBatch(idx[at:end], labelOf, nil, nil)
		logits := f.Head.Forward(f.Image.Forward(b.Images, false), false)
		for i := 0; i < end-at; i++ {
			copy(scores.Row(at+i), logits.Row(i))
			copy(targets.Row(at+i), b.Attrs.Row(i))
		}
	}
	return scores, targets
}

// A3M is the reproduction's stand-in for the attribute-aware attention
// model [35] of Table I. The original attends over spatial features per
// attribute; at this scale we reduce it to its position-blind core —
// global average pooling followed by per-group softmax heads — which is
// what attention degenerates to when the attended maps are a few pixels.
// Its weakness against HDC-ZSC's position-preserving pipeline mirrors
// the Table I gap.
type A3M struct {
	Image  *core.ImageEncoder
	Schema *dataset.Schema
	Heads  []*nn.Linear // one per attribute group
}

// NewA3M builds the baseline. The backbone uses global average pooling
// regardless of cfg's flatten setting (that *is* the simplification).
func NewA3M(rng *rand.Rand, backbone nn.ResNetConfig, schema *dataset.Schema) *A3M {
	backbone.FlattenPool = false
	backbone.FlattenH, backbone.FlattenW = 0, 0
	img := core.NewImageEncoder(rng, backbone, 0)
	a := &A3M{Image: img, Schema: schema}
	for g, grp := range schema.Groups {
		a.Heads = append(a.Heads,
			nn.NewLinear(rng, "a3m.head"+schema.Groups[g].Name, img.OutDim(), len(grp.Values), true))
	}
	return a
}

// Params returns all trainable parameters.
func (a *A3M) Params() []*nn.Param {
	ps := append([]*nn.Param{}, a.Image.Params()...)
	for _, h := range a.Heads {
		ps = append(ps, h.Params()...)
	}
	return ps
}

// Train fits per-group softmax classification on the training instances.
func (a *A3M) Train(d *dataset.SynthCUB, split dataset.Split, cfg core.TrainConfig) float32 {
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	it := dataset.NewBatchIterator(d, split.Train, split.TrainClasses, cfg.Batch, nil, rng)
	params := a.Params()
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	perEpoch := it.BatchesPerEpoch()
	sched := nn.NewCosineAnnealingLR(cfg.LR, cfg.LRMin, maxInt(cfg.Epochs*perEpoch, 1))
	var last float32
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var sum float64
		for b := 0; b < perEpoch; b++ {
			batch := it.Next()
			nn.ZeroGrads(params)
			emb := a.Image.Forward(batch.Images, true)
			dEmb := tensor.New(emb.Shape()...)
			var lossSum float32
			for g, head := range a.Heads {
				off := a.Schema.GroupAttrOffset[g]
				size := len(a.Schema.Groups[g].Values)
				// Ground-truth value slot per sample for this group.
				labels := make([]int, batch.Attrs.Dim(0))
				for i := range labels {
					row := batch.Attrs.Row(i)[off : off+size]
					for vi, v := range row {
						if v == 1 {
							labels[i] = vi
							break
						}
					}
				}
				logits := head.Forward(emb, true)
				loss, dl := nn.SoftmaxCrossEntropy(logits, labels)
				lossSum += loss
				tensor.AddInPlace(dEmb, head.Backward(dl))
			}
			a.Image.Backward(dEmb)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			sched.Apply(opt, step)
			opt.Step(params)
			step++
			sum += float64(lossSum) / float64(len(a.Heads))
		}
		last = float32(sum / float64(perEpoch))
	}
	return last
}

// Scores returns [N, α] per-attribute scores (group-wise softmax
// probabilities) and targets over the given instances.
func (a *A3M) Scores(d *dataset.SynthCUB, idx []int) (scores, targets *tensor.Tensor) {
	alpha := a.Schema.Alpha()
	scores = tensor.New(len(idx), alpha)
	targets = tensor.New(len(idx), alpha)
	labelOf := map[int]int{}
	for _, i := range idx {
		labelOf[d.Instances[i].Class] = 0
	}
	const batch = 32
	for at := 0; at < len(idx); at += batch {
		end := minInt(at+batch, len(idx))
		b := d.MakeBatch(idx[at:end], labelOf, nil, nil)
		emb := a.Image.Forward(b.Images, false)
		for g, head := range a.Heads {
			off := a.Schema.GroupAttrOffset[g]
			probs := tensor.SoftmaxRows(head.Forward(emb, false))
			for i := 0; i < end-at; i++ {
				copy(scores.Row(at+i)[off:off+probs.Dim(1)], probs.Row(i))
			}
		}
		for i := 0; i < end-at; i++ {
			copy(targets.Row(at+i), b.Attrs.Row(i))
		}
	}
	return scores, targets
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
