package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func tinyData(seed int64) (*dataset.SynthCUB, dataset.Split) {
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = 12
	cfg.ImagesPerClass = 6
	cfg.Height, cfg.Width = 12, 12
	cfg.AttrNoise = 0.15
	cfg.Seed = seed
	d := dataset.Generate(cfg)
	rng := rand.New(rand.NewSource(seed + 99))
	return d, d.ZSSplit(rng, 2.0/3)
}

func tinyBackbone() nn.ResNetConfig {
	return nn.MicroResNet50Config(4).WithFlatten(12, 12)
}

func TestESZSLClosedFormRecoversPlantedBilinearMap(t *testing.T) {
	// Synthetic sanity check with a known compatibility structure: class
	// embeddings are attribute rows themselves, features are noisy class
	// attribute vectors → identity-ish V should classify perfectly.
	rng := rand.New(rand.NewSource(1))
	cTr, alpha, n := 6, 10, 60
	s := tensor.RandUniform(rng, 0, 1, cTr, alpha)
	x := tensor.New(n, alpha)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % cTr
		copy(x.Row(i), s.Row(labels[i]))
		for j := 0; j < alpha; j++ {
			x.Row(i)[j] += float32(rng.NormFloat64()) * 0.05
		}
	}
	m := NewESZSL(0.1, 0.1)
	if err := m.Fit(x, labels, s); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	scores := m.Scores(x, s)
	if acc := metrics.Top1Accuracy(scores, labels); acc < 0.95 {
		t.Fatalf("ESZSL failed the planted problem: %.3f", acc)
	}
	if m.ParamCount() != alpha*alpha {
		t.Fatalf("ParamCount = %d, want %d", m.ParamCount(), alpha*alpha)
	}
}

func TestESZSLGeneralizesToUnseenAttributeRows(t *testing.T) {
	// Train on 6 classes; evaluate on 3 fresh attribute rows — the
	// bilinear map should rank the matching row first.
	rng := rand.New(rand.NewSource(2))
	alpha := 12
	sTr := tensor.RandUniform(rng, 0, 1, 6, alpha)
	sTe := tensor.RandUniform(rng, 0, 1, 3, alpha)
	var xs []float32
	var labels []int
	for i := 0; i < 90; i++ {
		c := i % 6
		labels = append(labels, c)
		row := make([]float32, alpha)
		copy(row, sTr.Row(c))
		for j := range row {
			row[j] += float32(rng.NormFloat64()) * 0.05
		}
		xs = append(xs, row...)
	}
	x := tensor.FromSlice(xs, 90, alpha)
	m := NewESZSL(0.5, 0.5)
	if err := m.Fit(x, labels, sTr); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Unseen "instances": noisy copies of the unseen attribute rows.
	xe := tensor.New(30, alpha)
	le := make([]int, 30)
	for i := 0; i < 30; i++ {
		le[i] = i % 3
		copy(xe.Row(i), sTe.Row(le[i]))
		for j := 0; j < alpha; j++ {
			xe.Row(i)[j] += float32(rng.NormFloat64()) * 0.05
		}
	}
	if acc := metrics.Top1Accuracy(m.Scores(xe, sTe), le); acc < 0.8 {
		t.Fatalf("ESZSL zero-shot on planted problem: %.3f", acc)
	}
}

func TestESZSLScoresBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scores before Fit did not panic")
		}
	}()
	NewESZSL(1, 1).Scores(tensor.New(1, 2), tensor.New(1, 2))
}

func TestRunESZSLEndToEnd(t *testing.T) {
	d, split := tinyData(3)
	rng := rand.New(rand.NewSource(3))
	img := core.NewImageEncoder(rng, tinyBackbone(), 0)
	res, err := RunESZSL(img, d, split, 1, 1)
	if err != nil {
		t.Fatalf("RunESZSL: %v", err)
	}
	if res.Top1 < 0 || res.Top1 > 1 || res.Top5 < res.Top1 {
		t.Fatalf("bad result %+v", res)
	}
	if res.ParamCount <= nn.CountParams(img.Params()) {
		t.Fatal("param count must include the bilinear map")
	}
}

func TestFinetagTrainsAndScores(t *testing.T) {
	d, split := tinyData(4)
	rng := rand.New(rand.NewSource(4))
	f := NewFinetag(rng, tinyBackbone(), d.Schema.Alpha())
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 2
	first := f.Train(d, split, cfg)
	cfg.Epochs = 6
	f2 := NewFinetag(rand.New(rand.NewSource(4)), tinyBackbone(), d.Schema.Alpha())
	last := f2.Train(d, split, cfg)
	if last >= first {
		t.Fatalf("longer Finetag training did not reduce loss: %v → %v", first, last)
	}
	scores, targets := f2.Scores(d, split.Test[:4])
	if scores.Dim(0) != 4 || scores.Dim(1) != d.Schema.Alpha() {
		t.Fatalf("scores shape %v", scores.Shape())
	}
	if !targets.SameShape(scores) {
		t.Fatal("targets shape mismatch")
	}
}

func TestA3MTrainsAndScoresGroupwiseProbabilities(t *testing.T) {
	d, split := tinyData(5)
	rng := rand.New(rand.NewSource(5))
	a := NewA3M(rng, nn.MicroResNet50Config(4), d.Schema)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 2
	a.Train(d, split, cfg)
	scores, targets := a.Scores(d, split.Test[:3])
	// Each group's scores must be a probability distribution.
	for i := 0; i < 3; i++ {
		for g := range d.Schema.Groups {
			off := d.Schema.GroupAttrOffset[g]
			size := len(d.Schema.Groups[g].Values)
			var sum float32
			for _, v := range scores.Row(i)[off : off+size] {
				if v < 0 || v > 1 {
					t.Fatalf("A3M group prob out of range: %v", v)
				}
				sum += v
			}
			if sum < 0.99 || sum > 1.01 {
				t.Fatalf("A3M group probs sum to %v", sum)
			}
		}
	}
	_ = targets
	// A3M must not use flatten pooling (that is the simplification).
	if a.Image.Backbone.Config.FlattenPool {
		t.Fatal("A3M backbone should use global average pooling")
	}
}

func TestFeatGenRunsAndBeatsChanceOnPlantedFeatures(t *testing.T) {
	d, split := tinyData(6)
	rng := rand.New(rand.NewSource(6))
	img := core.NewImageEncoder(rng, tinyBackbone(), 0)
	cfg := DefaultFeatGenConfig()
	cfg.GenEpochs, cfg.ClsEpochs, cfg.PerClass = 10, 10, 8
	cfg.HiddenGen, cfg.HiddenCls = 64, 48
	res := RunFeatGen(img, d, split, cfg)
	if res.Top1 < 0 || res.Top1 > 1 {
		t.Fatalf("bad top1 %v", res.Top1)
	}
	if res.ParamCount <= nn.CountParams(img.Params()) {
		t.Fatal("FeatGen params must include generator and classifier")
	}
	if res.Name != cfg.Name {
		t.Fatal("name not propagated")
	}
}

func TestRunTCNEndToEnd(t *testing.T) {
	d, split := tinyData(7)
	cfg := TCNConfig{
		Backbone:  tinyBackbone(),
		EmbedDim:  48,
		MLPHidden: 64,
		Train:     core.DefaultTrainConfig(),
		Seed:      7,
	}
	cfg.Train.Epochs = 3
	res := RunTCN(d, split, cfg)
	if res.Top1 < 0 || res.Top1 > 1 || res.ParamCount <= 0 {
		t.Fatalf("bad TCN result %+v", res)
	}
}
