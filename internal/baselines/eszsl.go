// Package baselines implements the comparison systems of the paper's
// evaluation: ESZSL (the main non-generative baseline of Fig. 4),
// Finetag-like and A3M-like attribute-extraction baselines (Table I),
// a simplified generative feature-synthesis pipeline standing in for the
// GAN-based models of Fig. 4, and a TCN-like contrastive network. Each
// file documents how the reproduction simplifies the original system and
// why the simplification preserves the comparison the paper makes (see
// also DESIGN.md §1).
package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ESZSL is Romera-Paredes & Torr's "embarrassingly simple" zero-shot
// learner [4]: a bilinear compatibility matrix V minimizing
//
//	‖XᵀV S − Y‖² + Ω(V)
//
// with a Frobenius-norm regularizer, which admits the closed form
//
//	V = (X Xᵀ + γI)⁻¹ X Y Sᵀ (S Sᵀ + λI)⁻¹
//
// (X: features × samples, S: attributes × classes, Y: samples × classes
// in ±1). Features come from a frozen image encoder; the only learned
// object is V ∈ R^{f×α}.
type ESZSL struct {
	// Gamma and Lambda are the two regularization strengths.
	Gamma, Lambda float32
	// V is the learned bilinear compatibility matrix [f, α].
	V *tensor.Tensor
}

// NewESZSL returns an untrained model with the given regularizers.
func NewESZSL(gamma, lambda float32) *ESZSL {
	return &ESZSL{Gamma: gamma, Lambda: lambda}
}

// Fit solves the closed form from features X [N, f], labels (indices into
// the training-class list), and the training-class attribute matrix
// S [Ctr, α]. It returns an error if either regularized Gram matrix is
// singular (raise the regularizers).
func (m *ESZSL) Fit(x *tensor.Tensor, labels []int, s *tensor.Tensor) error {
	n := x.Dim(0)
	cTr := s.Dim(0)
	if len(labels) != n {
		panic(fmt.Sprintf("baselines.ESZSL.Fit: %d labels for %d samples", len(labels), n))
	}
	// Y ∈ {−1, +1}^{N×Ctr}.
	y := tensor.Full(-1, n, cTr)
	for i, l := range labels {
		if l < 0 || l >= cTr {
			panic(fmt.Sprintf("baselines.ESZSL.Fit: label %d out of range [0,%d)", l, cTr))
		}
		y.Set(1, i, l)
	}
	// Left factor: (XᵀX + γI)⁻¹ (features are rows here, so the Gram is
	// [f, f]).
	gram := tensor.TMatMul(x, x)
	tensor.AddDiagonal(gram, m.Gamma)
	xy := tensor.TMatMul(x, y)            // [f, Ctr]
	xys := tensor.MatMul(xy, s)           // [f, α]
	left, err := tensor.SolveSPD(gram, xys)
	if err != nil {
		return fmt.Errorf("eszsl: feature Gram solve: %w", err)
	}
	// Right factor: (SᵀS + λI)⁻¹ applied on the attribute side.
	sGram := tensor.TMatMul(s, s) // [α, α]
	tensor.AddDiagonal(sGram, m.Lambda)
	// Solve (SᵀS+λI)·Z = leftᵀ then V = Zᵀ.
	zt, err := tensor.SolveSPD(sGram, tensor.Transpose2D(left))
	if err != nil {
		return fmt.Errorf("eszsl: attribute Gram solve: %w", err)
	}
	m.V = tensor.Transpose2D(zt)
	return nil
}

// Scores returns the compatibility X·V·Sᵀ [N, C] against the class
// attribute matrix s [C, α].
func (m *ESZSL) Scores(x, s *tensor.Tensor) *tensor.Tensor {
	if m.V == nil {
		panic("baselines.ESZSL: Scores before Fit")
	}
	return tensor.MatMulT(tensor.MatMul(x, m.V), s)
}

// ParamCount returns the size of the bilinear map (the model's trainable
// parameters).
func (m *ESZSL) ParamCount() int {
	if m.V == nil {
		return 0
	}
	return m.V.Len()
}

// ESZSLResult is a zero-shot evaluation of ESZSL on a split.
type ESZSLResult struct {
	Top1, Top5 float64
	ParamCount int
}

// RunESZSL trains a frozen feature extractor on phase-I-style
// pre-training, fits ESZSL's closed form on the split's training classes
// and evaluates on its unseen test classes. The backbone is shared with
// the HDC-ZSC pipeline for a controlled comparison; total parameters are
// backbone + V (ESZSL has no FC projection and no codebooks).
func RunESZSL(img *core.ImageEncoder, d *dataset.SynthCUB, split dataset.Split,
	gamma, lambda float32) (ESZSLResult, error) {

	feats, labels := encodeAll(img, d, split.Train, split.TrainClasses)
	sTr := d.ClassAttrRows(split.TrainClasses)
	model := NewESZSL(gamma, lambda)
	if err := model.Fit(feats, labels, sTr); err != nil {
		return ESZSLResult{}, err
	}

	testFeats, testLabels := encodeAll(img, d, split.Test, split.TestClasses)
	sTe := d.ClassAttrRows(split.TestClasses)
	scores := model.Scores(testFeats, sTe)
	k := 5
	if len(split.TestClasses) < k {
		k = len(split.TestClasses)
	}
	return ESZSLResult{
		Top1:       metrics.Top1Accuracy(scores, testLabels),
		Top5:       metrics.TopKAccuracy(scores, testLabels, k),
		ParamCount: model.ParamCount() + nn.CountParams(img.Params()),
	}, nil
}

// encodeAll runs the frozen image encoder over the given instances and
// returns the feature matrix plus split-local labels.
func encodeAll(img *core.ImageEncoder, d *dataset.SynthCUB, idx []int, classes []int) (*tensor.Tensor, []int) {
	labelOf := dataset.ClassIndexMap(classes)
	var feats *tensor.Tensor
	labels := make([]int, len(idx))
	const batch = 32
	for at := 0; at < len(idx); at += batch {
		end := at + batch
		if end > len(idx) {
			end = len(idx)
		}
		b := d.MakeBatch(idx[at:end], labelOf, nil, nil)
		emb := img.Forward(b.Images, false)
		if feats == nil {
			feats = tensor.New(len(idx), emb.Dim(1))
		}
		for i := 0; i < end-at; i++ {
			copy(feats.Row(at+i), emb.Row(i))
			labels[at+i] = b.Labels[i]
		}
	}
	return feats, labels
}

// FitWithRNGSeedPerturbation refits ESZSL after adding tiny seeded noise
// to the regularizers; used by multi-seed protocols so the closed-form
// baseline also reports a µ±σ spread.
func (m *ESZSL) FitWithRNGSeedPerturbation(rng *rand.Rand, x *tensor.Tensor, labels []int, s *tensor.Tensor) error {
	jitter := func(v float32) float32 { return v * (1 + 0.01*float32(rng.NormFloat64())) }
	saved := *m
	m.Gamma, m.Lambda = jitter(m.Gamma), jitter(m.Lambda)
	err := m.Fit(x, labels, s)
	m.Gamma, m.Lambda = saved.Gamma, saved.Lambda
	return err
}
