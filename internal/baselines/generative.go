package baselines

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// FeatGenConfig parameterizes the simplified generative ZSL pipeline that
// stands in for the GAN-based models of Fig. 4 (f-CLSWGAN, f-VAEGAN-D2,
// cycle-CLSWGAN, LisGAN, TF-VAEGAN, Composer). The original models learn
// a conditional feature generator adversarially; the reproduction keeps
// the pipeline structure — synthesize features for unseen classes from
// their attributes, then train a classifier on real+synthetic features —
// but trains the generator by conditional feature regression with noise
// injection instead of a WGAN objective. The capacity knobs (hidden
// widths, generated samples per class) let the harness instantiate
// variants whose parameter-count ratios to HDC-ZSC match the published
// models' (1.75×–2.58×), which is the quantity Fig. 4 plots.
type FeatGenConfig struct {
	// Name labels the variant in Fig. 4 ("f-CLSWGAN", …).
	Name string
	// NoiseDim is the generator's latent noise dimension.
	NoiseDim int
	// HiddenGen and HiddenCls are the generator/classifier hidden widths.
	HiddenGen, HiddenCls int
	// PerClass is the number of synthetic features per unseen class.
	PerClass int
	// GenEpochs and ClsEpochs control the two training stages.
	GenEpochs, ClsEpochs int
	// LR is shared by both stages (AdamW).
	LR float32
	Seed int64
}

// DefaultFeatGenConfig returns a mid-sized generative configuration.
func DefaultFeatGenConfig() FeatGenConfig {
	return FeatGenConfig{
		Name: "FeatGen", NoiseDim: 16, HiddenGen: 256, HiddenCls: 128,
		PerClass: 30, GenEpochs: 60, ClsEpochs: 60, LR: 2e-3, Seed: 1,
	}
}

// FeatGenResult is the zero-shot evaluation of a generative variant.
type FeatGenResult struct {
	Name       string
	Top1, Top5 float64
	ParamCount int
}

// RunFeatGen executes the generative pipeline on frozen features from
// img: train the conditional generator on seen-class features, synthesize
// unseen-class features from their attribute vectors, train a softmax
// classifier over all classes on real+synthetic features, and evaluate
// on the real unseen-class test instances (argmax restricted to unseen
// classes, the standard ZSL protocol).
func RunFeatGen(img *core.ImageEncoder, d *dataset.SynthCUB, split dataset.Split, cfg FeatGenConfig) FeatGenResult {
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	feats, labels := encodeAll(img, d, split.Train, split.TrainClasses)
	f := feats.Dim(1)
	alpha := d.Schema.Alpha()
	trainAttr := d.ClassAttrRows(split.TrainClasses)
	testAttr := d.ClassAttrRows(split.TestClasses)

	// --- Stage 1: conditional generator [attr ⊕ z] → feature. ---
	gen := nn.NewSequential(
		nn.NewLinear(rng, cfg.Name+".gen1", alpha+cfg.NoiseDim, cfg.HiddenGen, true),
		nn.NewReLU(),
		nn.NewLinear(rng, cfg.Name+".gen2", cfg.HiddenGen, f, true),
	)
	genParams := gen.Params()
	opt := nn.NewAdamW(cfg.LR, 1e-4)
	n := feats.Dim(0)
	order := rng.Perm(n)
	const batch = 16
	for epoch := 0; epoch < cfg.GenEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for at := 0; at < n; at += batch {
			end := minInt(at+batch, n)
			ids := order[at:end]
			in := tensor.New(len(ids), alpha+cfg.NoiseDim)
			target := tensor.New(len(ids), f)
			for i, id := range ids {
				copy(in.Row(i)[:alpha], trainAttr.Row(labels[id]))
				for z := 0; z < cfg.NoiseDim; z++ {
					in.Row(i)[alpha+z] = float32(rng.NormFloat64())
				}
				copy(target.Row(i), feats.Row(id))
			}
			nn.ZeroGrads(genParams)
			out := gen.Forward(in, true)
			_, dout := nn.MSE(out, target)
			gen.Backward(dout)
			opt.Step(genParams)
		}
	}

	// --- Stage 2: synthesize unseen-class features. ---
	cTr, cTe := len(split.TrainClasses), len(split.TestClasses)
	synthN := cTe * cfg.PerClass
	synthFeats := tensor.New(synthN, f)
	synthLabels := make([]int, synthN)
	for c := 0; c < cTe; c++ {
		for k := 0; k < cfg.PerClass; k++ {
			in := tensor.New(1, alpha+cfg.NoiseDim)
			copy(in.Row(0)[:alpha], testAttr.Row(c))
			for z := 0; z < cfg.NoiseDim; z++ {
				in.Row(0)[alpha+z] = float32(rng.NormFloat64())
			}
			out := gen.Forward(in, false)
			idx := c*cfg.PerClass + k
			copy(synthFeats.Row(idx), out.Row(0))
			synthLabels[idx] = cTr + c // unseen classes follow seen ones
		}
	}

	// --- Stage 3: classifier over all classes on real ∪ synthetic. ---
	cls := nn.NewSequential(
		nn.NewLinear(rng, cfg.Name+".cls1", f, cfg.HiddenCls, true),
		nn.NewReLU(),
		nn.NewLinear(rng, cfg.Name+".cls2", cfg.HiddenCls, cTr+cTe, true),
	)
	clsParams := cls.Params()
	optC := nn.NewAdamW(cfg.LR, 1e-4)
	total := n + synthN
	allOrder := rng.Perm(total)
	rowOf := func(i int) ([]float32, int) {
		if i < n {
			return feats.Row(i), labels[i]
		}
		return synthFeats.Row(i - n), synthLabels[i-n]
	}
	for epoch := 0; epoch < cfg.ClsEpochs; epoch++ {
		rng.Shuffle(len(allOrder), func(i, j int) { allOrder[i], allOrder[j] = allOrder[j], allOrder[i] })
		for at := 0; at < total; at += batch {
			end := minInt(at+batch, total)
			ids := allOrder[at:end]
			in := tensor.New(len(ids), f)
			ls := make([]int, len(ids))
			for i, id := range ids {
				row, l := rowOf(id)
				copy(in.Row(i), row)
				ls[i] = l
			}
			nn.ZeroGrads(clsParams)
			logits := cls.Forward(in, true)
			_, dl := nn.SoftmaxCrossEntropy(logits, ls)
			cls.Backward(dl)
			optC.Step(clsParams)
		}
	}

	// --- Evaluate on real unseen-class instances. ---
	testFeats, testLabels := encodeAll(img, d, split.Test, split.TestClasses)
	logits := cls.Forward(testFeats, false)
	// Restrict the argmax to the unseen-class block.
	scores := tensor.New(testFeats.Dim(0), cTe)
	for i := 0; i < scores.Dim(0); i++ {
		copy(scores.Row(i), logits.Row(i)[cTr:])
	}
	k := 5
	if cTe < k {
		k = cTe
	}
	return FeatGenResult{
		Name: cfg.Name,
		Top1: metrics.Top1Accuracy(scores, testLabels),
		Top5: metrics.TopKAccuracy(scores, testLabels, k),
		ParamCount: nn.CountParams(genParams) + nn.CountParams(clsParams) +
			nn.CountParams(img.Params()),
	}
}
