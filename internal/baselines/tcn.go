package baselines

import (
	"math/rand"

	"repro/internal/attrenc"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
)

// TCNConfig parameterizes the TCN-like contrastive baseline [17]: a
// transferable contrastive network that learns image and attribute
// projections jointly with a batch-contrastive objective. The
// reproduction realizes it as the HDC-ZSC architecture with a *trainable*
// MLP attribute encoder and without the attribute-extraction phase — the
// contrastive phase-III objective (cross entropy over cosine similarities
// within the class set) is exactly a one-sided InfoNCE loss. The wider
// MLP gives it the larger parameter footprint the paper reports (1.85×
// HDC-ZSC).
type TCNConfig struct {
	Backbone  nn.ResNetConfig
	EmbedDim  int
	MLPHidden int
	Train     core.TrainConfig
	Seed      int64
}

// TCNResult is the evaluation of the TCN-like baseline.
type TCNResult struct {
	Top1, Top5 float64
	ParamCount int
}

// RunTCN trains the contrastive baseline end-to-end (backbone unfrozen —
// unlike HDC-ZSC it has no maturation phases to preserve) and evaluates
// zero-shot on the split's unseen classes.
func RunTCN(d *dataset.SynthCUB, split dataset.Split, cfg TCNConfig) TCNResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	img := core.NewImageEncoder(rng, cfg.Backbone, cfg.EmbedDim)
	enc := attrenc.NewMLPEncoder(rng, d.Schema.Alpha(), cfg.MLPHidden, cfg.EmbedDim)
	model := core.NewModel(img, enc, core.NewSimilarityKernel(cfg.Train.TempScale))

	// Contrastive training over training classes: reuse the phase-III
	// trainer but with the backbone trainable (freeze/unfreeze is a no-op
	// here because TrainZSC freezes it; emulate end-to-end training by a
	// preliminary attribute-free warm-up of the backbone through the same
	// objective with the backbone unfrozen).
	tc := cfg.Train
	tc.Seed = cfg.Seed
	trainContrastive(model, d, split, tc)

	eval := core.EvalZSC(model, d, split)
	return TCNResult{Top1: eval.Top1, Top5: eval.Top5, ParamCount: model.ParamCount()}
}

// trainContrastive optimizes all model parameters (backbone included)
// under the batch-contrastive similarity objective.
func trainContrastive(m *core.Model, d *dataset.SynthCUB, split dataset.Split, cfg core.TrainConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed + 23))
	it := dataset.NewBatchIterator(d, split.Train, split.TrainClasses, cfg.Batch, nil, rng)
	trainAttr := d.ClassAttrRows(split.TrainClasses)
	params := m.Params()
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	perEpoch := it.BatchesPerEpoch()
	sched := nn.NewCosineAnnealingLR(cfg.LR, cfg.LRMin, maxInt(cfg.Epochs*perEpoch, 1))
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for b := 0; b < perEpoch; b++ {
			batch := it.Next()
			nn.ZeroGrads(params)
			logits := m.Logits(batch.Images, trainAttr, true)
			_, dl := nn.SoftmaxCrossEntropy(logits, batch.Labels)
			m.Backward(dl)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			sched.Apply(opt, step)
			opt.Step(params)
			m.Kernel.ClampTemperature(1e-3, 100)
			step++
		}
	}
}
