// Package classmem builds the frozen synthetic class memory the serving
// commands ship: bundled class prototypes from the stationary HDC
// attribute encoder over a SynthCUB class set, realized simultaneously
// as float embeddings (reference cosine path), a packed binary item
// memory (XOR+popcount edge path), and — derived on demand — an analog
// crossbar backend.
//
// The construction is a pure function of (classes, dim, seed). That
// purity is what the distributed path leans on: cmd/hdcshard processes
// and the `hdcserve -router` front never exchange the class memory —
// each rebuilds the identical one from the shared seed and serves its
// assigned range of it, and the byte-identical parity contract of
// internal/dist only holds because class c's prototype is the same
// bits in every process.
package classmem

import (
	"fmt"
	"math/rand"

	"repro/internal/attrenc"
	"repro/internal/dataset"
	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// Temp is the similarity temperature the serving commands fix for the
// float and crossbar backends (the evaluation-time K of the paper's
// similarity kernel is folded in here).
const Temp = 1.0

// Memory is one frozen class memory in both realizations.
type Memory struct {
	Labels []string
	// Phi is the [classes, dim] bipolar float class-embedding matrix.
	Phi *tensor.Tensor
	// Items is the packed binary item memory over the same prototypes.
	Items *hdc.ItemMemory
}

// Build freezes the class memory for (classes, dim, seed). The same
// triple always produces the same bits, in any process.
func Build(classes, dim int, seed int64) *Memory {
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.NewCUBSchema()
	enc := attrenc.NewHDCEncoder(rng, schema, dim)
	dcfg := dataset.DefaultConfig()
	dcfg.NumClasses = classes
	dcfg.Seed = seed
	data := dataset.Generate(dcfg)

	m := &Memory{
		Labels: make([]string, classes),
		Phi:    tensor.New(classes, dim),
		Items:  hdc.NewItemMemory(dim),
	}
	for c := 0; c < classes; c++ {
		m.Labels[c] = data.ClassNames[c]
		proto := enc.ClassPrototype(rng, data.ClassAttr.Row(c))
		m.Items.Store(m.Labels[c], proto)
		copy(m.Phi.Row(c), proto.ToBipolar().Float32())
	}
	return m
}

// Backend realizes the named serving backend over the memory: "float"
// (reference cosine), "binary" (packed Hamming), or "imc" (analog
// crossbar with typical PCM non-idealities). Unknown names error.
//
// Note for distributed serving: "imc" draws per-query analog noise, so
// only the deterministic backends ("float", "binary") uphold the
// cross-process byte-identical parity contract; an imc shard serves,
// but its rankings are stochastic by design.
func (m *Memory) Backend(name string) (infer.Backend, error) {
	switch name {
	case "float":
		return infer.NewFloatBackend(m.Phi, m.Labels, Temp), nil
	case "binary":
		return infer.NewBinaryBackend(m.Items), nil
	case "imc":
		return infer.NewCrossbarBackend(m.Phi, m.Labels, Temp, imc.TypicalPCM()), nil
	default:
		return nil, fmt.Errorf("classmem: unknown backend %q (want float, binary, or imc)", name)
	}
}
