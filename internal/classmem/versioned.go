package classmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// Live-enrollment errors. ErrEpochConflict and ErrEpochGap are the
// two-phase flip's safety rails: an epoch number can never be reused
// for different content, and commits can never skip a prepare.
var (
	// ErrEpochConflict: a prepare carried an epoch that is already
	// bound (published or staged) to different content. The epoch
	// number is the idempotent enroll request ID — retries of the same
	// enrollment ack cleanly, anything else is a split-brain bug
	// surfaced loudly.
	ErrEpochConflict = errors.New("classmem: epoch already bound to different enrollment")
	// ErrEpochGap: a prepare or commit skipped ahead of published+1.
	ErrEpochGap = errors.New("classmem: epoch gap")
	// ErrNotPrepared: a commit arrived with nothing staged.
	ErrNotPrepared = errors.New("classmem: commit without a prepared enrollment")
)

// Snapshot is one published epoch of a Versioned store: immutable
// prefix views over the store's shared backing. Epoch e is by
// construction the base memory plus the first e enrollments — that
// arithmetic, not any copied state, is what lets every process
// (server, shard, oracle test) agree on exactly which classes epoch e
// contains.
type Snapshot struct {
	Epoch uint64
	// Mem is the class memory at this epoch. Its Phi tensor and Items
	// slab are zero-copy views into backing shared with later epochs;
	// the viewed prefix is immutable.
	Mem *Memory
	// Norms holds the per-row L2 norms of Mem.Phi, maintained
	// incrementally (one append per enrollment) so float backends
	// never renormalize the whole matrix on an epoch flip.
	Norms *tensor.Tensor
}

// Backend realizes the named serving backend over this epoch's memory.
// Unlike Memory.Backend, the float path reuses the incrementally
// maintained norms. For tile-cache carry-over across epochs use
// Versioned.Backend instead.
func (s *Snapshot) Backend(name string) (infer.Backend, error) {
	switch name {
	case "float":
		return infer.NewFloatBackendView(s.Mem.Phi, s.Norms, s.Mem.Labels, Temp, nil), nil
	case "binary":
		return infer.NewBinaryBackend(s.Mem.Items), nil
	case "imc":
		return infer.NewCrossbarBackend(s.Mem.Phi, s.Mem.Labels, Temp, imc.TypicalPCM()), nil
	default:
		return nil, fmt.Errorf("classmem: unknown backend %q (want float, binary, or imc)", name)
	}
}

// memorySlab is the growable backing a Versioned store appends to. The
// published prefix (rows rows) is immutable — appends only ever write
// past it, and a published Snapshot only ever views it — which is the
// entire RCU contract: readers on any epoch keep scanning exactly the
// bytes they started with, with zero added synchronization.
//
// The `slab` field grouping is load-bearing for hdclint: writes rooted
// at `.slab` must appear in a function that also calls PublishEpoch
// (the versionkeyed analyzer's epoch-store rule), so a helper that
// grows the memory but forgets the flip is a compile-time finding, not
// a stale-epoch bug in production.
type memorySlab struct {
	labels []string
	phi    []float32 // rows × dim
	norms  []float32 // rows
	words  []uint64  // rows × wpv
	rows   int
}

// pendingEnroll is the staged (prepared, WAL-durable, unpublished)
// enrollment of the two-phase flip. At most one exists, always for
// epoch published+1.
type pendingEnroll struct {
	epoch uint64
	label string
	words []uint64
}

// Versioned is the RCU-versioned class memory behind live enrollment:
// writers stage and append new class prototypes off to the side while
// readers keep querying the published snapshot lock-free, then an
// atomic pointer store flips all new probes to the next epoch — the
// same version-keyed invalidation discipline Param.Version applies to
// packed weight panels, applied to the readout side.
//
// Concurrency: any number of readers call Snapshot/Backend-derived
// queries without locks; writers (Enroll, Prepare, Commit, Compact)
// serialize on an internal mutex. Durability, when opened with a WAL
// directory, is fsync-before-publish: an enrollment is never visible
// to queries unless its WAL record is already on disk, so a crash at
// any instant restarts into exactly the pre-crash published epoch.
type Versioned struct {
	dim  int
	wpv  int
	seed int64
	base int

	cur atomic.Pointer[Snapshot]

	mu      sync.Mutex
	slab    memorySlab
	pending *pendingEnroll
	wal     *walFile // nil → in-memory only

	snapshotEvery int
	sinceSnap     int

	// prevFloat carries the last float backend built by Backend() so
	// the next epoch's backend inherits still-valid packed ϕᵀ tiles.
	prevFloat *infer.FloatBackend

	walBytes atomic.Int64
}

// NewVersioned builds an in-memory-only versioned store seeded with
// the frozen Build(classes, dim, seed) memory at epoch 0. Enrollments
// publish but do not survive a restart; OpenVersioned is the durable
// variant.
func NewVersioned(classes, dim int, seed int64) *Versioned {
	v := &Versioned{
		dim:  dim,
		wpv:  (dim + 63) / 64,
		seed: seed,
		base: classes,
	}
	v.seedBase(classes, dim, seed)
	return v
}

// seedBase adopts the frozen base memory's slices as the initial
// growable backing (appends past the frozen prefix never disturb it)
// and publishes epoch 0.
func (v *Versioned) seedBase(classes, dim int, seed int64) {
	m := Build(classes, dim, seed)
	v.mu.Lock()
	defer v.mu.Unlock()
	v.slab.labels = m.Labels
	v.slab.phi = m.Phi.Data
	v.slab.norms = tensor.RowNorms(m.Phi).Data
	v.slab.words = m.Items.Slab()
	v.slab.rows = classes
	v.PublishEpoch()
}

// PublishEpoch publishes the slab's current row prefix as the live
// snapshot. Callers hold v.mu; every slab write in this package pairs
// with a PublishEpoch call in the same function (or carries an
// explicit //hdc:allow), which hdclint's versionkeyed analyzer
// enforces.
func (v *Versioned) PublishEpoch() {
	n := v.slab.rows
	labels := v.slab.labels[:n:n]
	v.cur.Store(&Snapshot{
		Epoch: uint64(n - v.base),
		Mem: &Memory{
			Labels: labels,
			Phi:    tensor.FromSlice(v.slab.phi[:n*v.dim], n, v.dim),
			Items:  hdc.ItemMemoryFromSlab(v.dim, labels, v.slab.words[:n*v.wpv]),
		},
		Norms: tensor.FromSlice(v.slab.norms[:n:n], n),
	})
}

// Snapshot returns the live published epoch. Lock-free; safe from any
// goroutine.
func (v *Versioned) Snapshot() *Snapshot { return v.cur.Load() }

// Epoch returns the published epoch (the number of enrollments
// visible to queries).
func (v *Versioned) Epoch() uint64 { return v.cur.Load().Epoch }

// EnrolledTotal returns the number of classes enrolled beyond the
// frozen base — identical to Epoch by construction, named for the
// operator-facing /stats field.
func (v *Versioned) EnrolledTotal() uint64 { return v.Epoch() }

// WALBytes returns the current size of the enrollment WAL on disk (0
// for an in-memory store): the operator's compaction gauge.
func (v *Versioned) WALBytes() int64 { return v.walBytes.Load() }

// Base returns the frozen class count the store was seeded with.
func (v *Versioned) Base() int { return v.base }

// Dim returns the hypervector dimensionality.
func (v *Versioned) Dim() int { return v.dim }

// Pending reports the staged-but-unpublished epoch, if any — the
// state a shard advertises in its handshake so the router can re-drive
// an interrupted two-phase flip.
func (v *Versioned) Pending() (uint64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.pending == nil {
		return 0, false
	}
	return v.pending.epoch, true
}

// EnrolledRecord returns the label and packed words of the enrollment
// that produced epoch (1-based: epoch e is the e'th enrollment).
// Used for idempotency checks and router catch-up replay. The words
// slice is a read-only view into the slab.
func (v *Versioned) EnrolledRecord(epoch uint64) (string, []uint64, bool) {
	s := v.cur.Load()
	if epoch == 0 || epoch > s.Epoch {
		return "", nil, false
	}
	row := v.base + int(epoch) - 1
	return s.Mem.Labels[row], s.Mem.Items.Slab()[row*v.wpv : (row+1)*v.wpv], true
}

// Enroll appends one class prototype and publishes the next epoch in a
// single durable step (both WAL records, one fsync, then the pointer
// flip). It returns the new published epoch. This is the
// single-process path; distributed flips use Prepare/Commit.
func (v *Versioned) Enroll(label string, proto *hdc.Binary) (uint64, error) {
	if proto.Dim() != v.dim {
		return 0, fmt.Errorf("classmem: enroll dim %d, memory dim %d", proto.Dim(), v.dim)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.pending != nil {
		return 0, fmt.Errorf("%w: epoch %d staged but uncommitted", ErrEpochConflict, v.pending.epoch)
	}
	epoch := uint64(v.slab.rows-v.base) + 1
	words := append([]uint64(nil), proto.Words()...)
	if v.wal != nil {
		if err := v.wal.append(enrollRecord(epoch, label, words), commitRecord(epoch)); err != nil {
			return 0, err
		}
		v.walBytes.Store(v.wal.size)
	}
	v.applyLocked(label, words)
	return epoch, v.maybeCompactLocked()
}

// EnrollExamples bundles example bipolar vectors into a class
// prototype (majority rule, ties broken by the seeded rng — the
// paper's bundling operator) and enrolls it.
func (v *Versioned) EnrollExamples(label string, seed int64, examples ...hdc.Bipolar) (uint64, error) {
	proto, err := BundleExamples(seed, examples...)
	if err != nil {
		return 0, fmt.Errorf("classmem: enroll %q: %w", label, err)
	}
	return v.Enroll(label, proto)
}

// BundleExamples bundles example bipolar vectors into a packed class
// prototype, exactly as EnrollExamples would before enrolling — the
// client-side half for deployments that forward the bundled prototype
// to a remote class memory (the router's two-phase flip) instead of
// enrolling into a local store.
func BundleExamples(seed int64, examples ...hdc.Bipolar) (*hdc.Binary, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("bundle with no examples")
	}
	rng := rand.New(rand.NewSource(seed))
	return hdc.FromBipolar(hdc.Bundle(rng, examples...)), nil
}

// Prepare stages enrollment `epoch` (which must be published+1):
// the record is WAL-appended and fsync'd before Prepare returns, so an
// acked prepare survives any crash. Prepares are idempotent — the
// epoch number is the enroll request ID, and re-preparing an epoch
// already staged or published with identical content acks cleanly
// (failover retries never double-enroll) while different content is
// ErrEpochConflict.
func (v *Versioned) Prepare(epoch uint64, label string, proto *hdc.Binary) error {
	if proto.Dim() != v.dim {
		return fmt.Errorf("classmem: prepare dim %d, memory dim %d", proto.Dim(), v.dim)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	published := uint64(v.slab.rows - v.base)
	switch {
	case epoch == 0:
		return fmt.Errorf("%w: prepare epoch 0", ErrEpochGap)
	case epoch <= published:
		row := v.base + int(epoch) - 1
		if v.slab.labels[row] != label || !wordsEqual(v.slab.words[row*v.wpv:(row+1)*v.wpv], proto.Words()) {
			return fmt.Errorf("%w: epoch %d already published", ErrEpochConflict, epoch)
		}
		return nil
	case epoch == published+1:
		if v.pending != nil {
			if v.pending.label != label || !wordsEqual(v.pending.words, proto.Words()) {
				return fmt.Errorf("%w: epoch %d already staged", ErrEpochConflict, epoch)
			}
			return nil
		}
		words := append([]uint64(nil), proto.Words()...)
		if v.wal != nil {
			if err := v.wal.append(enrollRecord(epoch, label, words)); err != nil {
				return err
			}
			v.walBytes.Store(v.wal.size)
		}
		v.pending = &pendingEnroll{epoch: epoch, label: label, words: words}
		return nil
	default:
		return fmt.Errorf("%w: prepare epoch %d with %d published", ErrEpochGap, epoch, published)
	}
}

// Commit publishes the staged enrollment for `epoch`. Committing an
// already-published epoch is a no-op ack (idempotent, like Prepare).
func (v *Versioned) Commit(epoch uint64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	published := uint64(v.slab.rows - v.base)
	switch {
	case epoch <= published:
		return nil
	case epoch == published+1 && v.pending != nil:
		if v.wal != nil {
			if err := v.wal.append(commitRecord(epoch)); err != nil {
				return err
			}
			v.walBytes.Store(v.wal.size)
		}
		v.applyLocked(v.pending.label, v.pending.words)
		v.pending = nil
		return v.maybeCompactLocked()
	case epoch == published+1:
		return fmt.Errorf("%w: epoch %d", ErrNotPrepared, epoch)
	default:
		return fmt.Errorf("%w: commit epoch %d with %d published", ErrEpochGap, epoch, published)
	}
}

// applyLocked appends one enrolled row to every slab and publishes the
// next epoch. The phi row and its norm are derived from the packed
// words by exactly the Build construction (ToBipolar → Float32 →
// RowNorms), so a replayed or forwarded enrollment is bit-identical to
// a locally constructed one.
func (v *Versioned) applyLocked(label string, words []uint64) {
	row := hdc.BinaryFromWords(v.dim, append([]uint64(nil), words...)).ToBipolar().Float32()
	v.slab.labels = append(v.slab.labels, label)
	v.slab.phi = append(v.slab.phi, row...)
	v.slab.norms = append(v.slab.norms, tensor.RowNorms(tensor.FromSlice(row, 1, v.dim)).Data[0])
	v.slab.words = append(v.slab.words, words...)
	v.slab.rows++
	v.sinceSnap++
	v.PublishEpoch()
}

// Backend realizes the named backend over the live snapshot. The float
// path carries packed ϕᵀ tiles forward from the previous epoch's
// backend (rows are immutable, so tiles fully inside the old prefix
// stay byte-valid) — an epoch flip re-packs only ranges that grew.
func (v *Versioned) Backend(name string) (infer.Backend, error) {
	s := v.Snapshot()
	if name != "float" {
		return s.Backend(name)
	}
	v.mu.Lock()
	prev := v.prevFloat
	v.mu.Unlock()
	b := infer.NewFloatBackendView(s.Mem.Phi, s.Norms, s.Mem.Labels, Temp, prev)
	v.mu.Lock()
	v.prevFloat = b
	v.mu.Unlock()
	return b, nil
}

// Close releases the WAL file handle (the store stays queryable).
func (v *Versioned) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.wal == nil {
		return nil
	}
	err := v.wal.close()
	v.wal = nil
	return err
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
