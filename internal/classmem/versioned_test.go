package classmem

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

const (
	vtClasses = 12
	vtDim     = 256
	vtSeed    = int64(11)
)

// vtProto generates the i'th deterministic enrollment prototype — the
// same construction every test (and the chaos test's oracle) uses.
func vtProto(i int) *hdc.Binary {
	rng := rand.New(rand.NewSource(vtSeed + 1000 + int64(i)))
	bp := make(hdc.Bipolar, vtDim)
	for j := range bp {
		if rng.Intn(2) == 0 {
			bp[j] = 1
		} else {
			bp[j] = -1
		}
	}
	return hdc.FromBipolar(bp)
}

// assertBitIdentical compares two stores' published memories bit for
// bit: labels, packed words, phi floats, norms, epoch.
func assertBitIdentical(t *testing.T, got, want *Versioned) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if gs.Epoch != ws.Epoch {
		t.Fatalf("epoch %d, want %d", gs.Epoch, ws.Epoch)
	}
	if len(gs.Mem.Labels) != len(ws.Mem.Labels) {
		t.Fatalf("%d labels, want %d", len(gs.Mem.Labels), len(ws.Mem.Labels))
	}
	for i := range gs.Mem.Labels {
		if gs.Mem.Labels[i] != ws.Mem.Labels[i] {
			t.Fatalf("label %d: %q, want %q", i, gs.Mem.Labels[i], ws.Mem.Labels[i])
		}
	}
	gw, ww := gs.Mem.Items.Slab(), ws.Mem.Items.Slab()
	if len(gw) != len(ww) {
		t.Fatalf("%d slab words, want %d", len(gw), len(ww))
	}
	for i := range gw {
		if gw[i] != ww[i] {
			t.Fatalf("slab word %d: %#x, want %#x", i, gw[i], ww[i])
		}
	}
	gp, wp := gs.Mem.Phi.Data, ws.Mem.Phi.Data
	if len(gp) != len(wp) {
		t.Fatalf("%d phi floats, want %d", len(gp), len(wp))
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("phi[%d]: %v, want %v", i, gp[i], wp[i])
		}
	}
	for i := range gs.Norms.Data {
		if gs.Norms.Data[i] != ws.Norms.Data[i] {
			t.Fatalf("norm[%d]: %v, want %v", i, gs.Norms.Data[i], ws.Norms.Data[i])
		}
	}
}

// The satellite property test: a durable store that enrolled k classes
// (crossing a compaction boundary on the way), crashed, and replayed
// its snapshot + WAL is bit-identical to direct construction — the
// same base Build with the same k prototypes enrolled in-memory.
func TestVersionedWALReplayBitIdentical(t *testing.T) {
	const k = 7
	dir := t.TempDir()
	// snapshotEvery=3 so enrollments land on both sides of a compaction.
	v, err := OpenVersioned(dir, vtClasses, vtDim, vtSeed, 3)
	if err != nil {
		t.Fatal(err)
	}
	direct := NewVersioned(vtClasses, vtDim, vtSeed)
	for i := 0; i < k; i++ {
		label := "enrolled-" + string(rune('a'+i))
		ep, err := v.Enroll(label, vtProto(i))
		if err != nil {
			t.Fatal(err)
		}
		if ep != uint64(i+1) {
			t.Fatalf("enroll %d returned epoch %d", i, ep)
		}
		if _, err := direct.Enroll(label, vtProto(i)); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": drop the handle without any orderly shutdown.
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenVersioned(dir, vtClasses, vtDim, vtSeed, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertBitIdentical(t, re, direct)
	if re.Epoch() != k {
		t.Fatalf("replayed epoch %d, want %d", re.Epoch(), k)
	}

	// The replayed store keeps enrolling from where it left off.
	if ep, err := re.Enroll("post-replay", vtProto(k)); err != nil || ep != k+1 {
		t.Fatalf("post-replay enroll: epoch %d, err %v", ep, err)
	}
}

// Torn-write recovery: a WAL whose tail record is cut mid-frame must
// replay cleanly to the last complete record, and a lost commit frame
// must come back as a staged (prepared, unpublished) enrollment.
func TestVersionedWALTornTail(t *testing.T) {
	const k = 4
	dir := t.TempDir()
	v, err := OpenVersioned(dir, vtClasses, vtDim, vtSeed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := v.Enroll("torn-"+string(rune('a'+i)), vtProto(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the final frame (the commit of epoch k): the enrollment
	// was prepared and fsync'd but its publish never hit the disk.
	if err := os.WriteFile(walPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenVersioned(dir, vtClasses, vtDim, vtSeed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Epoch() != k-1 {
		t.Fatalf("epoch after torn commit: %d, want %d", re.Epoch(), k-1)
	}
	if ep, ok := re.Pending(); !ok || ep != k {
		t.Fatalf("pending after torn commit: (%d, %v), want (%d, true)", ep, ok, k)
	}
	// Committing the restored stage completes the interrupted flip.
	if err := re.Commit(k); err != nil {
		t.Fatal(err)
	}
	if re.Epoch() != k {
		t.Fatalf("epoch after commit: %d, want %d", re.Epoch(), k)
	}
	re.Close()

	// Now cut mid-way into an enroll frame: replay must stop before it
	// and the torn bytes must be gone so appends resume cleanly.
	raw, err = os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenVersioned(dir, vtClasses, vtDim, vtSeed, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Epoch() >= k {
		t.Fatalf("epoch after mid-file truncation: %d, want < %d", re2.Epoch(), k)
	}
	if _, err := re2.Enroll("resume", vtProto(9)); err != nil {
		t.Fatal(err)
	}
}

// The two-phase primitives: epoch numbers are idempotent request IDs —
// duplicate prepares/commits ack, conflicting content errors, gaps
// error.
func TestVersionedPrepareCommit(t *testing.T) {
	v := NewVersioned(vtClasses, vtDim, vtSeed)
	p0, p1 := vtProto(0), vtProto(1)

	if err := v.Prepare(1, "x", p0); err != nil {
		t.Fatal(err)
	}
	if err := v.Prepare(1, "x", p0); err != nil {
		t.Fatalf("duplicate prepare: %v", err)
	}
	if err := v.Prepare(1, "y", p1); !errors.Is(err, ErrEpochConflict) {
		t.Fatalf("conflicting prepare: %v", err)
	}
	if err := v.Prepare(3, "z", p1); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("gapped prepare: %v", err)
	}
	if err := v.Commit(2); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("gapped commit: %v", err)
	}
	if v.Epoch() != 0 {
		t.Fatalf("published before commit: epoch %d", v.Epoch())
	}
	if err := v.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(1); err != nil {
		t.Fatalf("duplicate commit: %v", err)
	}
	if v.Epoch() != 1 {
		t.Fatalf("epoch %d after commit", v.Epoch())
	}
	// Re-prepare of a published epoch: same content acks, different errors.
	if err := v.Prepare(1, "x", p0); err != nil {
		t.Fatalf("re-prepare published: %v", err)
	}
	if err := v.Prepare(1, "x", p1); !errors.Is(err, ErrEpochConflict) {
		t.Fatalf("re-prepare published with different proto: %v", err)
	}
	if err := v.Commit(2); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("commit without prepare: %v", err)
	}
}

// The RCU contract: a snapshot taken before enrollments keeps serving
// its exact pre-enrollment bytes, and backends built from old and new
// epochs rank identically over the shared prefix.
func TestVersionedSnapshotImmutable(t *testing.T) {
	v := NewVersioned(vtClasses, vtDim, vtSeed)
	old := v.Snapshot()
	oldWords := append([]uint64(nil), old.Mem.Items.Slab()...)
	oldPhi := append([]float32(nil), old.Mem.Phi.Data...)

	oldBe, err := old.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	oldEng := infer.New(oldBe, infer.WithWorkers(2), infer.WithEpoch(old.Epoch))
	probe := tensor.New(3, vtDim)
	rng := rand.New(rand.NewSource(99))
	for i := range probe.Data {
		probe.Data[i] = float32(rng.NormFloat64())
	}
	wantOld, err := oldEng.TryQuery(infer.DenseBatch(probe), 3)
	if err != nil {
		t.Fatal(err)
	}

	// Populate the store-built backend's tile cache pre-enrollment so
	// the post-enrollment Backend call exercises real carry-over.
	warm, err := v.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := infer.New(warm, infer.WithWorkers(2)).TryQuery(infer.DenseBatch(probe), 3); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		if _, err := v.Enroll("grow-"+string(rune('a'+i)), vtProto(i)); err != nil {
			t.Fatal(err)
		}
	}

	if old.Mem.Items.Len() != vtClasses || old.Mem.Phi.Dim(0) != vtClasses {
		t.Fatalf("old snapshot grew: %d items", old.Mem.Items.Len())
	}
	for i, w := range old.Mem.Items.Slab() {
		if w != oldWords[i] {
			t.Fatalf("old snapshot word %d changed", i)
		}
	}
	for i, f := range old.Mem.Phi.Data {
		if f != oldPhi[i] {
			t.Fatalf("old snapshot phi[%d] changed", i)
		}
	}
	// Old engine still serves the old ranking, byte-identical.
	again, err := oldEng.TryQuery(infer.DenseBatch(probe), 3)
	if err != nil {
		t.Fatal(err)
	}
	for p := range wantOld {
		for i := range wantOld[p].TopK {
			if again[p].TopK[i] != wantOld[p].TopK[i] {
				t.Fatalf("old engine ranking changed at probe %d hit %d", p, i)
			}
		}
	}

	// The grown float backend (with tile carry-over) must agree with a
	// fresh no-carry backend over the new epoch — and with the binary
	// path's prefix math: epoch arithmetic says base+5 classes.
	s := v.Snapshot()
	if s.Epoch != 5 || s.Mem.Items.Len() != vtClasses+5 {
		t.Fatalf("new snapshot: epoch %d, %d items", s.Epoch, s.Mem.Items.Len())
	}
	carried, err := v.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	ec := infer.New(carried, infer.WithWorkers(2))
	ef := infer.New(fresh, infer.WithWorkers(2))
	rc, err := ec.TryQuery(infer.DenseBatch(probe), 4)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := ef.TryQuery(infer.DenseBatch(probe), 4)
	if err != nil {
		t.Fatal(err)
	}
	for p := range rc {
		for i := range rc[p].TopK {
			if rc[p].TopK[i] != rf[p].TopK[i] {
				t.Fatalf("carried vs fresh backend differ at probe %d hit %d: %+v vs %+v",
					p, i, rc[p].TopK[i], rf[p].TopK[i])
			}
		}
	}
}
