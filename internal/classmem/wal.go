// Enrollment durability: a length-prefixed, CRC-framed write-ahead log
// fsync'd before every epoch publish, plus a periodic compacted
// snapshot so the WAL stays short-lived. The on-disk unit is the
// enrollment record (epoch, label, packed prototype words) — phi rows
// and norms are *derived* state, recomputed on replay by exactly the
// Build construction, so a replayed memory is bit-identical to the
// pre-crash one by construction rather than by copying floats around.
//
// WAL frame:    u32 payloadLen | u32 crc32(payload) | payload
// enroll body:  u8 kind=1 | u64 epoch | u16 labelLen | label | u32 nwords | nwords×u64
// commit body:  u8 kind=2 | u64 epoch
//
// All integers little-endian. A prepare appends (and fsyncs) an enroll
// record; the publish appends a commit record. Replay stages an enroll
// without its commit (the two-phase flip's prepared state) and applies
// enroll+commit pairs in order. Any torn tail — short frame, CRC
// mismatch, or implausible length — is truncated to the last complete
// record: exactly the write that was in flight when the process died.
//
// Snapshot file (classmem.snap, written atomically via rename):
// "HDCMSNP1" | u32 dim | u32 base | u64 seed | u64 epoch |
// epoch × (u16 labelLen | label | wpv×u64) | u32 crc32(all prior bytes)

package classmem

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

const (
	walName  = "classmem.wal"
	snapName = "classmem.snap"

	walKindEnroll = 1
	walKindCommit = 2

	// maxWALRecord bounds a frame's payload length during replay so a
	// corrupt length prefix cannot trigger a giant allocation; sized
	// far above any real record (label ≤ 64KiB, dim ≤ 1M bits).
	maxWALRecord = 1 << 20
)

var snapMagic = [8]byte{'H', 'D', 'C', 'M', 'S', 'N', 'P', '1'}

// enrollRecord builds the WAL payload staging `epoch`.
func enrollRecord(epoch uint64, label string, words []uint64) []byte {
	p := make([]byte, 0, 1+8+2+len(label)+4+8*len(words))
	p = append(p, walKindEnroll)
	p = binary.LittleEndian.AppendUint64(p, epoch)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(label)))
	p = append(p, label...)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(words)))
	for _, w := range words {
		p = binary.LittleEndian.AppendUint64(p, w)
	}
	return p
}

// commitRecord builds the WAL payload publishing `epoch`.
func commitRecord(epoch uint64) []byte {
	p := make([]byte, 0, 1+8)
	p = append(p, walKindCommit)
	return binary.LittleEndian.AppendUint64(p, epoch)
}

// walFile is the open append handle. Writers hold Versioned.mu.
type walFile struct {
	f    *os.File
	size int64
}

// append frames and writes the payloads in one contiguous write, then
// fsyncs once — the durability point every publish orders after.
func (w *walFile) append(payloads ...[]byte) error {
	var buf []byte
	for _, p := range payloads {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(p))
		buf = append(buf, p...)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("classmem: wal write: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("classmem: wal fsync: %w", err)
	}
	w.size += int64(len(buf))
	return nil
}

// reset truncates the WAL after a snapshot has made its records
// redundant. A crash between the snapshot rename and this truncate is
// safe: replay skips records at or below the snapshot's epoch.
func (w *walFile) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	return nil
}

func (w *walFile) close() error { return w.f.Close() }

// OpenVersioned opens (or creates) a durable versioned store in dir:
// the frozen Build(classes, dim, seed) base, plus the compacted
// snapshot, plus the WAL tail, replayed in order — restarting into
// exactly the pre-crash published epoch, with any prepared-but-
// uncommitted enrollment restored to its staged state. snapshotEvery
// compacts the WAL into the snapshot after that many commits (0 →
// never).
func OpenVersioned(dir string, classes, dim int, seed int64, snapshotEvery int) (*Versioned, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("classmem: wal dir: %w", err)
	}
	v := &Versioned{
		dim:           dim,
		wpv:           (dim + 63) / 64,
		seed:          seed,
		base:          classes,
		snapshotEvery: snapshotEvery,
	}
	v.seedBase(classes, dim, seed)
	if err := v.loadSnapshot(filepath.Join(dir, snapName)); err != nil {
		return nil, err
	}
	v.sinceSnap = 0
	if err := v.replayWAL(filepath.Join(dir, walName)); err != nil {
		return nil, err
	}
	return v, nil
}

// loadSnapshot applies the compacted snapshot, if present.
func (v *Versioned) loadSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("classmem: snapshot: %w", err)
	}
	if len(raw) < 8+4+4+8+8+4 {
		return fmt.Errorf("classmem: snapshot %s: truncated header", path)
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fmt.Errorf("classmem: snapshot %s: checksum mismatch", path)
	}
	if [8]byte(body[:8]) != snapMagic {
		return fmt.Errorf("classmem: snapshot %s: bad magic", path)
	}
	r := body[8:]
	dim := binary.LittleEndian.Uint32(r)
	base := binary.LittleEndian.Uint32(r[4:])
	seed := int64(binary.LittleEndian.Uint64(r[8:]))
	epoch := binary.LittleEndian.Uint64(r[16:])
	if int(dim) != v.dim || int(base) != v.base || seed != v.seed {
		return fmt.Errorf("classmem: snapshot %s: built for (classes=%d dim=%d seed=%d), store is (classes=%d dim=%d seed=%d)",
			path, base, dim, seed, v.base, v.dim, v.seed)
	}
	r = r[24:]
	v.mu.Lock()
	defer v.mu.Unlock()
	for e := uint64(0); e < epoch; e++ {
		if len(r) < 2 {
			return fmt.Errorf("classmem: snapshot %s: truncated at enrollment %d", path, e+1)
		}
		ll := int(binary.LittleEndian.Uint16(r))
		r = r[2:]
		if len(r) < ll+8*v.wpv {
			return fmt.Errorf("classmem: snapshot %s: truncated at enrollment %d", path, e+1)
		}
		label := string(r[:ll])
		r = r[ll:]
		words := make([]uint64, v.wpv)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(r[8*i:])
		}
		r = r[8*v.wpv:]
		v.applyLocked(label, words)
	}
	if len(r) != 0 {
		return fmt.Errorf("classmem: snapshot %s: %d trailing bytes", path, len(r))
	}
	return nil
}

// replayWAL opens the WAL for appending, applying every complete
// record and truncating any torn tail.
func (v *Versioned) replayWAL(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("classmem: wal: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("classmem: wal: %w", err)
	}
	v.mu.Lock()
	off := 0
	for {
		rec, n := nextWALRecord(raw[off:])
		if rec == nil {
			break
		}
		if err := v.replayRecordLocked(rec); err != nil {
			v.mu.Unlock()
			f.Close()
			return fmt.Errorf("classmem: wal %s at offset %d: %w", path, off, err)
		}
		off += n
	}
	v.mu.Unlock()
	if off != len(raw) {
		// Torn tail: the record in flight at crash time. Truncate to the
		// last complete record so appends resume from a clean frame.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return fmt.Errorf("classmem: wal truncate: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("classmem: wal: %w", err)
	}
	v.mu.Lock()
	v.wal = &walFile{f: f, size: int64(off)}
	v.mu.Unlock()
	v.walBytes.Store(int64(off))
	return nil
}

// nextWALRecord parses one frame, returning (payload, frameLen) or
// (nil, 0) when the buffer holds no complete valid frame — the torn-
// tail signal.
func nextWALRecord(buf []byte) ([]byte, int) {
	if len(buf) < 8 {
		return nil, 0
	}
	n := int(binary.LittleEndian.Uint32(buf))
	sum := binary.LittleEndian.Uint32(buf[4:])
	if n == 0 || n > maxWALRecord || len(buf) < 8+n {
		return nil, 0
	}
	p := buf[8 : 8+n]
	if crc32.ChecksumIEEE(p) != sum {
		return nil, 0
	}
	return p, 8 + n
}

// replayRecordLocked applies one WAL payload, reproducing the exact
// prepare/commit state machine the live path runs.
func (v *Versioned) replayRecordLocked(p []byte) error {
	if len(p) < 9 {
		return fmt.Errorf("record too short (%d bytes)", len(p))
	}
	kind, epoch := p[0], binary.LittleEndian.Uint64(p[1:])
	published := uint64(v.slab.rows - v.base)
	switch kind {
	case walKindEnroll:
		if epoch <= published {
			return nil // compacted into the snapshot already
		}
		if epoch != published+1 {
			return fmt.Errorf("%w: enroll epoch %d with %d published", ErrEpochGap, epoch, published)
		}
		r := p[9:]
		if len(r) < 2 {
			return fmt.Errorf("enroll record truncated")
		}
		ll := int(binary.LittleEndian.Uint16(r))
		r = r[2:]
		if len(r) < ll+4 {
			return fmt.Errorf("enroll record truncated")
		}
		label := string(r[:ll])
		r = r[ll:]
		nw := int(binary.LittleEndian.Uint32(r))
		r = r[4:]
		if nw != v.wpv || len(r) != 8*nw {
			return fmt.Errorf("enroll record: %d words, want %d", nw, v.wpv)
		}
		words := make([]uint64, nw)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(r[8*i:])
		}
		v.pending = &pendingEnroll{epoch: epoch, label: label, words: words}
		return nil
	case walKindCommit:
		if epoch <= published {
			return nil
		}
		if v.pending == nil || v.pending.epoch != epoch {
			return fmt.Errorf("%w: commit epoch %d", ErrNotPrepared, epoch)
		}
		v.applyLocked(v.pending.label, v.pending.words)
		v.pending = nil
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
}

// maybeCompactLocked writes a compacted snapshot and truncates the WAL
// once snapshotEvery commits have accumulated since the last one.
func (v *Versioned) maybeCompactLocked() error {
	if v.wal == nil || v.snapshotEvery <= 0 || v.sinceSnap < v.snapshotEvery {
		return nil
	}
	return v.compactLocked()
}

// Compact forces a snapshot + WAL truncation now (no-op for in-memory
// stores). Exposed for shutdown hooks and tests; the periodic path is
// snapshotEvery.
func (v *Versioned) Compact() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.wal == nil {
		return nil
	}
	return v.compactLocked()
}

func (v *Versioned) compactLocked() error {
	dir := filepath.Dir(v.wal.f.Name())
	epoch := uint64(v.slab.rows - v.base)
	body := make([]byte, 0, 8+24+int(epoch)*(2+16+8*v.wpv))
	body = append(body, snapMagic[:]...)
	body = binary.LittleEndian.AppendUint32(body, uint32(v.dim))
	body = binary.LittleEndian.AppendUint32(body, uint32(v.base))
	body = binary.LittleEndian.AppendUint64(body, uint64(v.seed))
	body = binary.LittleEndian.AppendUint64(body, epoch)
	for row := v.base; row < v.slab.rows; row++ {
		label := v.slab.labels[row]
		body = binary.LittleEndian.AppendUint16(body, uint16(len(label)))
		body = append(body, label...)
		for _, w := range v.slab.words[row*v.wpv : (row+1)*v.wpv] {
			body = binary.LittleEndian.AppendUint64(body, w)
		}
	}
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))

	tmp := filepath.Join(dir, snapName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("classmem: snapshot: %w", err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return fmt.Errorf("classmem: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("classmem: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("classmem: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		return fmt.Errorf("classmem: snapshot rename: %w", err)
	}
	syncDir(dir)
	if err := v.wal.reset(); err != nil {
		return fmt.Errorf("classmem: wal reset: %w", err)
	}
	v.walBytes.Store(0)
	v.sinceSnap = 0
	return nil
}

// syncDir best-effort fsyncs a directory so the snapshot rename is
// durable; filesystems that reject directory fsync are tolerated.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
