package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/attrenc"
	"repro/internal/dataset"
	"repro/internal/imc"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSimilarityKernelForwardValues(t *testing.T) {
	k := NewSimilarityKernel(0.5)
	x := tensor.FromSlice([]float32{1, 0, 0, 1}, 2, 2) // unit rows
	p := tensor.FromSlice([]float32{2, 0}, 1, 2)       // parallel to row 0
	logits := k.Forward(x, p)
	// cos(row0, p) = 1 → logit 1/0.5 = 2 ; cos(row1, p) = 0 → 0.
	if math.Abs(float64(logits.At(0, 0))-2) > 1e-5 || math.Abs(float64(logits.At(1, 0))) > 1e-5 {
		t.Fatalf("kernel logits wrong: %v", logits.Data)
	}
}

func TestSimilarityKernelGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 3, 6)
	p := tensor.Randn(rng, 1, 4, 6)
	k := NewSimilarityKernel(0.7)
	cot := tensor.RandUniform(rng, -1, 1, 3, 4)

	loss := func() float32 {
		kk := NewSimilarityKernel(k.K.Value.Data[0])
		out := kk.Forward(x, p)
		var s float64
		for i := range out.Data {
			s += float64(out.Data[i]) * float64(cot.Data[i])
		}
		return float32(s)
	}

	k.Forward(x, p)
	dx, dp := k.Backward(cot)

	check := func(name string, tens *tensor.Tensor, analytic *tensor.Tensor) {
		for trial := 0; trial < 10; trial++ {
			i := rng.Intn(tens.Len())
			orig := tens.Data[i]
			const eps = 1e-2
			tens.Data[i] = orig + eps
			up := loss()
			tens.Data[i] = orig - eps
			down := loss()
			tens.Data[i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(float64(analytic.Data[i]-want)) > 0.02*math.Max(1, math.Abs(float64(want))) {
				t.Errorf("%s grad[%d] = %v, numeric %v", name, i, analytic.Data[i], want)
			}
		}
	}
	check("x", x, dx)
	check("p", p, dp)

	// Temperature gradient.
	orig := k.K.Value.Data[0]
	const eps = 1e-3
	k.K.Value.Data[0] = orig + eps
	up := loss()
	k.K.Value.Data[0] = orig - eps
	down := loss()
	k.K.Value.Data[0] = orig
	want := (up - down) / (2 * eps)
	if math.Abs(float64(k.K.Grad.Data[0]-want)) > 0.02*math.Max(1, math.Abs(float64(want))) {
		t.Fatalf("dK = %v, numeric %v", k.K.Grad.Data[0], want)
	}
}

func TestSimilarityKernelZeroRowSafe(t *testing.T) {
	k := NewSimilarityKernel(1)
	x := tensor.New(2, 4) // row 0 all zeros
	x.Set(1, 1, 0)
	p := tensor.Ones(3, 4)
	logits := k.Forward(x, p)
	if logits.HasNaN() {
		t.Fatal("zero-norm embedding produced NaN logits")
	}
	dx, dp := k.Backward(tensor.Ones(2, 3))
	if dx.HasNaN() || dp.HasNaN() {
		t.Fatal("zero-norm embedding produced NaN gradients")
	}
}

func TestClampTemperature(t *testing.T) {
	k := NewSimilarityKernel(1)
	k.K.Value.Data[0] = -5
	k.ClampTemperature(0.01, 10)
	if k.Temperature() != 0.01 {
		t.Fatalf("clamp low failed: %v", k.Temperature())
	}
	k.K.Value.Data[0] = float32(math.NaN())
	k.ClampTemperature(0.01, 10)
	if k.Temperature() != 0.01 {
		t.Fatalf("NaN clamp failed: %v", k.Temperature())
	}
}

func TestImageEncoderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := NewImageEncoder(rng, nn.MicroResNet50Config(4), 32)
	if enc.OutDim() != 32 {
		t.Fatalf("OutDim = %d, want 32 (projection)", enc.OutDim())
	}
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	y := enc.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 32 {
		t.Fatalf("encoder output %v", y.Shape())
	}
	// Without projection, d = backbone d′.
	enc2 := NewImageEncoder(rng, nn.MicroResNet50Config(4), 0)
	if enc2.OutDim() != 4*8*4 {
		t.Fatalf("no-proj OutDim = %d", enc2.OutDim())
	}
}

func TestFreezeBackboneKeepsProjTrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := NewImageEncoder(rng, nn.MicroResNet50Config(4), 16)
	enc.FreezeBackbone()
	for _, p := range enc.Backbone.Params() {
		if !p.Frozen {
			t.Fatal("backbone param not frozen")
		}
	}
	for _, p := range enc.Proj.Params() {
		if p.Frozen {
			t.Fatal("projection frozen by FreezeBackbone")
		}
	}
	enc.UnfreezeBackbone()
	if enc.Backbone.Params()[0].Frozen {
		t.Fatal("unfreeze failed")
	}
}

func TestModelDimensionMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	img := NewImageEncoder(rng, nn.MicroResNet50Config(4), 16)
	schema := dataset.NewCUBSchema()
	enc := attrenc.NewHDCEncoder(rng, schema, 32) // wrong d
	defer func() {
		if recover() == nil {
			t.Fatal("NewModel accepted mismatched dimensions")
		}
	}()
	NewModel(img, enc, NewSimilarityKernel(1))
}

// tinyData builds a small dataset whose attribute structure is easy to
// learn, for end-to-end trainer tests.
func tinyData(seed int64) (*dataset.SynthCUB, dataset.Split) {
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = 12
	cfg.ImagesPerClass = 6
	cfg.Height, cfg.Width = 12, 12
	cfg.AttrNoise = 0.02
	cfg.PixelNoise = 0.02
	cfg.Seed = seed
	d := dataset.Generate(cfg)
	rng := rand.New(rand.NewSource(seed + 50))
	return d, d.ZSSplit(rng, 2.0/3)
}

func tinyPipeline(seed int64) PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.Backbone = nn.MicroResNet50Config(4)
	cfg.Backbone.Name = "ResNet50"
	cfg.ProjDim = 48
	cfg.MLPHidden = 32
	cfg.Seed = seed
	cfg.PhaseI.Epochs = 2
	cfg.PhaseII.Epochs = 4
	cfg.PhaseIII.Epochs = 4
	return cfg
}

func TestPipelineBeatsChanceOnUnseenClasses(t *testing.T) {
	d, split := tinyData(7)
	cfg := tinyPipeline(7)
	_, res := cfg.Run(d, split, nil)
	chance := 1.0 / float64(len(split.TestClasses))
	if res.Eval.Top1 <= chance {
		t.Fatalf("zero-shot top-1 %.3f not above chance %.3f", res.Eval.Top1, chance)
	}
	if res.Eval.Top5 < res.Eval.Top1 {
		t.Fatalf("top-5 (%v) below top-1 (%v)", res.Eval.Top5, res.Eval.Top1)
	}
	if res.ParamCount <= 0 {
		t.Fatal("param count not reported")
	}
}

func TestPipelineDeterministicUnderSeed(t *testing.T) {
	d, split := tinyData(8)
	cfg := tinyPipeline(8)
	cfg.PhaseII.Epochs, cfg.PhaseIII.Epochs = 1, 1
	_, a := cfg.Run(d, split, nil)
	_, b := cfg.Run(d, split, nil)
	if a.Eval.Top1 != b.Eval.Top1 || a.PhaseIIILoss != b.PhaseIIILoss {
		t.Fatalf("pipeline not deterministic: %v vs %v", a, b)
	}
}

func TestMLPEncoderVariantRuns(t *testing.T) {
	d, split := tinyData(9)
	cfg := tinyPipeline(9)
	cfg.Encoder = "MLP"
	model, res := cfg.Run(d, split, nil)
	if model.Attr.Name() != "MLP" {
		t.Fatal("MLP encoder not selected")
	}
	if len(model.Attr.Params()) == 0 {
		t.Fatal("MLP encoder reports no trainable params")
	}
	if res.Eval.Top1 < 0 || res.Eval.Top1 > 1 {
		t.Fatalf("bad accuracy %v", res.Eval.Top1)
	}
	// The MLP variant must cost more parameters than the HDC variant —
	// the core of the paper's efficiency claim.
	cfgHDC := tinyPipeline(9)
	hdcModel, _ := cfgHDC.Build(d.Schema)
	if model.ParamCount() <= hdcModel.ParamCount() {
		t.Fatalf("MLP model (%d params) not larger than HDC model (%d)",
			model.ParamCount(), hdcModel.ParamCount())
	}
}

func TestHDCEncoderContributesZeroParams(t *testing.T) {
	d, _ := tinyData(10)
	cfg := tinyPipeline(10)
	model, _ := cfg.Build(d.Schema)
	for _, p := range model.Attr.Params() {
		t.Fatalf("HDC encoder has unexpected trainable param %s", p.Name)
	}
	_ = model
}

func TestPhaseIIIFreezesBackbone(t *testing.T) {
	d, split := tinyData(11)
	cfg := tinyPipeline(11)
	model, hdcEnc := cfg.Build(d.Schema)
	_ = hdcEnc
	before := model.Image.Backbone.Params()[0].Value.Clone()
	cfg3 := cfg.PhaseIII
	cfg3.Epochs = 2
	TrainZSC(model, d, split, cfg3)
	after := model.Image.Backbone.Params()[0].Value
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("backbone changed during phase III")
		}
	}
	// And it must be unfrozen again afterwards.
	if model.Image.Backbone.Params()[0].Frozen {
		t.Fatal("backbone left frozen after TrainZSC")
	}
}

func TestTrainAttributeExtractionReducesLoss(t *testing.T) {
	d, split := tinyData(12)
	cfg := tinyPipeline(12)
	model, hdcEnc := cfg.Build(d.Schema)
	short := cfg.PhaseII
	short.Epochs = 1
	first := TrainAttributeExtraction(model.Image, model.Kernel, hdcEnc.Dictionary(), d, split, short)
	longer := cfg.PhaseII
	longer.Epochs = 5
	model2, hdcEnc2 := cfg.Build(d.Schema)
	last := TrainAttributeExtraction(model2.Image, model2.Kernel, hdcEnc2.Dictionary(), d, split, longer)
	if last >= first {
		t.Fatalf("more phase-II training did not reduce loss: %v → %v", first, last)
	}
}

func TestAttributeScoresShapes(t *testing.T) {
	d, split := tinyData(13)
	cfg := tinyPipeline(13)
	model, hdcEnc := cfg.Build(d.Schema)
	scores, targets := AttributeScores(model.Image, model.Kernel, hdcEnc.Dictionary(), d, split.Test[:5])
	if scores.Dim(0) != 5 || scores.Dim(1) != d.Schema.Alpha() {
		t.Fatalf("scores shape %v", scores.Shape())
	}
	if !targets.SameShape(scores) {
		t.Fatal("targets shape mismatch")
	}
	// Targets must be the instances' binary attributes.
	var ones int
	for _, v := range targets.Data {
		if v == 1 {
			ones++
		}
	}
	if ones != 5*d.Schema.NumGroups() {
		t.Fatalf("targets have %d active attrs, want %d", ones, 5*d.Schema.NumGroups())
	}
}

func TestPretrainClassificationLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	img := NewImageEncoder(rng, nn.MicroResNet50Config(4), 32)
	data := dataset.GenerateImageNet(4, 8, 12, 12, 3)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	acc := PretrainClassification(img, data, cfg)
	if acc <= 0.3 { // chance = 0.25
		t.Fatalf("phase I accuracy %.3f not above chance", acc)
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	mean, std := RunSeeds([]int64{1, 2, 3}, func(s int64) float64 { return float64(s) })
	if mean != 2 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-1) > 1e-9 {
		t.Fatalf("std = %v", std)
	}
}

func TestFormatMuSigma(t *testing.T) {
	if got := FormatMuSigma(0.638, 0.012); got != "63.8 ± 1.2" {
		t.Fatalf("FormatMuSigma = %q", got)
	}
}

func TestEvalGZSLHarmonic(t *testing.T) {
	d, split := tinyData(20)
	cfg := tinyPipeline(20)
	cfg.PhaseII.Epochs, cfg.PhaseIII.Epochs = 2, 2
	model, _ := cfg.Run(d, split, nil)
	res := EvalGZSL(model, d, split, split.Train)
	if res.SeenAcc < 0 || res.SeenAcc > 1 || res.UnseenAcc < 0 || res.UnseenAcc > 1 {
		t.Fatalf("GZSL accuracies out of range: %+v", res)
	}
	if res.Harmonic > res.SeenAcc+res.UnseenAcc {
		t.Fatalf("harmonic mean exceeds components: %+v", res)
	}
	// Harmonic mean formula.
	if res.SeenAcc > 0 && res.UnseenAcc > 0 {
		want := 2 * res.SeenAcc * res.UnseenAcc / (res.SeenAcc + res.UnseenAcc)
		if math.Abs(res.Harmonic-want) > 1e-12 {
			t.Fatalf("harmonic = %v, want %v", res.Harmonic, want)
		}
	}
}

func TestEvalGZSLWithoutSeenHoldout(t *testing.T) {
	d, split := tinyData(21)
	cfg := tinyPipeline(21)
	model, _ := cfg.Build(d.Schema)
	res := EvalGZSL(model, d, split, nil)
	if res.SeenAcc != 0 {
		t.Fatal("seen accuracy should be 0 without a holdout")
	}
	if res.Harmonic != 0 {
		t.Fatal("harmonic must be 0 when one side is missing")
	}
}

// A degenerate split with no candidate classes must report zeros cleanly
// instead of reaching the inference engine with an empty class memory
// (which would surface as infer.ErrNoClasses / a panic).
func TestEvalDegenerateEmptySplit(t *testing.T) {
	d, _ := tinyData(22)
	cfg := tinyPipeline(22)
	model, _ := cfg.Build(d.Schema)
	var empty dataset.Split
	if res := EvalGZSL(model, d, empty, nil); res != (GZSLResult{}) {
		t.Fatalf("EvalGZSL on empty split = %+v, want zeros", res)
	}
	if res := EvalZSC(model, d, empty); res != (ZSCResult{}) {
		t.Fatalf("EvalZSC on empty split = %+v, want zeros", res)
	}
}

// TestQuantizedEvalWithinHalfPoint pins the accuracy contract of the
// quantized compiled path on the evaluation harnesses behind the
// paper's tables: with the int8 plan installed (CompiledInt8, scales
// calibrated on a training batch), seeded ZSC top-1/top-5 and GZSL
// seen/unseen/harmonic all stay within 0.5 accuracy points of the f32
// compiled readout. Every quantity here is deterministic — seeded
// training, bitwise-deterministic f32 and int8 plans — so the deltas
// are exact, not flaky margins.
func TestQuantizedEvalWithinHalfPoint(t *testing.T) {
	// Enough images per class that half a point is a meaningful budget:
	// 4 test classes × 18 = 72 unseen instances, 144 seen-holdout.
	dcfg := dataset.DefaultConfig()
	dcfg.NumClasses = 12
	dcfg.ImagesPerClass = 18
	dcfg.Height, dcfg.Width = 12, 12
	dcfg.AttrNoise = 0.02
	dcfg.PixelNoise = 0.02
	dcfg.Seed = 33
	d := dataset.Generate(dcfg)
	split := d.ZSSplit(rand.New(rand.NewSource(83)), 2.0/3)
	// Train to real margins: a barely-above-chance model puts most eval
	// samples on a knife edge where any rounding flips the argmax; the
	// 0.5 pt budget is a statement about a converged model.
	cfg := tinyPipeline(33)
	cfg.ProjDim = 96
	cfg.PhaseII.Epochs = 8
	cfg.PhaseIII.Epochs = 10
	model, _ := cfg.Run(d, split, nil)

	zF := EvalZSC(model, d, split)
	gF := EvalGZSL(model, d, split, split.Train)

	// Calibrate on a training batch at the serving geometry and install
	// the quantized plan; the evaluation readout switches to int8.
	// 64 calibration samples: activation ranges tighten noticeably
	// between 32 and 64 samples on this workload (a 32-sample batch
	// under-covers the late-layer ranges and costs an argmax flip).
	calib := d.MakeBatch(split.Train[:64], dataset.ClassIndexMap(split.TrainClasses), nil, nil)
	q, err := model.Image.CompiledInt8(calib.Images)
	if err != nil {
		t.Fatal(err)
	}
	if model.Image.EvalNet() != q {
		t.Fatal("CompiledInt8 did not switch the evaluation readout")
	}
	zQ := EvalZSC(model, d, split)
	gQ := EvalGZSL(model, d, split, split.Train)

	pts := func(name string, f32, int8 float64) {
		if d := math.Abs(f32-int8) * 100; d > 0.5 {
			t.Errorf("%s: int8 %.4f vs f32 %.4f — delta %.2f pt exceeds 0.5", name, int8, f32, d)
		}
	}
	pts("ZSC top-1", zF.Top1, zQ.Top1)
	pts("ZSC top-5", zF.Top5, zQ.Top5)
	pts("GZSL seen", gF.SeenAcc, gQ.SeenAcc)
	pts("GZSL unseen", gF.UnseenAcc, gQ.UnseenAcc)
	pts("GZSL harmonic", gF.Harmonic, gQ.Harmonic)
}

// TestEvalDeterministicAcrossGOMAXPROCS pins the tentpole guarantee of
// the concurrent embed pipeline: seeded ZSC/GZSL accuracies are
// byte-identical at any core count, for both the deterministic float
// readout and the stochastic analog crossbar (whose readout is
// consumed strictly in batch order).
func TestEvalDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// Enough images per class that every evaluated population spans
	// several embedding batches (batchSize 32): 4 test classes × 18 = 72
	// test instances → 3 batches, 144 seen-holdout instances → 5. A
	// single-batch split would leave the fan-out and the ordered
	// stochastic readout unexercised.
	dcfg := dataset.DefaultConfig()
	dcfg.NumClasses = 12
	dcfg.ImagesPerClass = 18
	dcfg.Height, dcfg.Width = 12, 12
	dcfg.Seed = 31
	d := dataset.Generate(dcfg)
	split := d.ZSSplit(rand.New(rand.NewSource(81)), 2.0/3)
	cfg := tinyPipeline(31)
	model, _ := cfg.Build(d.Schema)

	crossbarEngine := func() *infer.Engine {
		phi := ClassEmbeddings(model, d, split.TestClasses)
		labels := ClassLabels(d, split.TestClasses)
		be := infer.NewCrossbarBackend(phi, labels, model.Kernel.Temperature(), imc.TypicalPCM())
		// Pin the tile layout so analog noise draws don't depend on the
		// host's core count (same rationale as cmd/hdczsc).
		return infer.New(be, infer.WithWorkers(2))
	}

	run := func(procs int) (ZSCResult, ZSCResult, GZSLResult) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return EvalZSC(model, d, split),
			EvalZSCWithEngine(model, d, split, crossbarEngine()),
			EvalGZSL(model, d, split, split.Train)
	}

	zsc1, imc1, gzsl1 := run(1)
	for _, procs := range []int{2, 4} {
		zscN, imcN, gzslN := run(procs)
		if zscN != zsc1 {
			t.Fatalf("EvalZSC differs at GOMAXPROCS=%d: %+v vs %+v", procs, zscN, zsc1)
		}
		if imcN != imc1 {
			t.Fatalf("stochastic-crossbar eval differs at GOMAXPROCS=%d: %+v vs %+v", procs, imcN, imc1)
		}
		if gzslN != gzsl1 {
			t.Fatalf("EvalGZSL differs at GOMAXPROCS=%d: %+v vs %+v", procs, gzslN, gzsl1)
		}
	}
}
