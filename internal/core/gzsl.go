package core

import (
	"repro/internal/dataset"
	"repro/internal/metrics"
)

// Generalized zero-shot evaluation (GZSL), the harder protocol of Xian
// et al. [19] that the paper cites for its split conventions: at test
// time the candidate label space is the union of seen and unseen
// classes, and performance is summarized by the harmonic mean of the
// per-population accuracies. The paper evaluates conventional ZSL; this
// is the natural extension a downstream user asks for first, so the
// library ships it.

// GZSLResult holds the generalized evaluation metrics.
type GZSLResult struct {
	// SeenAcc is top-1 accuracy on held-out images of *seen* classes,
	// classified against the union label space.
	SeenAcc float64
	// UnseenAcc is top-1 accuracy on unseen-class images against the
	// union label space.
	UnseenAcc float64
	// Harmonic is 2·S·U/(S+U), the standard GZSL summary.
	Harmonic float64
}

// EvalGZSL evaluates the model under the generalized protocol. seenHold
// lists held-out instances of training classes (pass a slice of training
// instances not used for fine-tuning, or training instances themselves
// for a ceiling estimate). The candidate set is seen ∪ unseen classes in
// that order. Both populations score through one batched inference
// engine over the union-class float backend.
func EvalGZSL(m *Model, d *dataset.SynthCUB, split dataset.Split, seenHold []int) GZSLResult {
	classes := append(append([]int(nil), split.TrainClasses...), split.TestClasses...)
	var res GZSLResult
	// A degenerate split with no candidate classes has nothing to score;
	// report zeros instead of letting the engine reject an empty class
	// memory (infer.ErrNoClasses).
	if len(classes) == 0 {
		return res
	}
	eng := inferEngine(m, d, classes)
	labelOf := dataset.ClassIndexMap(classes)

	// Both populations route through the one shared engine; the readout
	// inside engineAccuracy fans each population's embedded batches out to
	// concurrent Engine.Query calls.
	if len(seenHold) > 0 {
		res.SeenAcc, _ = engineAccuracy(m, d, eng, seenHold, labelOf, 1)
	}
	if len(split.Test) > 0 {
		res.UnseenAcc, _ = engineAccuracy(m, d, eng, split.Test, labelOf, 1)
	}
	res.Harmonic = metrics.HarmonicMean(res.SeenAcc, res.UnseenAcc)
	return res
}
