package core

import (
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Generalized zero-shot evaluation (GZSL), the harder protocol of Xian
// et al. [19] that the paper cites for its split conventions: at test
// time the candidate label space is the union of seen and unseen
// classes, and performance is summarized by the harmonic mean of the
// per-population accuracies. The paper evaluates conventional ZSL; this
// is the natural extension a downstream user asks for first, so the
// library ships it.

// GZSLResult holds the generalized evaluation metrics.
type GZSLResult struct {
	// SeenAcc is top-1 accuracy on held-out images of *seen* classes,
	// classified against the union label space.
	SeenAcc float64
	// UnseenAcc is top-1 accuracy on unseen-class images against the
	// union label space.
	UnseenAcc float64
	// Harmonic is 2·S·U/(S+U), the standard GZSL summary.
	Harmonic float64
}

// EvalGZSL evaluates the model under the generalized protocol. seenHold
// lists held-out instances of training classes (pass a slice of training
// instances not used for fine-tuning, or training instances themselves
// for a ceiling estimate). The candidate set is seen ∪ unseen classes in
// that order.
func EvalGZSL(m *Model, d *dataset.SynthCUB, split dataset.Split, seenHold []int) GZSLResult {
	classes := append(append([]int(nil), split.TrainClasses...), split.TestClasses...)
	attr := d.ClassAttrRows(classes)
	labelOf := dataset.ClassIndexMap(classes)

	score := func(idx []int) (*tensor.Tensor, []int) {
		scores := tensor.New(len(idx), len(classes))
		labels := make([]int, len(idx))
		const batch = 32
		for at := 0; at < len(idx); at += batch {
			end := minInt(at+batch, len(idx))
			b := d.MakeBatch(idx[at:end], labelOf, nil, nil)
			logits := m.Logits(b.Images, attr, false)
			for i := 0; i < end-at; i++ {
				copy(scores.Row(at+i), logits.Row(i))
				labels[at+i] = b.Labels[i]
			}
		}
		return scores, labels
	}

	var res GZSLResult
	if len(seenHold) > 0 {
		s, l := score(seenHold)
		res.SeenAcc = metrics.Top1Accuracy(s, l)
	}
	if len(split.Test) > 0 {
		s, l := score(split.Test)
		res.UnseenAcc = metrics.Top1Accuracy(s, l)
	}
	res.Harmonic = metrics.HarmonicMean(res.SeenAcc, res.UnseenAcc)
	return res
}
