package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file is the bridge between the trained model and the batched
// inference engine (internal/infer): evaluation builds a Backend from the
// model's frozen attribute embeddings and streams image embeddings
// through the engine's sharded readout. EvalZSC/EvalGZSL use the float
// reference backend; EvalZSCWithEngine accepts any engine (the packed
// XOR+popcount edge path, the analog crossbar), which is how cmd/hdczsc
// exposes backend selection.

// inferEngine builds a sharded float-backend engine over the model's
// frozen attribute embeddings for the given candidate classes — the
// evaluation-time readout path.
func inferEngine(m *Model, d *dataset.SynthCUB, classes []int) *infer.Engine {
	return infer.New(infer.NewFloatBackend(
		ClassEmbeddings(m, d, classes), ClassLabels(d, classes), m.Kernel.Temperature()))
}

// ClassEmbeddings returns the frozen attribute embeddings ϕ(A) [C, d]
// for the given candidate classes: the class memory every inference
// backend is built from.
func ClassEmbeddings(m *Model, d *dataset.SynthCUB, classes []int) *tensor.Tensor {
	return m.Attr.Encode(d.ClassAttrRows(classes), false)
}

// ClassLabels returns the display labels of the given classes.
func ClassLabels(d *dataset.SynthCUB, classes []int) []string {
	labels := make([]string, len(classes))
	for i, c := range classes {
		labels[i] = d.ClassNames[c]
	}
	return labels
}

// EvalZSCWithEngine evaluates like EvalZSC but routes the readout
// through the supplied engine — over the packed-binary edge path or the
// analog crossbar instead of the float reference. The caller builds the
// engine's backend from this model's frozen class embeddings (see
// ClassEmbeddings); backend class indices are positions in
// split.TestClasses.
func EvalZSCWithEngine(m *Model, d *dataset.SynthCUB, split dataset.Split, eng *infer.Engine) ZSCResult {
	k := 5
	if n := len(split.TestClasses); n < k {
		k = n
	}
	top1, topk := engineAccuracy(m, d, eng, split.Test, dataset.ClassIndexMap(split.TestClasses), k)
	return ZSCResult{Top1: top1, Top5: topk}
}

// engineAccuracy embeds the given instances in batches, queries the
// engine for top-k, and returns top-1 and top-k accuracy. Probes are
// offered dense; binary backends sign-pack them lazily via
// Batch.SignPacked, so the float/crossbar paths never pay the packing
// cost.
//
// The whole path is a bounded embed→readout pipeline on one shared
// frozen model: embedding batches fan out across worker goroutines that
// run the compiled frozen-graph plan (per-worker nn.Scratch, zero
// steady-state allocation), and each worker queries the one shared
// engine as soon as its batch is embedded. Accuracies are byte-identical
// at any GOMAXPROCS: the compiled plan is bitwise deterministic for any
// worker budget, each batch is embedded by exactly one worker, and the
// hit counters are order-independent sums.
//
// Backends whose scores depend on query order (the noisy crossbar
// consumes a per-tile read-noise stream) keep concurrent embedding but
// hand embedded batches to a single readout goroutine that consumes
// them strictly in batch order, so a seeded run prints the same
// accuracies on every machine and at any core count. In both modes the
// number of embedded batches pinned in memory is bounded by the worker
// budget regardless of the evaluation set size.
func engineAccuracy(m *Model, d *dataset.SynthCUB, eng *infer.Engine,
	idx []int, labelOf map[int]int, k int) (top1, topk float64) {

	if len(idx) == 0 {
		return 0, 0
	}
	const batchSize = 32
	nBatches := (len(idx) + batchSize - 1) / batchSize
	workers := runtime.GOMAXPROCS(0)
	if workers > nBatches {
		workers = nBatches
	}

	var hit1, hitK atomic.Int64
	count := func(results []infer.Result, labels []int) {
		var h1, hK int64
		for i, r := range results {
			want := labels[i]
			if r.TopK[0].Class == want {
				h1++
			}
			for _, h := range r.TopK {
				if h.Class == want {
					hK++
					break
				}
			}
		}
		hit1.Add(h1)
		hitK.Add(hK)
	}
	// embed assembles and embeds batch bi on the caller's scratch through
	// the compiled frozen-graph plan (BN folded, epilogues fused — see
	// ImageEncoder.Compiled), or through the quantized int8 plan when one
	// has been installed (ImageEncoder.CompiledInt8); the returned
	// embedding lives in that scratch until its next Reset. Both plans
	// are bitwise deterministic across GOMAXPROCS, which keeps seeded
	// accuracies byte-identical at any core count.
	compiled := m.Image.EvalNet()
	embed := func(sc *nn.Scratch, bi int) (*tensor.Tensor, []int) {
		at := bi * batchSize
		end := minInt(at+batchSize, len(idx))
		batch := d.MakeBatch(idx[at:end], labelOf, nil, nil)
		return compiled.Infer(batch.Images, sc), batch.Labels
	}

	stochastic := false
	if sb, ok := eng.Backend().(interface{ Stochastic() bool }); ok && sb.Stochastic() {
		stochastic = true
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	if !stochastic {
		// Fused pipeline: each worker embeds and immediately queries the
		// shared engine (Engine.Query is safe for concurrent callers).
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := nn.GetScratch()
				defer nn.PutScratch(sc)
				// Per-worker result buffer: count consumes results before the
				// next query reuses it, so result/TopK storage is reused
				// across the loop (the per-batch Batch wrapper and its lazy
				// norms still allocate once per query).
				var rb infer.ResultBuf
				for bi := range jobs {
					sc.Reset()
					emb, labels := embed(sc, bi)
					count(eng.QueryInto(infer.DenseBatch(emb), k, &rb), labels)
				}
			}()
		}
		for bi := 0; bi < nBatches; bi++ {
			jobs <- bi
		}
		close(jobs)
		wg.Wait()
	} else {
		// Ordered readout: embedding still fans out, but batches are
		// queried strictly in index order to keep the backend's noise
		// stream deterministic. slots bounds the embedded batches pinned
		// while they wait for their turn. The feeder acquires the slot
		// BEFORE handing out a job, so slot holders are always the lowest
		// outstanding batch indices — the batch the readout is waiting on
		// always owns a slot and can finish, which rules out the deadlock
		// where later batches exhaust every slot first.
		type embedded struct {
			emb    *tensor.Tensor
			labels []int
		}
		ready := make([]chan embedded, nBatches)
		for i := range ready {
			ready[i] = make(chan embedded, 1)
		}
		slots := make(chan struct{}, workers+1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := nn.GetScratch()
				defer nn.PutScratch(sc)
				for bi := range jobs {
					sc.Reset()
					emb, labels := embed(sc, bi)
					// Clone out of the scratch: the worker moves on to its
					// next batch before the readout consumes this one.
					ready[bi] <- embedded{emb.Clone(), labels}
				}
			}()
		}
		go func() {
			for bi := 0; bi < nBatches; bi++ {
				slots <- struct{}{} // released by the readout after batch bi is consumed
				jobs <- bi
			}
			close(jobs)
		}()
		for bi := 0; bi < nBatches; bi++ {
			eb := <-ready[bi]
			count(eng.Query(infer.DenseBatch(eb.emb), k), eb.labels)
			<-slots
		}
		wg.Wait()
	}
	return float64(hit1.Load()) / float64(len(idx)), float64(hitK.Load()) / float64(len(idx))
}
