package core

import (
	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// This file is the bridge between the trained model and the batched
// inference engine (internal/infer): evaluation builds a Backend from the
// model's frozen attribute embeddings and streams image embeddings
// through the engine's sharded readout. EvalZSC/EvalGZSL use the float
// reference backend; EvalZSCWithEngine accepts any engine (the packed
// XOR+popcount edge path, the analog crossbar), which is how cmd/hdczsc
// exposes backend selection.

// inferEngine builds a sharded float-backend engine over the model's
// frozen attribute embeddings for the given candidate classes — the
// evaluation-time readout path.
func inferEngine(m *Model, d *dataset.SynthCUB, classes []int) *infer.Engine {
	return infer.New(infer.NewFloatBackend(
		ClassEmbeddings(m, d, classes), ClassLabels(d, classes), m.Kernel.Temperature()))
}

// ClassEmbeddings returns the frozen attribute embeddings ϕ(A) [C, d]
// for the given candidate classes: the class memory every inference
// backend is built from.
func ClassEmbeddings(m *Model, d *dataset.SynthCUB, classes []int) *tensor.Tensor {
	return m.Attr.Encode(d.ClassAttrRows(classes), false)
}

// ClassLabels returns the display labels of the given classes.
func ClassLabels(d *dataset.SynthCUB, classes []int) []string {
	labels := make([]string, len(classes))
	for i, c := range classes {
		labels[i] = d.ClassNames[c]
	}
	return labels
}

// EvalZSCWithEngine evaluates like EvalZSC but routes the readout
// through the supplied engine — over the packed-binary edge path or the
// analog crossbar instead of the float reference. The caller builds the
// engine's backend from this model's frozen class embeddings (see
// ClassEmbeddings); backend class indices are positions in
// split.TestClasses.
func EvalZSCWithEngine(m *Model, d *dataset.SynthCUB, split dataset.Split, eng *infer.Engine) ZSCResult {
	k := 5
	if n := len(split.TestClasses); n < k {
		k = n
	}
	top1, topk := engineAccuracy(m, d, eng, split.Test, dataset.ClassIndexMap(split.TestClasses), k)
	return ZSCResult{Top1: top1, Top5: topk}
}

// engineAccuracy embeds the given instances in batches, queries the
// engine for top-k, and returns top-1 and top-k accuracy. Probes are
// offered dense; binary backends sign-pack them lazily via
// Batch.SignPacked, so the float/crossbar paths never pay the packing
// cost.
func engineAccuracy(m *Model, d *dataset.SynthCUB, eng *infer.Engine,
	idx []int, labelOf map[int]int, k int) (top1, topk float64) {

	if len(idx) == 0 {
		return 0, 0
	}
	const batchSize = 32
	var hit1, hitK int
	for at := 0; at < len(idx); at += batchSize {
		end := minInt(at+batchSize, len(idx))
		batch := d.MakeBatch(idx[at:end], labelOf, nil, nil)
		emb := m.Image.Forward(batch.Images, false)
		for i, r := range eng.Query(infer.DenseBatch(emb), k) {
			want := batch.Labels[i]
			if r.TopK[0].Class == want {
				hit1++
			}
			for _, h := range r.TopK {
				if h.Class == want {
					hitK++
					break
				}
			}
		}
	}
	return float64(hit1) / float64(len(idx)), float64(hitK) / float64(len(idx))
}
