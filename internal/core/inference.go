package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// This file is the bridge between the trained model and the batched
// inference engine (internal/infer): evaluation builds a Backend from the
// model's frozen attribute embeddings and streams image embeddings
// through the engine's sharded readout. EvalZSC/EvalGZSL use the float
// reference backend; EvalZSCWithEngine accepts any engine (the packed
// XOR+popcount edge path, the analog crossbar), which is how cmd/hdczsc
// exposes backend selection.

// inferEngine builds a sharded float-backend engine over the model's
// frozen attribute embeddings for the given candidate classes — the
// evaluation-time readout path.
func inferEngine(m *Model, d *dataset.SynthCUB, classes []int) *infer.Engine {
	return infer.New(infer.NewFloatBackend(
		ClassEmbeddings(m, d, classes), ClassLabels(d, classes), m.Kernel.Temperature()))
}

// ClassEmbeddings returns the frozen attribute embeddings ϕ(A) [C, d]
// for the given candidate classes: the class memory every inference
// backend is built from.
func ClassEmbeddings(m *Model, d *dataset.SynthCUB, classes []int) *tensor.Tensor {
	return m.Attr.Encode(d.ClassAttrRows(classes), false)
}

// ClassLabels returns the display labels of the given classes.
func ClassLabels(d *dataset.SynthCUB, classes []int) []string {
	labels := make([]string, len(classes))
	for i, c := range classes {
		labels[i] = d.ClassNames[c]
	}
	return labels
}

// EvalZSCWithEngine evaluates like EvalZSC but routes the readout
// through the supplied engine — over the packed-binary edge path or the
// analog crossbar instead of the float reference. The caller builds the
// engine's backend from this model's frozen class embeddings (see
// ClassEmbeddings); backend class indices are positions in
// split.TestClasses.
func EvalZSCWithEngine(m *Model, d *dataset.SynthCUB, split dataset.Split, eng *infer.Engine) ZSCResult {
	k := 5
	if n := len(split.TestClasses); n < k {
		k = n
	}
	top1, topk := engineAccuracy(m, d, eng, split.Test, dataset.ClassIndexMap(split.TestClasses), k)
	return ZSCResult{Top1: top1, Top5: topk}
}

// engineAccuracy embeds the given instances in batches, queries the
// engine for top-k, and returns top-1 and top-k accuracy. Probes are
// offered dense; binary backends sign-pack them lazily via
// Batch.SignPacked, so the float/crossbar paths never pay the packing
// cost. The embedding stage runs serially — nn layer Forward caches
// activations for Backward even in eval mode, so the model is not safe
// to share across goroutines — but the readout fans out: each embedded
// batch queries the one shared engine on its own goroutine (Engine.Query
// is safe for concurrent callers since the sync.Pool scratch refactor).
// In-flight queries are bounded by a semaphore, so only a handful of
// embedded batches are pinned in memory at a time regardless of the
// evaluation set size. Backends whose scores depend on query order
// (the noisy crossbar consumes a per-tile read-noise stream) are
// queried one at a time instead, so a seeded run prints the same
// accuracies on every machine.
func engineAccuracy(m *Model, d *dataset.SynthCUB, eng *infer.Engine,
	idx []int, labelOf map[int]int, k int) (top1, topk float64) {

	if len(idx) == 0 {
		return 0, 0
	}
	const batchSize = 32
	var hit1, hitK atomic.Int64
	var wg sync.WaitGroup
	inflight := runtime.NumCPU()
	if sb, ok := eng.Backend().(interface{ Stochastic() bool }); ok && sb.Stochastic() {
		inflight = 1 // keep the backend's noise stream in deterministic order
	}
	sem := make(chan struct{}, inflight)
	for at := 0; at < len(idx); at += batchSize {
		end := minInt(at+batchSize, len(idx))
		batch := d.MakeBatch(idx[at:end], labelOf, nil, nil)
		emb := m.Image.Forward(batch.Images, false)
		labels := batch.Labels
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var h1, hK int64
			for i, r := range eng.Query(infer.DenseBatch(emb), k) {
				want := labels[i]
				if r.TopK[0].Class == want {
					h1++
				}
				for _, h := range r.TopK {
					if h.Class == want {
						hK++
						break
					}
				}
			}
			hit1.Add(h1)
			hitK.Add(hK)
		}()
	}
	wg.Wait()
	return float64(hit1.Load()) / float64(len(idx)), float64(hitK.Load()) / float64(len(idx))
}
