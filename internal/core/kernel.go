// Package core implements the paper's primary contribution: the HDC-ZSC
// model (trainable image encoder γ, stationary HDC-based attribute
// encoder ϕ, cosine-similarity kernel with learnable temperature K) and
// its three-phase training methodology — phase I classification
// pre-training, phase II attribute extraction with weighted BCE, and
// phase III zero-shot-classification fine-tuning with the backbone
// frozen — plus inference and the multi-seed experiment runner behind the
// paper's µ±σ protocol.
package core

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// SimilarityKernel computes the paper's bi-similarity kernel
//
//	cossim(γ(X), ϕ(A)) = (1/K) · γ(X)ᵀ·ϕ(A) / (‖γ(X)‖‖ϕ(A)‖)
//
// between image embeddings [B, d] and attribute embeddings [C, d], with
// a learnable temperature-scaling parameter K. It backpropagates to both
// embedding sides and to K.
type SimilarityKernel struct {
	// K is the temperature parameter (scalar stored as a 1-element param).
	K *nn.Param

	// forward caches
	xn, pn   *tensor.Tensor // row-normalized embeddings
	xnorm    *tensor.Tensor // row norms of x
	pnorm    *tensor.Tensor // row norms of p
	cos      *tensor.Tensor // raw cosine matrix
}

// NewSimilarityKernel builds a kernel with initial temperature k.
func NewSimilarityKernel(k float32) *SimilarityKernel {
	if k <= 0 {
		panic(fmt.Sprintf("core.NewSimilarityKernel: temperature must be positive, got %v", k))
	}
	p := nn.NewParam("kernel.K", tensor.FromSlice([]float32{k}, 1))
	p.NoDecay = true
	return &SimilarityKernel{K: p}
}

// Forward returns the scaled similarity logits [B, C] for image
// embeddings x [B, d] and attribute embeddings p [C, d].
func (s *SimilarityKernel) Forward(x, p *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || p.Rank() != 2 || x.Dim(1) != p.Dim(1) {
		panic(fmt.Sprintf("core.SimilarityKernel: incompatible shapes %v and %v", x.Shape(), p.Shape()))
	}
	s.xn = tensor.NormalizeRows(x)
	s.pn = tensor.NormalizeRows(p)
	s.xnorm = tensor.RowNorms(x)
	s.pnorm = tensor.RowNorms(p)
	s.cos = tensor.MatMulT(s.xn, s.pn)
	return tensor.Scale(s.cos, 1/s.K.Value.Data[0])
}

// Backward consumes ∂loss/∂logits and returns (∂loss/∂x, ∂loss/∂p),
// accumulating the temperature gradient. The gradient through row
// normalization x̂ = x/‖x‖ is dx = (dx̂ − x̂·(x̂ᵀdx̂))/‖x‖ per row.
func (s *SimilarityKernel) Backward(dlogits *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	if s.cos == nil {
		panic("core.SimilarityKernel: Backward called before Forward")
	}
	k := s.K.Value.Data[0]
	invK := 1 / k

	// dK = Σ dlogits ⊙ (−cos/K²).
	var dk float64
	for i := range dlogits.Data {
		dk -= float64(dlogits.Data[i]) * float64(s.cos.Data[i]) / float64(k*k)
	}
	s.K.Grad.Data[0] += float32(dk)

	// dcos = dlogits/K.
	dcos := tensor.Scale(dlogits, invK)
	// dx̂ = dcos × p̂ ; dp̂ = dcosᵀ × x̂.
	dxn := tensor.MatMul(dcos, s.pn)
	dpn := tensor.TMatMul(dcos, s.xn)

	dx := normBackward(dxn, s.xn, s.xnorm)
	dp := normBackward(dpn, s.pn, s.pnorm)
	return dx, dp
}

// normBackward maps the gradient wrt the normalized rows back through
// row normalization. Zero-norm rows receive zero gradient (their forward
// output was zero).
func normBackward(dn, normed, norms *tensor.Tensor) *tensor.Tensor {
	rows, cols := dn.Dim(0), dn.Dim(1)
	out := tensor.New(rows, cols)
	for r := 0; r < rows; r++ {
		nrm := norms.Data[r]
		if nrm == 0 {
			continue
		}
		dr := dn.Row(r)
		xr := normed.Row(r)
		or := out.Row(r)
		var dot float64
		for c := 0; c < cols; c++ {
			dot += float64(dr[c]) * float64(xr[c])
		}
		inv := 1 / nrm
		for c := 0; c < cols; c++ {
			or[c] = (dr[c] - xr[c]*float32(dot)) * inv
		}
	}
	return out
}

// Temperature returns the current K value.
func (s *SimilarityKernel) Temperature() float32 { return s.K.Value.Data[0] }

// Params returns the kernel's single learnable parameter.
func (s *SimilarityKernel) Params() []*nn.Param { return []*nn.Param{s.K} }

// ClampTemperature keeps K in [lo, hi] after an optimizer step; CLIP-style
// models guard the logit scale the same way to avoid training collapse.
func (s *SimilarityKernel) ClampTemperature(lo, hi float32) {
	v := s.K.Value.Data[0]
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	if v != v || math.IsInf(float64(v), 0) { // NaN guard
		v = lo
	}
	s.K.Value.Data[0] = v
	s.K.BumpVersion()
}
