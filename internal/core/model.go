package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// AttributeEncoder is the contract both of the paper's attribute encoders
// satisfy: the stationary HDC codebook encoder (attrenc.HDCEncoder) and
// the trainable MLP reference (attrenc.MLPEncoder).
type AttributeEncoder interface {
	// Encode maps a class-attribute matrix [C, α] to embeddings [C, d].
	Encode(a *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes ∂loss/∂embeddings; stationary encoders ignore it.
	Backward(dPhi *tensor.Tensor)
	// Params returns trainable parameters (nil for stationary encoders).
	Params() []*nn.Param
	// OutDim returns the embedding dimensionality d.
	OutDim() int
	// Name labels the encoder in reports ("HDC", "MLP").
	Name() string
}

// ImageEncoder is γ(·): a ResNet backbone optionally followed by an FC
// projection to the ZSC embedding dimension d (Fig. 2). Without the
// projection, d equals the backbone output d′ (the "ResNet50, d=2048"
// ablation row of Table II).
type ImageEncoder struct {
	Backbone *nn.ResNet
	Proj     *nn.Linear // nil when no projection layer is used

	compileOnce sync.Once
	compiled    *nn.CompiledNet

	// quantMu guards the optional quantized plan installed by
	// CompiledInt8.
	quantMu  sync.Mutex
	quantNet *nn.CompiledNet
}

// NewImageEncoder builds γ from a backbone config; projDim ≤ 0 omits the
// FC projection.
func NewImageEncoder(rng *rand.Rand, cfg nn.ResNetConfig, projDim int) *ImageEncoder {
	backbone := nn.NewResNet(rng, cfg)
	enc := &ImageEncoder{Backbone: backbone}
	if projDim > 0 {
		enc.Proj = nn.NewLinear(rng, cfg.Name+".proj", backbone.OutDim(), projDim, true)
	}
	return enc
}

// OutDim returns the embedding dimension the encoder produces.
func (e *ImageEncoder) OutDim() int {
	if e.Proj != nil {
		return e.Proj.OutDim()
	}
	return e.Backbone.OutDim()
}

// Forward computes γ(x) for images [B, 3, H, W] → [B, d].
func (e *ImageEncoder) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	emb := e.Backbone.Forward(x, train)
	if e.Proj != nil {
		emb = e.Proj.Forward(emb, train)
	}
	return emb
}

// Infer computes γ(x) on a frozen encoder without touching any layer
// state: the shared-read path of the evaluation pipeline and the
// serving layer, safe for any number of goroutines sharing one encoder
// (each brings its own nn.Scratch). Bitwise identical to
// Forward(x, false).
func (e *ImageEncoder) Infer(x *tensor.Tensor, s *nn.Scratch) *tensor.Tensor {
	emb := e.Backbone.Infer(x, s)
	if e.Proj != nil {
		emb = e.Proj.Infer(emb, s)
	}
	return emb
}

// CompileChain describes γ to the frozen-graph compiler (nn.Compile)
// as its ordered layer chain: backbone, then the optional projection.
func (e *ImageEncoder) CompileChain() []nn.Layer {
	if e.Proj != nil {
		return []nn.Layer{e.Backbone, e.Proj}
	}
	return []nn.Layer{e.Backbone}
}

// Compiled returns the encoder's frozen inference plan: BatchNorms
// folded into conv weights, bias/ReLU/residual adds fused into GEMM
// write-backs, buffers pre-scheduled (see nn.CompiledNet). It is the
// serving and evaluation readout path; plans build lazily per input
// geometry and refold automatically when parameters change (optimizer
// steps, LoadParams). Unlike Infer — which stays bitwise equal to
// Forward(x, false) — the compiled path matches Forward only within
// the BN-folding rounding tolerance, while remaining bitwise
// deterministic across worker counts itself.
func (e *ImageEncoder) Compiled() *nn.CompiledNet {
	e.compileOnce.Do(func() { e.compiled = nn.MustCompile(e) })
	return e.compiled
}

// CompiledInt8 builds (once) and returns the encoder's quantized
// inference plan: the frozen graph of Compiled lowered to int8 GEMM
// steps, with per-channel weight scales and activation scales
// calibrated on calib (a representative image batch [B, 3, H, W] at the
// serving geometry — see nn.CompileQuantized). The plan keeps
// activations int8 between steps and dequantizes only at the embedding
// boundary; inputs whose geometry differs from calib transparently run
// the f32 plan of the same net. The first call's calibration batch
// wins; later calls return the cached plan. Installing the plan also
// switches EvalNet — and with it the evaluation readout — to int8.
func (e *ImageEncoder) CompiledInt8(calib *tensor.Tensor) (*nn.CompiledNet, error) {
	e.quantMu.Lock()
	defer e.quantMu.Unlock()
	if e.quantNet == nil {
		q, err := nn.CompileQuantized(e, calib)
		if err != nil {
			return nil, err
		}
		e.quantNet = q
	}
	return e.quantNet, nil
}

// EvalNet returns the plan the evaluation readout embeds through: the
// quantized plan when CompiledInt8 has installed one, else the f32
// compiled plan. Both are safe for any number of concurrent Infer
// callers and bitwise deterministic across worker budgets.
func (e *ImageEncoder) EvalNet() *nn.CompiledNet {
	e.quantMu.Lock()
	q := e.quantNet
	e.quantMu.Unlock()
	if q != nil {
		return q
	}
	return e.Compiled()
}

// Backward propagates the embedding gradient through the encoder.
func (e *ImageEncoder) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if e.Proj != nil {
		dout = e.Proj.Backward(dout)
	}
	return e.Backbone.Backward(dout)
}

// Params returns backbone plus projection parameters.
func (e *ImageEncoder) Params() []*nn.Param {
	ps := e.Backbone.Params()
	if e.Proj != nil {
		ps = append(ps, e.Proj.Params()...)
	}
	return ps
}

// FreezeBackbone marks backbone parameters frozen (phase III keeps the
// backbone stationary while the FC projection fine-tunes).
func (e *ImageEncoder) FreezeBackbone() { nn.SetFrozen(e.Backbone.Params(), true) }

// UnfreezeBackbone re-enables backbone training.
func (e *ImageEncoder) UnfreezeBackbone() { nn.SetFrozen(e.Backbone.Params(), false) }

// Model is the full HDC-ZSC architecture of Fig. 1: image encoder γ,
// attribute encoder ϕ, and the similarity kernel.
type Model struct {
	Image  *ImageEncoder
	Attr   AttributeEncoder
	Kernel *SimilarityKernel

	// caches for Backward
	lastPhi *tensor.Tensor
}

// NewModel assembles a model; the encoders must agree on d.
func NewModel(img *ImageEncoder, attr AttributeEncoder, kernel *SimilarityKernel) *Model {
	if img.OutDim() != attr.OutDim() {
		panic(fmt.Sprintf("core.NewModel: image encoder d=%d but attribute encoder d=%d",
			img.OutDim(), attr.OutDim()))
	}
	return &Model{Image: img, Attr: attr, Kernel: kernel}
}

// Logits runs the full pipeline: images [B,3,H,W] and class attributes
// [C,α] to similarity logits [B,C].
func (m *Model) Logits(images, classAttr *tensor.Tensor, train bool) *tensor.Tensor {
	emb := m.Image.Forward(images, train)
	m.lastPhi = m.Attr.Encode(classAttr, train)
	return m.Kernel.Forward(emb, m.lastPhi)
}

// Backward propagates ∂loss/∂logits through the kernel into both
// encoders.
func (m *Model) Backward(dlogits *tensor.Tensor) {
	dx, dp := m.Kernel.Backward(dlogits)
	m.Image.Backward(dx)
	m.Attr.Backward(dp)
}

// Params returns every trainable parameter of the model (image encoder,
// attribute encoder if trainable, kernel temperature).
func (m *Model) Params() []*nn.Param {
	ps := m.Image.Params()
	ps = append(ps, m.Attr.Params()...)
	ps = append(ps, m.Kernel.Params()...)
	return ps
}

// ParamCount returns the total trainable parameter count, the Fig. 4
// x-axis. Frozen parameters still count (they are part of the deployed
// model); the stationary HDC codebooks do not (they are not parameters).
func (m *Model) ParamCount() int { return nn.CountParams(m.Params()) }

// Predict returns the predicted class index per image:
// ŷ = argmax_i cossim(γ(x), ϕ(a_i)).
func (m *Model) Predict(images, classAttr *tensor.Tensor) []int {
	return tensor.ArgMax(m.Logits(images, classAttr, false))
}
