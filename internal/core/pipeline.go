package core

import (
	"fmt"
	"math/rand"

	"repro/internal/attrenc"
	"repro/internal/dataset"
	"repro/internal/nn"
)

// PipelineConfig describes a complete HDC-ZSC instantiation and training
// recipe: the image-encoder variant (Table II rows), the attribute
// encoder ("HDC" or "MLP"), and the per-phase hyperparameters.
type PipelineConfig struct {
	// Backbone selects the ResNet variant.
	Backbone nn.ResNetConfig
	// ProjDim is the FC projection output d; 0 omits the projection
	// (embedding dimension becomes the backbone's d′, and pre-training
	// stage II is skipped per Table II's caption).
	ProjDim int
	// Encoder selects the attribute encoder: "HDC" (the contribution) or
	// "MLP" (the trainable reference).
	Encoder string
	// MLPHidden is the hidden width of the MLP encoder variant.
	MLPHidden int
	// PhaseI/II/III are the per-phase training configurations.
	PhaseI, PhaseII, PhaseIII TrainConfig
	// SkipPhaseI disables classification pre-training (ablations).
	SkipPhaseI bool
	// Seed drives model initialization and codebook generation.
	Seed int64
}

// DefaultPipelineConfig returns the preferred configuration the paper
// lands on (ResNet50 + FC projection, HDC encoder) at laptop scale.
func DefaultPipelineConfig() PipelineConfig {
	p2 := DefaultTrainConfig()
	p3 := DefaultTrainConfig()
	p1 := DefaultTrainConfig()
	p1.Epochs = 4
	return PipelineConfig{
		Backbone:  nn.MicroResNet50Config(6),
		ProjDim:   64,
		Encoder:   "HDC",
		MLPHidden: 48,
		PhaseI:    p1,
		PhaseII:   p2,
		PhaseIII:  p3,
		Seed:      1,
	}
}

// EmbedDim returns the ZSC embedding dimension d the config produces.
func (c PipelineConfig) EmbedDim() int {
	if c.ProjDim > 0 {
		return c.ProjDim
	}
	return c.Backbone.OutDim()
}

// Build instantiates the model (image encoder, attribute encoder, kernel)
// without training it. It returns the model and, when the HDC encoder is
// selected or needed for phase II, the HDC encoder instance.
func (c PipelineConfig) Build(schema *dataset.Schema) (*Model, *attrenc.HDCEncoder) {
	rng := rand.New(rand.NewSource(c.Seed))
	img := NewImageEncoder(rng, c.Backbone, c.ProjDim)
	d := c.EmbedDim()
	// The HDC dictionary is always built: phase II scores images against
	// it even when phase III uses the MLP encoder.
	hdcEnc := attrenc.NewHDCEncoder(rand.New(rand.NewSource(c.Seed+100)), schema, d)
	var enc AttributeEncoder
	switch c.Encoder {
	case "HDC", "":
		enc = hdcEnc
	case "MLP":
		enc = attrenc.NewMLPEncoder(rng, schema.Alpha(), c.MLPHidden, d)
	default:
		panic(fmt.Sprintf("core.PipelineConfig: unknown encoder %q", c.Encoder))
	}
	temp := c.PhaseIII.TempScale
	if temp <= 0 {
		temp = c.PhaseII.TempScale
	}
	if temp <= 0 {
		temp = DefaultTrainConfig().TempScale
	}
	kernel := NewSimilarityKernel(temp)
	return NewModel(img, enc, kernel), hdcEnc
}

// PipelineResult summarizes one full training run.
type PipelineResult struct {
	PhaseIAccuracy float64 // final pre-training accuracy (0 when skipped)
	PhaseIILoss    float32
	PhaseIIILoss   float32
	Eval           ZSCResult
	ParamCount     int
}

// Run executes the full three-phase methodology on the given data and
// split: phase I on pretrain (if provided and not skipped), phase II
// attribute extraction, phase III ZSC fine-tuning, then zero-shot
// evaluation on the split's unseen test classes.
func (c PipelineConfig) Run(d *dataset.SynthCUB, split dataset.Split, pretrain *dataset.SynthImageNet) (*Model, PipelineResult) {
	model, hdcEnc := c.Build(d.Schema)
	var res PipelineResult
	if pretrain != nil && !c.SkipPhaseI {
		res.PhaseIAccuracy = PretrainClassification(model.Image, pretrain, c.PhaseI)
	}
	// Phase II needs the FC projection; without it the paper skips stage II
	// (Table II caption).
	if model.Image.Proj != nil {
		res.PhaseIILoss = TrainAttributeExtraction(
			model.Image, model.Kernel, hdcEnc.Dictionary(), d, split, c.PhaseII)
	}
	res.PhaseIIILoss = TrainZSC(model, d, split, c.PhaseIII)
	res.Eval = EvalZSC(model, d, split)
	res.ParamCount = model.ParamCount()
	return model, res
}
