package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TrainConfig carries the hyperparameters the paper tunes in Fig. 5:
// epochs, batch size, learning rate, temperature scale, and weight decay,
// plus the reproduction's practical knobs.
type TrainConfig struct {
	Epochs      int
	Batch       int
	LR          float32
	LRMin       float32 // cosine-annealing floor
	WeightDecay float32
	// TempScale is the initial similarity-kernel temperature K.
	TempScale float32
	// ClipNorm bounds the global gradient norm (0 disables).
	ClipNorm float32
	// Augment enables the paper's rotation/crop/flip pipeline.
	Augment bool
	// MaxPosWeight caps the weighted-BCE positive weights (phase II).
	MaxPosWeight float32
	// Seed drives batch order, augmentation, and any stochastic layers.
	Seed int64
}

// DefaultTrainConfig returns the hyperparameter set used by the
// experiment harness (the laptop-scale analogue of the paper's best
// configuration: ≈10 epochs, small batch, AdamW defaults).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs: 8, Batch: 8, LR: 3e-3, LRMin: 1e-5,
		WeightDecay: 1e-4, TempScale: 0.05, ClipNorm: 5,
		Augment: false, MaxPosWeight: 20, Seed: 1,
	}
}

// PretrainClassification is phase I (Fig. 2a): supervised classification
// pre-training of the backbone through a temporary FC′ softmax head,
// playing the role of ImageNet1K pre-training. The head is discarded;
// the matured backbone weights are retained. Returns the final-epoch
// training accuracy.
func PretrainClassification(img *ImageEncoder, data *dataset.SynthImageNet, cfg TrainConfig) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	head := nn.NewLinear(rng, "fcprime", img.Backbone.OutDim(), data.NumClasses, true)
	params := append(append([]*nn.Param{}, img.Backbone.Params()...), head.Params()...)
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	steps := cfg.Epochs * ((data.Len() + cfg.Batch - 1) / cfg.Batch)
	sched := nn.NewCosineAnnealingLR(cfg.LR, cfg.LRMin, maxInt(steps, 1))

	order := rng.Perm(data.Len())
	step := 0
	var lastAcc float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var hits, total int
		for at := 0; at < len(order); at += cfg.Batch {
			end := minInt(at+cfg.Batch, len(order))
			images, labels := data.Batch(order[at:end])
			nn.ZeroGrads(params)
			emb := img.Backbone.Forward(images, true)
			logits := head.Forward(emb, true)
			_, dlogits := nn.SoftmaxCrossEntropy(logits, labels)
			img.Backbone.Backward(head.Backward(dlogits))
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			sched.Apply(opt, step)
			opt.Step(params)
			step++
			for i, p := range tensor.ArgMax(logits) {
				if p == labels[i] {
					hits++
				}
			}
			total += len(labels)
		}
		lastAcc = float64(hits) / float64(total)
	}
	return lastAcc
}

// TrainAttributeExtraction is phase II (Fig. 2b): the image encoder
// (backbone + FC) learns to score the α attribute codevectors of the HDC
// dictionary B so that cosine similarities match the instance's
// ground-truth attributes, under a weighted binary cross-entropy that
// compensates the inactive-attribute imbalance. The attribute dictionary
// stays fixed. Returns the final-epoch training loss.
func TrainAttributeExtraction(img *ImageEncoder, kernel *SimilarityKernel, dict *tensor.Tensor,
	d *dataset.SynthCUB, split dataset.Split, cfg TrainConfig) float32 {

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var aug *dataset.Augmentor
	if cfg.Augment {
		a := dataset.DefaultAugmentor()
		aug = &a
	}
	it := dataset.NewBatchIterator(d, split.Train, split.TrainClasses, cfg.Batch, aug, rng)

	// Positive weights from the training targets (#neg/#pos per attribute).
	all := d.MakeBatch(split.Train, dataset.ClassIndexMap(split.TrainClasses), nil, nil)
	posW := nn.PosWeights(all.Attrs, cfg.MaxPosWeight)

	params := append(append([]*nn.Param{}, img.Params()...), kernel.Params()...)
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	perEpoch := it.BatchesPerEpoch()
	sched := nn.NewCosineAnnealingLR(cfg.LR, cfg.LRMin, maxInt(cfg.Epochs*perEpoch, 1))

	var last float32
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var sum float64
		for b := 0; b < perEpoch; b++ {
			batch := it.Next()
			nn.ZeroGrads(params)
			emb := img.Forward(batch.Images, true)
			q := kernel.Forward(emb, dict)
			loss, dq := nn.BCEWithLogits(q, batch.Attrs, posW)
			dx, _ := kernel.Backward(dq) // dictionary is stationary
			img.Backward(dx)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			sched.Apply(opt, step)
			opt.Step(params)
			kernel.ClampTemperature(1e-3, 100)
			step++
			sum += float64(loss)
		}
		last = float32(sum / float64(perEpoch))
	}
	return last
}

// TrainZSC is phase III (Fig. 2c): the FC projection (and the attribute
// encoder, when trainable) fine-tunes so image embeddings align with the
// attribute embeddings of the *training* classes under cross-entropy over
// the similarity logits, while the matured backbone remains stationary.
//
// With a projection layer present, the frozen backbone's features are
// computed once in inference mode and cached, and the epochs train only
// the projection/kernel on the cache — mathematically the stationary-
// backbone training of Fig. 2c at a fraction of the cost. Without a
// projection layer there is nothing else to train, so the backbone itself
// fine-tunes end-to-end (the "pre-train I,III" rows of Table II).
// Returns the final-epoch training loss.
func TrainZSC(m *Model, d *dataset.SynthCUB, split dataset.Split, cfg TrainConfig) float32 {
	if m.Image.Proj != nil {
		return trainZSCCached(m, d, split, cfg)
	}
	return trainZSCEndToEnd(m, d, split, cfg)
}

// trainZSCEndToEnd trains all image-encoder parameters (used when no
// projection FC exists).
func trainZSCEndToEnd(m *Model, d *dataset.SynthCUB, split dataset.Split, cfg TrainConfig) float32 {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	var aug *dataset.Augmentor
	if cfg.Augment {
		a := dataset.DefaultAugmentor()
		aug = &a
	}
	it := dataset.NewBatchIterator(d, split.Train, split.TrainClasses, cfg.Batch, aug, rng)
	trainAttr := d.ClassAttrRows(split.TrainClasses)

	params := m.Params()
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	perEpoch := it.BatchesPerEpoch()
	sched := nn.NewCosineAnnealingLR(cfg.LR, cfg.LRMin, maxInt(cfg.Epochs*perEpoch, 1))

	var last float32
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var sum float64
		for b := 0; b < perEpoch; b++ {
			batch := it.Next()
			nn.ZeroGrads(params)
			logits := m.Logits(batch.Images, trainAttr, true)
			loss, dlogits := nn.SoftmaxCrossEntropy(logits, batch.Labels)
			m.Backward(dlogits)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			sched.Apply(opt, step)
			opt.Step(params)
			m.Kernel.ClampTemperature(1e-3, 100)
			step++
			sum += float64(loss)
		}
		last = float32(sum / float64(perEpoch))
	}
	return last
}

// trainZSCCached freezes the backbone, caches its inference-mode features
// for the training instances, and trains the projection, kernel, and any
// trainable attribute encoder over the cache.
func trainZSCCached(m *Model, d *dataset.SynthCUB, split dataset.Split, cfg TrainConfig) float32 {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	m.Image.FreezeBackbone()
	defer m.Image.UnfreezeBackbone()

	labelOf := dataset.ClassIndexMap(split.TrainClasses)
	n := len(split.Train)
	var feats *tensor.Tensor
	labels := make([]int, n)
	const encBatch = 32
	for at := 0; at < n; at += encBatch {
		end := minInt(at+encBatch, n)
		batch := d.MakeBatch(split.Train[at:end], labelOf, nil, nil)
		emb := m.Image.Backbone.Forward(batch.Images, false)
		if feats == nil {
			feats = tensor.New(n, emb.Dim(1))
		}
		for i := 0; i < end-at; i++ {
			copy(feats.Row(at+i), emb.Row(i))
			labels[at+i] = batch.Labels[i]
		}
	}

	trainAttr := d.ClassAttrRows(split.TrainClasses)
	params := append(append([]*nn.Param{}, m.Image.Proj.Params()...), m.Attr.Params()...)
	params = append(params, m.Kernel.Params()...)
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	perEpoch := (n + cfg.Batch - 1) / cfg.Batch
	sched := nn.NewCosineAnnealingLR(cfg.LR, cfg.LRMin, maxInt(cfg.Epochs*perEpoch, 1))

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var last float32
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for at := 0; at < n; at += cfg.Batch {
			end := minInt(at+cfg.Batch, n)
			bf := tensor.New(end-at, feats.Dim(1))
			bl := make([]int, end-at)
			for i := at; i < end; i++ {
				copy(bf.Row(i-at), feats.Row(order[i]))
				bl[i-at] = labels[order[i]]
			}
			nn.ZeroGrads(params)
			emb := m.Image.Proj.Forward(bf, true)
			phi := m.Attr.Encode(trainAttr, true)
			logits := m.Kernel.Forward(emb, phi)
			loss, dlogits := nn.SoftmaxCrossEntropy(logits, bl)
			dx, dp := m.Kernel.Backward(dlogits)
			m.Image.Proj.Backward(dx)
			m.Attr.Backward(dp)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			sched.Apply(opt, step)
			opt.Step(params)
			m.Kernel.ClampTemperature(1e-3, 100)
			step++
			sum += float64(loss)
		}
		last = float32(sum / float64(perEpoch))
	}
	return last
}

// ZSCResult holds the zero-shot evaluation metrics of §IV-A-b.
type ZSCResult struct {
	Top1, Top5 float64
}

// EvalZSC evaluates the model on the split's *unseen* test classes:
// top-1/top-5 accuracy against test labels with all weights stationary
// (Fig. 3). The readout routes through the batched inference engine
// (internal/infer): the frozen class embeddings ϕ(A_test) become a float
// backend sharded across workers, and images are scored in embedding
// batches.
func EvalZSC(m *Model, d *dataset.SynthCUB, split dataset.Split) ZSCResult {
	if len(split.TestClasses) == 0 {
		// Degenerate split: no candidate classes, nothing to score.
		return ZSCResult{}
	}
	eng := inferEngine(m, d, split.TestClasses)
	k := 5
	if n := len(split.TestClasses); n < k {
		k = n
	}
	top1, topk := engineAccuracy(m, d, eng, split.Test, dataset.ClassIndexMap(split.TestClasses), k)
	return ZSCResult{Top1: top1, Top5: topk}
}

// AttributeScores runs the image encoder over the given instances and
// returns the [N, α] similarity scores against the attribute dictionary
// together with the [N, α] ground-truth targets — the inputs to WMAP and
// per-group top-1 metrics (Table I).
func AttributeScores(img *ImageEncoder, kernel *SimilarityKernel, dict *tensor.Tensor,
	d *dataset.SynthCUB, instanceIdx []int) (scores, targets *tensor.Tensor) {

	alpha := dict.Dim(0)
	scores = tensor.New(len(instanceIdx), alpha)
	targets = tensor.New(len(instanceIdx), alpha)
	// Any-class label map: attribute evaluation is label-space free.
	labelOf := map[int]int{}
	for _, i := range instanceIdx {
		labelOf[d.Instances[i].Class] = 0
	}
	batchSize := 32
	for at := 0; at < len(instanceIdx); at += batchSize {
		end := minInt(at+batchSize, len(instanceIdx))
		batch := d.MakeBatch(instanceIdx[at:end], labelOf, nil, nil)
		emb := img.Forward(batch.Images, false)
		q := kernel.Forward(emb, dict)
		for i := 0; i < end-at; i++ {
			copy(scores.Row(at+i), q.Row(i))
			copy(targets.Row(at+i), batch.Attrs.Row(i))
		}
	}
	return scores, targets
}

// RunSeeds repeats fn for each seed and aggregates the returned metric
// into the paper's µ±σ format.
func RunSeeds(seeds []int64, fn func(seed int64) float64) (mean, std float64) {
	if len(seeds) == 0 {
		panic("core.RunSeeds: no seeds")
	}
	vals := make([]float64, len(seeds))
	for i, s := range seeds {
		vals[i] = fn(s)
	}
	return metrics.MeanStd(vals)
}

// FormatMuSigma renders a µ±σ pair the way the paper reports results.
func FormatMuSigma(mean, std float64) string {
	return fmt.Sprintf("%.1f ± %.1f", mean*100, std*100)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
