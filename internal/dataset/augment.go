package dataset

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Augmentor applies the paper's training-time augmentation pipeline
// (§IV-A-c): random rotation in [−MaxRotate, +MaxRotate] degrees, center
// crop of CropFrac of the image followed by resize back, and random
// horizontal flip. All operations use nearest-neighbour sampling, which
// is adequate at the reproduction's image sizes.
type Augmentor struct {
	MaxRotate float64 // degrees; the paper uses 45
	CropFrac  float64 // fraction of the side kept by the center crop
	FlipProb  float64 // probability of horizontal flip
}

// DefaultAugmentor returns the paper's augmentation settings.
func DefaultAugmentor() Augmentor {
	return Augmentor{MaxRotate: 45, CropFrac: 0.875, FlipProb: 0.5}
}

// Apply returns an augmented copy of img ([3, H, W]).
func (a Augmentor) Apply(rng *rand.Rand, img *tensor.Tensor) *tensor.Tensor {
	out := img
	if a.MaxRotate > 0 {
		deg := (rng.Float64()*2 - 1) * a.MaxRotate
		out = Rotate(out, deg)
	}
	if a.CropFrac > 0 && a.CropFrac < 1 {
		out = CenterCropResize(out, a.CropFrac)
	}
	if rng.Float64() < a.FlipProb {
		out = HFlip(out)
	}
	return out
}

// Rotate rotates img ([3, H, W]) by deg degrees about its center with
// nearest-neighbour sampling; out-of-bounds samples clamp to the edge.
func Rotate(img *tensor.Tensor, deg float64) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	rad := deg * math.Pi / 180
	sin, cos := math.Sin(rad), math.Cos(rad)
	cy, cx := float64(h-1)/2, float64(w-1)/2
	plane := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Inverse mapping: rotate the destination coordinate back.
			dy, dx := float64(y)-cy, float64(x)-cx
			sy := cy + dy*cos - dx*sin
			sx := cx + dy*sin + dx*cos
			iy := clampInt(int(math.Round(sy)), 0, h-1)
			ix := clampInt(int(math.Round(sx)), 0, w-1)
			for ch := 0; ch < c; ch++ {
				out.Data[ch*plane+y*w+x] = img.Data[ch*plane+iy*w+ix]
			}
		}
	}
	return out
}

// CenterCropResize crops the central frac of each side and resizes back
// to the original size with nearest-neighbour sampling.
func CenterCropResize(img *tensor.Tensor, frac float64) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	ch2 := int(float64(h) * frac)
	cw2 := int(float64(w) * frac)
	if ch2 < 1 {
		ch2 = 1
	}
	if cw2 < 1 {
		cw2 = 1
	}
	y0 := (h - ch2) / 2
	x0 := (w - cw2) / 2
	out := tensor.New(c, h, w)
	plane := h * w
	for y := 0; y < h; y++ {
		sy := y0 + y*ch2/h
		for x := 0; x < w; x++ {
			sx := x0 + x*cw2/w
			for chn := 0; chn < c; chn++ {
				out.Data[chn*plane+y*w+x] = img.Data[chn*plane+sy*w+sx]
			}
		}
	}
	return out
}

// HFlip mirrors img horizontally.
func HFlip(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	plane := h * w
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			row := ch*plane + y*w
			for x := 0; x < w; x++ {
				out.Data[row+x] = img.Data[row+w-1-x]
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
