package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Batch is one training or evaluation minibatch.
type Batch struct {
	// Images is [B, 3, H, W].
	Images *tensor.Tensor
	// Labels holds per-sample class indices *within the split's class
	// list* (not raw dataset class ids), ready for cross-entropy.
	Labels []int
	// Attrs is [B, α]: the instance-level binary attribute targets for
	// the attribute-extraction task.
	Attrs *tensor.Tensor
}

// BatchIterator yields shuffled minibatches over a set of instance
// indices, optionally applying augmentation.
type BatchIterator struct {
	d        *SynthCUB
	indices  []int
	labelOf  map[int]int
	batch    int
	rng      *rand.Rand
	aug      *Augmentor
	pos      int
	epochIdx []int
}

// NewBatchIterator builds an iterator over instanceIdx with the given
// batch size. classList defines the label space (position in classList =
// training label). aug may be nil for evaluation. rng drives shuffling
// and augmentation.
func NewBatchIterator(d *SynthCUB, instanceIdx []int, classList []int, batch int, aug *Augmentor, rng *rand.Rand) *BatchIterator {
	if batch <= 0 {
		panic("dataset.NewBatchIterator: batch must be positive")
	}
	if len(instanceIdx) == 0 {
		panic("dataset.NewBatchIterator: empty instance set")
	}
	it := &BatchIterator{
		d: d, indices: instanceIdx, labelOf: ClassIndexMap(classList),
		batch: batch, rng: rng, aug: aug,
	}
	it.reshuffle()
	return it
}

func (it *BatchIterator) reshuffle() {
	it.epochIdx = append(it.epochIdx[:0], it.indices...)
	if it.rng != nil {
		it.rng.Shuffle(len(it.epochIdx), func(i, j int) {
			it.epochIdx[i], it.epochIdx[j] = it.epochIdx[j], it.epochIdx[i]
		})
	}
	it.pos = 0
}

// BatchesPerEpoch returns the number of batches one epoch yields.
func (it *BatchIterator) BatchesPerEpoch() int {
	return (len(it.indices) + it.batch - 1) / it.batch
}

// Next returns the next minibatch, reshuffling and wrapping at epoch
// boundaries. The final batch of an epoch may be smaller than the batch
// size.
func (it *BatchIterator) Next() Batch {
	if it.pos >= len(it.epochIdx) {
		it.reshuffle()
	}
	end := it.pos + it.batch
	if end > len(it.epochIdx) {
		end = len(it.epochIdx)
	}
	ids := it.epochIdx[it.pos:end]
	it.pos = end
	return it.d.MakeBatch(ids, it.labelOf, it.aug, it.rng)
}

// MakeBatch assembles a batch from explicit instance indices. labelOf
// maps dataset class id → split-local label; instances whose class is
// not in labelOf panic (they would silently corrupt training otherwise).
func (d *SynthCUB) MakeBatch(ids []int, labelOf map[int]int, aug *Augmentor, rng *rand.Rand) Batch {
	if len(ids) == 0 {
		panic("dataset.MakeBatch: empty batch")
	}
	h, w := d.Cfg.Height, d.Cfg.Width
	alpha := d.Schema.Alpha()
	b := Batch{
		Images: tensor.New(len(ids), 3, h, w),
		Labels: make([]int, len(ids)),
		Attrs:  tensor.New(len(ids), alpha),
	}
	imgLen := 3 * h * w
	for i, id := range ids {
		inst := d.Instances[id]
		label, ok := labelOf[inst.Class]
		if !ok {
			panic(fmt.Sprintf("dataset.MakeBatch: instance %d has class %d outside the split", id, inst.Class))
		}
		b.Labels[i] = label
		img := inst.Image
		if aug != nil {
			img = aug.Apply(rng, img)
		}
		copy(b.Images.Data[i*imgLen:(i+1)*imgLen], img.Data)
		copy(b.Attrs.Row(i), inst.Attr)
	}
	return b
}
