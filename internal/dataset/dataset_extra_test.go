package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRendererCellBoundsCoverAllGroups(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 2
	cfg.ImagesPerClass = 1
	d := Generate(cfg)
	r := d.renderer
	// Every group's cell must be non-empty and inside the image.
	for g := range d.Schema.Groups {
		y0, y1, x0, x1 := r.cellBounds(g)
		if y0 >= y1 || x0 >= x1 {
			t.Fatalf("group %d has empty cell [%d,%d)x[%d,%d)", g, y0, y1, x0, x1)
		}
		if y1 > cfg.Height || x1 > cfg.Width || y0 < 0 || x0 < 0 {
			t.Fatalf("group %d cell out of image bounds", g)
		}
	}
	// Cells of different groups must not overlap.
	owner := make([][]int, cfg.Height)
	for y := range owner {
		owner[y] = make([]int, cfg.Width)
		for x := range owner[y] {
			owner[y][x] = -1
		}
	}
	for g := range d.Schema.Groups {
		y0, y1, x0, x1 := r.cellBounds(g)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				if owner[y][x] != -1 {
					t.Fatalf("pixel (%d,%d) owned by groups %d and %d", y, x, owner[y][x], g)
				}
				owner[y][x] = g
			}
		}
	}
}

func TestSameValueRendersSimilarlyAcrossInstances(t *testing.T) {
	// Two instances with identical attribute profiles and no noise must
	// render within illumination jitter of each other.
	cfg := DefaultConfig()
	cfg.NumClasses = 2
	cfg.ImagesPerClass = 1
	cfg.PixelNoise = 0
	cfg.AttrNoise = 0
	d := Generate(cfg)
	rng := rand.New(rand.NewSource(1))
	active := make([]int, d.Schema.NumGroups())
	a := d.renderer.render(rng, active, 0)
	b := d.renderer.render(rng, active, 0)
	var dist float64
	for i := range a.Data {
		dd := float64(a.Data[i] - b.Data[i])
		dist += dd * dd
	}
	dist /= float64(a.Len())
	if dist > 0.01 {
		t.Fatalf("same attribute profile renders too differently: mse %v", dist)
	}
}

func TestDifferentValueChangesOnlyItsCell(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PixelNoise = 0
	d := Generate(cfg)
	rng1 := rand.New(rand.NewSource(2))
	rng2 := rand.New(rand.NewSource(2)) // same jitter stream
	base := make([]int, d.Schema.NumGroups())
	alt := append([]int(nil), base...)
	const changed = 5
	alt[changed] = 1
	a := d.renderer.render(rng1, base, 0)
	b := d.renderer.render(rng2, alt, 0)
	y0, y1, x0, x1 := d.renderer.cellBounds(changed)
	plane := cfg.Height * cfg.Width
	var insideDiff, outsideDiff float64
	for ch := 0; ch < 3; ch++ {
		for y := 0; y < cfg.Height; y++ {
			for x := 0; x < cfg.Width; x++ {
				idx := ch*plane + y*cfg.Width + x
				dd := float64(a.Data[idx] - b.Data[idx])
				if y >= y0 && y < y1 && x >= x0 && x < x1 {
					insideDiff += dd * dd
				} else {
					outsideDiff += dd * dd
				}
			}
		}
	}
	if outsideDiff > 1e-9 {
		t.Fatalf("changing one group's value leaked outside its cell: %v", outsideDiff)
	}
	if insideDiff < 1e-4 {
		t.Fatalf("changing a value did not change its cell: %v", insideDiff)
	}
}

func TestZSSplitPanicsOnBadFrac(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 4
	cfg.ImagesPerClass = 2
	d := Generate(cfg)
	for _, frac := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZSSplit accepted frac %v", frac)
				}
			}()
			d.ZSSplit(rand.New(rand.NewSource(1)), frac)
		}()
	}
}

func TestNoZSSplitPanicsOnBadClassCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 4
	cfg.ImagesPerClass = 2
	d := Generate(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("NoZSSplit accepted too many classes")
		}
	}()
	d.NoZSSplit(rand.New(rand.NewSource(1)), 100, 0.5)
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{NumClasses: 1, ImagesPerClass: 2, Height: 8, Width: 8},
		{NumClasses: 4, ImagesPerClass: 0, Height: 8, Width: 8},
		{NumClasses: 4, ImagesPerClass: 2, Height: 0, Width: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Generate accepted %+v", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

// Property: rotation by θ then −θ is close to identity away from borders
// (nearest-neighbour sampling loses corners, so check the center patch).
func TestPropertyRotateApproxInverse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PixelNoise = 0
	d := Generate(cfg)
	img := d.Instances[0].Image
	f := func(raw int8) bool {
		deg := float64(raw%45)
		back := Rotate(Rotate(img, deg), -deg)
		h, w := cfg.Height, cfg.Width
		var diff float64
		var count int
		for y := h / 3; y < 2*h/3; y++ {
			for x := w / 3; x < 2*w/3; x++ {
				dd := float64(back.At(0, y, x) - img.At(0, y, x))
				diff += dd * dd
				count++
			}
		}
		return diff/float64(count) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchIteratorDeterministicUnderSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 6
	cfg.ImagesPerClass = 4
	d := Generate(cfg)
	sp := d.ZSSplit(rand.New(rand.NewSource(3)), 0.5)
	mk := func() []int {
		it := NewBatchIterator(d, sp.Train, sp.TrainClasses, 4, nil, rand.New(rand.NewSource(4)))
		var labels []int
		for i := 0; i < it.BatchesPerEpoch(); i++ {
			labels = append(labels, it.Next().Labels...)
		}
		return labels
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("iterator order not deterministic under fixed seed")
		}
	}
}

func TestClassAttrRowsSubset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 5
	cfg.ImagesPerClass = 1
	d := Generate(cfg)
	rows := d.ClassAttrRows([]int{3, 1})
	if rows.Dim(0) != 2 || rows.Dim(1) != d.Schema.Alpha() {
		t.Fatalf("shape %v", rows.Shape())
	}
	for j := 0; j < rows.Dim(1); j++ {
		if rows.At(0, j) != d.ClassAttr.At(3, j) || rows.At(1, j) != d.ClassAttr.At(1, j) {
			t.Fatal("ClassAttrRows copied wrong rows")
		}
	}
}
