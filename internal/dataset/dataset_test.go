package dataset

import (
	"math/rand"
	"testing"
)

// The schema must match the paper's CUB topology exactly: these three
// numbers drive the memory-reduction claims of §III-A.
func TestSchemaMatchesPaperTopology(t *testing.T) {
	s := NewCUBSchema()
	if g := s.NumGroups(); g != 28 {
		t.Fatalf("G = %d, want 28", g)
	}
	if v := s.NumValues(); v != 61 {
		t.Fatalf("V = %d, want 61", v)
	}
	if a := s.Alpha(); a != 312 {
		t.Fatalf("α = %d, want 312", a)
	}
}

func TestSchemaGroupSizesMatchCUB(t *testing.T) {
	s := NewCUBSchema()
	want := map[string]int{
		"bill shape": 9, "tail shape": 6, "head pattern": 11,
		"eye color": 14, "bill length": 3, "wing shape": 5,
		"size": 5, "shape": 14, "breast pattern": 4, "crown color": 15,
	}
	for _, g := range s.Groups {
		if w, ok := want[g.Name]; ok && len(g.Values) != w {
			t.Errorf("group %q has %d values, want %d", g.Name, len(g.Values), w)
		}
	}
}

func TestSchemaAttrIndexRoundTrip(t *testing.T) {
	s := NewCUBSchema()
	for g := range s.Groups {
		for vi := range s.Groups[g].Values {
			a := s.AttrIndex(g, vi)
			if s.AttrGroup[a] != g {
				t.Fatalf("attr %d maps to group %d, want %d", a, s.AttrGroup[a], g)
			}
			if s.AttrValue[a] != s.Groups[g].Values[vi] {
				t.Fatalf("attr %d value mismatch", a)
			}
		}
	}
}

func TestSchemaValueSharingAcrossGroups(t *testing.T) {
	s := NewCUBSchema()
	// "spotted" must be shared between pattern groups and head pattern —
	// the codebook-factoring memory saving depends on value reuse.
	uses := map[int]int{}
	for _, g := range s.Groups {
		seen := map[int]bool{}
		for _, v := range g.Values {
			if seen[v] {
				t.Fatalf("group %q lists value %q twice", g.Name, s.Values[v])
			}
			seen[v] = true
			uses[v]++
		}
	}
	var shared int
	for _, n := range uses {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no values shared across groups; factored codebooks would be pointless")
	}
	// Total combinations must re-sum to α.
	var total int
	for _, g := range s.Groups {
		total += len(g.Values)
	}
	if total != s.Alpha() {
		t.Fatalf("Σ group sizes = %d ≠ α = %d", total, s.Alpha())
	}
}

func TestSchemaAttrNames(t *testing.T) {
	s := NewCUBSchema()
	name := s.AttrName(0)
	if name == "" || name == "::" {
		t.Fatalf("bad attr name %q", name)
	}
}

func TestGenerateShapes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 6
	cfg.ImagesPerClass = 3
	d := Generate(cfg)
	if d.NumInstances() != 18 {
		t.Fatalf("instances = %d, want 18", d.NumInstances())
	}
	if d.ClassAttr.Dim(0) != 6 || d.ClassAttr.Dim(1) != 312 {
		t.Fatalf("class attr shape %v", d.ClassAttr.Shape())
	}
	img := d.Instances[0].Image
	if img.Dim(0) != 3 || img.Dim(1) != cfg.Height || img.Dim(2) != cfg.Width {
		t.Fatalf("image shape %v", img.Shape())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 4
	cfg.ImagesPerClass = 2
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a.ClassAttr.Data {
		if a.ClassAttr.Data[i] != b.ClassAttr.Data[i] {
			t.Fatal("class attributes not deterministic under fixed seed")
		}
	}
	for i := range a.Instances[3].Image.Data {
		if a.Instances[3].Image.Data[i] != b.Instances[3].Image.Data[i] {
			t.Fatal("rendering not deterministic under fixed seed")
		}
	}
}

func TestClassAttrOneDominantValuePerGroup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 5
	cfg.ImagesPerClass = 1
	d := Generate(cfg)
	for c := 0; c < cfg.NumClasses; c++ {
		row := d.ClassAttr.Row(c)
		for g, grp := range d.Schema.Groups {
			off := d.Schema.GroupAttrOffset[g]
			var dominant int
			for vi := range grp.Values {
				v := row[off+vi]
				if v < 0 || v > 1 {
					t.Fatalf("certainty %v out of [0,1]", v)
				}
				if v >= 0.7 {
					dominant++
				}
			}
			if dominant != 1 {
				t.Fatalf("class %d group %q has %d dominant values, want 1", c, grp.Name, dominant)
			}
		}
	}
}

func TestInstanceAttrExactlyOnePerGroup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 4
	cfg.ImagesPerClass = 3
	d := Generate(cfg)
	for _, inst := range d.Instances {
		for g, grp := range d.Schema.Groups {
			off := d.Schema.GroupAttrOffset[g]
			var active int
			for vi := range grp.Values {
				switch inst.Attr[off+vi] {
				case 0:
				case 1:
					active++
				default:
					t.Fatalf("instance attribute not binary: %v", inst.Attr[off+vi])
				}
			}
			if active != 1 {
				t.Fatalf("group %q has %d active values, want exactly 1", grp.Name, active)
			}
		}
	}
}

func TestInstanceAttrsMostlyFollowClassProfile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 5
	cfg.ImagesPerClass = 20
	cfg.AttrNoise = 0.05
	d := Generate(cfg)
	// For each class, the instance-majority value should usually be the
	// class-dominant value.
	agree, total := 0, 0
	for c := 0; c < cfg.NumClasses; c++ {
		row := d.ClassAttr.Row(c)
		for g, grp := range d.Schema.Groups {
			off := d.Schema.GroupAttrOffset[g]
			classBest, bestV := 0, float32(-1)
			for vi := range grp.Values {
				if row[off+vi] > bestV {
					bestV, classBest = row[off+vi], vi
				}
			}
			counts := make([]int, len(grp.Values))
			for _, inst := range d.Instances {
				if inst.Class != c {
					continue
				}
				for vi := range grp.Values {
					if inst.Attr[off+vi] == 1 {
						counts[vi]++
					}
				}
			}
			instBest := 0
			for vi, n := range counts {
				if n > counts[instBest] {
					instBest = vi
				}
			}
			total++
			if instBest == classBest {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("instance majority agrees with class profile only %.2f of the time", frac)
	}
}

func TestImagesDifferAcrossValues(t *testing.T) {
	// Two instances of different classes should render differently.
	cfg := DefaultConfig()
	cfg.NumClasses = 2
	cfg.ImagesPerClass = 1
	cfg.PixelNoise = 0
	d := Generate(cfg)
	a, b := d.Instances[0].Image, d.Instances[1].Image
	var diff float64
	for i := range a.Data {
		dd := float64(a.Data[i] - b.Data[i])
		diff += dd * dd
	}
	if diff < 1e-3 {
		t.Fatal("different classes render nearly identical images")
	}
}

func TestPixelRange(t *testing.T) {
	d := Generate(DefaultConfig())
	for _, inst := range d.Instances[:5] {
		mn, mx := inst.Image.MinMax()
		if mn < 0 || mx > 1 {
			t.Fatalf("pixels out of [0,1]: [%v, %v]", mn, mx)
		}
	}
}

// --- splits ---

func TestZSSplitClassesDisjoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 20
	d := Generate(cfg)
	rng := rand.New(rand.NewSource(2))
	sp := d.ZSSplit(rng, 0.75)
	seen := map[int]bool{}
	for _, c := range sp.TrainClasses {
		seen[c] = true
	}
	for _, c := range sp.TestClasses {
		if seen[c] {
			t.Fatalf("class %d appears in both train and test of a ZS split", c)
		}
	}
	if len(sp.TrainClasses) != 15 || len(sp.TestClasses) != 5 {
		t.Fatalf("ZS split sizes %d/%d, want 15/5", len(sp.TrainClasses), len(sp.TestClasses))
	}
	// Instances follow their classes.
	inTrain := ClassIndexMap(sp.TrainClasses)
	for _, i := range sp.Train {
		if _, ok := inTrain[d.Instances[i].Class]; !ok {
			t.Fatal("train instance from test class")
		}
	}
}

func TestNoZSSplitSharesClasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 10
	cfg.ImagesPerClass = 6
	d := Generate(cfg)
	rng := rand.New(rand.NewSource(3))
	sp := d.NoZSSplit(rng, 5, 0.5)
	if len(sp.TrainClasses) != 5 || len(sp.TestClasses) != 5 {
		t.Fatalf("noZS class count %d/%d", len(sp.TrainClasses), len(sp.TestClasses))
	}
	// Every selected class appears on both sides.
	trainBy := map[int]int{}
	for _, i := range sp.Train {
		trainBy[d.Instances[i].Class]++
	}
	testBy := map[int]int{}
	for _, i := range sp.Test {
		testBy[d.Instances[i].Class]++
	}
	for _, c := range sp.TrainClasses {
		if trainBy[c] == 0 || testBy[c] == 0 {
			t.Fatalf("class %d missing from one side of noZS split", c)
		}
	}
	// No instance in both.
	inTrain := map[int]bool{}
	for _, i := range sp.Train {
		inTrain[i] = true
	}
	for _, i := range sp.Test {
		if inTrain[i] {
			t.Fatal("instance leaked across noZS split")
		}
	}
}

func TestZSValSplitThreeWayDisjoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 20
	d := Generate(cfg)
	rng := rand.New(rand.NewSource(4))
	train, val := d.ZSValSplit(rng, 0.6, 0.2)
	all := map[int]string{}
	for _, c := range train.TrainClasses {
		all[c] = "train"
	}
	for _, c := range val.TestClasses {
		if all[c] != "" {
			t.Fatalf("val class %d also %s", c, all[c])
		}
		all[c] = "val"
	}
	for _, c := range train.TestClasses {
		if all[c] != "" {
			t.Fatalf("test class %d also %s", c, all[c])
		}
	}
}

// --- augmentation ---

func TestHFlipInvolution(t *testing.T) {
	d := Generate(DefaultConfig())
	img := d.Instances[0].Image
	back := HFlip(HFlip(img))
	for i := range img.Data {
		if back.Data[i] != img.Data[i] {
			t.Fatal("double flip is not identity")
		}
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	d := Generate(DefaultConfig())
	img := d.Instances[0].Image
	rot := Rotate(img, 0)
	for i := range img.Data {
		if rot.Data[i] != img.Data[i] {
			t.Fatal("0° rotation changed the image")
		}
	}
}

func TestRotatePreservesShapeAndRange(t *testing.T) {
	d := Generate(DefaultConfig())
	img := d.Instances[0].Image
	rot := Rotate(img, 33)
	if !rot.SameShape(img) {
		t.Fatalf("rotate changed shape: %v", rot.Shape())
	}
	mn, mx := rot.MinMax()
	if mn < 0 || mx > 1 {
		t.Fatal("rotation produced out-of-range pixels")
	}
}

func TestCenterCropResizeShape(t *testing.T) {
	d := Generate(DefaultConfig())
	img := d.Instances[0].Image
	out := CenterCropResize(img, 0.875)
	if !out.SameShape(img) {
		t.Fatalf("crop-resize changed shape: %v", out.Shape())
	}
}

func TestAugmentorApplyDeterministicUnderSeed(t *testing.T) {
	d := Generate(DefaultConfig())
	img := d.Instances[0].Image
	aug := DefaultAugmentor()
	a := aug.Apply(rand.New(rand.NewSource(5)), img)
	b := aug.Apply(rand.New(rand.NewSource(5)), img)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("augmentation not deterministic under fixed seed")
		}
	}
}

// --- batching ---

func TestBatchIteratorCoversEpoch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 6
	cfg.ImagesPerClass = 4
	d := Generate(cfg)
	rng := rand.New(rand.NewSource(6))
	sp := d.ZSSplit(rng, 0.5)
	it := NewBatchIterator(d, sp.Train, sp.TrainClasses, 4, nil, rng)
	seenLabels := map[int]bool{}
	var total int
	for i := 0; i < it.BatchesPerEpoch(); i++ {
		b := it.Next()
		total += len(b.Labels)
		for _, l := range b.Labels {
			if l < 0 || l >= len(sp.TrainClasses) {
				t.Fatalf("label %d outside split label space", l)
			}
			seenLabels[l] = true
		}
		if b.Images.Dim(0) != len(b.Labels) || b.Attrs.Dim(0) != len(b.Labels) {
			t.Fatal("batch tensor sizes disagree with labels")
		}
	}
	if total != len(sp.Train) {
		t.Fatalf("epoch covered %d instances, want %d", total, len(sp.Train))
	}
}

func TestMakeBatchRejectsForeignClass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClasses = 4
	d := Generate(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("MakeBatch accepted an out-of-split class")
		}
	}()
	d.MakeBatch([]int{0}, map[int]int{}, nil, nil)
}

// --- SynthImageNet ---

func TestSynthImageNetShapes(t *testing.T) {
	d := GenerateImageNet(5, 4, 12, 12, 9)
	if d.Len() != 20 {
		t.Fatalf("len = %d, want 20", d.Len())
	}
	imgs, labels := d.Batch([]int{0, 7, 19})
	if imgs.Dim(0) != 3 || imgs.Dim(1) != 3 || imgs.Dim(2) != 12 {
		t.Fatalf("batch shape %v", imgs.Shape())
	}
	if labels[0] != 0 || labels[2] != 4 {
		t.Fatalf("labels wrong: %v", labels)
	}
}

func TestSynthImageNetClassesDiffer(t *testing.T) {
	d := GenerateImageNet(2, 1, 12, 12, 10)
	var diff float64
	imgLen := 3 * 12 * 12
	for i := 0; i < imgLen; i++ {
		dd := float64(d.Images.Data[i] - d.Images.Data[imgLen+i])
		diff += dd * dd
	}
	if diff < 1e-3 {
		t.Fatal("SynthImageNet classes render nearly identically")
	}
}
