package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// SynthImageNet is the phase-I pre-training substrate: a generic
// image-classification dataset whose classes are defined by global
// color/texture signatures unrelated to the SynthCUB attribute schema.
// It plays the role ImageNet1K plays in the paper — giving the backbone
// generic visual features before the domain-specific phases — without
// requiring the real dataset.
type SynthImageNet struct {
	NumClasses    int
	Height, Width int
	Images        *tensor.Tensor // [N, 3, H, W]
	Labels        []int
}

// GenerateImageNet builds a SynthImageNet dataset with the given class
// count and images per class. Each class gets a random two-tone gradient
// plus sinusoidal texture; instances perturb phase, gain, and noise.
func GenerateImageNet(numClasses, perClass, h, w int, seed int64) *SynthImageNet {
	if numClasses <= 1 || perClass <= 0 {
		panic(fmt.Sprintf("dataset.GenerateImageNet: bad sizes classes=%d perClass=%d", numClasses, perClass))
	}
	rng := rand.New(rand.NewSource(seed))
	n := numClasses * perClass
	d := &SynthImageNet{
		NumClasses: numClasses, Height: h, Width: w,
		Images: tensor.New(n, 3, h, w),
		Labels: make([]int, n),
	}
	type sig struct {
		r1, g1, b1, r2, g2, b2 float32
		fx, fy, amp            float64
	}
	sigs := make([]sig, numClasses)
	for c := range sigs {
		sigs[c] = sig{
			r1: rng.Float32(), g1: rng.Float32(), b1: rng.Float32(),
			r2: rng.Float32(), g2: rng.Float32(), b2: rng.Float32(),
			fx: 0.3 + rng.Float64()*2.5, fy: 0.3 + rng.Float64()*2.5,
			amp: 0.1 + rng.Float64()*0.3,
		}
	}
	plane := h * w
	imgLen := 3 * plane
	idx := 0
	for c := 0; c < numClasses; c++ {
		s := sigs[c]
		for k := 0; k < perClass; k++ {
			d.Labels[idx] = c
			phase := rng.Float64() * 2 * math.Pi
			gain := 1 + rng.NormFloat64()*0.08
			base := idx * imgLen
			for y := 0; y < h; y++ {
				fy := float64(y) / float64(h-1)
				for x := 0; x < w; x++ {
					fx := float64(x) / float64(w-1)
					mix := float32(fx+fy) / 2
					tex := float32(s.amp * math.Sin(s.fx*float64(x)+s.fy*float64(y)+phase))
					r := (s.r1*(1-mix) + s.r2*mix + tex) * float32(gain)
					g := (s.g1*(1-mix) + s.g2*mix + tex) * float32(gain)
					bch := (s.b1*(1-mix) + s.b2*mix + tex) * float32(gain)
					p := y*w + x
					d.Images.Data[base+0*plane+p] = clamp01(r + float32(rng.NormFloat64())*0.03)
					d.Images.Data[base+1*plane+p] = clamp01(g + float32(rng.NormFloat64())*0.03)
					d.Images.Data[base+2*plane+p] = clamp01(bch + float32(rng.NormFloat64())*0.03)
				}
			}
			idx++
		}
	}
	return d
}

// Batch returns images[ids] and the matching labels as a training batch.
func (d *SynthImageNet) Batch(ids []int) (*tensor.Tensor, []int) {
	h, w := d.Height, d.Width
	imgLen := 3 * h * w
	out := tensor.New(len(ids), 3, h, w)
	labels := make([]int, len(ids))
	for i, id := range ids {
		copy(out.Data[i*imgLen:(i+1)*imgLen], d.Images.Data[id*imgLen:(id+1)*imgLen])
		labels[i] = d.Labels[id]
	}
	return out, labels
}

// Len returns the number of images.
func (d *SynthImageNet) Len() int { return len(d.Labels) }
