package dataset

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// renderer turns a per-group value assignment into an RGB image. Each
// attribute group owns a rectangular region of the image (a cell in a
// fixed grid) and each vocabulary value owns a visual signature — a base
// color plus a spatial texture (frequency/orientation). Rendering a group
// paints its region with the signature of its active value.
//
// Because signatures belong to *values* (shared across groups) and
// regions belong to *groups*, a model that learns value appearance on
// training classes can recognize novel value combinations on unseen
// classes — exactly the generalization zero-shot classification needs.
type renderer struct {
	schema *Schema
	h, w   int
	// grid geometry
	cols, rows int
	// per-value visual signatures
	baseR, baseG, baseB []float32
	freqX, freqY, phase []float32
	amp                 []float32
}

// newRenderer assigns each value a deterministic signature drawn from rng
// (the dataset seed), so two datasets with the same seed render
// identically.
func newRenderer(schema *Schema, h, w int, rng *rand.Rand) *renderer {
	nv := schema.NumValues()
	r := &renderer{
		schema: schema, h: h, w: w,
		baseR: make([]float32, nv), baseG: make([]float32, nv), baseB: make([]float32, nv),
		freqX: make([]float32, nv), freqY: make([]float32, nv),
		phase: make([]float32, nv), amp: make([]float32, nv),
	}
	// Grid: smallest near-square grid with ≥ G cells.
	g := schema.NumGroups()
	r.cols = 1
	for r.cols*r.cols < g {
		r.cols++
	}
	r.rows = (g + r.cols - 1) / r.cols

	for v := 0; v < nv; v++ {
		// Well-separated base colors: random points in RGB space.
		r.baseR[v] = rng.Float32()
		r.baseG[v] = rng.Float32()
		r.baseB[v] = rng.Float32()
		// Texture: sinusoidal modulation with value-specific frequency.
		r.freqX[v] = 0.5 + rng.Float32()*3
		r.freqY[v] = 0.5 + rng.Float32()*3
		r.phase[v] = rng.Float32() * 2 * math.Pi
		r.amp[v] = 0.15 + rng.Float32()*0.2
	}
	return r
}

// cellBounds returns the pixel rectangle owned by group g.
func (r *renderer) cellBounds(g int) (y0, y1, x0, x1 int) {
	row, col := g/r.cols, g%r.cols
	y0 = row * r.h / r.rows
	y1 = (row + 1) * r.h / r.rows
	x0 = col * r.w / r.cols
	x1 = (col + 1) * r.w / r.cols
	if y1 > r.h {
		y1 = r.h
	}
	if x1 > r.w {
		x1 = r.w
	}
	return
}

// render paints the image for the given active value slot per group and
// adds Gaussian pixel noise of the given standard deviation.
func (r *renderer) render(rng *rand.Rand, activeSlot []int, noise float64) *tensor.Tensor {
	img := tensor.New(3, r.h, r.w)
	plane := r.h * r.w
	// Neutral background.
	for i := range img.Data {
		img.Data[i] = 0.5
	}
	// Small global illumination jitter per instance.
	gain := 1 + float32(rng.NormFloat64())*0.05
	for g := range r.schema.Groups {
		v := r.schema.Groups[g].Values[activeSlot[g]]
		y0, y1, x0, x1 := r.cellBounds(g)
		kind := r.schema.Groups[g].Kind
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				tex := r.amp[v] * float32(math.Sin(
					float64(r.freqX[v])*float64(x-x0)+
						float64(r.freqY[v])*float64(y-y0)+
						float64(r.phase[v])))
				var cr, cg, cb float32
				switch kind {
				case KindColor:
					// Color groups: flat tint with mild texture.
					cr, cg, cb = r.baseR[v], r.baseG[v], r.baseB[v]
					cr += 0.3 * tex
					cg += 0.3 * tex
					cb += 0.3 * tex
				case KindPattern:
					// Pattern groups: texture dominates, grayscale-ish.
					lum := 0.5 + tex*2
					cr = lum*0.7 + 0.3*r.baseR[v]
					cg = lum*0.7 + 0.3*r.baseG[v]
					cb = lum*0.7 + 0.3*r.baseB[v]
				case KindShape:
					// Shape groups: oriented gradient whose direction is
					// value-specific, plus tint.
					gx := float32(x-x0) / float32(max(1, x1-x0-1))
					gy := float32(y-y0) / float32(max(1, y1-y0-1))
					grad := gx*r.freqX[v]/3.5 + gy*r.freqY[v]/3.5
					cr = 0.5*r.baseR[v] + 0.5*grad
					cg = 0.5*r.baseG[v] + 0.5*grad
					cb = 0.5*r.baseB[v] + 0.5*grad + 0.2*tex
				}
				idx := y*r.w + x
				img.Data[0*plane+idx] = clamp01(cr * gain)
				img.Data[1*plane+idx] = clamp01(cg * gain)
				img.Data[2*plane+idx] = clamp01(cb * gain)
			}
		}
	}
	if noise > 0 {
		for i := range img.Data {
			img.Data[i] = clamp01(img.Data[i] + float32(rng.NormFloat64()*noise))
		}
	}
	return img
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
