// Package dataset provides the synthetic data substrates of the
// reproduction: SynthCUB, a procedurally generated stand-in for
// CUB-200-2011 with the paper's exact attribute topology (α=312 attribute
// group/value combinations over G=28 groups and V=61 unique values), and
// SynthImageNet, a generic classification dataset for phase-I
// pre-training. See DESIGN.md §1 for why these substitutions preserve the
// behaviour the experiments measure.
package dataset

import "fmt"

// GroupKind drives how a group's active value is rendered into the image.
type GroupKind int

// Group kinds: color groups tint their region, pattern groups modulate
// texture, shape-like groups alter spatial structure.
const (
	KindColor GroupKind = iota
	KindPattern
	KindShape
)

// Group is one attribute group (e.g. "crown color") with its value
// vocabulary given as indices into the schema's shared value list.
type Group struct {
	Name   string
	Kind   GroupKind
	Values []int // indices into Schema.Values
}

// Schema is the attribute topology: the list of groups, the shared value
// vocabulary, and the flattened attribute index (one entry per
// group/value combination, the paper's α).
type Schema struct {
	Groups []Group
	Values []string
	// AttrGroup[a] and AttrValue[a] give the group index and value index
	// (into Values) of flattened attribute a ∈ [0, Alpha).
	AttrGroup []int
	AttrValue []int
	// GroupAttrOffset[g] is the first flattened-attribute index of group g;
	// group g covers [offset, offset+len(Groups[g].Values)).
	GroupAttrOffset []int
}

// Alpha returns the total number of group/value combinations (312 for the
// CUB topology).
func (s *Schema) Alpha() int { return len(s.AttrGroup) }

// NumGroups returns G.
func (s *Schema) NumGroups() int { return len(s.Groups) }

// NumValues returns V, the size of the shared value vocabulary.
func (s *Schema) NumValues() int { return len(s.Values) }

// AttrIndex returns the flattened attribute index of value slot vi within
// group g (vi indexes the group's Values list, not the global vocabulary).
func (s *Schema) AttrIndex(g, vi int) int {
	if g < 0 || g >= len(s.Groups) {
		panic(fmt.Sprintf("dataset.Schema.AttrIndex: group %d out of range", g))
	}
	if vi < 0 || vi >= len(s.Groups[g].Values) {
		panic(fmt.Sprintf("dataset.Schema.AttrIndex: value slot %d out of range for group %q",
			vi, s.Groups[g].Name))
	}
	return s.GroupAttrOffset[g] + vi
}

// AttrName renders the flattened attribute a as "group::value", mirroring
// CUB's "has_crown_color::blue" naming.
func (s *Schema) AttrName(a int) string {
	return s.Groups[s.AttrGroup[a]].Name + "::" + s.Values[s.AttrValue[a]]
}

// colorNames is the 15-color vocabulary of CUB.
var colorNames = []string{
	"blue", "brown", "iridescent", "purple", "rufous", "grey", "yellow",
	"olive", "green", "pink", "orange", "black", "white", "red", "buff",
}

// patternNames is the 4-pattern vocabulary of CUB.
var patternNames = []string{"solid", "spotted", "striped", "multi-colored"}

var billShapeNames = []string{
	"curved", "dagger", "hooked", "needle", "hooked-seabird",
	"spatulate", "all-purpose", "cone", "specialized",
}

var tailShapeNames = []string{
	"forked", "rounded", "notched", "fan-shaped", "pointed", "squared",
}

// headPatternNew are the head-pattern values not shared with the generic
// pattern vocabulary ("spotted" and "striped" are shared).
var headPatternNew = []string{
	"crested", "masked", "malar", "unique-pattern", "eyebrow",
	"eyering", "plain", "eyeline", "capped",
}

var billLengthNames = []string{
	"about-the-same-as-head", "longer-than-head", "shorter-than-head",
}

// wingShapeNew are the wing-shape values not shared with the tail-shape
// vocabulary ("rounded" and "pointed" are shared).
var wingShapeNew = []string{"broad", "tapered", "long"}

var sizeNames = []string{"very-small", "small", "medium", "large", "very-large"}

// bodyShapeNew are the body-shape values not shared with other groups.
var bodyShapeNew = []string{
	"duck-like", "perching-like", "gull-like", "hawk-like", "owl-like",
	"swallow-like", "chicken-like",
}

// NewCUBSchema builds the CUB-200 attribute topology. The group structure
// matches the real dataset exactly (28 groups, 312 combinations: fifteen
// 15-value color groups plus a 14-value eye-color group, five 4-value
// pattern groups, bill shape 9, tail shape 6, head pattern 11, bill
// length 3, wing shape 5, size 5, body shape 14). Seven generic
// descriptors are reused inside the body-shape group so that the shared
// value vocabulary has exactly V=61 entries, the count the paper's memory
// arithmetic assumes (see DESIGN.md).
func NewCUBSchema() *Schema {
	s := &Schema{}
	valueIdx := map[string]int{}
	intern := func(name string) int {
		if i, ok := valueIdx[name]; ok {
			return i
		}
		i := len(s.Values)
		s.Values = append(s.Values, name)
		valueIdx[name] = i
		return i
	}
	internAll := func(names []string) []int {
		out := make([]int, len(names))
		for i, n := range names {
			out[i] = intern(n)
		}
		return out
	}

	colorIdx := internAll(colorNames)
	patternIdx := internAll(patternNames)

	addGroup := func(name string, kind GroupKind, values []int) {
		s.Groups = append(s.Groups, Group{Name: name, Kind: kind, Values: values})
	}
	colorGroup := func(name string) { addGroup(name, KindColor, colorIdx) }
	patternGroup := func(name string) { addGroup(name, KindPattern, patternIdx) }

	// Group order follows Table I of the paper.
	addGroup("bill shape", KindShape, internAll(billShapeNames))
	colorGroup("wing color")
	colorGroup("upperpart color")
	colorGroup("underpart color")
	patternGroup("breast pattern")
	colorGroup("back color")
	addGroup("tail shape", KindShape, internAll(tailShapeNames))
	colorGroup("uppertail color")
	// Head pattern: 11 values, 2 shared with the pattern vocabulary.
	headVals := append(internAll(headPatternNew), intern("spotted"), intern("striped"))
	addGroup("head pattern", KindPattern, headVals)
	colorGroup("breast color")
	colorGroup("throat color")
	// Eye color has 14 values in CUB (no "buff").
	addGroup("eye color", KindColor, colorIdx[:14])
	addGroup("bill length", KindShape, internAll(billLengthNames))
	colorGroup("forehead color")
	colorGroup("tail color")
	colorGroup("nape color")
	colorGroup("belly color")
	// Wing shape: 5 values, 2 shared with tail shape.
	wingVals := append(internAll(wingShapeNew), intern("rounded"), intern("pointed"))
	addGroup("wing shape", KindShape, wingVals)
	addGroup("size", KindShape, internAll(sizeNames))
	// Body shape: 14 values, 7 new + 7 reused generic descriptors.
	bodyVals := append(internAll(bodyShapeNew),
		intern("long"), intern("broad"), intern("tapered"),
		intern("plain"), intern("capped"), intern("masked"), intern("crested"))
	addGroup("shape", KindShape, bodyVals)
	patternGroup("back pattern")
	patternGroup("tail pattern")
	patternGroup("belly pattern")
	colorGroup("primary color")
	colorGroup("leg color")
	colorGroup("bill color")
	colorGroup("crown color")
	patternGroup("wing pattern")

	// Flatten the attribute index.
	for g, grp := range s.Groups {
		s.GroupAttrOffset = append(s.GroupAttrOffset, len(s.AttrGroup))
		for _, v := range grp.Values {
			s.AttrGroup = append(s.AttrGroup, g)
			s.AttrValue = append(s.AttrValue, v)
		}
	}
	return s
}
