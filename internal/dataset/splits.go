package dataset

import (
	"fmt"
	"math/rand"
)

// Split is a partition of a SynthCUB dataset into train and test sets.
// For the ZS (zero-shot) split, TrainClasses and TestClasses are disjoint
// — the defining property of the task (Y_r ∩ Y_e = ∅, §II-a). For the
// noZS split they are identical and the *instances* are partitioned.
type Split struct {
	Name         string
	TrainClasses []int
	TestClasses  []int
	// Train and Test index into SynthCUB.Instances.
	Train []int
	Test  []int
}

// NoZSSplit reproduces the paper's noZS evaluation protocol: a subset of
// classes (100 of CUB's 200) appears in both train and test, with each
// class's images split by trainFrac. Used for the Table I attribute-
// extraction comparison.
func (d *SynthCUB) NoZSSplit(rng *rand.Rand, numClasses int, trainFrac float64) Split {
	if numClasses <= 0 || numClasses > d.Cfg.NumClasses {
		panic(fmt.Sprintf("dataset.NoZSSplit: numClasses %d out of range (have %d)",
			numClasses, d.Cfg.NumClasses))
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("dataset.NoZSSplit: trainFrac must be in (0,1)")
	}
	classes := rng.Perm(d.Cfg.NumClasses)[:numClasses]
	inSet := make(map[int]bool, numClasses)
	for _, c := range classes {
		inSet[c] = true
	}
	sp := Split{
		Name:         "noZS",
		TrainClasses: append([]int(nil), classes...),
		TestClasses:  append([]int(nil), classes...),
	}
	// Per-class instance split so every class appears on both sides.
	perClass := map[int][]int{}
	for i, inst := range d.Instances {
		if inSet[inst.Class] {
			perClass[inst.Class] = append(perClass[inst.Class], i)
		}
	}
	for _, c := range classes {
		ids := perClass[c]
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		cut := int(float64(len(ids)) * trainFrac)
		if cut == 0 {
			cut = 1
		}
		if cut == len(ids) {
			cut = len(ids) - 1
		}
		sp.Train = append(sp.Train, ids[:cut]...)
		sp.Test = append(sp.Test, ids[cut:]...)
	}
	return sp
}

// ZSSplit reproduces the paper's ZS protocol: classes are partitioned
// into disjoint train and test sets (150/50 in the paper, i.e. 75%/25%).
func (d *SynthCUB) ZSSplit(rng *rand.Rand, trainFrac float64) Split {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("dataset.ZSSplit: trainFrac must be in (0,1)")
	}
	perm := rng.Perm(d.Cfg.NumClasses)
	cut := int(float64(d.Cfg.NumClasses) * trainFrac)
	if cut == 0 {
		cut = 1
	}
	if cut == d.Cfg.NumClasses {
		cut = d.Cfg.NumClasses - 1
	}
	sp := Split{
		Name:         "ZS",
		TrainClasses: append([]int(nil), perm[:cut]...),
		TestClasses:  append([]int(nil), perm[cut:]...),
	}
	sp.Train, sp.Test = d.assignInstances(sp.TrainClasses, sp.TestClasses)
	return sp
}

// ZSValSplit is the three-way variant behind Fig. 5: disjoint train /
// validation / test classes (the paper tunes hyperparameters on a
// 50-class validation split disjoint from both).
func (d *SynthCUB) ZSValSplit(rng *rand.Rand, trainFrac, valFrac float64) (train Split, val Split) {
	if trainFrac+valFrac >= 1 || trainFrac <= 0 || valFrac <= 0 {
		panic("dataset.ZSValSplit: need trainFrac, valFrac > 0 with sum < 1")
	}
	perm := rng.Perm(d.Cfg.NumClasses)
	nTrain := int(float64(d.Cfg.NumClasses) * trainFrac)
	nVal := int(float64(d.Cfg.NumClasses) * valFrac)
	if nTrain == 0 {
		nTrain = 1
	}
	if nVal == 0 {
		nVal = 1
	}
	trainClasses := append([]int(nil), perm[:nTrain]...)
	valClasses := append([]int(nil), perm[nTrain:nTrain+nVal]...)
	testClasses := append([]int(nil), perm[nTrain+nVal:]...)

	train = Split{Name: "ZS", TrainClasses: trainClasses, TestClasses: testClasses}
	train.Train, train.Test = d.assignInstances(trainClasses, testClasses)
	val = Split{Name: "ZSval", TrainClasses: trainClasses, TestClasses: valClasses}
	val.Train, val.Test = d.assignInstances(trainClasses, valClasses)
	return train, val
}

// assignInstances buckets instance indices by class membership.
func (d *SynthCUB) assignInstances(trainClasses, testClasses []int) (train, test []int) {
	inTrain := map[int]bool{}
	for _, c := range trainClasses {
		inTrain[c] = true
	}
	inTest := map[int]bool{}
	for _, c := range testClasses {
		inTest[c] = true
	}
	for i, inst := range d.Instances {
		switch {
		case inTrain[inst.Class]:
			train = append(train, i)
		case inTest[inst.Class]:
			test = append(test, i)
		}
	}
	return
}

// ClassIndexMap returns a map from dataset class id to position within
// the split's class list, the label space models train against.
func ClassIndexMap(classes []int) map[int]int {
	m := make(map[int]int, len(classes))
	for i, c := range classes {
		m[c] = i
	}
	return m
}
