package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Config controls SynthCUB generation. The defaults used by the
// experiment harness are intentionally small (see DESIGN.md §6): the
// shape of the paper's results is reproduced at laptop scale.
type Config struct {
	// NumClasses is the number of bird species to synthesize (CUB has 200).
	NumClasses int
	// ImagesPerClass is the number of instances rendered per class
	// (CUB-200 averages ≈59).
	ImagesPerClass int
	// Height and Width are the rendered image size in pixels.
	Height, Width int
	// AttrNoise is the probability that an instance deviates from its
	// class's primary value in a group (intra-class attribute variation).
	AttrNoise float64
	// PixelNoise is the standard deviation of additive Gaussian pixel
	// noise applied after rendering.
	PixelNoise float64
	// Seed drives all generation; identical configs generate identical
	// datasets.
	Seed int64
}

// DefaultConfig returns the laptop-scale configuration used by tests and
// quick experiment runs.
func DefaultConfig() Config {
	return Config{
		NumClasses:     40,
		ImagesPerClass: 10,
		Height:         16,
		Width:          16,
		AttrNoise:      0.1,
		PixelNoise:     0.05,
		Seed:           1,
	}
}

// Instance is one rendered image with its class label and instance-level
// binary attribute vector (the phase-II attribute-extraction target).
type Instance struct {
	Class int
	// Attr is the α-length {0,1} instance attribute vector: exactly one
	// active value per group, sampled from the class distribution.
	Attr []float32
	// Image is the rendered [3, H, W] image.
	Image *tensor.Tensor
}

// SynthCUB is the generated dataset: a class-attribute matrix A ∈
// [0,1]^{C×α} of continuous certainties plus rendered instances.
type SynthCUB struct {
	Cfg       Config
	Schema    *Schema
	ClassAttr *tensor.Tensor // [C, α]
	ClassNames []string
	Instances []Instance
	renderer  *renderer
}

// Generate builds a SynthCUB dataset from cfg. Class attribute profiles
// are sampled first (one dominant value per group with certainty in
// [0.7,1], occasionally a secondary value, small background certainty
// elsewhere, mirroring CUB's continuous class-level attribute
// certainties); each instance then samples one concrete value per group
// from its class profile and renders the result to pixels.
func Generate(cfg Config) *SynthCUB {
	if cfg.NumClasses <= 1 || cfg.ImagesPerClass <= 0 || cfg.Height <= 0 || cfg.Width <= 0 {
		panic(fmt.Sprintf("dataset.Generate: bad config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := NewCUBSchema()
	d := &SynthCUB{
		Cfg:       cfg,
		Schema:    schema,
		ClassAttr: tensor.New(cfg.NumClasses, schema.Alpha()),
		renderer:  newRenderer(schema, cfg.Height, cfg.Width, rand.New(rand.NewSource(cfg.Seed+7919))),
	}

	for c := 0; c < cfg.NumClasses; c++ {
		d.ClassNames = append(d.ClassNames, fmt.Sprintf("species-%03d", c))
		row := d.ClassAttr.Row(c)
		for g, grp := range schema.Groups {
			primary := rng.Intn(len(grp.Values))
			off := schema.GroupAttrOffset[g]
			for vi := range grp.Values {
				// Small background certainty for inactive values.
				row[off+vi] = rng.Float32() * 0.05
			}
			row[off+primary] = 0.7 + rng.Float32()*0.3
			if rng.Float64() < 0.3 && len(grp.Values) > 1 {
				// Secondary value: a weaker but real alternative, as in
				// CUB's soft class attributes.
				secondary := rng.Intn(len(grp.Values) - 1)
				if secondary >= primary {
					secondary++
				}
				row[off+secondary] = 0.1 + rng.Float32()*0.3
			}
		}
	}

	for c := 0; c < cfg.NumClasses; c++ {
		for k := 0; k < cfg.ImagesPerClass; k++ {
			d.Instances = append(d.Instances, d.sampleInstance(rng, c))
		}
	}
	return d
}

// sampleInstance draws instance-level attributes from the class profile
// and renders the image.
func (d *SynthCUB) sampleInstance(rng *rand.Rand, class int) Instance {
	schema := d.Schema
	attr := make([]float32, schema.Alpha())
	active := make([]int, schema.NumGroups()) // chosen value slot per group
	classRow := d.ClassAttr.Row(class)
	for g, grp := range schema.Groups {
		off := schema.GroupAttrOffset[g]
		// Sample one value per group proportional to class certainty
		// (exactly one active attribute per group, the imbalance structure
		// §III-A's weighted BCE addresses).
		var total float64
		for vi := range grp.Values {
			total += float64(classRow[off+vi])
		}
		var pick int
		if rng.Float64() < d.Cfg.AttrNoise {
			pick = rng.Intn(len(grp.Values)) // label-noise deviation
		} else {
			r := rng.Float64() * total
			for vi := range grp.Values {
				r -= float64(classRow[off+vi])
				if r <= 0 {
					pick = vi
					break
				}
			}
		}
		attr[off+pick] = 1
		active[g] = pick
	}
	img := d.renderer.render(rng, active, d.Cfg.PixelNoise)
	return Instance{Class: class, Attr: attr, Image: img}
}

// NumInstances returns the number of rendered instances.
func (d *SynthCUB) NumInstances() int { return len(d.Instances) }

// ClassAttrRows returns the class-attribute matrix restricted to the
// given class ids, as a new [len(ids), α] tensor. This is the A matrix
// handed to the attribute encoder for a train or test split.
func (d *SynthCUB) ClassAttrRows(ids []int) *tensor.Tensor {
	out := tensor.New(len(ids), d.Schema.Alpha())
	for i, c := range ids {
		copy(out.Row(i), d.ClassAttr.Row(c))
	}
	return out
}
