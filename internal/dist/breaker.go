package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrReplicaCondemned: the circuit breaker for a replica is open — the
// replica failed repeatedly and is cooling off, so attempts against it
// are skipped without spending a dial or a round trip. Surfaces only
// when every replica of a range is condemned at once.
var ErrReplicaCondemned = errors.New("dist: replica condemned by circuit breaker")

// breaker is a per-replica circuit breaker, shared across every shard
// range served by the same address (replica pools are address-keyed).
// It exists to cap the cost of a dead or sick replica: without it,
// every query's failover loop pays a full dial timeout or shard timeout
// rediscovering the same corpse, and tail latency collapses to the
// timeout. With it, the first Threshold consecutive failures condemn
// the replica; subsequent queries skip it instantly and fail over,
// while a jittered exponential cool-off schedules sparse single-probe
// redials until one succeeds.
//
// States: closed (healthy, all traffic), open (condemned, all attempts
// skipped until retryAt), half-open (cool-off expired: exactly one
// probe attempt goes through; success closes the breaker, failure
// re-opens it with a doubled cool-off).
type breaker struct {
	threshold int           // consecutive failures to condemn; <=0 disables
	base      time.Duration // first cool-off
	max       time.Duration // cool-off cap

	mu      sync.Mutex
	state   breakerState
	fails   int       // consecutive failures while closed
	cycles  int       // consecutive open cycles: backoff exponent
	retryAt time.Time // open: when the next probe may go out
}

type breakerState int

const (
	brkClosed breakerState = iota
	brkOpen
	brkHalfOpen
)

func newBreaker(threshold int, base, max time.Duration) *breaker {
	return &breaker{threshold: threshold, base: base, max: max}
}

// allow reports whether an attempt against this replica may proceed.
// In the open state it fails fast until the cool-off deadline, then
// admits exactly one caller as the half-open probe.
//
//hdc:hotpath
func (b *breaker) allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brkOpen:
		if time.Now().Before(b.retryAt) {
			return false
		}
		b.state = brkHalfOpen
		return true // this caller is the recovery probe
	case brkHalfOpen:
		return false // a probe is already in flight; keep failing fast
	default:
		return true
	}
}

// success records a completed round trip: the replica is healthy, the
// breaker closes and the backoff schedule resets.
func (b *breaker) success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = brkClosed
	b.fails = 0
	b.cycles = 0
	b.mu.Unlock()
}

// failure records a failed dial or round trip. The Threshold'th
// consecutive failure — or any failed half-open probe — condemns the
// replica for a jittered, exponentially growing cool-off.
func (b *breaker) failure() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	switch b.state {
	case brkHalfOpen:
		b.trip()
	case brkClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case brkOpen:
		// A straggler from an attempt that started before the trip;
		// the clock is already running, nothing to record.
	}
	b.mu.Unlock()
}

// trip opens the breaker (mu held). The cool-off doubles per
// consecutive open cycle up to max, then jitters uniformly over
// [d/2, d] so a fleet of routers condemning the same replica does not
// re-probe it in lockstep.
func (b *breaker) trip() {
	b.state = brkOpen
	b.fails = 0
	d := b.base << min(b.cycles, 30)
	if d > b.max || d <= 0 {
		d = b.max
	}
	if b.cycles < 30 {
		b.cycles++
	}
	half := int64(d / 2)
	if half > 0 {
		d = time.Duration(half + rand.Int63n(half+1))
	}
	b.retryAt = time.Now().Add(d)
}

// condemned reports whether the breaker currently fails fast (open and
// still cooling off). Observability only — allow() is the admission
// decision.
func (b *breaker) condemned() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == brkOpen && time.Now().Before(b.retryAt)
}

//hdc:coldpath error construction for fully condemned ranges
func errCondemned(addr string) error {
	return fmt.Errorf("%w: %s cooling off", ErrReplicaCondemned, addr)
}
