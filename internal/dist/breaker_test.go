package dist

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/tensor"
)

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond, time.Second)

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		b.failure()
		if !b.allow() {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	// A success resets the consecutive count.
	b.success()
	b.failure()
	b.failure()
	if !b.allow() {
		t.Fatal("breaker opened despite an intervening success")
	}
	// The third consecutive failure condemns.
	b.failure()
	if b.allow() {
		t.Fatal("breaker still admitting after threshold consecutive failures")
	}
	if !b.condemned() {
		t.Fatal("condemned() false while open")
	}

	// After the cool-off exactly one probe goes through; a second caller
	// keeps failing fast while the probe is in flight.
	deadline := time.Now().Add(2 * time.Second)
	for !b.allow() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never admitted a recovery probe")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if b.allow() {
		t.Fatal("second caller admitted while the half-open probe is in flight")
	}
	// Probe failure re-opens with a longer cool-off.
	before := time.Now()
	b.failure()
	if b.allow() {
		t.Fatal("breaker closed after a failed probe")
	}
	b.mu.Lock()
	cool := b.retryAt.Sub(before)
	b.mu.Unlock()
	// Second cycle: base 50ms doubled to 100ms, jittered down to ≥50ms.
	if cool < 50*time.Millisecond {
		t.Fatalf("second-cycle cool-off %v, want ≥ 50ms", cool)
	}

	// Probe success closes and resets the schedule.
	deadline = time.Now().Add(2 * time.Second)
	for !b.allow() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never re-admitted a probe")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.success()
	if !b.allow() || b.condemned() {
		t.Fatal("breaker not closed after a successful probe")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Millisecond, time.Second)
	for i := 0; i < 100; i++ {
		b.failure()
	}
	if !b.allow() || b.condemned() {
		t.Fatal("disabled breaker tripped")
	}
	var nilB *breaker
	nilB.failure()
	nilB.success()
	if !nilB.allow() || nilB.condemned() {
		t.Fatal("nil breaker tripped")
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond, 80*time.Millisecond)
	var maxCool time.Duration
	for i := 0; i < 40; i++ {
		b.mu.Lock()
		b.trip()
		cool := time.Until(b.retryAt)
		b.mu.Unlock()
		if cool > maxCool {
			maxCool = cool
		}
	}
	if maxCool > 85*time.Millisecond {
		t.Fatalf("cool-off grew to %v past the 80ms cap", maxCool)
	}
}

// A dead preferred replica is condemned after BreakerThreshold queries:
// later queries skip it (BreakerSkips moves, ShardCalls stops paying
// dial attempts on it) while every query still succeeds via failover —
// and when the replica comes back, the recovery probe readmits it.
func TestRouterBreakerCondemnsAndRecovers(t *testing.T) {
	const classes, d, probes = 24, 128, 4
	rng := rand.New(rand.NewSource(31))
	global := newFloatMemory(rng, classes, d)
	x := tensor.New(probes, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	batch := infer.DenseBatch(x)
	wantRes := infer.New(global).Query(batch, 3)

	// One range, two replicas: a reserved-but-closed address first (dead
	// on arrival), a live server second.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close() // nothing listens: dials fail fast
	live := startServer(t, []Slab{slabFor(t, global, [2]int{0, classes})})

	l := Layout{Classes: classes, Dim: d, Shards: []ShardSpec{
		{Range: [2]int{0, classes}, Replicas: []string{deadAddr, live}},
	}}
	r, err := NewRouter(l, RouterConfig{
		ShardTimeout: 2 * time.Second, DialTimeout: 200 * time.Millisecond,
		BreakerThreshold: 2, BreakerBackoff: 200 * time.Millisecond, BreakerMaxBackoff: time.Second,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()

	check := func() {
		res, err := r.TryQuery(batch, 3)
		if err != nil {
			t.Fatalf("TryQuery: %v", err)
		}
		for p := range res {
			for i := range res[p].TopK {
				if res[p].TopK[i] != wantRes[p].TopK[i] {
					t.Fatalf("probe %d rank %d: %+v, want %+v", p, i, res[p].TopK[i], wantRes[p].TopK[i])
				}
			}
		}
	}
	// Two queries burn the threshold on the dead replica; both succeed
	// via failover.
	check()
	check()
	if s := r.Stats(); s.BreakerSkips != 0 && s.Failed != 0 {
		t.Fatalf("unexpected early stats %+v", s)
	}
	// Now the dead replica is condemned: further queries skip it.
	callsBefore := r.Stats().ShardCalls
	check()
	s := r.Stats()
	if s.BreakerSkips == 0 {
		t.Fatalf("condemned replica was not skipped: %+v", s)
	}
	if got := s.ShardCalls - callsBefore; got != 1 {
		t.Fatalf("condemned query paid %d shard calls, want 1 (live replica only)", got)
	}

	// Bring the replica back on the same address and wait out the
	// cool-off: the recovery probe must readmit it.
	s2, err := NewShardServer([]Slab{slabFor(t, global, [2]int{0, classes})})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", deadAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", deadAddr, err)
	}
	go s2.Serve(ln)
	defer s2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for r.pools[deadAddr].brk.condemned() || !func() bool {
		b := r.pools[deadAddr].brk
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.state == brkClosed
	}() {
		if time.Now().After(deadline) {
			t.Fatalf("replica never readmitted: %+v", r.Stats())
		}
		check()
		time.Sleep(20 * time.Millisecond)
	}
	check()
}
