package dist

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/infer"
)

// call is one in-flight request on a pipelined connection. The reader
// goroutine decodes the reply frame straight into the caller-owned
// shardReply and closes done; the caller owns reply again once done is
// closed (and only then — an abandoned call's reply buffer must not be
// reused until the connection it was pending on is dead).
type call struct {
	reply *shardReply
	info  *ShardInfo // hello replies land here instead
	flip  *flipReply // prepare/commit replies land here instead
	err   error
	done  chan struct{}
}

// clientConn is one pipelined connection to a shard server: any number
// of requests in flight, matched to replies by request ID. A write
// puts one complete frame on the wire under wmu; the reader goroutine
// dispatches replies. Once the connection errors, every pending and
// future call fails fast and the conn is discarded by its pool.
type clientConn struct {
	conn net.Conn
	wmu  sync.Mutex

	mu      sync.Mutex
	pending map[uint32]*call
	nextID  uint32
	dead    bool
	deadErr error

	info *ShardInfo // handshake result, immutable after dial
}

// dialShard connects, handshakes (hello → info), and starts the reader.
//
//hdc:coldpath connection establishment runs once per pooled conn, off the query hot path
func dialShard(addr string, timeout time.Duration) (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// Query and reply frames are complete logical messages; never
		// trade latency for segment coalescing.
		_ = tc.SetNoDelay(true)
	}
	c := &clientConn{conn: nc, pending: make(map[uint32]*call)}
	go c.readLoop()
	hello := &call{info: &ShardInfo{}, done: make(chan struct{})}
	id := c.register(hello)
	if err := c.write(appendHello(nil, id), timeout); err != nil {
		c.fail(err)
		return nil, err
	}
	select {
	case <-hello.done:
	case <-time.After(timeout):
		c.fail(fmt.Errorf("%w: handshake timeout from %s", ErrProtocol, addr))
		return nil, fmt.Errorf("dist: handshake timeout from %s", addr)
	}
	if hello.err != nil {
		c.fail(hello.err)
		return nil, hello.err
	}
	c.info = hello.info
	return c, nil
}

// register allocates a request ID and parks the call.
func (c *clientConn) register(cl *call) uint32 {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = cl
	c.mu.Unlock()
	return id
}

// drop removes a call (timeout abandonment); the reader no longer
// touches its buffers once it is out of the map.
func (c *clientConn) drop(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// write sends one frame with a write deadline, so a wedged peer cannot
// park the router goroutine forever.
//
//hdc:hotpath
func (c *clientConn) write(frame []byte, timeout time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if timeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	_, err := c.conn.Write(frame)
	return err
}

// fail marks the connection dead, closes it, and fails every pending
// call; idempotent.
func (c *clientConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.deadErr = err
	pend := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.conn.Close()
	for _, cl := range pend {
		cl.err = err
		close(cl.done)
	}
}

// take claims the call registered under id, or nil when it was dropped
// or the conn already failed.
func (c *clientConn) take(id uint32) *call {
	c.mu.Lock()
	cl := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	return cl
}

// readLoop decodes reply frames and completes their calls. It owns the
// read side until the connection dies; the frame scratch is reused
// across frames, and result payloads are decoded directly into the
// waiting call's reply buffers.
//
//hdc:hotpath
func (c *clientConn) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var frame []byte
	for {
		op, reqID, body, fr, err := readFrame(br, frame)
		frame = fr
		if err != nil {
			c.fail(err)
			return
		}
		cl := c.take(reqID)
		if cl == nil {
			continue // abandoned by a timeout; drop the late reply
		}
		switch op {
		case opResults:
			if cl.reply == nil {
				cl.err = errBadOp(op)
			} else {
				cl.err = decodeResults(body, cl.reply)
			}
		case opInfo:
			if cl.info == nil {
				cl.err = errBadOp(op)
			} else if info, err := decodeInfo(body); err != nil {
				cl.err = err
			} else {
				*cl.info = *info
			}
		case opPrepareOK, opCommitOK:
			if cl.flip == nil {
				cl.err = errBadOp(op)
			} else {
				cl.err = decodeFlipOK(body, cl.flip)
			}
		case opError:
			cl.err = decodeError(body)
		default:
			cl.err = errBadOp(op)
		}
		close(cl.done)
	}
}

// roundTrip sends one query and blocks until the decoded reply is in
// rep or the timeout fires. On timeout the whole connection is
// condemned (a replica that blows its deadline is suspect, and killing
// the conn is what guarantees the reader stops touching rep before the
// caller retries with it): fail() closes the conn, the reader exits,
// and every other in-flight call on it fails over too.
//
//hdc:hotpath
func (c *clientConn) roundTrip(buf []byte, epoch uint64, base, k int, rep infer.Representation, batch *infer.Batch, timeout time.Duration, out *shardReply) ([]byte, error) {
	cl := &call{reply: out, done: make(chan struct{})} //hdc:allow hotpathalloc one call object and channel per shard RPC is the pipelining design
	id := c.register(cl)
	var err error
	buf, err = appendQuery(buf, id, epoch, base, k, rep, batch)
	if err != nil {
		c.drop(id)
		return buf, err
	}
	if err := c.write(buf, timeout); err != nil {
		c.drop(id)
		c.fail(err)
		return buf, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-cl.done:
		return buf, cl.err
	case <-timer.C:
		c.fail(errShardTimeout(timeout))
		// fail() closed the conn and completes every pending call —
		// including this one — so after done fires the reader provably
		// no longer writes into out and the caller may reuse it.
		<-cl.done
		if cl.err == nil {
			cl.err = errShardTimeout(timeout)
		}
		return buf, cl.err
	}
}

// flipTrip sends one prepare or commit frame and waits for the flip
// acknowledgment. Same condemnation-on-timeout discipline as roundTrip.
//
//hdc:coldpath enrollment flips are rare control traffic, off the query hot path
func (c *clientConn) flipTrip(rec *EnrollRecord, commit bool, timeout time.Duration) (flipReply, error) {
	cl := &call{flip: &flipReply{}, done: make(chan struct{})}
	id := c.register(cl)
	var frame []byte
	if commit {
		frame = appendCommit(nil, id, rec.Epoch)
	} else {
		frame = appendPrepare(nil, id, rec)
	}
	if err := c.write(frame, timeout); err != nil {
		c.drop(id)
		c.fail(err)
		return flipReply{}, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-cl.done:
		return *cl.flip, cl.err
	case <-timer.C:
		c.fail(errShardTimeout(timeout))
		<-cl.done
		if cl.err == nil {
			cl.err = errShardTimeout(timeout)
		}
		return flipReply{}, cl.err
	}
}

// broken reports whether the connection has failed.
func (c *clientConn) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// close tears the connection down, failing any pending calls.
func (c *clientConn) close() {
	c.fail(ErrClosed)
}

// replicaPool hands out pipelined connections to one replica address,
// round-robin over up to size conns, dialing lazily and discarding
// broken conns so the next request redials.
type replicaPool struct {
	addr        string
	size        int
	dialTimeout time.Duration
	brk         *breaker // per-replica circuit breaker (nil: always allow)

	mu     sync.Mutex
	conns  []*clientConn
	next   int
	closed bool
}

func newReplicaPool(addr string, size int, dialTimeout time.Duration) *replicaPool {
	if size < 1 {
		size = 1
	}
	return &replicaPool{addr: addr, size: size, dialTimeout: dialTimeout, conns: make([]*clientConn, size)}
}

// get returns a live connection, dialing if the slot is empty or dead.
//
//hdc:hotpath
func (p *replicaPool) get() (*clientConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	slot := p.next
	p.next = (p.next + 1) % p.size
	c := p.conns[slot]
	p.mu.Unlock()
	if c != nil && !c.broken() {
		return c, nil
	}
	// Slow path: (re)dial outside the lock. Concurrent callers may race
	// the same slot; whoever finds a live conn already installed keeps
	// it and discards their own dial — closing the other dialer's conn
	// here would fail the caller it was just handed to.
	nc, err := dialShard(p.addr, p.dialTimeout)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		nc.close()
		return nil, ErrClosed
	}
	if cur := p.conns[slot]; cur != nil && !cur.broken() {
		p.mu.Unlock()
		nc.close()
		return cur, nil
	}
	old := p.conns[slot]
	p.conns[slot] = nc
	p.mu.Unlock()
	if old != nil {
		old.close()
	}
	return nc, nil
}

// info returns the handshake info of a live connection (dialing one if
// needed).
func (p *replicaPool) info() (*ShardInfo, error) {
	c, err := p.get()
	if err != nil {
		return nil, err
	}
	return c.info, nil
}

// close tears down every pooled connection.
func (p *replicaPool) close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = make([]*clientConn, p.size)
	p.closed = true
	p.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.close()
		}
	}
}

//hdc:coldpath error construction for timed-out replicas
func errShardTimeout(d time.Duration) error {
	return fmt.Errorf("%w: no reply within %v", ErrProtocol, d)
}
