// Package dist lifts the engine's scatter-gather readout across
// processes: the horizontal-scale seam that takes "one box, one class
// memory" to class capacity spread over N shard servers.
//
// The design is deliberately the same one internal/infer runs inside a
// process, promoted one level:
//
//   - A ShardServer owns one or more contiguous class-range slabs —
//     each an ordinary infer.Engine over an infer.NewRangeBackend view
//     of the frozen class memory (float, packed-binary, and crossbar
//     backends all serve unchanged) — behind a compact length-prefixed
//     binary protocol over TCP (protocol.go): raw little-endian probe
//     slabs, batched multi-probe frames, pipelined request IDs so one
//     connection carries many in-flight batches. No JSON on the hot
//     path.
//   - A Router owns the class-space Layout: contiguous ranges produced
//     by the same infer.SplitRanges rule the in-process engine shards
//     with, placed onto shard nodes by a consistent-hash Ring (stable
//     under node arrival/departure, replicated for failover). Each
//     query batch fans out to every shard concurrently over pooled,
//     pipelined connections, per-shard candidate lists come back with
//     global class indices and raw IEEE-754 score bits, and the router
//     merges them with the engine's own exported comparator
//     (infer.HitSorter) — so merged rankings are byte-identical to the
//     single-process engine at any shard count and any replica layout.
//   - Failover: every shard range lists replica addresses in preference
//     order. A per-shard timeout bounds each attempt, a failed replica
//     is retried on the next one (bounded by the replica list), and
//     broken connections are discarded and redialed lazily.
//
// cmd/hdcshard runs a shard server; `hdcserve -router shards.json`
// serves /v1/classify and /v1/embed-classify from N shard processes
// through the same coalescer front as the local engines (the
// serve.Querier seam).
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"repro/internal/infer"
)

// Typed errors of the distributed path.
var (
	// ErrProtocol: a malformed, truncated, or oversized frame; the
	// connection carrying it is dropped.
	ErrProtocol = errors.New("dist: protocol error")
	// ErrRemote: the shard rejected the request and said why (dimension
	// mismatch, unknown slab, engine validation failure).
	ErrRemote = errors.New("dist: shard error")
	// ErrShardDown: every replica of a shard range failed within the
	// retry budget, so the query cannot produce a complete ranking.
	ErrShardDown = errors.New("dist: shard unavailable on every replica")
	// ErrLayout: the layout does not contiguously cover the class space,
	// or a shard's handshake contradicts it.
	ErrLayout = errors.New("dist: bad shard layout")
	// ErrClosed: the router has been closed.
	ErrClosed = errors.New("dist: router closed")
)

// ShardSpec is one contiguous class-range slab and the addresses of the
// shard servers that own a replica of it, in failover preference order.
type ShardSpec struct {
	Range    [2]int   `json:"range"`
	Replicas []string `json:"replicas"`
}

// Layout is the routing table of a distributed class memory: which
// contiguous class ranges exist, and which shard processes serve each.
// It is the shards.json file cmd/hdcshard and `hdcserve -router` share.
type Layout struct {
	// Model names the served model (defaults to the backend name
	// reported by the shards when empty).
	Model string `json:"model,omitempty"`
	// Classes is the global class count; the shard ranges must cover
	// [0, Classes) contiguously.
	Classes int `json:"classes"`
	// Dim is the probe dimensionality every shard must agree on.
	Dim int `json:"dim"`
	// Shards lists the class-range slabs in ascending range order.
	Shards []ShardSpec `json:"shards"`
}

// Validate checks the structural contract: at least one shard, ranges
// contiguously covering [0, Classes) in order, and every range carrying
// at least one replica address.
func (l *Layout) Validate() error {
	if l.Classes <= 0 || l.Dim <= 0 {
		return fmt.Errorf("%w: classes=%d dim=%d", ErrLayout, l.Classes, l.Dim)
	}
	if len(l.Shards) == 0 {
		return fmt.Errorf("%w: no shards", ErrLayout)
	}
	lo := 0
	for i, s := range l.Shards {
		if s.Range[0] != lo || s.Range[1] <= s.Range[0] {
			return fmt.Errorf("%w: shard %d range %v does not continue cover at %d", ErrLayout, i, s.Range, lo)
		}
		if len(s.Replicas) == 0 {
			return fmt.Errorf("%w: shard %d range %v has no replicas", ErrLayout, i, s.Range)
		}
		for _, a := range s.Replicas {
			if a == "" {
				return fmt.Errorf("%w: shard %d range %v has an empty replica address", ErrLayout, i, s.Range)
			}
		}
		lo = s.Range[1]
	}
	if lo != l.Classes {
		return fmt.Errorf("%w: shard ranges cover [0, %d), want [0, %d)", ErrLayout, lo, l.Classes)
	}
	return nil
}

// RangesFor returns the class ranges the given node address serves
// under this layout (the lookup cmd/hdcshard uses to find its slabs).
func (l *Layout) RangesFor(addr string) [][2]int {
	var out [][2]int
	for _, s := range l.Shards {
		for _, a := range s.Replicas {
			if a == addr {
				out = append(out, s.Range)
				break
			}
		}
	}
	return out
}

// LoadLayout reads and validates a shards.json file.
func LoadLayout(path string) (Layout, error) {
	var l Layout
	data, err := os.ReadFile(path)
	if err != nil {
		return l, err
	}
	if err := json.Unmarshal(data, &l); err != nil {
		return l, fmt.Errorf("%w: %s: %v", ErrLayout, path, err)
	}
	if err := l.Validate(); err != nil {
		return l, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// WriteLayout writes a layout as indented JSON.
func WriteLayout(path string, l Layout) error {
	if err := l.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BuildLayout partitions [0, classes) into nShards contiguous ranges
// with the engine's own SplitRanges rule and places each range onto
// `replication` distinct nodes chosen by the consistent-hash ring over
// the node addresses. The placement is deterministic in (classes,
// nShards, nodes) and stable under node churn: adding or removing one
// node moves only the ranges that hashed next to it, which is what
// makes rebalancing a class memory of millions of classes incremental
// instead of total.
func BuildLayout(model string, classes, dim, nShards int, nodes []string, replication int) (Layout, error) {
	if nShards <= 0 {
		return Layout{}, fmt.Errorf("%w: non-positive shard count %d", ErrLayout, nShards)
	}
	if len(nodes) == 0 {
		return Layout{}, fmt.Errorf("%w: no nodes", ErrLayout)
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	ring := NewRing(nodes, 0)
	l := Layout{Model: model, Classes: classes, Dim: dim}
	for _, r := range infer.SplitRanges(classes, nShards) {
		key := fmt.Sprintf("slab/%d-%d", r[0], r[1])
		l.Shards = append(l.Shards, ShardSpec{Range: r, Replicas: ring.Owners(key, replication)})
	}
	if err := l.Validate(); err != nil {
		return Layout{}, err
	}
	return l, nil
}

// Nodes returns the distinct replica addresses in the layout, sorted.
func (l *Layout) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range l.Shards {
		for _, a := range s.Replicas {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}
