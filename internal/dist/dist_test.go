package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// --- loopback fixtures ----------------------------------------------------

func testLabels(classes int) []string {
	labels := make([]string, classes)
	for c := range labels {
		labels[c] = fmt.Sprintf("class-%03d", c)
	}
	return labels
}

// newFloatMemory builds a labeled float backend over a random class
// memory with score collisions forced in (duplicated rows), so the
// merge's tie-break is exercised, not just its happy path.
func newFloatMemory(rng *rand.Rand, classes, d int) *infer.FloatBackend {
	phi := tensor.New(classes, d)
	for i := range phi.Data {
		phi.Data[i] = rng.Float32()*2 - 1
	}
	for c := 3; c < classes; c += 7 {
		copy(phi.Row(c), phi.Row(c-3)) // exact duplicate → exact score tie
	}
	return infer.NewFloatBackend(phi, testLabels(classes), 0.05)
}

// newBinaryMemory builds a labeled packed-binary backend, again with
// duplicated rows for exact Hamming ties.
func newBinaryMemory(rng *rand.Rand, classes, d int) *infer.BinaryBackend {
	mem := hdc.NewItemMemory(d)
	labels := testLabels(classes)
	var prev *hdc.Binary
	for c := 0; c < classes; c++ {
		v := hdc.NewRandomBinary(rng, d)
		if c%5 == 4 && prev != nil {
			v = prev
		}
		mem.Store(labels[c], v)
		prev = v
	}
	return infer.NewBinaryBackend(mem)
}

// startServer serves the slabs on a loopback listener and returns its
// address. Cleanup closes the server.
func startServer(t *testing.T, slabs []Slab) string {
	t.Helper()
	s, err := NewShardServer(slabs)
	if err != nil {
		t.Fatalf("NewShardServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

// slabFor builds the slab a shard process would serve for one class
// range: an engine over a range view of the global backend.
func slabFor(t *testing.T, global infer.Backend, r [2]int) Slab {
	t.Helper()
	eng, err := infer.NewChecked(infer.NewRangeBackend(global, r[0], r[1]))
	if err != nil {
		t.Fatalf("engine for range %v: %v", r, err)
	}
	return Slab{Base: r[0], Engine: eng}
}

// startCluster spins up one single-slab loopback server per range and
// returns the layout routing to them.
func startCluster(t *testing.T, global infer.Backend, classes, dim, shards int) Layout {
	t.Helper()
	l := Layout{Classes: classes, Dim: dim}
	for _, r := range infer.SplitRanges(classes, shards) {
		addr := startServer(t, []Slab{slabFor(t, global, r)})
		l.Shards = append(l.Shards, ShardSpec{Range: r, Replicas: []string{addr}})
	}
	return l
}

func newTestRouter(t *testing.T, l Layout) *Router {
	t.Helper()
	r, err := NewRouter(l, RouterConfig{ShardTimeout: 5 * time.Second, DialTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

// --- the parity contract --------------------------------------------------

// TestRouterParityFloat is the tentpole acceptance: merged rankings from
// the distributed scatter-gather are byte-identical to the
// single-process engine at every shard count — scores, classes, labels,
// and tie order, compared with DeepEqual over the full top-k.
func TestRouterParityFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const classes, d, probes = 97, 64, 9
	backend := newFloatMemory(rng, classes, d)
	oracle := infer.New(backend)
	x := tensor.New(probes, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	batch := infer.DenseBatch(x)
	for _, shards := range []int{1, 2, 4, 8} {
		router := newTestRouter(t, startCluster(t, backend, classes, d, shards))
		for _, k := range []int{1, 3, 10, classes + 5} {
			want, err := oracle.TryQuery(batch, k)
			if err != nil {
				t.Fatalf("oracle k=%d: %v", k, err)
			}
			got, err := router.TryQuery(batch, k)
			if err != nil {
				t.Fatalf("router shards=%d k=%d: %v", shards, k, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d k=%d: distributed ranking diverges from the single-process engine\n got: %+v\nwant: %+v",
					shards, k, got, want)
			}
		}
	}
}

// TestRouterParityBinary covers the packed Hamming path: exact integer
// distances, probes shipped as raw words.
func TestRouterParityBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const classes, d, probes = 60, 256, 7
	backend := newBinaryMemory(rng, classes, d)
	oracle := infer.New(backend)
	vs := make([]*hdc.Binary, probes)
	for i := range vs {
		vs[i] = hdc.NewRandomBinary(rng, d)
	}
	batch := infer.PackedBatch(vs)
	for _, shards := range []int{1, 3, 6} {
		router := newTestRouter(t, startCluster(t, backend, classes, d, shards))
		for _, k := range []int{1, 5, classes} {
			want, _ := oracle.TryQuery(batch, k)
			got, err := router.TryQuery(batch, k)
			if err != nil {
				t.Fatalf("router shards=%d k=%d: %v", shards, k, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d k=%d: packed ranking diverges from the single-process engine", shards, k)
			}
		}
	}
}

// TestRouterParityMultiSlabServers interleaves four ranges across two
// server processes (even ranges on one, odd on the other), so query
// frames must address slabs by base and replies must offset correctly.
func TestRouterParityMultiSlabServers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const classes, d = 50, 48
	backend := newFloatMemory(rng, classes, d)
	oracle := infer.New(backend)
	ranges := infer.SplitRanges(classes, 4)
	var even, odd []Slab
	for i, r := range ranges {
		if i%2 == 0 {
			even = append(even, slabFor(t, backend, r))
		} else {
			odd = append(odd, slabFor(t, backend, r))
		}
	}
	addrEven, addrOdd := startServer(t, even), startServer(t, odd)
	l := Layout{Classes: classes, Dim: d}
	for i, r := range ranges {
		addr := addrEven
		if i%2 == 1 {
			addr = addrOdd
		}
		l.Shards = append(l.Shards, ShardSpec{Range: r, Replicas: []string{addr}})
	}
	router := newTestRouter(t, l)
	x := tensor.New(5, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	batch := infer.DenseBatch(x)
	want, _ := oracle.TryQuery(batch, 7)
	got, err := router.TryQuery(batch, 7)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("multi-slab routing diverges from the single-process engine")
	}
}

// TestRouterParityConcurrent hammers one router from many goroutines —
// the pooled scratch and pipelined connections must keep every caller's
// results isolated and correct.
func TestRouterParityConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const classes, d = 64, 32
	backend := newFloatMemory(rng, classes, d)
	oracle := infer.New(backend)
	router := newTestRouter(t, startCluster(t, backend, classes, d, 4))
	const callers, rounds = 8, 25
	batches := make([]*infer.Batch, callers)
	wants := make([][]infer.Result, callers)
	for c := range batches {
		x := tensor.New(3, d)
		for i := range x.Data {
			x.Data[i] = rng.Float32()*2 - 1
		}
		batches[c] = infer.DenseBatch(x)
		wants[c], _ = oracle.TryQuery(batches[c], 5)
	}
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := router.TryQuery(batches[c], 5)
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got, wants[c]) {
					errc <- fmt.Errorf("caller %d round %d: result diverged", c, r)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// --- failover --------------------------------------------------------------

// TestRouterFailoverMidStream runs two full replicas of every range,
// kills the preferred one mid-stream, and requires every query — before,
// during, and after the kill — to succeed with results identical to the
// single-process engine.
func TestRouterFailoverMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const classes, d = 40, 32
	backend := newFloatMemory(rng, classes, d)
	oracle := infer.New(backend)
	ranges := infer.SplitRanges(classes, 2)

	serverOf := func() (*ShardServer, string) {
		var slabs []Slab
		for _, r := range ranges {
			slabs = append(slabs, slabFor(t, backend, r))
		}
		s, err := NewShardServer(slabs)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() { s.Close() })
		return s, ln.Addr().String()
	}
	primary, addrA := serverOf()
	_, addrB := serverOf()

	l := Layout{Classes: classes, Dim: d}
	for _, r := range ranges {
		l.Shards = append(l.Shards, ShardSpec{Range: r, Replicas: []string{addrA, addrB}})
	}
	router, err := NewRouter(l, RouterConfig{ShardTimeout: 2 * time.Second, DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer router.Close()

	x := tensor.New(4, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	batch := infer.DenseBatch(x)
	want, _ := oracle.TryQuery(batch, 6)

	const rounds = 30
	for r := 0; r < rounds; r++ {
		if r == rounds/3 {
			primary.Close() // mid-stream kill of the preferred replica
		}
		got, err := router.TryQuery(batch, 6)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: ranking diverged after failover", r)
		}
	}
	if s := router.Stats(); s.Failovers == 0 {
		t.Fatalf("stats=%+v: expected failovers after killing the preferred replica", s)
	}
}

// TestRouterAllReplicasDown verifies the completeness guarantee: a shard
// range with no live replica fails the query with ErrShardDown rather
// than returning a silently truncated ranking.
func TestRouterAllReplicasDown(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const classes, d = 20, 16
	backend := newFloatMemory(rng, classes, d)
	ranges := infer.SplitRanges(classes, 2)
	servers := make([]*ShardServer, 0, 2)
	l := Layout{Classes: classes, Dim: d}
	for _, r := range ranges {
		s, err := NewShardServer([]Slab{slabFor(t, backend, r)})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() { s.Close() })
		servers = append(servers, s)
		l.Shards = append(l.Shards, ShardSpec{Range: r, Replicas: []string{ln.Addr().String()}})
	}
	router, err := NewRouter(l, RouterConfig{ShardTimeout: time.Second, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	servers[1].Close()

	x := tensor.New(1, d)
	batch := infer.DenseBatch(x)
	if _, err := router.TryQuery(batch, 3); !errors.Is(err, ErrShardDown) {
		t.Fatalf("query with a dead shard: err=%v, want ErrShardDown", err)
	}
}

// TestRouterRejectsBadQueries pins the validation boundary.
func TestRouterRejectsBadQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const classes, d = 16, 8
	backend := newFloatMemory(rng, classes, d)
	router := newTestRouter(t, startCluster(t, backend, classes, d, 2))
	good := infer.DenseBatch(tensor.New(1, d))
	if _, err := router.TryQuery(good, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := router.TryQuery(infer.DenseBatch(tensor.New(1, d+1)), 1); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := router.TryQuery(infer.PackedBatch([]*hdc.Binary{hdc.NewRandomBinary(rng, d)}), 1); err == nil {
		t.Fatal("packed-only batch accepted by a dense-probe layout")
	}
	if res, err := router.TryQuery(&infer.Batch{}, 1); err != nil || res != nil {
		t.Fatalf("empty batch: res=%v err=%v, want nil/nil", res, err)
	}
}

// TestRouterRejectsLayoutMismatch pins the handshake validation: a
// layout whose geometry contradicts what the shards actually serve must
// fail construction, not mis-rank.
func TestRouterRejectsLayoutMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	const classes, d = 20, 16
	backend := newFloatMemory(rng, classes, d)
	addr := startServer(t, []Slab{slabFor(t, backend, [2]int{0, 20})})
	wrongDim := Layout{Classes: classes, Dim: d + 8, Shards: []ShardSpec{{Range: [2]int{0, 20}, Replicas: []string{addr}}}}
	if _, err := NewRouter(wrongDim, RouterConfig{DialTimeout: time.Second}); !errors.Is(err, ErrLayout) {
		t.Fatalf("dim-contradicting layout: err=%v, want ErrLayout", err)
	}
	wrongBase := Layout{Classes: 30, Dim: d, Shards: []ShardSpec{
		{Range: [2]int{0, 10}, Replicas: []string{addr}},
		{Range: [2]int{10, 30}, Replicas: []string{addr}},
	}}
	if _, err := NewRouter(wrongBase, RouterConfig{DialTimeout: time.Second}); !errors.Is(err, ErrLayout) {
		t.Fatalf("slab-contradicting layout: err=%v, want ErrLayout", err)
	}
}

func TestLayoutFileRoundTrip(t *testing.T) {
	l, err := BuildLayout("m", 50, 16, 3, []string{"h1:1", "h2:2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shards.json")
	if err := WriteLayout(path, l); err != nil {
		t.Fatalf("WriteLayout: %v", err)
	}
	got, err := LoadLayout(path)
	if err != nil {
		t.Fatalf("LoadLayout: %v", err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("layout round trip diverged:\n got %+v\nwant %+v", got, l)
	}
}
