package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/classmem"
	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// startGrowingServer serves one growing tail range from a versioned
// store on a loopback listener. The caller owns server shutdown (the
// tests kill and restart replicas deliberately).
func startGrowingServer(t *testing.T, store *classmem.Versioned, base, width int, addr string) (*ShardServer, string) {
	t.Helper()
	s, err := NewShardServer(nil, &GrowingSlab{Base: base, Width: width, Backend: "float", Store: store})
	if err != nil {
		t.Fatalf("NewShardServer(growing): %v", err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	go s.Serve(ln)
	return s, ln.Addr().String()
}

// TestRouterEnrollTwoPhaseParity drives live enrollment through the
// router's two-phase epoch flip and holds every ranking to the
// byte-parity oracle: a single-process engine over a versioned store
// enrolled in lockstep. It also exercises the failure legs the 2PC
// exists for — a replica that is down during a flip stays cleanly
// behind, keeps getting served around, and is caught up by enroll-log
// replay the next time the router prepares on it.
func TestRouterEnrollTwoPhaseParity(t *testing.T) {
	const classes, d, split = 12, 128, 6
	const seed = 21
	// Three independent stores built from the same seed are bit-identical
	// at epoch 0: two shard replicas plus the single-process oracle.
	storeA := classmem.NewVersioned(classes, d, seed)
	storeB := classmem.NewVersioned(classes, d, seed)
	oracle := classmem.NewVersioned(classes, d, seed)

	frozen, err := oracle.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	frozenAddr := startServer(t, []Slab{slabFor(t, frozen, [2]int{0, split})})
	srvA, addrA := startGrowingServer(t, storeA, split, classes-split, "")
	t.Cleanup(func() { srvA.Close() })
	srvB, addrB := startGrowingServer(t, storeB, split, classes-split, "")
	t.Cleanup(func() { srvB.Close() })

	router := newTestRouter(t, Layout{Classes: classes, Dim: d, Shards: []ShardSpec{
		{Range: [2]int{0, split}, Replicas: []string{frozenAddr}},
		{Range: [2]int{split, classes}, Replicas: []string{addrA, addrB}},
	}})

	rng := rand.New(rand.NewSource(22))
	x := tensor.New(4, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	batch := infer.DenseBatch(x)

	// check compares the router's ranking (and its epoch tag) against a
	// fresh oracle engine over the lockstep-enrolled store.
	check := func(wantEpoch uint64) {
		t.Helper()
		ob, err := oracle.Backend("float")
		if err != nil {
			t.Fatal(err)
		}
		want, err := infer.New(ob).TryQuery(batch, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, epoch, err := router.TryQueryEpoch(batch, 5)
		if err != nil {
			t.Fatalf("router at epoch %d: %v", wantEpoch, err)
		}
		if epoch != wantEpoch {
			t.Fatalf("ranking tagged epoch %d, want %d", epoch, wantEpoch)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d: distributed ranking diverges from the single-process oracle\n got: %+v\nwant: %+v",
				wantEpoch, got, want)
		}
	}
	check(0)

	enroll := func(n int) *hdc.Binary {
		t.Helper()
		proto := hdc.NewRandomBinary(rng, d)
		label := fmt.Sprintf("fresh-%03d", n)
		ep, err := router.Enroll(label, proto)
		if err != nil {
			t.Fatalf("enroll %s: %v", label, err)
		}
		if ep != uint64(n) {
			t.Fatalf("enroll %s flipped epoch %d, want %d", label, ep, n)
		}
		if oep, err := oracle.Enroll(label, proto); err != nil || oep != uint64(n) {
			t.Fatalf("oracle enroll %s: epoch %d err %v", label, oep, err)
		}
		return proto
	}

	// Epoch 1: both replicas healthy — both must commit.
	enroll(1)
	if storeA.Epoch() != 1 || storeB.Epoch() != 1 {
		t.Fatalf("after flip 1: replica epochs A=%d B=%d, want 1/1", storeA.Epoch(), storeB.Epoch())
	}
	if router.Classes() != classes+1 || router.Label(classes) != "fresh-001" {
		t.Fatalf("router state after flip 1: classes=%d label=%q", router.Classes(), router.Label(classes))
	}
	check(1)

	// Epoch 2: replica B is down. The flip must still complete (quorum of
	// one live replica) and queries keep their parity on A.
	srvB.Close()
	enroll(2)
	if storeA.Epoch() != 2 {
		t.Fatalf("after flip 2: replica A epoch %d, want 2", storeA.Epoch())
	}
	if storeB.Epoch() != 1 {
		t.Fatalf("after flip 2: dead replica B advanced to %d", storeB.Epoch())
	}
	check(2)

	// Restart B on the same address, still at epoch 1. The next flip
	// prepares epoch 3 on it, gets the clean gap refusal carrying
	// committed=1, replays epoch 2 from the router's enroll log, and only
	// then flips 3 — so B lands fully caught up, no restart-from-WAL
	// needed for flips the router itself drove.
	srvB2, addrB2 := startGrowingServer(t, storeB, split, classes-split, addrB)
	t.Cleanup(func() { srvB2.Close() })
	if addrB2 != addrB {
		t.Fatalf("replica B rebound to %s, want %s", addrB2, addrB)
	}
	enroll(3)
	if storeA.Epoch() != 3 || storeB.Epoch() != 3 {
		t.Fatalf("after catch-up flip 3: replica epochs A=%d B=%d, want 3/3", storeA.Epoch(), storeB.Epoch())
	}
	gotLabel, gotWords, ok := storeB.EnrolledRecord(2)
	wantLabel, wantWords, _ := storeA.EnrolledRecord(2)
	if !ok || gotLabel != wantLabel || !reflect.DeepEqual(gotWords, wantWords) {
		t.Fatalf("replayed epoch 2 on B: label=%q ok=%v, want %q (words equal: %v)",
			gotLabel, ok, wantLabel, reflect.DeepEqual(gotWords, wantWords))
	}
	check(3)

	if s := router.Stats(); s.Enrolls != 3 {
		t.Fatalf("stats enrolls = %d, want 3", s.Enrolls)
	}

	// Bad input is rejected before any replica sees a frame.
	if _, err := router.Enroll("bad", hdc.NewRandomBinary(rng, d+1)); !errors.Is(err, infer.ErrBadQuery) {
		t.Fatalf("dim-mismatched enroll: err=%v, want ErrBadQuery", err)
	}
}

// TestRouterEnrollAllReplicasDown pins the no-quorum behavior: with
// every replica of the growing range dead, the flip fails with
// ErrShardDown and the published epoch does not advance.
func TestRouterEnrollAllReplicasDown(t *testing.T) {
	const classes, d, split = 8, 64, 4
	store := classmem.NewVersioned(classes, d, 23)
	frozen, err := store.Backend("float")
	if err != nil {
		t.Fatal(err)
	}
	frozenAddr := startServer(t, []Slab{slabFor(t, frozen, [2]int{0, split})})
	srv, addr := startGrowingServer(t, store, split, classes-split, "")
	t.Cleanup(func() { srv.Close() })
	router, err := NewRouter(Layout{Classes: classes, Dim: d, Shards: []ShardSpec{
		{Range: [2]int{0, split}, Replicas: []string{frozenAddr}},
		{Range: [2]int{split, classes}, Replicas: []string{addr}},
	}}, RouterConfig{ShardTimeout: time.Second, DialTimeout: time.Second, BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	srv.Close()
	if _, err := router.Enroll("orphan", hdc.NewRandomBinary(rand.New(rand.NewSource(1)), d)); !errors.Is(err, ErrShardDown) {
		t.Fatalf("enroll with growing range down: err=%v, want ErrShardDown", err)
	}
	if router.Epoch() != 0 {
		t.Fatalf("epoch advanced to %d with no replica committed", router.Epoch())
	}
}
