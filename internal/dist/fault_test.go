package dist

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// Chaos at the router layer: the preferred replica sits behind a
// fault-injection proxy that blackholes (wedged backend → shard
// timeouts), drops connections mid-stream (resets), and recovers.
// Throughout, every query must return the oracle ranking — the second
// replica absorbs the faults — and after repeated timeouts the breaker
// must condemn the faulty path so queries stop paying the timeout.
func TestRouterFaultInjection(t *testing.T) {
	const classes, d, probes = 30, 64, 5
	rng := rand.New(rand.NewSource(41))
	global := newFloatMemory(rng, classes, d)
	x := tensor.New(probes, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	batch := infer.DenseBatch(x)
	want := infer.New(global).Query(batch, 3)

	// Two replicas of one range: the preferred one behind the proxy.
	behind := startServer(t, []Slab{slabFor(t, global, [2]int{0, classes})})
	direct := startServer(t, []Slab{slabFor(t, global, [2]int{0, classes})})
	proxy, err := faultnet.New(behind)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	l := Layout{Classes: classes, Dim: d, Shards: []ShardSpec{
		{Range: [2]int{0, classes}, Replicas: []string{proxy.Addr(), direct}},
	}}
	shardTimeout := 150 * time.Millisecond
	r, err := NewRouter(l, RouterConfig{
		ShardTimeout: shardTimeout, DialTimeout: time.Second,
		BreakerThreshold: 2, BreakerBackoff: 300 * time.Millisecond, BreakerMaxBackoff: time.Second,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()

	check := func(stage string) {
		t.Helper()
		res, err := r.TryQuery(batch, 3)
		if err != nil {
			t.Fatalf("%s: TryQuery: %v", stage, err)
		}
		for p := range res {
			for i := range res[p].TopK {
				if res[p].TopK[i] != want[p].TopK[i] {
					t.Fatalf("%s: probe %d rank %d: %+v, want %+v",
						stage, p, i, res[p].TopK[i], want[p].TopK[i])
				}
			}
		}
	}

	check("healthy")

	// Wedge the preferred replica: requests vanish into the proxy, the
	// attempt blows ShardTimeout, failover answers. Two such queries
	// burn the breaker threshold.
	proxy.SetBlackhole(true)
	slowStart := time.Now()
	check("blackholed-1")
	check("blackholed-2")
	if elapsed := time.Since(slowStart); elapsed < shardTimeout {
		t.Fatalf("blackholed queries returned in %v, faster than one shard timeout %v — proxy not in path?",
			elapsed, shardTimeout)
	}
	s := r.Stats()
	if s.Failovers == 0 {
		t.Fatalf("no failovers under blackhole: %+v", s)
	}

	// Condemned: queries now skip the wedged replica without paying the
	// timeout.
	fastStart := time.Now()
	check("condemned")
	if elapsed := time.Since(fastStart); elapsed > shardTimeout {
		t.Fatalf("condemned-path query took %v, should skip the %v timeout", elapsed, shardTimeout)
	}
	if s := r.Stats(); s.BreakerSkips == 0 {
		t.Fatalf("no breaker skips while condemned: %+v", s)
	}

	// Heal the proxy and wait out the cool-off: the recovery probe
	// readmits the replica and queries flow through it again.
	proxy.SetBlackhole(false)
	deadline := time.Now().Add(5 * time.Second)
	for r.pools[proxy.Addr()].brk.condemned() {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-probed: %+v", r.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	check("recovered")

	// Mid-stream resets: drop every active connection and keep
	// querying. Redials (and failover for requests caught in flight)
	// must keep every query correct.
	for i := 0; i < 3; i++ {
		proxy.DropConns()
		check("post-reset")
	}

	// Latency injection below the timeout degrades but must not fail:
	// the proxied replica answers late, within budget.
	proxy.SetLatency(20 * time.Millisecond)
	check("latency-spike")
}
