package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/hdc"
	"repro/internal/infer"
)

// Wire protocol: length-prefixed little-endian binary frames over TCP.
// No JSON touches the hot path — probe slabs travel as raw float32 /
// uint64 words in exactly the layout the engine consumes, and a frame
// is written with a single net.Conn.Write so pipelined frames never
// interleave.
//
//	frame   := length:u32 payload
//	payload := op:u8 reqID:u32 body
//
// length counts the payload bytes only. reqID is a per-connection
// pipelining token: a client may have any number of frames in flight
// on one connection, and the server replies in completion order with
// the request's ID echoed, so one connection carries many overlapping
// batches.
//
//	hello   := version:u8
//	info    := version:u8 rep:u8 dim:u32 name:str8 epoch:u64
//	           nslabs:u16 { base:u32 classes:u32 { label:str16 }*classes }*nslabs
//	query   := epoch:u64 base:u32 k:u16 rep:u8 n:u16 dim:u32 slab
//	           slab(dense)  := f32[n*dim]
//	           slab(packed) := u64[n*ceil(dim/64)]
//	results := n:u16 { kk:u16 { class:u32 score:f64bits }*kk }*n
//	prepare := epoch:u64 label:str16 nwords:u32 { w:u64 }*nwords
//	commit  := epoch:u64
//	flipok  := ok:u8 committed:u64        (answers prepare and commit)
//	error   := msg:str16
//
// Classes in results frames are GLOBAL indices (the shard adds its
// slab base before replying), and scores travel as raw IEEE-754 bits,
// so the router's merge sees bit-for-bit the numbers the shard engine
// computed — the byte-identical-ranking contract survives the wire.
//
// Live enrollment (version 2): info advertises the shard's committed
// enrollment epoch, every query names the epoch it must be served at
// (a shard that grows serves exactly the class prefix epoch e
// contains; a shard asked past its committed epoch answers an error
// and the router fails over), and prepare/commit drive the two-phase
// epoch flip — prepare stages one WAL-durable enrollment, commit
// publishes it. A flipok with ok=0 is a clean refusal (the replica's
// committed epoch lags the flip) carrying where the replica actually
// is, so the router can replay the missing enrollments.
const (
	// ProtocolVersion is negotiated in hello/info; a mismatch is a
	// handshake error, never a silent misparse.
	ProtocolVersion = 2
	// MaxFrame caps a frame payload; a peer announcing more is treated
	// as corrupt and the connection is dropped.
	MaxFrame = 64 << 20
)

// Frame ops.
const (
	opHello byte = iota + 1
	opInfo
	opQuery
	opResults
	opError
	opPrepare
	opPrepareOK
	opCommit
	opCommitOK
)

// frameHeaderSize is the fixed per-payload prefix: op + reqID.
const frameHeaderSize = 5

// beginFrame starts a frame in buf (reset to length 0): the 4-byte
// length placeholder, op, and reqID. Body bytes are appended by the
// caller; endFrame patches the length.
//
//hdc:hotpath
func beginFrame(buf []byte, op byte, reqID uint32) []byte {
	buf = append(buf[:0], 0, 0, 0, 0, op) //hdc:allow hotpathalloc amortized frame-buffer growth; the steady state reuses capacity
	buf = binary.LittleEndian.AppendUint32(buf, reqID)
	return buf
}

// endFrame patches the length prefix once the body is complete and
// returns the finished frame.
//
//hdc:hotpath
func endFrame(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}

// readFrame reads one frame into scratch (grown as needed), returning
// the op, request ID, body view, and the (possibly regrown) scratch.
// The body view is valid until the next readFrame on the same scratch.
//
//hdc:hotpath
func readFrame(r *bufio.Reader, scratch []byte) (op byte, reqID uint32, body, scratchOut []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, 0, nil, scratch, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderSize || n > MaxFrame {
		return 0, 0, nil, scratch, errFrameSize(n)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n) //hdc:allow hotpathalloc amortized frame-scratch growth; the steady state reuses capacity
	}
	scratch = scratch[:n]
	if _, err = io.ReadFull(r, scratch); err != nil {
		return 0, 0, nil, scratch, err
	}
	return scratch[0], binary.LittleEndian.Uint32(scratch[1:5]), scratch[frameHeaderSize:], scratch, nil
}

// appendStr8 / appendStr16 append length-prefixed strings.
func appendStr8(buf []byte, s string) []byte {
	if len(s) > math.MaxUint8 {
		s = s[:math.MaxUint8]
	}
	buf = append(buf, byte(len(s)))
	return append(buf, s...)
}

func appendStr16(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// wireReader is a cursor over a frame body; decode helpers consume from
// the front and record the first error so call sites stay linear.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail() bool { return r.err != nil }

func (r *wireReader) need(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = errTruncated(n, len(r.b))
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *wireReader) u8() byte {
	if v := r.need(1); v != nil {
		return v[0]
	}
	return 0
}

func (r *wireReader) u16() uint16 {
	if v := r.need(2); v != nil {
		return binary.LittleEndian.Uint16(v)
	}
	return 0
}

func (r *wireReader) u32() uint32 {
	if v := r.need(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}

func (r *wireReader) u64() uint64 {
	if v := r.need(8); v != nil {
		return binary.LittleEndian.Uint64(v)
	}
	return 0
}

func (r *wireReader) str8() string {
	n := int(r.u8())
	if v := r.need(n); v != nil {
		return string(v)
	}
	return ""
}

func (r *wireReader) str16() string {
	n := int(r.u16())
	if v := r.need(n); v != nil {
		return string(v)
	}
	return ""
}

// --- hello / info ---------------------------------------------------------

// SlabInfo describes one class-range slab a shard server owns, as
// advertised in the info frame.
type SlabInfo struct {
	Base    int      // global index of the slab's first class
	Classes int      // slab width
	Labels  []string // per-class labels, local order
}

// ShardInfo is the decoded info frame: everything a router needs to
// validate a replica against the layout and resolve labels locally, so
// result frames never carry strings.
type ShardInfo struct {
	Version byte
	Rep     infer.Representation
	Dim     int
	Name    string
	// Epoch is the shard's committed enrollment epoch: its growing slab
	// (if any) holds the base range plus the first Epoch enrollments.
	// Frozen shards report 0.
	Epoch uint64
	Slabs []SlabInfo
}

func appendHello(buf []byte, reqID uint32) []byte {
	buf = beginFrame(buf, opHello, reqID)
	buf = append(buf, ProtocolVersion)
	return endFrame(buf)
}

func appendInfo(buf []byte, reqID uint32, info *ShardInfo) []byte {
	buf = beginFrame(buf, opInfo, reqID)
	buf = append(buf, ProtocolVersion, byte(info.Rep))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(info.Dim))
	buf = appendStr8(buf, info.Name)
	buf = binary.LittleEndian.AppendUint64(buf, info.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(info.Slabs)))
	for _, sl := range info.Slabs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(sl.Base))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(sl.Classes))
		for _, l := range sl.Labels {
			buf = appendStr16(buf, l)
		}
	}
	return endFrame(buf)
}

//hdc:coldpath handshake-only decode; query/result frames never reach it
func decodeInfo(body []byte) (*ShardInfo, error) {
	r := wireReader{b: body}
	info := &ShardInfo{Version: r.u8(), Rep: infer.Representation(r.u8())}
	info.Dim = int(r.u32())
	info.Name = r.str8()
	info.Epoch = r.u64()
	nslabs := int(r.u16())
	for i := 0; i < nslabs && !r.fail(); i++ {
		sl := SlabInfo{Base: int(r.u32()), Classes: int(r.u32())}
		if sl.Classes < 0 || sl.Classes > MaxFrame {
			return nil, fmt.Errorf("dist: info slab %d declares %d classes", i, sl.Classes)
		}
		sl.Labels = make([]string, 0, sl.Classes)
		for c := 0; c < sl.Classes; c++ {
			sl.Labels = append(sl.Labels, r.str16())
		}
		info.Slabs = append(info.Slabs, sl)
	}
	if r.fail() {
		return nil, r.err
	}
	if info.Version != ProtocolVersion {
		return nil, fmt.Errorf("dist: protocol version mismatch: peer %d, want %d", info.Version, ProtocolVersion)
	}
	return info, nil
}

// --- query ----------------------------------------------------------------

// appendQuery encodes one probe batch addressed to the slab at base,
// to be served at exactly the named enrollment epoch. Dense probes are
// written as raw float32 rows; packed probes as raw uint64 words. The
// representation is the shard's declared one, so the server never
// converts.
//
//hdc:hotpath
func appendQuery(buf []byte, reqID uint32, epoch uint64, base int, k int, rep infer.Representation, batch *infer.Batch) ([]byte, error) {
	n := batch.Len()
	dim := batch.Dim()
	if n > math.MaxUint16 || k > math.MaxUint16 {
		return buf, errQueryTooLarge(n, k)
	}
	buf = beginFrame(buf, opQuery, reqID)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(base))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(k))
	buf = append(buf, byte(rep)) //hdc:allow hotpathalloc amortized frame-buffer growth; the steady state reuses capacity
	buf = binary.LittleEndian.AppendUint16(buf, uint16(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	switch rep {
	case infer.RepDense:
		x := batch.Dense
		if x == nil {
			return buf, errNoDense()
		}
		for p := 0; p < n; p++ {
			for _, v := range x.Row(p) {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
			}
		}
	case infer.RepPacked:
		probes := batch.SignPacked()
		if probes == nil {
			return buf, errNoPacked()
		}
		for _, probe := range probes {
			for _, w := range probe.Words() {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		}
	default:
		return buf, errBadRep(byte(rep))
	}
	return endFrame(buf), nil
}

// wireQuery is a decoded query frame. The probe slab is decoded into
// the caller's scratch (flat / words grown, never shrunk), so a served
// connection's steady state allocates nothing.
type wireQuery struct {
	epoch uint64
	base  int
	k     int
	rep   infer.Representation
	n     int
	dim   int
	flat  []float32     // dense rows, n*dim (rep == RepDense)
	words []uint64      // packed words (rep == RepPacked)
	pack  []*hdc.Binary // views into words, one per probe
}

// decodeQuery parses a query frame body into q, reusing q's slab
// buffers.
//
//hdc:hotpath
func decodeQuery(body []byte, q *wireQuery) error {
	r := wireReader{b: body}
	q.epoch = r.u64()
	q.base = int(r.u32())
	q.k = int(r.u16())
	q.rep = infer.Representation(r.u8())
	q.n = int(r.u16())
	q.dim = int(r.u32())
	if r.fail() {
		return r.err
	}
	switch q.rep {
	case infer.RepDense:
		want := q.n * q.dim
		raw := r.need(4 * want)
		if r.fail() {
			return r.err
		}
		if cap(q.flat) < want {
			q.flat = make([]float32, want) //hdc:allow hotpathalloc amortized probe-slab growth; the steady state reuses capacity
		}
		q.flat = q.flat[:want]
		for i := range q.flat {
			q.flat[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	case infer.RepPacked:
		wpv := (q.dim + 63) / 64
		want := q.n * wpv
		raw := r.need(8 * want)
		if r.fail() {
			return r.err
		}
		if cap(q.words) < want {
			q.words = make([]uint64, want) //hdc:allow hotpathalloc amortized probe-slab growth; the steady state reuses capacity
		}
		q.words = q.words[:want]
		for i := range q.words {
			q.words[i] = binary.LittleEndian.Uint64(raw[8*i:])
		}
		if cap(q.pack) < q.n {
			q.pack = make([]*hdc.Binary, q.n) //hdc:allow hotpathalloc amortized probe-slab growth; the steady state reuses capacity
		}
		q.pack = q.pack[:q.n]
		for p := range q.pack {
			q.pack[p] = hdc.BinaryFromWords(q.dim, q.words[p*wpv:(p+1)*wpv])
		}
	default:
		return errBadRep(byte(q.rep))
	}
	if len(r.b) != 0 {
		return errTrailing(len(r.b))
	}
	return nil
}

// --- results --------------------------------------------------------------

// appendResults encodes per-probe candidate lists, mapping local class
// indices to global ones by adding base. Scores travel as raw bits.
//
//hdc:hotpath
func appendResults(buf []byte, reqID uint32, base int, results []infer.Result) []byte {
	buf = beginFrame(buf, opResults, reqID)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(results)))
	for _, res := range results {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(res.TopK)))
		for _, h := range res.TopK {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(base+h.Class))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Score))
		}
	}
	return endFrame(buf)
}

// shardReply is one shard's decoded candidate lists: hits at stride
// kStride per probe (counts[p] valid), classes global, no labels — the
// router resolves those at merge time from its handshake table.
type shardReply struct {
	n       int
	kStride int
	counts  []int
	hits    []infer.Hit
}

// decodeResults parses a results frame body into rep, whose kStride
// must be pre-set to the k the query asked for; buffers are reused.
//
//hdc:hotpath
func decodeResults(body []byte, rep *shardReply) error {
	r := wireReader{b: body}
	rep.n = int(r.u16())
	if r.fail() {
		return r.err
	}
	k := rep.kStride
	if cap(rep.counts) < rep.n {
		rep.counts = make([]int, rep.n) //hdc:allow hotpathalloc amortized reply-buffer growth; the steady state reuses capacity
	}
	rep.counts = rep.counts[:rep.n]
	if cap(rep.hits) < rep.n*k {
		rep.hits = make([]infer.Hit, rep.n*k) //hdc:allow hotpathalloc amortized reply-buffer growth; the steady state reuses capacity
	}
	rep.hits = rep.hits[:rep.n*k]
	for p := 0; p < rep.n; p++ {
		kk := int(r.u16())
		if kk > k {
			return errReplyOverflow(kk, k)
		}
		rep.counts[p] = kk
		row := rep.hits[p*k : p*k+kk]
		for i := range row {
			class := r.u32()
			score := r.u64()
			row[i] = infer.Hit{Class: int(class), Score: math.Float64frombits(score)}
		}
	}
	if r.fail() {
		return r.err
	}
	if len(r.b) != 0 {
		return errTrailing(len(r.b))
	}
	return nil
}

// --- prepare / commit -----------------------------------------------------

// EnrollRecord is one enrollment as it travels the wire and lives in
// the router's replay log: the epoch it creates, the class label, and
// the packed prototype words (the durable unit — dense rows and norms
// are rederived from the words everywhere, which is what keeps replayed
// and forwarded enrollments bit-identical).
type EnrollRecord struct {
	Epoch uint64
	Label string
	Words []uint64
}

// flipReply is a decoded prepare/commit acknowledgment. OK=false is a
// clean refusal with Committed reporting the replica's actual epoch,
// so the router can replay the enrollments the replica missed.
type flipReply struct {
	OK        bool
	Committed uint64
}

func appendPrepare(buf []byte, reqID uint32, rec *EnrollRecord) []byte {
	buf = beginFrame(buf, opPrepare, reqID)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Epoch)
	buf = appendStr16(buf, rec.Label)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Words)))
	for _, w := range rec.Words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return endFrame(buf)
}

//hdc:coldpath enrollment decode runs once per flip, off the query hot path
func decodePrepare(body []byte) (*EnrollRecord, error) {
	r := wireReader{b: body}
	rec := &EnrollRecord{Epoch: r.u64(), Label: r.str16()}
	nwords := int(r.u32())
	if nwords < 0 || nwords > MaxFrame/8 {
		return nil, fmt.Errorf("%w: prepare declares %d words", ErrProtocol, nwords)
	}
	rec.Words = make([]uint64, nwords)
	for i := range rec.Words {
		rec.Words[i] = r.u64()
	}
	if r.fail() {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, errTrailing(len(r.b))
	}
	return rec, nil
}

func appendCommit(buf []byte, reqID uint32, epoch uint64) []byte {
	buf = beginFrame(buf, opCommit, reqID)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	return endFrame(buf)
}

//hdc:coldpath enrollment decode runs once per flip, off the query hot path
func decodeCommit(body []byte) (uint64, error) {
	r := wireReader{b: body}
	epoch := r.u64()
	if r.fail() {
		return 0, r.err
	}
	if len(r.b) != 0 {
		return 0, errTrailing(len(r.b))
	}
	return epoch, nil
}

func appendFlipOK(buf []byte, op byte, reqID uint32, ok bool, committed uint64) []byte {
	buf = beginFrame(buf, op, reqID)
	var okb byte
	if ok {
		okb = 1
	}
	buf = append(buf, okb)
	return endFrame(binary.LittleEndian.AppendUint64(buf, committed))
}

//hdc:coldpath enrollment decode runs once per flip, off the query hot path
func decodeFlipOK(body []byte, rep *flipReply) error {
	r := wireReader{b: body}
	rep.OK = r.u8() != 0
	rep.Committed = r.u64()
	if r.fail() {
		return r.err
	}
	if len(r.b) != 0 {
		return errTrailing(len(r.b))
	}
	return nil
}

// --- error ----------------------------------------------------------------

//hdc:coldpath error frames answer only rejected requests
func appendError(buf []byte, reqID uint32, msg string) []byte {
	buf = beginFrame(buf, opError, reqID)
	buf = appendStr16(buf, msg)
	return endFrame(buf)
}

//hdc:coldpath error frames answer only rejected requests
func decodeError(body []byte) error {
	r := wireReader{b: body}
	msg := r.str16()
	if r.fail() {
		return r.err
	}
	return fmt.Errorf("%w: %s", ErrRemote, msg)
}

// Cold error constructors, kept out of the framing hot path.

//hdc:coldpath error construction for rejected frames
func errFrameSize(n uint32) error {
	return fmt.Errorf("%w: frame payload of %d bytes", ErrProtocol, n)
}

//hdc:coldpath error construction for rejected frames
func errTruncated(want, have int) error {
	return fmt.Errorf("%w: truncated frame: need %d bytes, have %d", ErrProtocol, want, have)
}

//hdc:coldpath error construction for rejected frames
func errTrailing(n int) error {
	return fmt.Errorf("%w: %d trailing bytes after frame body", ErrProtocol, n)
}

//hdc:coldpath error construction for rejected frames
func errBadRep(rep byte) error {
	return fmt.Errorf("%w: unknown probe representation %d", ErrProtocol, rep)
}

//hdc:coldpath error construction for rejected queries
func errQueryTooLarge(n, k int) error {
	return fmt.Errorf("%w: batch of %d probes at k=%d exceeds the wire limits", ErrProtocol, n, k)
}

//hdc:coldpath error construction for rejected queries
func errNoDense() error {
	return fmt.Errorf("%w: shard consumes dense probes, batch has none", ErrProtocol)
}

//hdc:coldpath error construction for rejected queries
func errNoPacked() error {
	return fmt.Errorf("%w: shard consumes packed probes, batch has none", ErrProtocol)
}

//hdc:coldpath error construction for rejected replies
func errReplyOverflow(kk, k int) error {
	return fmt.Errorf("%w: shard returned %d candidates for k=%d", ErrProtocol, kk, k)
}
