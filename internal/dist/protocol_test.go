package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// readOne parses a single encoded frame back through the real read path.
func readOne(t *testing.T, frame []byte) (op byte, reqID uint32, body []byte) {
	t.Helper()
	op, reqID, body, _, err := readFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	return op, reqID, body
}

func TestQueryFrameRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, d = 3, 17
	x := tensor.New(n, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	frame, err := appendQuery(nil, 42, 0, 100, 5, infer.RepDense, infer.DenseBatch(x))
	if err != nil {
		t.Fatalf("appendQuery: %v", err)
	}
	op, reqID, body := readOne(t, frame)
	if op != opQuery || reqID != 42 {
		t.Fatalf("op=%d reqID=%d, want opQuery reqID=42", op, reqID)
	}
	var q wireQuery
	if err := decodeQuery(body, &q); err != nil {
		t.Fatalf("decodeQuery: %v", err)
	}
	if q.base != 100 || q.k != 5 || q.rep != infer.RepDense || q.n != n || q.dim != d {
		t.Fatalf("header mismatch: %+v", q)
	}
	for i, v := range x.Data {
		if q.flat[i] != v {
			t.Fatalf("probe value %d: got %v want %v (must be bit-exact)", i, q.flat[i], v)
		}
	}
}

func TestQueryFrameRoundTripPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, d = 4, 130 // straddles a word boundary
	probes := make([]*hdc.Binary, n)
	for i := range probes {
		probes[i] = hdc.NewRandomBinary(rng, d)
	}
	frame, err := appendQuery(nil, 7, 0, 0, 3, infer.RepPacked, infer.PackedBatch(probes))
	if err != nil {
		t.Fatalf("appendQuery: %v", err)
	}
	_, _, body := readOne(t, frame)
	var q wireQuery
	if err := decodeQuery(body, &q); err != nil {
		t.Fatalf("decodeQuery: %v", err)
	}
	if q.n != n || q.dim != d || len(q.pack) != n {
		t.Fatalf("header mismatch: %+v", q)
	}
	for p, probe := range probes {
		want, got := probe.Words(), q.pack[p].Words()
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("probe %d word %d: got %x want %x", p, w, got[w], want[w])
			}
		}
	}
}

func TestResultsFrameRoundTripPreservesScoreBits(t *testing.T) {
	// Scores chosen to be ugly under any text round trip: bit-exact
	// survival over the wire is what the parity contract rides on.
	results := []infer.Result{
		{TopK: []infer.Hit{{Class: 0, Score: 0.1 + 0.2}, {Class: 3, Score: 0.1 + 0.2}}},
		{TopK: []infer.Hit{{Class: 1, Score: math.Nextafter(1, 2)}}},
		{TopK: nil},
	}
	const base = 1000
	frame := appendResults(nil, 9, base, results)
	op, reqID, body := readOne(t, frame)
	if op != opResults || reqID != 9 {
		t.Fatalf("op=%d reqID=%d", op, reqID)
	}
	rep := shardReply{kStride: 2}
	if err := decodeResults(body, &rep); err != nil {
		t.Fatalf("decodeResults: %v", err)
	}
	if rep.n != len(results) {
		t.Fatalf("n=%d want %d", rep.n, len(results))
	}
	for p, res := range results {
		if rep.counts[p] != len(res.TopK) {
			t.Fatalf("probe %d count=%d want %d", p, rep.counts[p], len(res.TopK))
		}
		for i, h := range res.TopK {
			got := rep.hits[p*rep.kStride+i]
			if got.Class != base+h.Class {
				t.Fatalf("probe %d hit %d class=%d want %d (global)", p, i, got.Class, base+h.Class)
			}
			if math.Float64bits(got.Score) != math.Float64bits(h.Score) {
				t.Fatalf("probe %d hit %d score bits %x want %x", p, i,
					math.Float64bits(got.Score), math.Float64bits(h.Score))
			}
		}
	}
}

func TestInfoFrameRoundTrip(t *testing.T) {
	in := ShardInfo{
		Version: ProtocolVersion,
		Rep:     infer.RepPacked,
		Dim:     1536,
		Name:    "hamming-packed",
		Slabs: []SlabInfo{
			{Base: 0, Classes: 2, Labels: []string{"cat", "dog"}},
			{Base: 500, Classes: 1, Labels: []string{"newt"}},
		},
	}
	_, _, body := readOne(t, appendInfo(nil, 1, &in))
	out, err := decodeInfo(body)
	if err != nil {
		t.Fatalf("decodeInfo: %v", err)
	}
	if out.Rep != in.Rep || out.Dim != in.Dim || out.Name != in.Name || len(out.Slabs) != 2 {
		t.Fatalf("info mismatch: %+v", out)
	}
	for i, sl := range in.Slabs {
		got := out.Slabs[i]
		if got.Base != sl.Base || got.Classes != sl.Classes {
			t.Fatalf("slab %d geometry mismatch: %+v", i, got)
		}
		for c := range sl.Labels {
			if got.Labels[c] != sl.Labels[c] {
				t.Fatalf("slab %d label %d: %q want %q", i, c, got.Labels[c], sl.Labels[c])
			}
		}
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	_, _, body := readOne(t, appendError(nil, 3, "no slab at base 7"))
	err := decodeError(body)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("decoded error %v is not ErrRemote", err)
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	_, _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])), nil)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized frame: err=%v, want ErrProtocol", err)
	}
}

func TestDecodeQueryRejectsTruncatedSlab(t *testing.T) {
	x := tensor.New(2, 8)
	frame, err := appendQuery(nil, 1, 0, 0, 1, infer.RepDense, infer.DenseBatch(x))
	if err != nil {
		t.Fatal(err)
	}
	_, _, body := readOne(t, frame)
	var q wireQuery
	if err := decodeQuery(body[:len(body)-4], &q); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated slab: err=%v, want ErrProtocol", err)
	}
}

func TestDecodeResultsRejectsOverflowingCandidateList(t *testing.T) {
	results := []infer.Result{{TopK: []infer.Hit{{Class: 0}, {Class: 1}, {Class: 2}}}}
	_, _, body := readOne(t, appendResults(nil, 1, 0, results))
	rep := shardReply{kStride: 2} // shard promised at most 2 per probe
	if err := decodeResults(body, &rep); !errors.Is(err, ErrProtocol) {
		t.Fatalf("overflowing reply: err=%v, want ErrProtocol", err)
	}
}
