package dist

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the virtual-node count per physical node: enough
// that range ownership spreads near-uniformly over a handful of nodes,
// small enough that ring construction stays trivial.
const defaultVNodes = 64

// Ring is a consistent-hash ring over shard node addresses. Each node
// is hashed onto the ring at vnodes points; a key's owners are the
// first distinct nodes clockwise from the key's hash. Placement is
// deterministic in the node set alone, and adding or removing a node
// only reassigns the keys that hashed adjacent to it — the property
// that makes shard rebalancing incremental.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the node addresses. vnodes <= 0 takes the
// default (64 per node).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(nodes)*vnodes), nodes: len(nodes)}
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie on hash: order by node address so the ring is deterministic
		// regardless of input order.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// ringHash is FNV-1a 64 through a splitmix64 finalizer — a pure
// function of the string, stable across processes and Go versions
// (unlike maphash), which the layout contract requires: every node
// building the same ring must agree on placement. The finalizer is
// load-bearing: raw FNV-1a barely avalanches the trailing bytes, so
// vnode keys like "n4#0".."n4#63" land in one contiguous arc and the
// ring degenerates to two owners for everything.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owners returns the first n distinct nodes clockwise from key's hash
// position, the key's replica set in preference order. n is clamped to
// the node count.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n > r.nodes {
		n = r.nodes
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		taken := false
		for _, o := range owners {
			if o == node {
				taken = true
				break
			}
		}
		if !taken {
			owners = append(owners, node)
		}
	}
	return owners
}
