package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestRingPlacementDeterministicInNodeSetAlone(t *testing.T) {
	nodes := []string{"10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070", "10.0.0.4:7070"}
	shuffled := append([]string(nil), nodes...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, b := NewRing(nodes, 0), NewRing(shuffled, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("slab/%d-%d", i*10, i*10+10)
		if got, want := b.Owners(key, 2), a.Owners(key, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q: owners %v vs %v under node-order permutation", key, got, want)
		}
	}
}

func TestRingOwnersDistinctAndClamped(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	owners := r.Owners("slab/0-100", 5)
	if len(owners) != 3 {
		t.Fatalf("owners=%v, want all 3 distinct nodes when n exceeds the node count", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %q in %v", o, owners)
		}
		seen[o] = true
	}
}

func TestRingNodeRemovalMovesOnlyAdjacentKeys(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	full := NewRing(nodes, 0)
	reduced := NewRing(nodes[:4], 0) // n5 leaves
	moved := 0
	const keys = 200
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("slab/%d", i)
		before := full.Owners(key, 1)[0]
		after := reduced.Owners(key, 1)[0]
		if before != "n5" && before != after {
			t.Fatalf("key %q moved %s→%s though its owner did not leave", key, before, after)
		}
		if before != after {
			moved++
		}
	}
	if moved == 0 || moved == keys {
		t.Fatalf("%d/%d keys moved on single-node departure; expected only the departed node's share", moved, keys)
	}
}

func TestBuildLayoutCoversAndReplicates(t *testing.T) {
	nodes := []string{"h1:7070", "h2:7070", "h3:7070"}
	l, err := BuildLayout("m", 101, 64, 4, nodes, 2)
	if err != nil {
		t.Fatalf("BuildLayout: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("built layout fails its own Validate: %v", err)
	}
	if len(l.Shards) != 4 {
		t.Fatalf("shards=%d want 4", len(l.Shards))
	}
	for _, s := range l.Shards {
		if len(s.Replicas) != 2 {
			t.Fatalf("range %v has %d replicas, want 2", s.Range, len(s.Replicas))
		}
		if s.Replicas[0] == s.Replicas[1] {
			t.Fatalf("range %v replicated onto the same node twice: %v", s.Range, s.Replicas)
		}
	}
	again, _ := BuildLayout("m", 101, 64, 4, nodes, 2)
	if !reflect.DeepEqual(l, again) {
		t.Fatal("BuildLayout is not deterministic in its inputs")
	}
}

func TestLayoutValidateRejectsBrokenCover(t *testing.T) {
	cases := []struct {
		name string
		l    Layout
	}{
		{"gap", Layout{Classes: 10, Dim: 4, Shards: []ShardSpec{
			{Range: [2]int{0, 4}, Replicas: []string{"a"}},
			{Range: [2]int{5, 10}, Replicas: []string{"a"}}}}},
		{"overlap", Layout{Classes: 10, Dim: 4, Shards: []ShardSpec{
			{Range: [2]int{0, 6}, Replicas: []string{"a"}},
			{Range: [2]int{5, 10}, Replicas: []string{"a"}}}}},
		{"short", Layout{Classes: 10, Dim: 4, Shards: []ShardSpec{
			{Range: [2]int{0, 9}, Replicas: []string{"a"}}}}},
		{"no replicas", Layout{Classes: 10, Dim: 4, Shards: []ShardSpec{
			{Range: [2]int{0, 10}}}}},
		{"empty", Layout{Classes: 10, Dim: 4}},
	}
	for _, tc := range cases {
		if err := tc.l.Validate(); !errors.Is(err, ErrLayout) {
			t.Errorf("%s: Validate()=%v, want ErrLayout", tc.name, err)
		}
	}
}

func TestLayoutRangesFor(t *testing.T) {
	l := Layout{Classes: 10, Dim: 4, Shards: []ShardSpec{
		{Range: [2]int{0, 5}, Replicas: []string{"a", "b"}},
		{Range: [2]int{5, 10}, Replicas: []string{"b"}},
	}}
	if got := l.RangesFor("a"); !reflect.DeepEqual(got, [][2]int{{0, 5}}) {
		t.Fatalf("RangesFor(a)=%v", got)
	}
	if got := l.RangesFor("b"); !reflect.DeepEqual(got, [][2]int{{0, 5}, {5, 10}}) {
		t.Fatalf("RangesFor(b)=%v", got)
	}
	if got := l.RangesFor("c"); got != nil {
		t.Fatalf("RangesFor(c)=%v, want nil", got)
	}
}
