package dist

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/lat"
)

// RouterConfig tunes the router's failover and pooling behavior. The
// zero value takes the defaults.
type RouterConfig struct {
	// ShardTimeout bounds one replica attempt (write + reply), default
	// 2s. A replica that blows it is condemned: its connection is torn
	// down and the next replica is tried.
	ShardTimeout time.Duration
	// DialTimeout bounds connection establishment + handshake, default
	// 2s.
	DialTimeout time.Duration
	// Attempts caps replica tries per shard per query (failover budget),
	// default: every replica once.
	Attempts int
	// ConnsPerReplica sizes each replica's pipelined connection pool,
	// default 2.
	ConnsPerReplica int
	// BreakerThreshold condemns a replica after this many consecutive
	// failed attempts (dial errors, timeouts, protocol faults): further
	// attempts skip it instantly — no dial, no timeout — until a
	// jittered exponential cool-off admits a single recovery probe.
	// Default 3; negative disables the breaker.
	BreakerThreshold int
	// BreakerBackoff is the first cool-off after a condemnation,
	// default 100ms. Each consecutive condemnation doubles it.
	BreakerBackoff time.Duration
	// BreakerMaxBackoff caps the cool-off growth, default 5s.
	BreakerMaxBackoff time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ConnsPerReplica <= 0 {
		c.ConnsPerReplica = 2
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = 100 * time.Millisecond
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = 5 * time.Second
	}
	return c
}

// RouterStats is a snapshot of the router's serving counters.
type RouterStats struct {
	Queries      uint64 `json:"queries"`       // batches routed
	ShardCalls   uint64 `json:"shard_calls"`   // replica round trips attempted
	Failovers    uint64 `json:"failovers"`     // attempts that moved to another replica
	Failed       uint64 `json:"failed"`        // batches that failed on every replica of some shard
	BreakerSkips uint64 `json:"breaker_skips"` // attempts skipped because the replica was condemned
	Enrolls      uint64 `json:"enrolls"`       // epoch flips driven to completion
}

// epochState is the router's published enrollment epoch and everything
// a query needs to serve consistently at it: the global class count and
// label table epoch e implies. One atomic pointer load at the top of
// TryQueryEpoch pins a whole batch to one epoch — every shard leg is
// tagged with it and the merged ranking is labeled from its table — so
// a concurrent enroll can never produce a ranking that mixes epochs.
type epochState struct {
	epoch   uint64
	classes int
	labels  []string
}

// routerShard is one class-range slab and its replica connection pools
// in failover preference order.
type routerShard struct {
	base    int
	classes int
	pools   []*replicaPool
}

// Router is the scatter-gather front of a distributed class memory: it
// fans each probe batch out to every shard concurrently, collects the
// per-shard top-k candidate lists (global class indices, raw score
// bits), and merges them with the engine's own comparator — so the
// ranking a client sees is byte-identical to one engine over the whole
// class memory, at any shard count and any replica layout.
//
// A Router satisfies the serve.Querier seam: the micro-batching
// coalescer fronts it exactly as it fronts a local engine, which is how
// `hdcserve -router` serves /v1/classify from N shard processes without
// the HTTP layer noticing.
type Router struct {
	name    string
	classes int // layout (base-memory) class count; live count is in est
	dim     int
	rep     infer.Representation
	labels  []string // base-memory label table; live table is in est
	shards  []*routerShard
	pools   map[string]*replicaPool // shared per address across shards
	cfg     RouterConfig

	// est is the published enrollment epoch (see epochState). The last
	// shard range is the growing one; the others are frozen at the
	// layout geometry.
	est atomic.Pointer[epochState]

	// emu serializes enrollment flips; enrollLog keeps every record
	// flipped through this router so a replica that was down for some
	// epochs can be caught up (prepare+commit replay) before the next
	// flip. Records from before this router started cannot be replayed —
	// a replica lagging the adopted startup epoch serves old-epoch reads
	// but refuses prepares until restarted from an up-to-date WAL.
	emu       sync.Mutex
	enrollLog map[uint64]*EnrollRecord

	scratch sync.Pool // *routeScratch

	closed atomic.Bool

	queries      atomic.Uint64
	shardCalls   atomic.Uint64
	failovers    atomic.Uint64
	failed       atomic.Uint64
	breakerSkips atomic.Uint64
	enrolls      atomic.Uint64
	rtt          lat.Hist // per-attempt shard round-trip latency
}

// routeScratch is one query's working set: a reply slot and encode
// buffer per shard, plus the merge buffer and sorter.
type routeScratch struct {
	replies []shardReply
	bufs    [][]byte
	errs    []error
	merged  []infer.Hit
	sorter  infer.HitSorter
}

// NewRouter connects to the layout's shards and validates every range
// against a live replica's handshake: dimensionality, representation,
// backend name, and slab geometry must agree, and the concatenated
// label tables form the router's global label memory (result frames
// carry no strings). A range whose replicas are all down fails
// construction — a router that cannot cover the class space would
// silently mis-rank.
func NewRouter(layout Layout, cfg RouterConfig) (*Router, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := &Router{
		name:      layout.Model,
		classes:   layout.Classes,
		dim:       layout.Dim,
		labels:    make([]string, layout.Classes),
		pools:     map[string]*replicaPool{},
		enrollLog: map[uint64]*EnrollRecord{},
		cfg:       cfg,
	}
	r.scratch.New = func() any { return new(routeScratch) }
	pool := func(addr string) *replicaPool {
		p, ok := r.pools[addr]
		if !ok {
			p = newReplicaPool(addr, cfg.ConnsPerReplica, cfg.DialTimeout)
			p.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerBackoff, cfg.BreakerMaxBackoff)
			r.pools[addr] = p
		}
		return p
	}
	var enrolled []string
	for i, spec := range layout.Shards {
		rs := &routerShard{base: spec.Range[0], classes: spec.Range[1] - spec.Range[0]}
		for _, addr := range spec.Replicas {
			rs.pools = append(rs.pools, pool(addr))
		}
		grow := i == len(layout.Shards)-1
		// Frozen ranges validate against the first replica that answers
		// (the others are dialed lazily on demand). The growing tail
		// range asks every replica and adopts the highest committed
		// epoch — replicas restarting from older WALs lag behind and are
		// served around by failover until they catch up.
		var info *ShardInfo
		var err error
		for _, p := range rs.pools {
			pi, perr := p.info()
			if perr != nil {
				err = perr
				continue
			}
			if info == nil || (grow && pi.Epoch > info.Epoch) {
				info = pi
			}
			if !grow {
				break
			}
		}
		if info == nil {
			r.Close()
			return nil, fmt.Errorf("%w: range [%d, %d): no replica reachable: %v",
				ErrShardDown, spec.Range[0], spec.Range[1], err)
		}
		if enrolled, err = r.adoptInfo(spec, info, grow); err != nil {
			r.Close()
			return nil, err
		}
		r.shards = append(r.shards, rs)
	}
	sort.Slice(r.shards, func(a, b int) bool { return r.shards[a].base < r.shards[b].base })
	st := &epochState{
		epoch:   uint64(len(enrolled)),
		classes: layout.Classes + len(enrolled),
		labels:  append(r.labels[:layout.Classes:layout.Classes], enrolled...),
	}
	r.est.Store(st)
	return r, nil
}

// adoptInfo checks one shard's handshake against the layout and fills
// in the router's identity (name, representation) and label table. For
// the growing tail range it returns the labels of the classes enrolled
// beyond the layout geometry (info.Epoch of them).
func (r *Router) adoptInfo(spec ShardSpec, info *ShardInfo, grow bool) ([]string, error) {
	if info.Dim != r.dim {
		return nil, fmt.Errorf("%w: range %v serves d=%d, layout says %d", ErrLayout, spec.Range, info.Dim, r.dim)
	}
	if r.name == "" {
		r.name = info.Name
	}
	var slab *SlabInfo
	for i := range info.Slabs {
		if info.Slabs[i].Base == spec.Range[0] {
			slab = &info.Slabs[i]
			break
		}
	}
	if slab == nil {
		return nil, fmt.Errorf("%w: replica for range %v does not serve a slab at base %d", ErrLayout, spec.Range, spec.Range[0])
	}
	width := spec.Range[1] - spec.Range[0]
	want := width
	if grow {
		want += int(info.Epoch)
	}
	if slab.Classes != want {
		return nil, fmt.Errorf("%w: range %v slab holds %d classes, want %d (epoch %d)",
			ErrLayout, spec.Range, slab.Classes, want, info.Epoch)
	}
	if len(r.shards) == 0 {
		r.rep = info.Rep
	} else if info.Rep != r.rep {
		return nil, fmt.Errorf("%w: range %v serves representation %v, earlier shards %v", ErrLayout, spec.Range, info.Rep, r.rep)
	}
	copy(r.labels[slab.Base:slab.Base+width], slab.Labels[:width])
	if grow {
		return append([]string(nil), slab.Labels[width:]...), nil
	}
	return nil, nil
}

// Name reports the served backend name (the serve.Querier surface).
func (r *Router) Name() string { return r.name }

// Classes returns the global class count at the published epoch.
func (r *Router) Classes() int { return r.est.Load().classes }

// Epoch returns the published enrollment epoch: every query batch is
// served consistently at this epoch (the serve layer's epoch tag).
func (r *Router) Epoch() uint64 { return r.est.Load().epoch }

// EnrolledTotal returns the number of classes enrolled beyond the
// layout geometry — the router-side analogue of the versioned store's
// counter, surfaced through /stats.
func (r *Router) EnrolledTotal() uint64 { return r.est.Load().epoch }

// Dim returns the probe dimensionality.
func (r *Router) Dim() int { return r.dim }

// Shards returns the shard-range count (the distributed analogue of
// Engine.Workers).
func (r *Router) Shards() int { return len(r.shards) }

// Requires reports the probe representation the shard backends consume.
func (r *Router) Requires() infer.Representation { return r.rep }

// Label returns the label of global class c at the published epoch.
func (r *Router) Label(c int) string { return r.est.Load().labels[c] }

// Stats snapshots the routing counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Queries:      r.queries.Load(),
		ShardCalls:   r.shardCalls.Load(),
		Failovers:    r.failovers.Load(),
		Failed:       r.failed.Load(),
		BreakerSkips: r.breakerSkips.Load(),
		Enrolls:      r.enrolls.Load(),
	}
}

// LatencySnapshots exposes the router's stage timings through the
// serve layer's /stats endpoint (matched there by interface assertion,
// so serve never imports dist).
func (r *Router) LatencySnapshots() map[string]lat.Snapshot {
	return map[string]lat.Snapshot{"shard_rtt": r.rtt.Snapshot()}
}

// Close tears down every pooled connection. In-flight queries fail.
func (r *Router) Close() {
	r.closed.Store(true)
	for _, p := range r.pools {
		p.close()
	}
}

// Query is TryQuery panicking on error, mirroring Engine.Query.
func (r *Router) Query(batch *infer.Batch, k int) []infer.Result {
	res, err := r.TryQuery(batch, k)
	if err != nil {
		panic("dist.Router.Query: " + err.Error())
	}
	return res
}

// TryQuery fans batch out to every shard concurrently, with per-shard
// timeouts and bounded replica failover, and merges the candidate
// lists into globally ordered per-probe top-k results — the same
// ordering, tie-breaks included, as one infer.Engine over the whole
// class memory. Results are freshly allocated (the coalescer's demux
// hands them to waiting callers); everything else in the call reuses
// pooled scratch. Safe for any number of concurrent callers.
//
//hdc:hotpath
func (r *Router) TryQuery(batch *infer.Batch, k int) ([]infer.Result, error) {
	res, _, err := r.TryQueryEpoch(batch, k)
	return res, err
}

// TryQueryEpoch is TryQuery returning the enrollment epoch the batch
// was served at. The epoch is pinned by one atomic load before the
// scatter, every shard leg carries it, and the returned tag is that
// same value — a ranking and its epoch can never disagree, even with
// enrollments flipping concurrently.
//
//hdc:hotpath
func (r *Router) TryQueryEpoch(batch *infer.Batch, k int) ([]infer.Result, uint64, error) {
	if r.closed.Load() {
		return nil, 0, ErrClosed
	}
	if err := batch.Validate(); err != nil {
		return nil, 0, err
	}
	n := batch.Len()
	if n == 0 {
		return nil, r.est.Load().epoch, nil
	}
	if k <= 0 {
		return nil, 0, errBadK(k)
	}
	if !batch.Satisfies(r.rep) {
		return nil, 0, errRepUnsatisfied(r.rep)
	}
	if d := batch.Dim(); d != r.dim {
		return nil, 0, errDimMismatch(d, r.dim)
	}
	st := r.est.Load()
	if k > st.classes {
		k = st.classes
	}
	r.queries.Add(1)

	sc := r.scratch.Get().(*routeScratch)
	sc.ensure(len(r.shards))

	// Scatter: one goroutine per shard range, each with its own reply
	// slot, encode buffer, and failover loop.
	var wg sync.WaitGroup
	for si := range r.shards {
		wg.Add(1)
		go func(si, k int) { //hdc:allow hotpathalloc one goroutine and closure per shard per query is the fan-out design
			defer wg.Done()
			sc.errs[si] = r.callShard(r.shards[si], st, si == len(r.shards)-1, batch, k, &sc.replies[si], &sc.bufs[si])
		}(si, k)
	}
	wg.Wait()
	for si, err := range sc.errs {
		if err != nil {
			r.failed.Add(1)
			s := r.shards[si]
			r.scratch.Put(sc)
			return nil, 0, errRangeDown(s.base, s.classes, err)
		}
	}

	// Gather: merge per-shard candidates per probe — concatenate, sort
	// with the engine's comparator (a total order: global class indices
	// are distinct), copy the top k. One backing allocation serves every
	// result's TopK, exactly like the engine's phase 2.
	results := make([]infer.Result, n) //hdc:allow hotpathalloc results are caller-owned by contract, mirroring Engine.TryQuery
	backing := make([]infer.Hit, n*k)  //hdc:allow hotpathalloc results are caller-owned by contract, mirroring Engine.TryQuery
	if cap(sc.merged) < len(r.shards)*k {
		sc.merged = make([]infer.Hit, 0, len(r.shards)*k) //hdc:allow hotpathalloc amortized merge-scratch growth; the steady state reuses capacity
	}
	merged := sc.merged
	for p := 0; p < n; p++ {
		merged = merged[:0]
		for si := range sc.replies {
			rep := &sc.replies[si]
			merged = append(merged, rep.hits[p*rep.kStride:p*rep.kStride+rep.counts[p]]...) //hdc:allow hotpathalloc capacity reserved above: shards contribute at most shards*k candidates
		}
		sc.sorter.H = merged
		sort.Sort(&sc.sorter)
		kk := k
		if kk > len(merged) {
			kk = len(merged)
		}
		top := backing[p*k : p*k+kk : (p+1)*k]
		copy(top, merged[:kk])
		for i := range top {
			top[i].Label = st.labels[top[i].Class]
		}
		results[p] = infer.Result{TopK: top}
	}
	sc.merged = merged
	r.scratch.Put(sc)
	return results, st.epoch, nil
}

// callShard runs one shard range's scatter leg: clamp k to the slab
// width (the growing tail range is st.epoch classes wider than the
// layout says), then try replicas in preference order until one answers
// within the timeout or the attempt budget is spent. Every attempt is
// tagged with the pinned epoch; a replica that has not committed it yet
// refuses and the next replica is tried. The reply slot is safe to
// reuse across attempts because a timed-out attempt kills its
// connection and waits for the reader to acknowledge before returning
// (see clientConn.roundTrip).
//
//hdc:hotpath
func (r *Router) callShard(s *routerShard, st *epochState, grow bool, batch *infer.Batch, k int, out *shardReply, buf *[]byte) error {
	width := s.classes
	if grow {
		width += int(st.epoch)
	}
	kk := k
	if kk > width {
		kk = width
	}
	out.kStride = kk
	attempts := r.cfg.Attempts
	if attempts <= 0 || attempts > len(s.pools) {
		attempts = len(s.pools)
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		p := s.pools[a]
		// Circuit breaker: a condemned replica costs nothing — no dial,
		// no timeout — the attempt moves straight to the next replica.
		if !p.brk.allow() {
			r.breakerSkips.Add(1)
			if lastErr == nil {
				lastErr = errCondemned(p.addr)
			}
			continue
		}
		if a > 0 {
			r.failovers.Add(1)
		}
		r.shardCalls.Add(1)
		conn, err := p.get()
		if err != nil {
			p.brk.failure()
			lastErr = err
			continue
		}
		start := time.Now()
		b, err := conn.roundTrip(*buf, st.epoch, s.base, kk, r.rep, batch, r.cfg.ShardTimeout, out)
		r.rtt.Observe(time.Since(start))
		*buf = b
		if err == nil {
			if out.n != batch.Len() {
				p.brk.failure()
				return errReplyCount(out.n, batch.Len())
			}
			p.brk.success()
			return nil
		}
		p.brk.failure()
		lastErr = err
	}
	return lastErr
}

// Enroll drives one class enrollment through the two-phase epoch flip
// and returns the epoch at which the class is queryable cluster-wide.
//
// Phase 1 prepares epoch published+1 on every admissible replica of
// the growing tail range: each acked prepare is WAL-durable on its
// replica before the ack. A replica whose committed epoch lags (it was
// down for earlier flips) is first caught up by replaying the missed
// records from the router's enroll log. Phase 2 commits on the
// prepared replicas; the first commit ack makes the enrollment
// queryable somewhere, and only then does the router publish the new
// epoch — queries tagged with it fail over until they land on a
// committed replica, so a ranking can never show a class no shard
// serves.
//
// The epoch number is the idempotent enroll request ID end to end:
// replicas ack duplicate prepares/commits of the same content cleanly
// and reject the same epoch with different content, so a crashed and
// retried flip can never double-enroll (see classmem.Prepare).
func (r *Router) Enroll(label string, proto *hdc.Binary) (uint64, error) {
	if r.closed.Load() {
		return 0, ErrClosed
	}
	if proto.Dim() != r.dim {
		return 0, fmt.Errorf("%w: enroll dim %d, distributed class memory expects %d", infer.ErrBadQuery, proto.Dim(), r.dim)
	}
	r.emu.Lock()
	defer r.emu.Unlock()
	st := r.est.Load()
	s := r.shards[len(r.shards)-1]
	rec := &EnrollRecord{
		Epoch: st.epoch + 1,
		Label: label,
		Words: append([]uint64(nil), proto.Words()...),
	}
	r.enrollLog[rec.Epoch] = rec

	var prepared []*replicaPool
	var lastErr error
	for _, p := range s.pools {
		if !p.brk.allow() {
			r.breakerSkips.Add(1)
			continue
		}
		if err := r.prepareReplica(p, rec); err != nil {
			p.brk.failure()
			lastErr = err
			continue
		}
		p.brk.success()
		prepared = append(prepared, p)
	}
	if len(prepared) == 0 {
		delete(r.enrollLog, rec.Epoch)
		return 0, fmt.Errorf("%w: enroll %q at epoch %d: no replica prepared: %v", ErrShardDown, label, rec.Epoch, lastErr)
	}
	committed := 0
	for _, p := range prepared {
		if err := r.flipOne(p, rec, true); err != nil {
			p.brk.failure()
			lastErr = err
			continue
		}
		committed++
	}
	if committed == 0 {
		// The enrollment is staged (WAL-durable) but published nowhere;
		// the record stays in the log so the next flip re-drives it as
		// catch-up before preparing its own epoch.
		return 0, fmt.Errorf("%w: enroll %q at epoch %d: prepared on %d replicas but no commit acked: %v",
			ErrShardDown, label, rec.Epoch, len(prepared), lastErr)
	}
	labels := append(st.labels[:st.classes:st.classes], label)
	r.est.Store(&epochState{epoch: rec.Epoch, classes: st.classes + 1, labels: labels})
	r.enrolls.Add(1)
	return rec.Epoch, nil
}

// prepareReplica stages rec on one replica, replaying any flips the
// replica missed (clean ok=0 refusals carry its committed epoch) from
// the enroll log first. Replicas lagging past the log's reach — flips
// from before this router instance — cannot be caught up here and stay
// read-only at their old epoch.
func (r *Router) prepareReplica(p *replicaPool, rec *EnrollRecord) error {
	rep, err := r.flipReply(p, rec, false)
	if err != nil {
		return err
	}
	if rep.OK {
		return nil
	}
	// Gap: replay committed+1 .. rec.Epoch-1, then retry the prepare.
	for e := rep.Committed + 1; e < rec.Epoch; e++ {
		old, ok := r.enrollLog[e]
		if !ok {
			return fmt.Errorf("%w: replica %s is at epoch %d and the flip log starts after it", ErrShardDown, p.addr, rep.Committed)
		}
		if pr, err := r.flipReply(p, old, false); err != nil {
			return err
		} else if !pr.OK {
			return fmt.Errorf("%w: replica %s refused catch-up prepare of epoch %d (at %d)", ErrShardDown, p.addr, e, pr.Committed)
		}
		if err := r.flipOne(p, old, true); err != nil {
			return err
		}
	}
	rep, err = r.flipReply(p, rec, false)
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("%w: replica %s refused prepare of epoch %d after catch-up (at %d)", ErrShardDown, p.addr, rec.Epoch, rep.Committed)
	}
	return nil
}

// flipOne sends one prepare or commit and requires a positive ack.
func (r *Router) flipOne(p *replicaPool, rec *EnrollRecord, commit bool) error {
	rep, err := r.flipReply(p, rec, commit)
	if err != nil {
		return err
	}
	if !rep.OK {
		verb := "prepare"
		if commit {
			verb = "commit"
		}
		return fmt.Errorf("%w: replica %s refused %s of epoch %d (at %d)", ErrShardDown, p.addr, verb, rec.Epoch, rep.Committed)
	}
	return nil
}

// flipReply runs one prepare/commit round trip on a pooled connection.
func (r *Router) flipReply(p *replicaPool, rec *EnrollRecord, commit bool) (flipReply, error) {
	conn, err := p.get()
	if err != nil {
		return flipReply{}, err
	}
	r.shardCalls.Add(1)
	return conn.flipTrip(rec, commit, r.cfg.ShardTimeout)
}

// ensure sizes the per-shard scratch slots.
//
//hdc:coldpath amortized scratch growth; the steady state reuses capacity
func (sc *routeScratch) ensure(shards int) {
	if cap(sc.replies) < shards {
		sc.replies = make([]shardReply, shards)
		sc.bufs = make([][]byte, shards)
		sc.errs = make([]error, shards)
	}
	sc.replies = sc.replies[:shards]
	sc.bufs = sc.bufs[:shards]
	sc.errs = sc.errs[:shards]
	for i := range sc.errs {
		sc.errs[i] = nil
	}
}

// Cold error constructors for rejected queries.

//hdc:coldpath error construction for rejected queries
func errBadK(k int) error {
	return fmt.Errorf("%w: non-positive k=%d", infer.ErrBadQuery, k)
}

//hdc:coldpath error construction for rejected queries
func errRepUnsatisfied(rep infer.Representation) error {
	return fmt.Errorf("%w: shards consume %s probes, batch does not satisfy it", infer.ErrMissingRepresentation, rep)
}

//hdc:coldpath error construction for rejected queries
func errDimMismatch(have, want int) error {
	return fmt.Errorf("%w: probe dim %d, distributed class memory expects %d", infer.ErrBadQuery, have, want)
}

//hdc:coldpath error construction for malformed replies
func errReplyCount(have, want int) error {
	return fmt.Errorf("%w: shard replied for %d probes, batch has %d", ErrProtocol, have, want)
}

//hdc:coldpath error construction for exhausted scatter legs
func errRangeDown(base, classes int, err error) error {
	return fmt.Errorf("%w: range [%d, %d): %v", ErrShardDown, base, base+classes, err)
}
