package dist

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/infer"
	"repro/internal/tensor"
)

// Slab is one class-range assignment of a shard server: an engine over
// a range view of the frozen class memory (infer.NewRangeBackend) plus
// the global index of its first class.
type Slab struct {
	// Base is the global class index of the engine's local class 0.
	Base int
	// Engine serves the slab; its backend typically wraps
	// infer.NewRangeBackend(global, Base, Base+width).
	Engine *infer.Engine
}

// ShardServer serves one or more class-range slabs over the compact
// binary protocol. Every accepted connection gets a reader goroutine;
// each query frame is decoded into pooled scratch and executed on its
// own goroutine against the slab's shared engine, so one pipelined
// connection keeps many batches in flight — the per-connection write
// lock is the only serialization point, held just long enough to put
// one fully encoded frame on the wire.
type ShardServer struct {
	info   ShardInfo
	byBase map[int]*infer.Engine

	scratch sync.Pool // *shardScratch: per-query working set

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup
}

// shardScratch is one query's working set: decoded probe slab, engine
// result buffer, and the encoded reply frame.
type shardScratch struct {
	q    wireQuery
	rbuf infer.ResultBuf
	out  []byte
}

// NewShardServer wraps the slabs for serving. All engines must agree on
// probe dimensionality, representation, and backend name (they are
// views of one frozen class memory); slabs may not repeat a base.
func NewShardServer(slabs []Slab) (*ShardServer, error) {
	if len(slabs) == 0 {
		return nil, errors.New("dist: shard server needs at least one slab")
	}
	s := &ShardServer{
		byBase: make(map[int]*infer.Engine, len(slabs)),
		conns:  make(map[net.Conn]struct{}),
	}
	s.scratch.New = func() any { return new(shardScratch) }
	for i, sl := range slabs {
		if sl.Engine == nil {
			return nil, fmt.Errorf("dist: slab %d has no engine", i)
		}
		if _, dup := s.byBase[sl.Base]; dup {
			return nil, fmt.Errorf("dist: duplicate slab base %d", sl.Base)
		}
		eng := sl.Engine
		if i == 0 {
			s.info = ShardInfo{
				Version: ProtocolVersion,
				Rep:     eng.Requires(),
				Dim:     eng.Dim(),
				Name:    eng.Name(),
			}
		} else if eng.Dim() != s.info.Dim || eng.Requires() != s.info.Rep || eng.Name() != s.info.Name {
			return nil, fmt.Errorf("dist: slab %d (%s d=%d) disagrees with slab 0 (%s d=%d)",
				i, eng.Name(), eng.Dim(), s.info.Name, s.info.Dim)
		}
		s.byBase[sl.Base] = eng
		labels := make([]string, eng.Classes())
		for c := range labels {
			labels[c] = eng.Backend().Label(c)
		}
		s.info.Slabs = append(s.info.Slabs, SlabInfo{Base: sl.Base, Classes: eng.Classes(), Labels: labels})
	}
	return s, nil
}

// Info returns the handshake description of the served slabs.
func (s *ShardServer) Info() ShardInfo { return s.info }

// Serve accepts connections on ln until Close; it returns nil after a
// Close-initiated shutdown and the accept error otherwise.
func (s *ShardServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves; the bound listener is
// reachable via Addr once this returns or from another goroutine.
func (s *ShardServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address, nil before Serve.
func (s *ShardServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every live connection, and waits for
// in-flight query handlers to finish (their replies may fail to write —
// the peer is gone — but the engines are left quiescent). Idempotent.
func (s *ShardServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.handlers.Wait()
	return nil
}

// connWriter serializes frame writes on one connection.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

// write puts one complete frame on the wire.
//
//hdc:hotpath
func (w *connWriter) write(frame []byte) error {
	w.mu.Lock()
	_, err := w.conn.Write(frame)
	w.mu.Unlock()
	return err
}

// serveConn runs one connection's read loop. Hello frames are answered
// inline; every query is decoded into pooled scratch synchronously
// (the frame buffer is reused by the next read) and executed on its
// own goroutine, so a large batch never blocks the pipeline behind it.
func (s *ShardServer) serveConn(conn net.Conn) {
	defer s.handlers.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	w := &connWriter{conn: conn}
	br := bufio.NewReaderSize(conn, 64<<10)
	var frame []byte
	var hello []byte
	for {
		op, reqID, body, fr, err := readFrame(br, frame)
		frame = fr
		if err != nil {
			return // EOF, peer reset, or corrupt framing: drop the connection
		}
		switch op {
		case opHello:
			hello = appendInfo(hello, reqID, &s.info)
			if w.write(hello) != nil {
				return
			}
		case opQuery:
			sc := s.scratch.Get().(*shardScratch)
			if err := decodeQuery(body, &sc.q); err != nil {
				// A misframed query is indistinguishable from stream
				// corruption; answer and drop the connection.
				_ = w.write(appendError(sc.out, reqID, err.Error()))
				s.scratch.Put(sc)
				return
			}
			s.handlers.Add(1)
			go s.handleQuery(w, reqID, sc)
		default:
			// Unknown op: protocol mismatch; drop the connection.
			_ = w.write(appendError(frame[:0:0], reqID, errBadOp(op).Error()))
			return
		}
	}
}

// handleQuery executes one decoded query against its slab engine and
// writes the reply frame. Errors are answered in-band with the same
// request ID so the client's pipelining never desynchronizes.
//
//hdc:hotpath
func (s *ShardServer) handleQuery(w *connWriter, reqID uint32, sc *shardScratch) {
	defer s.handlers.Done()
	eng, ok := s.byBase[sc.q.base]
	if !ok {
		_ = w.write(appendError(sc.out, reqID, errUnknownSlab(sc.q.base).Error()))
		s.scratch.Put(sc)
		return
	}
	var batch infer.Batch
	if sc.q.rep == infer.RepPacked {
		batch.Packed = sc.q.pack
	} else {
		batch.Dense = tensor.FromSlice(sc.q.flat, sc.q.n, sc.q.dim)
	}
	results, err := eng.TryQueryInto(&batch, sc.q.k, &sc.rbuf)
	if err != nil {
		_ = w.write(appendError(sc.out, reqID, err.Error()))
		s.scratch.Put(sc)
		return
	}
	sc.out = appendResults(sc.out[:0], reqID, sc.q.base, results)
	_ = w.write(sc.out)
	s.scratch.Put(sc)
}

//hdc:coldpath error construction for rejected frames
func errBadOp(op byte) error {
	return fmt.Errorf("%w: unexpected op %d", ErrProtocol, op)
}

//hdc:coldpath error construction for rejected queries
func errUnknownSlab(base int) error {
	return fmt.Errorf("%w: no slab at base %d", ErrRemote, base)
}
