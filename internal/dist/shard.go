package dist

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/classmem"
	"repro/internal/hdc"
	"repro/internal/infer"
	"repro/internal/tensor"
)

// Slab is one class-range assignment of a shard server: an engine over
// a range view of the frozen class memory (infer.NewRangeBackend) plus
// the global index of its first class.
type Slab struct {
	// Base is the global class index of the engine's local class 0.
	Base int
	// Engine serves the slab; its backend typically wraps
	// infer.NewRangeBackend(global, Base, Base+width).
	Engine *infer.Engine
}

// GrowingSlab configures the one class range of a shard that accepts
// live enrollment: the tail range of the class space, served from an
// RCU-versioned store instead of a frozen engine. Queries name the
// epoch they must be served at, and the shard realizes exactly that
// class prefix; prepare/commit frames drive the store's two-phase
// flip. Every other range of the class space is frozen — enrollment
// only ever appends classes, and appended classes land at the end.
type GrowingSlab struct {
	// Base is the global class index of the range's first class.
	Base int
	// Width is the range's base-memory width: the store's frozen class
	// count minus Base (the range must be the tail of the class space).
	Width int
	// Backend names the served backend ("float", "binary", "imc").
	Backend string
	// Workers is the engine shard-worker count (0 = NumCPU).
	Workers int
	// Store owns the full class memory plus enrolled rows; typically
	// classmem.OpenVersioned so enrollments survive a crash.
	Store *classmem.Versioned
}

// ShardServer serves one or more class-range slabs over the compact
// binary protocol. Every accepted connection gets a reader goroutine;
// each query frame is decoded into pooled scratch and executed on its
// own goroutine against the slab's shared engine, so one pipelined
// connection keeps many batches in flight — the per-connection write
// lock is the only serialization point, held just long enough to put
// one fully encoded frame on the wire.
//
// A server with a GrowingSlab additionally serves that range
// epoch-consistently: a query tagged epoch e is answered from the base
// range plus exactly the first e enrollments (engines per epoch are
// cached over prefix views — published rows are immutable, so an old
// epoch's view stays byte-valid while newer epochs append), and a query
// tagged past the committed epoch is refused so the router fails over
// to a replica that has flipped.
type ShardServer struct {
	info   ShardInfo
	byBase map[int]*infer.Engine

	grow     *GrowingSlab
	gmu      sync.Mutex
	gEngines map[uint64]*infer.Engine // epoch → engine over the epoch's prefix view

	scratch sync.Pool // *shardScratch: per-query working set

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup
}

// shardScratch is one query's working set: decoded probe slab, engine
// result buffer, and the encoded reply frame.
type shardScratch struct {
	q    wireQuery
	rbuf infer.ResultBuf
	out  []byte
}

// NewShardServer wraps the slabs for serving. All engines must agree on
// probe dimensionality, representation, and backend name (they are
// views of one frozen class memory); slabs may not repeat a base. An
// optional GrowingSlab (at most one) makes the tail range enrollable.
func NewShardServer(slabs []Slab, growing ...*GrowingSlab) (*ShardServer, error) {
	s := &ShardServer{
		byBase: make(map[int]*infer.Engine, len(slabs)),
		conns:  make(map[net.Conn]struct{}),
	}
	if len(growing) > 1 {
		return nil, errors.New("dist: at most one growing slab")
	}
	if len(growing) == 1 && growing[0] != nil {
		s.grow = growing[0]
		s.gEngines = make(map[uint64]*infer.Engine)
	}
	if len(slabs) == 0 && s.grow == nil {
		return nil, errors.New("dist: shard server needs at least one slab")
	}
	s.scratch.New = func() any { return new(shardScratch) }
	for i, sl := range slabs {
		if sl.Engine == nil {
			return nil, fmt.Errorf("dist: slab %d has no engine", i)
		}
		if _, dup := s.byBase[sl.Base]; dup {
			return nil, fmt.Errorf("dist: duplicate slab base %d", sl.Base)
		}
		eng := sl.Engine
		if i == 0 {
			s.info = ShardInfo{
				Version: ProtocolVersion,
				Rep:     eng.Requires(),
				Dim:     eng.Dim(),
				Name:    eng.Name(),
			}
		} else if eng.Dim() != s.info.Dim || eng.Requires() != s.info.Rep || eng.Name() != s.info.Name {
			return nil, fmt.Errorf("dist: slab %d (%s d=%d) disagrees with slab 0 (%s d=%d)",
				i, eng.Name(), eng.Dim(), s.info.Name, s.info.Dim)
		}
		s.byBase[sl.Base] = eng
		labels := make([]string, eng.Classes())
		for c := range labels {
			labels[c] = eng.Backend().Label(c)
		}
		s.info.Slabs = append(s.info.Slabs, SlabInfo{Base: sl.Base, Classes: eng.Classes(), Labels: labels})
	}
	if g := s.grow; g != nil {
		if g.Store == nil {
			return nil, errors.New("dist: growing slab has no store")
		}
		if _, dup := s.byBase[g.Base]; dup {
			return nil, fmt.Errorf("dist: growing slab base %d collides with a frozen slab", g.Base)
		}
		if g.Base+g.Width != g.Store.Base() {
			return nil, fmt.Errorf("dist: growing slab [%d, %d) is not the tail of the %d-class base memory",
				g.Base, g.Base+g.Width, g.Store.Base())
		}
		// Build the committed-epoch engine now: it validates the backend
		// name and geometry, and fixes the shard identity when the growing
		// slab is the only one.
		eng, err := s.growEngine(g.Store.Epoch())
		if err != nil {
			return nil, err
		}
		if len(slabs) == 0 {
			s.info = ShardInfo{
				Version: ProtocolVersion,
				Rep:     eng.Requires(),
				Dim:     eng.Dim(),
				Name:    eng.Name(),
			}
		} else if eng.Dim() != s.info.Dim || eng.Requires() != s.info.Rep || eng.Name() != s.info.Name {
			return nil, fmt.Errorf("dist: growing slab (%s d=%d) disagrees with frozen slabs (%s d=%d)",
				eng.Name(), eng.Dim(), s.info.Name, s.info.Dim)
		}
	}
	return s, nil
}

// Info returns the handshake description of the served slabs, with the
// growing slab (if any) reported at its current committed epoch.
func (s *ShardServer) Info() ShardInfo {
	if s.grow == nil {
		return s.info
	}
	info := s.info
	snap := s.grow.Store.Snapshot()
	info.Epoch = snap.Epoch
	g := SlabInfo{
		Base:    s.grow.Base,
		Classes: s.grow.Width + int(snap.Epoch),
	}
	// Snapshot labels are global; the slab serves the tail from Base on.
	g.Labels = snap.Mem.Labels[s.grow.Base:]
	info.Slabs = append(info.Slabs[:len(info.Slabs):len(info.Slabs)], g)
	return info
}

// growEngine returns the engine serving the growing range at the given
// epoch, building and caching it on first use. The engine wraps a range
// view [Base, Base+Width+epoch) of a store backend whose snapshot is at
// least that wide — published rows are immutable, so the prefix view is
// the epoch's exact class memory no matter how far the store has grown
// since.
func (s *ShardServer) growEngine(epoch uint64) (*infer.Engine, error) {
	g := s.grow
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if eng, ok := s.gEngines[epoch]; ok {
		return eng, nil
	}
	be, err := g.Store.Backend(g.Backend)
	if err != nil {
		return nil, err
	}
	var opts []infer.Option
	if g.Workers > 0 {
		opts = append(opts, infer.WithWorkers(g.Workers)) //hdc:allow hotpathalloc once-per-epoch cache miss; engine construction below allocates regardless
	}
	eng, err := infer.NewChecked(infer.NewRangeBackend(be, g.Base, g.Base+g.Width+int(epoch)), opts...)
	if err != nil {
		return nil, err
	}
	s.gEngines[epoch] = eng
	// Bound the cache: queries target recent epochs (the router tags with
	// its published epoch, which only advances), so engines far behind the
	// committed epoch are dead weight.
	if committed := g.Store.Epoch(); len(s.gEngines) > 16 {
		for e := range s.gEngines {
			if e+16 < committed {
				delete(s.gEngines, e)
			}
		}
	}
	return eng, nil
}

// Serve accepts connections on ln until Close; it returns nil after a
// Close-initiated shutdown and the accept error otherwise.
func (s *ShardServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves; the bound listener is
// reachable via Addr once this returns or from another goroutine.
func (s *ShardServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address, nil before Serve.
func (s *ShardServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every live connection, and waits for
// in-flight query handlers to finish (their replies may fail to write —
// the peer is gone — but the engines are left quiescent). Idempotent.
func (s *ShardServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.handlers.Wait()
	return nil
}

// connWriter serializes frame writes on one connection.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

// write puts one complete frame on the wire.
//
//hdc:hotpath
func (w *connWriter) write(frame []byte) error {
	w.mu.Lock()
	_, err := w.conn.Write(frame)
	w.mu.Unlock()
	return err
}

// serveConn runs one connection's read loop. Hello frames are answered
// inline; every query is decoded into pooled scratch synchronously
// (the frame buffer is reused by the next read) and executed on its
// own goroutine, so a large batch never blocks the pipeline behind it.
func (s *ShardServer) serveConn(conn net.Conn) {
	defer s.handlers.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	w := &connWriter{conn: conn}
	br := bufio.NewReaderSize(conn, 64<<10)
	var frame []byte
	var hello []byte
	for {
		op, reqID, body, fr, err := readFrame(br, frame)
		frame = fr
		if err != nil {
			return // EOF, peer reset, or corrupt framing: drop the connection
		}
		switch op {
		case opHello:
			cur := s.Info()
			hello = appendInfo(hello[:0], reqID, &cur)
			if w.write(hello) != nil {
				return
			}
		case opPrepare:
			rec, err := decodePrepare(body)
			if err != nil {
				_ = w.write(appendError(nil, reqID, err.Error()))
				return
			}
			if w.write(s.handleFlip(reqID, rec, false)) != nil {
				return
			}
		case opCommit:
			epoch, err := decodeCommit(body)
			if err != nil {
				_ = w.write(appendError(nil, reqID, err.Error()))
				return
			}
			if w.write(s.handleFlip(reqID, &EnrollRecord{Epoch: epoch}, true)) != nil {
				return
			}
		case opQuery:
			sc := s.scratch.Get().(*shardScratch)
			if err := decodeQuery(body, &sc.q); err != nil {
				// A misframed query is indistinguishable from stream
				// corruption; answer and drop the connection.
				_ = w.write(appendError(sc.out, reqID, err.Error()))
				s.scratch.Put(sc)
				return
			}
			s.handlers.Add(1)
			go s.handleQuery(w, reqID, sc)
		default:
			// Unknown op: protocol mismatch; drop the connection.
			_ = w.write(appendError(frame[:0:0], reqID, errBadOp(op).Error()))
			return
		}
	}
}

// handleQuery executes one decoded query against its slab engine and
// writes the reply frame. Errors are answered in-band with the same
// request ID so the client's pipelining never desynchronizes.
//
//hdc:hotpath
func (s *ShardServer) handleQuery(w *connWriter, reqID uint32, sc *shardScratch) {
	defer s.handlers.Done()
	var eng *infer.Engine
	if s.grow != nil && sc.q.base == s.grow.Base {
		// Epoch-consistent serving: answer from exactly the class prefix
		// the query's epoch contains, and refuse epochs this replica has
		// not committed — the router fails over to one that has, so a
		// merged ranking never mixes epochs.
		if committed := s.grow.Store.Epoch(); sc.q.epoch > committed {
			_ = w.write(appendError(sc.out, reqID, errEpochAhead(sc.q.epoch, committed).Error()))
			s.scratch.Put(sc)
			return
		}
		var err error
		if eng, err = s.growEngine(sc.q.epoch); err != nil {
			_ = w.write(appendError(sc.out, reqID, err.Error()))
			s.scratch.Put(sc)
			return
		}
	} else if eng = s.byBase[sc.q.base]; eng == nil {
		_ = w.write(appendError(sc.out, reqID, errUnknownSlab(sc.q.base).Error()))
		s.scratch.Put(sc)
		return
	}
	var batch infer.Batch
	if sc.q.rep == infer.RepPacked {
		batch.Packed = sc.q.pack
	} else {
		batch.Dense = tensor.FromSlice(sc.q.flat, sc.q.n, sc.q.dim)
	}
	results, err := eng.TryQueryInto(&batch, sc.q.k, &sc.rbuf)
	if err != nil {
		_ = w.write(appendError(sc.out, reqID, err.Error()))
		s.scratch.Put(sc)
		return
	}
	sc.out = appendResults(sc.out[:0], reqID, sc.q.base, results)
	_ = w.write(sc.out)
	s.scratch.Put(sc)
}

// handleFlip answers one prepare or commit frame against the growing
// store. Gap refusals (the replica's committed epoch lags the flip) and
// commit-without-prepare are clean ok=0 acks carrying the committed
// epoch, so the router can replay what this replica missed; a content
// conflict — the same epoch bound to a different enrollment — is a real
// fault and answers as an error.
//
//hdc:coldpath enrollment flips are rare control traffic, off the query hot path
func (s *ShardServer) handleFlip(reqID uint32, rec *EnrollRecord, commit bool) []byte {
	if s.grow == nil {
		return appendError(nil, reqID, "shard has no growing slab; enrollment is not served here")
	}
	st := s.grow.Store
	op := opPrepareOK
	var err error
	if commit {
		op = opCommitOK
		err = st.Commit(rec.Epoch)
	} else if wpv := (st.Dim() + 63) / 64; len(rec.Words) != wpv {
		return appendError(nil, reqID, fmt.Sprintf("prepare carries %d words, dimension %d needs %d", len(rec.Words), st.Dim(), wpv))
	} else {
		err = st.Prepare(rec.Epoch, rec.Label, hdc.BinaryFromWords(st.Dim(), rec.Words))
	}
	switch {
	case err == nil:
		return appendFlipOK(nil, op, reqID, true, st.Epoch())
	case errors.Is(err, classmem.ErrEpochGap), errors.Is(err, classmem.ErrNotPrepared):
		return appendFlipOK(nil, op, reqID, false, st.Epoch())
	default:
		return appendError(nil, reqID, err.Error())
	}
}

//hdc:coldpath error construction for rejected frames
func errBadOp(op byte) error {
	return fmt.Errorf("%w: unexpected op %d", ErrProtocol, op)
}

//hdc:coldpath error construction for rejected queries
func errEpochAhead(want, committed uint64) error {
	return fmt.Errorf("%w: epoch %d not committed here (at %d)", ErrRemote, want, committed)
}

//hdc:coldpath error construction for rejected queries
func errUnknownSlab(base int) error {
	return fmt.Errorf("%w: no slab at base %d", ErrRemote, base)
}
