package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/attrenc"
	"repro/internal/dataset"
	"repro/internal/hdc"
)

// The ablations exercise the HDC design choices of §III-A in isolation
// (no CNN in the loop, so they run in seconds even at full fidelity):
//
//   - Dimensionality: how classification-by-prototype degrades as d
//     shrinks — the quasi-orthogonality argument quantified.
//   - Factored codebooks: whether binding group ⊙ value costs accuracy
//     relative to storing an independent random vector per combination
//     (it should not — binding preserves quasi-orthogonality).
//   - Noise robustness: prototype recall under bit flips, the robustness
//     HDC hardware papers [29] lean on.

// DimAblationRow is one dimensionality setting's result.
type DimAblationRow struct {
	Dim          int
	FactoredAcc  float64 // bound g⊙v codevectors (the paper's design)
	MaterializedAcc float64 // independent random vector per combination
	NoisyAcc     float64 // factored, probe with 15 % of bits flipped
	CodebookKB   float64
}

// AblationResult is the full dimensionality/factoring study.
type AblationResult struct {
	Rows    []DimAblationRow
	Classes int
	Queries int
}

// RunDimensionAblation measures nearest-prototype classification of
// attribute bundles while sweeping the hypervector dimension. For each
// class, a prototype bundles its dominant attribute codevector per group;
// queries are rebundled prototypes with instance-level attribute noise.
func RunDimensionAblation(dims []int, classes, queriesPerClass int, seed int64) AblationResult {
	schema := dataset.NewCUBSchema()
	res := AblationResult{Classes: classes, Queries: classes * queriesPerClass}
	// A fixed attribute profile per class, shared across dimensions so the
	// sweep isolates d.
	profileRng := rand.New(rand.NewSource(seed))
	profiles := make([][]int, classes) // chosen value slot per group
	for c := range profiles {
		profiles[c] = make([]int, schema.NumGroups())
		for g := range schema.Groups {
			profiles[c][g] = profileRng.Intn(len(schema.Groups[g].Values))
		}
	}

	for _, d := range dims {
		rng := rand.New(rand.NewSource(seed + int64(d)))
		enc := attrenc.NewHDCEncoder(rng, schema, d)
		// Materialized control: one independent random vector per combo.
		indep := make([]hdc.Bipolar, schema.Alpha())
		for a := range indep {
			indep[a] = hdc.NewRandomBipolar(rng, d)
		}

		bundleWith := func(vec func(a int) hdc.Bipolar, profile []int, deviateFrac float64, r *rand.Rand) *hdc.Binary {
			acc := hdc.NewAccumulator(d)
			for g := range schema.Groups {
				slot := profile[g]
				if deviateFrac > 0 && r.Float64() < deviateFrac {
					slot = r.Intn(len(schema.Groups[g].Values))
				}
				acc.Add(vec(schema.GroupAttrOffset[g] + slot))
			}
			return hdc.FromBipolar(acc.Threshold(r))
		}
		factoredVec := func(a int) hdc.Bipolar { return enc.AttrVector(a).ToBipolar() }
		indepVec := func(a int) hdc.Bipolar { return indep[a] }

		evalVariant := func(vec func(a int) hdc.Bipolar, flipFrac float64) float64 {
			r := rand.New(rand.NewSource(seed + int64(d) + 99))
			im := hdc.NewItemMemory(d)
			for c := 0; c < classes; c++ {
				im.Store(fmt.Sprint(c), bundleWith(vec, profiles[c], 0, r))
			}
			hits := 0
			for c := 0; c < classes; c++ {
				for q := 0; q < queriesPerClass; q++ {
					probe := bundleWith(vec, profiles[c], 0.25, r) // instance attribute noise
					for i := 0; i < int(flipFrac*float64(d)); i++ {
						p := r.Intn(d)
						probe.SetBit(p, 1-probe.Bit(p))
					}
					if _, idx, _ := im.Query(probe); idx == c {
						hits++
					}
				}
			}
			return float64(hits) / float64(classes*queriesPerClass)
		}

		res.Rows = append(res.Rows, DimAblationRow{
			Dim:             d,
			FactoredAcc:     evalVariant(factoredVec, 0),
			MaterializedAcc: evalVariant(indepVec, 0),
			NoisyAcc:        evalVariant(factoredVec, 0.15),
			CodebookKB: float64(hdc.NewMemoryFootprint(
				schema.NumGroups(), schema.NumValues(), schema.Alpha(), d).FactoredBytes) / 1024,
		})
	}
	return res
}

// DefaultAblationDims is the dimension sweep used by the bench harness.
func DefaultAblationDims() []int { return []int{64, 128, 256, 512, 1024, 1536} }

// Format renders the study.
func (r AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HDC design ablation — nearest-prototype accuracy over %d classes, %d queries\n",
		r.Classes, r.Queries)
	fmt.Fprintf(&b, "%6s %12s %14s %12s %12s\n", "d", "factored", "materialized", "15% flips", "codebook KB")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %11.1f%% %13.1f%% %11.1f%% %12.2f\n",
			row.Dim, row.FactoredAcc*100, row.MaterializedAcc*100,
			row.NoisyAcc*100, row.CodebookKB)
	}
	b.WriteString("(factored ≈ materialized at every d: binding costs nothing — the §III-A claim)\n")
	return b.String()
}

// CSV renders the study as comma-separated values.
func (r AblationResult) CSV() string {
	var b strings.Builder
	b.WriteString("d,factored_acc,materialized_acc,noisy_acc,codebook_kb\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%.4f,%.4f,%.4f,%.2f\n",
			row.Dim, row.FactoredAcc, row.MaterializedAcc, row.NoisyAcc, row.CodebookKB)
	}
	return b.String()
}

// Check verifies the design claims: factored codebooks track the
// materialized control within a few points at the paper's dimension, and
// accuracy is monotone-ish in d (higher d never collapses).
func (r AblationResult) Check() []string {
	var problems []string
	for _, row := range r.Rows {
		if row.Dim >= 1024 && row.MaterializedAcc-row.FactoredAcc > 0.05 {
			problems = append(problems, fmt.Sprintf(
				"at d=%d the factored codebooks lose %.1f points to materialized vectors",
				row.Dim, (row.MaterializedAcc-row.FactoredAcc)*100))
		}
	}
	if n := len(r.Rows); n >= 2 && r.Rows[n-1].FactoredAcc < r.Rows[0].FactoredAcc {
		problems = append(problems, "accuracy decreased with dimensionality")
	}
	return problems
}
