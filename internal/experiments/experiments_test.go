package experiments

import (
	"strings"
	"testing"
)

// microScale is a minimal workload so the experiment runners can be
// exercised quickly in CI; the committed numbers use FullScale.
func microScale() Scale {
	return Scale{
		Name: "quick", Classes: 10, PerClass: 5, ImgSize: 12, AttrNoise: 0.25,
		Seeds: []int64{1}, Width: 4, ProjDim: 96,
		PhaseIEpochs: 1, PhaseIIEpochs: 2, PhaseIIIEpochs: 2,
		PretrainClasses: 4, PretrainPerClass: 6,
	}
}

func TestScalesAreSane(t *testing.T) {
	for _, sc := range []Scale{QuickScale(), FullScale(), microScale()} {
		if sc.Classes < 4 || sc.PerClass < 2 || len(sc.Seeds) == 0 {
			t.Fatalf("scale %q too small to produce a ZS split: %+v", sc.Name, sc)
		}
		d := sc.Dataset(1)
		if d.NumInstances() != sc.Classes*sc.PerClass {
			t.Fatalf("scale %q dataset size wrong", sc.Name)
		}
	}
}

func TestRunMemoryMatchesPaperExactly(t *testing.T) {
	r := RunMemory()
	if problems := r.Check(); len(problems) > 0 {
		t.Fatalf("memory accounting diverges from paper: %v", problems)
	}
	if r.Footprint.Groups != 28 || r.Footprint.Values != 61 || r.Footprint.Combos != 312 {
		t.Fatalf("topology wrong: %+v", r.Footprint)
	}
	out := r.Format()
	if !strings.Contains(out, "71") && !strings.Contains(out, "17") {
		t.Fatalf("format output missing headline numbers:\n%s", out)
	}
}

func TestRunTable1ProducesAllGroups(t *testing.T) {
	r := RunTable1(microScale())
	if len(r.Rows) != 28 {
		t.Fatalf("Table I has %d rows, want 28", len(r.Rows))
	}
	for _, row := range r.Rows {
		for _, v := range []float64{row.OursWMAP, row.FinetagWMAP, row.OursTop1, row.A3MTop1} {
			if v < 0 || v > 1 {
				t.Fatalf("metric out of range in group %q: %+v", row.Group, row)
			}
		}
	}
	if r.AvgOursWMAP == 0 && r.AvgOursTop1 == 0 {
		t.Fatal("our model produced all-zero metrics")
	}
	out := r.Format()
	if !strings.Contains(out, "crown color") || !strings.Contains(out, "average") {
		t.Fatalf("Format missing expected rows:\n%s", out)
	}
	csv := r.CSV()
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 30 { // header + 28 + average
		t.Fatalf("CSV row count wrong:\n%s", csv)
	}
}

func TestRunTable2AllVariants(t *testing.T) {
	sc := microScale()
	r := RunTable2(sc)
	if len(r.Rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4", len(r.Rows))
	}
	// The projection-free rows must use the backbone's own output dim.
	if r.Rows[0].EmbedDim != sc.Backbone().OutDim() {
		t.Fatalf("no-FC row embed dim %d, want %d", r.Rows[0].EmbedDim, sc.Backbone().OutDim())
	}
	// The MLP column always costs more parameters than the HDC column.
	for _, row := range r.Rows {
		if row.MLPParams <= row.HDCParams {
			t.Fatalf("MLP (%d) not larger than HDC (%d) in row %s d=%d",
				row.MLPParams, row.HDCParams, row.Variant.Label, row.EmbedDim)
		}
	}
	// ResNet101 must be the largest backbone.
	if r.Rows[3].HDCParams <= r.Rows[0].HDCParams {
		t.Fatal("ResNet101 row not larger than ResNet50 row")
	}
	if !strings.Contains(r.Format(), "ResNet101") {
		t.Fatal("Format missing ResNet101 row")
	}
	if !strings.Contains(r.CSV(), "ResNet50+FC") {
		t.Fatal("CSV missing rows")
	}
}

func TestRunFig5SweepsAllPanels(t *testing.T) {
	r := RunFig5(microScale())
	if len(r.Sweeps) != 5 {
		t.Fatalf("Fig 5 has %d panels, want 5", len(r.Sweeps))
	}
	names := map[string]bool{}
	for _, s := range r.Sweeps {
		names[s.Param] = true
		if len(s.Values) != len(s.Top1) || len(s.Values) < 3 {
			t.Fatalf("panel %q malformed", s.Param)
		}
		for _, v := range s.Top1 {
			if v < 0 || v > 1 {
				t.Fatalf("panel %q accuracy out of range: %v", s.Param, v)
			}
		}
	}
	for _, want := range []string{"batch size", "epochs", "learning rate", "temp scale", "weight decay"} {
		if !names[want] {
			t.Fatalf("missing panel %q", want)
		}
	}
	if !strings.Contains(r.CSV(), "learning rate") {
		t.Fatal("CSV missing panel")
	}
}

func TestGenerativeVariantsOrderedByCapacity(t *testing.T) {
	vs := generativeVariants(false)
	if len(vs) != 7 {
		t.Fatalf("want 7 variants, got %d", len(vs))
	}
	for i := 1; i < len(vs); i++ {
		if vs[i].HiddenGen <= vs[i-1].HiddenGen {
			t.Fatal("generative variants not ordered by capacity")
		}
	}
	q := generativeVariants(true)
	if len(q) >= len(vs) {
		t.Fatal("quick mode should trim the variant list")
	}
}

func TestRunFig4PointsAndFront(t *testing.T) {
	r := RunFig4(microScale())
	if len(r.Points) < 6 { // 2 ours + ESZSL + ≥3 generative
		t.Fatalf("Fig 4 has only %d points", len(r.Points))
	}
	var ours, generative int
	for _, p := range r.Points {
		if p.ParamCount <= 0 {
			t.Fatalf("point %q has no params", p.Name)
		}
		switch p.Kind {
		case "ours":
			ours++
		case "generative":
			generative++
		}
	}
	if ours != 2 || generative < 3 {
		t.Fatalf("point mix wrong: ours=%d generative=%d", ours, generative)
	}
	if len(r.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	if !strings.Contains(r.Format(), "HDC-ZSC (ours)") {
		t.Fatal("Format missing our model")
	}
	if !strings.Contains(r.CSV(), "on_front") {
		t.Fatal("CSV missing header")
	}
}

func TestDimensionAblationShape(t *testing.T) {
	r := RunDimensionAblation([]int{64, 512, 1024}, 10, 4, 1)
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(r.Rows))
	}
	// High dimensionality must classify essentially perfectly; tiny d
	// must be visibly worse or equal.
	last := r.Rows[2]
	if last.FactoredAcc < 0.9 {
		t.Fatalf("d=1024 factored accuracy %.2f too low", last.FactoredAcc)
	}
	if problems := r.Check(); len(problems) > 0 {
		t.Fatalf("ablation check failed: %v", problems)
	}
	if !strings.Contains(r.Format(), "factored") || !strings.Contains(r.CSV(), "codebook_kb") {
		t.Fatal("ablation emitters malformed")
	}
	// Codebook storage grows linearly with d.
	if r.Rows[0].CodebookKB >= r.Rows[2].CodebookKB {
		t.Fatal("codebook size not increasing with d")
	}
}
