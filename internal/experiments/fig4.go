package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Fig4Point is one model on the accuracy-vs-parameters plane.
type Fig4Point struct {
	Name       string
	Kind       string // "ours", "non-generative", "generative"
	Top1       float64
	ParamCount int
}

// Fig4Result is the Pareto comparison of Fig. 4.
type Fig4Result struct {
	Points []Fig4Point
	Front  []string // names on the Pareto front
}

// generativeVariants lists the six GAN-based reference models of Fig. 4
// with generator/classifier capacity growing so the parameter-count
// ratios against HDC-ZSC follow the published 1.75×–2.58× spread.
func generativeVariants(quick bool) []baselines.FeatGenConfig {
	base := baselines.DefaultFeatGenConfig()
	if quick {
		base.GenEpochs, base.ClsEpochs, base.PerClass = 15, 15, 10
	}
	mk := func(name string, hg, hc int) baselines.FeatGenConfig {
		c := base
		c.Name, c.HiddenGen, c.HiddenCls = name, hg, hc
		return c
	}
	variants := []baselines.FeatGenConfig{
		mk("TCN[16]", 192, 96), // listed with the generative cluster in Fig. 4's legend ordering
		mk("f-CLSWGAN[28]", 256, 128),
		mk("cycle-CLSWGAN[27]", 320, 160),
		mk("LisGAN[26]", 384, 192),
		mk("f-VAEGAN-D2[25]", 448, 224),
		mk("ZSL_TF-VAEGAN[10]", 512, 256),
		mk("Composer[9]", 640, 320),
	}
	if quick {
		variants = variants[1:5]
	}
	return variants
}

// RunFig4 reproduces Fig. 4: our HDC-ZSC and Trainable-MLP models, the
// ESZSL non-generative baseline, and the generative feature-synthesis
// variants, all evaluated zero-shot on the same split, plotted as
// (parameter count, top-1 accuracy) points with the Pareto front
// extracted.
func RunFig4(sc Scale) Fig4Result {
	seed := sc.Seeds[0]
	d := sc.Dataset(seed)
	split := sc.ZSSplit(d, seed)
	pre := sc.Pretrain(seed)
	var res Fig4Result

	// Ours (HDC) — full three-phase pipeline.
	cfgH := sc.Pipeline(seed)
	modelH, resH := cfgH.Run(d, split, pre)
	res.Points = append(res.Points, Fig4Point{
		Name: "HDC-ZSC (ours)", Kind: "ours",
		Top1: resH.Eval.Top1, ParamCount: resH.ParamCount,
	})

	// Ours (Trainable-MLP attribute encoder).
	cfgM := sc.Pipeline(seed)
	cfgM.Encoder = "MLP"
	cfgM.MLPHidden = sc.ProjDim / 2
	_, resM := cfgM.Run(d, split, pre)
	res.Points = append(res.Points, Fig4Point{
		Name: "Trainable-MLP (ours)", Kind: "ours",
		Top1: resM.Eval.Top1, ParamCount: resM.ParamCount,
	})

	// ESZSL on phase-I features (as in its original formulation, which
	// consumes generic pretrained features from a heavier encoder — see
	// Scale.BaselineBackbone). Its parameter count includes that encoder
	// plus the full bilinear map over the raw feature width, which is what
	// makes it large (the paper reports 1.72× ours).
	imgE := core.NewImageEncoder(rand.New(rand.NewSource(seed)), sc.BaselineBackbone(), 0)
	preCfg := sc.Pipeline(seed).PhaseI
	core.PretrainClassification(imgE, pre, preCfg)
	if ez, err := baselines.RunESZSL(imgE, d, split, 1, 1); err == nil {
		res.Points = append(res.Points, Fig4Point{
			Name: "ESZSL[4]", Kind: "non-generative",
			Top1: ez.Top1, ParamCount: ez.ParamCount,
		})
	}

	// Generative variants share the phase-I backbone features.
	for _, gv := range generativeVariants(sc.Name == "quick") {
		gv.Seed = seed
		out := baselines.RunFeatGen(imgE, d, split, gv)
		kind := "generative"
		if strings.HasPrefix(gv.Name, "TCN") {
			kind = "non-generative"
		}
		res.Points = append(res.Points, Fig4Point{
			Name: out.Name, Kind: kind, Top1: out.Top1, ParamCount: out.ParamCount,
		})
	}
	_ = modelH

	// Pareto front.
	pts := make([]metrics.Point, len(res.Points))
	for i, p := range res.Points {
		pts[i] = metrics.Point{Name: p.Name, Params: p.ParamCount, Accuracy: p.Top1}
	}
	for _, p := range metrics.ParetoFront(pts) {
		res.Front = append(res.Front, p.Name)
	}
	return res
}

// Format renders the scatter as a sorted table with front markers.
func (r Fig4Result) Format() string {
	onFront := map[string]bool{}
	for _, n := range r.Front {
		onFront[n] = true
	}
	pts := append([]Fig4Point(nil), r.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].ParamCount < pts[j].ParamCount })
	var b strings.Builder
	b.WriteString("Fig. 4 — Zero-shot accuracy vs parameter count\n")
	fmt.Fprintf(&b, "%-24s %-16s %10s %8s %s\n", "Model", "Kind", "Params", "Top-1%", "Pareto")
	for _, p := range pts {
		mark := ""
		if onFront[p.Name] {
			mark = "◆ front"
		}
		fmt.Fprintf(&b, "%-24s %-16s %10d %8.1f %s\n",
			p.Name, p.Kind, p.ParamCount, p.Top1*100, mark)
	}
	return b.String()
}

// CSV renders the points as comma-separated values.
func (r Fig4Result) CSV() string {
	onFront := map[string]bool{}
	for _, n := range r.Front {
		onFront[n] = true
	}
	var b strings.Builder
	b.WriteString("model,kind,params,top1,on_front\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%s,%s,%d,%.4f,%v\n", p.Name, p.Kind, p.ParamCount, p.Top1, onFront[p.Name])
	}
	return b.String()
}

// Check verifies the paper's headline shape: both of our models sit on
// the Pareto front, and every generative variant costs more parameters
// than HDC-ZSC.
func (r Fig4Result) Check() []string {
	var problems []string
	onFront := map[string]bool{}
	for _, n := range r.Front {
		onFront[n] = true
	}
	var oursParams int
	for _, p := range r.Points {
		if p.Name == "HDC-ZSC (ours)" {
			oursParams = p.ParamCount
		}
	}
	for _, p := range r.Points {
		if p.Kind == "ours" && !onFront[p.Name] {
			problems = append(problems, fmt.Sprintf("%s fell off the Pareto front", p.Name))
		}
		if p.Kind == "generative" && p.ParamCount <= oursParams {
			problems = append(problems,
				fmt.Sprintf("%s is not larger than HDC-ZSC (%d ≤ %d)", p.Name, p.ParamCount, oursParams))
		}
	}
	return problems
}
