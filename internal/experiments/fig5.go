package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
)

// Fig5Sweep is one hyperparameter panel of Fig. 5: accuracy on the
// validation split as one knob varies with the rest held at defaults.
type Fig5Sweep struct {
	Param  string
	Values []float64
	Top1   []float64
}

// Fig5Result is the full hyperparameter exploration.
type Fig5Result struct {
	Sweeps []Fig5Sweep
}

// RunFig5 reproduces Fig. 5: phases I+II run once, then phase III is
// retrained from that common starting point for every setting of each
// hyperparameter (batch size, epochs, learning rate, temperature scale,
// weight decay), evaluating on the validation split of disjoint classes.
// This mirrors the paper's protocol, where the sweeps tune the ZSC
// training stage on a 50-class validation split.
func RunFig5(sc Scale) Fig5Result {
	seed := sc.Seeds[0]
	d := sc.Dataset(seed)
	rng := rand.New(rand.NewSource(seed + 777))
	_, valSplit := d.ZSValSplit(rng, 0.6, 0.2)
	pre := sc.Pretrain(seed)

	// Shared phases I+II.
	base := sc.Pipeline(seed)
	model, hdcEnc := base.Build(d.Schema)
	core.PretrainClassification(model.Image, pre, base.PhaseI)
	core.TrainAttributeExtraction(model.Image, model.Kernel, hdcEnc.Dictionary(), d, valSplit, base.PhaseII)

	// Snapshot the matured weights so every sweep point starts equal.
	snapshot := snapshotParams(model)

	run := func(mutate func(*core.TrainConfig, float64), v float64) float64 {
		restoreParams(model, snapshot)
		cfg := base.PhaseIII
		mutate(&cfg, v)
		core.TrainZSC(model, d, valSplit, cfg)
		return core.EvalZSC(model, d, valSplit).Top1
	}
	sweep := func(name string, values []float64, mutate func(*core.TrainConfig, float64)) Fig5Sweep {
		s := Fig5Sweep{Param: name, Values: values}
		for _, v := range values {
			s.Top1 = append(s.Top1, run(mutate, v))
		}
		return s
	}

	var res Fig5Result
	res.Sweeps = append(res.Sweeps,
		sweep("batch size", []float64{4, 8, 16, 32}, func(c *core.TrainConfig, v float64) {
			c.Batch = int(v)
		}),
		sweep("epochs", []float64{3, 10, 30}, func(c *core.TrainConfig, v float64) {
			c.Epochs = int(v)
		}),
		sweep("learning rate", []float64{1e-6, 1e-3, 0.01}, func(c *core.TrainConfig, v float64) {
			c.LR = float32(v)
		}),
		sweep("temp scale", []float64{7e-4, 0.03, 0.7}, func(c *core.TrainConfig, v float64) {
			c.TempScale = float32(v)
			model.Kernel.K.Value.Data[0] = float32(v)
			model.Kernel.K.BumpVersion()
		}),
		sweep("weight decay", []float64{0, 1e-4, 0.01}, func(c *core.TrainConfig, v float64) {
			c.WeightDecay = float32(v)
		}),
	)
	return res
}

// snapshotParams deep-copies every parameter value of the model.
func snapshotParams(m *core.Model) [][]float32 {
	ps := m.Params()
	out := make([][]float32, len(ps))
	for i, p := range ps {
		out[i] = append([]float32(nil), p.Value.Data...)
	}
	return out
}

// restoreParams writes a snapshot back into the model.
func restoreParams(m *core.Model, snap [][]float32) {
	ps := m.Params()
	for i, p := range ps {
		copy(p.Value.Data, snap[i])
		p.BumpVersion()
		p.ZeroGrad()
	}
}

// Format renders the sweeps as small tables, one per panel.
func (r Fig5Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — Hyperparameter tuning on the validation split (top-1 %)\n")
	for _, s := range r.Sweeps {
		fmt.Fprintf(&b, "\n  %s:\n", s.Param)
		for i, v := range s.Values {
			fmt.Fprintf(&b, "    %-10.4g → %5.1f\n", v, s.Top1[i]*100)
		}
	}
	return b.String()
}

// CSV renders the sweeps as comma-separated values.
func (r Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("param,value,top1\n")
	for _, s := range r.Sweeps {
		for i, v := range s.Values {
			fmt.Fprintf(&b, "%s,%g,%.4f\n", s.Param, v, s.Top1[i])
		}
	}
	return b.String()
}

// Check verifies the qualitative shape the paper reports: extreme
// learning rates and temperatures underperform the moderate settings.
func (r Fig5Result) Check() []string {
	var problems []string
	for _, s := range r.Sweeps {
		switch s.Param {
		case "learning rate", "temp scale":
			best := 0
			for i := range s.Top1 {
				if s.Top1[i] > s.Top1[best] {
					best = i
				}
			}
			if best == 0 && s.Param == "learning rate" {
				problems = append(problems,
					"learning-rate sweep peaked at the degenerate 1e-6 setting")
			}
		}
	}
	return problems
}
