package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/hdc"
)

// MemoryResult reproduces the §III-A storage accounting, the one
// experiment whose numbers must match the paper *exactly* because they
// depend only on the attribute topology (G=28, V=61, α=312) and d=1536.
type MemoryResult struct {
	Footprint      hdc.MemoryFootprint
	ReductionPct   float64
	CodebookKB     float64
	MaterializedKB float64
}

// RunMemory computes the accounting at the paper's dimensionality.
func RunMemory() MemoryResult {
	schema := dataset.NewCUBSchema()
	f := hdc.NewMemoryFootprint(schema.NumGroups(), schema.NumValues(), schema.Alpha(), 1536)
	return MemoryResult{
		Footprint:      f,
		ReductionPct:   f.Reduction() * 100,
		CodebookKB:     float64(f.FactoredBytes) / 1024,
		MaterializedKB: float64(f.MaterializedBytes) / 1024,
	}
}

// Format renders the accounting.
func (r MemoryResult) Format() string {
	var b strings.Builder
	b.WriteString("§III-A — HDC codebook memory accounting (d=1536, 1 bit/component)\n")
	fmt.Fprintf(&b, "  attribute combinations α  : %d\n", r.Footprint.Combos)
	fmt.Fprintf(&b, "  groups G + values V       : %d + %d = %d atomic vectors\n",
		r.Footprint.Groups, r.Footprint.Values, r.Footprint.Groups+r.Footprint.Values)
	fmt.Fprintf(&b, "  materialized dictionary   : %.1f KB\n", r.MaterializedKB)
	fmt.Fprintf(&b, "  factored codebooks        : %.1f KB   (paper: ≈17 KB)\n", r.CodebookKB)
	fmt.Fprintf(&b, "  memory reduction          : %.1f %%    (paper: 71 %%)\n", r.ReductionPct)
	return b.String()
}

// Check verifies exact agreement with the paper's claims.
func (r MemoryResult) Check() []string {
	var problems []string
	if r.ReductionPct < 70 || r.ReductionPct > 73 {
		problems = append(problems, fmt.Sprintf("reduction %.1f%% off the paper's 71%%", r.ReductionPct))
	}
	if r.CodebookKB < 16 || r.CodebookKB > 18 {
		problems = append(problems, fmt.Sprintf("codebooks %.1f KB off the paper's ≈17 KB", r.CodebookKB))
	}
	return problems
}
