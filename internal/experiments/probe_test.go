package experiments

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestProbeD768 is a manual calibration probe, enabled via PROBE=1.
func TestProbeD768(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("set PROBE=1 to run the calibration probe")
	}
	sc := FullScale()
	sc.ProjDim = 768
	seed := sc.Seeds[0]
	d := sc.Dataset(seed)
	rng := rand.New(rand.NewSource(seed + 333))
	split := d.NoZSSplit(rng, sc.Classes/2, 0.7)
	pre := sc.Pretrain(seed)
	cfg := sc.Pipeline(seed)
	model, hdcEnc := cfg.Build(d.Schema)
	core.PretrainClassification(model.Image, pre, cfg.PhaseI)
	core.TrainAttributeExtraction(model.Image, model.Kernel, hdcEnc.Dictionary(), d, split, cfg.PhaseII)
	scores, targets := core.AttributeScores(model.Image, model.Kernel, hdcEnc.Dictionary(), d, split.Test)
	var top1Avg, wmapAvg float64
	for g := range d.Schema.Groups {
		off := d.Schema.GroupAttrOffset[g]
		size := len(d.Schema.Groups[g].Values)
		top1Avg += metrics.GroupTop1Accuracy(scores, targets, off, size)
		wmapAvg += groupWMAP(scores, targets, off, size)
	}
	top1Avg /= float64(d.Schema.NumGroups())
	wmapAvg /= float64(d.Schema.NumGroups())
	t.Logf("d=768: avgGroupWMAP=%.4f avgGroupTop1=%.4f (refs: finetag WMAP .438, a3m top1 .442)",
		wmapAvg, top1Avg)
}
