// Package experiments contains one runner per table and figure of the
// paper's evaluation (§IV): Table I (attribute extraction vs Finetag-like
// and A3M-like), Table II (image/attribute encoder ablation), Fig. 4
// (accuracy vs parameter-count Pareto plot), Fig. 5 (hyperparameter
// sweeps on the validation split), and the §III-A memory accounting.
// Each runner returns a structured result with Format() (aligned text
// matching the paper's layout) and CSV() emitters.
package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
)

// Scale fixes the laptop-scale workload for an experiment run. Quick is
// sized for the bench harness (every bench finishes in tens of seconds);
// Full is the configuration behind the committed EXPERIMENTS.md numbers.
type Scale struct {
	Name           string
	Classes        int
	PerClass       int
	ImgSize        int
	AttrNoise      float64
	Seeds          []int64
	Width          int // backbone base width
	ProjDim        int // preferred FC projection d
	PhaseIEpochs   int
	PhaseIIEpochs  int
	PhaseIIIEpochs int
	// PretrainClasses/PerClass size the SynthImageNet phase-I dataset.
	PretrainClasses, PretrainPerClass int
}

// QuickScale returns the bench-harness workload.
func QuickScale() Scale {
	return Scale{
		Name: "quick", Classes: 16, PerClass: 8, ImgSize: 16, AttrNoise: 0.25,
		Seeds: []int64{1}, Width: 4, ProjDim: 192,
		PhaseIEpochs: 2, PhaseIIEpochs: 8, PhaseIIIEpochs: 8,
		PretrainClasses: 6, PretrainPerClass: 8,
	}
}

// FullScale returns the committed-results workload (see EXPERIMENTS.md).
func FullScale() Scale {
	return Scale{
		Name: "full", Classes: 30, PerClass: 14, ImgSize: 24, AttrNoise: 0.25,
		Seeds: []int64{1, 2}, Width: 6, ProjDim: 768,
		PhaseIEpochs: 3, PhaseIIEpochs: 20, PhaseIIIEpochs: 12,
		PretrainClasses: 10, PretrainPerClass: 12,
	}
}

// Dataset builds the SynthCUB dataset for this scale and seed.
func (sc Scale) Dataset(seed int64) *dataset.SynthCUB {
	cfg := dataset.DefaultConfig()
	cfg.NumClasses = sc.Classes
	cfg.ImagesPerClass = sc.PerClass
	cfg.Height, cfg.Width = sc.ImgSize, sc.ImgSize
	cfg.AttrNoise = sc.AttrNoise
	cfg.PixelNoise = 0.03
	cfg.Seed = seed
	return dataset.Generate(cfg)
}

// Pretrain builds the SynthImageNet phase-I dataset.
func (sc Scale) Pretrain(seed int64) *dataset.SynthImageNet {
	return dataset.GenerateImageNet(sc.PretrainClasses, sc.PretrainPerClass,
		sc.ImgSize, sc.ImgSize, seed+5000)
}

// Backbone returns the preferred (ResNet50-topology) backbone config.
func (sc Scale) Backbone() nn.ResNetConfig {
	return nn.MicroResNet50Config(sc.Width).WithFlatten(sc.ImgSize, sc.ImgSize)
}

// Backbone101 returns the deeper ResNet101-topology variant of Table II.
func (sc Scale) Backbone101() nn.ResNetConfig {
	return nn.MicroResNet101Config(sc.Width).WithFlatten(sc.ImgSize, sc.ImgSize)
}

// BaselineBackbone returns the heavier image encoder the published
// baselines of Fig. 4 carry. The reference models (ESZSL, TCN, and the
// generative family) are built on larger encoders than the paper's
// ResNet50 — that is precisely why their Fig. 4 parameter counts exceed
// HDC-ZSC's — so the reproduction gives them the ResNet101-topology
// backbone at increased width.
func (sc Scale) BaselineBackbone() nn.ResNetConfig {
	return nn.MicroResNet101Config(sc.Width + 2).WithFlatten(sc.ImgSize, sc.ImgSize)
}

// Pipeline returns the preferred HDC-ZSC pipeline config for this scale.
func (sc Scale) Pipeline(seed int64) core.PipelineConfig {
	cfg := core.DefaultPipelineConfig()
	cfg.Backbone = sc.Backbone()
	cfg.ProjDim = sc.ProjDim
	cfg.Seed = seed
	cfg.PhaseI.Epochs = sc.PhaseIEpochs
	cfg.PhaseI.Seed = seed
	cfg.PhaseII.Epochs = sc.PhaseIIEpochs
	cfg.PhaseII.LR = 2e-3
	cfg.PhaseII.WeightDecay = 5e-4
	cfg.PhaseII.Seed = seed
	cfg.PhaseIII.Epochs = sc.PhaseIIIEpochs
	cfg.PhaseIII.Seed = seed
	return cfg
}

// ZSSplit returns the scale's 75/25 disjoint-class split (the paper's
// 150/50 protocol proportions).
func (sc Scale) ZSSplit(d *dataset.SynthCUB, seed int64) dataset.Split {
	return d.ZSSplit(rand.New(rand.NewSource(seed+777)), 0.75)
}
