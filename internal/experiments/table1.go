package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Table1Row is one attribute group's comparison, mirroring a row of the
// paper's Table I: our WMAP vs the Finetag-like baseline's, and our
// top-1 % accuracy vs the A3M-like baseline's.
type Table1Row struct {
	Group       string
	FinetagWMAP float64
	OursWMAP    float64
	A3MTop1     float64
	OursTop1    float64
}

// Table1Result is the full attribute-extraction comparison (Table I).
type Table1Result struct {
	Rows []Table1Row
	// Averages across groups (the paper's final row).
	AvgFinetagWMAP, AvgOursWMAP, AvgA3MTop1, AvgOursTop1 float64
}

// RunTable1 reproduces Table I on the noZS split: HDC-ZSC trains phases
// I+II; the Finetag-like baseline trains the same backbone with a plain
// sigmoid head and unweighted BCE; the A3M-like baseline trains per-group
// softmax heads over pooled features. Per-group WMAP and top-1 % accuracy
// are computed on the held-out instances.
func RunTable1(sc Scale) Table1Result {
	seed := sc.Seeds[0]
	d := sc.Dataset(seed)
	rng := rand.New(rand.NewSource(seed + 333))
	// The paper uses the noZS split (samples of half the classes in both
	// train and test) for this task.
	split := d.NoZSSplit(rng, sc.Classes/2, 0.7)
	pre := sc.Pretrain(seed)

	// Ours: phases I + II.
	cfg := sc.Pipeline(seed)
	model, hdcEnc := cfg.Build(d.Schema)
	core.PretrainClassification(model.Image, pre, cfg.PhaseI)
	core.TrainAttributeExtraction(model.Image, model.Kernel, hdcEnc.Dictionary(), d, split, cfg.PhaseII)
	ourScores, ourTargets := core.AttributeScores(model.Image, model.Kernel, hdcEnc.Dictionary(), d, split.Test)

	// Finetag-like: plain multi-label head, unweighted BCE.
	ft := baselines.NewFinetag(rand.New(rand.NewSource(seed)), sc.Backbone(), d.Schema.Alpha())
	ftCfg := cfg.PhaseII
	ftCfg.Seed = seed
	ft.Train(d, split, ftCfg)
	ftScores, ftTargets := ft.Scores(d, split.Test)

	// A3M-like: per-group softmax heads on pooled features.
	a3 := baselines.NewA3M(rand.New(rand.NewSource(seed)), sc.Backbone(), d.Schema)
	a3.Train(d, split, ftCfg)
	a3Scores, a3Targets := a3.Scores(d, split.Test)

	var res Table1Result
	for g, grp := range d.Schema.Groups {
		off := d.Schema.GroupAttrOffset[g]
		size := len(grp.Values)
		row := Table1Row{
			Group:       grp.Name,
			OursWMAP:    groupWMAP(ourScores, ourTargets, off, size),
			FinetagWMAP: groupWMAP(ftScores, ftTargets, off, size),
			OursTop1:    metrics.GroupTop1Accuracy(ourScores, ourTargets, off, size),
			A3MTop1:     metrics.GroupTop1Accuracy(a3Scores, a3Targets, off, size),
		}
		res.Rows = append(res.Rows, row)
		res.AvgFinetagWMAP += row.FinetagWMAP
		res.AvgOursWMAP += row.OursWMAP
		res.AvgA3MTop1 += row.A3MTop1
		res.AvgOursTop1 += row.OursTop1
	}
	n := float64(len(res.Rows))
	res.AvgFinetagWMAP /= n
	res.AvgOursWMAP /= n
	res.AvgA3MTop1 /= n
	res.AvgOursTop1 /= n
	return res
}

// groupWMAP computes WMAP restricted to one group's attribute columns.
func groupWMAP(scores, targets *tensor.Tensor, off, size int) float64 {
	n := scores.Dim(0)
	s := tensor.New(n, size)
	tg := tensor.New(n, size)
	for i := 0; i < n; i++ {
		copy(s.Row(i), scores.Row(i)[off:off+size])
		copy(tg.Row(i), targets.Row(i)[off:off+size])
	}
	return metrics.WMAP(s, tg)
}

// Format renders the table in the paper's layout.
func (r Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Attribute extraction (noZS split)\n")
	fmt.Fprintf(&b, "%-18s %9s %9s %12s %12s\n",
		"Attribute Group", "Finetag", "Ours", "A3M", "Ours")
	fmt.Fprintf(&b, "%-18s %9s %9s %12s %12s\n",
		"", "(WMAP)", "(WMAP)", "(top-1% acc)", "(top-1% acc)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %9.1f %9.1f %12.1f %12.1f\n",
			row.Group, row.FinetagWMAP*100, row.OursWMAP*100,
			row.A3MTop1*100, row.OursTop1*100)
	}
	fmt.Fprintf(&b, "%-18s %9.2f %9.2f %12.2f %12.2f\n",
		"average", r.AvgFinetagWMAP*100, r.AvgOursWMAP*100,
		r.AvgA3MTop1*100, r.AvgOursTop1*100)
	return b.String()
}

// CSV renders the table as comma-separated values.
func (r Table1Result) CSV() string {
	var b strings.Builder
	b.WriteString("group,finetag_wmap,ours_wmap,a3m_top1,ours_top1\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f\n",
			row.Group, row.FinetagWMAP, row.OursWMAP, row.A3MTop1, row.OursTop1)
	}
	fmt.Fprintf(&b, "average,%.4f,%.4f,%.4f,%.4f\n",
		r.AvgFinetagWMAP, r.AvgOursWMAP, r.AvgA3MTop1, r.AvgOursTop1)
	return b.String()
}

// Check reports whether the result reproduces the paper's shape: our
// method leads both averages (the paper reports +4.14 WMAP and +36.71
// top-1 % margins).
func (r Table1Result) Check() []string {
	var problems []string
	if r.AvgOursWMAP <= r.AvgFinetagWMAP {
		problems = append(problems,
			fmt.Sprintf("ours WMAP %.3f does not beat Finetag-like %.3f", r.AvgOursWMAP, r.AvgFinetagWMAP))
	}
	if r.AvgOursTop1 <= r.AvgA3MTop1 {
		problems = append(problems,
			fmt.Sprintf("ours top-1 %.3f does not beat A3M-like %.3f", r.AvgOursTop1, r.AvgA3MTop1))
	}
	return problems
}

// Ensure dataset import is used when only helper signatures reference it.
var _ = dataset.ClassIndexMap
