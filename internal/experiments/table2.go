package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// Table2Variant identifies one image-encoder row of Table II.
type Table2Variant struct {
	Label    string
	Backbone nn.ResNetConfig
	ProjDim  int // 0 = no FC projection (stage II skipped)
	Pretrain string
}

// Table2Row is one ablation row: the variant evaluated with both
// attribute encoders, µ±σ over the scale's seeds.
type Table2Row struct {
	Variant              Table2Variant
	EmbedDim             int
	HDCTop1, HDCStd      float64
	MLPTop1, MLPStd      float64
	HDCParams, MLPParams int
}

// Table2Result is the encoder ablation (Table II).
type Table2Result struct {
	Rows []Table2Row
}

// Variants returns the four image-encoder rows of Table II translated to
// this scale: ResNet50 without projection, ResNet50+FC at the preferred
// and a larger d, and the deeper ResNet101 without projection.
func (sc Scale) Variants() []Table2Variant {
	return []Table2Variant{
		{Label: "ResNet50", Backbone: sc.Backbone(), ProjDim: 0, Pretrain: "I,III"},
		{Label: "ResNet50+FC", Backbone: sc.Backbone(), ProjDim: sc.ProjDim, Pretrain: "I,II,III"},
		{Label: "ResNet50+FC", Backbone: sc.Backbone(), ProjDim: sc.ProjDim * 4 / 3, Pretrain: "I,II,III"},
		{Label: "ResNet101", Backbone: sc.Backbone101(), ProjDim: 0, Pretrain: "I,III"},
	}
}

// RunTable2 reproduces Table II: every image-encoder variant × both
// attribute encoders on the ZS split, common hyperparameters, averaged
// over the scale's seeds.
func RunTable2(sc Scale) Table2Result {
	var res Table2Result
	for _, v := range sc.Variants() {
		row := Table2Row{Variant: v}
		for _, encName := range []string{"HDC", "MLP"} {
			var accs []float64
			var params int
			for _, seed := range sc.Seeds {
				d := sc.Dataset(seed)
				split := sc.ZSSplit(d, seed)
				cfg := sc.Pipeline(seed)
				cfg.Backbone = v.Backbone
				cfg.ProjDim = v.ProjDim
				cfg.Encoder = encName
				cfg.MLPHidden = sc.ProjDim / 2
				// Rows without a projection train the backbone end-to-end in
				// phase III; keep those runs affordable with fewer epochs.
				if v.ProjDim == 0 {
					cfg.PhaseIII.Epochs = maxI(2, sc.PhaseIIIEpochs/3)
				}
				_, out := cfg.Run(d, split, sc.Pretrain(seed))
				accs = append(accs, out.Eval.Top1)
				params = out.ParamCount
				row.EmbedDim = cfg.EmbedDim()
			}
			mean, std := metrics.MeanStd(accs)
			if encName == "HDC" {
				row.HDCTop1, row.HDCStd, row.HDCParams = mean, std, params
			} else {
				row.MLPTop1, row.MLPStd, row.MLPParams = mean, std, params
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Format renders the ablation in the paper's layout.
func (r Table2Result) Format() string {
	var b strings.Builder
	b.WriteString("Table II — Image/attribute encoder ablation (ZS split, top-1 %)\n")
	fmt.Fprintf(&b, "%-14s %-9s %6s  %-16s %-16s %10s %10s\n",
		"Image Encoder", "Pre-train", "d", "HDC (ZSC)", "MLP (Trainable)", "HDC params", "MLP params")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-9s %6d  %-16s %-16s %10d %10d\n",
			row.Variant.Label, row.Variant.Pretrain, row.EmbedDim,
			core.FormatMuSigma(row.HDCTop1, row.HDCStd),
			core.FormatMuSigma(row.MLPTop1, row.MLPStd),
			row.HDCParams, row.MLPParams)
	}
	return b.String()
}

// CSV renders the ablation as comma-separated values.
func (r Table2Result) CSV() string {
	var b strings.Builder
	b.WriteString("encoder,pretrain,d,hdc_top1,hdc_std,mlp_top1,mlp_std,hdc_params,mlp_params\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%.4f,%.4f,%.4f,%.4f,%d,%d\n",
			row.Variant.Label, row.Variant.Pretrain, row.EmbedDim,
			row.HDCTop1, row.HDCStd, row.MLPTop1, row.MLPStd,
			row.HDCParams, row.MLPParams)
	}
	return b.String()
}

// PreferredRow returns the ResNet50+FC row at the scale's preferred d
// (the configuration the paper selects).
func (r Table2Result) PreferredRow() Table2Row {
	best := r.Rows[0]
	for _, row := range r.Rows {
		if row.Variant.Label == "ResNet50+FC" {
			return row
		}
	}
	return best
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
