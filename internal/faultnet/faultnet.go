// Package faultnet is a fault-injection TCP proxy for chaos testing
// the serving stack: it sits between a client (the dist router, an
// HTTP caller) and a real backend and injects the failure modes
// production networks produce — added latency, wedged (blackholed)
// connections that accept bytes and never answer, and abrupt
// connection resets — all switchable at runtime while traffic flows.
//
// The package exists so robustness tests exercise the real network
// stack end to end: the router's timeouts, the circuit breaker's
// condemnation and recovery, and the coalescer's shedding are all
// driven through genuine sockets rather than mocked interfaces.
// Test-support code: nothing here is on a serving hot path.
package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed: the proxy has been shut down.
var ErrClosed = errors.New("faultnet: proxy closed")

// Proxy forwards TCP connections to a fixed target, injecting the
// currently configured faults. All knobs are safe to flip concurrently
// with live traffic.
type Proxy struct {
	target string
	ln     net.Listener

	latency   atomic.Int64 // ns added before forwarding each chunk toward the target
	blackhole atomic.Bool  // swallow all bytes in both directions

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // both legs of every active session
	closed bool
	wg     sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — what the client should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency injects d of extra latency on each chunk forwarded toward
// the target (a one-way delay, so round trips grow by at least d).
// Zero restores transparent forwarding.
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// SetBlackhole wedges the proxy: established and new connections stay
// open but no byte crosses in either direction — the shape of a
// backend that accepted the request and will never answer. False
// restores forwarding for traffic after the flip (bytes swallowed
// while wedged are gone, as they would be on a real stuck middlebox).
func (p *Proxy) SetBlackhole(on bool) { p.blackhole.Store(on) }

// DropConns abruptly closes every active session, both legs — the
// shape of a midstream connection reset. The listener keeps accepting,
// so clients that redial reconnect immediately.
func (p *Proxy) DropConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close shuts the listener and every active session down.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.DropConns()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.session(client)
	}
}

// track registers a conn for DropConns/Close; returns false (and
// closes it) when the proxy is already shut down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// session pumps one client connection to the target and back.
func (p *Proxy) session(client net.Conn) {
	defer p.wg.Done()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	if !p.track(server) {
		return
	}
	defer p.untrack(server)

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() { defer pumps.Done(); p.pump(server, client, true) }()
	go func() { defer pumps.Done(); p.pump(client, server, false) }()
	pumps.Wait()
}

// pump copies src→dst, applying the injected faults. delayed marks the
// client→target direction, the one that pays the injected latency.
// Either side closing (or DropConns) ends the pump; closing both conns
// via the deferred untrack tears the whole session down.
func (p *Proxy) pump(dst, src net.Conn, delayed bool) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if p.blackhole.Load() {
				continue // swallow; the connection stays open and silent
			}
			if delayed {
				if d := time.Duration(p.latency.Load()); d > 0 {
					time.Sleep(d)
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Half-close propagation keeps request/response protocols live.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}
