package hdc

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Binary is a packed binary hypervector: 64 components per uint64 word.
// Component i lives at bit (i % 64) of word (i / 64). A set bit maps to
// bipolar −1 and a clear bit to +1, so XOR implements binding exactly as
// elementwise multiplication does on the bipolar side.
//
// This is the representation the paper's edge-deployment story targets:
// the attribute encoder becomes stationary binary weights whose binding
// and similarity reduce to XOR + popcount.
type Binary struct {
	words []uint64
	dim   int
}

// NewBinary returns an all-zero (all +1 in bipolar terms) packed vector.
func NewBinary(d int) *Binary {
	if d <= 0 {
		panic(fmt.Sprintf("hdc.NewBinary: non-positive dimension %d", d))
	}
	return &Binary{words: make([]uint64, (d+63)/64), dim: d}
}

// NewRandomBinary samples a uniformly random packed binary hypervector.
func NewRandomBinary(rng *rand.Rand, d int) *Binary {
	b := NewBinary(d)
	for i := range b.words {
		b.words[i] = rng.Uint64()
	}
	b.maskTail()
	return b
}

// maskTail clears the unused bits of the final word so popcounts and
// equality comparisons see only real components.
func (b *Binary) maskTail() {
	if rem := b.dim % 64; rem != 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Dim returns the dimensionality.
func (b *Binary) Dim() int { return b.dim }

// Bit returns component i as 0 or 1.
func (b *Binary) Bit(i int) int {
	if i < 0 || i >= b.dim {
		panic(fmt.Sprintf("hdc.Binary.Bit: index %d out of range [0,%d)", i, b.dim))
	}
	return int((b.words[i/64] >> uint(i%64)) & 1)
}

// SetBit sets component i to v (0 or 1).
func (b *Binary) SetBit(i, v int) {
	if i < 0 || i >= b.dim {
		panic(fmt.Sprintf("hdc.Binary.SetBit: index %d out of range [0,%d)", i, b.dim))
	}
	if v != 0 {
		b.words[i/64] |= 1 << uint(i%64)
	} else {
		b.words[i/64] &^= 1 << uint(i%64)
	}
}

// Clone returns a deep copy.
func (b *Binary) Clone() *Binary {
	c := NewBinary(b.dim)
	copy(c.words, b.words)
	return c
}

// Xor computes the binding b ⊙ o as bitwise XOR into a new vector.
func (b *Binary) Xor(o *Binary) *Binary {
	out := NewBinary(b.dim)
	b.XorInto(o, out)
	return out
}

// XorInto computes the binding b ⊙ o into dst without allocating. dst may
// alias b or o. This is the buffer-reuse kernel the batched inference
// engine (internal/infer) binds with on its hot path.
func (b *Binary) XorInto(o, dst *Binary) {
	checkDims("Binary.XorInto", b.dim, o.dim)
	checkDims("Binary.XorInto", b.dim, dst.dim)
	for i := range b.words {
		dst.words[i] = b.words[i] ^ o.words[i]
	}
}

// Hamming returns the number of differing components via popcount.
func (b *Binary) Hamming(o *Binary) int {
	checkDims("Binary.Hamming", b.dim, o.dim)
	var h int
	for i := range b.words {
		h += bits.OnesCount64(b.words[i] ^ o.words[i])
	}
	return h
}

// NormalizedHamming returns Hamming distance divided by dimensionality;
// 0 means identical, 0.5 is the expected distance of random vectors, and
// 1 means complementary.
func (b *Binary) NormalizedHamming(o *Binary) float64 {
	return float64(b.Hamming(o)) / float64(b.dim)
}

// Cosine returns the bipolar-equivalent cosine similarity, which for the
// bit↔±1 mapping equals 1 − 2·normalizedHamming.
func (b *Binary) Cosine(o *Binary) float64 {
	return 1 - 2*b.NormalizedHamming(o)
}

// Permute rotates components by k positions, the ρ operation.
func (b *Binary) Permute(k int) *Binary {
	out := NewBinary(b.dim)
	b.PermuteInto(k, out)
	return out
}

// PermuteInto rotates components by k positions into dst without
// allocating: component i of b becomes component (i+k) mod d of dst.
// The rotation works at the word level — the packed vector is treated as
// a d-bit little-endian integer and rotated left by k via two multiword
// shifts, O(d/64) word operations instead of O(d) per-bit Bit/SetBit
// calls. dst must not alias b.
func (b *Binary) PermuteInto(k int, dst *Binary) {
	checkDims("Binary.PermuteInto", b.dim, dst.dim)
	if dst == b {
		panic("hdc.Binary.PermuteInto: dst must not alias the receiver")
	}
	d := b.dim
	k = ((k % d) + d) % d
	if k == 0 {
		copy(dst.words, b.words)
		return
	}
	w := len(b.words)
	// Left-shift part: bit i → i+k for i < d−k.
	sl, bs := k/64, uint(k%64)
	for j := w - 1; j >= 0; j-- {
		var v uint64
		if j-sl >= 0 {
			v = b.words[j-sl] << bs
			if bs > 0 && j-sl-1 >= 0 {
				v |= b.words[j-sl-1] >> (64 - bs)
			}
		}
		dst.words[j] = v
	}
	// Right-shift part: bit i → i−(d−k) for i ≥ d−k, i.e. the wrapped
	// high bits. The tail of the top input word is zero by invariant, so
	// a plain multiword right shift lands them at the bottom.
	r := d - k
	sr, br := r/64, uint(r%64)
	for j := 0; j+sr < w; j++ {
		v := b.words[j+sr] >> br
		if br > 0 && j+sr+1 < w {
			v |= b.words[j+sr+1] << (64 - br)
		}
		dst.words[j] |= v
	}
	dst.maskTail()
}

// ToBipolar expands the packed vector to its bipolar equivalent
// (bit 1 → −1, bit 0 → +1).
func (b *Binary) ToBipolar() Bipolar {
	out := make(Bipolar, b.dim)
	for i := 0; i < b.dim; i++ {
		if b.Bit(i) == 1 {
			out[i] = -1
		} else {
			out[i] = 1
		}
	}
	return out
}

// FromBipolar packs a bipolar vector into binary form (−1 → bit 1).
// Zero components (possible in unthresholded intermediates) are rejected.
func FromBipolar(v Bipolar) *Binary {
	b := NewBinary(len(v))
	for i, x := range v {
		switch x {
		case -1:
			b.SetBit(i, 1)
		case 1:
			// bit stays 0
		default:
			panic(fmt.Sprintf("hdc.FromBipolar: component %d is %d, want ±1", i, x))
		}
	}
	return b
}

// Bytes returns the storage size of the packed vector in bytes, used by
// the memory-footprint accounting (§III-A).
func (b *Binary) Bytes() int { return len(b.words) * 8 }

// Words exposes the packed word slab (component i at bit i%64 of word
// i/64, tail bits zero). Callers must treat it as read-only: it is the
// live backing store, shared so hot paths — the distributed serving
// protocol writes probe slabs straight onto the wire — need no copy.
func (b *Binary) Words() []uint64 { return b.words }

// BinaryFromWords wraps a word slab as a packed vector of dimension d,
// taking ownership of words (the inverse of Words, used to decode wire
// probes without copying). The slab must hold exactly ceil(d/64) words;
// tail bits beyond d are cleared here so Hamming kernels and equality
// see only real components.
func BinaryFromWords(d int, words []uint64) *Binary {
	if d <= 0 {
		panic(fmt.Sprintf("hdc.BinaryFromWords: non-positive dimension %d", d))
	}
	if want := (d + 63) / 64; len(words) != want {
		panic(fmt.Sprintf("hdc.BinaryFromWords: %d words for dimension %d, want %d", len(words), d, want))
	}
	b := &Binary{words: words, dim: d}
	b.maskTail()
	return b
}
