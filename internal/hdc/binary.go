package hdc

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Binary is a packed binary hypervector: 64 components per uint64 word.
// Component i lives at bit (i % 64) of word (i / 64). A set bit maps to
// bipolar −1 and a clear bit to +1, so XOR implements binding exactly as
// elementwise multiplication does on the bipolar side.
//
// This is the representation the paper's edge-deployment story targets:
// the attribute encoder becomes stationary binary weights whose binding
// and similarity reduce to XOR + popcount.
type Binary struct {
	words []uint64
	dim   int
}

// NewBinary returns an all-zero (all +1 in bipolar terms) packed vector.
func NewBinary(d int) *Binary {
	if d <= 0 {
		panic(fmt.Sprintf("hdc.NewBinary: non-positive dimension %d", d))
	}
	return &Binary{words: make([]uint64, (d+63)/64), dim: d}
}

// NewRandomBinary samples a uniformly random packed binary hypervector.
func NewRandomBinary(rng *rand.Rand, d int) *Binary {
	b := NewBinary(d)
	for i := range b.words {
		b.words[i] = rng.Uint64()
	}
	b.maskTail()
	return b
}

// maskTail clears the unused bits of the final word so popcounts and
// equality comparisons see only real components.
func (b *Binary) maskTail() {
	if rem := b.dim % 64; rem != 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Dim returns the dimensionality.
func (b *Binary) Dim() int { return b.dim }

// Bit returns component i as 0 or 1.
func (b *Binary) Bit(i int) int {
	if i < 0 || i >= b.dim {
		panic(fmt.Sprintf("hdc.Binary.Bit: index %d out of range [0,%d)", i, b.dim))
	}
	return int((b.words[i/64] >> uint(i%64)) & 1)
}

// SetBit sets component i to v (0 or 1).
func (b *Binary) SetBit(i, v int) {
	if i < 0 || i >= b.dim {
		panic(fmt.Sprintf("hdc.Binary.SetBit: index %d out of range [0,%d)", i, b.dim))
	}
	if v != 0 {
		b.words[i/64] |= 1 << uint(i%64)
	} else {
		b.words[i/64] &^= 1 << uint(i%64)
	}
}

// Clone returns a deep copy.
func (b *Binary) Clone() *Binary {
	c := NewBinary(b.dim)
	copy(c.words, b.words)
	return c
}

// Xor computes the binding b ⊙ o as bitwise XOR into a new vector.
func (b *Binary) Xor(o *Binary) *Binary {
	checkDims("Binary.Xor", b.dim, o.dim)
	out := NewBinary(b.dim)
	for i := range b.words {
		out.words[i] = b.words[i] ^ o.words[i]
	}
	return out
}

// Hamming returns the number of differing components via popcount.
func (b *Binary) Hamming(o *Binary) int {
	checkDims("Binary.Hamming", b.dim, o.dim)
	var h int
	for i := range b.words {
		h += bits.OnesCount64(b.words[i] ^ o.words[i])
	}
	return h
}

// NormalizedHamming returns Hamming distance divided by dimensionality;
// 0 means identical, 0.5 is the expected distance of random vectors, and
// 1 means complementary.
func (b *Binary) NormalizedHamming(o *Binary) float64 {
	return float64(b.Hamming(o)) / float64(b.dim)
}

// Cosine returns the bipolar-equivalent cosine similarity, which for the
// bit↔±1 mapping equals 1 − 2·normalizedHamming.
func (b *Binary) Cosine(o *Binary) float64 {
	return 1 - 2*b.NormalizedHamming(o)
}

// Permute rotates components by k positions (bit-level rotation across the
// packed words), the ρ operation.
func (b *Binary) Permute(k int) *Binary {
	out := NewBinary(b.dim)
	d := b.dim
	k = ((k % d) + d) % d
	for i := 0; i < d; i++ {
		out.SetBit((i+k)%d, b.Bit(i))
	}
	return out
}

// ToBipolar expands the packed vector to its bipolar equivalent
// (bit 1 → −1, bit 0 → +1).
func (b *Binary) ToBipolar() Bipolar {
	out := make(Bipolar, b.dim)
	for i := 0; i < b.dim; i++ {
		if b.Bit(i) == 1 {
			out[i] = -1
		} else {
			out[i] = 1
		}
	}
	return out
}

// FromBipolar packs a bipolar vector into binary form (−1 → bit 1).
// Zero components (possible in unthresholded intermediates) are rejected.
func FromBipolar(v Bipolar) *Binary {
	b := NewBinary(len(v))
	for i, x := range v {
		switch x {
		case -1:
			b.SetBit(i, 1)
		case 1:
			// bit stays 0
		default:
			panic(fmt.Sprintf("hdc.FromBipolar: component %d is %d, want ±1", i, x))
		}
	}
	return b
}

// Bytes returns the storage size of the packed vector in bytes, used by
// the memory-footprint accounting (§III-A).
func (b *Binary) Bytes() int { return len(b.words) * 8 }
