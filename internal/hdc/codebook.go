package hdc

import (
	"fmt"
	"math/rand"
)

// Codebook is an ordered collection of named atomic hypervectors, e.g. the
// paper's attribute-groups codebook (g₁ … g_G) and attribute-values
// codebook (v₁ … v_V). Codebooks are stationary: they are generated once
// from a seed and never trained.
type Codebook struct {
	names   []string
	vectors []Bipolar
	index   map[string]int
	dim     int
}

// NewCodebook generates a codebook with one Rademacher hypervector of
// dimension d per name. Duplicate names are rejected.
func NewCodebook(rng *rand.Rand, d int, names []string) *Codebook {
	if len(names) == 0 {
		panic("hdc.NewCodebook: no names")
	}
	cb := &Codebook{
		names:   append([]string(nil), names...),
		vectors: make([]Bipolar, len(names)),
		index:   make(map[string]int, len(names)),
		dim:     d,
	}
	for i, n := range names {
		if _, dup := cb.index[n]; dup {
			panic(fmt.Sprintf("hdc.NewCodebook: duplicate name %q", n))
		}
		cb.index[n] = i
		cb.vectors[i] = NewRandomBipolar(rng, d)
	}
	return cb
}

// Len returns the number of entries.
func (c *Codebook) Len() int { return len(c.vectors) }

// Dim returns the hypervector dimensionality.
func (c *Codebook) Dim() int { return c.dim }

// At returns the i-th hypervector (not a copy; callers must not mutate).
func (c *Codebook) At(i int) Bipolar { return c.vectors[i] }

// Name returns the i-th entry's name.
func (c *Codebook) Name(i int) string { return c.names[i] }

// Lookup returns the hypervector for name, or false if absent.
func (c *Codebook) Lookup(name string) (Bipolar, bool) {
	i, ok := c.index[name]
	if !ok {
		return nil, false
	}
	return c.vectors[i], true
}

// MustLookup returns the hypervector for name, panicking if absent; for
// schema-driven callers where a miss is a programming error.
func (c *Codebook) MustLookup(name string) Bipolar {
	v, ok := c.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("hdc.Codebook: unknown name %q", name))
	}
	return v
}

// Bytes returns the storage footprint of the codebook if each component is
// stored as one bit (the packed stationary-weights deployment the paper
// assumes when quoting 17 KB for the CUB codebooks).
func (c *Codebook) Bytes() int {
	perVec := (c.dim + 7) / 8
	return perVec * len(c.vectors)
}

// MemoryFootprint describes the storage required by an HDC attribute
// encoder configuration, mirroring the arithmetic of §III-A.
type MemoryFootprint struct {
	Groups, Values, Combos int // G, V, α
	Dim                    int // d
	FactoredBytes          int // storing G+V atomic vectors
	MaterializedBytes      int // storing all α bound combination vectors
}

// NewMemoryFootprint computes the footprint for G groups, V values, α
// group/value combinations at dimension d, with one bit per component.
func NewMemoryFootprint(g, v, alpha, d int) MemoryFootprint {
	perVec := (d + 7) / 8
	return MemoryFootprint{
		Groups: g, Values: v, Combos: alpha, Dim: d,
		FactoredBytes:     (g + v) * perVec,
		MaterializedBytes: alpha * perVec,
	}
}

// Reduction returns the fractional memory saved by storing the two atomic
// codebooks instead of all α materialized combination vectors. For the
// CUB topology (G=28, V=61, α=312) this is ≈ 0.71, the paper's "71 %
// reduction in memory requirement".
func (m MemoryFootprint) Reduction() float64 {
	return 1 - float64(m.FactoredBytes)/float64(m.MaterializedBytes)
}
