package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: permutation composes additively — ρᵃ(ρᵇ(v)) = ρᵃ⁺ᵇ(v).
func TestPropertyPermuteComposes(t *testing.T) {
	f := func(seed int64, a, b int8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 16 + rng.Intn(100)
		v := NewRandomBipolar(rng, d)
		lhs := v.Permute(int(a)).Permute(int(b))
		rhs := v.Permute(int(a) + int(b))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestPropertyCosineSymmetricBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		d := 8 + rng.Intn(256)
		a := NewRandomBipolar(rng, d)
		b := NewRandomBipolar(rng, d)
		ab, ba := a.Cosine(b), b.Cosine(a)
		if ab != ba {
			t.Fatal("cosine not symmetric")
		}
		if ab < -1-1e-12 || ab > 1+1e-12 {
			t.Fatalf("cosine out of bounds: %v", ab)
		}
	}
}

// Property: Hamming distance is a metric on packed binary vectors —
// symmetric, zero iff equal, triangle inequality.
func TestPropertyHammingMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		d := 16 + rng.Intn(300)
		a := NewRandomBinary(rng, d)
		b := NewRandomBinary(rng, d)
		c := NewRandomBinary(rng, d)
		if a.Hamming(b) != b.Hamming(a) {
			t.Fatal("hamming not symmetric")
		}
		if a.Hamming(a) != 0 {
			t.Fatal("self distance nonzero")
		}
		if a.Hamming(c) > a.Hamming(b)+b.Hamming(c) {
			t.Fatal("triangle inequality violated")
		}
	}
}

// Property: bundling is order-invariant (accumulation commutes).
func TestPropertyBundleOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := 512
	vs := make([]Bipolar, 5)
	for i := range vs {
		vs[i] = NewRandomBipolar(rng, d)
	}
	// Odd count → no ties → threshold is deterministic regardless of rng.
	acc1 := NewAccumulator(d)
	for _, v := range vs {
		acc1.Add(v)
	}
	acc2 := NewAccumulator(d)
	for i := len(vs) - 1; i >= 0; i-- {
		acc2.Add(vs[i])
	}
	b1 := acc1.Threshold(rand.New(rand.NewSource(9)))
	b2 := acc2.Threshold(rand.New(rand.NewSource(77)))
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("bundle depends on accumulation order")
		}
	}
}

// The expected cosine between a k-vector bundle and a component is
// ≈ sqrt(2/(πk)); check the trend for growing k (capacity curve).
func TestBundleCapacityDecaysWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const d = 8192
	meanCos := func(k int) float64 {
		vs := make([]Bipolar, k)
		acc := NewAccumulator(d)
		for i := range vs {
			vs[i] = NewRandomBipolar(rng, d)
			acc.Add(vs[i])
		}
		b := acc.Threshold(rng)
		var s float64
		for _, v := range vs {
			s += b.Cosine(v)
		}
		return s / float64(k)
	}
	c3, c9, c27 := meanCos(3), meanCos(9), meanCos(27)
	if !(c3 > c9 && c9 > c27) {
		t.Fatalf("bundle capacity not decaying: %v %v %v", c3, c9, c27)
	}
	// Theory check at k=9: sqrt(2/(9π)) ≈ 0.266.
	if math.Abs(c9-0.266) > 0.05 {
		t.Fatalf("k=9 component similarity %v, theory ≈0.266", c9)
	}
}

func TestAccumulatorCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	acc := NewAccumulator(16)
	acc.Add(NewRandomBipolar(rng, 16))
	acc.AddWeighted(NewRandomBipolar(rng, 16), 3)
	if acc.Count() != 2 {
		t.Fatalf("Count = %d, want 2", acc.Count())
	}
}

func TestNewAccumulatorPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for d=0")
		}
	}()
	NewAccumulator(0)
}

func TestBinaryCosineMatchesHammingIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewRandomBinary(rng, 999)
	b := NewRandomBinary(rng, 999)
	// cos = 1 − 2·h/d must hold by construction.
	want := 1 - 2*float64(a.Hamming(b))/999
	if math.Abs(a.Cosine(b)-want) > 1e-12 {
		t.Fatalf("cosine identity broken: %v vs %v", a.Cosine(b), want)
	}
}

func TestBinarySetBitOutOfRangePanics(t *testing.T) {
	b := NewBinary(10)
	defer func() {
		if recover() == nil {
			t.Fatal("SetBit out of range accepted")
		}
	}()
	b.SetBit(10, 1)
}

func TestItemMemoryTopKPanicsOnBadK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := NewItemMemory(32)
	im.Store("a", NewRandomBinary(rng, 32))
	defer func() {
		if recover() == nil {
			t.Fatal("QueryTopK accepted k > len")
		}
	}()
	im.QueryTopK(NewBinary(32), 2)
}

func TestMemoryFootprintScalesLinearly(t *testing.T) {
	m1 := NewMemoryFootprint(28, 61, 312, 512)
	m2 := NewMemoryFootprint(28, 61, 312, 1024)
	if m2.FactoredBytes != 2*m1.FactoredBytes {
		t.Fatalf("footprint not linear in d: %d vs %d", m1.FactoredBytes, m2.FactoredBytes)
	}
	if math.Abs(m1.Reduction()-m2.Reduction()) > 1e-12 {
		t.Fatal("reduction should be independent of d")
	}
}
