package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRandomBipolarComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewRandomBipolar(rng, 1000)
	var pos int
	for _, x := range v {
		if x != 1 && x != -1 {
			t.Fatalf("component %d not bipolar", x)
		}
		if x == 1 {
			pos++
		}
	}
	if pos < 400 || pos > 600 {
		t.Fatalf("badly unbalanced: %d/1000 positive", pos)
	}
}

func TestNewRandomBipolarPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for d=0")
		}
	}()
	NewRandomBipolar(rand.New(rand.NewSource(1)), 0)
}

// Quasi-orthogonality: random high-dimensional vectors have |cos| ≈ 0.
// For d=4096, the std of cosine between Rademacher vectors is 1/sqrt(d) ≈
// 0.0156, so |cos| < 0.1 holds with overwhelming probability.
func TestQuasiOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const d = 4096
	vs := make([]Bipolar, 12)
	for i := range vs {
		vs[i] = NewRandomBipolar(rng, d)
	}
	for i := range vs {
		for j := i + 1; j < len(vs); j++ {
			if c := vs[i].Cosine(vs[j]); math.Abs(c) > 0.1 {
				t.Fatalf("vectors %d,%d not quasi-orthogonal: cos=%v", i, j, c)
			}
		}
	}
}

// Property: binding is self-inverse, (a⊙b)⊘b = a.
func TestPropertyBindSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		d := 64 + rng.Intn(512)
		a := NewRandomBipolar(rng, d)
		b := NewRandomBipolar(rng, d)
		back := a.Bind(b).Unbind(b)
		for i := range a {
			if back[i] != a[i] {
				t.Fatalf("trial %d: bind not self-inverse at component %d", trial, i)
			}
		}
	}
}

// Property: binding preserves quasi-orthogonality — a⊙b is quasi-orthogonal
// to both operands (paper §III-A).
func TestPropertyBindQuasiOrthogonalToOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const d = 4096
	for trial := 0; trial < 10; trial++ {
		a := NewRandomBipolar(rng, d)
		b := NewRandomBipolar(rng, d)
		ab := a.Bind(b)
		if c := ab.Cosine(a); math.Abs(c) > 0.1 {
			t.Fatalf("bound vector correlated with operand a: %v", c)
		}
		if c := ab.Cosine(b); math.Abs(c) > 0.1 {
			t.Fatalf("bound vector correlated with operand b: %v", c)
		}
	}
}

// Property: binding is commutative and associative for bipolar vectors.
func TestPropertyBindCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := 256
	a, b, c := NewRandomBipolar(rng, d), NewRandomBipolar(rng, d), NewRandomBipolar(rng, d)
	ab, ba := a.Bind(b), b.Bind(a)
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatal("bind not commutative")
		}
	}
	l, r := a.Bind(b).Bind(c), a.Bind(b.Bind(c))
	for i := range l {
		if l[i] != r[i] {
			t.Fatal("bind not associative")
		}
	}
}

// Property: permutation is a bijection — ρ⁻ᵏ(ρᵏ(v)) = v — and preserves
// component multiset.
func TestPropertyPermuteBijective(t *testing.T) {
	f := func(seed int64, kRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 32 + rng.Intn(200)
		v := NewRandomBipolar(rng, d)
		k := int(kRaw)
		back := v.Permute(k).Permute(-k)
		for i := range v {
			if back[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteShiftsComponents(t *testing.T) {
	v := Bipolar{1, -1, 1, 1}
	p := v.Permute(1)
	want := Bipolar{1, 1, -1, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Permute(1) = %v, want %v", p, want)
		}
	}
}

// Bundling: the majority bundle of k vectors stays similar to each of its
// components (expected cosine ≈ sqrt(2/(πk)) for large d) and dissimilar
// to unrelated random vectors.
func TestBundleSimilarToComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const d = 4096
	vs := []Bipolar{
		NewRandomBipolar(rng, d), NewRandomBipolar(rng, d), NewRandomBipolar(rng, d),
	}
	b := Bundle(rng, vs...)
	for i, v := range vs {
		if c := b.Cosine(v); c < 0.3 {
			t.Fatalf("bundle lost component %d: cos=%v", i, c)
		}
	}
	unrelated := NewRandomBipolar(rng, d)
	if c := b.Cosine(unrelated); math.Abs(c) > 0.1 {
		t.Fatalf("bundle correlated with unrelated vector: %v", c)
	}
}

func TestAccumulatorTieBreakIsBipolar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := 512
	a := NewRandomBipolar(rng, d)
	neg := make(Bipolar, d)
	for i := range neg {
		neg[i] = -a[i]
	}
	acc := NewAccumulator(d)
	acc.Add(a)
	acc.Add(neg) // all sums are zero → every component is a tie
	out := acc.Threshold(rng)
	var pos int
	for _, x := range out {
		if x != 1 && x != -1 {
			t.Fatalf("tie-broken component is %d", x)
		}
		if x == 1 {
			pos++
		}
	}
	if pos < d/2-80 || pos > d/2+80 {
		t.Fatalf("tie-breaking biased: %d/%d positive", pos, d)
	}
}

func TestAccumulatorWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := 1024
	a, b := NewRandomBipolar(rng, d), NewRandomBipolar(rng, d)
	acc := NewAccumulator(d)
	acc.AddWeighted(a, 5)
	acc.Add(b)
	out := acc.Threshold(rng)
	// Weight 5 vs 1: the bundle must essentially equal a.
	if c := out.Cosine(a); c < 0.9 {
		t.Fatalf("weighted bundle ignored dominant component: cos=%v", c)
	}
}

func TestBundleEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bundle() with no vectors did not panic")
		}
	}()
	Bundle(rand.New(rand.NewSource(1)))
}

func TestBindDimensionMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := NewRandomBipolar(rng, 8), NewRandomBipolar(rng, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("Bind with mismatched dims did not panic")
		}
	}()
	a.Bind(b)
}

// --- Packed binary representation ---

func TestBinaryBitSetGet(t *testing.T) {
	b := NewBinary(130)
	b.SetBit(0, 1)
	b.SetBit(64, 1)
	b.SetBit(129, 1)
	if b.Bit(0) != 1 || b.Bit(64) != 1 || b.Bit(129) != 1 || b.Bit(1) != 0 {
		t.Fatal("bit set/get broken")
	}
	b.SetBit(64, 0)
	if b.Bit(64) != 0 {
		t.Fatal("bit clear broken")
	}
}

func TestBinaryXorIsSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewRandomBinary(rng, 1000)
	b := NewRandomBinary(rng, 1000)
	back := a.Xor(b).Xor(b)
	if back.Hamming(a) != 0 {
		t.Fatal("XOR binding not self-inverse")
	}
}

func TestBinaryHammingAgainstManual(t *testing.T) {
	a := NewBinary(70)
	b := NewBinary(70)
	a.SetBit(3, 1)
	a.SetBit(65, 1)
	b.SetBit(3, 1)
	b.SetBit(69, 1)
	if h := a.Hamming(b); h != 2 {
		t.Fatalf("Hamming = %d, want 2", h)
	}
}

// The bipolar↔binary mapping is a homomorphism: bind commutes with the
// representation change, and cosine agrees between the two views.
func TestBipolarBinaryIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 777
	a := NewRandomBipolar(rng, d)
	b := NewRandomBipolar(rng, d)
	pa, pb := FromBipolar(a), FromBipolar(b)

	// Round trip.
	back := pa.ToBipolar()
	for i := range a {
		if back[i] != a[i] {
			t.Fatal("bipolar→binary→bipolar round trip broken")
		}
	}
	// Bind commutes with packing.
	bound := FromBipolar(a.Bind(b))
	if bound.Hamming(pa.Xor(pb)) != 0 {
		t.Fatal("XOR does not implement bipolar binding")
	}
	// Similarity agrees.
	if math.Abs(a.Cosine(b)-pa.Cosine(pb)) > 1e-9 {
		t.Fatalf("cosine mismatch: bipolar %v vs binary %v", a.Cosine(b), pa.Cosine(pb))
	}
	// Hamming agrees.
	if a.Hamming(b) != pa.Hamming(pb) {
		t.Fatal("hamming mismatch between representations")
	}
}

func TestBinaryPermuteBijective(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := NewRandomBinary(rng, 100)
	back := b.Permute(37).Permute(-37)
	if back.Hamming(b) != 0 {
		t.Fatal("binary permute not bijective")
	}
}

func TestBinaryRandomBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := NewRandomBinary(rng, 10000)
	var ones int
	for i := 0; i < b.Dim(); i++ {
		ones += b.Bit(i)
	}
	if ones < 4700 || ones > 5300 {
		t.Fatalf("random binary unbalanced: %d/10000 ones", ones)
	}
}

func TestBinaryTailMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	b := NewRandomBinary(rng, 65) // one bit into the second word
	if b.words[1]&^1 != 0 {
		t.Fatal("tail bits beyond dim not masked")
	}
}

func TestFromBipolarRejectsZeros(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromBipolar accepted a zero component")
		}
	}()
	FromBipolar(Bipolar{1, 0, -1})
}

// --- Codebook ---

func TestCodebookLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cb := NewCodebook(rng, 256, []string{"blue", "brown", "red"})
	if cb.Len() != 3 || cb.Dim() != 256 {
		t.Fatalf("bad codebook dims: len=%d d=%d", cb.Len(), cb.Dim())
	}
	v, ok := cb.Lookup("brown")
	if !ok || v.Dim() != 256 {
		t.Fatal("Lookup failed")
	}
	if _, ok := cb.Lookup("green"); ok {
		t.Fatal("Lookup invented an entry")
	}
	if cb.Name(2) != "red" {
		t.Fatal("Name order broken")
	}
}

func TestCodebookDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate names accepted")
		}
	}()
	NewCodebook(rand.New(rand.NewSource(1)), 64, []string{"a", "a"})
}

func TestCodebookEntriesMutuallyQuasiOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	names := make([]string, 20)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	cb := NewCodebook(rng, 4096, names)
	for i := 0; i < cb.Len(); i++ {
		for j := i + 1; j < cb.Len(); j++ {
			if c := cb.At(i).Cosine(cb.At(j)); math.Abs(c) > 0.1 {
				t.Fatalf("codebook entries %d,%d correlated: %v", i, j, c)
			}
		}
	}
}

// Memory-footprint accounting must reproduce the paper's §III-A numbers
// exactly: CUB has α=312 combinations from G=28 groups and V=61 values;
// storing 89 instead of 312 vectors is a 71% reduction, and at d=1536 the
// two codebooks occupy ≈17 KB.
func TestMemoryFootprintMatchesPaper(t *testing.T) {
	m := NewMemoryFootprint(28, 61, 312, 1536)
	if r := m.Reduction(); math.Abs(r-0.7147) > 0.01 {
		t.Fatalf("reduction = %v, want ≈0.71 (paper: 71%%)", r)
	}
	kb := float64(m.FactoredBytes) / 1024
	if kb < 16 || kb > 18 {
		t.Fatalf("codebook footprint = %.2f KB, want ≈17 KB (paper §III-A)", kb)
	}
}

func TestCodebookBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cb := NewCodebook(rng, 1536, []string{"a", "b"})
	if cb.Bytes() != 2*1536/8 {
		t.Fatalf("Bytes = %d, want %d", cb.Bytes(), 2*1536/8)
	}
}

// --- Item memory ---

func TestItemMemoryRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	const d = 2048
	im := NewItemMemory(d)
	stored := make([]*Binary, 10)
	for i := range stored {
		stored[i] = NewRandomBinary(rng, d)
		im.Store(string(rune('A'+i)), stored[i])
	}
	// Exact probe.
	label, idx, dist := im.Query(stored[4])
	if label != "E" || idx != 4 || dist != 0 {
		t.Fatalf("exact recall failed: %q %d %d", label, idx, dist)
	}
	// Noisy probe: flip 20% of bits — should still recall.
	noisy := stored[7].Clone()
	for i := 0; i < d/5; i++ {
		p := rng.Intn(d)
		noisy.SetBit(p, 1-noisy.Bit(p))
	}
	label, _, _ = im.Query(noisy)
	if label != "H" {
		t.Fatalf("noisy recall failed: got %q, want H", label)
	}
}

func TestItemMemoryTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	im := NewItemMemory(512)
	vs := make([]*Binary, 5)
	for i := range vs {
		vs[i] = NewRandomBinary(rng, 512)
		im.Store(string(rune('a'+i)), vs[i])
	}
	top := im.QueryTopK(vs[2], 3)
	if top[0] != 2 {
		t.Fatalf("nearest not first: %v", top)
	}
	if len(top) != 3 {
		t.Fatalf("want 3 results, got %d", len(top))
	}
}

func TestItemMemoryEmptyQueryPanics(t *testing.T) {
	im := NewItemMemory(64)
	defer func() {
		if recover() == nil {
			t.Fatal("query on empty memory did not panic")
		}
	}()
	im.Query(NewBinary(64))
}

func TestItemMemoryStoreIsolatesCaller(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	im := NewItemMemory(128)
	v := NewRandomBinary(rng, 128)
	im.Store("x", v)
	orig := v.Clone()
	v.SetBit(0, 1-v.Bit(0)) // mutate caller's copy
	_, _, dist := im.Query(orig)
	if dist != 0 {
		t.Fatal("Store did not copy the vector")
	}
}

func BenchmarkBindBipolar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandomBipolar(rng, 1536)
	y := NewRandomBipolar(rng, 1536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Bind(y)
	}
}

func BenchmarkBindBinaryXOR(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := NewRandomBinary(rng, 1536)
	y := NewRandomBinary(rng, 1536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Xor(y)
	}
}

func BenchmarkHammingPopcount(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := NewRandomBinary(rng, 1536)
	y := NewRandomBinary(rng, 1536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Hamming(y)
	}
}
