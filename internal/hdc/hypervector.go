// Package hdc implements the hyperdimensional-computing core the paper's
// attribute encoder is built on (§II-b, §III-A): dense bipolar and packed
// binary hypervectors, the HDC algebra (binding ⊙, bundling +, permutation
// ρ, unbinding ⊘), similarity measures, codebooks of atomic hypervectors,
// an associative item memory, and the memory-footprint accounting behind
// the paper's 71 %-reduction / 17 KB claims.
//
// Two representations are provided:
//
//   - Bipolar: one int8 per component in {−1, +1}. This is the view used
//     on the training path, where attribute codevectors multiply real
//     class-attribute certainties.
//   - Binary: 64 components per uint64 word with bind = XOR and similarity
//     via popcount Hamming distance. This is the "stationary binary
//     weights/ops" edge-inference path Fig. 1 highlights.
//
// The two are isomorphic under the usual mapping −1 ↔ 1-bit, +1 ↔ 0-bit,
// and conversion helpers plus tests guarantee the algebra commutes with
// the mapping.
package hdc

import (
	"fmt"
	"math"
	"math/rand"
)

// Bipolar is a dense bipolar hypervector with components in {−1, +1}.
// (Bundling intermediates may hold other integers; see Accumulator.)
type Bipolar []int8

// NewRandomBipolar samples a d-dimensional hypervector from the Rademacher
// distribution (each component ±1 with probability ½), the atomic
// hypervector distribution of §III-A.
func NewRandomBipolar(rng *rand.Rand, d int) Bipolar {
	if d <= 0 {
		panic(fmt.Sprintf("hdc.NewRandomBipolar: non-positive dimension %d", d))
	}
	v := make(Bipolar, d)
	// Draw 63 random bits at a time; one Int63 call serves 63 components.
	var bits int64
	var have int
	for i := range v {
		if have == 0 {
			bits = rng.Int63()
			have = 63
		}
		if bits&1 == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
		bits >>= 1
		have--
	}
	return v
}

// Dim returns the dimensionality of the hypervector.
func (v Bipolar) Dim() int { return len(v) }

// Clone returns a copy of v.
func (v Bipolar) Clone() Bipolar {
	c := make(Bipolar, len(v))
	copy(c, v)
	return c
}

// Bind computes the variable-binding product v ⊙ o (elementwise
// multiplication for dense bipolar vectors, per Schmuck et al. [30]).
// Binding two Rademacher vectors yields a vector quasi-orthogonal to both.
func (v Bipolar) Bind(o Bipolar) Bipolar {
	checkDims("Bind", len(v), len(o))
	out := make(Bipolar, len(v))
	for i := range v {
		out[i] = v[i] * o[i]
	}
	return out
}

// BindInto computes v ⊙ o into dst without allocating. dst may alias v
// or o. Non-allocating counterpart of Bind for buffer-reuse hot paths.
func (v Bipolar) BindInto(o, dst Bipolar) {
	checkDims("BindInto", len(v), len(o))
	checkDims("BindInto", len(v), len(dst))
	for i := range v {
		dst[i] = v[i] * o[i]
	}
}

// Unbind recovers a ⊘ b. For bipolar vectors binding is self-inverse, so
// unbinding is the same elementwise multiplication: (a⊙b)⊘b = a.
func (v Bipolar) Unbind(o Bipolar) Bipolar { return v.Bind(o) }

// Permute rotates the components of v by k positions (the ρ operation).
// Permutation preserves quasi-orthogonality and is used to encode order.
func (v Bipolar) Permute(k int) Bipolar {
	out := make(Bipolar, len(v))
	v.PermuteInto(k, out)
	return out
}

// PermuteInto rotates v by k positions into dst without allocating.
// dst must not overlap v.
func (v Bipolar) PermuteInto(k int, dst Bipolar) {
	checkDims("PermuteInto", len(v), len(dst))
	d := len(v)
	k = ((k % d) + d) % d
	copy(dst, v[d-k:])
	copy(dst[k:], v[:d-k])
}

// Cosine returns the cosine similarity between two bipolar vectors,
// which for ±1 components equals the normalized dot product.
func (v Bipolar) Cosine(o Bipolar) float64 {
	checkDims("Cosine", len(v), len(o))
	var dot, nv, no int64
	for i := range v {
		dot += int64(v[i]) * int64(o[i])
		nv += int64(v[i]) * int64(v[i])
		no += int64(o[i]) * int64(o[i])
	}
	if nv == 0 || no == 0 {
		return 0
	}
	return float64(dot) / (math.Sqrt(float64(nv)) * math.Sqrt(float64(no)))
}

// Hamming returns the number of disagreeing components.
func (v Bipolar) Hamming(o Bipolar) int {
	checkDims("Hamming", len(v), len(o))
	var h int
	for i := range v {
		if v[i] != o[i] {
			h++
		}
	}
	return h
}

// Float32 converts v to a float32 slice for the real-valued training path.
func (v Bipolar) Float32() []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// Accumulator bundles hypervectors by componentwise integer summation,
// deferring the sign threshold until Threshold is called. This is the
// bundling (+) operation with majority rule.
type Accumulator struct {
	sums []int32
	n    int
}

// NewAccumulator returns an accumulator for d-dimensional vectors.
func NewAccumulator(d int) *Accumulator {
	if d <= 0 {
		panic(fmt.Sprintf("hdc.NewAccumulator: non-positive dimension %d", d))
	}
	return &Accumulator{sums: make([]int32, d)}
}

// Add accumulates v into the bundle.
func (a *Accumulator) Add(v Bipolar) {
	checkDims("Accumulator.Add", len(a.sums), len(v))
	for i, x := range v {
		a.sums[i] += int32(x)
	}
	a.n++
}

// AddWeighted accumulates v scaled by the integer weight w.
func (a *Accumulator) AddWeighted(v Bipolar, w int32) {
	checkDims("Accumulator.AddWeighted", len(a.sums), len(v))
	for i, x := range v {
		a.sums[i] += w * int32(x)
	}
	a.n++
}

// Count returns the number of vectors accumulated so far.
func (a *Accumulator) Count() int { return a.n }

// Threshold finalizes the bundle by majority rule. Zero sums (ties, which
// occur when an even number of vectors is bundled) are broken
// pseudo-randomly from rng so the result stays dense and unbiased, the
// standard construction for binarized bundling [30].
func (a *Accumulator) Threshold(rng *rand.Rand) Bipolar {
	out := make(Bipolar, len(a.sums))
	for i, s := range a.sums {
		switch {
		case s > 0:
			out[i] = 1
		case s < 0:
			out[i] = -1
		default:
			if rng.Int63()&1 == 0 {
				out[i] = 1
			} else {
				out[i] = -1
			}
		}
	}
	return out
}

// Bundle is a convenience wrapper that accumulates vs and thresholds with
// majority rule, breaking ties from rng.
func Bundle(rng *rand.Rand, vs ...Bipolar) Bipolar {
	if len(vs) == 0 {
		panic("hdc.Bundle: no vectors")
	}
	acc := NewAccumulator(len(vs[0]))
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Threshold(rng)
}

func checkDims(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("hdc.%s: dimension mismatch %d vs %d", op, a, b))
	}
}
