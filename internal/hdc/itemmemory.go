package hdc

import (
	"fmt"
	"math/bits"
	"sort"
)

// ItemMemory is an associative memory over labeled hypervectors: the
// classic HDC classifier readout. Query returns the stored item with the
// highest similarity to a probe vector. The paper's similarity kernel is
// the real-valued analogue of this structure; ItemMemory provides the
// packed binary variant used on the edge-inference path
// (examples/edge_profile) where similarity is XOR + popcount.
//
// Stored vectors live in one contiguous word slab (row-major, wpv words
// per item) rather than a slice of per-item allocations, so the batched
// kernel DistancesInto streams the whole class memory cache-linearly.
// ItemMemory is the storage behind the infer engine's packed-binary
// backend (infer.NewBinaryBackend), which shards DistancesInto ranges
// across workers.
type ItemMemory struct {
	labels []string
	flat   []uint64 // all stored vectors back-to-back, wpv words each
	dim    int
	wpv    int // words per vector
}

// NewItemMemory returns an empty item memory for dimension d.
func NewItemMemory(d int) *ItemMemory {
	if d <= 0 {
		panic(fmt.Sprintf("hdc.NewItemMemory: non-positive dimension %d", d))
	}
	return &ItemMemory{dim: d, wpv: (d + 63) / 64}
}

// Store adds a labeled vector. Dimensions must match the memory. The
// vector is copied into the memory's contiguous slab; the caller's copy
// stays independent.
func (m *ItemMemory) Store(label string, v *Binary) {
	checkDims("ItemMemory.Store", m.dim, v.Dim())
	m.labels = append(m.labels, label)
	m.flat = append(m.flat, v.words...)
}

// ItemMemoryFromSlab constructs an item memory as a view over an
// externally owned word slab: labels[i] names the wpv words at
// flat[i*wpv:(i+1)*wpv]. Nothing is copied — the caller promises the
// viewed prefix is immutable for the lifetime of the view. This is the
// RCU seam of the live-enrollment path (internal/classmem): the
// versioned store appends new prototypes past every published prefix
// and publishes each epoch as a fresh zero-copy view over the shared
// backing, so readers on older epochs keep scanning the exact bytes
// they started with.
func ItemMemoryFromSlab(d int, labels []string, flat []uint64) *ItemMemory {
	if d <= 0 {
		panic(fmt.Sprintf("hdc.ItemMemoryFromSlab: non-positive dimension %d", d))
	}
	wpv := (d + 63) / 64
	if len(flat) != len(labels)*wpv {
		panic(fmt.Sprintf("hdc.ItemMemoryFromSlab: slab has %d words, want %d labels × %d words/vector", len(flat), len(labels), wpv))
	}
	return &ItemMemory{labels: labels, flat: flat, dim: d, wpv: wpv}
}

// Slab exposes the backing word slab (row-major, WordsPerVector words
// per item). Callers must treat the returned slice as read-only; it is
// how the versioned class memory seeds its growable backing from a
// frozen Build without re-encoding.
func (m *ItemMemory) Slab() []uint64 { return m.flat }

// WordsPerVector returns the packed row stride in 64-bit words.
func (m *ItemMemory) WordsPerVector() int { return m.wpv }

// Len returns the number of stored items.
func (m *ItemMemory) Len() int { return len(m.labels) }

// Dim returns the dimensionality of the stored vectors.
func (m *ItemMemory) Dim() int { return m.dim }

// row returns the packed words of item i as a subslice of the slab.
func (m *ItemMemory) row(i int) []uint64 { return m.flat[i*m.wpv : (i+1)*m.wpv] }

// Query returns the label and index of the stored vector nearest to probe
// (minimum Hamming distance), along with that distance. Ties resolve to
// the lowest index. Querying an empty memory panics. This is the
// sequential per-probe linear scan; batched workloads go through the
// infer engine, which shards DistancesInto across workers instead.
func (m *ItemMemory) Query(probe *Binary) (label string, index, distance int) {
	if len(m.labels) == 0 {
		panic("hdc.ItemMemory.Query: empty memory")
	}
	checkDims("ItemMemory.Query", m.dim, probe.Dim())
	best, bi := hammingWords(m.row(0), probe.words), 0
	for i := 1; i < len(m.labels); i++ {
		if h := hammingWords(m.row(i), probe.words); h < best {
			best, bi = h, i
		}
	}
	return m.labels[bi], bi, best
}

// QueryTopK returns the indices of the k nearest stored vectors in
// ascending distance order (ties by index), via a single sort over the
// distance vector — O(n log n) instead of the former O(n·k)
// repeated-minimum selection.
func (m *ItemMemory) QueryTopK(probe *Binary, k int) []int {
	if k <= 0 || k > len(m.labels) {
		panic(fmt.Sprintf("hdc.ItemMemory.QueryTopK: k=%d with %d items", k, len(m.labels)))
	}
	dists := make([]int, m.Len())
	m.DistancesInto(probe, 0, m.Len(), dists)
	idx := make([]int, m.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if dists[idx[a]] != dists[idx[b]] {
			return dists[idx[a]] < dists[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k:k]
}

// DistancesInto computes the Hamming distance from probe to every stored
// item in [lo, hi), writing item i's distance to dst[i-lo]. It allocates
// nothing and streams the contiguous slab with an 8-way-unrolled
// XOR+popcount inner loop — the sharded batch kernel of the infer
// engine's binary backend.
func (m *ItemMemory) DistancesInto(probe *Binary, lo, hi int, dst []int) {
	checkDims("ItemMemory.DistancesInto", m.dim, probe.Dim())
	if lo < 0 || hi > m.Len() || lo > hi {
		panic(fmt.Sprintf("hdc.ItemMemory.DistancesInto: range [%d,%d) with %d items", lo, hi, m.Len()))
	}
	if len(dst) < hi-lo {
		panic(fmt.Sprintf("hdc.ItemMemory.DistancesInto: dst len %d < range width %d", len(dst), hi-lo))
	}
	pwFull := probe.words
	flat, wpv := m.flat, m.wpv
	for i := lo; i < hi; i++ {
		cw := flat[i*wpv : i*wpv+wpv]
		// Reslicing the probe to the row length lets the compiler prove
		// both operands share bounds and drop the per-access checks
		// (~25% on this loop); the 8-way unroll keeps the popcount ports
		// busy. Deliberately duplicated in NearestInRange: a shared
		// helper is not inlined and the call overhead is measurable at
		// this grain.
		pw := pwFull[:len(cw)]
		var h int
		j := 0
		for ; j+8 <= len(cw); j += 8 {
			h += bits.OnesCount64(cw[j]^pw[j]) +
				bits.OnesCount64(cw[j+1]^pw[j+1]) +
				bits.OnesCount64(cw[j+2]^pw[j+2]) +
				bits.OnesCount64(cw[j+3]^pw[j+3]) +
				bits.OnesCount64(cw[j+4]^pw[j+4]) +
				bits.OnesCount64(cw[j+5]^pw[j+5]) +
				bits.OnesCount64(cw[j+6]^pw[j+6]) +
				bits.OnesCount64(cw[j+7]^pw[j+7])
		}
		for ; j < len(cw); j++ {
			h += bits.OnesCount64(cw[j] ^ pw[j])
		}
		dst[i-lo] = h
	}
}

// NearestInRange returns the index and Hamming distance of the stored
// item nearest to probe within [lo, hi), ties by lowest index. It fuses
// the slab scan with the minimum search in a single pass — the top-1
// fast path of the infer engine's binary backend. Common word widths
// (d = 1024, 1536, 2048) dispatch to fixed-width kernels whose row
// length is a compile-time constant, which is worth ~40% over the
// generic loop: converting each row to a *[W]uint64 lets the compiler
// drop every bounds check and keep the whole row walk in registers.
func (m *ItemMemory) NearestInRange(probe *Binary, lo, hi int) (index, distance int) {
	checkDims("ItemMemory.NearestInRange", m.dim, probe.Dim())
	if lo < 0 || hi > m.Len() || lo >= hi {
		panic(fmt.Sprintf("hdc.ItemMemory.NearestInRange: range [%d,%d) with %d items", lo, hi, m.Len()))
	}
	switch m.wpv {
	case 16:
		return nearest16(m.flat, (*[16]uint64)(probe.words), lo, hi)
	case 24:
		return nearest24(m.flat, (*[24]uint64)(probe.words), lo, hi)
	case 32:
		return nearest32(m.flat, (*[32]uint64)(probe.words), lo, hi)
	}
	pwFull := probe.words
	flat, wpv := m.flat, m.wpv
	best, bi := m.dim+1, lo
	for i := lo; i < hi; i++ {
		cw := flat[i*wpv : i*wpv+wpv]
		pw := pwFull[:len(cw)]
		var h int
		j := 0
		for ; j+8 <= len(cw); j += 8 {
			h += bits.OnesCount64(cw[j]^pw[j]) +
				bits.OnesCount64(cw[j+1]^pw[j+1]) +
				bits.OnesCount64(cw[j+2]^pw[j+2]) +
				bits.OnesCount64(cw[j+3]^pw[j+3]) +
				bits.OnesCount64(cw[j+4]^pw[j+4]) +
				bits.OnesCount64(cw[j+5]^pw[j+5]) +
				bits.OnesCount64(cw[j+6]^pw[j+6]) +
				bits.OnesCount64(cw[j+7]^pw[j+7])
		}
		for ; j < len(cw); j++ {
			h += bits.OnesCount64(cw[j] ^ pw[j])
		}
		if h < best {
			best, bi = h, i
		}
	}
	return bi, best
}

// The fixed-width argmin kernels below are deliberate triplicates: Go
// generics cannot parameterize over array lengths (no common core type
// to index), and routing each row through a shared helper re-introduces
// the call overhead the specialization removes. Each variant differs
// from the others only in the array width.

func nearest16(flat []uint64, probe *[16]uint64, lo, hi int) (int, int) {
	best, bi := 16*64+1, lo
	for i := lo; i < hi; i++ {
		cw := (*[16]uint64)(flat[i*16 : i*16+16])
		var h int
		for j := 0; j < 16; j += 8 {
			h += bits.OnesCount64(cw[j]^probe[j]) +
				bits.OnesCount64(cw[j+1]^probe[j+1]) +
				bits.OnesCount64(cw[j+2]^probe[j+2]) +
				bits.OnesCount64(cw[j+3]^probe[j+3]) +
				bits.OnesCount64(cw[j+4]^probe[j+4]) +
				bits.OnesCount64(cw[j+5]^probe[j+5]) +
				bits.OnesCount64(cw[j+6]^probe[j+6]) +
				bits.OnesCount64(cw[j+7]^probe[j+7])
		}
		if h < best {
			best, bi = h, i
		}
	}
	return bi, best
}

func nearest24(flat []uint64, probe *[24]uint64, lo, hi int) (int, int) {
	best, bi := 24*64+1, lo
	for i := lo; i < hi; i++ {
		cw := (*[24]uint64)(flat[i*24 : i*24+24])
		var h int
		for j := 0; j < 24; j += 8 {
			h += bits.OnesCount64(cw[j]^probe[j]) +
				bits.OnesCount64(cw[j+1]^probe[j+1]) +
				bits.OnesCount64(cw[j+2]^probe[j+2]) +
				bits.OnesCount64(cw[j+3]^probe[j+3]) +
				bits.OnesCount64(cw[j+4]^probe[j+4]) +
				bits.OnesCount64(cw[j+5]^probe[j+5]) +
				bits.OnesCount64(cw[j+6]^probe[j+6]) +
				bits.OnesCount64(cw[j+7]^probe[j+7])
		}
		if h < best {
			best, bi = h, i
		}
	}
	return bi, best
}

func nearest32(flat []uint64, probe *[32]uint64, lo, hi int) (int, int) {
	best, bi := 32*64+1, lo
	for i := lo; i < hi; i++ {
		cw := (*[32]uint64)(flat[i*32 : i*32+32])
		var h int
		for j := 0; j < 32; j += 8 {
			h += bits.OnesCount64(cw[j]^probe[j]) +
				bits.OnesCount64(cw[j+1]^probe[j+1]) +
				bits.OnesCount64(cw[j+2]^probe[j+2]) +
				bits.OnesCount64(cw[j+3]^probe[j+3]) +
				bits.OnesCount64(cw[j+4]^probe[j+4]) +
				bits.OnesCount64(cw[j+5]^probe[j+5]) +
				bits.OnesCount64(cw[j+6]^probe[j+6]) +
				bits.OnesCount64(cw[j+7]^probe[j+7])
		}
		if h < best {
			best, bi = h, i
		}
	}
	return bi, best
}

// hammingWords is the plain popcount distance over two equal-length word
// slices, the per-probe scan kernel.
func hammingWords(a, b []uint64) int {
	var h int
	for i := range a {
		h += bits.OnesCount64(a[i] ^ b[i])
	}
	return h
}

// Vector returns a copy of stored item i.
func (m *ItemMemory) Vector(i int) *Binary {
	out := NewBinary(m.dim)
	copy(out.words, m.row(i))
	return out
}

// Label returns the label of item i.
func (m *ItemMemory) Label(i int) string { return m.labels[i] }

// Bytes returns the packed storage footprint of all stored vectors.
func (m *ItemMemory) Bytes() int { return len(m.flat) * 8 }
