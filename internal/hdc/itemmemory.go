package hdc

import "fmt"

// ItemMemory is an associative memory over labeled hypervectors: the
// classic HDC classifier readout. Query returns the stored item with the
// highest similarity to a probe vector. The paper's similarity kernel is
// the real-valued analogue of this structure; ItemMemory provides the
// packed binary variant used on the edge-inference path
// (examples/edge_profile) where similarity is XOR + popcount.
type ItemMemory struct {
	labels  []string
	vectors []*Binary
	dim     int
}

// NewItemMemory returns an empty item memory for dimension d.
func NewItemMemory(d int) *ItemMemory {
	if d <= 0 {
		panic(fmt.Sprintf("hdc.NewItemMemory: non-positive dimension %d", d))
	}
	return &ItemMemory{dim: d}
}

// Store adds a labeled vector. Dimensions must match the memory.
func (m *ItemMemory) Store(label string, v *Binary) {
	checkDims("ItemMemory.Store", m.dim, v.Dim())
	m.labels = append(m.labels, label)
	m.vectors = append(m.vectors, v.Clone())
}

// Len returns the number of stored items.
func (m *ItemMemory) Len() int { return len(m.vectors) }

// Query returns the label and index of the stored vector nearest to probe
// (minimum Hamming distance), along with that distance. Ties resolve to
// the lowest index. Querying an empty memory panics.
func (m *ItemMemory) Query(probe *Binary) (label string, index, distance int) {
	if len(m.vectors) == 0 {
		panic("hdc.ItemMemory.Query: empty memory")
	}
	checkDims("ItemMemory.Query", m.dim, probe.Dim())
	best, bi := m.vectors[0].Hamming(probe), 0
	for i := 1; i < len(m.vectors); i++ {
		if h := m.vectors[i].Hamming(probe); h < best {
			best, bi = h, i
		}
	}
	return m.labels[bi], bi, best
}

// QueryTopK returns the indices of the k nearest stored vectors in
// ascending distance order (ties by index).
func (m *ItemMemory) QueryTopK(probe *Binary, k int) []int {
	if k <= 0 || k > len(m.vectors) {
		panic(fmt.Sprintf("hdc.ItemMemory.QueryTopK: k=%d with %d items", k, len(m.vectors)))
	}
	type cand struct{ idx, dist int }
	cands := make([]cand, len(m.vectors))
	for i, v := range m.vectors {
		cands[i] = cand{i, v.Hamming(probe)}
	}
	// Selection by repeated minimum keeps this dependency-free and is fine
	// for the class counts involved (≤ a few hundred).
	out := make([]int, 0, k)
	used := make([]bool, len(cands))
	for n := 0; n < k; n++ {
		best := -1
		for i, c := range cands {
			if used[i] {
				continue
			}
			if best == -1 || c.dist < cands[best].dist {
				best = i
			}
		}
		used[best] = true
		out = append(out, cands[best].idx)
	}
	return out
}

// Label returns the label of item i.
func (m *ItemMemory) Label(i int) string { return m.labels[i] }

// Bytes returns the packed storage footprint of all stored vectors.
func (m *ItemMemory) Bytes() int {
	var b int
	for _, v := range m.vectors {
		b += v.Bytes()
	}
	return b
}
