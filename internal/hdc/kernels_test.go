package hdc

import (
	"math/rand"
	"testing"
)

// naivePermute is the former per-bit rotation, kept as the reference the
// word-level implementation must reproduce.
func naivePermute(b *Binary, k int) *Binary {
	out := NewBinary(b.Dim())
	d := b.Dim()
	k = ((k % d) + d) % d
	for i := 0; i < d; i++ {
		out.SetBit((i+k)%d, b.Bit(i))
	}
	return out
}

func TestBinaryPermuteMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{1, 63, 64, 65, 128, 1000, 1536}
	shifts := []int{0, 1, 17, 63, 64, 65, 127, 128, 999, -1, -64, -65, 100000}
	for _, d := range dims {
		v := NewRandomBinary(rng, d)
		for _, k := range shifts {
			got := v.Permute(k)
			want := naivePermute(v, k)
			if got.Hamming(want) != 0 {
				t.Fatalf("Permute(d=%d, k=%d) diverged from per-bit reference", d, k)
			}
		}
	}
}

func TestBinaryPermuteIntoRejectsAliasing(t *testing.T) {
	v := NewRandomBinary(rand.New(rand.NewSource(1)), 128)
	defer func() {
		if recover() == nil {
			t.Fatal("PermuteInto accepted dst aliasing the receiver")
		}
	}()
	v.PermuteInto(3, v)
}

func TestBinaryXorInto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewRandomBinary(rng, 777)
	b := NewRandomBinary(rng, 777)
	dst := NewBinary(777)
	a.XorInto(b, dst)
	if dst.Hamming(a.Xor(b)) != 0 {
		t.Fatal("XorInto disagrees with Xor")
	}
	// Aliasing the destination with an operand is allowed.
	want := a.Xor(b)
	a.XorInto(b, a)
	if a.Hamming(want) != 0 {
		t.Fatal("XorInto with dst aliasing receiver diverged")
	}
}

func TestBipolarBindIntoAndPermuteInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewRandomBipolar(rng, 501)
	b := NewRandomBipolar(rng, 501)
	dst := make(Bipolar, 501)
	a.BindInto(b, dst)
	if dst.Hamming(a.Bind(b)) != 0 {
		t.Fatal("BindInto disagrees with Bind")
	}
	a.PermuteInto(37, dst)
	if dst.Hamming(a.Permute(37)) != 0 {
		t.Fatal("PermuteInto disagrees with Permute")
	}
}

func TestItemMemoryDistancesInto(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const d, n = 320, 23
	im := NewItemMemory(d)
	vs := make([]*Binary, n)
	for i := range vs {
		vs[i] = NewRandomBinary(rng, d)
		im.Store("x", vs[i])
	}
	probe := NewRandomBinary(rng, d)
	dst := make([]int, n)
	im.DistancesInto(probe, 0, n, dst)
	for i, v := range vs {
		if dst[i] != v.Hamming(probe) {
			t.Fatalf("DistancesInto[%d] = %d, want %d", i, dst[i], v.Hamming(probe))
		}
	}
	// A sub-range lands at offset 0 of dst.
	sub := make([]int, 5)
	im.DistancesInto(probe, 7, 12, sub)
	for i := 0; i < 5; i++ {
		if sub[i] != dst[7+i] {
			t.Fatalf("sub-range distance %d = %d, want %d", i, sub[i], dst[7+i])
		}
	}
}

func TestItemMemoryVectorIsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := NewItemMemory(128)
	v := NewRandomBinary(rng, 128)
	im.Store("a", v)
	got := im.Vector(0)
	if got.Hamming(v) != 0 {
		t.Fatal("Vector(0) differs from stored vector")
	}
	got.SetBit(0, 1-got.Bit(0))
	if im.Vector(0).Hamming(v) != 0 {
		t.Fatal("mutating the returned vector leaked into the memory")
	}
}

// QueryTopK must keep the documented ascending-distance, tie-by-index
// order now that selection goes through a single sort.
func TestItemMemoryTopKTieOrder(t *testing.T) {
	im := NewItemMemory(64)
	base := NewBinary(64)
	mk := func(nbits int) *Binary {
		v := base.Clone()
		for i := 0; i < nbits; i++ {
			v.SetBit(i, 1)
		}
		return v
	}
	// Distances from base: 2, 1, 2, 0, 1 → order 3, 1, 4, 0, 2.
	for _, n := range []int{2, 1, 2, 0, 1} {
		im.Store("x", mk(n))
	}
	got := im.QueryTopK(base, 5)
	want := []int{3, 1, 4, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QueryTopK order = %v, want %v", got, want)
		}
	}
}

// NearestInRange dispatches to fixed-width kernels for common word
// counts; every specialization and the generic fallback must agree with
// the plain per-probe Query across dimensions, ties included.
func TestNearestInRangeMatchesQueryAcrossDims(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, d := range []int{64, 512, 1000, 1024, 1536, 2048} {
		im := NewItemMemory(d)
		const n = 41
		for c := 0; c < n; c++ {
			im.Store("x", NewRandomBinary(rng, d))
		}
		// A duplicated item forces an exact tie that must resolve low.
		im.Store("dup", im.Vector(5))
		for trial := 0; trial < 20; trial++ {
			probe := NewRandomBinary(rng, d)
			_, wantIdx, wantDist := im.Query(probe)
			gotIdx, gotDist := im.NearestInRange(probe, 0, im.Len())
			if gotIdx != wantIdx || gotDist != wantDist {
				t.Fatalf("d=%d: NearestInRange = (%d, %d), Query = (%d, %d)",
					d, gotIdx, gotDist, wantIdx, wantDist)
			}
			// Sub-ranges agree with a DistancesInto scan of the same range.
			lo, hi := 7, 29
			dists := make([]int, hi-lo)
			im.DistancesInto(probe, lo, hi, dists)
			bIdx, bDist := im.NearestInRange(probe, lo, hi)
			wIdx, wDist := lo, dists[0]
			for i, h := range dists {
				if h < wDist {
					wIdx, wDist = lo+i, h
				}
			}
			if bIdx != wIdx || bDist != wDist {
				t.Fatalf("d=%d range [%d,%d): NearestInRange = (%d, %d), want (%d, %d)",
					d, lo, hi, bIdx, bDist, wIdx, wDist)
			}
		}
	}
}
