// Package imc simulates the in-memory-computing deployment the paper's
// outlook (§V) proposes: offloading the stationary binary attribute
// encoder weights and the similarity-kernel matrix-vector products to an
// analog non-von-Neumann accelerator such as the PCM-based Hermes core
// [37] or a digital always-on HDC accelerator [38].
//
// The model captures the three dominant analog non-idealities:
//
//   - programming noise: each stored conductance deviates from its
//     target by a Gaussian proportional to the conductance range;
//   - read noise: every matrix-vector product adds fresh Gaussian noise
//     per output line;
//   - ADC quantization: outputs are clipped and uniformly quantized to
//     a configurable bit width.
//
// The point of the simulation — and of the paper's architecture — is
// that the HDC similarity readout tolerates these corruptions: class
// predictions survive noise levels that would cripple exact arithmetic.
// BenchmarkIMCRobustness and examples/edge_profile quantify it.
package imc

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// Config describes the analog array non-idealities.
type Config struct {
	// ProgNoise is the std of programming error relative to the full
	// conductance range (typical PCM: 0.02–0.08).
	ProgNoise float64
	// ReadNoise is the std of per-MVM additive output noise relative to
	// the maximum ideal output magnitude.
	ReadNoise float64
	// ADCBits is the output quantizer resolution; 0 disables quantization.
	ADCBits int
	// Seed drives the programming-noise draw (fixed at Program time) and
	// the read-noise stream.
	Seed int64
}

// Ideal returns a configuration with no non-idealities, for A/B testing.
func Ideal() Config { return Config{} }

// TypicalPCM returns non-idealities representative of a PCM crossbar of
// the Hermes-core class [37].
func TypicalPCM() Config {
	return Config{ProgNoise: 0.04, ReadNoise: 0.02, ADCBits: 8, Seed: 1}
}

// StochasticRead reports whether MVM outputs depend on the order reads
// are issued: per-MVM read noise consumes a shared per-array stream, so
// concurrent or reordered reads see different draws. Programming noise
// does not count — it is fixed at Program time from the config seed,
// independent of use order.
func (c Config) StochasticRead() bool { return c.ReadNoise > 0 }

// Crossbar is a weight matrix programmed into a simulated analog array.
// The programmed (noisy) conductances are drawn once at Program time —
// exactly like device programming — while read noise is fresh per MVM.
// A Crossbar is safe for concurrent MVMs: the read-noise stream is the
// only mutable state and is drawn under a mutex. Sequential callers see
// a deterministic stream per seed; concurrent callers interleave draws
// nondeterministically, exactly like concurrent reads of a physical
// array.
type Crossbar struct {
	cfg        Config
	programmed *tensor.Tensor // [rows, cols] with programming noise baked in
	scale      float32        // max |w| of the ideal matrix

	// packedT lazily caches the programmed matrix transpose-packed for
	// the register-blocked GEMM the batched MVM path runs on (the
	// digital model of a parallel analog read). The programmed
	// conductances are immutable after Program, so the pack never
	// invalidates.
	packedT atomic.Pointer[tensor.PackedB]

	mu      sync.Mutex // guards readRng
	readRng *rand.Rand
}

// Program stores the weight matrix w [rows, cols] into a new crossbar,
// applying programming noise.
func Program(w *tensor.Tensor, cfg Config) *Crossbar {
	if w.Rank() != 2 {
		panic(fmt.Sprintf("imc.Program: want rank-2 weights, have %v", w.Shape()))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mn, mx := w.MinMax()
	scale := float32(math.Max(math.Abs(float64(mn)), math.Abs(float64(mx))))
	if scale == 0 {
		scale = 1
	}
	prog := w.Clone()
	if cfg.ProgNoise > 0 {
		for i := range prog.Data {
			prog.Data[i] += scale * float32(rng.NormFloat64()*cfg.ProgNoise)
		}
	}
	return &Crossbar{
		cfg:        cfg,
		programmed: prog,
		scale:      scale,
		readRng:    rand.New(rand.NewSource(cfg.Seed + 1)),
	}
}

// Rows returns the number of stored rows (output lines).
func (c *Crossbar) Rows() int { return c.programmed.Dim(0) }

// Cols returns the input dimension.
func (c *Crossbar) Cols() int { return c.programmed.Dim(1) }

// MatVec performs one analog matrix-vector product W·x with read noise
// and ADC quantization applied to the output.
func (c *Crossbar) MatVec(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 1 || x.Dim(0) != c.Cols() {
		panic(fmt.Sprintf("imc.MatVec: input %v incompatible with crossbar %dx%d",
			x.Shape(), c.Rows(), c.Cols()))
	}
	out := tensor.MatVec(c.programmed, x)
	c.corrupt(out, x)
	return out
}

// MatMulT computes X·Wᵀ for a batch X [n, cols] → [n, rows], applying
// read noise and quantization per row — the batched similarity-kernel
// call pattern.
func (c *Crossbar) MatMulT(x *tensor.Tensor) *tensor.Tensor {
	return c.MatMulTInto(tensor.New(x.Dim(0), c.Rows()), x)
}

// MatMulTInto is MatMulT writing into the caller's dst [n, rows] without
// allocating — the steady-state path of the inference engine's crossbar
// backend. The ideal products run through the packed register-blocked
// GEMM over a cached transpose-packed tile of the programmed matrix
// (one analog array computes all its output lines at once; the digital
// model may too — FloatBackend uses the same kernel, which is what
// keeps the ideal crossbar bit-identical to the float reference). The
// noise stream consumption is identical to MatMulT (one corrupt pass
// per probe row, in row order), so seeded noisy runs stay reproducible.
func (c *Crossbar) MatMulTInto(dst, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != c.Cols() {
		panic(fmt.Sprintf("imc.MatMulT: input %v incompatible with crossbar %dx%d",
			x.Shape(), c.Rows(), c.Cols()))
	}
	pb := c.packedT.Load()
	if pb == nil {
		// Concurrent builders produce identical packs; one wins.
		pb = tensor.PackBT(c.programmed)
		c.packedT.Store(pb)
	}
	tensor.GemmInto(dst, x, nil, tensor.GemmOpts{PB: pb})
	for r := 0; r < dst.Dim(0); r++ {
		c.corruptRow(dst.Row(r), x.Row(r))
	}
	return dst
}

// corrupt applies read noise and ADC quantization in place. The noise
// and clipping ranges are referenced to the worst-case ideal output
// magnitude scale·‖x‖₁, the physically meaningful full-scale range.
func (c *Crossbar) corrupt(out *tensor.Tensor, x *tensor.Tensor) {
	c.corruptRow(out.Data, x.Data)
}

// corruptRow is corrupt on raw slices (one output line set, one probe).
func (c *Crossbar) corruptRow(out, x []float32) {
	var l1 float64
	for _, v := range x {
		l1 += math.Abs(float64(v))
	}
	full := float64(c.scale) * l1
	if full == 0 {
		return
	}
	if c.cfg.ReadNoise > 0 {
		c.mu.Lock()
		for i := range out {
			out[i] += float32(c.readRng.NormFloat64() * c.cfg.ReadNoise * full)
		}
		c.mu.Unlock()
	}
	if c.cfg.ADCBits > 0 {
		levels := float64(int(1) << uint(c.cfg.ADCBits))
		step := 2 * full / levels
		for i := range out {
			v := math.Max(-full, math.Min(full, float64(out[i])))
			out[i] = float32(math.Round(v/step) * step)
		}
	}
}

// SimilarityKernel computes the HDC-ZSC similarity logits with the class
// embedding matrix resident in the crossbar: cos(x, W_r)/K per output
// line, using analog MVMs for the dot products. Row norms are taken from
// the *programmed* matrix (they would be calibrated once on-device).
type SimilarityKernel struct {
	bar      *Crossbar
	rowNorms *tensor.Tensor
	K        float32
}

// NewSimilarityKernel programs the class-embedding matrix phi [C, d]
// into an array and returns the analog similarity kernel with
// temperature k.
func NewSimilarityKernel(phi *tensor.Tensor, k float32, cfg Config) *SimilarityKernel {
	if k <= 0 {
		panic("imc.NewSimilarityKernel: temperature must be positive")
	}
	bar := Program(phi, cfg)
	return &SimilarityKernel{bar: bar, rowNorms: tensor.RowNorms(bar.programmed), K: k}
}

// NewSimilarityKernelRows programs only rows [lo, hi) of phi into an
// array: one tile of a sharded deployment where the class memory is split
// across several physical crossbars and queried in parallel (the infer
// engine's crossbar backend). Each tile strides its noise seed by twice
// the row offset — Program consumes two consecutive seeds (programming
// at Seed, read noise at Seed+1), so a stride of one would alias
// adjacent width-1 tiles' streams — keeping distinct tiles on
// independent noise streams and a given shard layout deterministic.
func NewSimilarityKernelRows(phi *tensor.Tensor, lo, hi int, k float32, cfg Config) *SimilarityKernel {
	if phi.Rank() != 2 {
		panic(fmt.Sprintf("imc.NewSimilarityKernelRows: want rank-2 phi, have %v", phi.Shape()))
	}
	if lo < 0 || hi > phi.Dim(0) || lo >= hi {
		panic(fmt.Sprintf("imc.NewSimilarityKernelRows: bad row range [%d,%d) for %d rows", lo, hi, phi.Dim(0)))
	}
	sub := tensor.New(hi-lo, phi.Dim(1))
	for r := lo; r < hi; r++ {
		copy(sub.Row(r-lo), phi.Row(r))
	}
	cfg.Seed += int64(lo) * 2
	return NewSimilarityKernel(sub, k, cfg)
}

// Rows returns the number of class rows resident in the kernel's array.
func (s *SimilarityKernel) Rows() int { return s.bar.Rows() }

// Logits returns the [n, C] similarity logits for embeddings x [n, d].
func (s *SimilarityKernel) Logits(x *tensor.Tensor) *tensor.Tensor {
	return s.LogitsInto(tensor.New(x.Dim(0), s.Rows()), x)
}

// LogitsInto computes the similarity logits into the caller's dst
// [n, C] without allocating; dst is fully overwritten (zero where the
// cosine denominator degenerates). Noise consumption and arithmetic are
// identical to Logits.
func (s *SimilarityKernel) LogitsInto(dst, x *tensor.Tensor) *tensor.Tensor {
	s.bar.MatMulTInto(dst, x)
	d := x.Dim(1)
	for r := 0; r < dst.Dim(0); r++ {
		// Row norm computed exactly like tensor.RowNorms (float64
		// accumulation), so logits match the allocating path bit for bit.
		var sq float64
		row := x.Data[r*d : (r+1)*d]
		for _, v := range row {
			sq += float64(v) * float64(v)
		}
		xn := float32(math.Sqrt(sq))
		drow := dst.Row(r)
		for cIdx := range drow {
			den := xn * s.rowNorms.Data[cIdx] * s.K
			if den != 0 {
				drow[cIdx] /= den
			} else {
				drow[cIdx] = 0
			}
		}
	}
	return dst
}
