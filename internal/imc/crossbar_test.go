package imc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestIdealCrossbarMatchesExactMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.Randn(rng, 1, 5, 7)
	x := tensor.Randn(rng, 1, 7)
	bar := Program(w, Ideal())
	got := bar.MatVec(x)
	want := tensor.MatVec(w, x)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("ideal crossbar diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestProgrammingNoiseIsFrozenPerDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.Randn(rng, 1, 4, 6)
	cfg := Config{ProgNoise: 0.1, Seed: 3}
	bar := Program(w, cfg)
	x := tensor.Randn(rng, 1, 6)
	a := bar.MatVec(x)
	b := bar.MatVec(x)
	// No read noise configured: repeated reads of the same device must
	// agree exactly even though the device differs from the ideal.
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("programming noise must be drawn once, not per read")
		}
	}
	ideal := tensor.MatVec(w, x)
	var diff float64
	for i := range a.Data {
		diff += math.Abs(float64(a.Data[i] - ideal.Data[i]))
	}
	if diff == 0 {
		t.Fatal("programming noise had no effect")
	}
}

func TestReadNoiseVariesPerRead(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := tensor.Randn(rng, 1, 4, 6)
	bar := Program(w, Config{ReadNoise: 0.05, Seed: 5})
	x := tensor.Randn(rng, 1, 6)
	a := bar.MatVec(x)
	b := bar.MatVec(x)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("read noise must be fresh per MVM")
	}
}

func TestADCQuantizationSnapsToGrid(t *testing.T) {
	w := tensor.FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	bar := Program(w, Config{ADCBits: 4, Seed: 6})
	x := tensor.FromSlice([]float32{0.33, 0.77}, 2)
	out := bar.MatVec(x)
	// Full scale = scale·‖x‖₁ = 1·1.1; step = 2·1.1/16.
	step := 2 * 1.1 / 16
	for _, v := range out.Data {
		q := float64(v) / step
		if math.Abs(q-math.Round(q)) > 1e-5 {
			t.Fatalf("output %v not on the ADC grid (step %v)", v, step)
		}
	}
}

func TestADCFewBitsLosesPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := tensor.Randn(rng, 1, 8, 16)
	x := tensor.Randn(rng, 1, 16)
	exact := tensor.MatVec(w, x)
	errAt := func(bits int) float64 {
		bar := Program(w, Config{ADCBits: bits, Seed: 8})
		out := bar.MatVec(x)
		var e float64
		for i := range out.Data {
			e += math.Abs(float64(out.Data[i] - exact.Data[i]))
		}
		return e
	}
	if errAt(2) <= errAt(10) {
		t.Fatal("2-bit ADC should be strictly worse than 10-bit")
	}
}

func TestMatMulTBatchesMatchMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := tensor.Randn(rng, 1, 3, 5)
	bar := Program(w, Ideal())
	x := tensor.Randn(rng, 1, 4, 5)
	batch := bar.MatMulT(x)
	for r := 0; r < 4; r++ {
		row := bar.MatVec(tensor.FromSlice(append([]float32(nil), x.Row(r)...), 5))
		for c := 0; c < 3; c++ {
			if math.Abs(float64(batch.At(r, c)-row.Data[c])) > 1e-5 {
				t.Fatalf("batched MVM diverges at (%d,%d)", r, c)
			}
		}
	}
}

func TestSimilarityKernelIdealMatchesCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	phi := tensor.Randn(rng, 1, 6, 12)
	x := tensor.Randn(rng, 1, 3, 12)
	k := NewSimilarityKernel(phi, 0.5, Ideal())
	got := k.Logits(x)
	want := tensor.Scale(tensor.CosineSimilarityMatrix(x, phi), 2) // 1/K = 2
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("ideal analog kernel diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// The HDC robustness claim: nearest-class readout over quasi-orthogonal
// embeddings survives typical PCM noise almost unchanged.
func TestClassificationSurvivesTypicalPCMNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const classes, d = 20, 512
	phi := tensor.Rademacher(rng, classes, d)
	// Queries: noisy versions of class embeddings.
	const perClass = 5
	x := tensor.New(classes*perClass, d)
	labels := make([]int, classes*perClass)
	for c := 0; c < classes; c++ {
		for q := 0; q < perClass; q++ {
			i := c*perClass + q
			labels[i] = c
			copy(x.Row(i), phi.Row(c))
			for j := 0; j < d/10; j++ { // 10 % component corruption
				p := rng.Intn(d)
				x.Row(i)[p] = -x.Row(i)[p]
			}
		}
	}
	acc := func(cfg Config) float64 {
		k := NewSimilarityKernel(phi, 1, cfg)
		logits := k.Logits(x)
		hits := 0
		for i, y := range tensor.ArgMax(logits) {
			if y == labels[i] {
				hits++
			}
		}
		return float64(hits) / float64(len(labels))
	}
	ideal := acc(Ideal())
	pcm := acc(TypicalPCM())
	if ideal < 0.99 {
		t.Fatalf("ideal readout accuracy %v, expected ≈1", ideal)
	}
	if pcm < ideal-0.05 {
		t.Fatalf("typical PCM noise broke the readout: %v vs ideal %v", pcm, ideal)
	}
}

func TestProgramPanicsOnBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Program accepted rank-1 weights")
		}
	}()
	Program(tensor.New(4), Ideal())
}

func TestMatVecPanicsOnBadInput(t *testing.T) {
	bar := Program(tensor.New(2, 3), Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("MatVec accepted wrong input size")
		}
	}()
	bar.MatVec(tensor.New(4))
}

// A row-range tile under ideal conditions must reproduce exactly the
// corresponding logit columns of a full-matrix kernel.
func TestSimilarityKernelRowsMatchesFullIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const classes, d = 17, 256
	phi := tensor.Rademacher(rng, classes, d)
	x := tensor.Randn(rng, 1, 5, d)
	full := NewSimilarityKernel(phi, 0.5, Ideal()).Logits(x)
	for _, rng := range [][2]int{{0, 6}, {6, 12}, {12, classes}} {
		tile := NewSimilarityKernelRows(phi, rng[0], rng[1], 0.5, Ideal())
		if tile.Rows() != rng[1]-rng[0] {
			t.Fatalf("tile Rows() = %d, want %d", tile.Rows(), rng[1]-rng[0])
		}
		got := tile.Logits(x)
		for r := 0; r < 5; r++ {
			for c := rng[0]; c < rng[1]; c++ {
				if got.At(r, c-rng[0]) != full.At(r, c) {
					t.Fatalf("tile [%d,%d) logit (%d,%d) = %v, want %v",
						rng[0], rng[1], r, c, got.At(r, c-rng[0]), full.At(r, c))
				}
			}
		}
	}
}

func TestSimilarityKernelRowsBadRangePanics(t *testing.T) {
	phi := tensor.Rademacher(rand.New(rand.NewSource(1)), 4, 32)
	defer func() {
		if recover() == nil {
			t.Fatal("NewSimilarityKernelRows accepted an empty range")
		}
	}()
	NewSimilarityKernelRows(phi, 2, 2, 1, Ideal())
}
