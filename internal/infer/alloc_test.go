package infer

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/tensor"
)

// TestEngineQueryZeroAlloc pins the steady-state allocation contract of
// the buffered query path on all three backends: after one warm-up call
// (which sizes the pooled shard scratch and the caller's ResultBuf),
// QueryInto allocates nothing. Engines run single-shard — the per-query
// goroutine fan-out of a multi-shard engine inherently allocates its
// spawn bookkeeping, and one shard is the serving posture on small hosts.
func TestEngineQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI")
	}
	rng := rand.New(rand.NewSource(3))
	const classes, probes, d = 40, 16, 512

	phi := tensor.Rademacher(rng, classes, d)
	mem := hdc.NewItemMemory(d)
	for c := 0; c < classes; c++ {
		mem.Store(fmt.Sprintf("c%d", c), hdc.NewRandomBinary(rng, d))
	}

	dense := DenseBatch(tensor.Randn(rng, 1, probes, d))
	dense.DenseNorms() // cosine denominators, computed once per batch
	packed := PackedBatch(func() []*hdc.Binary {
		vs := make([]*hdc.Binary, probes)
		for i := range vs {
			vs[i] = hdc.NewRandomBinary(rng, d)
		}
		return vs
	}())

	cases := []struct {
		name  string
		eng   *Engine
		batch *Batch
	}{
		{"float", New(NewFloatBackend(phi, nil, 0.05), WithWorkers(1)), dense},
		{"binary", New(NewBinaryBackend(mem), WithWorkers(1)), packed},
		{"imc", New(NewCrossbarBackend(phi, nil, 0.05, imc.TypicalPCM()), WithWorkers(1)), dense},
	}
	for _, tc := range cases {
		for _, k := range []int{1, 5} {
			t.Run(fmt.Sprintf("%s/k=%d", tc.name, k), func(t *testing.T) {
				var buf ResultBuf
				tc.eng.QueryInto(tc.batch, k, &buf) // warm pools and buffer
				avg := testing.AllocsPerRun(50, func() {
					tc.eng.QueryInto(tc.batch, k, &buf)
				})
				if avg != 0 {
					t.Fatalf("QueryInto allocates %.1f objects per call in steady state, want 0", avg)
				}
			})
		}
	}
}

// TestQueryIntoMatchesQuery pins that the buffered path returns the
// exact results of the allocating path.
func TestQueryIntoMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	phi := tensor.Rademacher(rng, 23, 64)
	eng := New(NewFloatBackend(phi, nil, 0.1), WithWorkers(2))
	batch := DenseBatch(tensor.Randn(rng, 1, 9, 64))

	want := eng.Query(batch, 4)
	var buf ResultBuf
	for round := 0; round < 3; round++ { // buffer reuse must not corrupt
		got := eng.QueryInto(batch, 4, &buf)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d results, want %d", round, len(got), len(want))
		}
		for p := range want {
			for i := range want[p].TopK {
				if got[p].TopK[i] != want[p].TopK[i] {
					t.Fatalf("round %d: probe %d hit %d = %+v, want %+v",
						round, p, i, got[p].TopK[i], want[p].TopK[i])
				}
			}
		}
	}
}
