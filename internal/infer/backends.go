package infer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/tensor"
)

// checkLabels validates an optional label set against the class count and
// fills in positional defaults when nil.
func checkLabels(labels []string, classes int, who string) []string {
	if labels == nil {
		labels = make([]string, classes)
		for i := range labels {
			labels[i] = fmt.Sprintf("class%d", i)
		}
	}
	if len(labels) != classes {
		panic(fmt.Sprintf("infer.%s: %d labels for %d classes", who, len(labels), classes))
	}
	return labels
}

// --- Float backend -------------------------------------------------------

// FloatBackend is the reference real-valued path: cosine similarity
// against a frozen class-embedding matrix, scaled by 1/K — the
// evaluation-time semantics of core.SimilarityKernel. The batch dot
// products run through the packed register-blocked GEMM over a cached
// transpose-packed tile of the class memory per shard range (the same
// kernel and accumulation order the noise-free crossbar path uses, so
// an ideal crossbar built from the same matrix still produces
// bit-identical scores — see imc.Crossbar.MatMulTInto).
type FloatBackend struct {
	phi    *tensor.Tensor // [C, d] frozen class embeddings
	norms  *tensor.Tensor // row norms of phi
	labels []string
	k      float32

	// caches holds the per-shard packed ϕᵀ tiles and per-shape logits
	// pools behind one atomic pointer to an immutable snapshot (the
	// copy-on-write idiom of nn's compiledState): shard ranges and batch
	// shapes stabilize after the first queries, so the steady-state read
	// path is lock-free — concurrent ScoreShard calls never contend on a
	// mutex for a write-once cache. Misses take mu, copy, and publish.
	mu     sync.Mutex
	caches atomic.Pointer[floatCaches]
}

// floatCaches is one immutable cache snapshot of a FloatBackend.
type floatCaches struct {
	packs    map[[2]int]*tensor.PackedB // per shard range [lo, hi): packed ϕᵀ tile
	dstPools map[[2]int]*sync.Pool      // per [probes, width]: pooled logits tensors
}

// NewFloatBackend wraps frozen class embeddings phi [C, d] with optional
// labels (nil → positional) and temperature k.
func NewFloatBackend(phi *tensor.Tensor, labels []string, k float32) *FloatBackend {
	if phi.Rank() != 2 {
		panic(fmt.Sprintf("infer.NewFloatBackend: want rank-2 phi, have %v", phi.Shape()))
	}
	if k <= 0 {
		panic("infer.NewFloatBackend: temperature must be positive")
	}
	return &FloatBackend{
		phi:    phi,
		norms:  tensor.RowNorms(phi),
		labels: checkLabels(labels, phi.Dim(0), "NewFloatBackend"),
		k:      k,
	}
}

// NewFloatBackendView wraps phi with caller-computed row norms instead
// of recomputing them — the incremental path of the versioned class
// memory, which appends one norm per enrolled row rather than
// renormalizing every epoch. prev, when non-nil, must be the backend of
// an earlier epoch viewing a row prefix of the same backing slab: its
// packed ϕᵀ tiles for ranges that lie entirely inside that prefix are
// still byte-valid (rows are immutable once published) and are carried
// into the new backend's cache, along with all shape-keyed logits
// pools, so an epoch flip re-packs only ranges that gained rows.
func NewFloatBackendView(phi, norms *tensor.Tensor, labels []string, k float32, prev *FloatBackend) *FloatBackend {
	if phi.Rank() != 2 {
		panic(fmt.Sprintf("infer.NewFloatBackendView: want rank-2 phi, have %v", phi.Shape()))
	}
	if k <= 0 {
		panic("infer.NewFloatBackendView: temperature must be positive")
	}
	if len(norms.Data) != phi.Dim(0) {
		panic(fmt.Sprintf("infer.NewFloatBackendView: %d norms for %d rows", len(norms.Data), phi.Dim(0)))
	}
	b := &FloatBackend{
		phi:    phi,
		norms:  norms,
		labels: checkLabels(labels, phi.Dim(0), "NewFloatBackendView"),
		k:      k,
	}
	if prev != nil && prev.Dim() == phi.Dim(1) && prev.k == k {
		if pc := prev.caches.Load(); pc != nil {
			carried := &floatCaches{
				packs:    make(map[[2]int]*tensor.PackedB, len(pc.packs)),
				dstPools: make(map[[2]int]*sync.Pool, len(pc.dstPools)),
			}
			//hdc:allow determinism copy-on-write into a fresh map; key order does not affect the published caches
			for key, pb := range pc.packs {
				if key[1] <= prev.Classes() {
					carried.packs[key] = pb
				}
			}
			//hdc:allow determinism copy-on-write into a fresh map; key order does not affect the published caches
			for key, pool := range pc.dstPools {
				carried.dstPools[key] = pool
			}
			b.caches.Store(carried)
		}
	}
	return b
}

func (b *FloatBackend) Name() string       { return "float" }
func (b *FloatBackend) Classes() int       { return b.phi.Dim(0) }
func (b *FloatBackend) Dim() int           { return b.phi.Dim(1) }
func (b *FloatBackend) Label(c int) string { return b.labels[c] }

// Requires declares the dense-probe requirement, so the engine rejects
// packed-only batches at the query boundary instead of panicking here.
func (b *FloatBackend) Requires() Representation { return RepDense }

// ScoreShard computes cos(x_p, phi_c)/K for classes [lo, hi): one
// packed GEMM x·ϕ[lo:hi)ᵀ over the shard's cached weight tile, then the
// cosine normalization into the engine's float64 score rows. Steady
// state allocates nothing (cached tile, pooled logits, pooled GEMM
// workspace).
func (b *FloatBackend) ScoreShard(batch *Batch, lo, hi int, out [][]float64) {
	if batch.Dense == nil {
		panic("infer.FloatBackend: batch has no dense probes")
	}
	x := batch.Dense
	if x.Dim(1) != b.Dim() {
		panic(fmt.Sprintf("infer.FloatBackend: probe dim %d, class memory dim %d", x.Dim(1), b.Dim()))
	}
	xn := batch.DenseNorms()
	n, width := x.Dim(0), hi-lo
	pool := b.dstPool(n, width)
	dst := pool.Get().(*tensor.Tensor)
	tensor.GemmInto(dst, x, nil, tensor.GemmOpts{PB: b.pack(lo, hi)})
	for p := 0; p < n; p++ {
		drow := dst.Row(p)
		op := out[p]
		for j, dot := range drow {
			den := xn.Data[p] * b.norms.Data[lo+j] * b.k
			if den == 0 {
				op[j] = 0
				continue
			}
			op[j] = float64(dot / den)
		}
	}
	pool.Put(dst)
}

// pack returns the transpose-packed class tile for [lo, hi), building
// and publishing it on first use of that shard range. phi is frozen,
// so tiles never invalidate; hits are lock-free.
func (b *FloatBackend) pack(lo, hi int) *tensor.PackedB {
	key := [2]int{lo, hi}
	if c := b.caches.Load(); c != nil {
		if pb, ok := c.packs[key]; ok {
			return pb
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.caches.Load()
	if cur != nil {
		if pb, ok := cur.packs[key]; ok {
			return pb
		}
	}
	next := cur.cloneWith(key, tensor.PackBTRows(b.phi, lo, hi), [2]int{}, nil)
	b.caches.Store(next)
	return next.packs[key]
}

// dstPool returns the pool serving [n, width] logits tensors, creating
// and publishing it on first use of that shape; hits are lock-free.
func (b *FloatBackend) dstPool(n, width int) *sync.Pool {
	key := [2]int{n, width}
	if c := b.caches.Load(); c != nil {
		if p, ok := c.dstPools[key]; ok {
			return p
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.caches.Load()
	if cur != nil {
		if p, ok := cur.dstPools[key]; ok {
			return p
		}
	}
	pool := &sync.Pool{New: func() any { return tensor.New(n, width) }}
	next := cur.cloneWith([2]int{}, nil, key, pool)
	b.caches.Store(next)
	return next.dstPools[key]
}

// cloneWith copies the snapshot (nil receiver = empty) and adds the
// non-nil entries.
func (c *floatCaches) cloneWith(packKey [2]int, pb *tensor.PackedB, poolKey [2]int, pool *sync.Pool) *floatCaches {
	next := &floatCaches{
		packs:    map[[2]int]*tensor.PackedB{},
		dstPools: map[[2]int]*sync.Pool{},
	}
	if c != nil {
		//hdc:allow determinism copy-on-write into a fresh map; key order does not affect the published caches
		for k, v := range c.packs {
			next.packs[k] = v
		}
		//hdc:allow determinism copy-on-write into a fresh map; key order does not affect the published caches
		for k, v := range c.dstPools {
			next.dstPools[k] = v
		}
	}
	if pb != nil {
		next.packs[packKey] = pb
	}
	if pool != nil {
		next.dstPools[poolKey] = pool
	}
	return next
}

// --- Packed-binary backend -----------------------------------------------

// BinaryBackend is the edge path: XOR+popcount Hamming readout over the
// contiguous slab of an hdc.ItemMemory, with the Hamming distance mapped
// to its bipolar-cosine equivalent 1 − 2h/d so scores are comparable
// (and rankings identical, ties included) across backends.
type BinaryBackend struct {
	mem  *hdc.ItemMemory
	pool sync.Pool // *[]int distance scratch, one per in-flight shard
}

// NewBinaryBackend wraps a populated item memory. Labels come from the
// memory itself.
func NewBinaryBackend(mem *hdc.ItemMemory) *BinaryBackend {
	if mem.Len() == 0 {
		panic("infer.NewBinaryBackend: empty item memory")
	}
	return &BinaryBackend{mem: mem}
}

func (b *BinaryBackend) Name() string       { return "binary" }
func (b *BinaryBackend) Classes() int       { return b.mem.Len() }
func (b *BinaryBackend) Dim() int           { return b.mem.Dim() }
func (b *BinaryBackend) Label(c int) string { return b.mem.Label(c) }

// Requires declares the packed-probe requirement; dense-only batches
// also satisfy it via lazy sign-packing (Batch.SignPacked).
func (b *BinaryBackend) Requires() Representation { return RepPacked }

// ScoreShard streams the slab range [lo, hi) per probe through the
// non-allocating batched kernel ItemMemory.DistancesInto.
func (b *BinaryBackend) ScoreShard(batch *Batch, lo, hi int, out [][]float64) {
	probes := batch.SignPacked()
	if probes == nil {
		panic("infer.BinaryBackend: batch has no packed or dense probes")
	}
	width := hi - lo
	dp := b.distBuf(width)
	dists := (*dp)[:width]
	invD := 1 / float64(b.mem.Dim())
	for p, probe := range probes {
		b.mem.DistancesInto(probe, lo, hi, dists)
		op := out[p]
		for j, h := range dists {
			op[j] = 1 - 2*float64(h)*invD
		}
	}
	b.pool.Put(dp)
}

// distBuf pops a pooled distance buffer of at least width ints. The
// pool holds *[]int boxes so checking one out and back allocates
// nothing in steady state.
func (b *BinaryBackend) distBuf(width int) *[]int {
	var dp *[]int
	if v := b.pool.Get(); v != nil {
		dp = v.(*[]int)
	} else {
		dp = new([]int)
	}
	if cap(*dp) < width {
		*dp = make([]int, width)
	}
	return dp
}

// SelectShard is the fused ShardSelector fast path: score and select in
// one pass over the slab, never materializing the float64 score matrix.
// Top-1 queries run the single-pass fused argmin kernel; larger k reuses
// the pooled integer distance buffer.
func (b *BinaryBackend) SelectShard(batch *Batch, lo, hi, k int, cands []Hit) int {
	probes := batch.SignPacked()
	if probes == nil {
		panic("infer.BinaryBackend: batch has no packed or dense probes")
	}
	width := hi - lo
	kk := k
	if kk > width {
		kk = width
	}
	invD := 1 / float64(b.mem.Dim())
	if kk == 1 {
		for p, probe := range probes {
			idx, dist := b.mem.NearestInRange(probe, lo, hi)
			cands[p*k] = Hit{Class: idx, Score: 1 - 2*float64(dist)*invD}
		}
		return 1
	}
	dp := b.distBuf(width)
	dists := (*dp)[:width]
	for p, probe := range probes {
		b.mem.DistancesInto(probe, lo, hi, dists)
		selectTopKDist(dists, lo, invD, cands[p*k:p*k+kk])
	}
	b.pool.Put(dp)
	return kk
}

// selectTopKDist mirrors selectTopK over integer Hamming distances,
// mapping each to its bipolar-cosine score inline (monotone decreasing
// in distance, so ordering and tie-breaking match the generic path
// exactly).
func selectTopKDist(dists []int, lo int, invD float64, dst []Hit) {
	k := len(dst)
	count := 0
	for j, h := range dists {
		sc := 1 - 2*float64(h)*invD
		if count == k && sc <= dst[count-1].Score {
			continue
		}
		pos := count
		if pos == k {
			pos = k - 1
		}
		for pos > 0 && dst[pos-1].Score < sc {
			pos--
		}
		if count < k {
			count++
		}
		copy(dst[pos+1:count], dst[pos:count-1])
		dst[pos] = Hit{Class: lo + j, Score: sc}
	}
}

// --- IMC crossbar backend ------------------------------------------------

// CrossbarBackend is the analog in-memory-computing path: the class
// embedding matrix is programmed into one imc crossbar tile per shard
// (exactly the physical layout of a multi-tile accelerator), and scoring
// runs the tile's noisy MVM + cosine readout. Tiles are programmed
// lazily on first use of a shard range and cached, so programming noise
// is drawn once per tile like real device programming.
type CrossbarBackend struct {
	phi    *tensor.Tensor
	labels []string
	k      float32
	cfg    imc.Config

	mu    sync.Mutex
	tiles map[[2]int]*imc.SimilarityKernel
	// logitsPools holds per-shape pools of logits tensors, keyed by
	// [probes, shard width]: shard widths differ when the class count is
	// not divisible by the worker count, and batch sizes vary under a
	// coalescer, so a single pool would thrash between shapes. With one
	// pool per shape the steady state of ScoreShard allocates nothing.
	logitsPools map[[2]int]*sync.Pool
}

// NewCrossbarBackend wraps frozen class embeddings phi [C, d] with
// optional labels, temperature k, and the analog non-ideality config.
func NewCrossbarBackend(phi *tensor.Tensor, labels []string, k float32, cfg imc.Config) *CrossbarBackend {
	if phi.Rank() != 2 {
		panic(fmt.Sprintf("infer.NewCrossbarBackend: want rank-2 phi, have %v", phi.Shape()))
	}
	if k <= 0 {
		panic("infer.NewCrossbarBackend: temperature must be positive")
	}
	return &CrossbarBackend{
		phi:    phi,
		labels: checkLabels(labels, phi.Dim(0), "NewCrossbarBackend"),
		k:      k,
		cfg:    cfg,
		tiles:  make(map[[2]int]*imc.SimilarityKernel),
	}
}

func (b *CrossbarBackend) Name() string       { return "imc" }
func (b *CrossbarBackend) Classes() int       { return b.phi.Dim(0) }
func (b *CrossbarBackend) Dim() int           { return b.phi.Dim(1) }
func (b *CrossbarBackend) Label(c int) string { return b.labels[c] }

// Requires declares the dense-probe requirement (crossbar MVMs read
// real-valued probe rows), so packed-only batches fail at the engine
// boundary instead of deep inside the tile.
func (b *CrossbarBackend) Requires() Representation { return RepDense }

// Stochastic reports whether query scores depend on query order (analog
// read noise draws from per-tile streams). Callers that need seeded
// reproducibility — core's evaluation readout — serialize their queries
// against stochastic backends instead of fanning out.
func (b *CrossbarBackend) Stochastic() bool { return b.cfg.StochasticRead() }

// tile returns (programming on first use) the crossbar tile for [lo, hi).
func (b *CrossbarBackend) tile(lo, hi int) *imc.SimilarityKernel {
	key := [2]int{lo, hi}
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.tiles[key]
	if !ok {
		t = imc.NewSimilarityKernelRows(b.phi, lo, hi, b.k, b.cfg)
		b.tiles[key] = t
	}
	return t
}

// logitsPool returns the pool serving [n, width] logits tensors,
// creating it on first use of that shape.
func (b *CrossbarBackend) logitsPool(n, width int) *sync.Pool {
	key := [2]int{n, width}
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.logitsPools[key]
	if !ok {
		if b.logitsPools == nil {
			b.logitsPools = make(map[[2]int]*sync.Pool)
		}
		p = &sync.Pool{New: func() any { return tensor.New(n, width) }}
		b.logitsPools[key] = p
	}
	return p
}

// ScoreShard runs the shard's tile on the dense probes. The logits
// tensor comes from a per-shape pool, so the steady state allocates
// nothing.
func (b *CrossbarBackend) ScoreShard(batch *Batch, lo, hi int, out [][]float64) {
	if batch.Dense == nil {
		panic("infer.CrossbarBackend: batch has no dense probes")
	}
	n, width := batch.Dense.Dim(0), hi-lo
	pool := b.logitsPool(n, width)
	logits := pool.Get().(*tensor.Tensor)
	b.tile(lo, hi).LogitsInto(logits, batch.Dense)
	for p := 0; p < n; p++ {
		row := logits.Row(p)
		op := out[p]
		for j, v := range row {
			op[j] = float64(v)
		}
	}
	pool.Put(logits)
}
