package infer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/tensor"
)

// concurrencyFixture builds the three backends over one frozen random
// class memory plus a set of probe batches of varying sizes in both
// representations.
func concurrencyFixture(t *testing.T, classes, d, maxBatch int) ([]Backend, []*Batch) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	phi := tensor.Rademacher(rng, classes, d)
	labels := make([]string, classes)
	im := hdc.NewItemMemory(d)
	for c := 0; c < classes; c++ {
		labels[c] = fmt.Sprintf("class%d", c)
		b := hdc.NewBinary(d)
		for j, v := range phi.Row(c) {
			if v < 0 {
				b.SetBit(j, 1)
			}
		}
		im.Store(labels[c], b)
	}
	backends := []Backend{
		NewFloatBackend(phi, labels, 1),
		NewBinaryBackend(im),
		NewCrossbarBackend(phi, labels, 1, imc.Ideal()),
	}
	var batches []*Batch
	for n := 1; n <= maxBatch; n = n*2 + 1 {
		dense := tensor.Randn(rng, 1, n, d)
		b, err := NewBatch(dense, PackSign(dense))
		if err != nil {
			t.Fatalf("NewBatch: %v", err)
		}
		batches = append(batches, b)
	}
	return backends, batches
}

// One Engine shared by many goroutines must return results identical to
// the single-threaded path — hammered across all three backends, mixed
// batch sizes, and mixed k, under the race detector in CI.
func TestEngineConcurrentQueryMatchesSerial(t *testing.T) {
	const classes, d = 37, 512
	const goroutines, iters = 12, 30
	backends, batches := concurrencyFixture(t, classes, d, 24)
	ks := []int{1, 3, classes}

	for _, be := range backends {
		eng := New(be, WithWorkers(4))

		// Serial reference: every (batch, k) pair queried once, in order.
		ref := make(map[[2]int][]Result)
		for bi, batch := range batches {
			for _, k := range ks {
				ref[[2]int{bi, k}] = eng.Query(batch, k)
			}
		}

		var wg sync.WaitGroup
		errs := make(chan string, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				for it := 0; it < iters; it++ {
					bi := rng.Intn(len(batches))
					k := ks[rng.Intn(len(ks))]
					got := eng.Query(batches[bi], k)
					want := ref[[2]int{bi, k}]
					for p := range want {
						for i := range want[p].TopK {
							if got[p].TopK[i] != want[p].TopK[i] {
								errs <- fmt.Sprintf("backend %q goroutine %d batch %d k=%d probe %d rank %d: %+v, want %+v",
									be.Name(), g, bi, k, p, i, got[p].TopK[i], want[p].TopK[i])
								return
							}
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

// The noisy crossbar — the configuration cmd/hdczsc and cmd/hdcserve
// actually ship (imc.TypicalPCM) — must be safe under concurrent Query
// on one shared engine. Scores are stochastic (read-noise draws
// interleave across callers, as on a physical array), so this test
// asserts structural integrity, not score parity: the race detector in
// CI is the real assertion.
func TestEngineConcurrentNoisyCrossbar(t *testing.T) {
	const classes, d, n = 19, 256, 8
	rng := rand.New(rand.NewSource(17))
	phi := tensor.Rademacher(rng, classes, d)
	eng := New(NewCrossbarBackend(phi, nil, 1, imc.TypicalPCM()), WithWorkers(4))
	batch := DenseBatch(tensor.Randn(rng, 1, n, d))

	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 10; it++ {
				res := eng.Query(batch, 3)
				for p := range res {
					if len(res[p].TopK) != 3 {
						panic("noisy crossbar returned malformed top-k")
					}
					for i := 1; i < len(res[p].TopK); i++ {
						a, b := res[p].TopK[i-1], res[p].TopK[i]
						if a.Score < b.Score || (a.Score == b.Score && a.Class > b.Class) {
							panic("noisy crossbar result out of engine order")
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

// Concurrent queries against one engine must also hold when every caller
// uses a distinct batch object (no shared Batch lazy-init to hide
// behind) and when many callers share one large batch (the lazy
// DenseNorms/SignPacked sync.Once path).
func TestEngineConcurrentSharedBatchLazyInit(t *testing.T) {
	const classes, d, n = 19, 256, 16
	rng := rand.New(rand.NewSource(5))
	phi := tensor.Rademacher(rng, classes, d)
	im := hdc.NewItemMemory(d)
	for c := 0; c < classes; c++ {
		b := hdc.NewBinary(d)
		for j, v := range phi.Row(c) {
			if v < 0 {
				b.SetBit(j, 1)
			}
		}
		im.Store(fmt.Sprintf("class%d", c), b)
	}
	// Dense-only batch against the binary backend: every concurrent caller
	// races into Batch.SignPacked's once-guarded packing.
	eng := New(NewBinaryBackend(im), WithWorkers(3))
	batch := DenseBatch(tensor.Randn(rng, 1, n, d))
	want := eng.Query(batch, 3)
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := eng.Query(batch, 3)
			for p := range want {
				for i := range want[p].TopK {
					if got[p].TopK[i] != want[p].TopK[i] {
						panic("concurrent shared-batch query diverged")
					}
				}
			}
		}()
	}
	wg.Wait()
}
