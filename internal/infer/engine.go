package infer

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Engine executes batched queries against one Backend with the class
// memory sharded into contiguous ranges, one goroutine worker per shard.
// Each shard fills a reusable score buffer and produces its local top-k;
// the engine merges the per-shard candidate lists into globally ordered
// results. An Engine is cheap to build, holds no probe state, and is
// safe for concurrent use: every Query checks out a complete working set
// from a sync.Pool, so any number of goroutines can share one Engine
// (the serving layer in internal/serve does exactly that) while the
// steady state stays allocation-free.
type Engine struct {
	backend Backend
	workers int
	epoch   uint64
	ranges  [][2]int
	pool    sync.Pool // *queryScratch, one per in-flight Query
}

// queryScratch is the complete per-call working set: one shardScratch
// per worker plus the merge buffers. Checked out of Engine.pool at the
// top of Query and returned before the results are, so concurrent
// queries never share mutable state.
type queryScratch struct {
	shards []*shardScratch
	counts []int      // valid candidates per probe, per shard
	merged []Hit      // cross-shard merge buffer, reused per probe
	sorter HitSorter  // scratch-held sort.Interface for the merge
}

// HitLess is THE result ordering of the engine: descending score, ties
// by ascending class index. It is a total order whenever the class
// indices in play are distinct, which is why the scatter-gather merge —
// in-process across shard workers and cross-process across shard
// servers (internal/dist) — is byte-identical regardless of how the
// class memory is partitioned or in which order candidate lists are
// concatenated.
func HitLess(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Class < b.Class
}

// HitSorter is a scratch-held sort.Interface over the engine ordering
// (HitLess). Merge loops keep one per working set and sort through
// sort.Sort on the reused pointer instead of sort.Slice, which would
// box a fresh slice header and closure on every probe. The distributed
// router reuses it so the cross-process merge is the same code path.
type HitSorter struct{ H []Hit }

func (s *HitSorter) Len() int           { return len(s.H) }
func (s *HitSorter) Swap(a, b int)      { s.H[a], s.H[b] = s.H[b], s.H[a] }
func (s *HitSorter) Less(a, b int) bool { return HitLess(s.H[a], s.H[b]) }

// SortHits sorts hits into the engine ordering. Convenience for cold
// paths and tests; hot merge loops hold a HitSorter instead.
func SortHits(h []Hit) {
	s := HitSorter{H: h}
	sort.Sort(&s)
}

// shardScratch is the per-shard reusable working set: the score matrix
// rows handed to Backend.ScoreShard and the local top-k candidates.
type shardScratch struct {
	flat   []float64   // backing array for scores, n*width
	scores [][]float64 // row views into flat
	cands  []Hit       // n*k local candidates, kk valid per probe
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers overrides the worker/shard count (default
// runtime.NumCPU(), capped at the class count).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithEpoch stamps the engine with the class-memory epoch it was built
// from (classmem.Versioned publishes epoch e as the base memory plus e
// enrolled classes). The engine itself is immutable either way; the
// stamp is how the serving layer tags each ranking with the memory
// version that produced it, the exact analogue of Param.Version keying
// packed weight panels.
func WithEpoch(e uint64) Option {
	return func(eng *Engine) { eng.epoch = e }
}

// New builds an engine over backend. The class memory is split into
// `workers` contiguous shards of near-equal width. It panics on an empty
// class set; NewChecked is the error-returning variant for callers that
// may legitimately see degenerate inputs.
func New(backend Backend, opts ...Option) *Engine {
	e, err := NewChecked(backend, opts...)
	if err != nil {
		panic("infer.New: " + err.Error())
	}
	return e
}

// NewChecked builds an engine over backend like New but reports an empty
// class set as ErrNoClasses instead of panicking — the path serving
// layers and degenerate evaluation splits take.
func NewChecked(backend Backend, opts ...Option) (*Engine, error) {
	e := &Engine{backend: backend, workers: runtime.NumCPU()}
	for _, opt := range opts {
		opt(e)
	}
	c := backend.Classes()
	if c <= 0 {
		return nil, fmt.Errorf("%w (backend %q)", ErrNoClasses, backend.Name())
	}
	if e.workers < 1 {
		e.workers = 1
	}
	if e.workers > c {
		e.workers = c
	}
	e.ranges = SplitRanges(c, e.workers)
	e.pool.New = func() any {
		qs := &queryScratch{
			shards: make([]*shardScratch, e.workers),
			counts: make([]int, e.workers),
		}
		for i := range qs.shards {
			qs.shards[i] = &shardScratch{}
		}
		return qs
	}
	return e, nil
}

// SplitRanges partitions [0, classes) into `shards` contiguous
// near-equal ranges: the first (classes % shards) ranges get one extra
// class. This is the canonical class-space split — the in-process
// engine shards with it, and distributed shard layouts built with the
// same rule line up exactly with the single-process reference.
func SplitRanges(classes, shards int) [][2]int {
	if shards < 1 {
		shards = 1
	}
	if shards > classes {
		shards = classes
	}
	ranges := make([][2]int, 0, shards)
	base, extra := classes/shards, classes%shards
	lo := 0
	for i := 0; i < shards; i++ {
		w := base
		if i < extra {
			w++
		}
		ranges = append(ranges, [2]int{lo, lo + w})
		lo += w
	}
	return ranges
}

// Backend returns the engine's backend.
func (e *Engine) Backend() Backend { return e.backend }

// Workers returns the number of shard workers.
func (e *Engine) Workers() int { return e.workers }

// Epoch returns the class-memory epoch the engine was built from (0 for
// a frozen memory never enrolled into). Both *Engine and the
// distributed router satisfy `interface{ Epoch() uint64 }`, which is
// how the serving layer reads the tag without widening the Querier
// seam.
func (e *Engine) Epoch() uint64 { return e.epoch }

// Name, Classes, and Dim delegate to the backend, so an *Engine
// satisfies the same descriptive surface a distributed router exposes
// (the serve.Querier seam: the coalescer fronts either one).
func (e *Engine) Name() string { return e.backend.Name() }

// Classes returns the backend's class count.
func (e *Engine) Classes() int { return e.backend.Classes() }

// Dim returns the backend's probe dimensionality.
func (e *Engine) Dim() int { return e.backend.Dim() }

// Requires reports the probe representation the backend consumes
// (RepDense when the backend does not declare one — the historical
// serving-layer default).
func (e *Engine) Requires() Representation {
	if rr, ok := e.backend.(RepresentationRequirer); ok {
		return rr.Requires()
	}
	return RepDense
}

// ShardSelector is an optional fast path a Backend may implement to fuse
// scoring and top-k selection into one pass over a shard, skipping the
// generic float64 score buffer. SelectShard must write, for each probe p,
// its best min(k, hi-lo) hits into cands[p*k : p*k+kk] ordered exactly
// like the generic path (descending score, ties by ascending class
// index) and return kk. The engine uses it transparently when present.
type ShardSelector interface {
	SelectShard(batch *Batch, lo, hi, k int, cands []Hit) int
}

// ResultBuf is caller-owned result storage for allocation-free querying:
// QueryInto writes its results (and their TopK backing) into the buffer,
// growing it only when a larger batch/k arrives, so the steady state of
// a serving loop allocates nothing. Results returned through a buffer
// are valid until the buffer's next use; callers that hand results to
// other goroutines must use Query (fresh storage) instead. A ResultBuf
// is not safe for concurrent use — one per querying goroutine.
type ResultBuf struct {
	results []Result
	backing []Hit
}

// take returns n results with k-wide TopK slices backed by the buffer.
//
//hdc:coldpath amortized ResultBuf growth; the steady state reuses capacity
func (rb *ResultBuf) take(n, k int) []Result {
	if cap(rb.results) < n {
		rb.results = make([]Result, n)
	}
	if cap(rb.backing) < n*k {
		rb.backing = make([]Hit, n*k)
	}
	rb.results = rb.results[:n]
	rb.backing = rb.backing[:n*k]
	return rb.results
}

// Query scores every probe in batch against the full class memory and
// returns, per probe, the top-k classes in descending score order (ties
// by ascending class index). k is clamped to the class count. Query is
// safe for concurrent callers on one shared Engine; it panics on invalid
// input — TryQuery is the error-returning variant.
func (e *Engine) Query(batch *Batch, k int) []Result {
	res, err := e.TryQuery(batch, k)
	if err != nil {
		panic("infer.Engine.Query: " + err.Error())
	}
	return res
}

// QueryInto is Query writing results into the caller's ResultBuf: the
// allocation-free steady-state path for tight readout loops that consume
// results before the buffer's next use.
//
//hdc:hotpath
func (e *Engine) QueryInto(batch *Batch, k int, buf *ResultBuf) []Result {
	res, err := e.TryQueryInto(batch, k, buf)
	if err != nil {
		panic("infer.Engine.QueryInto: " + err.Error())
	}
	return res
}

// TryQuery is Query with boundary validation reported as typed errors
// instead of panics: a malformed batch (ErrBadQuery, ErrBatchMismatch),
// a batch lacking the representation the backend consumes
// (ErrMissingRepresentation), or a non-positive k (ErrBadQuery) fail
// fast here, before any shard worker touches the probes.
func (e *Engine) TryQuery(batch *Batch, k int) ([]Result, error) {
	return e.TryQueryInto(batch, k, nil)
}

// TryQueryInto is TryQuery writing into buf when non-nil (see QueryInto);
// with a nil buf every call returns freshly allocated results.
func (e *Engine) TryQueryInto(batch *Batch, k int, buf *ResultBuf) ([]Result, error) {
	if err := batch.Validate(); err != nil {
		return nil, err
	}
	n := batch.Len()
	if n == 0 {
		return nil, nil
	}
	if k <= 0 {
		return nil, errNonPositiveK(k)
	}
	if rr, ok := e.backend.(RepresentationRequirer); ok {
		if r := rr.Requires(); !batch.Satisfies(r) {
			return nil, errMissingRep(e.backend, r, batch)
		}
	}
	if d := batch.Dim(); d != e.backend.Dim() {
		// Caught here so the mismatch surfaces as a typed error instead of
		// an unrecoverable panic inside a shard worker goroutine.
		return nil, errDimMismatch(e.backend, d)
	}
	if c := e.backend.Classes(); k > c {
		k = c
	}

	qs := e.pool.Get().(*queryScratch)

	// Phase 1: shard workers score their class range and keep local top-k.
	if e.workers == 1 {
		qs.counts[0] = e.runShard(0, qs.shards[0], batch, k)
	} else {
		var wg sync.WaitGroup
		for si := range e.ranges {
			wg.Add(1)
			// k passed as an argument, not captured: a captured k (it is
			// reassigned by the clamp above) would be boxed on every call,
			// breaking the zero-alloc steady state of the 1-shard path.
			go func(si, k int) { //hdc:allow hotpathalloc one goroutine and closure per shard per query is the fan-out design
				defer wg.Done()
				qs.counts[si] = e.runShard(si, qs.shards[si], batch, k)
			}(si, k)
		}
		wg.Wait()
	}

	// Phase 2: merge per-shard candidates into global top-k per probe.
	// One backing allocation (or the caller's ResultBuf) serves every
	// result's TopK slice.
	var results []Result
	var backing []Hit
	if buf != nil {
		results = buf.take(n, k)
		backing = buf.backing
	} else {
		results = make([]Result, n)   //hdc:allow hotpathalloc nil-buf calls return caller-owned results by documented contract
		backing = make([]Hit, n*k)    //hdc:allow hotpathalloc nil-buf calls return caller-owned results by documented contract
	}
	if cap(qs.merged) < e.workers*k {
		qs.merged = make([]Hit, 0, e.workers*k) //hdc:allow hotpathalloc amortized merge-scratch growth; the steady state reuses capacity
	}
	merged := qs.merged
	for p := 0; p < n; p++ {
		top := backing[p*k : (p+1)*k : (p+1)*k]
		if e.workers == 1 {
			// Single shard: its candidate list is already the global order.
			copy(top, qs.shards[0].cands[p*k:p*k+k])
		} else {
			merged = merged[:0]
			for si := range e.ranges {
				merged = append(merged, qs.shards[si].cands[p*k:p*k+qs.counts[si]]...) //hdc:allow hotpathalloc capacity reserved above: shards contribute at most workers*k candidates
			}
			qs.sorter.H = merged
			sort.Sort(&qs.sorter)
			copy(top, merged[:k])
		}
		for i := range top {
			top[i].Label = e.backend.Label(top[i].Class)
		}
		results[p] = Result{TopK: top}
	}
	qs.merged = merged
	e.pool.Put(qs)
	return results, nil
}

// batchContents names the representations a batch carries, for error
// messages.
//hdc:coldpath diagnostic string building for rejected queries
func batchContents(b *Batch) string {
	switch {
	case b.Dense != nil && b.Packed != nil:
		return "dense+packed"
	case b.Dense != nil:
		return "dense"
	case b.Packed != nil:
		return "packed"
	}
	return "nothing"
}

// Predict returns the top-1 class index per probe.
func (e *Engine) Predict(batch *Batch) []int {
	res := e.Query(batch, 1)
	out := make([]int, len(res))
	for i, r := range res {
		out[i] = r.TopK[0].Class
	}
	return out
}

// runShard scores shard si into the supplied scratch and fills its local
// candidate buffer; it returns the number of valid candidates per probe
// (min(k, shard width)).
func (e *Engine) runShard(si int, s *shardScratch, batch *Batch, k int) int {
	lo, hi := e.ranges[si][0], e.ranges[si][1]
	width := hi - lo
	n := batch.Len()

	if cap(s.cands) < n*k {
		s.cands = make([]Hit, n*k) //hdc:allow hotpathalloc amortized shard-scratch growth; the steady state reuses capacity
	}
	s.cands = s.cands[:n*k]

	// Fused fast path: the backend scores and selects in one pass.
	if sel, ok := e.backend.(ShardSelector); ok {
		return sel.SelectShard(batch, lo, hi, k, s.cands)
	}

	// Reuse (or grow) the score buffer.
	if cap(s.flat) < n*width {
		s.flat = make([]float64, n*width) //hdc:allow hotpathalloc amortized shard-scratch growth; the steady state reuses capacity
	}
	s.flat = s.flat[:n*width]
	if len(s.scores) != n || (n > 0 && len(s.scores[0]) != width) {
		if cap(s.scores) < n {
			s.scores = make([][]float64, n) //hdc:allow hotpathalloc amortized shard-scratch growth; the steady state reuses capacity
		}
		s.scores = s.scores[:n]
		for p := 0; p < n; p++ {
			s.scores[p] = s.flat[p*width : (p+1)*width]
		}
	}
	e.backend.ScoreShard(batch, lo, hi, s.scores)

	kk := k
	if kk > width {
		kk = width
	}
	for p := 0; p < n; p++ {
		selectTopK(s.scores[p], lo, s.cands[p*k:p*k+kk])
	}
	return kk
}

// selectTopK writes the len(dst) best (score, class) pairs of row into
// dst, sorted by descending score with ties by ascending class index.
// row[j] is the score of absolute class lo+j. Classes are scanned in
// ascending order and an incoming score must strictly beat the current
// worst to enter a full buffer, which preserves lowest-index tie-breaks
// without comparisons at insert time.
func selectTopK(row []float64, lo int, dst []Hit) {
	k := len(dst)
	count := 0
	for j, sc := range row {
		if count == k && sc <= dst[count-1].Score {
			continue
		}
		// Find insertion position: after any existing entry with score ≥ sc
		// (equal scores keep the earlier, lower-index entry first).
		pos := count
		if pos == k {
			pos = k - 1
		}
		for pos > 0 && dst[pos-1].Score < sc {
			pos--
		}
		if count < k {
			count++
		}
		copy(dst[pos+1:count], dst[pos:count-1])
		dst[pos] = Hit{Class: lo + j, Score: sc}
	}
}

// Cold error constructors: kept out of TryQueryInto's body so the
// accepting path stays free of fmt boxing; each runs only when the
// query is rejected.

//hdc:coldpath error construction for rejected queries
func errNonPositiveK(k int) error {
	return fmt.Errorf("%w: non-positive k=%d", ErrBadQuery, k)
}

//hdc:coldpath error construction for rejected queries
func errMissingRep(b Backend, r Representation, batch *Batch) error {
	return fmt.Errorf("%w: backend %q consumes %s probes, batch carries %s only",
		ErrMissingRepresentation, b.Name(), r, batchContents(batch))
}

//hdc:coldpath error construction for rejected queries
func errDimMismatch(b Backend, d int) error {
	return fmt.Errorf("%w: probe dim %d, backend %q expects %d",
		ErrBadQuery, d, b.Name(), b.Dim())
}
