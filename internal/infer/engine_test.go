package infer

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hdc"
	"repro/internal/tensor"
)

// fakeBackend serves a fixed score matrix, for engine-mechanics tests.
type fakeBackend struct {
	scores [][]float64 // [C][n] — score of class c for probe p
	dim    int
}

func (f *fakeBackend) Name() string       { return "fake" }
func (f *fakeBackend) Classes() int       { return len(f.scores) }
func (f *fakeBackend) Dim() int           { return f.dim }
func (f *fakeBackend) Label(c int) string { return fmt.Sprintf("c%d", c) }

func (f *fakeBackend) ScoreShard(batch *Batch, lo, hi int, out [][]float64) {
	for p := 0; p < batch.Len(); p++ {
		for c := lo; c < hi; c++ {
			out[p][c-lo] = f.scores[c][p]
		}
	}
}

// bruteTopK is the reference ranking: sort all classes by (score desc,
// class asc) and take k.
func bruteTopK(scores [][]float64, p, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]][p] != scores[idx[b]][p] {
			return scores[idx[a]][p] > scores[idx[b]][p]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

func fakeSetup(rng *rand.Rand, classes, probes int, dupEvery int) (*fakeBackend, *Batch) {
	f := &fakeBackend{dim: 4}
	f.scores = make([][]float64, classes)
	for c := range f.scores {
		f.scores[c] = make([]float64, probes)
		for p := range f.scores[c] {
			if dupEvery > 0 && c >= dupEvery {
				// Force exact ties with an earlier class.
				f.scores[c][p] = f.scores[c-dupEvery][p]
				continue
			}
			f.scores[c][p] = rng.NormFloat64()
		}
	}
	// The fake backend ignores probe content; any batch of the right
	// length works.
	return f, DenseBatch(tensor.New(probes, 4))
}

func TestEngineMatchesBruteForceAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const classes, probes = 103, 17
	f, batch := fakeSetup(rng, classes, probes, 0)
	for _, workers := range []int{1, 2, 3, 7, 16, 103, 200} {
		e := New(f, WithWorkers(workers))
		for _, k := range []int{1, 3, 103, 1000} {
			res := e.Query(batch, k)
			kk := k
			if kk > classes {
				kk = classes
			}
			for p := 0; p < probes; p++ {
				want := bruteTopK(f.scores, p, kk)
				if len(res[p].TopK) != kk {
					t.Fatalf("workers=%d k=%d: got %d hits, want %d", workers, k, len(res[p].TopK), kk)
				}
				for i, h := range res[p].TopK {
					if h.Class != want[i] {
						t.Fatalf("workers=%d k=%d probe %d rank %d: class %d, want %d",
							workers, k, p, i, h.Class, want[i])
					}
					if h.Score != f.scores[h.Class][p] {
						t.Fatalf("score mismatch for class %d", h.Class)
					}
					if h.Label != fmt.Sprintf("c%d", h.Class) {
						t.Fatalf("label mismatch: %q", h.Label)
					}
				}
			}
		}
	}
}

// Exact ties must resolve to the lowest class index at every rank, even
// when the tied classes land in different shards.
func TestEngineTieBreaksByLowestIndexAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const classes, probes = 60, 9
	f, batch := fakeSetup(rng, classes, probes, 13) // ties 13 apart span shards
	for _, workers := range []int{1, 4, 13, 60} {
		e := New(f, WithWorkers(workers))
		res := e.Query(batch, classes)
		for p := 0; p < probes; p++ {
			want := bruteTopK(f.scores, p, classes)
			for i, h := range res[p].TopK {
				if h.Class != want[i] {
					t.Fatalf("workers=%d probe %d rank %d: class %d, want %d",
						workers, p, i, h.Class, want[i])
				}
			}
		}
	}
}

// Reusing one engine across queries of different batch sizes must not
// leak state between calls (the scratch buffers are resized views).
func TestEngineScratchReuseAcrossBatchSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const classes = 41
	f, _ := fakeSetup(rng, classes, 32, 0)
	e := New(f, WithWorkers(4))
	for _, n := range []int{32, 1, 7, 32, 2} {
		batch := DenseBatch(tensor.New(n, 4))
		res := e.Query(batch, 5)
		if len(res) != n {
			t.Fatalf("n=%d: got %d results", n, len(res))
		}
		for p := 0; p < n; p++ {
			want := bruteTopK(f.scores, p, 5)
			for i, h := range res[p].TopK {
				if h.Class != want[i] {
					t.Fatalf("n=%d probe %d rank %d: class %d, want %d", n, p, i, h.Class, want[i])
				}
			}
		}
	}
}

func TestEngineEmptyBatchAndBadK(t *testing.T) {
	f, _ := fakeSetup(rand.New(rand.NewSource(14)), 5, 3, 0)
	e := New(f)
	if res := e.Query(PackedBatch(nil), 1); res != nil {
		t.Fatalf("empty batch returned %v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Query accepted k=0")
		}
	}()
	e.Query(DenseBatch(tensor.New(2, 4)), 0)
}

func TestEngineBinaryBackendMatchesItemMemoryQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const d, classes, probes = 512, 37, 29
	im := hdc.NewItemMemory(d)
	for c := 0; c < classes; c++ {
		im.Store(fmt.Sprintf("class%d", c), hdc.NewRandomBinary(rng, d))
	}
	probesV := make([]*hdc.Binary, probes)
	for p := range probesV {
		probesV[p] = hdc.NewRandomBinary(rng, d)
	}
	e := New(NewBinaryBackend(im), WithWorkers(5))
	res := e.Query(PackedBatch(probesV), 3)
	for p, probe := range probesV {
		label, idx, dist := im.Query(probe)
		top := res[p].TopK[0]
		if top.Class != idx || top.Label != label {
			t.Fatalf("probe %d: engine top-1 (%d, %q) vs Query (%d, %q)",
				p, top.Class, top.Label, idx, label)
		}
		wantScore := 1 - 2*float64(dist)/float64(d)
		if top.Score != wantScore {
			t.Fatalf("probe %d: score %v, want %v", p, top.Score, wantScore)
		}
		wantK := im.QueryTopK(probe, 3)
		for i, h := range res[p].TopK {
			if h.Class != wantK[i] {
				t.Fatalf("probe %d rank %d: class %d, want %d", p, i, h.Class, wantK[i])
			}
		}
	}
}

// A dense-only batch must work against the binary backend via lazy
// sign-packing and agree with explicitly packed probes.
func TestBinaryBackendLazySignPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const d, classes, probes = 256, 11, 7
	im := hdc.NewItemMemory(d)
	for c := 0; c < classes; c++ {
		im.Store(fmt.Sprintf("class%d", c), hdc.NewRandomBinary(rng, d))
	}
	dense := tensor.Randn(rng, 1, probes, d)
	e := New(NewBinaryBackend(im), WithWorkers(3))
	fromDense := e.Query(DenseBatch(dense), 2)
	fromPacked := e.Query(PackedBatch(PackSign(dense)), 2)
	for p := range fromDense {
		for i := range fromDense[p].TopK {
			if fromDense[p].TopK[i] != fromPacked[p].TopK[i] {
				t.Fatalf("probe %d rank %d: dense-batch hit %+v != packed-batch hit %+v",
					p, i, fromDense[p].TopK[i], fromPacked[p].TopK[i])
			}
		}
	}
}

func TestPackSignRoundTrip(t *testing.T) {
	x := tensor.FromSlice([]float32{0.5, -1, 0, -0.25, 3, -7}, 2, 3)
	packed := PackSign(x)
	wantBits := [][]int{{0, 1, 0}, {1, 0, 1}}
	for p := range packed {
		for j, w := range wantBits[p] {
			if packed[p].Bit(j) != w {
				t.Fatalf("probe %d bit %d = %d, want %d", p, j, packed[p].Bit(j), w)
			}
		}
	}
}
