// Package infer is the batched inference engine that unifies the
// repository's three similarity-readout realizations behind one Backend
// interface:
//
//   - FloatBackend: the reference real-valued cosine path, the semantics
//     of core.SimilarityKernel at evaluation time;
//   - BinaryBackend: the packed XOR+popcount edge path over a sharded
//     hdc.ItemMemory slab (the paper's stationary-binary-weights story);
//   - CrossbarBackend: the analog in-memory-computing path of the §V
//     outlook, programming one imc crossbar tile per shard.
//
// The Engine takes batches of probes, shards the class memory across
// goroutine workers with pooled score buffers, selects per-shard top-k
// candidates, and merges them into globally ordered results. Ordering is
// identical across backends on a frozen model (descending score, ties by
// ascending class index), which the cross-backend parity tests pin down.
// One Engine is safe for any number of concurrent Query callers — the
// per-call working set comes from a sync.Pool — which is what the
// micro-batching serving layer in internal/serve builds on. Every future
// scaling feature — result caching, async serving, multi-node sharding —
// plugs in at this seam.
package infer

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hdc"
	"repro/internal/tensor"
)

// Typed errors returned by the validating constructors and TryQuery.
// Query and the panicking constructors wrap the same conditions, so
// callers that prefer fail-fast semantics keep them.
var (
	// ErrNoClasses: the backend holds an empty class memory (a degenerate
	// split reached the engine).
	ErrNoClasses = errors.New("backend holds no classes")
	// ErrBatchMismatch: a batch populates both representations but their
	// probe counts disagree, so probe p in one is not probe p in the other.
	ErrBatchMismatch = errors.New("dense/packed probe count mismatch")
	// ErrMissingRepresentation: the batch lacks the probe representation
	// the backend consumes (e.g. a packed-only batch against a dense-only
	// backend).
	ErrMissingRepresentation = errors.New("batch lacks the representation the backend requires")
	// ErrBadQuery: a structurally invalid query (non-positive k, nil or
	// malformed batch).
	ErrBadQuery = errors.New("invalid query")
)

// Representation names a probe representation a Backend consumes. A
// Backend may declare its requirement via the optional Requires method;
// the engine then rejects under-populated batches at the query boundary
// with ErrMissingRepresentation instead of panicking mid-shard.
type Representation int

const (
	// RepDense: the backend reads Batch.Dense (float and crossbar paths).
	// Packed-only batches cannot serve it — bit packing is lossy, so there
	// is no way back to the real-valued probe.
	RepDense Representation = iota
	// RepPacked: the backend reads packed probes. A dense-only batch still
	// satisfies it through lazy sign-packing (Batch.SignPacked).
	RepPacked
)

// String names the representation in error messages.
func (r Representation) String() string {
	switch r {
	case RepDense:
		return "dense"
	case RepPacked:
		return "packed"
	}
	return fmt.Sprintf("Representation(%d)", int(r))
}

// RepresentationRequirer is the optional Backend extension that declares
// which probe representation the backend consumes, enabling fail-fast
// validation at the engine boundary. All three shipped backends
// implement it.
type RepresentationRequirer interface {
	Requires() Representation
}

// Batch is a set of probes presented to the engine. The two fields are
// alternative representations of the same probes; a backend reads the one
// it consumes (FloatBackend/CrossbarBackend need Dense, BinaryBackend
// needs Packed). Populate both to query heterogeneous backends with one
// batch.
type Batch struct {
	// Dense holds the probe embeddings [n, d] for the real-valued paths.
	Dense *tensor.Tensor
	// Packed holds the probes as packed binary hypervectors for the
	// XOR+popcount path.
	Packed []*hdc.Binary

	normsOnce sync.Once
	norms     *tensor.Tensor

	packOnce   sync.Once
	signPacked []*hdc.Binary
}

// DenseBatch wraps embeddings [n, d] as a batch for the dense backends.
func DenseBatch(x *tensor.Tensor) *Batch {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("infer.DenseBatch: want rank-2 embeddings, have %v", x.Shape()))
	}
	return &Batch{Dense: x}
}

// PackedBatch wraps packed binary probes as a batch for BinaryBackend.
func PackedBatch(vs []*hdc.Binary) *Batch { return &Batch{Packed: vs} }

// NewBatch builds a batch carrying both representations of the same
// probes, validating that they agree before the batch can reach an
// engine. Either argument may be nil (single-representation batch); with
// both populated a row-count mismatch returns ErrBatchMismatch instead
// of silently mis-indexing probes in Engine.Query.
func NewBatch(dense *tensor.Tensor, packed []*hdc.Binary) (*Batch, error) {
	b := &Batch{Dense: dense, Packed: packed}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// Len returns the number of probes in the batch.
func (b *Batch) Len() int {
	if b.Dense != nil {
		return b.Dense.Dim(0)
	}
	return len(b.Packed)
}

// Validate checks the batch's structural invariants: dense probes
// rank-2, no nil packed entries, and — when both representations are
// present — matching probe counts (probe p of Dense must be probe p of
// Packed, or backends reading different representations would disagree
// about which probe is which). A batch with neither representation is
// valid and empty.
//
//hdc:coldpath error construction only; the accepting path allocates nothing
func (b *Batch) Validate() error {
	if b == nil {
		return fmt.Errorf("%w: nil batch", ErrBadQuery)
	}
	if b.Dense != nil && b.Dense.Rank() != 2 {
		return fmt.Errorf("%w: dense probes must be rank-2 [n, d], have %v", ErrBadQuery, b.Dense.Shape())
	}
	for i, v := range b.Packed {
		if v == nil {
			return fmt.Errorf("%w: packed probe %d is nil", ErrBadQuery, i)
		}
		if v.Dim() != b.Packed[0].Dim() {
			return fmt.Errorf("%w: packed probe %d has dim %d, probe 0 has dim %d",
				ErrBadQuery, i, v.Dim(), b.Packed[0].Dim())
		}
	}
	if b.Dense != nil && b.Packed != nil {
		if b.Dense.Dim(0) != len(b.Packed) {
			return fmt.Errorf("%w: dense has %d probes, packed has %d",
				ErrBatchMismatch, b.Dense.Dim(0), len(b.Packed))
		}
		if len(b.Packed) > 0 && b.Dense.Dim(1) != b.Packed[0].Dim() {
			return fmt.Errorf("%w: dense probes have dim %d, packed probes have dim %d",
				ErrBatchMismatch, b.Dense.Dim(1), b.Packed[0].Dim())
		}
	}
	return nil
}

// Dim returns the probe dimensionality of the batch, or 0 when empty.
// Validate guarantees the representations agree on it.
func (b *Batch) Dim() int {
	if b.Dense != nil {
		return b.Dense.Dim(1)
	}
	if len(b.Packed) > 0 {
		return b.Packed[0].Dim()
	}
	return 0
}

// Satisfies reports whether the batch can serve a backend consuming the
// given representation: RepDense needs Dense, RepPacked is satisfied by
// either representation (dense probes sign-pack lazily).
func (b *Batch) Satisfies(r Representation) bool {
	switch r {
	case RepDense:
		return b.Dense != nil
	case RepPacked:
		return b.Dense != nil || b.Packed != nil
	}
	return false
}

// DenseNorms returns the L2 norm of each dense probe row, computed once
// per batch and shared by every shard worker (cosine denominators).
func (b *Batch) DenseNorms() *tensor.Tensor {
	b.normsOnce.Do(func() {
		if b.Dense != nil {
			b.norms = tensor.RowNorms(b.Dense)
		}
	})
	return b.norms
}

// SignPacked returns the probes in packed binary form: the explicit
// Packed field when set, otherwise a sign-packed view of Dense computed
// once per batch and shared by every shard worker. Dense-only batches
// therefore work against BinaryBackend without the caller paying the
// packing cost when no binary backend is in play.
func (b *Batch) SignPacked() []*hdc.Binary {
	if b.Packed != nil {
		return b.Packed
	}
	b.packOnce.Do(func() {
		if b.Dense != nil {
			b.signPacked = PackSign(b.Dense)
		}
	})
	return b.signPacked
}

// Backend is one concrete realization of the encode→similarity→readout
// path: a frozen class memory that can score probes against any
// contiguous class range. Scores are "higher is better" and must induce
// the same ranking on every backend built from the same frozen model
// (see the parity tests).
type Backend interface {
	// Name identifies the backend in reports ("float", "binary", "imc").
	Name() string
	// Classes returns the number of stored classes.
	Classes() int
	// Dim returns the probe dimensionality the backend expects.
	Dim() int
	// Label returns the label of class c.
	Label(c int) string
	// ScoreShard scores every probe in batch against classes [lo, hi),
	// writing probe p's score for class c into out[p][c-lo]. out is a
	// caller-owned buffer of batch.Len() rows of width hi-lo, reused
	// across calls; implementations must not retain it.
	ScoreShard(batch *Batch, lo, hi int, out [][]float64)
}

// Hit is one scored class in a query result.
type Hit struct {
	Class int     // class index in the backend's memory
	Label string  // class label
	Score float64 // similarity score, higher is better
}

// Result is the ranked answer for one probe: the top-k hits in
// descending score order, ties broken by ascending class index.
type Result struct {
	TopK []Hit
}

// Best returns the top-1 hit.
func (r Result) Best() Hit { return r.TopK[0] }

// PackSign packs dense embeddings [n, d] into binary hypervectors by
// sign: a non-negative component maps to bipolar +1 (clear bit), a
// negative one to −1 (set bit). This is the embedding binarization of
// the edge deployment path, where probes must enter the XOR+popcount
// readout as packed words.
func PackSign(x *tensor.Tensor) []*hdc.Binary {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("infer.PackSign: want rank-2 embeddings, have %v", x.Shape()))
	}
	n, d := x.Dim(0), x.Dim(1)
	out := make([]*hdc.Binary, n)
	for i := 0; i < n; i++ {
		b := hdc.NewBinary(d)
		row := x.Row(i)
		for j, v := range row {
			if v < 0 {
				b.SetBit(j, 1)
			}
		}
		out[i] = b
	}
	return out
}
