package infer

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// randDense fills an [n, d] tensor with uniform values in [-1, 1).
func randDense(rng *rand.Rand, n, d int) *tensor.Tensor {
	x := tensor.New(n, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	return x
}

// newTestFloatBackend builds a float backend over a random class memory.
func newTestFloatBackend(rng *rand.Rand, classes, d int) *FloatBackend {
	return NewFloatBackend(randDense(rng, classes, d), nil, 1)
}

// mergeSplit runs the engine's scatter-gather selection by hand over an
// arbitrary contiguous split of one score row: per-range selectTopK,
// concatenate, SortHits, take k — exactly TryQueryInto's phase 1 + 2.
func mergeSplit(scores []float64, ranges [][2]int, k int) []Hit {
	var cands []Hit
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		kk := k
		if w := hi - lo; kk > w {
			kk = w
		}
		dst := make([]Hit, kk)
		selectTopK(scores[lo:hi], lo, dst)
		cands = append(cands, dst...)
	}
	SortHits(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// TestMergeTieBreakInvariantAcrossSplits is the property test of the
// documented ordering contract: for score rows dense with exact ties,
// the merged top-k is identical whether the class space is scanned
// whole or split into 1/2/4/8 contiguous shards — the invariant the
// distributed scatter-gather path (internal/dist) rides on. Ties must
// resolve to the lowest class index at every split, so the oracle is
// the 1-shard scan of the full row.
func TestMergeTieBreakInvariantAcrossSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const classes = 97 // awkward odd count: uneven ranges at every split
	for trial := 0; trial < 200; trial++ {
		// Few distinct score levels → many exact ties, including across
		// future shard boundaries.
		levels := 1 + rng.Intn(5)
		scores := make([]float64, classes)
		for i := range scores {
			scores[i] = float64(rng.Intn(levels)) / 3
		}
		k := 1 + rng.Intn(classes+4) // sometimes k > classes/shard width
		if k > classes {
			k = classes
		}
		want := mergeSplit(scores, SplitRanges(classes, 1), k)
		for i, h := range want {
			// The contract itself, spelled out: equal scores in the prefix
			// must appear in ascending class order.
			if i > 0 && want[i-1].Score == h.Score && want[i-1].Class >= h.Class {
				t.Fatalf("trial %d: oracle violates lowest-index tie-break at %d: %+v", trial, i, want)
			}
		}
		for _, shards := range []int{2, 4, 8} {
			got := mergeSplit(scores, SplitRanges(classes, shards), k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: %d-shard merge diverges for k=%d:\n got %+v\nwant %+v",
					trial, shards, k, got, want)
			}
		}
	}
}

// TestSplitRangesCoversContiguously pins SplitRanges' shape: contiguous
// cover of [0, classes), near-equal widths, shards clamped to classes.
func TestSplitRangesCoversContiguously(t *testing.T) {
	for classes := 1; classes <= 40; classes++ {
		for shards := 1; shards <= classes+3; shards++ {
			ranges := SplitRanges(classes, shards)
			wantShards := shards
			if wantShards > classes {
				wantShards = classes
			}
			if len(ranges) != wantShards {
				t.Fatalf("SplitRanges(%d, %d): %d ranges", classes, shards, len(ranges))
			}
			lo := 0
			for _, r := range ranges {
				if r[0] != lo || r[1] <= r[0] {
					t.Fatalf("SplitRanges(%d, %d): gap or empty range %v", classes, shards, ranges)
				}
				if w := r[1] - r[0]; w > classes/wantShards+1 {
					t.Fatalf("SplitRanges(%d, %d): range %v wider than near-equal", classes, shards, r)
				}
				lo = r[1]
			}
			if lo != classes {
				t.Fatalf("SplitRanges(%d, %d): cover stops at %d", classes, shards, lo)
			}
		}
	}
}

// TestRangeBackendMatchesGlobalSlice pins the RangeBackend adapter:
// querying an engine over a range view returns the global engine's hits
// for that range, with classes shifted by the base and the fused
// selector fast path preserved (binary backend implements it).
func TestRangeBackendMatchesGlobalSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const classes, d, n, k = 23, 256, 5, 23
	global := newTestFloatBackend(rng, classes, d)
	batch := DenseBatch(randDense(rng, n, d))

	full := New(global, WithWorkers(3)).Query(batch, k)
	for _, r := range [][2]int{{0, 9}, {9, 16}, {16, 23}} {
		rb := NewRangeBackend(global, r[0], r[1])
		if rb.Classes() != r[1]-r[0] {
			t.Fatalf("range %v: Classes() = %d", r, rb.Classes())
		}
		local := New(rb, WithWorkers(2)).Query(batch, k)
		for p := 0; p < n; p++ {
			// Filter the global ranking down to this range: must equal the
			// local ranking shifted by base.
			var want []Hit
			for _, h := range full[p].TopK {
				if h.Class >= r[0] && h.Class < r[1] {
					want = append(want, h)
				}
			}
			got := local[p].TopK
			if len(got) != len(want) {
				t.Fatalf("range %v probe %d: %d local hits, want %d", r, p, len(got), len(want))
			}
			for i := range got {
				g := got[i]
				g.Class += r[0]
				if g != want[i] {
					t.Fatalf("range %v probe %d hit %d: got %+v (shifted), want %+v", r, p, i, g, want[i])
				}
			}
		}
	}
}
