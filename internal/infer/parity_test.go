package infer

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/attrenc"
	"repro/internal/dataset"
	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/tensor"
)

// Cross-backend parity: on the same frozen model, the float, packed-
// binary, and (ideal) crossbar backends must return identical top-1 and
// top-k predictions for every probe — ties included. The model is the
// paper's edge readout: bundled class prototypes from the HDC attribute
// encoder, probed with bit-flipped copies. Duplicate prototypes are
// stored deliberately to force exact score ties.
func TestCrossBackendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const d = 1024
	schema := dataset.NewCUBSchema()
	enc := attrenc.NewHDCEncoder(rng, schema, d)

	cfg := dataset.DefaultConfig()
	cfg.NumClasses = 30
	data := dataset.Generate(cfg)

	// Frozen class memory: one bundled prototype per class, plus exact
	// duplicates of classes 0 and 7 appended at the end (ties on every
	// probe).
	var protos []*hdc.Binary
	for c := 0; c < cfg.NumClasses; c++ {
		protos = append(protos, enc.ClassPrototype(rng, data.ClassAttr.Row(c)))
	}
	protos = append(protos, protos[0].Clone(), protos[7].Clone())
	classes := len(protos)

	labels := make([]string, classes)
	im := hdc.NewItemMemory(d)
	phi := tensor.New(classes, d)
	for c, p := range protos {
		labels[c] = fmt.Sprintf("class%d", c)
		im.Store(labels[c], p)
		copy(phi.Row(c), p.ToBipolar().Float32())
	}

	// Probes: noisy copies of each prototype in both representations.
	nProbes := classes
	packed := make([]*hdc.Binary, nProbes)
	dense := tensor.New(nProbes, d)
	for p := 0; p < nProbes; p++ {
		v := protos[p%classes].Clone()
		for f := 0; f < d/8; f++ {
			i := rng.Intn(d)
			v.SetBit(i, 1-v.Bit(i))
		}
		packed[p] = v
		copy(dense.Row(p), v.ToBipolar().Float32())
	}
	batch := &Batch{Dense: dense, Packed: packed}

	const temp = 1.0
	backends := []Backend{
		NewFloatBackend(phi, labels, temp),
		NewBinaryBackend(im),
		NewCrossbarBackend(phi, labels, temp, imc.Ideal()),
	}

	const k = 7
	for _, workers := range []int{1, 3, 8} {
		var ref []Result
		for _, be := range backends {
			res := New(be, WithWorkers(workers)).Query(batch, k)
			if ref == nil {
				ref = res
				continue
			}
			for p := range res {
				for i := range res[p].TopK {
					got, want := res[p].TopK[i], ref[p].TopK[i]
					if got.Class != want.Class || got.Label != want.Label {
						t.Fatalf("workers=%d backend %q probe %d rank %d: class %d (%q), want %d (%q)",
							workers, be.Name(), p, i, got.Class, got.Label, want.Class, want.Label)
					}
				}
			}
		}
	}

	// The duplicated prototypes guarantee at least one exact tie pair per
	// probe; sanity-check that the dataset really exercises tie-breaking.
	res := New(backends[1], WithWorkers(3)).Query(batch, classes)
	foundTie := false
	for _, r := range res {
		for i := 1; i < len(r.TopK); i++ {
			if r.TopK[i].Score == r.TopK[i-1].Score {
				foundTie = true
				if r.TopK[i].Class < r.TopK[i-1].Class {
					t.Fatalf("tied classes %d, %d out of index order", r.TopK[i-1].Class, r.TopK[i].Class)
				}
			}
		}
	}
	if !foundTie {
		t.Fatal("parity fixture produced no exact ties; duplicates missing?")
	}

	// Scores agree across the float and binary paths up to float32
	// rounding: cos = 1 − 2h/d.
	fRes := New(backends[0]).Query(batch, k)
	bRes := New(backends[1]).Query(batch, k)
	for p := range fRes {
		for i := range fRes[p].TopK {
			if diff := math.Abs(fRes[p].TopK[i].Score - bRes[p].TopK[i].Score); diff > 1e-5 {
				t.Fatalf("probe %d rank %d: float score %v vs binary score %v",
					p, i, fRes[p].TopK[i].Score, bRes[p].TopK[i].Score)
			}
		}
	}
}

// The float backend and an ideal crossbar must agree bit-for-bit (same
// float32 accumulation order), even on arbitrary real-valued embeddings.
func TestFloatAndIdealCrossbarBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const classes, d, n = 23, 96, 11
	phi := tensor.Randn(rng, 1, classes, d)
	x := tensor.Randn(rng, 1, n, d)
	batch := DenseBatch(x)
	fRes := New(NewFloatBackend(phi, nil, 0.05), WithWorkers(4)).Query(batch, classes)
	xRes := New(NewCrossbarBackend(phi, nil, 0.05, imc.Ideal()), WithWorkers(4)).Query(batch, classes)
	for p := 0; p < n; p++ {
		for i := 0; i < classes; i++ {
			f, c := fRes[p].TopK[i], xRes[p].TopK[i]
			if f.Class != c.Class || f.Score != c.Score {
				t.Fatalf("probe %d rank %d: float (%d, %v) vs ideal crossbar (%d, %v)",
					p, i, f.Class, f.Score, c.Class, c.Score)
			}
		}
	}
}

// Under analog non-idealities predictions may drift, but the engine must
// remain deterministic for a fixed tile layout: two engines with the
// same worker count over freshly built noisy backends agree exactly.
func TestCrossbarBackendDeterministicPerLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const classes, d, n = 19, 128, 6
	phi := tensor.Rademacher(rng, classes, d)
	x := tensor.Randn(rng, 1, n, d)
	mk := func() []Result {
		be := NewCrossbarBackend(phi, nil, 0.1, imc.TypicalPCM())
		return New(be, WithWorkers(4)).Query(DenseBatch(x), 3)
	}
	a, b := mk(), mk()
	for p := range a {
		for i := range a[p].TopK {
			if a[p].TopK[i] != b[p].TopK[i] {
				t.Fatalf("noisy crossbar nondeterministic at probe %d rank %d", p, i)
			}
		}
	}
}
