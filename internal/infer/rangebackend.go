package infer

import "fmt"

// NewRangeBackend exposes classes [lo, hi) of a global backend as a
// standalone backend with local class indices [0, hi-lo). This is the
// slab a distributed shard server owns: the shard process builds (or
// maps) the full frozen class memory, wraps its assigned contiguous
// range, and serves it through an ordinary Engine; the router maps the
// local hit indices back to global ones by adding Base.
//
// Scoring goes straight through to the inner backend with the range
// offset applied, so a class's score is computed by exactly the kernel
// (and the cached shard tile) the single-process engine would use —
// the foundation of the distributed path's byte-identical-merge
// contract. The fused ShardSelector fast path is preserved when the
// inner backend implements it, as are the RepresentationRequirer and
// Stochastic declarations.
func NewRangeBackend(inner Backend, lo, hi int) Backend {
	if lo < 0 || hi > inner.Classes() || lo >= hi {
		panic(fmt.Sprintf("infer.NewRangeBackend: bad range [%d, %d) over %d classes",
			lo, hi, inner.Classes()))
	}
	rb := rangeBackend{inner: inner, base: lo, n: hi - lo}
	if _, ok := inner.(ShardSelector); ok {
		return &rangeSelectorBackend{rb}
	}
	return &rb
}

// rangeBackend is the plain sub-range view.
type rangeBackend struct {
	inner Backend
	base  int // global index of local class 0
	n     int // local class count
}

func (b *rangeBackend) Name() string       { return b.inner.Name() }
func (b *rangeBackend) Classes() int       { return b.n }
func (b *rangeBackend) Dim() int           { return b.inner.Dim() }
func (b *rangeBackend) Label(c int) string { return b.inner.Label(b.base + c) }

// Base returns the global class index of local class 0.
func (b *rangeBackend) Base() int { return b.base }

// Requires passes through the inner backend's declaration, defaulting
// to RepDense when it makes none (the serving layer's historical
// assumption for undeclared backends).
func (b *rangeBackend) Requires() Representation {
	if rr, ok := b.inner.(RepresentationRequirer); ok {
		return rr.Requires()
	}
	return RepDense
}

// Stochastic passes through the inner backend's declaration.
func (b *rangeBackend) Stochastic() bool {
	if sb, ok := b.inner.(interface{ Stochastic() bool }); ok {
		return sb.Stochastic()
	}
	return false
}

// ScoreShard scores local classes [lo, hi) by scoring global classes
// [base+lo, base+hi) on the inner backend.
//
//hdc:hotpath
func (b *rangeBackend) ScoreShard(batch *Batch, lo, hi int, out [][]float64) {
	b.inner.ScoreShard(batch, b.base+lo, b.base+hi, out)
}

// rangeSelectorBackend additionally forwards the fused ShardSelector
// fast path; it exists as a separate type so a rangeBackend over a
// non-selecting inner backend does not falsely advertise the interface.
type rangeSelectorBackend struct {
	rangeBackend
}

// SelectShard runs the inner fused path on the offset range and maps
// the returned global class indices back to local ones. The subtraction
// preserves ordering (same offset on every candidate), so the local
// candidate list is ordered exactly like the inner one.
//
//hdc:hotpath
func (b *rangeSelectorBackend) SelectShard(batch *Batch, lo, hi, k int, cands []Hit) int {
	kk := b.inner.(ShardSelector).SelectShard(batch, b.base+lo, b.base+hi, k, cands)
	n := batch.Len()
	for p := 0; p < n; p++ {
		row := cands[p*k : p*k+kk]
		for i := range row {
			row[i].Class -= b.base
		}
	}
	return kk
}
