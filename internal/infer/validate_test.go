package infer

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hdc"
	"repro/internal/imc"
	"repro/internal/tensor"
)

func validateFixture(classes, d int) (*FloatBackend, *BinaryBackend, *CrossbarBackend) {
	rng := rand.New(rand.NewSource(3))
	phi := tensor.Rademacher(rng, classes, d)
	im := hdc.NewItemMemory(d)
	for c := 0; c < classes; c++ {
		im.Store(fmt.Sprintf("class%d", c), hdc.NewRandomBinary(rng, d))
	}
	return NewFloatBackend(phi, nil, 1), NewBinaryBackend(im),
		NewCrossbarBackend(phi, nil, 1, imc.Ideal())
}

// A batch populating both representations with disagreeing probe counts
// must fail fast at construction and at the query boundary, not silently
// mis-index probes mid-shard.
func TestBatchDensePackedCountMismatch(t *testing.T) {
	const classes, d = 7, 128
	rng := rand.New(rand.NewSource(4))
	dense := tensor.Randn(rng, 1, 5, d)
	packed := make([]*hdc.Binary, 3) // 3 != 5
	for i := range packed {
		packed[i] = hdc.NewRandomBinary(rng, d)
	}

	if _, err := NewBatch(dense, packed); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("NewBatch error = %v, want ErrBatchMismatch", err)
	}

	fb, _, _ := validateFixture(classes, d)
	eng := New(fb)
	bad := &Batch{Dense: dense, Packed: packed}
	if _, err := eng.TryQuery(bad, 1); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("TryQuery error = %v, want ErrBatchMismatch", err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Query accepted a mismatched batch")
			}
			if !strings.Contains(fmt.Sprint(r), "mismatch") {
				t.Fatalf("panic message %q does not name the mismatch", r)
			}
		}()
		eng.Query(bad, 1)
	}()
}

func TestBatchValidateRejectsNilAndRaggedPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if err := (&Batch{Packed: []*hdc.Binary{hdc.NewRandomBinary(rng, 64), nil}}).Validate(); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("nil packed entry: err = %v, want ErrBadQuery", err)
	}
	ragged := []*hdc.Binary{hdc.NewRandomBinary(rng, 64), hdc.NewRandomBinary(rng, 128)}
	if err := (&Batch{Packed: ragged}).Validate(); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("ragged packed dims: err = %v, want ErrBadQuery", err)
	}
	var nilBatch *Batch
	if err := nilBatch.Validate(); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("nil batch: err = %v, want ErrBadQuery", err)
	}
}

// A batch lacking the representation a backend consumes must fail at the
// engine boundary with a message naming the missing representation,
// instead of panicking deep inside the backend.
func TestQueryMissingRepresentation(t *testing.T) {
	const classes, d = 7, 128
	rng := rand.New(rand.NewSource(6))
	fb, bb, xb := validateFixture(classes, d)
	packedOnly := PackedBatch([]*hdc.Binary{hdc.NewRandomBinary(rng, d)})
	denseOnly := DenseBatch(tensor.Randn(rng, 1, 2, d))

	for _, be := range []Backend{fb, xb} {
		eng := New(be)
		_, err := eng.TryQuery(packedOnly, 1)
		if !errors.Is(err, ErrMissingRepresentation) {
			t.Fatalf("backend %q: err = %v, want ErrMissingRepresentation", be.Name(), err)
		}
		if !strings.Contains(err.Error(), "dense") {
			t.Fatalf("backend %q: error %q does not name the missing dense representation", be.Name(), err)
		}
	}

	// The binary backend accepts either representation: dense-only batches
	// sign-pack lazily, packed-only batches pass through.
	eng := New(bb)
	if _, err := eng.TryQuery(denseOnly, 1); err != nil {
		t.Fatalf("binary backend rejected a dense-only batch: %v", err)
	}
	if _, err := eng.TryQuery(packedOnly, 1); err != nil {
		t.Fatalf("binary backend rejected a packed-only batch: %v", err)
	}
}

// A probe dimensionality that disagrees with the backend's class memory
// must fail as a typed error at the query boundary — a panic would fire
// inside a shard worker goroutine, where it is unrecoverable.
func TestQueryProbeDimMismatch(t *testing.T) {
	const classes, d = 7, 128
	rng := rand.New(rand.NewSource(8))
	fb, bb, xb := validateFixture(classes, d)
	wrongDense := DenseBatch(tensor.Randn(rng, 1, 2, d/2))
	wrongPacked := PackedBatch([]*hdc.Binary{hdc.NewRandomBinary(rng, d/2)})
	for _, be := range []Backend{fb, bb, xb} {
		eng := New(be, WithWorkers(3))
		if _, err := eng.TryQuery(wrongDense, 1); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("backend %q dense dim mismatch: err = %v, want ErrBadQuery", be.Name(), err)
		}
	}
	if _, err := New(bb).TryQuery(wrongPacked, 1); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("packed dim mismatch: err = %v, want ErrBadQuery", err)
	}
	// Both representations present but with disagreeing dims: malformed
	// batch regardless of backend.
	mixed := &Batch{
		Dense:  tensor.Randn(rng, 1, 1, d),
		Packed: []*hdc.Binary{hdc.NewRandomBinary(rng, d / 2)},
	}
	if err := mixed.Validate(); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("cross-representation dim mismatch: err = %v, want ErrBatchMismatch", err)
	}
}

// An empty class set must surface as the typed ErrNoClasses from
// NewChecked (New keeps the fail-fast panic for code paths that should
// never see one).
func TestNewCheckedEmptyClassSet(t *testing.T) {
	empty := &fakeBackend{dim: 4}
	if _, err := NewChecked(empty); !errors.Is(err, ErrNoClasses) {
		t.Fatalf("NewChecked error = %v, want ErrNoClasses", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an empty class set")
		}
	}()
	New(empty)
}

// TryQuery on a valid batch must agree exactly with Query.
func TestTryQueryMatchesQuery(t *testing.T) {
	const classes, d = 11, 64
	rng := rand.New(rand.NewSource(7))
	fb, _, _ := validateFixture(classes, d)
	eng := New(fb, WithWorkers(3))
	batch := DenseBatch(tensor.Randn(rng, 1, 6, d))
	want := eng.Query(batch, 4)
	got, err := eng.TryQuery(batch, 4)
	if err != nil {
		t.Fatalf("TryQuery: %v", err)
	}
	for p := range want {
		for i := range want[p].TopK {
			if got[p].TopK[i] != want[p].TopK[i] {
				t.Fatalf("probe %d rank %d: TryQuery %+v != Query %+v", p, i, got[p].TopK[i], want[p].TopK[i])
			}
		}
	}
	if _, err := eng.TryQuery(batch, 0); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("k=0: err = %v, want ErrBadQuery", err)
	}
}
