// Package lat provides the lock-free log-bucketed latency histogram
// shared by the serving layer's per-stage timing (/stats), the
// distributed router's shard round-trip tracking, and cmd/hdcload's
// client-side open-loop measurements.
//
// The layout is HDR-style log-linear: durations bucket by the position
// of their highest set bit (one octave per power of two of nanoseconds)
// subdivided into 16 linear sub-buckets, so any recorded value is
// reproduced by Quantile with at most ~6.25% relative error while
// Observe stays one atomic add on a fixed-size array — no locks, no
// allocation, safe for any number of concurrent recorders. That cheap
// Observe is the point: the coalescer and router call it on their hot
// paths, where a mutex-guarded reservoir would serialize exactly the
// traffic the histogram is supposed to measure.
package lat

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// octaves covers [1ns, 2^40ns ≈ 18min); longer observations clamp
	// into the last octave. Serving latencies live in µs–s, comfortably
	// inside.
	octaves = 40
	// subBuckets linearly subdivides each octave; 16 gives ≤ 1/16
	// relative quantile error within an octave.
	subBuckets = 16
	numBuckets = octaves * subBuckets
)

// Hist is a concurrent fixed-footprint latency histogram. The zero
// value is ready to use.
type Hist struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	max     atomic.Uint64 // max nanoseconds, monotone CAS
}

// bucketOf maps a nanosecond duration to its bucket index.
func bucketOf(ns uint64) int {
	if ns < subBuckets {
		// The first octave degenerates: values below 16ns index linearly.
		return int(ns)
	}
	exp := bits.Len64(ns) - 1 // position of the highest set bit, ≥ 4
	sub := (ns >> (uint(exp) - 4)) & (subBuckets - 1)
	idx := (exp-3)*subBuckets + int(sub)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest nanosecond value mapping to bucket i
// (the inverse of bucketOf, used to reconstruct quantiles).
func bucketLow(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := i/subBuckets + 3
	sub := uint64(i % subBuckets)
	return (1 << uint(exp)) | sub<<(uint(exp)-4)
}

// Observe records one duration. Negative durations clamp to zero.
//
//hdc:hotpath
func (h *Hist) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Snapshot is a consistent-enough copy of a histogram for reporting:
// counters are read individually, so a snapshot taken under concurrent
// Observe traffic may be off by the few in-flight observations —
// irrelevant for the quantiles it feeds.
type Snapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	Max   float64 `json:"max_ms"`

	buckets []uint64
}

// Snapshot freezes the histogram into a quantile report. Milliseconds
// everywhere: that is the unit serving SLOs are written in.
func (h *Hist) Snapshot() Snapshot {
	s := Snapshot{buckets: make([]uint64, numBuckets)}
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
		s.Count += s.buckets[i]
	}
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(h.sum.Load()) / float64(s.Count) / 1e6
	s.Max = float64(h.max.Load()) / 1e6
	s.P50 = s.quantile(0.50)
	s.P90 = s.quantile(0.90)
	s.P99 = s.quantile(0.99)
	s.P999 = s.quantile(0.999)
	return s
}

// quantile returns the q-quantile in milliseconds by walking the
// cumulative bucket counts; the reported value is the lower bound of
// the containing bucket (within one sub-bucket of the true value).
func (s *Snapshot) quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.buckets {
		cum += c
		if cum >= rank {
			ns := bucketLow(i)
			// The max is exact; never report a quantile beyond it.
			if m := float64(s.Max) * 1e6; float64(ns) > m {
				return s.Max
			}
			return float64(ns) / 1e6
		}
	}
	return s.Max
}

// Quantile exposes arbitrary quantiles for callers (cmd/hdcload's
// report) beyond the canned fields.
func (s *Snapshot) Quantile(q float64) float64 { return s.quantile(q) }
