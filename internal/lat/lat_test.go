package lat

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Every duration must land in a bucket whose reconstructed lower bound
// is within the documented ~6.25% relative error.
func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100000; trial++ {
		ns := uint64(rng.Int63n(int64(10 * time.Minute)))
		i := bucketOf(ns)
		lo := bucketLow(i)
		if lo > ns {
			t.Fatalf("bucketLow(%d)=%d exceeds the value %d that mapped there", i, lo, ns)
		}
		if ns >= subBuckets && i < numBuckets-1 {
			hi := bucketLow(i + 1)
			if hi <= ns {
				t.Fatalf("value %d maps to bucket %d but next bucket starts at %d", ns, i, hi)
			}
			if rel := float64(ns-lo) / float64(ns); rel > 1.0/subBuckets+1e-9 {
				t.Fatalf("value %d bucket lower bound %d: relative error %.4f", ns, lo, rel)
			}
		}
	}
}

// bucketLow must be strictly monotone over the bucket index range —
// the property quantile walking depends on.
func TestBucketLowMonotone(t *testing.T) {
	prev := bucketLow(0)
	for i := 1; i < numBuckets; i++ {
		cur := bucketLow(i)
		if cur <= prev && i >= subBuckets {
			t.Fatalf("bucketLow not monotone at %d: %d then %d", i, prev, cur)
		}
		if got := bucketOf(cur); got != i {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d", i, got)
		}
		prev = cur
	}
}

// Quantiles of a known uniform population must come out near the true
// values, and the canned percentiles must be ordered.
func TestQuantiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("count %d", s.Count)
	}
	check := func(q, want float64) {
		got := s.Quantile(q)
		if got < want*0.90 || got > want*1.05 {
			t.Fatalf("q%.3f = %.3fms, want ≈ %.3fms", q, got, want)
		}
	}
	check(0.50, 5.0)
	check(0.90, 9.0)
	check(0.99, 9.9)
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("percentiles out of order: %+v", s)
	}
	if s.Max < 9.99 || s.Max > 10.01 {
		t.Fatalf("max %.3fms, want 10ms", s.Max)
	}
	if s.Mean < 4.9 || s.Mean > 5.2 {
		t.Fatalf("mean %.3fms, want ≈ 5ms", s.Mean)
	}
}

// The zero histogram snapshots to all-zero without dividing by zero.
func TestEmptySnapshot(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 || s.Mean != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

// Concurrent observers must not lose counts (run under -race in CI).
func TestConcurrentObserve(t *testing.T) {
	var h Hist
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("lost observations: %d, want %d", got, workers*per)
	}
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("snapshot count %d", s.Count)
	}
}

// Negative and overflow-octave durations must clamp, not panic or
// corrupt the index computation.
func TestObserveExtremes(t *testing.T) {
	var h Hist
	h.Observe(-time.Second)
	h.Observe(time.Duration(1) << 62)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count %d", s.Count)
	}
}
