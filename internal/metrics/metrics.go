// Package metrics implements the paper's evaluation metrics: top-1/top-5
// classification accuracy (§IV-A-b), per-attribute-group top-1 % accuracy
// and Weighted Mean Average Precision (WMAP) for the attribute-extraction
// task of Table I, multi-seed mean±std aggregation, and the Pareto-front
// extraction behind Fig. 4.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// TopKAccuracy returns the fraction of rows whose true label appears in
// the k highest-scoring entries of the score matrix [N, C].
func TopKAccuracy(scores *tensor.Tensor, labels []int, k int) float64 {
	if scores.Rank() != 2 || scores.Dim(0) != len(labels) {
		panic(fmt.Sprintf("metrics.TopKAccuracy: scores %v vs %d labels", scores.Shape(), len(labels)))
	}
	if k <= 0 || k > scores.Dim(1) {
		panic(fmt.Sprintf("metrics.TopKAccuracy: k=%d with %d classes", k, scores.Dim(1)))
	}
	var hits int
	for i, y := range labels {
		for _, idx := range tensor.TopKRow(scores, i, k) {
			if idx == y {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(labels))
}

// Top1Accuracy is TopKAccuracy with k=1.
func Top1Accuracy(scores *tensor.Tensor, labels []int) float64 {
	return TopKAccuracy(scores, labels, 1)
}

// AveragePrecision computes AP for one binary attribute: scores ranks the
// samples, targets marks the positives. It is the area under the
// precision-recall curve using the standard finite-sum formulation
// (precision averaged at each positive hit). Returns 0 when there are no
// positives.
func AveragePrecision(scores []float32, targets []float32) float64 {
	if len(scores) != len(targets) {
		panic(fmt.Sprintf("metrics.AveragePrecision: %d scores vs %d targets", len(scores), len(targets)))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var positives, sum float64
	for rank, i := range idx {
		if targets[i] > 0.5 {
			positives++
			sum += positives / float64(rank+1)
		}
	}
	if positives == 0 {
		return 0
	}
	return sum / positives
}

// WMAP computes the Weighted Mean Average Precision over attribute
// columns: per-attribute AP combined with weights inversely proportional
// to the attribute's positive frequency, compensating for attributes that
// are less frequent in the dataset (§IV-A-b). Columns with no positives
// are skipped (their AP is undefined). scores and targets are [N, α].
func WMAP(scores, targets *tensor.Tensor) float64 {
	if !scores.SameShape(targets) || scores.Rank() != 2 {
		panic(fmt.Sprintf("metrics.WMAP: scores %v vs targets %v", scores.Shape(), targets.Shape()))
	}
	n, alpha := scores.Dim(0), scores.Dim(1)
	col := make([]float32, n)
	tcol := make([]float32, n)
	var wsum, acc float64
	for a := 0; a < alpha; a++ {
		var pos float64
		for i := 0; i < n; i++ {
			col[i] = scores.At(i, a)
			tcol[i] = targets.At(i, a)
			if tcol[i] > 0.5 {
				pos++
			}
		}
		if pos == 0 {
			continue
		}
		w := float64(n) / pos // inverse frequency
		acc += w * AveragePrecision(col, tcol)
		wsum += w
	}
	if wsum == 0 {
		return 0
	}
	return acc / wsum
}

// MAP is the unweighted mean average precision over attribute columns
// with at least one positive.
func MAP(scores, targets *tensor.Tensor) float64 {
	if !scores.SameShape(targets) || scores.Rank() != 2 {
		panic(fmt.Sprintf("metrics.MAP: scores %v vs targets %v", scores.Shape(), targets.Shape()))
	}
	n, alpha := scores.Dim(0), scores.Dim(1)
	col := make([]float32, n)
	tcol := make([]float32, n)
	var count, acc float64
	for a := 0; a < alpha; a++ {
		var pos float64
		for i := 0; i < n; i++ {
			col[i] = scores.At(i, a)
			tcol[i] = targets.At(i, a)
			if tcol[i] > 0.5 {
				pos++
			}
		}
		if pos == 0 {
			continue
		}
		acc += AveragePrecision(col, tcol)
		count++
	}
	if count == 0 {
		return 0
	}
	return acc / count
}

// GroupTop1Accuracy computes, for one attribute group occupying score
// columns [off, off+size), the fraction of samples whose highest-scoring
// value within the group matches the ground-truth active value — the
// "top-1 % accuracy" metric of Table I's A3M comparison.
func GroupTop1Accuracy(scores, targets *tensor.Tensor, off, size int) float64 {
	n := scores.Dim(0)
	var hits, counted int
	for i := 0; i < n; i++ {
		srow := scores.Row(i)[off : off+size]
		trow := targets.Row(i)[off : off+size]
		truth := -1
		for vi, tv := range trow {
			if tv > 0.5 {
				truth = vi
				break
			}
		}
		if truth < 0 {
			continue // no active value recorded for this group
		}
		best := 0
		for vi := 1; vi < size; vi++ {
			if srow[vi] > srow[best] {
				best = vi
			}
		}
		counted++
		if best == truth {
			hits++
		}
	}
	if counted == 0 {
		return 0
	}
	return float64(hits) / float64(counted)
}

// MeanStd aggregates per-seed results into the paper's µ±σ report format
// (sample standard deviation).
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		panic("metrics.MeanStd: empty input")
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) == 1 {
		return mean, 0
	}
	var sv float64
	for _, x := range xs {
		d := x - mean
		sv += d * d
	}
	return mean, math.Sqrt(sv / float64(len(xs)-1))
}

// Point is one model on the accuracy-vs-parameters plane of Fig. 4.
type Point struct {
	Name     string
	Params   int     // trainable parameter count
	Accuracy float64 // top-1 accuracy
}

// ParetoFront returns the subset of points not dominated by any other
// point (another point with at least as high accuracy and at most as many
// parameters, strictly better in one), sorted by parameter count. The
// paper's claim is that HDC-ZSC and Trainable-MLP lie on this front.
func ParetoFront(points []Point) []Point {
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Accuracy >= p.Accuracy && q.Params <= p.Params &&
				(q.Accuracy > p.Accuracy || q.Params < p.Params) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(a, b int) bool { return front[a].Params < front[b].Params })
	return front
}

// OnFront reports whether the named point is part of the Pareto front.
func OnFront(points []Point, name string) bool {
	for _, p := range ParetoFront(points) {
		if p.Name == name {
			return true
		}
	}
	return false
}

// HarmonicMean returns 2ab/(a+b), the standard GZSL summary of seen and
// unseen accuracies; zero when either input is zero.
func HarmonicMean(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}
