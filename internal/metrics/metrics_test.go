package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestTopKAccuracy(t *testing.T) {
	scores := tensor.FromSlice([]float32{
		0.1, 0.9, 0.0, // argmax 1
		0.8, 0.1, 0.15, // argmax 0, runner-up 2
		0.2, 0.3, 0.5, // argmax 2
	}, 3, 3)
	labels := []int{1, 2, 2}
	if got := Top1Accuracy(scores, labels); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("top-1 = %v, want 2/3", got)
	}
	if got := TopKAccuracy(scores, labels, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("top-2 = %v, want 1 (label 2 is second for row 1)", got)
	}
}

func TestTopKAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on label mismatch")
		}
	}()
	Top1Accuracy(tensor.New(2, 3), []int{0})
}

func TestAveragePrecisionPerfectRanking(t *testing.T) {
	scores := []float32{0.9, 0.8, 0.2, 0.1}
	targets := []float32{1, 1, 0, 0}
	if got := AveragePrecision(scores, targets); math.Abs(got-1) > 1e-9 {
		t.Fatalf("AP = %v, want 1 for perfect ranking", got)
	}
}

func TestAveragePrecisionWorstRanking(t *testing.T) {
	scores := []float32{0.9, 0.8, 0.2, 0.1}
	targets := []float32{0, 0, 1, 1}
	// Positives at ranks 3,4: AP = (1/3 + 2/4)/2 = 5/12.
	if got := AveragePrecision(scores, targets); math.Abs(got-5.0/12) > 1e-9 {
		t.Fatalf("AP = %v, want 5/12", got)
	}
}

func TestAveragePrecisionNoPositives(t *testing.T) {
	if got := AveragePrecision([]float32{1, 2}, []float32{0, 0}); got != 0 {
		t.Fatalf("AP with no positives = %v, want 0", got)
	}
}

func TestWMAPBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, a := 4+rng.Intn(12), 2+rng.Intn(8)
		scores := tensor.RandUniform(rng, -1, 1, n, a)
		targets := tensor.New(n, a)
		for i := range targets.Data {
			if rng.Float64() < 0.3 {
				targets.Data[i] = 1
			}
		}
		w := WMAP(scores, targets)
		return w >= 0 && w <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWMAPPerfectPredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	targets := tensor.New(20, 5)
	for i := range targets.Data {
		if rng.Float64() < 0.3 {
			targets.Data[i] = 1
		}
	}
	// Scores equal to targets rank all positives first.
	scores := targets.Clone()
	if got := WMAP(scores, targets); math.Abs(got-1) > 1e-9 {
		t.Fatalf("WMAP of perfect predictor = %v, want 1", got)
	}
	if got := MAP(scores, targets); math.Abs(got-1) > 1e-9 {
		t.Fatalf("MAP of perfect predictor = %v, want 1", got)
	}
}

func TestWMAPUpweightsRareAttributes(t *testing.T) {
	// Attribute 0: common (8/10 positive), predicted badly.
	// Attribute 1: rare (1/10 positive), predicted perfectly.
	n := 10
	scores := tensor.New(n, 2)
	targets := tensor.New(n, 2)
	for i := 0; i < 8; i++ {
		targets.Set(1, i, 0)
	}
	// Bad ranking for attribute 0: positives scored lowest.
	for i := 0; i < n; i++ {
		if targets.At(i, 0) == 1 {
			scores.Set(float32(-i), i, 0)
		} else {
			scores.Set(float32(10+i), i, 0)
		}
	}
	targets.Set(1, 3, 1)
	scores.Set(5, 3, 1) // perfect for attribute 1
	wmap := WMAP(scores, targets)
	mapv := MAP(scores, targets)
	if wmap <= mapv {
		t.Fatalf("WMAP (%v) should exceed MAP (%v) when the rare attribute is the well-predicted one", wmap, mapv)
	}
}

func TestGroupTop1Accuracy(t *testing.T) {
	// Group occupies columns 1..3 (size 3).
	scores := tensor.FromSlice([]float32{
		9, 0.1, 0.9, 0.2, 7,
		9, 0.8, 0.1, 0.0, 7,
	}, 2, 5)
	targets := tensor.FromSlice([]float32{
		0, 0, 1, 0, 0, // truth: slot 1 of group → predicted slot 1 ✓
		0, 0, 0, 1, 0, // truth: slot 2 → predicted slot 0 ✗
	}, 2, 5)
	if got := GroupTop1Accuracy(scores, targets, 1, 3); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("group top-1 = %v, want 0.5", got)
	}
}

func TestGroupTop1SkipsSamplesWithoutTruth(t *testing.T) {
	scores := tensor.FromSlice([]float32{0.9, 0.1}, 1, 2)
	targets := tensor.FromSlice([]float32{0, 0}, 1, 2)
	if got := GroupTop1Accuracy(scores, targets, 0, 2); got != 0 {
		t.Fatalf("expected 0 for no ground truth, got %v", got)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-9 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if math.Abs(s-2.13808993) > 1e-6 { // sample std
		t.Fatalf("std = %v", s)
	}
	m1, s1 := MeanStd([]float64{3})
	if m1 != 3 || s1 != 0 {
		t.Fatalf("single-element MeanStd = %v ± %v", m1, s1)
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{Name: "ours", Params: 26, Accuracy: 63.8},
		{Name: "eszsl", Params: 46, Accuracy: 53.9},   // dominated
		{Name: "gen1", Params: 47, Accuracy: 65.0},    // on front (best acc above 26 params until gen2)
		{Name: "gen2", Params: 67, Accuracy: 67.7},    // on front (highest accuracy)
		{Name: "small-bad", Params: 30, Accuracy: 50}, // dominated
	}
	front := ParetoFront(pts)
	names := map[string]bool{}
	for _, p := range front {
		names[p.Name] = true
	}
	if !names["ours"] || !names["gen2"] || !names["gen1"] {
		t.Fatalf("front wrong: %v", front)
	}
	if names["eszsl"] || names["small-bad"] {
		t.Fatalf("dominated points on front: %v", front)
	}
	if !OnFront(pts, "ours") {
		t.Fatal("OnFront disagrees with ParetoFront")
	}
	// Sorted by params.
	for i := 1; i < len(front); i++ {
		if front[i].Params < front[i-1].Params {
			t.Fatal("front not sorted by parameter count")
		}
	}
}

// Property: the Pareto front never contains a dominated point.
func TestPropertyParetoFrontUndominated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				Name:     string(rune('a' + i)),
				Params:   rng.Intn(100),
				Accuracy: rng.Float64() * 100,
			}
		}
		for _, p := range ParetoFront(pts) {
			for _, q := range pts {
				if q.Name == p.Name {
					continue
				}
				if q.Accuracy >= p.Accuracy && q.Params <= p.Params &&
					(q.Accuracy > p.Accuracy || q.Params < p.Params) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
