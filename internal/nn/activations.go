package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, max(0, x), any rank.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative activations, recording the pass-through mask
// for Backward only in training mode (eval retains nothing).
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if !train {
		r.mask = nil
		reluInto(out, x)
		return out
	}
	r.mask = make([]bool, x.Len())
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Infer zeroes negative activations without touching layer state.
func (r *ReLU) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	out := s.AllocLike(x)
	reluInto(out, x)
	return out
}

// reluInto writes max(0, x) into the pre-zeroed out.
func reluInto(out, x *tensor.Tensor) {
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
}

// Backward gates the incoming gradient by the forward mask.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn.ReLU: Backward called before Forward")
	}
	dx := tensor.New(dout.Shape()...)
	for i, pass := range r.mask {
		if pass {
			dx.Data[i] = dout.Data[i]
		}
	}
	return dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1−P) (inverted dropout), passing inputs through
// unchanged at evaluation time.
type Dropout struct {
	P    float32
	rng  *rand.Rand
	mask []bool
}

// NewDropout builds a dropout layer with drop probability p using rng.
func NewDropout(rng *rand.Rand, p float32) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn.Dropout: p must be in [0, 1)")
	}
	return &Dropout{P: p, rng: rng}
}

// Forward applies dropout in training mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := tensor.New(x.Shape()...)
	d.mask = make([]bool, x.Len())
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float32() >= d.P {
			out.Data[i] = v * scale
			d.mask[i] = true
		}
	}
	return out
}

// Backward propagates gradient only through surviving units.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return dout
	}
	dx := tensor.New(dout.Shape()...)
	scale := 1 / (1 - d.P)
	for i, keep := range d.mask {
		if keep {
			dx.Data[i] = dout.Data[i] * scale
		}
	}
	return dx
}

// Infer passes the input through unchanged (dropout is inactive at
// inference, exactly like Forward in eval mode).
func (d *Dropout) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor { return x }

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// Flatten reshapes [N, C, H, W] activations to [N, C·H·W]; backward
// restores the original shape.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward restores the pre-flatten shape.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn.Flatten: Backward called before Forward")
	}
	return dout.Reshape(f.inShape...)
}

// Infer flattens all but the batch dimension without touching layer
// state; the result is an arena-backed reshaped view sharing x's data.
func (f *Flatten) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	n := x.Dim(0)
	return s.View(x, n, x.Len()/n)
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
