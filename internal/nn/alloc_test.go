package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestResNetInferZeroAlloc pins the steady-state allocation contract of
// the stateless inference path: with a warm Scratch (arena slabs
// coalesced, GEMM panels and packed weight caches built), a full ResNet
// forward allocates nothing — tensors, headers, shapes, im2col and GEMM
// workspace all come from scratch-owned storage.
func TestResNetInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI")
	}
	rng := rand.New(rand.NewSource(17))
	for _, cfg := range []ResNetConfig{
		MicroResNet50Config(4),
		MicroResNet50Config(4).WithFlatten(16, 16),
	} {
		net := NewResNet(rng, cfg)
		x := tensor.Randn(rng, 1, 2, 3, 16, 16)
		sc := NewScratch()
		for i := 0; i < 2; i++ { // size the arena, coalesce slabs
			sc.Reset()
			net.Infer(x, sc)
		}
		avg := testing.AllocsPerRun(20, func() {
			sc.Reset()
			net.Infer(x, sc)
		})
		if avg != 0 {
			t.Fatalf("%s (flatten=%v): Infer allocates %.1f objects per call in steady state, want 0",
				cfg.Name, cfg.FlattenPool, avg)
		}
	}
}

// TestLinearInferZeroAlloc pins the same contract for a lone projection
// layer — the path every serving embed call ends with.
func TestLinearInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI")
	}
	rng := rand.New(rand.NewSource(18))
	l := NewLinear(rng, "fc", 256, 128, true)
	x := tensor.Randn(rng, 1, 32, 256)
	sc := NewScratch()
	sc.Reset()
	l.Infer(x, sc)
	avg := testing.AllocsPerRun(50, func() {
		sc.Reset()
		l.Infer(x, sc)
	})
	if avg != 0 {
		t.Fatalf("Linear.Infer allocates %.1f objects per call in steady state, want 0", avg)
	}
}

// TestLinearPackedWeightInvalidation pins the cache-coherence contract
// of the pre-packed weight panel: optimizer steps and checkpoint loads
// bump the weight version, so Infer repacks instead of serving stale
// weights.
func TestLinearPackedWeightInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	l := NewLinear(rng, "fc", 12, 7, true)
	x := tensor.Randn(rng, 1, 3, 12)

	before := InferDetached(l, x)

	// Mutate the weights the supported way: an optimizer step.
	for i := range l.W.Grad.Data {
		l.W.Grad.Data[i] = 0.5
	}
	NewSGD(0.1, 0, 0).Step(l.Params())

	after := InferDetached(l, x)
	want := l.Forward(x, false)
	requireBitwiseEqual(t, "post-step Infer vs Forward", after, want)

	same := true
	for i := range before.Data {
		if math.Float32bits(before.Data[i]) != math.Float32bits(after.Data[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Infer output unchanged after weight mutation: stale packed panel served")
	}

	// Direct Value writes must be announced via BumpVersion.
	l.W.Value.Data[0] += 1
	l.W.BumpVersion()
	requireBitwiseEqual(t, "post-bump Infer vs Forward", InferDetached(l, x), l.Forward(x, false))
}
