package nn

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// Frozen inference-graph compiler.
//
// The layer-by-layer Infer path is already stateless and zero-alloc,
// but it still executes the graph the way it was trained: each ResNet
// block makes a conv GEMM pass, a BatchNorm pass, a ReLU pass and a
// residual-add pass over its activation tensor, and all but the first
// are pure memory traffic. Compile walks a frozen network once and
// produces an immutable execution plan in which
//
//   - every frozen BatchNorm2D is FOLDED into the preceding convolution:
//     w'_c = w_c·γ_c/√(σ²_c+ε), b'_c = β_c − μ_c·γ_c/√(σ²_c+ε), so the
//     normalization costs nothing at all;
//   - bias, ReLU and the block-ending residual add are fused into the
//     GEMM write-back epilogue (tensor.GemmOpts ReLU/Accum), so each
//     activation tensor is written exactly once, while still hot;
//   - internal activations live in [C, N·H·W] ("CNHW") layout — the
//     natural output layout of a batched im2col GEMM — which removes
//     the per-conv NCHW scatter entirely and lets 1×1 stride-1
//     convolutions (two of the three convs in a bottleneck block) run
//     the GEMM straight off the previous activation with no im2col at
//     all;
//   - buffers are pre-planned: the compiler computes the live range of
//     every intermediate value, assigns offsets in one arena
//     reservation sized to the peak, and the plan's steady state
//     allocates nothing by construction.
//
// Invalidation mirrors the PR-4 packed-weight cache: the plan is keyed
// on the Version of every parameter plus a content fingerprint of every
// BatchNorm2D's running statistics (StatsFingerprint); an optimizer
// step, LoadParams — including a state-only restore through
// StateParams, which writes the stat tensors directly — or a training
// Forward pass makes the next Infer refold transparently. Like the
// layer caches, the version check is not synchronized against writers —
// a network must be frozen while it serves.
//
// Numerics: folding changes float32 rounding (the scale multiplies the
// weights before the product instead of the sum after it), so
// CompiledNet.Infer is NOT bitwise equal to Forward(x, false); it is
// pinned within tolerance of a float64 oracle by the compile tests.
// The compiled path itself is bitwise deterministic: every epilogue is
// applied per output element after its complete, partition-independent
// k accumulation, so results are identical for any Scratch worker
// budget and any GOMAXPROCS.

// Compilable lets composite modules outside this package describe
// themselves to the graph compiler as an ordered chain of layers
// (core.ImageEncoder: backbone, then projection).
type Compilable interface {
	CompileChain() []Layer
}

// CompiledNet is an immutable inference plan over a frozen network; it
// implements Inferer and is safe for any number of concurrent Infer
// callers (each with its own Scratch). Plans are built lazily per input
// geometry and rebuilt when the source network's parameter or
// batch-norm-statistic versions move.
type CompiledNet struct {
	root   Layer
	params []*Param
	bns    []*BatchNorm2D

	// calib, when non-nil, makes this a QUANTIZED compiler
	// (CompileQuantized): plans for the calibration batch's geometry
	// (qkey) are lowered to int8 GEMM steps with scales calibrated on
	// this batch; other geometries fall back to f32 plans.
	calib *tensor.Tensor
	qkey  planKey

	mu    sync.Mutex // serializes plan building; readers are lock-free
	state atomic.Pointer[compiledState]
}

// compiledState pairs one fold generation's fingerprint with the plans
// built from it. It is immutable: adding a plan publishes a copy. q is
// the quantized plan for the calibration geometry (CompileQuantized
// nets only); it shares the fingerprint discipline, so an optimizer
// step or checkpoint load recalibrates and requantizes transparently.
type compiledState struct {
	fp    []uint64
	plans map[planKey]*plan
	q     *qplan
}

// planKey identifies a plan by per-sample input geometry: (C, H, W) for
// rank-4 image input, (d, -1, -1) for rank-2 feature input.
type planKey struct{ a, b, c int }

// Compile builds a compiler over l, which must be composed of the
// layer types this package knows how to lower (Conv2D, BatchNorm2D,
// ReLU, Dropout, Linear, Flatten, MaxPool2D, GlobalAvgPool, Sequential,
// residual blocks, ResNet, and Compilable composites). The returned
// CompiledNet builds its execution plans on first use per input shape.
func Compile(l Layer) (*CompiledNet, error) {
	bns, err := scanCompilable(l)
	if err != nil {
		return nil, err
	}
	return &CompiledNet{root: l, params: l.Params(), bns: bns}, nil
}

// MustCompile is Compile, panicking on unsupported layers.
func MustCompile(l Layer) *CompiledNet {
	c, err := Compile(l)
	if err != nil {
		panic(err)
	}
	return c
}

// scanCompilable verifies every reachable layer is lowerable and
// collects the batch-norm layers whose running statistics the fold
// depends on, in deterministic traversal order.
func scanCompilable(l Layer) ([]*BatchNorm2D, error) {
	var bns []*BatchNorm2D
	var walk func(l Layer) error
	walk = func(l Layer) error {
		switch t := l.(type) {
		case *Sequential:
			for _, c := range t.Layers {
				if err := walk(c); err != nil {
					return err
				}
			}
		case *ResNet:
			return walk(t.body)
		case *residualBlock:
			if t.shortcut != nil {
				if err := walk(t.shortcut); err != nil {
					return err
				}
			}
			return walk(t.main)
		case *BatchNorm2D:
			bns = append(bns, t)
		case *Conv2D, *Linear, *ReLU, *Dropout, *Flatten, *MaxPool2D, *GlobalAvgPool:
		case Compilable:
			for _, c := range t.CompileChain() {
				if err := walk(c); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("nn.Compile: layer %T has no lowering; teach compile.go about it or serve it through the layer Infer path", l)
		}
		return nil
	}
	if err := walk(l); err != nil {
		return nil, err
	}
	return bns, nil
}

// fingerprint returns the current fold key: every parameter version,
// then every batch-norm running-stat content hash, in scan order.
//hdc:coldpath version probe allocates only on rebuild checks
func (c *CompiledNet) fingerprint() []uint64 {
	fp := make([]uint64, 0, len(c.params)+len(c.bns))
	for _, p := range c.params {
		fp = append(fp, p.Version())
	}
	for _, bn := range c.bns {
		fp = append(fp, bn.StatsFingerprint())
	}
	return fp
}

// fresh reports whether fp still matches the live network, without
// allocating (the per-Infer staleness check).
func (c *CompiledNet) fresh(fp []uint64) bool {
	i := 0
	for _, p := range c.params {
		if fp[i] != p.Version() {
			return false
		}
		i++
	}
	for _, bn := range c.bns {
		if fp[i] != bn.StatsFingerprint() {
			return false
		}
		i++
	}
	return true
}

// Infer runs the compiled plan for x's geometry, refolding first if the
// network changed since the plan was built. The output tensor is
// scratch-backed (valid until s.Reset) like every layer Infer; with a
// warm Scratch and a built plan the call allocates nothing.
//hdc:hotpath
func (c *CompiledNet) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	var key planKey
	switch x.Rank() {
	case 4:
		key = planKey{x.Dim(1), x.Dim(2), x.Dim(3)}
	case 2:
		key = planKey{x.Dim(1), -1, -1}
	default:
		panic(fmt.Sprintf("nn.CompiledNet: want rank-2 or rank-4 input, have %v", x.Shape()))
	}
	st := c.state.Load()
	if st == nil || !c.fresh(st.fp) {
		st = c.refold()
	}
	if c.calib != nil && key == c.qkey {
		qp := st.q
		if qp == nil {
			var err error
			if qp, err = c.addQPlan(); err != nil {
				panic(err)
			}
		}
		return qp.run(x, s)
	}
	pl := st.plans[key]
	if pl == nil {
		var err error
		if pl, err = c.addPlan(key); err != nil {
			panic(err)
		}
	}
	return pl.run(x, s)
}

// Precompile builds (and caches) the plan for one per-sample input
// shape — [C, H, W] for image nets, [d] for flat nets — returning the
// lowering error instead of panicking. Callers that auto-compile
// user-supplied graphs (serve.NewNetEmbedder) use it to fall back to
// the layer Infer path at registration time rather than panicking on
// the first request; it also warms the plan before traffic arrives.
func (c *CompiledNet) Precompile(sampleShape ...int) error {
	var key planKey
	switch len(sampleShape) {
	case 3:
		key = planKey{sampleShape[0], sampleShape[1], sampleShape[2]}
	case 1:
		key = planKey{sampleShape[0], -1, -1}
	default:
		return fmt.Errorf("nn.CompiledNet: want a rank-1 or rank-3 per-sample shape, have %v", sampleShape)
	}
	st := c.state.Load()
	if st == nil || !c.fresh(st.fp) {
		st = c.refold()
	}
	if c.calib != nil && key == c.qkey {
		if st.q != nil {
			return nil
		}
		_, err := c.addQPlan()
		return err
	}
	if st.plans[key] != nil {
		return nil
	}
	_, err := c.addPlan(key)
	return err
}

// refold publishes a fresh empty state for the network's current
// versions (plans rebuild lazily per geometry).
//hdc:coldpath rebuild after a version bump; runs once per mutation
func (c *CompiledNet) refold() *compiledState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.state.Load(); st != nil && c.fresh(st.fp) {
		return st // another caller refolded while we waited
	}
	st := &compiledState{fp: c.fingerprint(), plans: map[planKey]*plan{}}
	c.state.Store(st)
	return st
}

// addPlan builds the plan for key and publishes a state extended with
// it. Concurrent builders for the same key produce identical plans; one
// wins the publish, and losing duplicates are equivalent and harmless.
//hdc:coldpath one-time plan construction per batch geometry
func (c *CompiledNet) addPlan(key planKey) (*plan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.state.Load()
	if cur == nil || !c.fresh(cur.fp) {
		cur = &compiledState{fp: c.fingerprint(), plans: map[planKey]*plan{}}
	}
	if pl := cur.plans[key]; pl != nil {
		c.state.Store(cur)
		return pl, nil
	}
	pl, err := buildPlan(c.root, key)
	if err != nil {
		return nil, err
	}
	next := &compiledState{fp: cur.fp, plans: make(map[planKey]*plan, len(cur.plans)+1), q: cur.q}
	//hdc:allow determinism copy-on-write into a fresh map; key order does not affect the published state
	for k, v := range cur.plans {
		next.plans[k] = v
	}
	next.plans[key] = pl
	c.state.Store(next)
	return pl, nil
}

// addQPlan builds the quantized plan for the calibration geometry and
// publishes a state extended with it, mirroring addPlan.
//hdc:coldpath one-time quantized plan construction
func (c *CompiledNet) addQPlan() (*qplan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.state.Load()
	if cur == nil || !c.fresh(cur.fp) {
		cur = &compiledState{fp: c.fingerprint(), plans: map[planKey]*plan{}}
	}
	if cur.q != nil {
		c.state.Store(cur)
		return cur.q, nil
	}
	qp, err := buildQPlan(c.root, c.qkey, c.calib)
	if err != nil {
		return nil, err
	}
	next := &compiledState{fp: cur.fp, plans: make(map[planKey]*plan, len(cur.plans)), q: qp}
	//hdc:allow determinism copy-on-write into a fresh map; key order does not affect the published state
	for k, v := range cur.plans {
		next.plans[k] = v
	}
	c.state.Store(next)
	return qp, nil
}

// --- Plan representation --------------------------------------------------

// plan is one immutable execution schedule for a fixed per-sample input
// geometry. Every intermediate value has a pre-assigned offset in a
// single slab whose per-sample footprint is the peak live size the
// scheduler computed; at run time all offsets scale by the batch size,
// which preserves disjointness for any N.
type plan struct {
	ops     []planOp
	valOff  []int // per value: slab offset in per-sample floats; -1 = the external input
	valSize []int // per value: per-sample float count
	slot    int   // per-sample slab floats (peak live)
	outID   int
	outDims []int // per-sample output dims (batch axis prepended at run time)
}

// planOp is one fused execution step.
type planOp interface {
	run(p *plan, slab, x []float32, n int, s *Scratch)
}

// val resolves a value id to its runtime region.
func (p *plan) val(id int, slab, x []float32, n int) []float32 {
	if p.valOff[id] < 0 {
		return x
	}
	off := p.valOff[id] * n
	return slab[off : off+p.valSize[id]*n]
}

// run executes the plan over x [N, ...] with s's workspace.
//hdc:hotpath
func (p *plan) run(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	n := x.Dim(0)
	slab := s.Grab(p.slot * n)
	for _, op := range p.ops {
		op.run(p, slab, x.Data, n, s)
	}
	out := p.val(p.outID, slab, x.Data, n)
	switch len(p.outDims) {
	case 1:
		return s.Wrap(out, n, p.outDims[0])
	case 3:
		return s.Wrap(out, n, p.outDims[0], p.outDims[1], p.outDims[2])
	default:
		panic("nn.CompiledNet: unsupported output rank")
	}
}

// --- Ops ------------------------------------------------------------------

// opConv is a convolution with everything the compiler could fold into
// it: batch-norm scale/shift baked into w/bias, an optional residual
// accumulator, and an optional ReLU — one GEMM, zero extra passes. The
// output is CNHW [outC, N·oh·ow]. 1×1 stride-1 convs over CNHW input
// skip im2col entirely: the input IS the GEMM operand.
type opConv struct {
	w    []float32 // [outC, inC·kH·kW], folded
	bias []float32 // folded channel bias, nil if none
	relu bool

	inID, outID int
	colsID      int // im2col workspace value, -1 on the 1×1 fast path
	accID       int // residual accumulator value, -1 if none

	inNCHW                         bool // input layout (the plan's external input)
	inC, outC, kH, kW, stride, pad int
	ih, iw, oh, ow                 int
}

//hdc:hotpath
func (o *opConv) run(p *plan, slab, x []float32, n int, s *Scratch) {
	in := p.val(o.inID, slab, x, n)
	out := p.val(o.outID, slab, x, n)
	g := s.GemmOpts()
	g.RowBias = o.bias
	g.ReLU = o.relu
	if o.accID >= 0 {
		g.Accum = p.val(o.accID, slab, x, n)
	}
	ncols := n * o.oh * o.ow
	if o.colsID < 0 {
		tensor.GemmSlices(out, o.w, in, o.outC, o.inC, ncols, g)
		return
	}
	cols := p.val(o.colsID, slab, x, n)
	o.im2col(cols, in, n)
	tensor.GemmSlices(out, o.w, cols, o.outC, o.inC*o.kH*o.kW, ncols, g)
}

// im2col writes the full batched patch matrix [inC·kH·kW, N·oh·ow],
// including zeros at padded positions — a full overwrite, so the
// workspace needs no pre-clearing. The values match Conv2D.im2colInto
// exactly; only the column order differs with the CNHW batch layout.
func (o *opConv) im2col(dst, x []float32, n int) {
	im2colCNHW(dst, x, n, o.inC, o.kH, o.kW, o.stride, o.pad, o.ih, o.iw, o.oh, o.ow, o.inNCHW)
}

// im2colCNHW is the batched CNHW-output patch gather shared by the f32
// (opConv) and int8 (opConv8) compiled convolutions — identical element
// placement, so the quantized path's geometry is pinned by the f32
// parity tests. Padded positions are written as the element type's zero
// (the int8 plan's zero point: symmetric scales make q = 0 exact).
//hdc:hotpath
func im2colCNHW[T float32 | int8](dst, x []T, n, inC, kH, kW, stride, pad, h, w, oh, ow int, inNCHW bool) {
	rowStride := n * oh * ow
	sampStride, chanStride := h*w, n*h*w
	if inNCHW {
		sampStride, chanStride = inC*h*w, h*w
	}
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < kH; ky++ {
			for kx := 0; kx < kW; kx++ {
				base := ((ic*kH+ky)*kW + kx) * rowStride
				if ky >= stride {
					// Row-shift derivation: this tap reads source row
					// iy = oy·stride+ky−pad = (oy+1)·stride+(ky−stride)−pad,
					// i.e. exactly tap (ky−stride, kx) shifted up one
					// output row — horizontal clears included. Bulk-copy
					// the overlap from the already-gathered tap and
					// gather only the final output row.
					pbase := ((ic*kH+ky-stride)*kW + kx) * rowStride
					lo, hi := 0, ow
					if pad > kx {
						lo = (pad - kx + stride - 1) / stride
					}
					if t := (w - 1 - kx + pad) / stride + 1; t < hi {
						hi = t
					}
					if hi < lo {
						hi = lo
					}
					ix0 := lo*stride + kx - pad
					iy := (oh-1)*stride + ky - pad
					if !inNCHW {
						// Samples are contiguous within a tap row, so the
						// overlap copy merges into ONE memmove across the
						// batch. Each sample's final row picks up the next
						// sample's first row, but the patch below rewrites
						// every final row anyway.
						copy(dst[base:base+n*oh*ow-ow], dst[pbase+ow:pbase+n*oh*ow])
					}
					for i := 0; i < n; i++ {
						d := dst[base+i*oh*ow : base+i*oh*ow+oh*ow]
						if inNCHW {
							dprev := dst[pbase+i*oh*ow : pbase+i*oh*ow+oh*ow]
							copy(d[:(oh-1)*ow], dprev[ow:])
						}
						row := d[(oh-1)*ow:]
						if iy < 0 || iy >= h {
							clear(row)
							continue
						}
						srow := x[ic*chanStride+i*sampStride+iy*w:]
						clear(row[:lo])
						clear(row[hi:])
						if stride == 1 {
							copy(row[lo:hi], srow[ix0:])
						} else {
							for ox, ix := lo, ix0; ox < hi; ox, ix = ox+1, ix+stride {
								row[ox] = srow[ix]
							}
						}
					}
					continue
				}
				if kx >= stride && !(stride == 1 && ow == w) {
					// Column-shift derivation: within a row this tap reads
					// ix = ox·stride+kx−pad = (ox+1)·stride+(kx−stride)−pad,
					// i.e. tap (ky, kx−stride) shifted left one output
					// column. Bulk-copy (the one-element shift wraps row
					// boundaries) and patch the final column of each row.
					pbase := ((ic*kH+ky)*kW + kx - stride) * rowStride
					ixLast := (ow-1)*stride + kx - pad
					if !inNCHW {
						// Merged one-element shift across the whole batch;
						// the sample-boundary element lands in each final
						// row's last column, which the patch below rewrites.
						copy(dst[base:base+n*oh*ow-1], dst[pbase+1:pbase+n*oh*ow])
					}
					for i := 0; i < n; i++ {
						d := dst[base+i*oh*ow : base+i*oh*ow+oh*ow]
						if inNCHW {
							dprev := dst[pbase+i*oh*ow : pbase+i*oh*ow+oh*ow]
							copy(d[:oh*ow-1], dprev[1:])
						}
						if ixLast < 0 || ixLast >= w {
							for oy := 0; oy < oh; oy++ {
								d[oy*ow+ow-1] = 0
							}
							continue
						}
						src := x[ic*chanStride+i*sampStride:]
						for oy, iy := 0, ky-pad; oy < oh; oy, iy = oy+1, iy+stride {
							var v T
							if iy >= 0 && iy < h {
								v = src[iy*w+ixLast]
							}
							d[oy*ow+ow-1] = v
						}
					}
					continue
				}
				if stride == 1 && ow == w {
					// Same-width rows: the dst→src index delta is the
					// constant dy·w+dx over the whole valid region, so
					// each sample is ONE bulk copy plus cheap edge
					// clears instead of oh tiny per-row copies — the
					// per-call memmove overhead on 8–16 byte rows
					// otherwise dominates the whole gather.
					dy, dx := ky-pad, kx-pad
					oyLo, oyHi := max(0, -dy), min(oh, h-dy)
					lo, hi := max(0, -dx), min(w, w-dx)
					merged := !inNCHW && oh == h && oyLo < oyHi
					if merged {
						// oh·ow == sampStride here, so the constant-delta
						// copy extends across the whole batch in ONE
						// memmove; the pad-row gaps it fills with the
						// neighbouring sample's data are re-cleared in the
						// per-sample pass below.
						off := ic*chanStride + (oyLo+dy)*w + dx + lo
						copy(dst[base+oyLo*w+lo:base+(n-1)*oh*ow+(oyHi-1)*w+hi], x[off:])
					}
					for i := 0; i < n; i++ {
						d := dst[base+i*oh*ow : base+i*oh*ow+oh*ow]
						clear(d[:oyLo*w])
						clear(d[oyHi*w:])
						if oyLo < oyHi {
							if !merged {
								src := x[ic*chanStride+i*sampStride:]
								copy(d[oyLo*w+lo:(oyHi-1)*w+hi], src[(oyLo+dy)*w+dx+lo:])
							}
							if dx != 0 {
								// Re-zero the horizontally padded
								// columns the bulk copy wrapped across
								// row boundaries.
								for oy := oyLo; oy < oyHi; oy++ {
									clear(d[oy*w : oy*w+lo])
									clear(d[oy*w+hi : oy*w+w])
								}
							}
						}
					}
					continue
				}
				// General stride: hoist the valid oy range
				// (0 ≤ oy·stride+ky−pad < h) and ox range
				// (0 ≤ ox·stride+kx−pad < w) to the tap level, bulk-
				// clear the fully padded top/bottom rows, and strength-
				// reduce the source index so the per-element strided
				// gather runs branch- and multiply-free.
				oyLo, oyHi := 0, oh
				if pad > ky {
					oyLo = (pad - ky + stride - 1) / stride
				}
				if t := (h - 1 - ky + pad) / stride + 1; t < oyHi {
					oyHi = t
				}
				if oyHi < oyLo {
					oyHi = oyLo
				}
				lo, hi := 0, ow
				if pad > kx {
					lo = (pad - kx + stride - 1) / stride
				}
				if t := (w - 1 - kx + pad) / stride + 1; t < hi {
					hi = t
				}
				if hi < lo {
					hi = lo
				}
				ix0 := lo*stride + kx - pad
				srcRow0 := (oyLo*stride + ky - pad) * w
				for i := 0; i < n; i++ {
					src := x[ic*chanStride+i*sampStride:]
					d := dst[base+i*oh*ow : base+i*oh*ow+oh*ow]
					clear(d[:oyLo*ow])
					clear(d[oyHi*ow:])
					if stride == 2 && oyLo < oyHi && lo < hi {
						// The downsampling taps' even-byte gather has a
						// vector path for int8 (the pointer-based type
						// assertion compiles to a static check and never
						// allocates). Falls through to the scalar rows
						// on f32, off amd64, or without source slack.
						if d8, ok := any(&d).(*[]int8); ok {
							s8 := *any(&src).(*[]int8)
							if tensor.Gather8Stride2((*d8)[oyLo*ow+lo:], s8[srcRow0+ix0:], oyHi-oyLo, hi-lo, ow, 2*w) {
								if lo > 0 || hi < ow {
									for oy := oyLo; oy < oyHi; oy++ {
										row := d[oy*ow : oy*ow+ow]
										clear(row[:lo])
										clear(row[hi:])
									}
								}
								continue
							}
						}
					}
					for oy := oyLo; oy < oyHi; oy++ {
						row := d[oy*ow : oy*ow+ow]
						srow := src[(oy*stride+ky-pad)*w:]
						clear(row[:lo])
						clear(row[hi:])
						if stride == 1 {
							copy(row[lo:hi], srow[ix0:])
						} else {
							for ox, ix := lo, ix0; ox < hi; ox, ix = ox+1, ix+stride {
								row[ox] = srow[ix]
							}
						}
					}
				}
			}
		}
	}
}

// opLinear is a fully connected layer over the version-cached packed
// weight panel, bias and optional ReLU fused into the epilogue.
type opLinear struct {
	pb   *tensor.PackedB
	w    *tensor.Tensor // raw weights [in, out]; the quantized lowering reads them
	bias []float32
	relu bool
	inID, outID int
	in, out     int
}

func (o *opLinear) run(p *plan, slab, x []float32, n int, s *Scratch) {
	in := p.val(o.inID, slab, x, n)
	out := p.val(o.outID, slab, x, n)
	g := s.GemmOpts()
	g.PB = o.pb
	g.ColBias = o.bias
	g.ReLU = o.relu
	tensor.GemmSlices(out, in, nil, n, o.in, o.out, g)
}

// opAffine is a per-channel scale/shift — a BatchNorm2D the compiler
// could not fold into a preceding convolution.
type opAffine struct {
	scale, shift []float32
	relu         bool
	inID, outID  int
	c, plane     int
	nchw         bool
}

func (o *opAffine) run(p *plan, slab, x []float32, n int, s *Scratch) {
	in := p.val(o.inID, slab, x, n)
	out := p.val(o.outID, slab, x, n)
	sampStride, chanStride := o.plane, n*o.plane
	if o.nchw {
		sampStride, chanStride = o.c*o.plane, o.plane
	}
	for ch := 0; ch < o.c; ch++ {
		a, b := o.scale[ch], o.shift[ch]
		for i := 0; i < n; i++ {
			base := ch*chanStride + i*sampStride
			src := in[base : base+o.plane]
			dst := out[base : base+o.plane]
			if o.relu {
				for j, v := range src {
					if v = a*v + b; v > 0 {
						dst[j] = v
					} else {
						dst[j] = 0
					}
				}
			} else {
				for j, v := range src {
					dst[j] = a*v + b
				}
			}
		}
	}
}

// opReLU is a standalone activation (one the compiler found nothing to
// fuse it into).
type opReLU struct{ inID, outID int }

func (o *opReLU) run(p *plan, slab, x []float32, n int, s *Scratch) {
	in := p.val(o.inID, slab, x, n)
	out := p.val(o.outID, slab, x, n)
	for i, v := range in {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// opAddReLU is the residual merge fallback for blocks whose main branch
// does not end in a conv the add could fuse into.
type opAddReLU struct{ aID, bID, outID int }

func (o *opAddReLU) run(p *plan, slab, x []float32, n int, s *Scratch) {
	a := p.val(o.aID, slab, x, n)
	b := p.val(o.bID, slab, x, n)
	out := p.val(o.outID, slab, x, n)
	for i, v := range a {
		if v += b[i]; v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// opAvgPool reduces spatial activations to per-channel means [N, C],
// accumulating in float64 exactly like the GlobalAvgPool layer.
type opAvgPool struct {
	inID, outID int
	c, plane    int
	nchw        bool
}

func (o *opAvgPool) run(p *plan, slab, x []float32, n int, s *Scratch) {
	in := p.val(o.inID, slab, x, n)
	out := p.val(o.outID, slab, x, n)
	sampStride, chanStride := o.plane, n*o.plane
	if o.nchw {
		sampStride, chanStride = o.c*o.plane, o.plane
	}
	inv := float64(o.plane)
	for ch := 0; ch < o.c; ch++ {
		for i := 0; i < n; i++ {
			src := in[ch*chanStride+i*sampStride:]
			var sum float64
			for _, v := range src[:o.plane] {
				sum += float64(v)
			}
			out[i*o.c+ch] = float32(sum / inv)
		}
	}
}

// opToNCHW transposes a CNHW value back to sample-major order — the
// position-preserving Flatten, and the layout restore when a compiled
// graph ends while still spatial.
type opToNCHW struct {
	inID, outID int
	c, plane    int
}

func (o *opToNCHW) run(p *plan, slab, x []float32, n int, s *Scratch) {
	in := p.val(o.inID, slab, x, n)
	out := p.val(o.outID, slab, x, n)
	for ch := 0; ch < o.c; ch++ {
		for i := 0; i < n; i++ {
			copy(out[(i*o.c+ch)*o.plane:(i*o.c+ch+1)*o.plane],
				in[(ch*n+i)*o.plane:(ch*n+i+1)*o.plane])
		}
	}
}

// opMaxPool pools spatial activations in either layout.
type opMaxPool struct {
	inID, outID     int
	c, h, w, oh, ow int
	kernel, stride  int
	nchw            bool
}

func (o *opMaxPool) run(p *plan, slab, x []float32, n int, s *Scratch) {
	in := p.val(o.inID, slab, x, n)
	out := p.val(o.outID, slab, x, n)
	sampStride, chanStride := o.h*o.w, n*o.h*o.w
	oSamp, oChan := o.oh*o.ow, n*o.oh*o.ow
	if o.nchw {
		sampStride, chanStride = o.c*o.h*o.w, o.h*o.w
		oSamp, oChan = o.c*o.oh*o.ow, o.oh*o.ow
	}
	for ch := 0; ch < o.c; ch++ {
		for i := 0; i < n; i++ {
			base := ch*chanStride + i*sampStride
			obase := ch*oChan + i*oSamp
			for oy := 0; oy < o.oh; oy++ {
				for ox := 0; ox < o.ow; ox++ {
					best := in[base+(oy*o.stride)*o.w+ox*o.stride]
					for ky := 0; ky < o.kernel; ky++ {
						row := base + (oy*o.stride+ky)*o.w + ox*o.stride
						for kx := 0; kx < o.kernel; kx++ {
							if v := in[row+kx]; v > best {
								best = v
							}
						}
					}
					out[obase+oy*o.ow+ox] = best
				}
			}
		}
	}
}

// --- Lowering -------------------------------------------------------------

// actShape tracks the current activation's per-sample geometry and
// layout through lowering.
type actShape struct {
	flat    bool
	d       int // flat width
	c, h, w int // spatial dims
	nchw    bool
}

func (sh actShape) size() int {
	if sh.flat {
		return sh.d
	}
	return sh.c * sh.h * sh.w
}

// valSpec is one intermediate value's scheduling record.
type valSpec struct {
	size         int // per-sample floats
	def, lastUse int // op indices
}

// lowerer accumulates ops and value live ranges while walking the layer
// graph.
type lowerer struct {
	ops  []planOp
	vals []valSpec
	cur  int // current activation value id
	sh   actShape
	err  error
}

// use marks id as read by the op being built.
func (lo *lowerer) use(id int) int {
	lo.vals[id].lastUse = len(lo.ops)
	return id
}

// def creates a value written by the op being built.
func (lo *lowerer) def(size int) int {
	lo.vals = append(lo.vals, valSpec{size: size, def: len(lo.ops), lastUse: len(lo.ops)})
	return len(lo.vals) - 1
}

func (lo *lowerer) fail(format string, args ...any) {
	if lo.err == nil {
		lo.err = fmt.Errorf("nn.Compile: "+format, args...)
	}
}

func (lo *lowerer) lower(l Layer) {
	if lo.err != nil {
		return
	}
	switch t := l.(type) {
	case *Sequential:
		for _, c := range t.Layers {
			lo.lower(c)
		}
	case *ResNet:
		lo.lower(t.body)
	case *residualBlock:
		lo.lowerResidual(t)
	case *Conv2D:
		lo.lowerConv(t)
	case *BatchNorm2D:
		lo.lowerBN(t)
	case *ReLU:
		lo.lowerReLU()
	case *Dropout:
		// Identity at inference.
	case *Linear:
		lo.lowerLinear(t)
	case *Flatten:
		lo.lowerFlatten()
	case *GlobalAvgPool:
		lo.lowerAvgPool()
	case *MaxPool2D:
		lo.lowerMaxPool(t)
	case Compilable:
		for _, c := range t.CompileChain() {
			lo.lower(c)
		}
	default:
		lo.fail("layer %T has no lowering", l)
	}
}

func (lo *lowerer) lowerConv(t *Conv2D) {
	if lo.sh.flat {
		lo.fail("Conv2D over flat input")
		return
	}
	if lo.sh.c != t.inC {
		lo.fail("Conv2D expects %d channels, graph carries %d", t.inC, lo.sh.c)
		return
	}
	oh, ow := t.OutSize(lo.sh.h, lo.sh.w)
	op := &opConv{
		w: t.W.Value.Data, relu: false,
		inID: lo.use(lo.cur), colsID: -1, accID: -1,
		inNCHW: lo.sh.nchw,
		inC:    t.inC, outC: t.outC, kH: t.kH, kW: t.kW, stride: t.stride, pad: t.pad,
		ih: lo.sh.h, iw: lo.sh.w, oh: oh, ow: ow,
	}
	if t.B != nil {
		op.bias = t.B.Value.Data
	}
	if !(t.kH == 1 && t.kW == 1 && t.stride == 1 && t.pad == 0 && !lo.sh.nchw) {
		op.colsID = lo.def(t.inC * t.kH * t.kW * oh * ow)
	}
	op.outID = lo.def(t.outC * oh * ow)
	lo.ops = append(lo.ops, op)
	lo.cur = op.outID
	lo.sh = actShape{c: t.outC, h: oh, w: ow}
}

// lowerBN folds the batch norm into the immediately preceding conv when
// possible; otherwise it lowers to a standalone per-channel affine.
func (lo *lowerer) lowerBN(t *BatchNorm2D) {
	if lo.sh.flat {
		lo.fail("BatchNorm2D over flat input")
		return
	}
	if lo.sh.c != t.Gamma.Value.Len() {
		lo.fail("BatchNorm2D expects %d channels, graph carries %d", t.Gamma.Value.Len(), lo.sh.c)
		return
	}
	if len(lo.ops) > 0 {
		if cv, ok := lo.ops[len(lo.ops)-1].(*opConv); ok &&
			cv.outID == lo.cur && !cv.relu && cv.accID < 0 && cv.bias == nil {
			// Fold: scale each output-channel weight row, synthesize the
			// channel bias. cv.bias == nil is guaranteed for unfused convs
			// built for BN (bias=false); a biased conv falls through to the
			// affine path rather than guessing at compounding semantics.
			cv.w, cv.bias = foldConvBN(cv.w, t)
			return
		}
	}
	scale := make([]float32, lo.sh.c)
	shift := make([]float32, lo.sh.c)
	for ch := 0; ch < lo.sh.c; ch++ {
		inv := float32(1 / math.Sqrt(float64(t.RunningVar.Data[ch])+float64(t.Eps)))
		scale[ch] = t.Gamma.Value.Data[ch] * inv
		shift[ch] = t.Beta.Value.Data[ch] - t.RunningMean.Data[ch]*scale[ch]
	}
	op := &opAffine{
		scale: scale, shift: shift,
		inID: lo.use(lo.cur), c: lo.sh.c, plane: lo.sh.h * lo.sh.w, nchw: lo.sh.nchw,
	}
	op.outID = lo.def(lo.sh.size())
	lo.ops = append(lo.ops, op)
	lo.cur = op.outID
}

// foldConvBN returns conv weights and bias with the frozen batch norm
// baked in: w'_c = w_c·s_c, b'_c = β_c − μ_c·s_c with s_c = γ_c/√(σ²+ε)
// computed exactly like BatchNorm2D.normalizeFrozen's inverse std.
func foldConvBN(w []float32, bn *BatchNorm2D) (fw, fb []float32) {
	outC := bn.Gamma.Value.Len()
	k := len(w) / outC
	fw = make([]float32, len(w))
	fb = make([]float32, outC)
	for c := 0; c < outC; c++ {
		inv := float32(1 / math.Sqrt(float64(bn.RunningVar.Data[c])+float64(bn.Eps)))
		s := bn.Gamma.Value.Data[c] * inv
		src := w[c*k : (c+1)*k]
		dst := fw[c*k : (c+1)*k]
		for j, v := range src {
			dst[j] = v * s
		}
		fb[c] = bn.Beta.Value.Data[c] - bn.RunningMean.Data[c]*s
	}
	return fw, fb
}

// lowerReLU fuses into the producing op's epilogue when the last op
// wrote the current value and has a free relu slot.
func (lo *lowerer) lowerReLU() {
	if len(lo.ops) > 0 {
		switch op := lo.ops[len(lo.ops)-1].(type) {
		case *opConv:
			if op.outID == lo.cur && !op.relu {
				op.relu = true
				return
			}
		case *opLinear:
			if op.outID == lo.cur && !op.relu {
				op.relu = true
				return
			}
		case *opAffine:
			if op.outID == lo.cur && !op.relu {
				op.relu = true
				return
			}
		}
	}
	op := &opReLU{inID: lo.use(lo.cur)}
	op.outID = lo.def(lo.sh.size())
	lo.ops = append(lo.ops, op)
	lo.cur = op.outID
}

func (lo *lowerer) lowerLinear(t *Linear) {
	if !lo.sh.flat {
		lo.fail("Linear over spatial input (add a Flatten or pool first)")
		return
	}
	if lo.sh.d != t.InDim() {
		lo.fail("Linear expects %d inputs, graph carries %d", t.InDim(), lo.sh.d)
		return
	}
	op := &opLinear{pb: t.packedW(), w: t.W.Value, inID: lo.use(lo.cur), in: t.InDim(), out: t.out}
	if t.B != nil {
		op.bias = t.B.Value.Data
	}
	op.outID = lo.def(t.out)
	lo.ops = append(lo.ops, op)
	lo.cur = op.outID
	lo.sh = actShape{flat: true, d: t.out}
}

func (lo *lowerer) lowerFlatten() {
	if lo.sh.flat {
		return // already flat: identity
	}
	c, plane := lo.sh.c, lo.sh.h*lo.sh.w
	if lo.sh.nchw {
		// Sample-major already: a pure reshape.
		lo.sh = actShape{flat: true, d: c * plane}
		return
	}
	op := &opToNCHW{inID: lo.use(lo.cur), c: c, plane: plane}
	op.outID = lo.def(c * plane)
	lo.ops = append(lo.ops, op)
	lo.cur = op.outID
	lo.sh = actShape{flat: true, d: c * plane}
}

func (lo *lowerer) lowerAvgPool() {
	if lo.sh.flat {
		lo.fail("GlobalAvgPool over flat input")
		return
	}
	op := &opAvgPool{inID: lo.use(lo.cur), c: lo.sh.c, plane: lo.sh.h * lo.sh.w, nchw: lo.sh.nchw}
	op.outID = lo.def(lo.sh.c)
	lo.ops = append(lo.ops, op)
	lo.cur = op.outID
	lo.sh = actShape{flat: true, d: op.c}
}

func (lo *lowerer) lowerMaxPool(t *MaxPool2D) {
	if lo.sh.flat {
		lo.fail("MaxPool2D over flat input")
		return
	}
	oh := (lo.sh.h-t.Kernel)/t.Stride + 1
	ow := (lo.sh.w-t.Kernel)/t.Stride + 1
	if oh <= 0 || ow <= 0 {
		lo.fail("MaxPool2D input %dx%d too small for kernel %d stride %d", lo.sh.h, lo.sh.w, t.Kernel, t.Stride)
		return
	}
	op := &opMaxPool{
		inID: lo.use(lo.cur),
		c:    lo.sh.c, h: lo.sh.h, w: lo.sh.w, oh: oh, ow: ow,
		kernel: t.Kernel, stride: t.Stride, nchw: lo.sh.nchw,
	}
	op.outID = lo.def(lo.sh.c * oh * ow)
	lo.ops = append(lo.ops, op)
	lo.cur = op.outID
	lo.sh = actShape{c: lo.sh.c, h: oh, w: ow, nchw: lo.sh.nchw}
}

// lowerResidual lowers relu(main(x) + shortcut(x)). The shortcut runs
// first; the main branch's closing conv then consumes its output as the
// fused GEMM accumulator with the ReLU in the same epilogue — the whole
// block ends in a single write of its output tensor.
func (lo *lowerer) lowerResidual(b *residualBlock) {
	inID, inSh := lo.cur, lo.sh
	accID := inID
	if b.shortcut != nil {
		lo.lower(b.shortcut)
		if lo.err != nil {
			return
		}
		accID = lo.cur
		lo.cur, lo.sh = inID, inSh
	} else if inSh.nchw {
		lo.fail("identity-shortcut residual block directly on the network input is unsupported")
		return
	}
	lo.lower(b.main)
	if lo.err != nil {
		return
	}
	if cv, ok := lo.ops[len(lo.ops)-1].(*opConv); ok && cv.outID == lo.cur && !cv.relu && cv.accID < 0 {
		cv.accID = accID
		cv.relu = true
		if lo.vals[accID].lastUse < len(lo.ops)-1 {
			lo.vals[accID].lastUse = len(lo.ops) - 1
		}
		return
	}
	op := &opAddReLU{aID: lo.use(lo.cur), bID: lo.use(accID)}
	op.outID = lo.def(lo.sh.size())
	lo.ops = append(lo.ops, op)
	lo.cur = op.outID
}

// --- Buffer scheduling ----------------------------------------------------

// buildPlan lowers root for one input geometry and assigns every value
// an offset in a single slab via a best-fit free list over live ranges:
// a value's region is reusable from the op after its last read, and a
// dying input's region is never handed to the same op's output (GEMM
// outputs must not alias operands). The slab's per-sample footprint is
// the peak concurrent liveness — the ping-pong schedule, computed
// rather than hand-written.
func buildPlan(root Layer, key planKey) (*plan, error) {
	lo := &lowerer{}
	if key.b < 0 {
		lo.sh = actShape{flat: true, d: key.a}
	} else {
		lo.sh = actShape{c: key.a, h: key.b, w: key.c, nchw: true}
	}
	lo.vals = []valSpec{{size: lo.sh.size(), def: -1, lastUse: -1}}
	lo.cur = 0
	lo.lower(root)
	if lo.err != nil {
		return nil, lo.err
	}
	if len(lo.ops) == 0 {
		return nil, fmt.Errorf("nn.Compile: graph lowered to zero ops")
	}
	// Restore sample-major layout if the graph ends while still CNHW.
	if !lo.sh.flat && !lo.sh.nchw {
		op := &opToNCHW{inID: lo.use(lo.cur), c: lo.sh.c, plane: lo.sh.h * lo.sh.w}
		op.outID = lo.def(lo.sh.size())
		lo.ops = append(lo.ops, op)
		lo.cur = op.outID
		lo.sh.nchw = true
	}
	if lo.cur == 0 {
		return nil, fmt.Errorf("nn.Compile: graph output aliases the input")
	}
	// The output must survive the whole plan (and the caller's use of it).
	lo.vals[lo.cur].lastUse = len(lo.ops)

	p := &plan{
		ops:     lo.ops,
		valOff:  make([]int, len(lo.vals)),
		valSize: make([]int, len(lo.vals)),
		outID:   lo.cur,
	}
	if lo.sh.flat {
		p.outDims = []int{lo.sh.d}
	} else {
		p.outDims = []int{lo.sh.c, lo.sh.h, lo.sh.w}
	}
	for id, v := range lo.vals {
		p.valSize[id] = v.size
	}
	p.valOff[0] = -1

	var free freeList
	watermark, peak := 0, 0
	for i := range lo.ops {
		for id := 1; id < len(lo.vals); id++ {
			if lo.vals[id].def != i {
				continue
			}
			off, ok := free.take(lo.vals[id].size)
			if !ok {
				off = watermark
				watermark += lo.vals[id].size
				if watermark > peak {
					peak = watermark
				}
			}
			p.valOff[id] = off
		}
		for id := 1; id < len(lo.vals); id++ {
			if lo.vals[id].lastUse == i {
				watermark = free.give(p.valOff[id], lo.vals[id].size, watermark)
			}
		}
	}
	p.slot = peak
	return p, nil
}

// freeList is a sorted, coalescing list of reusable slab gaps.
type freeList []struct{ off, size int }

// take removes (part of) the best-fit gap of at least size floats.
func (f *freeList) take(size int) (off int, ok bool) {
	best := -1
	for i, g := range *f {
		if g.size >= size && (best < 0 || g.size < (*f)[best].size) {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	g := &(*f)[best]
	off = g.off
	if g.size == size {
		*f = append((*f)[:best], (*f)[best+1:]...)
	} else {
		g.off += size
		g.size -= size
	}
	return off, true
}

// give returns a region to the list, coalescing neighbours; a gap that
// reaches the watermark is trimmed off it (the returned value is the
// new watermark).
func (f *freeList) give(off, size, watermark int) int {
	i := 0
	for i < len(*f) && (*f)[i].off < off {
		i++
	}
	*f = append(*f, struct{ off, size int }{})
	copy((*f)[i+1:], (*f)[i:])
	(*f)[i] = struct{ off, size int }{off, size}
	// Coalesce with the right then left neighbour.
	if i+1 < len(*f) && (*f)[i].off+(*f)[i].size == (*f)[i+1].off {
		(*f)[i].size += (*f)[i+1].size
		*f = append((*f)[:i+1], (*f)[i+2:]...)
	}
	if i > 0 && (*f)[i-1].off+(*f)[i-1].size == (*f)[i].off {
		(*f)[i-1].size += (*f)[i].size
		*f = append((*f)[:i], (*f)[i+1:]...)
		i--
	}
	if (*f)[i].off+(*f)[i].size == watermark {
		watermark = (*f)[i].off
		*f = append((*f)[:i], (*f)[i+1:]...)
	}
	return watermark
}
