package nn

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Quantized plan lowering.
//
// CompileQuantized extends the frozen-graph compiler with an int8
// lowering pass. The quantized plan is derived FROM the f32 plan, not
// lowered independently, so it inherits every structural decision —
// BN folding into conv weights (quantization sees the fused weights),
// epilogue fusion, CNHW layout, 1×1 fast paths, liveness-scheduled
// buffers — and adds:
//
//   - calibration: the f32 plan runs once over the caller-supplied
//     calibration batch, recording each intermediate value's max|·|;
//     activation scales are symmetric per tensor, s = max|v|/127.
//     ReLU and MaxPool preserve their input scale exactly (both are
//     order-preserving on the quantized integers), so those steps are
//     pure int8 ops with no requantization error.
//   - weights: each conv's FOLDED weight matrix [outC, K] and each
//     linear's transposed weight matrix [out, in] are quantized per
//     output channel to the kernel's reduced range ±tensor.Gemm8WMax
//     (quant.QuantizeRows — the same core as the standalone int8
//     projection) and pre-packed once per fold generation (PackB8),
//     ~4× smaller resident than the f32 panels.
//   - int8 end to end: activations stay int8 between plan steps —
//     every GEMM dequantizes, applies bias/residual/ReLU and
//     requantizes inside its epilogue write-back — and float32
//     reappears only at the plan boundary (the HDC projection output).
//     Flat activations are kept TRANSPOSED ([d, N] instead of [N, d])
//     so linear layers lower to the same weights-left product form as
//     convolutions, which is the operand order the unsigned×signed
//     VPMADDUBSW kernel fixes.
//
// The quantized plan applies only to the calibration batch's per-sample
// geometry; inputs with any other geometry fall back to the f32 plans
// of the same CompiledNet. Staleness uses the same fingerprint as the
// f32 path (parameter versions + BatchNorm StatsFingerprint), so an
// optimizer step or checkpoint load transparently refolds, REcalibrates
// and requantizes. Like the f32 path, warm Infer allocates nothing —
// int8 activations live in one liveness-scheduled int8 arena slab
// beside the (much smaller) f32 boundary slab — and results are
// bitwise deterministic across worker counts: the integer accumulation
// is exact and the float epilogue is applied per output element.

// CompileQuantized builds an int8-quantized compiler over l, with
// activation ranges calibrated on calib — a representative input batch
// [N, C, H, W] (or [N, d] for flat nets) that is cloned and retained
// for recalibration. Inputs matching calib's per-sample geometry run
// the int8 plan; other geometries fall back to f32 plans. The
// quantized plan for the calibration geometry is built (and its
// lowering validated) eagerly.
func CompileQuantized(l Layer, calib *tensor.Tensor) (*CompiledNet, error) {
	bns, err := scanCompilable(l)
	if err != nil {
		return nil, err
	}
	var qkey planKey
	switch calib.Rank() {
	case 4:
		qkey = planKey{calib.Dim(1), calib.Dim(2), calib.Dim(3)}
	case 2:
		qkey = planKey{calib.Dim(1), -1, -1}
	default:
		return nil, fmt.Errorf("nn.CompileQuantized: want a rank-2 or rank-4 calibration batch, have %v", calib.Shape())
	}
	c := &CompiledNet{root: l, params: l.Params(), bns: bns, calib: calib.Clone(), qkey: qkey}
	if _, err := c.addQPlan(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustCompileQuantized is CompileQuantized, panicking on error.
func MustCompileQuantized(l Layer, calib *tensor.Tensor) *CompiledNet {
	c, err := CompileQuantized(l, calib)
	if err != nil {
		panic(err)
	}
	return c
}

// --- Quantized plan representation ----------------------------------------

// qplan is the int8 twin of plan: ops over two liveness-scheduled
// slabs — int8 for quantized activations, f32 for the plan-boundary
// values — with all offsets in per-sample units scaled by the batch
// size at run time.
type qplan struct {
	ops     []qOp
	valOff  []int
	valSize []int
	slot    int // per-sample f32 slab floats
	slot8   int // per-sample int8 slab bytes
	outID   int
	outDims []int
}

// qOp is one fused quantized execution step.
type qOp interface {
	run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch)
}

func (p *qplan) v8(id int, slab8 []int8, n int) []int8 {
	off := p.valOff[id] * n
	return slab8[off : off+p.valSize[id]*n]
}

func (p *qplan) v32(id int, slab []float32, n int) []float32 {
	off := p.valOff[id] * n
	return slab[off : off+p.valSize[id]*n]
}

// run executes the quantized plan over x [N, ...] with s's workspace.
//
//hdc:hotpath
func (p *qplan) run(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	n := x.Dim(0)
	slab := s.Grab(p.slot * n)
	slab8 := s.Grab8(p.slot8 * n)
	for _, op := range p.ops {
		op.run(p, slab, slab8, x.Data, n, s)
	}
	out := p.v32(p.outID, slab, n)
	switch len(p.outDims) {
	case 1:
		return s.Wrap(out, n, p.outDims[0])
	case 3:
		return s.Wrap(out, n, p.outDims[0], p.outDims[1], p.outDims[2])
	default:
		panic("nn.CompiledNet: unsupported quantized output rank")
	}
}

// --- Quantized ops --------------------------------------------------------

// opQuant8 quantizes the external f32 input into the int8 domain: a
// per-element requantization for spatial NCHW input, a quantizing
// transpose into the [d, N] flat layout for rank-2 input.
type opQuant8 struct {
	outID int
	inv   float32 // 1/inputScale
	flat  bool
	d     int
}

func (o *opQuant8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	out := p.v8(o.outID, slab8, n)
	if !o.flat {
		tensor.Quant8Slice(out, x, o.inv)
		return
	}
	for i := 0; i < n; i++ {
		row := x[i*o.d : (i+1)*o.d]
		for j, v := range row {
			out[j*n+i] = tensor.Quant8RNE(v * o.inv)
		}
	}
}

// opConv8 is the quantized convolution: int8 im2col (skipped on the 1×1
// CNHW fast path), the packed int8 GEMM, and an epilogue that
// dequantizes with the per-channel combined scale, adds the folded f32
// bias, accumulates the int8 residual, clamps, and requantizes to the
// output scale — activations never leave int8.
type opConv8 struct {
	pw   *tensor.PackedB8
	deq  []float32 // per output channel: weightScale·inputScale
	bias []float32
	relu bool

	inID, outID int
	colsID      int
	accID       int
	accScale    float32
	invOut      float32

	inNCHW                         bool
	inC, outC, kH, kW, stride, pad int
	ih, iw, oh, ow                 int
}

//hdc:hotpath
func (o *opConv8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v8(o.outID, slab8, n)
	g := s.Gemm8Opts()
	g.RowScale = o.deq
	g.Bias = o.bias
	g.ReLU = o.relu
	g.InvOutScale = o.invOut
	if o.accID >= 0 {
		g.Accum = p.v8(o.accID, slab8, n)
		g.AccScale = o.accScale
	}
	ncols := n * o.oh * o.ow
	if o.colsID < 0 {
		tensor.Gemm8QInto(out, o.pw, in, ncols, g)
		return
	}
	cols := p.v8(o.colsID, slab8, n)
	im2colCNHW(cols, in, n, o.inC, o.kH, o.kW, o.stride, o.pad, o.ih, o.iw, o.oh, o.ow, o.inNCHW)
	tensor.Gemm8QInto(out, o.pw, cols, ncols, g)
}

// opLinear8 is the quantized fully connected layer in weights-left
// form: out[out, N] = Wqᵀ[out, in] · act[in, N] over the transposed
// flat layout, per-unit dequant + bias + ReLU in the epilogue. The
// plan-ending projection stores f32 (f32Out); intermediate layers
// requantize and stay int8.
type opLinear8 struct {
	pw     *tensor.PackedB8
	deq    []float32
	bias   []float32
	relu   bool
	f32Out bool
	invOut float32

	inID, outID int
	in, out     int
}

//hdc:hotpath
func (o *opLinear8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	g := s.Gemm8Opts()
	g.RowScale = o.deq
	g.Bias = o.bias
	g.ReLU = o.relu
	if o.f32Out {
		tensor.Gemm8Into(p.v32(o.outID, slab, n), o.pw, in, n, g)
		return
	}
	g.InvOutScale = o.invOut
	tensor.Gemm8QInto(p.v8(o.outID, slab8, n), o.pw, in, n, g)
}

// opAffine8 is the quantized per-channel scale/shift (an unfoldable
// BatchNorm2D): v = scale·q + shift in the real domain — scale already
// folds the input dequant — requantized to the output scale.
type opAffine8 struct {
	scale, shift []float32
	relu         bool
	invOut       float32
	inID, outID  int
	c, plane     int
	nchw         bool
}

func (o *opAffine8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v8(o.outID, slab8, n)
	sampStride, chanStride := o.plane, n*o.plane
	if o.nchw {
		sampStride, chanStride = o.c*o.plane, o.plane
	}
	for ch := 0; ch < o.c; ch++ {
		a, b := o.scale[ch], o.shift[ch]
		for i := 0; i < n; i++ {
			base := ch*chanStride + i*sampStride
			src := in[base : base+o.plane]
			dst := out[base : base+o.plane]
			for j, q := range src {
				v := a*float32(q) + b
				if o.relu && !(v > 0) {
					v = 0
				}
				dst[j] = tensor.Quant8RNE(v * o.invOut)
			}
		}
	}
}

// opReLU8 is the standalone quantized activation: with a symmetric
// scale, ReLU in the real domain IS max(0, q) on the integers, so the
// output reuses the input scale with no requantization error.
type opReLU8 struct{ inID, outID int }

func (o *opReLU8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v8(o.outID, slab8, n)
	for i, q := range in {
		if q > 0 {
			out[i] = q
		} else {
			out[i] = 0
		}
	}
}

// opAddReLU8 is the residual merge fallback: both operands dequantize,
// add, clamp, requantize.
type opAddReLU8 struct {
	aID, bID, outID int
	sa, sb, invOut  float32
}

func (o *opAddReLU8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	a := p.v8(o.aID, slab8, n)
	b := p.v8(o.bID, slab8, n)
	out := p.v8(o.outID, slab8, n)
	for i, qa := range a {
		v := o.sa*float32(qa) + o.sb*float32(b[i])
		if !(v > 0) {
			v = 0
		}
		out[i] = tensor.Quant8RNE(v * o.invOut)
	}
}

// opAvgPool8 reduces spatial int8 activations to per-channel means.
// The integer sum is EXACT; one float multiply dequantizes it. The
// plan-ending form stores f32 sample-major [N, C]; the intermediate
// form requantizes into the transposed flat layout [C, N].
type opAvgPool8 struct {
	inID, outID int
	c, plane    int
	nchw        bool
	sIn         float32
	invOut      float32
	f32Out      bool
}

func (o *opAvgPool8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	sampStride, chanStride := o.plane, n*o.plane
	if o.nchw {
		sampStride, chanStride = o.c*o.plane, o.plane
	}
	var out32 []float32
	var out8 []int8
	if o.f32Out {
		out32 = p.v32(o.outID, slab, n)
	} else {
		out8 = p.v8(o.outID, slab8, n)
	}
	for ch := 0; ch < o.c; ch++ {
		for i := 0; i < n; i++ {
			src := in[ch*chanStride+i*sampStride:]
			var sum int32
			for _, q := range src[:o.plane] {
				sum += int32(q)
			}
			v := float32(float64(o.sIn) * float64(sum) / float64(o.plane))
			if o.f32Out {
				out32[i*o.c+ch] = v
			} else {
				out8[ch*n+i] = tensor.Quant8RNE(v * o.invOut)
			}
		}
	}
}

// opMaxPool8 pools int8 activations: max is order-preserving under a
// symmetric scale, so this is pure integer work and the output reuses
// the input scale.
type opMaxPool8 struct {
	inID, outID     int
	c, h, w, oh, ow int
	kernel, stride  int
	nchw            bool
}

func (o *opMaxPool8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v8(o.outID, slab8, n)
	sampStride, chanStride := o.h*o.w, n*o.h*o.w
	oSamp, oChan := o.oh*o.ow, n*o.oh*o.ow
	if o.nchw {
		sampStride, chanStride = o.c*o.h*o.w, o.h*o.w
		oSamp, oChan = o.c*o.oh*o.ow, o.oh*o.ow
	}
	for ch := 0; ch < o.c; ch++ {
		for i := 0; i < n; i++ {
			base := ch*chanStride + i*sampStride
			obase := ch*oChan + i*oSamp
			for oy := 0; oy < o.oh; oy++ {
				for ox := 0; ox < o.ow; ox++ {
					best := in[base+(oy*o.stride)*o.w+ox*o.stride]
					for ky := 0; ky < o.kernel; ky++ {
						row := base + (oy*o.stride+ky)*o.w + ox*o.stride
						for kx := 0; kx < o.kernel; kx++ {
							if q := in[row+kx]; q > best {
								best = q
							}
						}
					}
					out[obase+oy*o.ow+ox] = best
				}
			}
		}
	}
}

// opToCN8 flattens a CNHW int8 value into the transposed flat layout
// [c·plane, N] — the quantized Flatten, pure data movement, scale
// preserved.
type opToCN8 struct {
	inID, outID int
	c, plane    int
}

func (o *opToCN8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v8(o.outID, slab8, n)
	for ch := 0; ch < o.c; ch++ {
		for i := 0; i < n; i++ {
			src := in[(ch*n+i)*o.plane : (ch*n+i+1)*o.plane]
			for j, q := range src {
				out[(ch*o.plane+j)*n+i] = q
			}
		}
	}
}

// opTr8 transposes a sample-major flat int8 value [N, d] into the
// [d, N] layout the quantized GEMM consumes — needed only when a
// Linear's input reaches it without passing through a transposing op
// (an NCHW reshape-Flatten feeding the head directly).
type opTr8 struct {
	inID, outID int
	d           int
}

func (o *opTr8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v8(o.outID, slab8, n)
	for i := 0; i < n; i++ {
		row := in[i*o.d : (i+1)*o.d]
		for j, q := range row {
			out[j*n+i] = q
		}
	}
}

// opToNCHWDeq8 is the spatial plan boundary: dequantize the final CNHW
// int8 value into sample-major f32 NCHW.
type opToNCHWDeq8 struct {
	inID, outID int
	c, plane    int
	sIn         float32
}

func (o *opToNCHWDeq8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v32(o.outID, slab, n)
	for ch := 0; ch < o.c; ch++ {
		for i := 0; i < n; i++ {
			src := in[(ch*n+i)*o.plane : (ch*n+i+1)*o.plane]
			dst := out[(i*o.c+ch)*o.plane : (i*o.c+ch+1)*o.plane]
			for j, q := range src {
				dst[j] = float32(q) * o.sIn
			}
		}
	}
}

// opDeqFlat8 is the flat plan boundary for transposed producers with no
// f32 store of their own: dequantize [d, N] int8 into sample-major
// [N, d] f32.
type opDeqFlat8 struct {
	inID, outID int
	d           int
	sIn         float32
}

func (o *opDeqFlat8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v32(o.outID, slab, n)
	for j := 0; j < o.d; j++ {
		col := in[j*n : (j+1)*n]
		for i, q := range col {
			out[i*o.d+j] = float32(q) * o.sIn
		}
	}
}

// opDeqSame8 is the order-preserving plan boundary: the final int8
// value is already sample-major (NCHW spatial, or flat via an NCHW
// reshape), so dequantization is a straight elementwise map.
type opDeqSame8 struct {
	inID, outID int
	sIn         float32
}

func (o *opDeqSame8) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v8(o.inID, slab8, n)
	out := p.v32(o.outID, slab, n)
	for i, q := range in {
		out[i] = float32(q) * o.sIn
	}
}

// opUntransposeF restores sample-major order at the flat plan boundary:
// f32 [d, N] (the projection GEMM's output layout) → f32 [N, d].
type opUntransposeF struct {
	inID, outID int
	d           int
}

func (o *opUntransposeF) run(p *qplan, slab []float32, slab8 []int8, x []float32, n int, s *Scratch) {
	in := p.v32(o.inID, slab, n)
	out := p.v32(o.outID, slab, n)
	// Tile the feature dimension so each tile's stride-n source reads
	// stay L1-resident across all samples while the per-sample writes
	// run sequentially; the naive column walk writes at stride d and
	// thrashes the cache once d·N outgrows it.
	const jBlk = 128
	for j0 := 0; j0 < o.d; j0 += jBlk {
		j1 := min(j0+jBlk, o.d)
		for i := 0; i < n; i++ {
			row := out[i*o.d+j0 : i*o.d+j1]
			src := j0*n + i
			for j := range row {
				row[j] = in[src]
				src += n
			}
		}
	}
}

// --- Calibration ----------------------------------------------------------

// planOutID reports the value an op defines, for the calibration scan.
func planOutID(op planOp) int {
	switch o := op.(type) {
	case *opConv:
		return o.outID
	case *opLinear:
		return o.outID
	case *opAffine:
		return o.outID
	case *opReLU:
		return o.outID
	case *opAddReLU:
		return o.outID
	case *opAvgPool:
		return o.outID
	case *opToNCHW:
		return o.outID
	case *opMaxPool:
		return o.outID
	}
	return -1
}

// calibratePlan runs the f32 plan over the calibration batch, scanning
// each value right after its defining op stores it (buffers are reused,
// so scanning later would read overwritten regions) and returning every
// value's observed max|·|.
func calibratePlan(pl *plan, calib *tensor.Tensor) []float32 {
	s := GetScratch()
	defer PutScratch(s)
	n := calib.Dim(0)
	slab := s.Grab(pl.slot * n)
	maxAbs := make([]float32, len(pl.valSize))
	scan := func(id int, data []float32) {
		m := maxAbs[id]
		for _, v := range data {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		maxAbs[id] = m
	}
	scan(0, calib.Data)
	for _, op := range pl.ops {
		op.run(pl, slab, calib.Data, n, s)
		if id := planOutID(op); id > 0 {
			scan(id, pl.val(id, slab, calib.Data, n))
		}
	}
	return maxAbs
}

// --- Quantized lowering ---------------------------------------------------

// qValSpec is one quantized value's scheduling record. tr marks the
// channel-major layouts (CNHW spatial, [d, N] flat) as opposed to
// sample-major (NCHW spatial, [N, d] flat).
type qValSpec struct {
	size         int // per-sample elements
	f32          bool
	tr           bool
	scale        float32 // activation scale (int8 values)
	def, lastUse int     // op indices; -1 = not defined in the qplan
}

// qBuilder accumulates quantized ops and value live ranges.
type qBuilder struct {
	ops  []qOp
	vals []qValSpec
}

// use marks id as read by the op being built.
func (b *qBuilder) use(id int) int {
	b.vals[id].lastUse = len(b.ops)
	return id
}

// redef re-homes an f32 plan value id as the int8 value written by the
// op being built, with the given layout.
func (b *qBuilder) redef(id int, tr bool) int {
	b.vals[id].def = len(b.ops)
	b.vals[id].lastUse = len(b.ops)
	b.vals[id].tr = tr
	return id
}

// newVal creates a qplan-only value written by the op being built.
func (b *qBuilder) newVal(size int, f32, tr bool, scale float32) int {
	b.vals = append(b.vals, qValSpec{size: size, f32: f32, tr: tr, scale: scale, def: len(b.ops), lastUse: len(b.ops)})
	return len(b.vals) - 1
}

// buildQPlan builds the quantized plan for the calibration geometry:
// the f32 plan supplies the folded structure, one calibration pass
// supplies the activation scales, and each f32 op maps 1:1 onto its
// int8 counterpart (plus the input quantize and the boundary dequant).
func buildQPlan(root Layer, key planKey, calib *tensor.Tensor) (*qplan, error) {
	pl, err := buildPlan(root, key)
	if err != nil {
		return nil, err
	}
	maxAbs := calibratePlan(pl, calib)
	scale := make([]float32, len(pl.valSize))
	for id, m := range maxAbs {
		if m == 0 {
			m = 1
		}
		scale[id] = m / tensor.Gemm8AMax
	}
	// Scale-preserving ops act directly on the integers, so their outputs
	// inherit the input scale exactly (in op order — chains propagate).
	for _, op := range pl.ops {
		switch o := op.(type) {
		case *opReLU:
			scale[o.outID] = scale[o.inID]
		case *opMaxPool:
			scale[o.outID] = scale[o.inID]
		case *opToNCHW:
			scale[o.outID] = scale[o.inID]
		}
	}

	b := &qBuilder{vals: make([]qValSpec, len(pl.valSize))}
	for id := range b.vals {
		b.vals[id] = qValSpec{size: pl.valSize[id], scale: scale[id], def: -1, lastUse: -1}
	}

	// Quantize the external input: rank-2 input transposes to [d, N],
	// rank-4 input stays NCHW (the first conv's im2col handles it).
	flatIn := key.b < 0
	qIn := b.newVal(pl.valSize[0], false, flatIn, scale[0])
	b.ops = append(b.ops, &opQuant8{outID: qIn, inv: 1 / scale[0], flat: flatIn, d: pl.valSize[0]})

	mapID := func(id int) int {
		if id == 0 {
			return qIn
		}
		return id
	}

	outID := -1 // the qplan's f32 output value, once a boundary op emits it
	for i, op := range pl.ops {
		last := i == len(pl.ops)-1
		switch o := op.(type) {
		case *opConv:
			k := o.inC * o.kH * o.kW
			qw := make([]int8, len(o.w))
			ws := make([]float32, o.outC)
			quant.QuantizeRows(qw, ws, o.w, o.outC, k, tensor.Gemm8WMax)
			in := mapID(o.inID)
			deq := make([]float32, o.outC)
			for r := range deq {
				deq[r] = ws[r] * b.vals[in].scale
			}
			q := &opConv8{
				pw: tensor.PackB8(qw, o.outC, k), deq: deq, bias: o.bias, relu: o.relu,
				inID: b.use(in), colsID: -1, accID: -1,
				invOut: 1 / scale[o.outID],
				inNCHW: o.inNCHW,
				inC:    o.inC, outC: o.outC, kH: o.kH, kW: o.kW, stride: o.stride, pad: o.pad,
				ih: o.ih, iw: o.iw, oh: o.oh, ow: o.ow,
			}
			if o.accID >= 0 {
				acc := mapID(o.accID)
				q.accID = b.use(acc)
				q.accScale = b.vals[acc].scale
			}
			if o.colsID >= 0 {
				q.colsID = b.redef(o.colsID, true)
			}
			q.outID = b.redef(o.outID, true)
			b.ops = append(b.ops, q)

		case *opLinear:
			in := mapID(o.inID)
			if !b.vals[in].tr {
				// Sample-major flat input (an NCHW reshape fed the head
				// directly): transpose into GEMM layout first.
				t8 := &opTr8{inID: b.use(in), d: o.in}
				t8.outID = b.newVal(o.in, false, true, b.vals[in].scale)
				b.ops = append(b.ops, t8)
				in = t8.outID
			}
			// Transpose W [in, out] → [out, in] so the quantized product is
			// weights-left over the transposed flat activations.
			wt := make([]float32, o.out*o.in)
			for r := 0; r < o.in; r++ {
				for c := 0; c < o.out; c++ {
					wt[c*o.in+r] = o.w.Data[r*o.out+c]
				}
			}
			qw := make([]int8, len(wt))
			ws := make([]float32, o.out)
			quant.QuantizeRows(qw, ws, wt, o.out, o.in, tensor.Gemm8WMax)
			deq := make([]float32, o.out)
			for r := range deq {
				deq[r] = ws[r] * b.vals[in].scale
			}
			q := &opLinear8{
				pw: tensor.PackB8(qw, o.out, o.in), deq: deq, bias: o.bias, relu: o.relu,
				inID: b.use(in), in: o.in, out: o.out,
			}
			if last {
				// The plan-ending projection stores f32 [out, N]; restore
				// sample-major order with a final transpose.
				q.f32Out = true
				q.outID = b.newVal(o.out, true, true, 0)
				b.ops = append(b.ops, q)
				tr := &opUntransposeF{inID: b.use(q.outID), d: o.out}
				tr.outID = b.newVal(o.out, true, false, 0)
				b.ops = append(b.ops, tr)
				outID = tr.outID
				break
			}
			q.invOut = 1 / scale[o.outID]
			q.outID = b.redef(o.outID, true)
			b.ops = append(b.ops, q)

		case *opAffine:
			in := mapID(o.inID)
			sc := make([]float32, o.c)
			for ch := range sc {
				sc[ch] = o.scale[ch] * b.vals[in].scale
			}
			q := &opAffine8{
				scale: sc, shift: o.shift, relu: o.relu,
				invOut: 1 / scale[o.outID],
				inID:   b.use(in), c: o.c, plane: o.plane, nchw: o.nchw,
			}
			q.outID = b.redef(o.outID, b.vals[in].tr)
			b.ops = append(b.ops, q)

		case *opReLU:
			in := mapID(o.inID)
			q := &opReLU8{inID: b.use(in)}
			q.outID = b.redef(o.outID, b.vals[in].tr)
			b.ops = append(b.ops, q)

		case *opAddReLU:
			a, acc := mapID(o.aID), mapID(o.bID)
			q := &opAddReLU8{
				aID: b.use(a), bID: b.use(acc),
				sa: b.vals[a].scale, sb: b.vals[acc].scale,
				invOut: 1 / scale[o.outID],
			}
			q.outID = b.redef(o.outID, b.vals[a].tr)
			b.ops = append(b.ops, q)

		case *opAvgPool:
			in := mapID(o.inID)
			q := &opAvgPool8{
				inID: b.use(in), c: o.c, plane: o.plane, nchw: o.nchw,
				sIn: b.vals[in].scale,
			}
			if last {
				q.f32Out = true
				q.outID = b.newVal(o.c, true, false, 0)
				outID = q.outID
			} else {
				q.invOut = 1 / scale[o.outID]
				q.outID = b.redef(o.outID, true)
			}
			b.ops = append(b.ops, q)

		case *opToNCHW:
			in := mapID(o.inID)
			if last {
				q := &opToNCHWDeq8{
					inID: b.use(in), c: o.c, plane: o.plane,
					sIn: b.vals[in].scale,
				}
				q.outID = b.newVal(o.c*o.plane, true, false, 0)
				b.ops = append(b.ops, q)
				outID = q.outID
				break
			}
			// Mid-graph Flatten from CNHW: quantized flat values stay
			// transposed, so this lowers to the CNHW → [d, N] flatten.
			q := &opToCN8{inID: b.use(in), c: o.c, plane: o.plane}
			q.outID = b.redef(o.outID, true)
			b.ops = append(b.ops, q)

		case *opMaxPool:
			in := mapID(o.inID)
			q := &opMaxPool8{
				inID: b.use(in),
				c:    o.c, h: o.h, w: o.w, oh: o.oh, ow: o.ow,
				kernel: o.kernel, stride: o.stride, nchw: o.nchw,
			}
			q.outID = b.redef(o.outID, b.vals[in].tr)
			b.ops = append(b.ops, q)

		default:
			return nil, fmt.Errorf("nn.CompileQuantized: op %T has no quantized lowering", op)
		}
	}

	// Plan boundary: if no op above emitted the f32 output (the final
	// producer stayed int8), append the layout-matching dequant.
	if outID < 0 {
		fin := pl.outID
		v := b.vals[fin]
		switch {
		case !v.tr:
			q := &opDeqSame8{inID: b.use(fin), sIn: v.scale}
			q.outID = b.newVal(v.size, true, false, 0)
			b.ops = append(b.ops, q)
			outID = q.outID
		case len(pl.outDims) == 1:
			q := &opDeqFlat8{inID: b.use(fin), d: v.size, sIn: v.scale}
			q.outID = b.newVal(v.size, true, false, 0)
			b.ops = append(b.ops, q)
			outID = q.outID
		default:
			// buildPlan always restores NCHW before a spatial output, so a
			// transposed spatial final value cannot reach here.
			return nil, fmt.Errorf("nn.CompileQuantized: plan ends on a CNHW value")
		}
	}
	b.vals[outID].lastUse = len(b.ops)

	return scheduleQPlan(b, outID, pl.outDims), nil
}

// scheduleQPlan assigns every quantized value an offset in its slab
// (int8 activations, f32 boundary values) with the same best-fit free
// list over live ranges buildPlan uses — two slabs, one scheduler each.
func scheduleQPlan(b *qBuilder, outID int, outDims []int) *qplan {
	p := &qplan{
		ops:     b.ops,
		valOff:  make([]int, len(b.vals)),
		valSize: make([]int, len(b.vals)),
		outID:   outID,
		outDims: outDims,
	}
	var free32, free8 freeList
	var wm32, peak32, wm8, peak8 int
	for id, v := range b.vals {
		p.valSize[id] = v.size
		p.valOff[id] = -1
	}
	for i := range b.ops {
		for id := range b.vals {
			v := b.vals[id]
			if v.def != i {
				continue
			}
			free, wm, peak := &free8, &wm8, &peak8
			if v.f32 {
				free, wm, peak = &free32, &wm32, &peak32
			}
			off, ok := free.take(v.size)
			if !ok {
				off = *wm
				*wm += v.size
				if *wm > *peak {
					*peak = *wm
				}
			}
			p.valOff[id] = off
		}
		for id := range b.vals {
			v := b.vals[id]
			if v.lastUse != i || v.def < 0 {
				continue
			}
			if v.f32 {
				wm32 = free32.give(p.valOff[id], v.size, wm32)
			} else {
				wm8 = free8.give(p.valOff[id], v.size, wm8)
			}
		}
	}
	p.slot = peak32
	p.slot8 = peak8
	return p
}
