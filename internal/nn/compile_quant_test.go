package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// relL2 returns ‖got−want‖₂/‖want‖₂ — the accuracy metric for the
// quantized plan, whose per-element error is bounded by the activation
// scales rather than float rounding.
func relL2(got, want *tensor.Tensor) float64 {
	var num, den float64
	for i := range want.Data {
		d := float64(got.Data[i] - want.Data[i])
		num += d * d
		w := float64(want.Data[i])
		den += w * w
	}
	if den == 0 {
		den = 1
	}
	return math.Sqrt(num / den)
}

// TestCompiledQuantizedTracksFloat pins the int8 lowering on every
// block shape the compiler fuses: the quantized plan (calibrated on the
// test input itself) stays within a small relative-L2 budget of the f32
// compiled plan, and a batch-1 slice through the SAME qplan (offsets
// scale with N; scales were calibrated at the full batch) stays in
// budget too.
func TestCompiledQuantizedTracksFloat(t *testing.T) {
	for _, tc := range compileParityCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref := MustCompile(tc.layer)
			cq := MustCompileQuantized(tc.layer, tc.input)
			s := NewScratch()
			want := ref.Infer(tc.input, s).Clone()
			s.Reset()
			got := cq.Infer(tc.input, s)
			if !got.SameShape(want) {
				t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
			}
			if e := relL2(got, want); e > 0.12 {
				t.Fatalf("quantized output rel-L2 error %.4f exceeds budget", e)
			}

			one := tc.input.Shape()
			one[0] = 1
			x1 := tensor.FromSlice(tc.input.Data[:tc.input.Len()/tc.input.Dim(0)], one...)
			s.Reset()
			w1 := ref.Infer(x1, s).Clone()
			s.Reset()
			if e := relL2(cq.Infer(x1, s), w1); e > 0.12 {
				t.Fatalf("batch-1 quantized rel-L2 error %.4f exceeds budget", e)
			}
		})
	}
}

// TestCompiledQuantizedBitwiseAcrossWorkers pins the int8 determinism
// contract, which is STRONGER than the f32 one: the integer
// accumulation is exact and the float epilogue per-element, so any
// worker budget produces identical bits.
func TestCompiledQuantizedBitwiseAcrossWorkers(t *testing.T) {
	for _, tc := range compileParityCases() {
		cq := MustCompileQuantized(tc.layer, tc.input)
		s := NewScratch()
		want := cq.Infer(tc.input, s).Clone()
		for _, workers := range []int{2, 3, 8} {
			sw := NewScratch()
			sw.Workers = workers
			got := cq.Infer(tc.input, sw)
			requireBitwiseEqual(t, tc.name+"/workers", got, want)
		}
	}
}

// TestCompiledQuantizedFallbackGeometry pins the routing contract: an
// input whose per-sample geometry differs from the calibration batch
// runs the f32 plan of the same CompiledNet — bitwise equal to a plain
// compiled net, not a quantized approximation.
func TestCompiledQuantizedFallbackGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net := NewResNet(rng, MicroResNet50Config(4))
	calib := tensor.Randn(rng, 1, 2, 3, 16, 16)
	cq := MustCompileQuantized(net, calib)
	ref := MustCompile(net)

	other := tensor.Randn(rng, 1, 2, 3, 12, 12) // different H, W
	requireBitwiseEqual(t, "fallback-f32",
		cq.Infer(other, NewScratch()), ref.Infer(other, NewScratch()))

	// And the calibration geometry itself routes int8: outputs differ
	// from f32 (quantized arithmetic) while staying in budget.
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	gq := cq.Infer(x, NewScratch())
	gf := ref.Infer(x, NewScratch())
	same := true
	for i := range gq.Data {
		if gq.Data[i] != gf.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("calibration-geometry input produced f32-identical output: int8 plan not routed")
	}
	if e := relL2(gq, gf); e > 0.12 {
		t.Fatalf("quantized rel-L2 error %.4f on non-calibration input exceeds budget", e)
	}
}

// TestCompiledQuantizedInvalidation pins recalibration: an optimizer
// step bumps parameter versions, so the next Infer refolds,
// REcalibrates on the retained batch and requantizes — tracking the
// updated network instead of serving stale scales.
func TestCompiledQuantizedInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	net := NewResNet(rng, MicroResNet50Config(4))
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	cq := MustCompileQuantized(net, x)
	ref := MustCompile(net)
	s := NewScratch()
	before := cq.Infer(x, s).Clone()

	sgd := NewSGD(0.1, 0, 0.2)
	sgd.Step(net.Params())
	s.Reset()
	got := cq.Infer(x, s)
	same := true
	for i := range got.Data {
		if got.Data[i] != before.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("optimizer step did not change the quantized output: stale plan served")
	}
	s.Reset()
	if e := relL2(got, ref.Infer(x, s)); e > 0.12 {
		t.Fatalf("post-step quantized rel-L2 error %.4f exceeds budget", e)
	}
}

// TestCompiledQuantizedSharedConcurrent is the -race stress for the
// int8 path: one quantized CompiledNet shared by many goroutines, every
// result bitwise equal to the serial answer.
func TestCompiledQuantizedSharedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	net := NewResNet(rng, MicroResNet50Config(4))
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	cq := MustCompileQuantized(net, x)
	want := cq.Infer(x, NewScratch()).Clone()
	const goroutines, rounds = 8, 3
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := GetScratch()
			defer PutScratch(sc)
			for r := 0; r < rounds; r++ {
				sc.Reset()
				got := cq.Infer(x, sc)
				for i := range want.Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
						errs <- "concurrent quantized Infer diverged from serial result"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

// TestCompiledQuantizedInferZeroAlloc pins the two-slab scheduling
// contract: with a warm Scratch and a built qplan, the int8 Infer
// allocates NOTHING — activations live in the pre-sized int8 arena
// slab, boundary floats in the f32 slab, GEMM panels in the scratch
// packing buffer.
func TestCompiledQuantizedInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI")
	}
	rng := rand.New(rand.NewSource(45))
	for _, cfg := range []ResNetConfig{
		MicroResNet50Config(4),
		MicroResNet50Config(4).WithFlatten(16, 16),
	} {
		net := NewResNet(rng, cfg)
		x := tensor.Randn(rng, 1, 2, 3, 16, 16)
		cq := MustCompileQuantized(net, x)
		sc := NewScratch()
		for i := 0; i < 2; i++ { // warm the plan, size and coalesce the arenas
			sc.Reset()
			cq.Infer(x, sc)
		}
		avg := testing.AllocsPerRun(20, func() {
			sc.Reset()
			cq.Infer(x, sc)
		})
		if avg != 0 {
			t.Fatalf("%s (flatten=%v): quantized Infer allocates %.1f objects per call, want 0",
				cfg.Name, cfg.FlattenPool, avg)
		}
	}
}

// TestCompileQuantizedRejects pins the error paths: an unlowerable
// graph and a calibration batch of the wrong rank both fail at
// CompileQuantized time (the quantized plan is built eagerly), not on
// the first request.
func TestCompileQuantizedRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	if _, err := CompileQuantized(NewSequential(unsupportedLayer{}), tensor.Randn(rng, 1, 2, 20)); err == nil {
		t.Fatal("CompileQuantized accepted a layer it cannot lower")
	}
	net := NewSequential(NewLinear(rng, "l", 20, 8, true))
	if _, err := CompileQuantized(net, tensor.Randn(rng, 1, 2, 20, 1)); err == nil {
		t.Fatal("CompileQuantized accepted a rank-3 calibration batch")
	}
	if _, err := CompileQuantized(net, tensor.Randn(rng, 1, 2, 21)); err == nil {
		t.Fatal("CompileQuantized accepted a calibration batch with the wrong width")
	}
}
