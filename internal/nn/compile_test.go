package nn

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// requireClose fails unless got matches want within relTol relative
// error (denominator clamped at 1 so near-zero activations compare
// absolutely) — the BN-folding parity bar: folding multiplies the scale
// into the weights before the product instead of after the sum, so the
// compiled path is tolerance-equal, not bitwise-equal, to Forward.
func requireClose(t *testing.T, name string, got, want *tensor.Tensor, relTol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	for i := range want.Data {
		g, w := float64(got.Data[i]), float64(want.Data[i])
		den := math.Abs(w)
		if den < 1 {
			den = 1
		}
		if math.Abs(g-w) > relTol*den {
			t.Fatalf("%s: element %d: compiled %v vs forward %v (rel err %.3g > %.3g)",
				name, i, g, w, math.Abs(g-w)/den, relTol)
		}
	}
}

// compileCase is one compilable network with a matching input.
type compileCase struct {
	name  string
	layer Layer
	input *tensor.Tensor
}

// compileParityCases covers every ResNet block shape the compiler
// fuses — bottleneck and basic blocks, stride-2 downsamples, 1×1
// projection shortcuts, identity shortcuts, flatten and avg-pool heads —
// plus MLP chains and standalone fusion seams (conv+bn+relu, affine
// fallbacks).
func compileParityCases() []compileCase {
	rng := rand.New(rand.NewSource(77))
	perturbBN := func(bn *BatchNorm2D) *BatchNorm2D {
		for ch := range bn.RunningMean.Data {
			bn.RunningMean.Data[ch] = rng.Float32()*2 - 1
			bn.RunningVar.Data[ch] = 0.5 + rng.Float32()
		}
		return bn
	}
	// A stem so residual blocks see compiler-internal activations (the
	// layout every mid-network block runs in).
	stem := func(outC int) []Layer {
		return []Layer{
			NewConv2D(rng, "stem", 3, outC, 3, 1, 1, false),
			perturbBN(NewBatchNorm2D("stembn", outC)),
			NewReLU(),
		}
	}
	identityBlock := NewSequential(append(stem(16), newResidualBlock(rng, "idb", 16, 4, 1, true))...)
	strideBlock := NewSequential(append(stem(8), newResidualBlock(rng, "s2b", 8, 8, 2, true))...)
	basicBlock := NewSequential(append(stem(8), newResidualBlock(rng, "bas", 8, 12, 2, false))...)
	return []compileCase{
		{"conv-bn-relu", NewSequential(
			NewConv2D(rng, "c", 3, 7, 3, 1, 1, false),
			perturbBN(NewBatchNorm2D("b", 7)),
			NewReLU(),
		), tensor.Randn(rng, 1, 3, 3, 9, 9)},
		{"conv-bias-bn", NewSequential( // biased conv: BN lowers to affine, not a fold
			NewConv2D(rng, "cb", 3, 5, 3, 2, 1, true),
			perturbBN(NewBatchNorm2D("bb", 5)),
		), tensor.Randn(rng, 1, 2, 3, 8, 8)},
		{"bn-first", NewSequential( // BN with nothing to fold into
			perturbBN(NewBatchNorm2D("b0", 3)),
			NewReLU(),
			NewConv2D(rng, "c0", 3, 4, 1, 1, 0, false),
		), tensor.Randn(rng, 1, 2, 3, 6, 6)},
		{"maxpool-conv", NewSequential(
			NewConv2D(rng, "mc", 3, 6, 3, 1, 1, false),
			NewMaxPool2D(2, 2),
			NewReLU(),
		), tensor.Randn(rng, 1, 2, 3, 8, 8)},
		{"identity-shortcut", identityBlock, tensor.Randn(rng, 1, 3, 3, 8, 8)},
		{"stride2-projection", strideBlock, tensor.Randn(rng, 1, 3, 3, 9, 9)},
		{"basic-block", basicBlock, tensor.Randn(rng, 1, 2, 3, 8, 8)},
		{"resnet-gap", NewResNet(rng, MicroResNet50Config(4)), tensor.Randn(rng, 1, 3, 3, 16, 16)},
		{"resnet-basic", NewResNet(rng, ResNetConfig{
			Name: "basic", StageDepths: [4]int{1, 1, 1, 1}, BaseWidth: 4, InChannels: 3,
		}), tensor.Randn(rng, 1, 2, 3, 16, 16)},
		{"resnet-flatten", NewResNet(rng, MicroResNet50Config(4).WithFlatten(16, 16)),
			tensor.Randn(rng, 1, 2, 3, 16, 16)},
		{"resnet-deep", NewResNet(rng, MicroResNet101Config(4)), tensor.Randn(rng, 1, 2, 3, 16, 16)},
		{"mlp", NewSequential(
			NewLinear(rng, "l1", 20, 16, true), NewReLU(),
			NewDropout(rng, 0.3),
			NewLinear(rng, "l2", 16, 9, true),
		), tensor.Randn(rng, 1, 4, 20)},
	}
}

// TestCompiledInferMatchesForward pins the fold→run round trip: the
// compiled plan (BN folded, epilogues fused, CNHW internals) matches
// Forward(x, false) within 1e-4 relative on every block shape, at
// several batch sizes through the same cached plan.
func TestCompiledInferMatchesForward(t *testing.T) {
	for _, tc := range compileParityCases() {
		t.Run(tc.name, func(t *testing.T) {
			cn := MustCompile(tc.layer)
			want := tc.layer.Forward(tc.input, false)
			s := NewScratch()
			requireClose(t, tc.name, cn.Infer(tc.input, s), want, 1e-4)

			// Smaller batch through the SAME plan (offsets scale with N).
			one := tc.input.Shape()
			one[0] = 1
			x1 := tensor.FromSlice(tc.input.Data[:tc.input.Len()/tc.input.Dim(0)], one...)
			w1 := tc.layer.Forward(x1, false)
			s.Reset()
			requireClose(t, tc.name+"/batch1", cn.Infer(x1, s), w1, 1e-4)
		})
	}
}

// TestCompiledBitwiseAcrossWorkers pins the compiled path's own
// determinism contract: identical bits for any Scratch worker budget
// (the GOMAXPROCS invariance the serving layer relies on).
func TestCompiledBitwiseAcrossWorkers(t *testing.T) {
	for _, tc := range compileParityCases() {
		cn := MustCompile(tc.layer)
		s := NewScratch()
		want := cn.Infer(tc.input, s).Clone()
		for _, workers := range []int{2, 3, 8} {
			sw := NewScratch()
			sw.Workers = workers
			got := cn.Infer(tc.input, sw)
			requireBitwiseEqual(t, tc.name+"/workers", got, want)
		}
	}
}

// TestCompiledMLPBitwiseEqualsForward pins that for graphs with nothing
// to fold (no batch norm), the fused epilogues are EXACT: compiled
// output is bit-identical to Forward, since packed weights, fused bias
// and the fused ReLU clamp are each bitwise-equal to their separate
// passes.
func TestCompiledMLPBitwiseEqualsForward(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := NewSequential(
		NewLinear(rng, "m1", 24, 40, true), NewReLU(),
		NewLinear(rng, "m2", 40, 12, true), NewReLU(),
		NewLinear(rng, "m3", 12, 5, false),
	)
	x := tensor.Randn(rng, 1, 9, 24)
	cn := MustCompile(net)
	want := net.Forward(x, false)
	requireBitwiseEqual(t, "mlp", cn.Infer(x, NewScratch()), want)
}

// TestCompiledFoldFloat64Oracle pins the fold arithmetic itself against
// a float64 reference convolution + batch norm + relu: both the layer
// Forward and the compiled fused path must sit within 1e-4 relative of
// the oracle, so the fold cannot silently drift even if both float32
// paths moved together.
func TestCompiledFoldFloat64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const inC, outC, kk, img = 3, 6, 3, 8
	conv := NewConv2D(rng, "oc", inC, outC, kk, 1, 1, false)
	bn := NewBatchNorm2D("ob", outC)
	for ch := 0; ch < outC; ch++ {
		bn.RunningMean.Data[ch] = rng.Float32()*2 - 1
		bn.RunningVar.Data[ch] = 0.5 + rng.Float32()
		bn.Gamma.Value.Data[ch] = 0.5 + rng.Float32()
		bn.Beta.Value.Data[ch] = rng.Float32() - 0.5
	}
	net := NewSequential(conv, bn, NewReLU())
	x := tensor.Randn(rng, 1, 2, inC, img, img)

	// Float64 oracle: direct convolution, frozen-stats normalization,
	// clamp — no float32 rounding anywhere.
	n := x.Dim(0)
	oracle := make([]float64, n*outC*img*img)
	for i := 0; i < n; i++ {
		for oc := 0; oc < outC; oc++ {
			inv := 1 / math.Sqrt(float64(bn.RunningVar.Data[oc])+float64(bn.Eps))
			g, b := float64(bn.Gamma.Value.Data[oc]), float64(bn.Beta.Value.Data[oc])
			mean := float64(bn.RunningMean.Data[oc])
			for oy := 0; oy < img; oy++ {
				for ox := 0; ox < img; ox++ {
					var sum float64
					for ic := 0; ic < inC; ic++ {
						for ky := 0; ky < kk; ky++ {
							for kx := 0; kx < kk; kx++ {
								iy, ix := oy+ky-1, ox+kx-1
								if iy < 0 || iy >= img || ix < 0 || ix >= img {
									continue
								}
								wv := float64(conv.W.Value.Data[oc*inC*kk*kk+(ic*kk+ky)*kk+kx])
								xv := float64(x.Data[((i*inC+ic)*img+iy)*img+ix])
								sum += wv * xv
							}
						}
					}
					v := g*(sum-mean)*inv + b
					if v < 0 {
						v = 0
					}
					oracle[((i*outC+oc)*img+oy)*img+ox] = v
				}
			}
		}
	}
	check := func(name string, got *tensor.Tensor) {
		t.Helper()
		for i, w := range oracle {
			den := math.Abs(w)
			if den < 1 {
				den = 1
			}
			if math.Abs(float64(got.Data[i])-w) > 1e-4*den {
				t.Fatalf("%s: element %d: %v vs oracle %v", name, i, got.Data[i], w)
			}
		}
	}
	check("forward", net.Forward(x, false))
	check("compiled", MustCompile(net).Infer(x, NewScratch()))
}

// TestCompiledInvalidation pins the cache-coherence contract: an
// optimizer step, a checkpoint load, or a training pass that moves the
// BN running statistics each bump a version the compiled plan is keyed
// on, so the next Infer refolds instead of serving stale weights.
func TestCompiledInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	net := NewResNet(rng, MicroResNet50Config(4))
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	cn := MustCompile(net)
	s := NewScratch()
	before := cn.Infer(x, s).Clone()

	// Optimizer step: weight decay alone moves every decayable weight.
	sgd := NewSGD(0.1, 0, 0.2)
	sgd.Step(net.Params())
	s.Reset()
	got := cn.Infer(x, s)
	requireClose(t, "post-step", got, net.Forward(x, false), 1e-4)
	same := true
	for i := range got.Data {
		if got.Data[i] != before.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("optimizer step did not change the compiled output: stale plan served")
	}

	// Checkpoint restore: LoadParams bumps every loaded version.
	donor := NewResNet(rand.New(rand.NewSource(100)), MicroResNet50Config(4))
	var buf bytes.Buffer
	if err := SaveParams(&buf, donor.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	requireClose(t, "post-load", cn.Infer(x, s), net.Forward(x, false), 1e-4)

	// Training pass: running stats move without any parameter version
	// bump; the stats content fingerprint covers them.
	net.Forward(x, true)
	s.Reset()
	requireClose(t, "post-train-stats", cn.Infer(x, s), net.Forward(x, false), 1e-4)

	// State-only checkpoint restore: LoadParams(StateParams(...)) writes
	// the running-stat tensors directly, bumping only the ephemeral
	// synthetic Params — no version on the network moves at all. The
	// content fingerprint must still refold.
	s.Reset()
	cn.Infer(x, s) // make sure a plan for the current stats is cached
	var statBuf bytes.Buffer
	if err := SaveParams(&statBuf, StateParams(donor.State())); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&statBuf, StateParams(net.State())); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	requireClose(t, "post-state-restore", cn.Infer(x, s), net.Forward(x, false), 1e-4)
}

// TestCompiledSharedConcurrent is the -race stress: one CompiledNet
// shared by many goroutines (spanning a refold triggered mid-flight by
// a version bump between rounds), every result bitwise equal to the
// single-threaded answer.
func TestCompiledSharedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewResNet(rng, MicroResNet50Config(4))
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	cn := MustCompile(net)
	want := cn.Infer(x, NewScratch()).Clone()
	const goroutines, rounds = 8, 3
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := GetScratch()
			defer PutScratch(sc)
			for r := 0; r < rounds; r++ {
				sc.Reset()
				got := cn.Infer(x, sc)
				for i := range want.Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
						errs <- "concurrent Infer diverged from serial result"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

// TestCompiledInferZeroAlloc pins the plan-level scheduling contract:
// with a warm Scratch and a built plan, CompiledNet.Infer allocates
// NOTHING — the whole activation footprint is one pre-sized arena
// reservation with compiler-assigned offsets.
func TestCompiledInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI")
	}
	rng := rand.New(rand.NewSource(21))
	for _, cfg := range []ResNetConfig{
		MicroResNet50Config(4),
		MicroResNet50Config(4).WithFlatten(16, 16),
	} {
		net := NewResNet(rng, cfg)
		cn := MustCompile(net)
		x := tensor.Randn(rng, 1, 2, 3, 16, 16)
		sc := NewScratch()
		for i := 0; i < 2; i++ { // build the plan, size and coalesce the arena
			sc.Reset()
			cn.Infer(x, sc)
		}
		avg := testing.AllocsPerRun(20, func() {
			sc.Reset()
			cn.Infer(x, sc)
		})
		if avg != 0 {
			t.Fatalf("%s (flatten=%v): CompiledNet.Infer allocates %.1f objects per call, want 0",
				cfg.Name, cfg.FlattenPool, avg)
		}
	}
}

// TestCompileRejectsUnsupported pins the compile-time error path.
func TestCompileRejectsUnsupported(t *testing.T) {
	if _, err := Compile(NewSequential(unsupportedLayer{})); err == nil {
		t.Fatal("Compile accepted a layer it cannot lower")
	}
}

type unsupportedLayer struct{}

func (unsupportedLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (unsupportedLayer) Backward(dout *tensor.Tensor) *tensor.Tensor         { return dout }
func (unsupportedLayer) Params() []*Param                                    { return nil }
