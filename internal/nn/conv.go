package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW activations, implemented as
// im2col followed by a matrix product so it rides the blocked matmul in
// package tensor. The weight is stored flattened as [outC, inC·kH·kW].
type Conv2D struct {
	W, B           *Param
	inC, outC      int
	kH, kW         int
	stride, pad    int
	in             *tensor.Tensor   // cached input
	cols           []*tensor.Tensor // cached im2col matrices, one per sample
	outH, outW     int
	lastBatch      int
	lastInH, lastW int
}

// NewConv2D builds a convolution layer with He initialization. bias=false
// is the usual choice when a batch-norm layer follows.
func NewConv2D(rng *rand.Rand, name string, inC, outC, kernel, stride, pad int, bias bool) *Conv2D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn.Conv2D: bad geometry kernel=%d stride=%d pad=%d", kernel, stride, pad))
	}
	fanIn := inC * kernel * kernel
	c := &Conv2D{
		W:    NewParam(name+".W", tensor.HeInit(rng, fanIn, outC, fanIn)),
		inC:  inC, outC: outC,
		kH: kernel, kW: kernel,
		stride: stride, pad: pad,
	}
	if bias {
		c.B = NewParam(name+".b", tensor.New(outC))
		c.B.NoDecay = true
	}
	return c
}

// OutSize returns the spatial output size for an input of size h×w.
func (c *Conv2D) OutSize(h, w int) (int, int) {
	oh := (h+2*c.pad-c.kH)/c.stride + 1
	ow := (w+2*c.pad-c.kW)/c.stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn.Conv2D: input %dx%d too small for kernel %d stride %d pad %d",
			h, w, c.kH, c.stride, c.pad))
	}
	return oh, ow
}

// im2col unpacks the receptive fields of one sample into a matrix of shape
// [inC·kH·kW, outH·outW]; column j holds the patch that produces output
// pixel j.
func (c *Conv2D) im2col(x *tensor.Tensor, n, h, w, oh, ow int) *tensor.Tensor {
	col := tensor.New(c.inC*c.kH*c.kW, oh*ow)
	c.im2colInto(col.Data, oh*ow, 0, x, n, h, w, oh, ow)
	return col
}

// im2colInto is im2col writing into a caller-owned buffer, which must be
// zero-filled (padded positions are skipped, not written). rowStride and
// colOff place the sample's columns inside a wider matrix: row r of the
// patch matrix lands at dst[r*rowStride+colOff:], which is how the
// batched inference path builds one [k, N·oh·ow] matrix from N samples
// (per-sample matrices use rowStride=oh·ow, colOff=0). It reads only
// layer geometry, never mutable state, so the stateless inference path
// shares it.
//hdc:hotpath
func (c *Conv2D) im2colInto(dst []float32, rowStride, colOff int, x *tensor.Tensor, n, h, w, oh, ow int) {
	xoff := n * c.inC * h * w
	for ic := 0; ic < c.inC; ic++ {
		chanOff := xoff + ic*h*w
		for ky := 0; ky < c.kH; ky++ {
			for kx := 0; kx < c.kW; kx++ {
				rowOff := ((ic*c.kH+ky)*c.kW+kx)*rowStride + colOff
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.stride + ky - c.pad
					if iy < 0 || iy >= h {
						continue
					}
					srcRow := chanOff + iy*w
					dstRow := rowOff + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.stride + kx - c.pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[dstRow+ox] = x.Data[srcRow+ix]
					}
				}
			}
		}
	}
}

// col2im scatters gradient columns back into an input-gradient tensor,
// accumulating where receptive fields overlap.
func (c *Conv2D) col2im(col *tensor.Tensor, dx *tensor.Tensor, n, h, w, oh, ow int) {
	xoff := n * c.inC * h * w
	for ic := 0; ic < c.inC; ic++ {
		chanOff := xoff + ic*h*w
		for ky := 0; ky < c.kH; ky++ {
			for kx := 0; kx < c.kW; kx++ {
				rowOff := ((ic*c.kH+ky)*c.kW + kx) * oh * ow
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.stride + ky - c.pad
					if iy < 0 || iy >= h {
						continue
					}
					dstRow := chanOff + iy*w
					srcRow := rowOff + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.stride + kx - c.pad
						if ix < 0 || ix >= w {
							continue
						}
						dx.Data[dstRow+ix] += col.Data[srcRow+ox]
					}
				}
			}
		}
	}
}

// Forward computes the convolution for x of shape [N, inC, H, W],
// returning [N, outC, outH, outW]. The input and per-sample im2col
// matrices are cached for Backward only in training mode; eval mode
// retains nothing, so a long-lived frozen layer doesn't pin the last
// batch's activations.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w, oh, ow := c.checkIn(x)
	if train {
		c.in, c.lastBatch, c.lastInH, c.lastW = x, n, h, w
		c.outH, c.outW = oh, ow
		c.cols = make([]*tensor.Tensor, n)
	} else {
		c.in, c.cols = nil, nil
	}

	out := tensor.New(n, c.outC, oh, ow)
	for i := 0; i < n; i++ {
		col := c.im2col(x, i, h, w, oh, ow)
		if train {
			c.cols[i] = col
		}
		y := tensor.MatMul(c.W.Value, col) // [outC, oh*ow]
		dst := out.Data[i*c.outC*oh*ow : (i+1)*c.outC*oh*ow]
		copy(dst, y.Data)
		c.addBias(dst, oh, ow)
	}
	return out
}

// Infer computes the convolution without touching layer state, via two
// fast paths over the packed GEMM:
//
//   - 1×1 stride-1 unpadded convolutions skip im2col entirely — each
//     sample's raw input planes [inC, H·W] ARE the patch matrix, so the
//     GEMM runs straight off the input with the channel bias fused into
//     its epilogue and writes directly into the output planes.
//   - Everything else builds ONE batched [inC·kH·kW, N·oh·ow] im2col
//     matrix (single zero-fill, N strided scatter passes) and runs ONE
//     GEMM over the whole batch, amortizing the weight-panel packing
//     across every sample, then scatters the [outC, N·oh·ow] product
//     into NCHW order.
//
// Both paths are bitwise identical to Forward(x, false): per output
// element the kernel accumulates the same products in the same k order
// regardless of how samples are batched, and the fused bias adds after
// the complete accumulation exactly like addBias.
func (c *Conv2D) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	n, h, w, oh, ow := c.checkIn(x)
	out := s.Alloc(n, c.outC, oh, ow)
	o := s.GemmOpts()
	if c.B != nil {
		o.RowBias = c.B.Value.Data
	}
	if c.kH == 1 && c.kW == 1 && c.stride == 1 && c.pad == 0 {
		// 1×1 fast path: per-sample GEMM on the raw input planes.
		plane := c.outC * oh * ow
		inPlane := c.inC * h * w
		for i := 0; i < n; i++ {
			tensor.GemmSlices(out.Data[i*plane:(i+1)*plane],
				c.W.Value.Data, x.Data[i*inPlane:(i+1)*inPlane],
				c.outC, c.inC, h*w, o)
		}
		return out
	}

	// Batched im2col: one [k, N·oh·ow] matrix, one GEMM, one scatter.
	k := c.inC * c.kH * c.kW
	ohow := oh * ow
	cols := s.Alloc(k, n*ohow)
	for i := 0; i < n; i++ {
		c.im2colInto(cols.Data, n*ohow, i*ohow, x, i, h, w, oh, ow)
	}
	if n == 1 {
		// Single sample: the GEMM result [outC, oh·ow] IS the output plane
		// layout — run it straight into out, no staging buffer, no scatter.
		tensor.GemmSlices(out.Data, c.W.Value.Data, cols.Data, c.outC, k, ohow, o)
		return out
	}
	y := s.Alloc(c.outC, n*ohow)
	tensor.GemmInto(y, c.W.Value, cols, o)
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.outC; oc++ {
			copy(out.Data[(i*c.outC+oc)*ohow:(i*c.outC+oc+1)*ohow],
				y.Data[oc*n*ohow+i*ohow:oc*n*ohow+(i+1)*ohow])
		}
	}
	return out
}

// addBias adds the per-channel bias to one sample's output planes.
func (c *Conv2D) addBias(dst []float32, oh, ow int) {
	if c.B == nil {
		return
	}
	for oc := 0; oc < c.outC; oc++ {
		bo := c.B.Value.Data[oc]
		plane := dst[oc*oh*ow : (oc+1)*oh*ow]
		for p := range plane {
			plane[p] += bo
		}
	}
}

// checkIn validates the input and returns its geometry.
func (c *Conv2D) checkIn(x *tensor.Tensor) (n, h, w, oh, ow int) {
	checkRank("Conv2D", x, 4)
	if x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn.Conv2D: input channels %d, layer expects %d", x.Dim(1), c.inC))
	}
	n, h, w = x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow = c.OutSize(h, w)
	return n, h, w, oh, ow
}

// Backward accumulates weight/bias gradients and returns the input
// gradient of shape [N, inC, H, W].
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.in == nil {
		panic("nn.Conv2D: Backward called before Forward")
	}
	n, h, w := c.lastBatch, c.lastInH, c.lastW
	oh, ow := c.outH, c.outW
	dx := tensor.New(n, c.inC, h, w)
	wT := tensor.Transpose2D(c.W.Value) // [inC·kH·kW, outC]
	for i := 0; i < n; i++ {
		dy := tensor.FromSlice(
			dout.Data[i*c.outC*oh*ow:(i+1)*c.outC*oh*ow], c.outC, oh*ow)
		// dW += dy · colᵀ; MatMulT(dy, col) multiplies against the transpose
		// without materializing it.
		tensor.AddInPlace(c.W.Grad, tensor.MatMulT(dy, c.cols[i]))
		// db += Σ spatial dy
		if c.B != nil {
			for oc := 0; oc < c.outC; oc++ {
				var s float32
				for _, v := range dy.Row(oc) {
					s += v
				}
				c.B.Grad.Data[oc] += s
			}
		}
		// dcol = Wᵀ · dy, scattered back through col2im.
		dcol := tensor.MatMul(wT, dy)
		c.col2im(dcol, dx, i, h, w, oh, ow)
	}
	return dx
}

// Params returns the layer's trainable parameters.
func (c *Conv2D) Params() []*Param {
	if c.B != nil {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}
