package nn

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// The stateless inference path.
//
// Layer.Forward mutates the layer even in eval mode — it may cache
// activations for Backward — so one network cannot be shared across
// goroutines through Forward. Infer is the shared-read alternative: a
// frozen network is a read-only object, and everything a call needs to
// write (activations, im2col workspace) lives in a per-call Scratch the
// caller threads through. Any number of goroutines may Infer on one
// network concurrently, each with its own Scratch.
//
// Contract for layer authors:
//
//   - Infer(x, s) must not write ANY layer field — parameters, running
//     statistics, and configuration are read-only.
//   - Output and intermediate tensors come from s.Alloc; they remain
//     valid until the Scratch is Reset or returned to the pool. Callers
//     that need the output to outlive the Scratch must Clone it.
//   - Infer(x, s) must be bitwise identical to Forward(x, false) on the
//     same frozen layer (pinned by TestInferForwardParity). Keep the
//     arithmetic — loop order, accumulation width — in lockstep with the
//     eval branch of Forward.
//   - Infer must not Reset the Scratch; one scratch serves a whole
//     network pass, and the top-level caller owns its lifecycle.

// Scratch is the per-call workspace of the stateless inference path: an
// arena for activation and im2col buffers plus the matmul worker budget.
// A Scratch is not safe for concurrent use; use one per goroutine,
// typically via GetScratch/PutScratch.
type Scratch struct {
	arena tensor.Arena
	// gemm owns the GEMM packing panels (tensor.GemmBuf): grown once,
	// reused by every layer matmul this scratch drives, zero steady-state
	// allocations.
	gemm tensor.GemmBuf
	// Workers is the worker budget layer matmuls may fan out over
	// (tensor.GemmOpts.Workers). It defaults to 1 — callers that already
	// parallelize across batches (the evaluation pipeline, the serving
	// layer under load) keep per-call compute serial; latency-sensitive
	// single-stream callers can raise it. Results are bitwise identical
	// for any value.
	Workers int
}

// NewScratch returns an empty scratch with a serial worker budget.
func NewScratch() *Scratch { return &Scratch{Workers: 1} }

// Alloc returns a zero-filled arena tensor valid until Reset.
func (s *Scratch) Alloc(shape ...int) *tensor.Tensor { return s.arena.Alloc(shape...) }

// AllocLike returns a zero-filled arena tensor shaped like ref.
func (s *Scratch) AllocLike(ref *tensor.Tensor) *tensor.Tensor { return s.arena.AllocLike(ref) }

// View returns an arena-backed reshape view over src's data.
func (s *Scratch) View(src *tensor.Tensor, shape ...int) *tensor.Tensor {
	return s.arena.View(src, shape...)
}

// Grab returns an UNINITIALIZED float32 slice carved from the arena,
// valid until Reset. The compiled inference plan (CompiledNet) reserves
// its activation slab this way; callers must overwrite every element
// they read.
func (s *Scratch) Grab(n int) []float32 { return s.arena.Grab(n) }

// Grab8 returns an UNINITIALIZED int8 slice carved from the arena,
// valid until Reset — the quantized compiled plan's activation slab.
func (s *Scratch) Grab8(n int) []int8 { return s.arena.Grab8(n) }

// Wrap returns an arena-backed tensor header over data (not copied).
func (s *Scratch) Wrap(data []float32, shape ...int) *tensor.Tensor {
	return s.arena.Wrap(data, shape...)
}

// GemmOpts returns the scratch-backed GEMM options layer matmuls use:
// this scratch's packing workspace and worker budget.
func (s *Scratch) GemmOpts() tensor.GemmOpts {
	return tensor.GemmOpts{Workers: s.workers(), Buf: &s.gemm}
}

// Gemm8Opts returns the scratch-backed int8 GEMM options the quantized
// compiled plan ops use: this scratch's packing workspace and worker
// budget.
func (s *Scratch) Gemm8Opts() tensor.Gemm8Opts {
	return tensor.Gemm8Opts{Workers: s.workers(), Buf: &s.gemm}
}

// Reset reclaims every arena allocation at once, invalidating tensors
// returned by earlier Infer calls that used this scratch.
func (s *Scratch) Reset() { s.arena.Reset() }

// workers clamps the worker budget to at least 1.
func (s *Scratch) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch checks a reset Scratch out of the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch resets s and returns it to the pool. Tensors allocated from
// s become invalid; Clone anything that must survive first.
func PutScratch(s *Scratch) {
	s.Reset()
	s.Workers = 1
	scratchPool.Put(s)
}

// Inferer is the stateless inference contract (see the package comment
// above): a frozen layer that computes its eval-mode forward pass
// without mutating itself, allocating from the caller's Scratch. Every
// layer in this package implements it.
type Inferer interface {
	Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor
}

// InferDetached runs one stateless forward pass through l with a pooled
// Scratch and returns a caller-owned copy of the output — the
// convenience entry point for callers that don't manage scratch reuse
// themselves (one-shot embeddings, tests).
func InferDetached(l Inferer, x *tensor.Tensor) *tensor.Tensor {
	s := GetScratch()
	y := l.Infer(x, s).Clone()
	PutScratch(s)
	return y
}

// asInferer asserts that a composed child layer implements the
// inference path, with an error message that points layer authors at
// the contract.
func asInferer(l Layer) Inferer {
	inf, ok := l.(Inferer)
	if !ok {
		panic(fmt.Sprintf(
			"nn: layer %T implements Forward but not Infer; stateless inference requires every layer to implement Infer(x, *Scratch) — see the contract in nn/infer.go", l))
	}
	return inf
}

// Infer runs the chain statelessly in order.
func (s *Sequential) Infer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	for _, l := range s.Layers {
		x = asInferer(l).Infer(x, sc)
	}
	return x
}
