package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// requireBitwiseEqual fails unless a and b carry identical float32 bit
// patterns — the parity bar the Infer contract pins (not just "close").
func requireBitwiseEqual(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d differs: Infer %v (bits %#x) vs Forward %v (bits %#x)",
				name, i, got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// inferCase is one layer (or composite) with a matching input.
type inferCase struct {
	name  string
	layer Layer
	input *tensor.Tensor
}

// inferParityCases builds every layer type plus full composites, each
// with realistic input. The BatchNorm gets perturbed running statistics
// so the frozen-stats path is actually exercised.
func inferParityCases() []inferCase {
	rng := rand.New(rand.NewSource(42))
	bn := NewBatchNorm2D("bn", 6)
	for ch := 0; ch < 6; ch++ {
		bn.RunningMean.Data[ch] = rng.Float32()*2 - 1
		bn.RunningVar.Data[ch] = 0.5 + rng.Float32()
	}
	flatRes := NewResNet(rng, MicroResNet50Config(4).WithFlatten(16, 16))
	return []inferCase{
		{"Linear+bias", NewLinear(rng, "fc", 33, 17, true), tensor.Randn(rng, 1, 5, 33)},
		{"Linear-nobias", NewLinear(rng, "fcnb", 12, 8, false), tensor.Randn(rng, 1, 3, 12)},
		{"Conv2D-pad", NewConv2D(rng, "conv", 3, 5, 3, 1, 1, true), tensor.Randn(rng, 1, 2, 3, 9, 9)},
		{"Conv2D-batch1", NewConv2D(rng, "convb1", 3, 5, 3, 1, 1, true), tensor.Randn(rng, 1, 1, 3, 9, 9)},
		{"Conv2D-stride", NewConv2D(rng, "convs", 4, 6, 3, 2, 1, false), tensor.Randn(rng, 1, 2, 4, 8, 8)},
		{"Conv2D-1x1", NewConv2D(rng, "conv1", 4, 8, 1, 1, 0, false), tensor.Randn(rng, 1, 2, 4, 6, 6)},
		{"BatchNorm2D", bn, tensor.Randn(rng, 1, 3, 6, 5, 5)},
		{"ReLU", NewReLU(), tensor.Randn(rng, 1, 2, 40)},
		{"Dropout", NewDropout(rng, 0.5), tensor.Randn(rng, 1, 2, 40)},
		{"Flatten", NewFlatten(), tensor.Randn(rng, 1, 2, 3, 4, 4)},
		{"MaxPool2D", NewMaxPool2D(2, 2), tensor.Randn(rng, 1, 2, 3, 8, 8)},
		{"GlobalAvgPool", NewGlobalAvgPool(), tensor.Randn(rng, 1, 2, 3, 5, 5)},
		{"Sequential-MLP", NewSequential(
			NewLinear(rng, "s1", 20, 16, true), NewReLU(), NewLinear(rng, "s2", 16, 9, true),
		), tensor.Randn(rng, 1, 4, 20)},
		{"ResNet-gap", NewResNet(rng, MicroResNet50Config(4)), tensor.Randn(rng, 1, 2, 3, 16, 16)},
		{"ResNet-flatten", flatRes, tensor.Randn(rng, 1, 2, 3, 16, 16)},
		{"ResNet-basic", NewResNet(rng, ResNetConfig{
			Name: "basic", StageDepths: [4]int{1, 1, 1, 1}, BaseWidth: 4, InChannels: 3,
		}), tensor.Randn(rng, 1, 2, 3, 16, 16)},
	}
}

// TestInferForwardParity pins the Infer contract: for every layer type
// and full composites, Infer(x, scratch) is bitwise identical to the
// legacy Forward(x, false) on the same frozen weights.
func TestInferForwardParity(t *testing.T) {
	for _, tc := range inferParityCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.layer.Forward(tc.input, false)
			inf := asInferer(tc.layer)

			s := NewScratch()
			requireBitwiseEqual(t, tc.name, inf.Infer(tc.input, s), want)

			// Same scratch after Reset, and a parallel matmul budget: both
			// must reproduce the exact bits.
			s.Reset()
			s.Workers = 4
			requireBitwiseEqual(t, tc.name+"/workers=4", inf.Infer(tc.input, s), want)

			// Pooled-scratch convenience path.
			requireBitwiseEqual(t, tc.name+"/detached", InferDetached(inf, tc.input), want)
		})
	}
}

// TestInferSharedNetConcurrent is the -race stress of the tentpole
// property: one frozen network shared by many goroutines, each running
// Infer with its own scratch, all producing the serial eval answer.
func TestInferSharedNetConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewResNet(rng, MicroResNet50Config(4))
	const goroutines, rounds = 8, 3

	inputs := make([]*tensor.Tensor, goroutines)
	wants := make([]*tensor.Tensor, goroutines)
	for g := range inputs {
		inputs[g] = tensor.Randn(rng, 1, 2, 3, 16, 16)
		wants[g] = net.Forward(inputs[g], false)
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := GetScratch()
			defer PutScratch(sc)
			for r := 0; r < rounds; r++ {
				sc.Reset()
				got := net.Infer(inputs[g], sc)
				for i := range wants[g].Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(wants[g].Data[i]) {
						errs <- "concurrent Infer diverged from serial Forward"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestEvalForwardRetainsNoCaches pins the serving-process memory fix:
// after Forward(x, false) no layer holds a reference to activation-sized
// buffers (the legacy path kept them alive for the lifetime of the
// layer even when no Backward could ever consume them).
func TestEvalForwardRetainsNoCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x2 := tensor.Randn(rng, 1, 4, 10)
	x4 := tensor.Randn(rng, 1, 2, 3, 8, 8)

	lin := NewLinear(rng, "fc", 10, 4, true)
	lin.Forward(x2, true)
	lin.Forward(x2, false)
	if lin.in != nil {
		t.Error("Linear retains input after eval Forward")
	}

	conv := NewConv2D(rng, "conv", 3, 4, 3, 1, 1, false)
	conv.Forward(x4, true)
	conv.Forward(x4, false)
	if conv.in != nil || conv.cols != nil {
		t.Error("Conv2D retains input/im2col caches after eval Forward")
	}

	bn := NewBatchNorm2D("bn", 3)
	bn.Forward(x4, true)
	bn.Forward(x4, false)
	if bn.xhat != nil || bn.invStd != nil {
		t.Error("BatchNorm2D retains normalized activations after eval Forward")
	}

	relu := NewReLU()
	relu.Forward(x2, true)
	relu.Forward(x2, false)
	if relu.mask != nil {
		t.Error("ReLU retains mask after eval Forward")
	}

	mp := NewMaxPool2D(2, 2)
	mp.Forward(x4, true)
	mp.Forward(x4, false)
	if mp.argmax != nil {
		t.Error("MaxPool2D retains argmax after eval Forward")
	}
}

// TestBatchNormEvalKeepsRunningStats guards the frozen-stats invariant
// both eval paths rely on: neither Forward(x, false) nor Infer updates
// the running estimates.
func TestBatchNormEvalKeepsRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	bn.Forward(x, true) // move stats off their init values
	mean := bn.RunningMean.Clone()
	vari := bn.RunningVar.Clone()

	bn.Forward(x, false)
	InferDetached(bn, x)

	for ch := 0; ch < 3; ch++ {
		if bn.RunningMean.Data[ch] != mean.Data[ch] || bn.RunningVar.Data[ch] != vari.Data[ch] {
			t.Fatal("eval path moved the running statistics")
		}
	}
}

// BenchmarkResNetInfer measures the stateless path at the same scale as
// BenchmarkResNetForward for a direct allocation/throughput comparison.
func BenchmarkResNetInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := NewResNet(rng, MicroResNet50Config(6))
	x := tensor.Randn(rng, 1, 4, 3, 16, 16)
	sc := NewScratch()
	net.Infer(x, sc) // size the arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset()
		net.Infer(x, sc)
	}
}
