package nn

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b with W stored [in, out].
// It implements the paper's FC projection layer (backbone embedding d' →
// ZSC embedding d) and the temporary FC' softmax head of phase I.
type Linear struct {
	W, B *Param
	in   *tensor.Tensor // cached input for backward
	out  int

	// packed caches W in the GEMM column-panel layout keyed by W's
	// version, so Infer never re-reads the weight matrix column-strided.
	// It is the one permitted "write" in Infer: an atomically-published
	// cache of a pure function of W, safe under concurrent shared-read
	// inference and invalidated whenever W's version moves (optimizer
	// steps, checkpoint loads — see Param.BumpVersion).
	packed atomic.Pointer[packedWeight]
}

// packedWeight pairs a packed panel with the weight version it was
// packed from.
type packedWeight struct {
	pb      *tensor.PackedB
	version uint64
}

// packedW returns W in packed-panel form, rebuilding if W changed since
// the last pack. Concurrent callers may race to rebuild; all results are
// identical (packing is pure data movement) and one wins the publish.
func (l *Linear) packedW() *tensor.PackedB {
	v := l.W.Version()
	if c := l.packed.Load(); c != nil && c.version == v {
		return c.pb
	}
	pb := tensor.PackB(l.W.Value)
	l.packed.Store(&packedWeight{pb: pb, version: v})
	return pb
}

// NewLinear builds a linear layer with He initialization (suitable for the
// ReLU backbones here) and zero bias. bias=false omits the bias term, as
// in layers immediately followed by batch normalization.
func NewLinear(rng *rand.Rand, name string, in, out int, bias bool) *Linear {
	l := &Linear{
		W:   NewParam(name+".W", tensor.HeInit(rng, in, in, out)),
		out: out,
	}
	if bias {
		l.B = NewParam(name+".b", tensor.New(out))
		l.B.NoDecay = true
	}
	return l
}

// InDim returns the input feature dimension.
func (l *Linear) InDim() int { return l.W.Value.Dim(0) }

// OutDim returns the output feature dimension.
func (l *Linear) OutDim() int { return l.out }

// Forward computes x·W (+ b) for x of shape [N, in]. The input is
// cached for Backward only in training mode; in eval mode no reference
// is retained, so long-lived serving processes don't pin the last batch.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.checkIn(x)
	if train {
		l.in = x
	} else {
		l.in = nil
	}
	y := tensor.MatMul(x, l.W.Value)
	if l.B != nil {
		y = tensor.AddRowVector(y, l.B.Value)
	}
	return y
}

// Infer computes x·W (+ b) without touching mutable layer state: the
// GEMM consumes the cached pre-packed weight panel (skipping the
// column-strided re-pack of W every call) and folds the bias into the
// epilogue. Bitwise identical to Forward(x, false) — packing is pure
// data movement and the fused bias adds after each element's complete
// accumulation, exactly like the separate bias pass.
func (l *Linear) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	l.checkIn(x)
	y := s.Alloc(x.Dim(0), l.out)
	o := s.GemmOpts()
	o.PB = l.packedW()
	if l.B != nil {
		o.ColBias = l.B.Value.Data
	}
	tensor.GemmInto(y, x, nil, o)
	return y
}

// checkIn validates the input shape against the weight matrix.
func (l *Linear) checkIn(x *tensor.Tensor) {
	checkRank("Linear", x, 2)
	if x.Dim(1) != l.W.Value.Dim(0) {
		panic(fmt.Sprintf("nn.Linear: input dim %d does not match weight in-dim %d",
			x.Dim(1), l.W.Value.Dim(0)))
	}
}

// Backward accumulates dW = xᵀ·dout and db = Σ_rows dout, returning
// dx = dout·Wᵀ.
func (l *Linear) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.in == nil {
		panic("nn.Linear: Backward called before Forward")
	}
	dw := tensor.TMatMul(l.in, dout)
	tensor.AddInPlace(l.W.Grad, dw)
	if l.B != nil {
		tensor.AddInPlace(l.B.Grad, tensor.SumCols(dout))
	}
	return tensor.MatMulT(dout, l.W.Value)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param {
	if l.B != nil {
		return []*Param{l.W, l.B}
	}
	return []*Param{l.W}
}
