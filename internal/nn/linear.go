package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b with W stored [in, out].
// It implements the paper's FC projection layer (backbone embedding d' →
// ZSC embedding d) and the temporary FC' softmax head of phase I.
type Linear struct {
	W, B *Param
	in   *tensor.Tensor // cached input for backward
	out  int
}

// NewLinear builds a linear layer with He initialization (suitable for the
// ReLU backbones here) and zero bias. bias=false omits the bias term, as
// in layers immediately followed by batch normalization.
func NewLinear(rng *rand.Rand, name string, in, out int, bias bool) *Linear {
	l := &Linear{
		W:   NewParam(name+".W", tensor.HeInit(rng, in, in, out)),
		out: out,
	}
	if bias {
		l.B = NewParam(name+".b", tensor.New(out))
		l.B.NoDecay = true
	}
	return l
}

// InDim returns the input feature dimension.
func (l *Linear) InDim() int { return l.W.Value.Dim(0) }

// OutDim returns the output feature dimension.
func (l *Linear) OutDim() int { return l.out }

// Forward computes x·W (+ b) for x of shape [N, in].
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank("Linear", x, 2)
	if x.Dim(1) != l.W.Value.Dim(0) {
		panic(fmt.Sprintf("nn.Linear: input dim %d does not match weight in-dim %d",
			x.Dim(1), l.W.Value.Dim(0)))
	}
	l.in = x
	y := tensor.MatMul(x, l.W.Value)
	if l.B != nil {
		y = tensor.AddRowVector(y, l.B.Value)
	}
	return y
}

// Backward accumulates dW = xᵀ·dout and db = Σ_rows dout, returning
// dx = dout·Wᵀ.
func (l *Linear) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.in == nil {
		panic("nn.Linear: Backward called before Forward")
	}
	dw := tensor.TMatMul(l.in, dout)
	tensor.AddInPlace(l.W.Grad, dw)
	if l.B != nil {
		tensor.AddInPlace(l.B.Grad, tensor.SumCols(dout))
	}
	return tensor.MatMulT(dout, l.W.Value)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param {
	if l.B != nil {
		return []*Param{l.W, l.B}
	}
	return []*Param{l.W}
}
