package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss between logits
// [N, C] and integer labels, returning the loss and ∂loss/∂logits. It is
// the phase-I (ImageNet-style classification) and phase-III (ZSC over
// class similarities) objective.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor) {
	checkRank("SoftmaxCrossEntropy", logits, 2)
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn.SoftmaxCrossEntropy: %d labels for %d rows", len(labels), n))
	}
	probs := tensor.SoftmaxRows(logits)
	var loss float64
	grad := probs.Clone()
	invN := 1 / float32(n)
	for i, y := range labels {
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn.SoftmaxCrossEntropy: label %d out of range [0,%d)", y, c))
		}
		p := probs.At(i, y)
		loss -= math.Log(math.Max(float64(p), 1e-12))
		grad.Data[i*c+y] -= 1
	}
	tensor.ScaleInPlace(grad, invN)
	return float32(loss / float64(n)), grad
}

// BCEWithLogits computes the mean binary cross entropy over a multi-label
// target matrix, applying the sigmoid internally for numerical stability,
// with optional per-attribute positive weights.
//
// The paper (§III-A) weights the positive term to counter the large class
// imbalance of the attribute-extraction task (most of the 312 attributes
// are inactive for any given image): the loss per element is
//
//	−[ w·t·log σ(x) + (1−t)·log(1−σ(x)) ]
//
// where w is posWeight for that attribute column. posWeight may be nil
// (uniform weight 1, plain BCE, the Finetag-like baseline objective).
// Targets may be soft (in [0,1]).
func BCEWithLogits(logits, targets *tensor.Tensor, posWeight []float32) (float32, *tensor.Tensor) {
	checkRank("BCEWithLogits", logits, 2)
	if !logits.SameShape(targets) {
		panic(fmt.Sprintf("nn.BCEWithLogits: logits %v vs targets %v", logits.Shape(), targets.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if posWeight != nil && len(posWeight) != c {
		panic(fmt.Sprintf("nn.BCEWithLogits: %d pos weights for %d attributes", len(posWeight), c))
	}
	grad := tensor.New(n, c)
	var loss float64
	invCount := 1 / float32(n*c)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			x := float64(logits.At(i, j))
			t := float64(targets.At(i, j))
			w := 1.0
			if posWeight != nil {
				w = float64(posWeight[j])
			}
			// Stable log-sigmoid: log σ(x) = −log(1+e^{−x}) = min(x,0) − log1p(e^{−|x|}) ... use softplus.
			sp := softplus(-x)  // −log σ(x)
			spn := softplus(x)  // −log(1−σ(x))
			loss += w*t*sp + (1-t)*spn
			s := sigmoid(x)
			// d/dx [w·t·softplus(−x) + (1−t)·softplus(x)]
			//   = −w·t·(1−σ) + (1−t)·σ
			g := (1-t)*s - w*t*(1-s)
			grad.Data[i*c+j] = float32(g) * invCount
		}
	}
	return float32(loss) * invCount, grad
}

// MSE computes the mean squared error ½·mean((a−b)²) and its gradient with
// respect to a.
func MSE(a, b *tensor.Tensor) (float32, *tensor.Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("nn.MSE: shapes %v vs %v", a.Shape(), b.Shape()))
	}
	n := float32(a.Len())
	grad := tensor.New(a.Shape()...)
	var loss float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		loss += 0.5 * float64(d) * float64(d)
		grad.Data[i] = d / n
	}
	return float32(loss / float64(a.Len())), grad
}

// PosWeights computes per-attribute positive-class weights #neg/#pos from
// a target matrix [N, α], clamped to [1, maxW]. Attributes that never
// fire get the maximum weight. This is the class-imbalance compensation
// of the paper's weighted BCE.
func PosWeights(targets *tensor.Tensor, maxW float32) []float32 {
	checkRank("PosWeights", targets, 2)
	n, c := targets.Dim(0), targets.Dim(1)
	out := make([]float32, c)
	for j := 0; j < c; j++ {
		var pos float64
		for i := 0; i < n; i++ {
			pos += float64(targets.At(i, j))
		}
		neg := float64(n) - pos
		w := maxW
		if pos > 0 {
			w = float32(neg / pos)
		}
		if w < 1 {
			w = 1
		}
		if w > maxW {
			w = maxW
		}
		out[j] = w
	}
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// softplus computes log(1+e^x) without overflow.
func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}
