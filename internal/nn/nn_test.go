package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numGrad estimates ∂loss/∂x[i] by central differences for a scalar loss
// defined as the dot product of the layer output with a fixed cotangent.
func numGrad(f func() float32, x *tensor.Tensor, i int, eps float32) float32 {
	orig := x.Data[i]
	x.Data[i] = orig + eps
	up := f()
	x.Data[i] = orig - eps
	down := f()
	x.Data[i] = orig
	return (up - down) / (2 * eps)
}

// checkLayerGrad verifies a layer's input and parameter gradients against
// finite differences using loss = Σ out·cot.
func checkLayerGrad(t *testing.T, l Layer, x *tensor.Tensor, tol float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := l.Forward(x, true)
	cot := tensor.RandUniform(rng, -1, 1, out.Shape()...)

	loss := func() float32 {
		o := l.Forward(x, true)
		var s float64
		for i := range o.Data {
			s += float64(o.Data[i]) * float64(cot.Data[i])
		}
		return float32(s)
	}

	ZeroGrads(l.Params())
	out = l.Forward(x, true)
	_ = out
	dx := l.Backward(cot)

	// Input gradient at a sample of positions.
	for trial := 0; trial < 12; trial++ {
		i := rng.Intn(x.Len())
		want := numGrad(loss, x, i, 1e-2)
		if diff := math.Abs(float64(dx.Data[i] - want)); diff > float64(tol)*math.Max(1, math.Abs(float64(want))) {
			t.Errorf("input grad[%d] = %v, numeric %v", i, dx.Data[i], want)
		}
	}
	// Parameter gradients.
	for _, p := range l.Params() {
		for trial := 0; trial < 8; trial++ {
			i := rng.Intn(p.Value.Len())
			want := numGrad(loss, p.Value, i, 1e-2)
			if diff := math.Abs(float64(p.Grad.Data[i] - want)); diff > float64(tol)*math.Max(1, math.Abs(float64(want))) {
				t.Errorf("%s grad[%d] = %v, numeric %v", p.Name, i, p.Grad.Data[i], want)
			}
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "fc", 7, 5, true)
	x := tensor.Randn(rng, 1, 4, 7)
	checkLayerGrad(t, l, x, 0.05)
}

func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(rng, "conv", 2, 3, 3, 1, 1, true)
	x := tensor.Randn(rng, 1, 2, 2, 5, 5)
	checkLayerGrad(t, c, x, 0.05)
}

func TestConvStride2GradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D(rng, "conv", 2, 2, 3, 2, 1, false)
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)
	checkLayerGrad(t, c, x, 0.05)
}

func TestConvOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv2D(rng, "conv", 3, 8, 3, 2, 1, false)
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	y := c.Forward(x, true)
	want := []int{2, 8, 8, 8}
	got := y.Shape()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("conv output shape %v, want %v", got, want)
		}
	}
}

func TestConvIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D(rng, "conv", 1, 1, 1, 1, 0, false)
	c.W.Value.Data[0] = 1 // 1×1 identity kernel
	x := tensor.Randn(rng, 1, 1, 1, 4, 4)
	y := c.Forward(x, true)
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatal("1x1 identity conv must be identity")
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-1, 0, 2}, 1, 3)
	y := r.Forward(x, true)
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Fatalf("ReLU forward wrong: %v", y.Data)
	}
	dx := r.Backward(tensor.FromSlice([]float32{5, 5, 5}, 1, 3))
	if dx.Data[0] != 0 || dx.Data[1] != 0 || dx.Data[2] != 5 {
		t.Fatalf("ReLU backward wrong: %v", dx.Data)
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.Randn(rng, 1, 4, 3, 3, 3)
	checkLayerGrad(t, bn, x, 0.08)
}

func TestBatchNormNormalizesTrainMode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.Randn(rng, 3, 8, 2, 4, 4) // mean≈0 std≈3
	y := bn.Forward(x, true)
	// Per-channel output should be ≈ zero-mean unit-var.
	n, c, plane := 8, 2, 16
	for ch := 0; ch < c; ch++ {
		var s, s2 float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				v := float64(y.Data[base+p])
				s += v
				s2 += v * v
			}
		}
		cnt := float64(n * plane)
		mean := s / cnt
		variance := s2/cnt - mean*mean
		if math.Abs(mean) > 1e-3 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d not normalized: mean=%v var=%v", ch, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm2D("bn", 1)
	// Train on a few batches to move running stats.
	for i := 0; i < 20; i++ {
		x := tensor.Randn(rng, 2, 4, 1, 2, 2)
		bn.Forward(x, true)
	}
	x := tensor.Full(100, 1, 1, 2, 2) // constant input
	y := bn.Forward(x, false)
	// Eval output must be deterministic wrt running stats, not batch stats
	// (batch stats would normalize the constant to 0).
	if y.Data[0] == 0 {
		t.Fatal("eval mode used batch statistics")
	}
	y2 := bn.Forward(x, false)
	if y.Data[0] != y2.Data[0] {
		t.Fatal("eval mode not deterministic")
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	m := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := m.Forward(x, true)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("maxpool forward %v, want %v", y.Data, want)
		}
	}
	dx := m.Backward(tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2))
	if dx.Data[5] != 1 || dx.Data[7] != 1 || dx.Data[13] != 1 || dx.Data[15] != 1 {
		t.Fatalf("maxpool backward misrouted: %v", dx.Data)
	}
	if dx.Data[0] != 0 {
		t.Fatal("maxpool backward leaked to non-max position")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool()
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := g.Forward(x, true)
	if y.Dim(0) != 1 || y.Dim(1) != 2 {
		t.Fatalf("gap shape %v", y.Shape())
	}
	if y.Data[0] != 2.5 || y.Data[1] != 25 {
		t.Fatalf("gap values %v", y.Data)
	}
	dx := g.Backward(tensor.FromSlice([]float32{4, 8}, 1, 2))
	if dx.Data[0] != 1 || dx.Data[4] != 2 {
		t.Fatalf("gap backward %v", dx.Data)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDropout(rng, 0.5)
	x := tensor.Ones(1, 1000)
	yTrain := d.Forward(x, true)
	var zeros int
	for _, v := range yTrain.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v-2)) > 1e-6 {
			t.Fatalf("survivor not rescaled: %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("drop rate off: %d/1000 dropped", zeros)
	}
	yEval := d.Forward(x, false)
	for _, v := range yEval.Data {
		if v != 1 {
			t.Fatal("eval mode must be identity")
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := NewFlatten()
	x := tensor.Randn(rng, 1, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	dx := f.Backward(y)
	if dx.Rank() != 4 {
		t.Fatalf("unflatten shape %v", dx.Shape())
	}
}

// --- Losses ---

func TestSoftmaxCEKnownValue(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0, 0}, 1, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1})
	if math.Abs(float64(loss)-math.Log(3)) > 1e-5 {
		t.Fatalf("uniform CE loss = %v, want ln 3", loss)
	}
	// grad = p − onehot: (1/3, 1/3−1, 1/3)
	if math.Abs(float64(grad.Data[1]+2.0/3)) > 1e-5 {
		t.Fatalf("CE grad wrong: %v", grad.Data)
	}
}

func TestSoftmaxCEGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := tensor.Randn(rng, 1, 3, 5)
	labels := []int{2, 0, 4}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	for trial := 0; trial < 10; trial++ {
		i := rng.Intn(logits.Len())
		want := numGrad(func() float32 {
			l, _ := SoftmaxCrossEntropy(logits, labels)
			return l
		}, logits, i, 1e-2)
		if math.Abs(float64(grad.Data[i]-want)) > 2e-3 {
			t.Fatalf("CE grad[%d]=%v numeric %v", i, grad.Data[i], want)
		}
	}
}

func TestBCEGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	logits := tensor.Randn(rng, 1, 2, 6)
	targets := tensor.RandUniform(rng, 0, 1, 2, 6)
	pw := []float32{1, 2, 3, 1, 5, 1}
	_, grad := BCEWithLogits(logits, targets, pw)
	for trial := 0; trial < 10; trial++ {
		i := rng.Intn(logits.Len())
		want := numGrad(func() float32 {
			l, _ := BCEWithLogits(logits, targets, pw)
			return l
		}, logits, i, 1e-2)
		if math.Abs(float64(grad.Data[i]-want)) > 2e-3 {
			t.Fatalf("BCE grad[%d]=%v numeric %v", i, grad.Data[i], want)
		}
	}
}

func TestBCEStableAtExtremeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float32{100, -100}, 1, 2)
	targets := tensor.FromSlice([]float32{1, 0}, 1, 2)
	loss, grad := BCEWithLogits(logits, targets, nil)
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		t.Fatalf("BCE overflowed: %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("perfect predictions should have ~0 loss, got %v", loss)
	}
	if grad.HasNaN() {
		t.Fatal("BCE gradient overflowed")
	}
}

func TestPosWeights(t *testing.T) {
	// Attribute 0 fires 1/4 of the time → weight 3; attribute 1 never → maxW.
	targets := tensor.FromSlice([]float32{
		1, 0,
		0, 0,
		0, 0,
		0, 0,
	}, 4, 2)
	w := PosWeights(targets, 10)
	if math.Abs(float64(w[0]-3)) > 1e-5 {
		t.Fatalf("posWeight[0] = %v, want 3", w[0])
	}
	if w[1] != 10 {
		t.Fatalf("posWeight[1] = %v, want maxW", w[1])
	}
}

func TestMSE(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2}, 2)
	b := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSE(a, b)
	if math.Abs(float64(loss)-1.25) > 1e-5 { // ½(1+4)/2
		t.Fatalf("MSE = %v, want 1.25", loss)
	}
	if grad.Data[1] != 1 {
		t.Fatalf("MSE grad = %v", grad.Data)
	}
}

// --- Optimizers & schedule ---

func TestSGDReducesQuadratic(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{5}, 1))
	opt := NewSGD(0.05, 0.9, 0)
	for i := 0; i < 300; i++ {
		p.ZeroGrad()
		p.Grad.Data[0] = 2 * p.Value.Data[0] // d/dw w²
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.Value.Data[0])) > 1e-2 {
		t.Fatalf("SGD failed to minimize w²: w=%v", p.Value.Data[0])
	}
}

func TestAdamWReducesQuadratic(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{5}, 1))
	opt := NewAdamW(0.3, 0)
	for i := 0; i < 200; i++ {
		p.ZeroGrad()
		p.Grad.Data[0] = 2 * p.Value.Data[0]
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.Value.Data[0])) > 1e-2 {
		t.Fatalf("AdamW failed to minimize w²: w=%v", p.Value.Data[0])
	}
}

func TestAdamWDecoupledDecayShrinksWeights(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{1}, 1))
	opt := NewAdamW(0.01, 0.5)
	for i := 0; i < 50; i++ {
		p.ZeroGrad() // zero gradient: only decay acts
		opt.Step([]*Param{p})
	}
	if p.Value.Data[0] >= 1 {
		t.Fatal("decoupled weight decay had no effect")
	}
	// NoDecay parameters must be untouched by decay.
	q := NewParam("b", tensor.FromSlice([]float32{1}, 1))
	q.NoDecay = true
	opt2 := NewAdamW(0.01, 0.5)
	for i := 0; i < 50; i++ {
		q.ZeroGrad()
		opt2.Step([]*Param{q})
	}
	if q.Value.Data[0] != 1 {
		t.Fatalf("NoDecay param decayed: %v", q.Value.Data[0])
	}
}

func TestFrozenParamsSkipped(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{1}, 1))
	p.Frozen = true
	p.Grad.Data[0] = 100
	NewSGD(0.1, 0, 0).Step([]*Param{p})
	if p.Value.Data[0] != 1 {
		t.Fatal("SGD updated a frozen param")
	}
	NewAdamW(0.1, 0.1).Step([]*Param{p})
	if p.Value.Data[0] != 1 {
		t.Fatal("AdamW updated a frozen param")
	}
}

func TestCosineAnnealingEndpoints(t *testing.T) {
	s := NewCosineAnnealingLR(1.0, 0.1, 100)
	if math.Abs(float64(s.At(0)-1.0)) > 1e-6 {
		t.Fatalf("lr(0) = %v, want 1.0", s.At(0))
	}
	if math.Abs(float64(s.At(100)-0.1)) > 1e-6 {
		t.Fatalf("lr(T) = %v, want 0.1", s.At(100))
	}
	mid := s.At(50)
	if math.Abs(float64(mid-0.55)) > 1e-5 {
		t.Fatalf("lr(T/2) = %v, want 0.55", mid)
	}
	// Monotone decreasing.
	prev := s.At(0)
	for i := 1; i <= 100; i++ {
		cur := s.At(i)
		if cur > prev+1e-7 {
			t.Fatalf("cosine schedule not monotone at %d", i)
		}
		prev = cur
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(4))
	p.Grad.Data = []float32{3, 4, 0, 0} // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(float64(pre-5)) > 1e-5 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	var total float64
	for _, g := range p.Grad.Data {
		total += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(total)-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(total))
	}
}

// --- ResNet ---

func TestResNetForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewResNet(rng, MicroResNet50Config(4))
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	y := net.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != net.OutDim() {
		t.Fatalf("resnet output %v, want [2 %d]", y.Shape(), net.OutDim())
	}
	if net.OutDim() != 4*8*4 {
		t.Fatalf("OutDim = %d, want 128", net.OutDim())
	}
}

func TestResNetBackwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewResNet(rng, MicroResNet50Config(4))
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	y := net.Forward(x, true)
	dx := net.Backward(tensor.Ones(y.Shape()...))
	if dx.Rank() != 4 || dx.Dim(2) != 16 {
		t.Fatalf("resnet input grad shape %v", dx.Shape())
	}
	// Gradients must reach the stem.
	stemW := net.Params()[0]
	var any bool
	for _, g := range stemW.Grad.Data {
		if g != 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("no gradient reached the stem convolution")
	}
}

func TestResNet101DeeperThan50(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p50 := CountParams(NewResNet(rng, MicroResNet50Config(4)).Params())
	p101 := CountParams(NewResNet(rng, MicroResNet101Config(4)).Params())
	if p101 <= p50 {
		t.Fatalf("ResNet101 (%d params) not larger than ResNet50 (%d)", p101, p50)
	}
	full50 := ResNet50Config(4)
	full101 := ResNet101Config(4)
	d50, d101 := 0, 0
	for i := 0; i < 4; i++ {
		d50 += full50.StageDepths[i]
		d101 += full101.StageDepths[i]
	}
	if d50 != 16 || d101 != 33 {
		t.Fatalf("preset stage depths wrong: %d, %d (want 16, 33)", d50, d101)
	}
}

func TestResNetLearnsTinyProblem(t *testing.T) {
	// Two linearly separable "image" classes; a micro resnet + linear head
	// should fit them in a few steps.
	rng := rand.New(rand.NewSource(16))
	net := NewResNet(rng, ResNetConfig{
		Name: "tiny", StageDepths: [4]int{1, 1, 1, 1}, BaseWidth: 2,
		Bottleneck: false, InChannels: 1,
	})
	head := NewLinear(rng, "head", net.OutDim(), 2, true)
	model := NewSequential(net, head)
	opt := NewAdamW(0.01, 0)

	n := 8
	x := tensor.New(n, 1, 8, 8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % 2
		val := float32(-1)
		if labels[i] == 1 {
			val = 1
		}
		for p := 0; p < 64; p++ {
			x.Data[i*64+p] = val + float32(rng.NormFloat64())*0.1
		}
	}
	var first, last float32
	for step := 0; step < 30; step++ {
		ZeroGrads(model.Params())
		logits := model.Forward(x, true)
		loss, dlogits := SoftmaxCrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		model.Backward(dlogits)
		opt.Step(model.Params())
	}
	if last >= first {
		t.Fatalf("training did not reduce loss: %v → %v", first, last)
	}
	if last > 0.3 {
		t.Fatalf("failed to fit separable toy problem: loss %v", last)
	}
}

func TestSequentialParamsConcatenated(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewSequential(
		NewLinear(rng, "a", 3, 4, true),
		NewReLU(),
		NewLinear(rng, "b", 4, 2, false),
	)
	if len(s.Params()) != 3 { // a.W, a.b, b.W
		t.Fatalf("want 3 params, got %d", len(s.Params()))
	}
	if CountParams(s.Params()) != 3*4+4+4*2 {
		t.Fatalf("CountParams = %d", CountParams(s.Params()))
	}
}

func TestSetFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l := NewLinear(rng, "fc", 2, 2, true)
	SetFrozen(l.Params(), true)
	for _, p := range l.Params() {
		if !p.Frozen {
			t.Fatal("SetFrozen failed")
		}
	}
	SetFrozen(l.Params(), false)
	if l.W.Frozen {
		t.Fatal("unfreeze failed")
	}
}

func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, "conv", 8, 16, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 4, 8, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, true)
	}
}

func BenchmarkResNetForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := NewResNet(rng, MicroResNet50Config(6))
	x := tensor.Randn(rng, 1, 4, 3, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}
