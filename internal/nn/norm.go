package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes each channel of NCHW activations over the batch
// and spatial axes, with learnable per-channel scale (gamma) and shift
// (beta) and running statistics for inference.
type BatchNorm2D struct {
	Gamma, Beta             *Param
	RunningMean, RunningVar *tensor.Tensor
	Momentum                float32
	Eps                     float32

	// cached forward state for backward
	xhat      *tensor.Tensor
	invStd    []float32
	lastShape []int
}

// NewBatchNorm2D builds a batch-norm layer for c channels with gamma=1,
// beta=0, running statistics initialized to the standard (0, 1).
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		Gamma:       NewParam(name+".gamma", tensor.Ones(c)),
		Beta:        NewParam(name+".beta", tensor.New(c)),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
		Momentum:    0.9,
		Eps:         1e-5,
	}
	bn.Gamma.NoDecay = true
	bn.Beta.NoDecay = true
	return bn
}

// Forward normalizes x. In training mode it uses batch statistics and
// updates the running estimates; in evaluation mode it uses the running
// estimates, which keeps inference deterministic (the paper's stationary
// deployment).
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := bn.checkIn(x)
	plane := h * w
	count := n * plane
	out := tensor.New(n, c, h, w)
	if !train {
		// Eval mode retains nothing for Backward: normalize with the frozen
		// running statistics and drop any stale training caches.
		bn.xhat, bn.invStd, bn.lastShape = nil, nil, nil
		bn.normalizeFrozen(x, out, n, c, plane)
		return out
	}
	bn.xhat = tensor.New(n, c, h, w)
	bn.invStd = make([]float32, c)
	bn.lastShape = []int{n, c, h, w}

	for ch := 0; ch < c; ch++ {
		var s float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				s += float64(x.Data[base+p])
			}
		}
		mean := float32(s / float64(count))
		var sv float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				d := float64(x.Data[base+p] - mean)
				sv += d * d
			}
		}
		variance := float32(sv / float64(count))
		m := bn.Momentum
		bn.RunningMean.Data[ch] = m*bn.RunningMean.Data[ch] + (1-m)*mean
		bn.RunningVar.Data[ch] = m*bn.RunningVar.Data[ch] + (1-m)*variance

		inv := float32(1 / math.Sqrt(float64(variance)+float64(bn.Eps)))
		bn.invStd[ch] = inv
		g, b := bn.Gamma.Value.Data[ch], bn.Beta.Value.Data[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				xh := (x.Data[base+p] - mean) * inv
				bn.xhat.Data[base+p] = xh
				out.Data[base+p] = g*xh + b
			}
		}
	}
	return out
}

// Infer normalizes with the frozen running statistics without touching
// any layer state; bitwise identical to Forward(x, false).
func (bn *BatchNorm2D) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	n, c, h, w := bn.checkIn(x)
	out := s.Alloc(n, c, h, w)
	bn.normalizeFrozen(x, out, n, c, h*w)
	return out
}

// normalizeFrozen writes γ·(x−μ̂)/σ̂+β per channel using the running
// statistics; shared by eval Forward and Infer, and read-only on bn.
func (bn *BatchNorm2D) normalizeFrozen(x, out *tensor.Tensor, n, c, plane int) {
	for ch := 0; ch < c; ch++ {
		mean := bn.RunningMean.Data[ch]
		variance := bn.RunningVar.Data[ch]
		inv := float32(1 / math.Sqrt(float64(variance)+float64(bn.Eps)))
		g, b := bn.Gamma.Value.Data[ch], bn.Beta.Value.Data[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				xh := (x.Data[base+p] - mean) * inv
				out.Data[base+p] = g*xh + b
			}
		}
	}
}

// checkIn validates the input and returns its dimensions.
func (bn *BatchNorm2D) checkIn(x *tensor.Tensor) (n, c, h, w int) {
	checkRank("BatchNorm2D", x, 4)
	n, c, h, w = x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.Gamma.Value.Len() {
		panic(fmt.Sprintf("nn.BatchNorm2D: %d channels, layer has %d", c, bn.Gamma.Value.Len()))
	}
	return n, c, h, w
}

// Backward implements the standard batch-norm gradient:
// dx = (γ/σ)·(dy − mean(dy) − x̂·mean(dy·x̂)), per channel, with the means
// taken over the normalization axes. It also accumulates dγ and dβ.
func (bn *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if bn.xhat == nil {
		panic("nn.BatchNorm2D: Backward called before Forward")
	}
	n, c, h, w := bn.lastShape[0], bn.lastShape[1], bn.lastShape[2], bn.lastShape[3]
	plane := h * w
	count := float32(n * plane)
	dx := tensor.New(n, c, h, w)
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dy := float64(dout.Data[base+p])
				sumDy += dy
				sumDyXhat += dy * float64(bn.xhat.Data[base+p])
			}
		}
		bn.Beta.Grad.Data[ch] += float32(sumDy)
		bn.Gamma.Grad.Data[ch] += float32(sumDyXhat)

		meanDy := float32(sumDy) / count
		meanDyXhat := float32(sumDyXhat) / count
		scale := bn.Gamma.Value.Data[ch] * bn.invStd[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dx.Data[base+p] = scale * (dout.Data[base+p] - meanDy - bn.xhat.Data[base+p]*meanDyXhat)
			}
		}
	}
	return dx
}

// StatsFingerprint folds the running statistics' bit patterns into one
// 64-bit FNV-1a value — the running-stat analogue of Param.Version the
// frozen-graph compiler keys its BN folds on. A content hash rather
// than a mutation counter, so EVERY way the stats can change — training
// Forward passes, checkpoint restores through StateParams (which write
// the tensors directly), hand edits — invalidates the fold; no caller
// cooperation required.
func (bn *BatchNorm2D) StatsFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range bn.RunningMean.Data {
		h = (h ^ uint64(math.Float32bits(v))) * prime64
	}
	for _, v := range bn.RunningVar.Data {
		h = (h ^ uint64(math.Float32bits(v))) * prime64
	}
	return h
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// State exposes the running statistics for checkpointing (they are not
// parameters, but inference depends on them).
func (bn *BatchNorm2D) State() []*tensor.Tensor {
	return []*tensor.Tensor{bn.RunningMean, bn.RunningVar}
}
