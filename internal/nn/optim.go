package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer advances parameters using their accumulated gradients.
// Implementations skip frozen parameters and clear nothing; callers
// control ZeroGrads placement.
type Optimizer interface {
	// Step applies one update to every unfrozen parameter.
	Step(params []*Param)
	// SetLR changes the learning rate (driven by a Scheduler).
	SetLR(lr float32)
	// LR returns the current learning rate.
	LR() float32
}

// SGD is stochastic gradient descent with classical momentum and L2
// weight decay folded into the gradient.
type SGD struct {
	lr       float32
	Momentum float32
	Decay    float32
	velocity map[*Param]*tensor.Tensor
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum, decay float32) *SGD {
	return &SGD{lr: lr, Momentum: momentum, Decay: decay, velocity: map[*Param]*tensor.Tensor{}}
}

// Step applies v ← µv − lr·(g + λw); w ← w + v.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			continue
		}
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			o.velocity[p] = v
		}
		decay := o.Decay
		if p.NoDecay {
			decay = 0
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + decay*p.Value.Data[i]
			v.Data[i] = o.Momentum*v.Data[i] - o.lr*g
			p.Value.Data[i] += v.Data[i]
		}
		p.BumpVersion()
	}
}

// SetLR sets the learning rate.
func (o *SGD) SetLR(lr float32) { o.lr = lr }

// LR returns the learning rate.
func (o *SGD) LR() float32 { return o.lr }

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter, the
// paper's optimizer, "with default settings"): β₁=0.9, β₂=0.999, ε=1e−8.
type AdamW struct {
	lr, Beta1, Beta2, Eps, Decay float32
	t                            int
	m, v                         map[*Param]*tensor.Tensor
}

// NewAdamW builds an AdamW optimizer with the standard defaults.
func NewAdamW(lr, decay float32) *AdamW {
	return &AdamW{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Decay: decay,
		m: map[*Param]*tensor.Tensor{}, v: map[*Param]*tensor.Tensor{},
	}
}

// Step applies one AdamW update with bias correction; weight decay is
// applied directly to the weights (decoupled), skipping NoDecay params.
func (o *AdamW) Step(params []*Param) {
	o.t++
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.t)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.t)))
	for _, p := range params {
		if p.Frozen {
			continue
		}
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			o.m[p] = m
			o.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := o.v[p]
		decay := o.Decay
		if p.NoDecay {
			decay = 0
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.Value.Data[i] -= o.lr * (mhat/(float32(math.Sqrt(float64(vhat)))+o.Eps) + decay*p.Value.Data[i])
		}
		p.BumpVersion()
	}
}

// SetLR sets the learning rate.
func (o *AdamW) SetLR(lr float32) { o.lr = lr }

// LR returns the learning rate.
func (o *AdamW) LR() float32 { return o.lr }

// CosineAnnealingLR implements the cosine-annealing schedule of SGDR
// (without restarts), the paper's scheduler:
//
//	lr(t) = lrMin + ½(lrMax − lrMin)(1 + cos(π·t/T))
type CosineAnnealingLR struct {
	LRMax, LRMin float32
	T            int
}

// NewCosineAnnealingLR builds the schedule over T steps from lrMax down
// to lrMin.
func NewCosineAnnealingLR(lrMax, lrMin float32, totalSteps int) *CosineAnnealingLR {
	if totalSteps <= 0 {
		panic("nn.NewCosineAnnealingLR: totalSteps must be positive")
	}
	return &CosineAnnealingLR{LRMax: lrMax, LRMin: lrMin, T: totalSteps}
}

// At returns the learning rate for step t (clamped to [0, T]).
func (s *CosineAnnealingLR) At(t int) float32 {
	if t < 0 {
		t = 0
	}
	if t > s.T {
		t = s.T
	}
	frac := float64(t) / float64(s.T)
	return s.LRMin + 0.5*(s.LRMax-s.LRMin)*float32(1+math.Cos(math.Pi*frac))
}

// Apply sets the optimizer's learning rate for step t.
func (s *CosineAnnealingLR) Apply(o Optimizer, t int) { o.SetLR(s.At(t)) }

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm; returns the pre-clip norm. A standard guard for the
// small-batch training runs the reproduction uses.
func ClipGradNorm(params []*Param, maxNorm float32) float32 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += float64(g) * float64(g)
		}
	}
	norm := float32(math.Sqrt(total))
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return norm
}
