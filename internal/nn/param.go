// Package nn is a from-scratch neural-network stack: layers with manual
// backpropagation (convolution, batch normalization, pooling, linear),
// a residual-network builder mirroring the ResNet50/ResNet101 topologies
// the paper uses as image encoders, loss functions (softmax cross entropy,
// the weighted binary cross entropy of §III-A, MSE), optimizers (SGD with
// momentum, AdamW with decoupled weight decay) and the cosine-annealing
// learning-rate schedule of the paper's training recipe.
//
// Conventions: image activations are NCHW [N, C, H, W]; feature matrices
// are [N, d]; all compute is float32; every source of randomness is an
// explicit *rand.Rand.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter: a value tensor and its accumulated
// gradient. Optimizers consume the gradient and reset it via ZeroGrad.
type Param struct {
	// Name identifies the parameter in diagnostics and checkpoints.
	Name string
	// Value is the current parameter tensor.
	Value *tensor.Tensor
	// Grad accumulates ∂loss/∂Value; same shape as Value.
	Grad *tensor.Tensor
	// NoDecay exempts the parameter from weight decay (biases and
	// normalization affine parameters, following AdamW practice).
	NoDecay bool
	// Frozen parameters are skipped by optimizers; used in phase III where
	// the backbone stays stationary while the projection FC trains.
	Frozen bool
	// version counts value mutations; layers that cache derived forms of
	// the value (Linear's packed weight panel) compare it to invalidate.
	version uint64
}

// Version returns the mutation counter of the parameter value. Layers
// caching derived forms of Value (e.g. Linear's pre-packed weight panel)
// rebuild when it changes.
func (p *Param) Version() uint64 { return p.version }

// BumpVersion records a mutation of Value. The optimizers and checkpoint
// loader call it; any other code that writes Value (or replaces the
// tensor wholesale) must too, or stale derived caches will be served.
func (p *Param) BumpVersion() { p.version++ }

// NewParam allocates a parameter wrapping value with a zero gradient.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Count returns the number of scalar parameters.
func (p *Param) Count() int { return p.Value.Len() }

// Layer is the unit of composition: a differentiable module with manual
// forward and backward passes.
//
// Forward consumes the input and returns the output; train selects
// training behaviour (batch-norm batch statistics, dropout). Backward
// consumes ∂loss/∂output and returns ∂loss/∂input, accumulating parameter
// gradients into Params() along the way. Backward must be called after
// the Forward whose activations it differentiates.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Stateful is implemented by layers that carry non-parameter state which
// must survive checkpointing — batch-norm running statistics being the
// canonical example. State returns the tensors in a deterministic order.
type Stateful interface {
	State() []*tensor.Tensor
}

// Sequential chains layers; it implements Layer itself.
type Sequential struct {
	Layers []Layer
}

// State aggregates the state tensors of all Stateful children in layer
// order, so Sequential itself satisfies Stateful.
func (s *Sequential) State() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range s.Layers {
		if st, ok := l.(Stateful); ok {
			out = append(out, st.State()...)
		}
	}
	return out
}

// NewSequential builds a sequential container from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Append adds more layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// Forward runs the layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the layers in reverse order.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// CountParams returns the total number of scalar parameters in ps,
// the quantity Fig. 4's x-axis plots.
func CountParams(ps []*Param) int {
	var n int
	for _, p := range ps {
		n += p.Count()
	}
	return n
}

// ZeroGrads clears the gradients of all parameters.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// SetFrozen marks all parameters in ps as frozen (or unfrozen); frozen
// parameters are skipped by optimizers.
func SetFrozen(ps []*Param, frozen bool) {
	for _, p := range ps {
		p.Frozen = frozen
	}
}

// checkRank panics with a layer-specific message when x does not have the
// expected rank; shared by the layer implementations.
func checkRank(layer string, x *tensor.Tensor, rank int) {
	if x.Rank() != rank {
		panic(fmt.Sprintf("nn.%s: want rank-%d input, have shape %v", layer, rank, x.Shape()))
	}
}
