package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D is a max pooling layer over NCHW activations with a square
// window and equal stride (the ResNet stem uses kernel 2/3, stride 2).
type MaxPool2D struct {
	Kernel, Stride int
	argmax         []int // flat input index chosen for each output element
	inShape        []int
}

// NewMaxPool2D builds a max-pool layer.
func NewMaxPool2D(kernel, stride int) *MaxPool2D {
	if kernel <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn.MaxPool2D: bad geometry kernel=%d stride=%d", kernel, stride))
	}
	return &MaxPool2D{Kernel: kernel, Stride: stride}
}

// Forward pools x [N,C,H,W] to [N,C,H',W'], recording argmax positions
// for Backward only in training mode (eval retains nothing).
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(m.outShape(x)...)
	if train {
		m.inShape = x.Shape()
		m.argmax = make([]int, out.Len())
	} else {
		m.inShape, m.argmax = nil, nil
	}
	m.poolInto(out, x, m.argmax)
	return out
}

// Infer pools without touching layer state. The output dims are passed
// as scalars so a warm scratch allocates nothing.
func (m *MaxPool2D) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	n, c, oh, ow := m.outDims(x)
	out := s.Alloc(n, c, oh, ow)
	m.poolInto(out, x, nil)
	return out
}

// outDims validates the input and returns the pooled output dimensions.
func (m *MaxPool2D) outDims(x *tensor.Tensor) (n, c, oh, ow int) {
	checkRank("MaxPool2D", x, 4)
	h, w := x.Dim(2), x.Dim(3)
	oh = (h-m.Kernel)/m.Stride + 1
	ow = (w-m.Kernel)/m.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn.MaxPool2D: input %dx%d too small for kernel %d stride %d",
			h, w, m.Kernel, m.Stride))
	}
	return x.Dim(0), x.Dim(1), oh, ow
}

// outShape validates the input and returns the pooled output shape.
func (m *MaxPool2D) outShape(x *tensor.Tensor) []int {
	n, c, oh, ow := m.outDims(x)
	return []int{n, c, oh, ow}
}

// poolInto writes the pooled maxima into out; when argmax is non-nil it
// also records the winning input index per output element.
func (m *MaxPool2D) poolInto(out, x *tensor.Tensor, argmax []int) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := out.Dim(2), out.Dim(3)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (oy*m.Stride)*w + ox*m.Stride
					best := x.Data[bestIdx]
					for ky := 0; ky < m.Kernel; ky++ {
						rowIdx := base + (oy*m.Stride+ky)*w + ox*m.Stride
						for kx := 0; kx < m.Kernel; kx++ {
							if v := x.Data[rowIdx+kx]; v > best {
								best, bestIdx = v, rowIdx+kx
							}
						}
					}
					out.Data[oi] = best
					if argmax != nil {
						argmax[oi] = bestIdx
					}
					oi++
				}
			}
		}
	}
}

// Backward routes each output gradient to the input position that won the
// forward max.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if m.argmax == nil {
		panic("nn.MaxPool2D: Backward called before Forward")
	}
	dx := tensor.New(m.inShape...)
	for oi, src := range m.argmax {
		dx.Data[src] += dout.Data[oi]
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages each channel plane to a single value, producing
// [N, C] from [N, C, H, W]. It is the final spatial reduction of the
// ResNet image encoder before the FC projection.
type GlobalAvgPool struct {
	inShape []int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over the spatial axes, recording the input shape for
// Backward only in training mode.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank("GlobalAvgPool", x, 4)
	if train {
		g.inShape = x.Shape()
	} else {
		g.inShape = nil
	}
	out := tensor.New(x.Dim(0), x.Dim(1))
	avgPoolInto(out, x)
	return out
}

// Infer averages over the spatial axes without touching layer state.
func (g *GlobalAvgPool) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank("GlobalAvgPool", x, 4)
	out := s.Alloc(x.Dim(0), x.Dim(1))
	avgPoolInto(out, x)
	return out
}

// avgPoolInto writes the per-channel spatial means into out [N, C].
func avgPoolInto(out, x *tensor.Tensor) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			var s float64
			for p := 0; p < plane; p++ {
				s += float64(x.Data[base+p])
			}
			out.Data[i*c+ch] = float32(s / float64(plane))
		}
	}
}

// Backward spreads each channel gradient uniformly over the plane.
func (g *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if g.inShape == nil {
		panic("nn.GlobalAvgPool: Backward called before Forward")
	}
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	plane := h * w
	inv := 1 / float32(plane)
	dx := tensor.New(n, c, h, w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			gv := dout.Data[i*c+ch] * inv
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dx.Data[base+p] = gv
			}
		}
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }
