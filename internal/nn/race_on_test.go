//go:build race

package nn

// raceEnabled reports that the race detector is instrumenting this
// build; the zero-alloc guards skip, since instrumentation itself
// allocates.
const raceEnabled = true
