package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// ResNetConfig describes a residual image-encoder backbone: a stem
// convolution followed by four stages of residual blocks and a global
// average pool, the topology of the paper's ResNet50/ResNet101 image
// encoders. Width is configurable so the same topology runs at laptop
// scale; the presets keep the paper's stage-depth ratios.
type ResNetConfig struct {
	// Name labels the variant in reports ("ResNet50", "ResNet101", …).
	Name string
	// StageDepths gives the number of residual blocks in each of the four
	// stages: ResNet50 uses {3,4,6,3}, ResNet101 {3,4,23,3}.
	StageDepths [4]int
	// BaseWidth is the channel count of stage 1; stages double it.
	BaseWidth int
	// Bottleneck selects 1×1→3×3→1×1 bottleneck blocks (expansion 4, the
	// ResNet50/101 block) instead of two-3×3 basic blocks.
	Bottleneck bool
	// InChannels is the image channel count (3 for RGB).
	InChannels int
	// FlattenPool replaces the final global average pool with a flatten of
	// the stage-4 feature map. At the reproduction's small image sizes the
	// attribute groups occupy individual grid cells, and averaging over
	// space would discard the position information needed to tell "blue
	// crown" from "blue wing"; flattening preserves it. FlattenH/W give
	// the expected stage-4 spatial size (input H/8 × W/8 with the stem at
	// stride 1 and three stride-2 stage transitions).
	FlattenPool          bool
	FlattenH, FlattenW   int
}

// expansion returns the block output-channel multiplier.
func (c ResNetConfig) expansion() int {
	if c.Bottleneck {
		return 4
	}
	return 1
}

// OutDim returns the embedding dimension d' produced after the final
// spatial reduction (global average pool, or flatten when FlattenPool is
// set).
func (c ResNetConfig) OutDim() int {
	channels := c.BaseWidth * 8 * c.expansion()
	if c.FlattenPool {
		return channels * c.FlattenH * c.FlattenW
	}
	return channels
}

// ResNet50Config returns the paper's preferred backbone topology at the
// given base width (the authors' full-scale model corresponds to width 64).
func ResNet50Config(baseWidth int) ResNetConfig {
	return ResNetConfig{
		Name: "ResNet50", StageDepths: [4]int{3, 4, 6, 3},
		BaseWidth: baseWidth, Bottleneck: true, InChannels: 3,
	}
}

// ResNet101Config returns the deeper ablation backbone of Table II.
func ResNet101Config(baseWidth int) ResNetConfig {
	return ResNetConfig{
		Name: "ResNet101", StageDepths: [4]int{3, 4, 23, 3},
		BaseWidth: baseWidth, Bottleneck: true, InChannels: 3,
	}
}

// MicroResNet50Config returns a laptop-scale stand-in that keeps the
// bottleneck topology and relative depth profile of ResNet50 with one
// block per stage; it is the default experiment backbone (see DESIGN.md
// substitution table).
func MicroResNet50Config(baseWidth int) ResNetConfig {
	return ResNetConfig{
		Name: "ResNet50", StageDepths: [4]int{1, 1, 1, 1},
		BaseWidth: baseWidth, Bottleneck: true, InChannels: 3,
	}
}

// MicroResNet101Config returns the deeper micro variant used for the
// Table II ResNet101 row: same width, ~2× the blocks of MicroResNet50,
// echoing the 50→101 depth growth.
func MicroResNet101Config(baseWidth int) ResNetConfig {
	return ResNetConfig{
		Name: "ResNet101", StageDepths: [4]int{1, 2, 3, 1},
		BaseWidth: baseWidth, Bottleneck: true, InChannels: 3,
	}
}

// WithFlatten returns a copy of the config using a position-preserving
// flatten over the stage-4 feature map of an inputH×inputW image instead
// of global average pooling.
func (c ResNetConfig) WithFlatten(inputH, inputW int) ResNetConfig {
	c.FlattenPool = true
	// Each stride-2 stage transition (3×3 conv, pad 1) maps h → ceil(h/2);
	// three transitions give ceil(h/8).
	c.FlattenH = (inputH + 7) / 8
	c.FlattenW = (inputW + 7) / 8
	return c
}

// residualBlock is one basic or bottleneck residual unit with an optional
// projection shortcut, implementing Layer.
type residualBlock struct {
	main     *Sequential
	shortcut *Sequential // nil for identity
	relu     *ReLU
}

func newResidualBlock(rng *rand.Rand, name string, inC, width, stride int, bottleneck bool) *residualBlock {
	outC := width
	var main *Sequential
	if bottleneck {
		outC = width * 4
		main = NewSequential(
			NewConv2D(rng, name+".conv1", inC, width, 1, 1, 0, false),
			NewBatchNorm2D(name+".bn1", width),
			NewReLU(),
			NewConv2D(rng, name+".conv2", width, width, 3, stride, 1, false),
			NewBatchNorm2D(name+".bn2", width),
			NewReLU(),
			NewConv2D(rng, name+".conv3", width, outC, 1, 1, 0, false),
			NewBatchNorm2D(name+".bn3", outC),
		)
	} else {
		main = NewSequential(
			NewConv2D(rng, name+".conv1", inC, width, 3, stride, 1, false),
			NewBatchNorm2D(name+".bn1", width),
			NewReLU(),
			NewConv2D(rng, name+".conv2", width, outC, 3, 1, 1, false),
			NewBatchNorm2D(name+".bn2", outC),
		)
	}
	b := &residualBlock{main: main, relu: NewReLU()}
	if stride != 1 || inC != outC {
		b.shortcut = NewSequential(
			NewConv2D(rng, name+".down", inC, outC, 1, stride, 0, false),
			NewBatchNorm2D(name+".downbn", outC),
		)
	}
	return b
}

// Forward computes relu(main(x) + shortcut(x)).
func (b *residualBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := b.main.Forward(x, train)
	var sc *tensor.Tensor
	if b.shortcut != nil {
		sc = b.shortcut.Forward(x, train)
	} else {
		sc = x
	}
	return b.relu.Forward(tensor.Add(y, sc), train)
}

// Infer computes relu(main(x) + shortcut(x)) without touching block
// state, fusing the residual add with the activation. The fused
// elementwise pass is bitwise identical to Add-then-ReLU.
func (b *residualBlock) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	y := b.main.Infer(x, s)
	sc := x
	if b.shortcut != nil {
		sc = b.shortcut.Infer(x, s)
	}
	out := s.AllocLike(y)
	for i, v := range y.Data {
		if v += sc.Data[i]; v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward splits the gradient between the main branch and the shortcut
// and sums the two input gradients.
func (b *residualBlock) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dsum := b.relu.Backward(dout)
	dxMain := b.main.Backward(dsum)
	var dxShort *tensor.Tensor
	if b.shortcut != nil {
		dxShort = b.shortcut.Backward(dsum)
	} else {
		dxShort = dsum
	}
	return tensor.Add(dxMain, dxShort)
}

// Params returns the block's trainable parameters.
func (b *residualBlock) Params() []*Param {
	ps := b.main.Params()
	if b.shortcut != nil {
		ps = append(ps, b.shortcut.Params()...)
	}
	return ps
}

// ResNet is a residual backbone producing [N, OutDim] embeddings from
// NCHW images; it implements Layer.
type ResNet struct {
	Config ResNetConfig
	body   *Sequential
}

// NewResNet builds the backbone from cfg with weights drawn from rng.
func NewResNet(rng *rand.Rand, cfg ResNetConfig) *ResNet {
	if cfg.BaseWidth <= 0 || cfg.InChannels <= 0 {
		panic(fmt.Sprintf("nn.NewResNet: bad config %+v", cfg))
	}
	body := NewSequential(
		NewConv2D(rng, cfg.Name+".stem", cfg.InChannels, cfg.BaseWidth, 3, 1, 1, false),
		NewBatchNorm2D(cfg.Name+".stembn", cfg.BaseWidth),
		NewReLU(),
	)
	inC := cfg.BaseWidth
	for stage := 0; stage < 4; stage++ {
		width := cfg.BaseWidth << uint(stage)
		for blk := 0; blk < cfg.StageDepths[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2 // downsample at each stage boundary
			}
			name := fmt.Sprintf("%s.s%d.b%d", cfg.Name, stage+1, blk)
			b := newResidualBlock(rng, name, inC, width, stride, cfg.Bottleneck)
			body.Append(b)
			inC = width * cfg.expansion()
		}
	}
	if cfg.FlattenPool {
		if cfg.FlattenH <= 0 || cfg.FlattenW <= 0 {
			panic(fmt.Sprintf("nn.NewResNet: FlattenPool requires FlattenH/W, got %dx%d",
				cfg.FlattenH, cfg.FlattenW))
		}
		body.Append(NewFlatten())
	} else {
		body.Append(NewGlobalAvgPool())
	}
	return &ResNet{Config: cfg, body: body}
}

// Forward maps images [N, C, H, W] to embeddings [N, OutDim].
func (r *ResNet) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return r.body.Forward(x, train)
}

// Infer maps images to embeddings without touching backbone state: the
// shared-read path any number of goroutines may run concurrently on one
// frozen backbone, each with its own Scratch.
func (r *ResNet) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	return r.body.Infer(x, s)
}

// Backward propagates the embedding gradient back to the image gradient.
func (r *ResNet) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return r.body.Backward(dout)
}

// Params returns all backbone parameters.
func (r *ResNet) Params() []*Param { return r.body.Params() }

// OutDim returns the embedding dimension d'.
func (r *ResNet) OutDim() int { return r.Config.OutDim() }

// State aggregates the residual block's batch-norm running statistics.
func (b *residualBlock) State() []*tensor.Tensor {
	out := b.main.State()
	if b.shortcut != nil {
		out = append(out, b.shortcut.State()...)
	}
	return out
}

// State exposes every batch-norm running statistic of the backbone for
// checkpointing.
func (r *ResNet) State() []*tensor.Tensor { return r.body.State() }
