package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/tensor"
)

// Checkpoint serialization: a minimal, dependency-free binary format for
// parameter sets, so matured phase-I/II weights can be saved and the ZSC
// fine-tuning resumed later (the deployment flow of Fig. 2 → Fig. 3).
//
// Format: magic "HDCZSC01", uint32 parameter count, then per parameter:
// uint32 name length, name bytes, uint32 rank, uint32 dims…, float32
// data (little endian). Loading matches parameters by name and shape.

const checkpointMagic = "HDCZSC01"

// SaveParams writes the parameter values to w.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.Value.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads a checkpoint from r into params, matching by name.
// Every parameter in params must be present in the checkpoint with an
// identical shape; extra checkpoint entries are an error too, so a
// mismatched architecture fails loudly rather than half-loading.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn.LoadParams: reading magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("nn.LoadParams: bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	byName := make(map[string]*Param, len(params))
	for _, p := range params {
		if _, dup := byName[p.Name]; dup {
			return fmt.Errorf("nn.LoadParams: duplicate parameter name %q in target", p.Name)
		}
		byName[p.Name] = p
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn.LoadParams: checkpoint has %d params, target has %d", count, len(params))
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		p, ok := byName[string(name)]
		if !ok {
			return fmt.Errorf("nn.LoadParams: checkpoint parameter %q not in target", name)
		}
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return err
		}
		shape := make([]int, rank)
		n := 1
		for j := range shape {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return err
			}
			shape[j] = int(d)
			n *= int(d)
		}
		want := p.Value.Shape()
		if len(want) != len(shape) {
			return fmt.Errorf("nn.LoadParams: %q rank mismatch %v vs %v", name, shape, want)
		}
		for j := range shape {
			if shape[j] != want[j] {
				return fmt.Errorf("nn.LoadParams: %q shape mismatch %v vs %v", name, shape, want)
			}
		}
		for j := 0; j < n; j++ {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return err
			}
			p.Value.Data[j] = math.Float32frombits(bits)
		}
		p.BumpVersion() // invalidate derived caches (packed weight panels)
	}
	return nil
}

// SaveParamsFile writes a checkpoint to path.
func SaveParamsFile(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveParams(f, params); err != nil {
		return err
	}
	return f.Close()
}

// LoadParamsFile reads a checkpoint from path.
func LoadParamsFile(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, params)
}

// StateParams wraps non-parameter state tensors (batch-norm running
// statistics) as synthetic frozen parameters named "state.NNNN" so they
// ride the same checkpoint format. Both saver and loader must enumerate
// the state in the same deterministic order (Stateful guarantees it).
func StateParams(state []*tensor.Tensor) []*Param {
	out := make([]*Param, len(state))
	for i, s := range state {
		out[i] = &Param{
			Name:   fmt.Sprintf("state.%04d", i),
			Value:  s,
			Frozen: true,
		}
	}
	return out
}
