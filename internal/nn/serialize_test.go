package nn

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewSequential(
		NewLinear(rng, "fc1", 4, 6, true),
		NewReLU(),
		NewLinear(rng, "fc2", 6, 3, true),
	)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatalf("save: %v", err)
	}
	// A freshly initialized twin with the same names/shapes.
	rng2 := rand.New(rand.NewSource(99))
	dst := NewSequential(
		NewLinear(rng2, "fc1", 4, 6, true),
		NewReLU(),
		NewLinear(rng2, "fc2", 6, 3, true),
	)
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatalf("load: %v", err)
	}
	for i, p := range src.Params() {
		q := dst.Params()[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != q.Value.Data[j] {
				t.Fatalf("param %s diverges after round trip", p.Name)
			}
		}
	}
	// Behavioural check: identical outputs.
	x := tensor.Randn(rng, 1, 2, 4)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded model computes different outputs")
		}
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewLinear(rng, "fc", 4, 4, false)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewLinear(rng, "fc", 4, 5, false) // wrong shape
	if err := LoadParams(&buf, dst.Params()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestLoadRejectsUnknownParameter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := NewLinear(rng, "other", 2, 2, false)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewLinear(rng, "fc", 2, 2, false)
	if err := LoadParams(&buf, dst.Params()); err == nil {
		t.Fatal("unknown parameter name accepted")
	}
}

func TestLoadRejectsCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := NewLinear(rng, "fc", 2, 2, true) // W and b
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewLinear(rng, "fc", 2, 2, false) // only W
	if err := LoadParams(&buf, dst.Params()); err == nil {
		t.Fatal("parameter count mismatch accepted")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dst := NewLinear(rng, "fc", 2, 2, false)
	if err := LoadParams(bytes.NewBufferString("NOTAMAGIC..."), dst.Params()); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := NewLinear(rng, "fc", 3, 3, true)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := SaveParamsFile(path, src.Params()); err != nil {
		t.Fatalf("save file: %v", err)
	}
	dst := NewLinear(rand.New(rand.NewSource(7)), "fc", 3, 3, true)
	if err := LoadParamsFile(path, dst.Params()); err != nil {
		t.Fatalf("load file: %v", err)
	}
	if dst.W.Value.Data[0] != src.W.Value.Data[0] {
		t.Fatal("file round trip lost data")
	}
}
