// Package quant provides the digital edge-inference path of the paper's
// §V outlook: symmetric int8 post-training quantization of the trained
// FC projection so that the full deployed model — int8 projection, 1-bit
// attribute codebooks, XOR/popcount or integer similarity — fits the
// memory and arithmetic budget of an always-on accelerator [38].
//
// Quantization is symmetric PER CHANNEL: each output channel ch gets
// its own scale s_ch = max|w_ch|/qmax and q = round(w/s_ch) clamped to
// [−qmax, qmax], so one outlier channel no longer wastes the integer
// range of every other. The quantized matmul accumulates in int32 and
// dequantizes once per output, the standard integer-inference kernel.
//
// QuantizeChannels is the one quantization core in the repository: the
// standalone quant.Linear uses it at qmax = 127, and the compiled int8
// inference plans (nn.CompileQuantized) use it at qmax =
// tensor.Gemm8WMax, the reduced range the AVX2 VPMADDUBSW kernel needs
// for saturation-free exact accumulation.
package quant

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// QuantizeChannels quantizes w per channel with symmetric scales:
// channel ch occupies the elements w[ch·chStride + j·elemStride] for
// j in [0, count), and gets scales[ch] = max_j|w|/qmax (1 if the
// channel is all zero) with q = round(w/scale) clamped to [−qmax,
// qmax]. q and scales are written at the same strides/indices. This is
// the shared quantization core of the standalone int8 projection
// (per-column channels, qmax 127) and the compiled int8 plans
// (per-row channels, qmax tensor.Gemm8WMax).
func QuantizeChannels(q []int8, scales []float32, w []float32, channels, count, chStride, elemStride, qmax int) {
	if qmax <= 0 || qmax > 127 {
		panic(fmt.Sprintf("quant.QuantizeChannels: qmax %d outside (0, 127]", qmax))
	}
	for ch := 0; ch < channels; ch++ {
		base := ch * chStride
		var maxAbs float32
		for j := 0; j < count; j++ {
			v := w[base+j*elemStride]
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		s := maxAbs / float32(qmax)
		scales[ch] = s
		for j := 0; j < count; j++ {
			r := math.Round(float64(w[base+j*elemStride] / s))
			if r > float64(qmax) {
				r = float64(qmax)
			}
			if r < -float64(qmax) {
				r = -float64(qmax)
			}
			q[base+j*elemStride] = int8(r)
		}
	}
}

// QuantizeRows quantizes a row-major matrix with one symmetric scale
// per row — the form the inference-graph compiler feeds folded conv
// weight matrices [outC, K] and transposed projection weights through.
func QuantizeRows(q []int8, scales []float32, w []float32, rows, cols, qmax int) {
	QuantizeChannels(q, scales, w, rows, cols, cols, 1, qmax)
}

// Linear is an int8-quantized, inference-only fully connected layer.
type Linear struct {
	// W holds the quantized weights [in, out] as int8.
	W []int8
	// Bias is kept in float32 (its storage is negligible and integer bias
	// requires the input scale, which varies per batch).
	Bias []float32
	// Scales holds one weight dequantization scale per output channel
	// (column of W).
	Scales  []float32
	in, out int
}

// QuantizeLinear converts trained linear-layer weights w [in, out]
// (plus an optional bias, copied) into the int8 twin with per-channel
// symmetric scales.
func QuantizeLinear(w *tensor.Tensor, bias []float32) *Linear {
	if w.Rank() != 2 {
		panic(fmt.Sprintf("quant.QuantizeLinear: want rank-2 weights, have %v", w.Shape()))
	}
	in, out := w.Dim(0), w.Dim(1)
	q := &Linear{W: make([]int8, in*out), Scales: make([]float32, out), in: in, out: out}
	// Output channel ch is column ch of the [in, out] matrix.
	QuantizeChannels(q.W, q.Scales, w.Data, out, in, 1, out, 127)
	if bias != nil {
		q.Bias = append([]float32(nil), bias...)
	}
	return q
}

// Forward computes x·Wq (+ b) for x [N, in], quantizing the activations
// per row to int8 and accumulating in int32.
func (q *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != q.in {
		panic(fmt.Sprintf("quant.Linear: input %v incompatible with [%d,%d]", x.Shape(), q.in, q.out))
	}
	n := x.Dim(0)
	out := tensor.New(n, q.out)
	xq := make([]int8, q.in)
	for r := 0; r < n; r++ {
		row := x.Row(r)
		// Per-row activation scale.
		var maxAbs float32
		for _, v := range row {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		xs := maxAbs / 127
		for i, v := range row {
			rq := math.Round(float64(v / xs))
			if rq > 127 {
				rq = 127
			}
			if rq < -127 {
				rq = -127
			}
			xq[i] = int8(rq)
		}
		or := out.Row(r)
		for c := 0; c < q.out; c++ {
			var acc int32
			for i := 0; i < q.in; i++ {
				acc += int32(xq[i]) * int32(q.W[i*q.out+c])
			}
			or[c] = float32(acc) * (xs * q.Scales[c])
			if q.Bias != nil {
				or[c] += q.Bias[c]
			}
		}
	}
	return out
}

// Bytes returns the storage footprint of the quantized layer.
func (q *Linear) Bytes() int { return len(q.W) + 4*len(q.Bias) + 4*len(q.Scales) }

// MaxAbsError returns the maximum elementwise deviation between the
// quantized layer's output on x and the float reference output ref,
// for accuracy-budget validation.
func (q *Linear) MaxAbsError(ref, x *tensor.Tensor) float32 {
	a := q.Forward(x)
	var worst float32
	for i := range a.Data {
		if d := float32(math.Abs(float64(a.Data[i] - ref.Data[i]))); d > worst {
			worst = d
		}
	}
	return worst
}
