// Package quant provides the digital edge-inference path of the paper's
// §V outlook: symmetric int8 post-training quantization of the trained
// FC projection so that the full deployed model — int8 projection, 1-bit
// attribute codebooks, XOR/popcount or integer similarity — fits the
// memory and arithmetic budget of an always-on accelerator [38].
//
// Quantization is symmetric per-tensor: q = round(w/s) clamped to
// [−127, 127] with s = max|w|/127. The quantized matmul accumulates in
// int32 and dequantizes once per output, the standard integer-inference
// kernel.
package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Linear is an int8-quantized, inference-only fully connected layer.
type Linear struct {
	// W holds the quantized weights [in, out] as int8.
	W []int8
	// Bias is kept in float32 (its storage is negligible and integer bias
	// requires the input scale, which varies per batch).
	Bias []float32
	// Scale is the weight dequantization scale.
	Scale float32
	in, out int
}

// QuantizeLinear converts a trained nn.Linear into its int8 twin.
func QuantizeLinear(l *nn.Linear) *Linear {
	w := l.W.Value
	in, out := w.Dim(0), w.Dim(1)
	mn, mx := w.MinMax()
	maxAbs := float32(math.Max(math.Abs(float64(mn)), math.Abs(float64(mx))))
	if maxAbs == 0 {
		maxAbs = 1
	}
	scale := maxAbs / 127
	q := &Linear{W: make([]int8, in*out), Scale: scale, in: in, out: out}
	for i, v := range w.Data {
		r := math.Round(float64(v / scale))
		if r > 127 {
			r = 127
		}
		if r < -127 {
			r = -127
		}
		q.W[i] = int8(r)
	}
	if l.B != nil {
		q.Bias = append([]float32(nil), l.B.Value.Data...)
	}
	return q
}

// Forward computes x·Wq (+ b) for x [N, in], quantizing the activations
// per row to int8 and accumulating in int32.
func (q *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != q.in {
		panic(fmt.Sprintf("quant.Linear: input %v incompatible with [%d,%d]", x.Shape(), q.in, q.out))
	}
	n := x.Dim(0)
	out := tensor.New(n, q.out)
	xq := make([]int8, q.in)
	for r := 0; r < n; r++ {
		row := x.Row(r)
		// Per-row activation scale.
		var maxAbs float32
		for _, v := range row {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		xs := maxAbs / 127
		for i, v := range row {
			rq := math.Round(float64(v / xs))
			if rq > 127 {
				rq = 127
			}
			if rq < -127 {
				rq = -127
			}
			xq[i] = int8(rq)
		}
		deq := xs * q.Scale
		or := out.Row(r)
		for c := 0; c < q.out; c++ {
			var acc int32
			for i := 0; i < q.in; i++ {
				acc += int32(xq[i]) * int32(q.W[i*q.out+c])
			}
			or[c] = float32(acc) * deq
			if q.Bias != nil {
				or[c] += q.Bias[c]
			}
		}
	}
	return out
}

// Bytes returns the storage footprint of the quantized layer.
func (q *Linear) Bytes() int { return len(q.W) + 4*len(q.Bias) + 4 }

// MaxAbsError returns the maximum elementwise output deviation between
// the quantized layer and its float reference over the given inputs,
// for accuracy-budget validation.
func (q *Linear) MaxAbsError(ref *nn.Linear, x *tensor.Tensor) float32 {
	a := q.Forward(x)
	b := ref.Forward(x, false)
	var worst float32
	for i := range a.Data {
		if d := float32(math.Abs(float64(a.Data[i] - b.Data[i]))); d > worst {
			worst = d
		}
	}
	return worst
}
