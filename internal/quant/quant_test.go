package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestQuantizedLinearTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLinear(rng, "fc", 64, 32, true)
	q := QuantizeLinear(l)
	x := tensor.Randn(rng, 1, 8, 64)
	ref := l.Forward(x, false)
	got := q.Forward(x)
	// Relative error budget: int8 symmetric quantization of weights and
	// activations bounds per-output error well under 2 % of the output
	// range for Gaussian data.
	_, mx := ref.MinMax()
	mn, _ := ref.MinMax()
	rangeRef := float64(mx - mn)
	for i := range ref.Data {
		if math.Abs(float64(got.Data[i]-ref.Data[i])) > 0.02*rangeRef {
			t.Fatalf("quantized output diverges at %d: %v vs %v", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestQuantizedStorageIsQuarter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := nn.NewLinear(rng, "fc", 128, 96, false)
	q := QuantizeLinear(l)
	floatBytes := 4 * 128 * 96
	if q.Bytes() >= floatBytes/3 {
		t.Fatalf("quantized layer %d B, float %d B — expected ≈4× smaller", q.Bytes(), floatBytes)
	}
}

func TestQuantizedWeightsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := nn.NewLinear(rng, "fc", 16, 16, false)
	// Inject an outlier to exercise clamping.
	l.W.Value.Data[0] = 100
	q := QuantizeLinear(l)
	for _, w := range q.W {
		if w < -127 || w > 127 {
			t.Fatalf("weight %d outside int8 symmetric range", w)
		}
	}
	if q.W[0] != 127 {
		t.Fatalf("outlier should quantize to 127, got %d", q.W[0])
	}
}

func TestQuantizedZeroInputSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := nn.NewLinear(rng, "fc", 8, 4, true)
	q := QuantizeLinear(l)
	out := q.Forward(tensor.New(2, 8))
	if out.HasNaN() {
		t.Fatal("zero input produced NaN")
	}
	// With zero input the output must equal the bias.
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			if out.At(r, c) != l.B.Value.Data[c] {
				t.Fatal("zero input should pass bias through")
			}
		}
	}
}

func TestQuantizedForwardPanicsOnBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := QuantizeLinear(nn.NewLinear(rng, "fc", 8, 4, false))
	defer func() {
		if recover() == nil {
			t.Fatal("bad input accepted")
		}
	}()
	q.Forward(tensor.New(2, 9))
}

// End-to-end: quantizing the ZSC projection preserves the argmax class
// ranking on cosine-similarity logits — the deployment claim.
func TestQuantizedProjectionPreservesRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	proj := nn.NewLinear(rng, "proj", 96, 48, true)
	q := QuantizeLinear(proj)
	feats := tensor.Randn(rng, 1, 20, 96)
	classes := tensor.Rademacher(rng, 10, 48)

	embF := proj.Forward(feats, false)
	embQ := q.Forward(feats)
	simF := tensor.CosineSimilarityMatrix(embF, classes)
	simQ := tensor.CosineSimilarityMatrix(embQ, classes)
	agree := 0
	for r := 0; r < 20; r++ {
		if tensor.ArgMaxRow(simF, r) == tensor.ArgMaxRow(simQ, r) {
			agree++
		}
	}
	if agree < 19 {
		t.Fatalf("quantization changed the predicted class for %d/20 queries", 20-agree)
	}
	if err := q.MaxAbsError(proj, feats); err > 0.5 {
		t.Fatalf("max abs error %v too large", err)
	}
}
