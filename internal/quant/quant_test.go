package quant_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// quantize converts a trained nn.Linear through the package API.
func quantize(l *nn.Linear) *quant.Linear {
	var bias []float32
	if l.B != nil {
		bias = l.B.Value.Data
	}
	return quant.QuantizeLinear(l.W.Value, bias)
}

func TestQuantizedLinearTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLinear(rng, "fc", 64, 32, true)
	q := quantize(l)
	x := tensor.Randn(rng, 1, 8, 64)
	ref := l.Forward(x, false)
	got := q.Forward(x)
	// Relative error budget: int8 symmetric quantization of weights and
	// activations bounds per-output error well under 2 % of the output
	// range for Gaussian data.
	mn, mx := ref.MinMax()
	rangeRef := float64(mx - mn)
	for i := range ref.Data {
		if math.Abs(float64(got.Data[i]-ref.Data[i])) > 0.02*rangeRef {
			t.Fatalf("quantized output diverges at %d: %v vs %v", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestQuantizedStorageIsQuarter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := nn.NewLinear(rng, "fc", 128, 96, false)
	q := quantize(l)
	floatBytes := 4 * 128 * 96
	if q.Bytes() >= floatBytes/3 {
		t.Fatalf("quantized layer %d B, float %d B — expected ≈4× smaller", q.Bytes(), floatBytes)
	}
}

func TestQuantizedWeightsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := nn.NewLinear(rng, "fc", 16, 16, false)
	// Inject an outlier to exercise clamping.
	l.W.Value.Data[0] = 100
	q := quantize(l)
	for _, w := range q.W {
		if w < -127 || w > 127 {
			t.Fatalf("weight %d outside int8 symmetric range", w)
		}
	}
	if q.W[0] != 127 {
		t.Fatalf("outlier should quantize to 127, got %d", q.W[0])
	}
}

// TestQuantizedScalesArePerChannel pins the per-channel upgrade: an
// outlier in one output channel must not coarsen any other channel's
// scale — with per-tensor scales the small channel would quantize to a
// handful of levels and drift.
func TestQuantizedScalesArePerChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := nn.NewLinear(rng, "fc", 32, 4, false)
	for i := 0; i < 32; i++ {
		l.W.Value.Data[i*4+0] *= 100 // channel 0 dominates
		l.W.Value.Data[i*4+1] *= 0.01
	}
	q := quantize(l)
	if len(q.Scales) != 4 {
		t.Fatalf("want 4 per-channel scales, have %d", len(q.Scales))
	}
	if q.Scales[0] <= q.Scales[1]*1000 {
		t.Fatalf("channel scales did not separate: %v vs %v", q.Scales[0], q.Scales[1])
	}
	// The small channel keeps near-full integer resolution.
	var maxQ int8
	for i := 0; i < 32; i++ {
		if w := q.W[i*4+1]; w > maxQ {
			maxQ = w
		}
	}
	if maxQ < 100 {
		t.Fatalf("small channel uses only %d of 127 integer levels — scale not per-channel", maxQ)
	}
}

// TestQuantizeRowsReducedRange pins the compiler-facing core at the
// int8 kernel's reduced weight range.
func TestQuantizeRowsReducedRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := tensor.Randn(rng, 1, 6, 40)
	q := make([]int8, 6*40)
	scales := make([]float32, 6)
	quant.QuantizeRows(q, scales, w.Data, 6, 40, tensor.Gemm8WMax)
	hit := false
	for r := 0; r < 6; r++ {
		for c := 0; c < 40; c++ {
			v := q[r*40+c]
			if v > tensor.Gemm8WMax || v < -tensor.Gemm8WMax {
				t.Fatalf("weight %d outside the kernel range ±%d", v, tensor.Gemm8WMax)
			}
			if v == tensor.Gemm8WMax || v == -tensor.Gemm8WMax {
				hit = true
			}
			// Round-trip error bounded by half a step.
			if d := math.Abs(float64(w.Data[r*40+c]) - float64(v)*float64(scales[r])); d > float64(scales[r])*0.5001 {
				t.Fatalf("round-trip error %v exceeds half a quantization step %v", d, scales[r]/2)
			}
		}
	}
	if !hit {
		t.Fatal("no row used its full range — scales are not tight per row")
	}
}

func TestQuantizedZeroInputSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := nn.NewLinear(rng, "fc", 8, 4, true)
	q := quantize(l)
	out := q.Forward(tensor.New(2, 8))
	if out.HasNaN() {
		t.Fatal("zero input produced NaN")
	}
	// With zero input the output must equal the bias.
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			if out.At(r, c) != l.B.Value.Data[c] {
				t.Fatal("zero input should pass bias through")
			}
		}
	}
}

func TestQuantizedForwardPanicsOnBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := quantize(nn.NewLinear(rng, "fc", 8, 4, false))
	defer func() {
		if recover() == nil {
			t.Fatal("bad input accepted")
		}
	}()
	q.Forward(tensor.New(2, 9))
}

// End-to-end: quantizing the ZSC projection preserves the argmax class
// ranking on cosine-similarity logits — the deployment claim.
func TestQuantizedProjectionPreservesRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	proj := nn.NewLinear(rng, "proj", 96, 48, true)
	q := quantize(proj)
	feats := tensor.Randn(rng, 1, 20, 96)
	classes := tensor.Rademacher(rng, 10, 48)

	embF := proj.Forward(feats, false)
	embQ := q.Forward(feats)
	simF := tensor.CosineSimilarityMatrix(embF, classes)
	simQ := tensor.CosineSimilarityMatrix(embQ, classes)
	agree := 0
	for r := 0; r < 20; r++ {
		if tensor.ArgMaxRow(simF, r) == tensor.ArgMaxRow(simQ, r) {
			agree++
		}
	}
	if agree < 19 {
		t.Fatalf("quantization changed the predicted class for %d/20 queries", 20-agree)
	}
	if err := q.MaxAbsError(embF, feats); err > 0.5 {
		t.Fatalf("max abs error %v too large", err)
	}
}
